// Tests for util/: random generation, hashing, bit helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <algorithm>
#include <vector>

#include "util/bits.h"
#include "util/float_order.h"
#include "util/hash.h"
#include "util/random.h"

namespace streamq {
namespace {

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(~0ULL), 63);
}

TEST(BitsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1ULL << 32), 32);
  EXPECT_EQ(CeilLog2((1ULL << 32) + 1), 33);
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 40));
}

TEST(RandomTest, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RandomTest, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Xoshiro256 rng(17);
  constexpr int kDraws = 200'000;
  double sum = 0, sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(HashTest, Deterministic) {
  BucketHash h(42, 1024);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h(x), h(x));
}

TEST(HashTest, BucketRange) {
  BucketHash h(7, 37);
  for (uint64_t x = 0; x < 10'000; ++x) EXPECT_LT(h(x), 37u);
}

TEST(HashTest, BucketsRoughlyBalanced) {
  constexpr uint64_t kBuckets = 16;
  constexpr uint64_t kItems = 64'000;
  BucketHash h(3, kBuckets);
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t x = 0; x < kItems; ++x) ++counts[h(x)];
  for (int c : counts) {
    EXPECT_NEAR(c, kItems / kBuckets, 6 * std::sqrt(kItems / kBuckets));
  }
}

TEST(HashTest, SignHashBalanced) {
  SignHash g(11);
  int64_t sum = 0;
  for (uint64_t x = 0; x < 100'000; ++x) sum += g(x);
  EXPECT_LT(std::abs(sum), 3'000);
}

TEST(HashTest, SignHashPairProductsBalanced) {
  // 4-wise independence implies E[g(x) g(y)] = 0 for x != y.
  SignHash g(13);
  int64_t sum = 0;
  for (uint64_t x = 0; x < 50'000; ++x) sum += g(2 * x) * g(2 * x + 1);
  EXPECT_LT(std::abs(sum), 2'000);
}

TEST(HashTest, DifferentSeedsGiveDifferentFunctions) {
  BucketHash h1(1, 1 << 20), h2(2, 1 << 20);
  int collisions = 0;
  for (uint64_t x = 0; x < 1000; ++x) collisions += (h1(x) == h2(x));
  EXPECT_LT(collisions, 10);
}

TEST(HashTest, SubsetHashAboutHalf) {
  SubsetHash s(23);
  int in = 0;
  for (uint64_t x = 0; x < 100'000; ++x) in += s(x);
  EXPECT_NEAR(in, 50'000, 1'500);
}

TEST(HashTest, MersenneReduction) {
  EXPECT_EQ(ReduceMersenne61(0), 0u);
  EXPECT_EQ(ReduceMersenne61(kMersenne61), 0u);
  EXPECT_EQ(ReduceMersenne61(kMersenne61 + 5), 5u);
  // (p-1)^2 mod p == 1.
  const __uint128_t sq =
      static_cast<__uint128_t>(kMersenne61 - 1) * (kMersenne61 - 1);
  EXPECT_EQ(ReduceMersenne61(sq), 1u);
}

TEST(FloatOrderTest, RoundTripDoubles) {
  for (double v : {-1e300, -3.5, -0.0, 0.0, 1e-300, 2.25, 7.0, 1e308}) {
    EXPECT_EQ(DoubleFromOrdered(OrderedFromDouble(v)), v);
  }
}

TEST(FloatOrderTest, PreservesDoubleOrder) {
  Xoshiro256 rng(19);
  std::vector<double> values = {-1e12, -5.0, -1e-9, 0.0, 1e-9, 3.0, 1e12};
  for (int i = 0; i < 500; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 1e6);
  }
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] < values[i]) {
      EXPECT_LT(OrderedFromDouble(values[i - 1]), OrderedFromDouble(values[i]))
          << values[i - 1] << " vs " << values[i];
    }
  }
}

TEST(FloatOrderTest, NegativeZeroBelowPositiveZero) {
  EXPECT_LT(OrderedFromDouble(-0.0), OrderedFromDouble(0.0));
}

TEST(FloatOrderTest, RoundTripFloats) {
  for (float v : {-1e30f, -2.5f, 0.0f, 1.5f, 3e38f}) {
    EXPECT_EQ(FloatFromOrdered(OrderedFromFloat(v)), v);
  }
  EXPECT_LT(OrderedFromFloat(-1.0f), OrderedFromFloat(-0.5f));
  EXPECT_LT(OrderedFromFloat(-0.5f), OrderedFromFloat(0.5f));
  EXPECT_LT(OrderedFromFloat(0.5f), OrderedFromFloat(2.0f));
}

TEST(RandomTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation.
  uint64_t state = 0;
  const uint64_t first = SplitMix64(&state);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace streamq
