// Tests for the observability layer (src/obs/): metric primitives, the
// registry and its framed snapshot, the sketch-side instrumentation wired
// through QuantileSketch, and the distributed monitor's publish path.
//
// The file compiles and passes in both metrics build flavours; assertions
// that require live instrumentation are guarded on STREAMQ_METRICS_ENABLED,
// and a -DSTREAMQ_METRICS=OFF build instead asserts that every sketch-side
// reading is zero.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "distributed/monitor.h"
#include "obs/metrics.h"
#include "obs/sketch_metrics.h"
#include "quantile/cash_register.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/factory.h"
#include "quantile/fast_qdigest.h"

namespace streamq {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::ScopedTimer;

// --- primitives ----------------------------------------------------------

TEST(ObsCounterTest, IncAddResetValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc();
  c.Add(40);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGaugeTest, SetAddResetValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(-7);
  EXPECT_EQ(g.value(), -7);
  g.Add(10);
  EXPECT_EQ(g.value(), 3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  for (int i = 1; i < Histogram::kBucketCount - 1; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(2 * lo - 1), i)
        << "upper edge of bucket " << i;
  }
  // Everything at or beyond the last lower bound saturates into the last
  // bucket, up to the largest representable sample.
  const int last = Histogram::kBucketCount - 1;
  EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(last)), last);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), last);
}

TEST(ObsHistogramTest, RecordTracksCountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);

  h.Record(5);
  h.Record(0);
  h.Record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 105u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 35.0);

  EXPECT_EQ(h.bucket(Histogram::BucketIndex(0)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(100)), 1u);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(h.bucket(i), 0u);
  }
}

TEST(ObsHistogramTest, BucketCountsMatchTotal) {
  Histogram h;
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v * v);
  uint64_t total = 0;
  for (int i = 0; i < Histogram::kBucketCount; ++i) total += h.bucket(i);
  EXPECT_EQ(total, h.count());
}

TEST(ObsScopedTimerTest, RecordsOneSamplePerScope) {
  Histogram h;
  {
    ScopedTimer t(&h);
  }
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.count(), 2u);
  // Null histogram: a no-op, not a crash.
  { ScopedTimer t(nullptr); }
}

// --- registry ------------------------------------------------------------

TEST(ObsRegistryTest, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  a.Inc();
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.CounterCount(), 1u);

  // The three kinds live in separate namespaces: one name per kind.
  reg.GetGauge("x").Set(9);
  reg.GetHistogram("x").Record(3);
  EXPECT_EQ(reg.GetCounter("x").value(), 1u);
  EXPECT_EQ(reg.GetGauge("x").value(), 9);
  EXPECT_EQ(reg.GetHistogram("x").count(), 1u);
}

TEST(ObsRegistryTest, FindReturnsNullForUnknownNames) {
  MetricsRegistry reg;
  reg.GetCounter("known");
  EXPECT_NE(reg.FindCounter("known"), nullptr);
  EXPECT_EQ(reg.FindCounter("unknown"), nullptr);
  EXPECT_EQ(reg.FindGauge("known"), nullptr);  // different kind namespace
  EXPECT_EQ(reg.FindHistogram("known"), nullptr);
}

TEST(ObsRegistryTest, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  c.Add(5);
  reg.GetGauge("g").Set(-3);
  reg.GetHistogram("h").Record(17);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);  // handed-out reference still valid
  EXPECT_EQ(reg.GetGauge("g").value(), 0);
  EXPECT_EQ(reg.GetHistogram("h").count(), 0u);
  EXPECT_EQ(reg.CounterCount(), 1u);
  EXPECT_EQ(reg.GaugeCount(), 1u);
  EXPECT_EQ(reg.HistogramCount(), 1u);
}

MetricsRegistry PopulatedRegistry() {
  MetricsRegistry reg;
  reg.GetCounter("updates").Add(12345);
  reg.GetCounter("empty");
  reg.GetGauge("memory").Set(1 << 20);
  reg.GetGauge("delta").Set(-99);
  Histogram& h = reg.GetHistogram("latency");
  for (uint64_t v : {0, 1, 5, 5, 1000, 1 << 30}) h.Record(v);
  return reg;
}

TEST(ObsRegistrySerdeTest, SnapshotRoundTripsExactly) {
  MetricsRegistry reg = PopulatedRegistry();
  const std::string frame = reg.Snapshot();

  MetricsRegistry restored;
  restored.GetCounter("stale").Add(7);  // replaced by Restore
  ASSERT_TRUE(restored.Restore(frame));

  EXPECT_EQ(restored.CounterCount(), 2u);
  EXPECT_EQ(restored.GaugeCount(), 2u);
  EXPECT_EQ(restored.HistogramCount(), 1u);
  EXPECT_EQ(restored.FindCounter("stale"), nullptr);
  ASSERT_NE(restored.FindCounter("updates"), nullptr);
  EXPECT_EQ(restored.FindCounter("updates")->value(), 12345u);
  ASSERT_NE(restored.FindGauge("delta"), nullptr);
  EXPECT_EQ(restored.FindGauge("delta")->value(), -99);

  const Histogram* h = restored.FindHistogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), uint64_t{1} << 30);
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(h->bucket(i), reg.GetHistogram("latency").bucket(i));
  }
  EXPECT_EQ(restored.DebugString(), reg.DebugString());
  // A restored registry snapshots to the identical frame.
  EXPECT_EQ(restored.Snapshot(), frame);
}

TEST(ObsRegistrySerdeTest, EveryByteFlipIsRejectedAndLeavesRegistryIntact) {
  MetricsRegistry reg = PopulatedRegistry();
  const std::string frame = reg.Snapshot();

  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    MetricsRegistry victim;
    victim.GetCounter("sentinel").Add(1);
    EXPECT_FALSE(victim.Restore(bad)) << "byte " << i;
    // Failed restores must not touch the registry.
    ASSERT_NE(victim.FindCounter("sentinel"), nullptr);
    EXPECT_EQ(victim.FindCounter("sentinel")->value(), 1u);
  }
}

TEST(ObsRegistrySerdeTest, TruncationAndGarbageAreRejected) {
  MetricsRegistry reg = PopulatedRegistry();
  const std::string frame = reg.Snapshot();
  MetricsRegistry victim;
  for (size_t len : {size_t{0}, size_t{1}, frame.size() / 2,
                     frame.size() - 1}) {
    EXPECT_FALSE(victim.Restore(frame.substr(0, len))) << "len " << len;
  }
  EXPECT_FALSE(victim.Restore(frame + "x"));
  EXPECT_FALSE(victim.Restore("not a frame at all"));
}

// --- sketch instrumentation ---------------------------------------------

TEST(SketchMetricsTest, BaseClassCountsUpdatesAndQueries) {
  GkArray sketch(0.01);
  for (uint64_t v = 0; v < 100; ++v) {
    ASSERT_EQ(sketch.Insert(v), StreamqStatus::kOk);
  }
  sketch.Query(0.5);
  sketch.QueryMany({0.1, 0.5, 0.9});
  EXPECT_EQ(sketch.Erase(1), StreamqStatus::kUnsupported);

#if STREAMQ_METRICS_ENABLED
  EXPECT_EQ(sketch.metrics().inserts.value(), 100u);
  EXPECT_EQ(sketch.metrics().queries.value(), 2u);  // batch counts once
  EXPECT_EQ(sketch.metrics().erases.value(), 0u);
  EXPECT_EQ(sketch.metrics().rejected.value(), 1u);
#else
  // The OFF build keeps the API but every reading is zero.
  EXPECT_EQ(sketch.metrics().inserts.value(), 0u);
  EXPECT_EQ(sketch.metrics().queries.value(), 0u);
  EXPECT_EQ(sketch.metrics().rejected.value(), 0u);
#endif
}

TEST(SketchMetricsTest, RejectedUpdatesAreCountedNotInserted) {
  FastQDigest digest(0.01, /*log_universe=*/8);
  EXPECT_EQ(digest.Insert(255), StreamqStatus::kOk);
  EXPECT_EQ(digest.Insert(256), StreamqStatus::kOutOfUniverse);
  EXPECT_EQ(digest.Count(), 1u);
#if STREAMQ_METRICS_ENABLED
  EXPECT_EQ(digest.metrics().inserts.value(), 1u);
  EXPECT_EQ(digest.metrics().rejected.value(), 1u);
#endif
}

TEST(SketchMetricsTest, TurnstileEraseIsCounted) {
  Dcs sketch(0.05, /*log_u=*/12, /*depth=*/5, /*seed=*/1);
  ASSERT_EQ(sketch.Insert(7), StreamqStatus::kOk);
  ASSERT_EQ(sketch.Erase(7), StreamqStatus::kOk);
  EXPECT_EQ(sketch.Erase(uint64_t{1} << 40), StreamqStatus::kOutOfUniverse);
#if STREAMQ_METRICS_ENABLED
  EXPECT_EQ(sketch.metrics().inserts.value(), 1u);
  EXPECT_EQ(sketch.metrics().erases.value(), 1u);
  EXPECT_EQ(sketch.metrics().rejected.value(), 1u);
#endif
}

#if STREAMQ_METRICS_ENABLED
TEST(SketchMetricsTest, EverySketchReportsCompactions) {
  // Enough stream to force at least one compaction event out of each
  // algorithm that has one (DCM/DCS/RSS are flat arrays: no compaction).
  for (Algorithm algorithm :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom}) {
    SketchConfig config;
    config.algorithm = algorithm;
    config.eps = 0.05;
    config.log_universe = 16;
    auto sketch = MakeSketch(config);
    for (uint64_t v = 0; v < 20000; ++v) {
      sketch->Insert((v * 2654435761u) % 65536);
    }
    EXPECT_GT(sketch->metrics().compressions.value(), 0u) << sketch->Name();
    EXPECT_GT(sketch->metrics().compress_trigger.count(), 0u)
        << sketch->Name();
    EXPECT_GT(sketch->metrics().compress_ticks.count(), 0u) << sketch->Name();
  }
}
#endif  // STREAMQ_METRICS_ENABLED

TEST(SketchMetricsTest, PublishMetricsFillsRegistryUnderPrefix) {
  GkTheory sketch(0.01);
  for (uint64_t v = 0; v < 5000; ++v) sketch.Insert(v % 977);
  sketch.Query(0.5);

  MetricsRegistry reg;
  sketch.PublishMetrics(reg, "gk");
#if STREAMQ_METRICS_ENABLED
  ASSERT_NE(reg.FindCounter("gk.inserts"), nullptr);
  ASSERT_NE(reg.FindCounter("gk.queries"), nullptr);
  ASSERT_NE(reg.FindGauge("gk.memory_bytes"), nullptr);
  ASSERT_NE(reg.FindHistogram("gk.compress_trigger"), nullptr);
  EXPECT_EQ(reg.FindCounter("gk.inserts")->value(), 5000u);
  EXPECT_EQ(reg.FindCounter("gk.queries")->value(), 1u);
  EXPECT_EQ(reg.FindGauge("gk.memory_bytes")->value(),
            static_cast<int64_t>(sketch.MemoryBytes()));
  EXPECT_GT(reg.FindCounter("gk.compressions")->value(), 0u);
  // Publish is a copy, not a drain: publishing twice is idempotent.
  sketch.PublishMetrics(reg, "gk");
  EXPECT_EQ(reg.FindCounter("gk.inserts")->value(), 5000u);
#else
  // The OFF build's PublishTo is a no-op: nothing gets registered.
  EXPECT_EQ(reg.CounterCount(), 0u);
#endif
}

// --- distributed monitor publish ----------------------------------------

TEST(MonitorMetricsTest, PublishMetricsReportsTransportAndCoordinator) {
  MonitorOptions options;
  options.data_faults.drop = 0.1;
  options.data_faults.corrupt = 0.05;
  options.seed = 7;
  DistributedQuantileMonitor monitor(/*num_sites=*/3, /*eps=*/0.05,
                                     /*theta=*/-1.0, options);
  for (uint64_t i = 0; i < 3000; ++i) {
    monitor.Observe(static_cast<int>(i % 3), i % 1024);
  }
  monitor.Quiesce();

  MetricsRegistry reg;
  monitor.PublishMetrics(reg, "monitor");

  ASSERT_NE(reg.FindCounter("monitor.shipments"), nullptr);
  EXPECT_EQ(reg.FindCounter("monitor.shipments")->value(),
            monitor.ShipmentCount());
  EXPECT_EQ(reg.FindCounter("monitor.global_count")->value(),
            monitor.GlobalCount());
  EXPECT_EQ(reg.FindGauge("monitor.staleness_bound")->value(),
            static_cast<int64_t>(monitor.StalenessBound()));

  // Per-direction channel stats: the lossy data channel dropped something.
  ASSERT_NE(reg.FindCounter("monitor.data.sent"), nullptr);
  EXPECT_EQ(reg.FindCounter("monitor.data.sent")->value(),
            monitor.data_channel_stats().sent);
  EXPECT_GT(reg.FindCounter("monitor.data.sent")->value(), 0u);
  EXPECT_EQ(reg.FindCounter("monitor.data.dropped")->value(),
            monitor.data_channel_stats().dropped);
  EXPECT_EQ(reg.FindCounter("monitor.ack.delivered")->value(),
            monitor.ack_channel_stats().delivered);

  // Coordinator accept/reject accounting made it over too.
  EXPECT_EQ(reg.FindCounter("monitor.coordinator.accepted")->value(),
            monitor.coordinator().stats().accepted);
  EXPECT_GT(reg.FindCounter("monitor.coordinator.accepted")->value(), 0u);

  // The published registry survives the same framed serde as everything
  // else in the repo.
  MetricsRegistry copy;
  ASSERT_TRUE(copy.Restore(reg.Snapshot()));
  EXPECT_EQ(copy.DebugString(), reg.DebugString());
}

}  // namespace
}  // namespace streamq
