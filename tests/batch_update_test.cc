// Property tests for the batched update path: UpdateBatch(span) must leave
// every summary *bit-identical* to the item-wise Insert() loop -- same
// compaction points, same RNG draws, same serialized bytes -- for every
// algorithm, every batch partition (including empty and size-1 spans), and
// on both the SIMD and forced-scalar kernel paths. This is the contract
// that lets the ingest pipeline batch opportunistically: a reader can never
// tell from the summary how the stream was chopped into spans.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "quantile/cash_register.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/factory.h"
#include "quantile/quantile_sketch.h"
#include "util/simd.h"

namespace streamq {
namespace {

struct AlgoCase {
  Algorithm algorithm;
  const char* name;
  size_t n;  // stream length (slow algorithms get shorter streams)
};

const AlgoCase kAlgoCases[] = {
    {Algorithm::kGkTheory, "GKTheory", 20000},
    {Algorithm::kGkAdaptive, "GKAdaptive", 20000},
    {Algorithm::kGkArray, "GKArray", 20000},
    {Algorithm::kFastQDigest, "FastQDigest", 20000},
    {Algorithm::kMrl99, "MRL99", 20000},
    {Algorithm::kRandom, "Random", 20000},
    {Algorithm::kRss, "RSS", 1500},  // RSS updates are orders slower
    {Algorithm::kDcm, "DCM", 8000},
    {Algorithm::kDcs, "DCS", 8000},
    {Algorithm::kDcsPost, "DCSPost", 8000},
};

constexpr int kLogUniverse = 20;

SketchConfig MakeConfig(Algorithm algorithm, uint64_t seed) {
  SketchConfig cfg;
  cfg.algorithm = algorithm;
  cfg.eps = 0.01;
  cfg.log_universe = kLogUniverse;
  cfg.depth = 5;
  cfg.rss_width_cap = 1 << 8;
  cfg.seed = seed;
  return cfg;
}

// Deterministic stream over the configured universe, with a sprinkling of
// out-of-universe values so the per-element rejection contract of the
// fixed-universe summaries is exercised mid-batch.
std::vector<uint64_t> MakeStream(size_t n, uint64_t seed,
                                 bool with_rejects) {
  std::vector<uint64_t> values(n);
  uint64_t s = seed;
  for (size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    values[i] = s >> (64 - kLogUniverse);
    if (with_rejects && i % 97 == 13) {
      values[i] |= uint64_t{1} << 60;  // outside [0, 2^kLogUniverse)
    }
  }
  return values;
}

// Chops the stream into spans of irregular sizes -- empty, 1, odd, prime,
// and larger-than-any-internal-buffer -- and feeds them through
// UpdateBatch. Returns the total number of rejected elements.
size_t FeedBatched(QuantileSketch& sketch, const std::vector<uint64_t>& values) {
  const size_t kCuts[] = {1, 0, 3, 17, 1, 64, 0, 255, 7, 1024, 29, 400};
  size_t rejected = 0;
  size_t i = 0, cut = 0;
  while (i < values.size()) {
    const size_t len = std::min(kCuts[cut % std::size(kCuts)],
                                values.size() - i);
    ++cut;
    rejected += sketch.UpdateBatch(
        std::span<const uint64_t>(values.data() + i, len));
    i += len;
  }
  // A trailing empty span must be a no-op as well.
  rejected += sketch.UpdateBatch(std::span<const uint64_t>{});
  return rejected;
}

size_t FeedItemwise(QuantileSketch& sketch,
                    const std::vector<uint64_t>& values) {
  size_t rejected = 0;
  for (uint64_t v : values) {
    if (sketch.Insert(v) != StreamqStatus::kOk) ++rejected;
  }
  return rejected;
}

// Observable-state comparison through the base interface: counts, rank
// estimates over a probe grid, and a quantile sweep. For the randomized
// summaries these all depend on the exact buffer contents and PRNG
// position, so any divergence in internal state shows up here.
void ExpectSameObservableState(QuantileSketch& a, QuantileSketch& b,
                               const char* label) {
  ASSERT_EQ(a.Count(), b.Count()) << label;
  for (uint64_t probe = 0; probe <= (uint64_t{1} << kLogUniverse);
       probe += (uint64_t{1} << kLogUniverse) / 64) {
    ASSERT_EQ(a.EstimateRank(probe), b.EstimateRank(probe))
        << label << " probe=" << probe;
  }
  const std::vector<double> phis = {0.0,  0.01, 0.1,  0.25, 0.5,
                                    0.75, 0.9,  0.99, 1.0};
  ASSERT_EQ(a.QueryMany(phis), b.QueryMany(phis)) << label;
}

class BatchUpdateTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(BatchUpdateTest, BatchedMatchesItemwise) {
  const AlgoCase& tc = GetParam();
  for (uint64_t seed : {uint64_t{1}, uint64_t{42}}) {
    const auto values = MakeStream(tc.n, seed * 7919, /*with_rejects=*/true);
    auto itemwise = MakeSketch(MakeConfig(tc.algorithm, seed));
    auto batched = MakeSketch(MakeConfig(tc.algorithm, seed));
    ASSERT_NE(itemwise, nullptr);
    ASSERT_NE(batched, nullptr);
    const size_t rej_item = FeedItemwise(*itemwise, values);
    const size_t rej_batch = FeedBatched(*batched, values);
    EXPECT_EQ(rej_item, rej_batch) << tc.name << " seed=" << seed;
    ExpectSameObservableState(*itemwise, *batched, tc.name);
    EXPECT_EQ(itemwise->metrics().inserts.value(),
              batched->metrics().inserts.value())
        << tc.name;
    EXPECT_EQ(itemwise->metrics().rejected.value(),
              batched->metrics().rejected.value())
        << tc.name;
  }
}

TEST_P(BatchUpdateTest, ForcedScalarMatchesVectorized) {
  // Same batched feed twice, once with the SIMD dispatchers live and once
  // forced onto the scalar kernels: the summaries must agree exactly. On a
  // host without AVX2 both runs take the scalar path and this degenerates
  // to a determinism check, which is still worth asserting.
  const AlgoCase& tc = GetParam();
  const auto values = MakeStream(tc.n, 1234567, /*with_rejects=*/false);
  auto vectorized = MakeSketch(MakeConfig(tc.algorithm, 9));
  auto scalar = MakeSketch(MakeConfig(tc.algorithm, 9));
  ASSERT_NE(vectorized, nullptr);
  ASSERT_NE(scalar, nullptr);
  FeedBatched(*vectorized, values);
  simd::SetForceScalar(true);
  FeedBatched(*scalar, values);
  simd::SetForceScalar(false);
  ExpectSameObservableState(*vectorized, *scalar, tc.name);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BatchUpdateTest,
                         ::testing::ValuesIn(kAlgoCases),
                         [](const ::testing::TestParamInfo<AlgoCase>& info) {
                           return std::string(info.param.name);
                         });

// --- Serialized-byte identity ------------------------------------------
//
// For the summaries that expose snapshots, compare the strongest possible
// form of the property: the full serialized state (buffers, counters, PRNG
// position) must be byte-for-byte equal between the item-wise and batched
// feeds, and between the SIMD and forced-scalar batched feeds.

template <typename Sketch, typename... Args>
void ExpectSerializedIdentity(size_t n, Args... args) {
  const auto values = MakeStream(n, 31337, /*with_rejects=*/false);
  Sketch itemwise(args...);
  Sketch batched(args...);
  Sketch forced(args...);
  FeedItemwise(itemwise, values);
  FeedBatched(batched, values);
  simd::SetForceScalar(true);
  FeedBatched(forced, values);
  simd::SetForceScalar(false);
  const std::string want = itemwise.Serialize();
  EXPECT_EQ(batched.Serialize(), want) << "batched vs item-wise";
  EXPECT_EQ(forced.Serialize(), want) << "forced-scalar vs item-wise";
}

TEST(BatchSerializedIdentityTest, Random) {
  ExpectSerializedIdentity<RandomSketch>(50000, 0.01, uint64_t{3});
}

TEST(BatchSerializedIdentityTest, Mrl99) {
  ExpectSerializedIdentity<Mrl99>(50000, 0.01, uint64_t{3});
}

TEST(BatchSerializedIdentityTest, GkArray) {
  ExpectSerializedIdentity<GkArray>(50000, 0.01);
}

TEST(BatchSerializedIdentityTest, Dcm) {
  ExpectSerializedIdentity<Dcm>(8000, 0.01, kLogUniverse, 5, uint64_t{3});
}

TEST(BatchSerializedIdentityTest, Dcs) {
  ExpectSerializedIdentity<Dcs>(8000, 0.01, kLogUniverse, 5, uint64_t{3});
}

}  // namespace
}  // namespace streamq
