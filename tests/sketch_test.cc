// Tests for the frequency-sketch substrate: Count-Min, Count-Sketch,
// random-subset-sum, exact counters, and the dyadic decomposition.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <vector>

#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic.h"
#include "sketch/exact_counts.h"
#include "sketch/rss_sketch.h"
#include "util/random.h"

namespace streamq {
namespace {

std::map<uint64_t, int64_t> RandomFrequencies(int distinct, int64_t max_count,
                                              uint64_t universe, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::map<uint64_t, int64_t> freq;
  while (freq.size() < static_cast<size_t>(distinct)) {
    freq[rng.Below(universe)] = 1 + static_cast<int64_t>(rng.Below(max_count));
  }
  return freq;
}

TEST(ExactCountsTest, ExactAndSupportsDeletion) {
  ExactCounts counts(100);
  counts.Update(5, 3);
  counts.Update(5, -1);
  counts.Update(99, 7);
  EXPECT_DOUBLE_EQ(counts.Estimate(5), 2.0);
  EXPECT_DOUBLE_EQ(counts.Estimate(99), 7.0);
  EXPECT_DOUBLE_EQ(counts.Estimate(0), 0.0);
  EXPECT_TRUE(counts.IsExact());
  EXPECT_EQ(counts.MemoryBytes(), 400u);
}

TEST(CountMinTest, NeverUnderestimates) {
  // In the strict turnstile model Count-Min estimates are one-sided.
  CountMin cm(256, 5, 42);
  auto freq = RandomFrequencies(200, 50, 1 << 20, 7);
  for (auto& [x, c] : freq) cm.Update(x, c);
  for (auto& [x, c] : freq) {
    EXPECT_GE(cm.Estimate(x), static_cast<double>(c));
  }
}

TEST(CountMinTest, ErrorWithinEpsN) {
  // w = 2/eps guarantees error <= eps*n w.h.p. over d rows.
  const double eps = 0.01;
  CountMin cm(static_cast<uint64_t>(2 / eps), 7, 11);
  auto freq = RandomFrequencies(500, 100, 1 << 24, 3);
  int64_t n = 0;
  for (auto& [x, c] : freq) {
    cm.Update(x, c);
    n += c;
  }
  for (auto& [x, c] : freq) {
    EXPECT_LE(cm.Estimate(x) - static_cast<double>(c), eps * n * 2);
  }
}

TEST(CountMinTest, DeletionsCancelExactly) {
  CountMin a(64, 3, 5), b(64, 3, 5);
  a.Update(10, 4);
  a.Update(20, 2);
  a.Update(10, -4);
  b.Update(20, 2);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_DOUBLE_EQ(a.Estimate(x), b.Estimate(x));
  }
}

TEST(CountSketchTest, ExactWhenNoCollisions) {
  CountSketch cs(1 << 12, 5, 9);
  cs.Update(42, 17);
  EXPECT_DOUBLE_EQ(cs.Estimate(42), 17.0);
}

TEST(CountSketchTest, MedianEstimateAccurate) {
  const int64_t n = 100'000;
  CountSketch cs(1024, 7, 77);
  auto freq = RandomFrequencies(1000, 200, 1 << 30, 13);
  int64_t total = 0;
  for (auto& [x, c] : freq) {
    cs.Update(x, c);
    total += c;
  }
  (void)n;
  double worst = 0;
  for (auto& [x, c] : freq) {
    worst = std::max(worst, std::abs(cs.Estimate(x) - static_cast<double>(c)));
  }
  // F2 <= sum c^2 <= 1000*200^2; per-row sigma = sqrt(F2/w) ~ 198. The
  // median of 7 rows should rarely exceed a few sigma.
  EXPECT_LT(worst, 1200);
}

TEST(CountSketchTest, RowEstimatesAreUnbiased) {
  // Average the row-0 estimate of a fixed item over many independent
  // sketches: should converge to the true frequency.
  auto freq = RandomFrequencies(50, 100, 1 << 16, 21);
  const uint64_t probe = freq.begin()->first;
  const double truth = static_cast<double>(freq.begin()->second);
  double sum = 0;
  const int kSketches = 400;
  for (int s = 0; s < kSketches; ++s) {
    CountSketch cs(16, 1, 1000 + s);  // tiny width: heavy collisions
    for (auto& [x, c] : freq) cs.Update(x, c);
    sum += cs.RowEstimate(0, probe);
  }
  const double mean = sum / kSketches;
  // F2 ~ 50 * 100^2/3; sigma of the mean ~ sqrt(F2/16/400) ~ 5.
  EXPECT_NEAR(mean, truth, 25);
}

TEST(CountSketchTest, VarianceEstimateTracksF2OverW) {
  CountSketch cs(64, 3, 31);
  auto freq = RandomFrequencies(300, 100, 1 << 20, 5);
  double f2 = 0;
  for (auto& [x, c] : freq) {
    cs.Update(x, c);
    f2 += static_cast<double>(c) * c;
  }
  const double est = cs.VarianceEstimate();
  // E[row F2 estimate] = F2; with w=64 buckets the spread is modest.
  EXPECT_GT(est, 0.2 * f2 / 64);
  EXPECT_LT(est, 5.0 * f2 / 64);
}

TEST(CountSketchTest, DeletionsCancelExactly) {
  CountSketch a(128, 5, 3), b(128, 5, 3);
  a.Update(1, 10);
  a.Update(2, 20);
  a.Update(1, -10);
  b.Update(2, 20);
  for (uint64_t x = 0; x < 64; ++x) {
    EXPECT_DOUBLE_EQ(a.Estimate(x), b.Estimate(x));
  }
}

TEST(RssSketchTest, UnbiasedInAggregate) {
  auto freq = RandomFrequencies(20, 50, 1 << 12, 8);
  const uint64_t probe = freq.begin()->first;
  const double truth = static_cast<double>(freq.begin()->second);
  double sum = 0;
  const int kSketches = 300;
  for (int s = 0; s < kSketches; ++s) {
    RssSketch rss(32, 1, 500 + s);
    for (auto& [x, c] : freq) rss.Update(x, c);
    sum += rss.Estimate(probe);
  }
  // RSS variance ~ F2/w: sigma ~ sqrt(20*50^2/3/32) ~ 23; mean over 300.
  EXPECT_NEAR(sum / kSketches, truth, 20);
}

TEST(RssSketchTest, UpdateCostScalesWithWidth) {
  // The reason the paper drops RSS: every update touches all w*d counters
  // (subset membership must be evaluated per subset), so the update time is
  // proportional to the sketch size -- O((1/eps^2) ...) as in its Table 1 --
  // while Count-Min/Count-Sketch touch d counters regardless of w. We verify
  // the structural fact by checking that doubling w roughly doubles the
  // wall-clock update cost, with a generous margin.
  auto cost = [](uint64_t width) {
    RssSketch rss(width, 3, 1);
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t x = 0; x < 3000; ++x) rss.Update(x, 1);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double narrow = cost(64);
  const double wide = cost(64 * 16);
  EXPECT_GT(wide, 3 * narrow);
}

TEST(DyadicTest, PrefixDecompositionCoversExactly) {
  const int log_u = 10;
  for (uint64_t x : {0ULL, 1ULL, 7ULL, 512ULL, 513ULL, 1023ULL, 1024ULL}) {
    std::vector<bool> covered(1 << log_u, false);
    for (const DyadicCell& c : PrefixDecomposition(x, log_u)) {
      ASSERT_GE(c.level, 0);
      ASSERT_LE(c.level, log_u);  // level log_u appears only for x = 2^log_u
      for (uint64_t v = CellLow(c); v < CellLow(c) + CellWidth(c); ++v) {
        ASSERT_FALSE(covered[v]) << "overlap at " << v;
        covered[v] = true;
      }
    }
    for (uint64_t v = 0; v < (1ULL << log_u); ++v) {
      EXPECT_EQ(covered[v], v < x) << "x=" << x << " v=" << v;
    }
  }
}

TEST(DyadicTest, AtMostOneCellPerLevel) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t x = rng.Below(1ULL << 32);
    auto cells = PrefixDecomposition(x, 32);
    std::vector<bool> seen(32, false);
    for (const DyadicCell& c : cells) {
      EXPECT_FALSE(seen[c.level]);
      seen[c.level] = true;
    }
  }
}

}  // namespace
}  // namespace streamq
