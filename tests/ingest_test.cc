// Tests for the parallel ingest subsystem (src/ingest/): the SPSC ring,
// the shard router, the RCU query view, and the sharded pipeline end to
// end. The cross-thread tests double as the ThreadSanitizer workload for
// the -DSTREAMQ_SANITIZE=thread configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <memory>
#include <thread>
#include <vector>

#include "exact/exact_oracle.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/query_view.h"
#include "ingest/shard_router.h"
#include "ingest/spsc_ring.h"
#include "obs/metrics.h"
#include "quantile/factory.h"
#include "stream/generators.h"
#include "stream/update.h"

namespace streamq::ingest {
namespace {

// ---------- SPSC ring ----------

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99)) << "full ring must refuse";
  int out[16];
  EXPECT_EQ(ring.PopBatch(out, 3), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[2], 2);
  // Space freed: pushes succeed again, order preserved across wraparound.
  // The first pop drains up to the consumer's cached tail (elements 3..7);
  // the next one re-reads the producer index and finds the late push.
  EXPECT_TRUE(ring.TryPush(8));
  EXPECT_EQ(ring.PopBatch(out, 16), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], 3 + i);
  EXPECT_EQ(ring.PopBatch(out, 16), 1u);
  EXPECT_EQ(out[0], 8);
  EXPECT_EQ(ring.PopBatch(out, 16), 0u) << "empty ring pops nothing";
}

TEST(SpscRingTest, SizeApproxTracksDepth) {
  SpscRing<int> ring(16);
  EXPECT_EQ(ring.SizeApprox(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.TryPush(i));
  EXPECT_EQ(ring.SizeApprox(), 5u);
  int out[4];
  ASSERT_EQ(ring.PopBatch(out, 4), 4u);
  EXPECT_EQ(ring.SizeApprox(), 1u);
}

TEST(SpscRingTest, CrossThreadTransferPreservesEveryElement) {
  // One producer, one consumer, a ring small enough to wrap thousands of
  // times: order and completeness must survive, and TSan must see no race.
  constexpr uint64_t kCount = 200'000;
  SpscRing<uint64_t> ring(64);
  std::thread consumer([&ring] {
    uint64_t expected = 0;
    uint64_t out[32];
    while (expected < kCount) {
      const size_t n = ring.PopBatch(out, 32);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], expected) << "out of order";
        ++expected;
      }
      if (n == 0) std::this_thread::yield();
    }
  });
  for (uint64_t i = 0; i < kCount; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

// ---------- shard router ----------

TEST(ShardRouterTest, RoundRobinCyclesDeterministically) {
  ShardRouter router(ShardingPolicy::kRoundRobin, 3);
  for (uint64_t seq = 1; seq < 10; ++seq) {
    EXPECT_EQ(router.Route(seq, uint64_t{12345}),
              static_cast<int>(seq % 3));
    // Stateless: routing the same seq again gives the same shard (the
    // determinism durable replay relies on).
    EXPECT_EQ(router.Route(seq, uint64_t{12345}),
              static_cast<int>(seq % 3));
  }
}

TEST(ShardRouterTest, HashIsStableInRangeAndSpreads) {
  ShardRouter router(ShardingPolicy::kHash, 4);
  std::vector<int> counts(4, 0);
  for (uint64_t v = 0; v < 4000; ++v) {
    const int s = router.Route(v + 1, v);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(router.Route(v + 999, v), s)
        << "hash routing must depend on the value only";
    ++counts[s];
  }
  for (int c : counts) EXPECT_GT(c, 500) << "grossly unbalanced hash";
}

// ---------- query view ----------

TEST(QueryViewTest, EmptyViewThenPublishes) {
  QueryView view;
  EXPECT_EQ(view.Load().sketch, nullptr);
  EXPECT_EQ(view.Epoch(), 0u);

  SketchConfig config;
  config.algorithm = Algorithm::kRandom;
  config.eps = 0.05;
  auto sketch = MakeSketch(config);
  for (uint64_t v = 0; v < 100; ++v) ASSERT_EQ(sketch->Insert(v), StreamqStatus::kOk);
  view.Publish(std::move(sketch), 100);
  QueryView::Snapshot snap = view.Load();
  ASSERT_NE(snap.sketch, nullptr);
  EXPECT_EQ(snap.epoch, 100u);
  EXPECT_EQ(snap.sketch->Count(), 100u);

  // Second publish flips to the other buffer; a snapshot taken before the
  // flip stays valid and unchanged.
  auto sketch2 = MakeSketch(config);
  view.Publish(std::move(sketch2), 150);
  EXPECT_EQ(view.Epoch(), 150u);
  EXPECT_EQ(snap.sketch->Count(), 100u) << "old snapshot must stay alive";
}

// ---------- pipeline ----------

SketchConfig PipelineConfig(Algorithm algorithm, double eps = 0.02) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.eps = eps;
  config.log_universe = 20;
  config.seed = 11;
  return config;
}

std::vector<uint64_t> PipelineData(uint64_t n, uint64_t seed = 31) {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 20;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(IngestPipelineTest, CreateRefusesUnsupportedConfigs) {
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kGkArray);
  EXPECT_EQ(IngestPipeline::Create(options), nullptr) << "GK is not mergeable";
  options.sketch = PipelineConfig(Algorithm::kRss);
  EXPECT_EQ(IngestPipeline::Create(options), nullptr) << "RSS has no clone";
  options.sketch = PipelineConfig(Algorithm::kRandom);
  options.shards = 0;
  EXPECT_EQ(IngestPipeline::Create(options), nullptr);
}

class IngestPipelineAccuracyTest : public ::testing::TestWithParam<Algorithm> {
};

TEST_P(IngestPipelineAccuracyTest, ShardedIngestMeetsMergedErrorBound) {
  const double eps = 0.02;
  IngestOptions options;
  options.sketch = PipelineConfig(GetParam(), eps);
  options.shards = 3;
  options.ring_capacity = 1 << 10;
  options.publish_interval = 8192;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);

  const std::vector<uint64_t> data = PipelineData(50'000);
  for (uint64_t v : data) pipeline->Push(Update{v, +1});
  pipeline->Flush();

  EXPECT_EQ(pipeline->PushedCount(), data.size());
  EXPECT_EQ(pipeline->ProcessedCount(), data.size());
  EXPECT_EQ(pipeline->ViewEpoch(), data.size());

  const ExactOracle oracle(data);
  const double slack =
      GetParam() == Algorithm::kFastQDigest ? 1.0 : 3.0;
  double max_error = 0.0;
  for (double phi = eps; phi < 1.0; phi += 5 * eps) {
    const uint64_t q = pipeline->Query(phi);
    max_error = std::max(max_error, oracle.QuantileError(q, phi));
  }
  EXPECT_LE(max_error, slack * eps) << AlgorithmName(GetParam());

  pipeline->Stop();
  // Post-Stop queries keep answering from the final view.
  EXPECT_EQ(pipeline->ViewEpoch(), data.size());
  EXPECT_LE(oracle.QuantileError(pipeline->Query(0.5), 0.5), slack * eps);
}

INSTANTIATE_TEST_SUITE_P(
    Mergeable, IngestPipelineAccuracyTest,
    ::testing::Values(Algorithm::kRandom, Algorithm::kMrl99,
                      Algorithm::kFastQDigest, Algorithm::kDcs),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return AlgorithmName(info.param);
    });

TEST(IngestPipelineTest, TurnstileWorkloadWithRoundRobinSharding) {
  // Deletions may land on a different shard than their insert under
  // round-robin routing; the linear dyadic summaries must still converge
  // to the surviving multiset once everything is merged.
  const double eps = 0.05;
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kDcs, eps);
  options.shards = 2;
  options.sharding = ShardingPolicy::kRoundRobin;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);

  const std::vector<uint64_t> data = PipelineData(20'000, 77);
  const std::vector<Update> workload =
      MakeTurnstileWorkload(data, 0.25, uint64_t{1} << 20, 5);
  for (const Update& u : workload) pipeline->Push(u);
  pipeline->Flush();

  const ExactOracle oracle(data);
  double max_error = 0.0;
  for (double phi = eps; phi < 1.0; phi += 5 * eps) {
    max_error =
        std::max(max_error, oracle.QuantileError(pipeline->Query(phi), phi));
  }
  EXPECT_LE(max_error, 3.0 * eps);
}

TEST(IngestPipelineTest, HashShardingKeepsValueOnOneShard) {
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kRandom, 0.05);
  options.shards = 4;
  options.sharding = ShardingPolicy::kHash;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);
  // One hot value: all its updates must land on a single shard.
  for (int i = 0; i < 10'000; ++i) pipeline->Push(Update{42, +1});
  pipeline->Flush();
  int shards_with_data = 0;
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    if (pipeline->shard_stats(s).pushed.load() > 0) ++shards_with_data;
  }
  EXPECT_EQ(shards_with_data, 1);
  EXPECT_EQ(pipeline->ProcessedCount(), 10'000u);
}

TEST(IngestPipelineTest, QueriesNeverBlockIngestion) {
  // Queries run concurrently with pushes; every answer must come from a
  // published snapshot (values inside the data range), and ingestion must
  // complete. Primarily a TSan workload.
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kRandom, 0.05);
  options.shards = 2;
  options.publish_interval = 2048;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);

  const std::vector<uint64_t> data = PipelineData(60'000, 13);
  std::atomic<bool> done{false};
  std::thread querier([&] {
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t q = pipeline->Query(0.5);
      EXPECT_LT(q, uint64_t{1} << 20);
      std::vector<uint64_t> many = pipeline->QueryMany({0.25, 0.5, 0.75});
      EXPECT_EQ(many.size(), 3u);
      std::this_thread::yield();
    }
  });
  for (uint64_t v : data) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  done.store(true, std::memory_order_release);
  querier.join();
  EXPECT_EQ(pipeline->ProcessedCount(), data.size());
  EXPECT_GT(pipeline->stats().queries.load(), 0u);
}

TEST(IngestPipelineTest, StopIsIdempotentAndFinal) {
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kRandom, 0.05);
  options.shards = 2;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);
  for (uint64_t v = 0; v < 5000; ++v) pipeline->Push(Update{v % 1024, +1});
  pipeline->Stop();
  pipeline->Stop();  // second stop is a no-op
  EXPECT_EQ(pipeline->ProcessedCount(), 5000u);
  EXPECT_EQ(pipeline->ViewEpoch(), 5000u);
}

TEST(IngestPipelineTest, MemoryAccountingAndMetrics) {
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kFastQDigest, 0.02);
  options.shards = 3;
  options.publish_interval = 4096;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);

  const std::vector<uint64_t> data = PipelineData(30'000, 3);
  for (uint64_t v : data) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  pipeline->Stop();

  // Peak = sum of shard peaks + peak view-buffer residency; both parts are
  // nonzero after a flush-published stream.
  uint64_t shard_peaks = 0;
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    const uint64_t peak = pipeline->shard_stats(s).peak_memory_bytes.load();
    EXPECT_GT(peak, 0u) << "shard " << s;
    shard_peaks += peak;
  }
  EXPECT_GT(pipeline->stats().peak_view_bytes.load(), 0u);
  EXPECT_EQ(pipeline->PeakMemoryBytes(),
            shard_peaks + pipeline->stats().peak_view_bytes.load());
  EXPECT_GT(pipeline->RingBytes(), 0u);

  obs::MetricsRegistry registry;
  pipeline->PublishMetrics(registry, "ingest");
  const obs::Counter* pushed = registry.FindCounter("ingest.pushed");
  ASSERT_NE(pushed, nullptr);
  EXPECT_EQ(pushed->value(), data.size());
  uint64_t processed_sum = 0;
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    const std::string p = "ingest.shard" + std::to_string(s);
    ASSERT_NE(registry.FindGauge(p + ".queue_depth"), nullptr);
    const obs::Counter* proc = registry.FindCounter(p + ".processed");
    ASSERT_NE(proc, nullptr);
    processed_sum += proc->value();
  }
  EXPECT_EQ(processed_sum, data.size());
  const obs::Histogram* merge_ticks =
      registry.FindHistogram("ingest.merge_ticks");
  ASSERT_NE(merge_ticks, nullptr);
  EXPECT_GT(merge_ticks->count(), 0u);
  ASSERT_NE(registry.FindCounter("ingest.stale_queries"), nullptr);
  const obs::Gauge* view_epoch = registry.FindGauge("ingest.view_epoch");
  ASSERT_NE(view_epoch, nullptr);
  EXPECT_EQ(view_epoch->value(), static_cast<int64_t>(data.size()));
}

TEST(IngestPipelineTest, StopDrainsEveryAcceptedTryPush) {
  // Bounded-drain guarantee: every update TryPush accepted before Stop()
  // is reflected in the final published view -- no tail loss on shutdown.
  // Tiny rings force refusals, so acceptance really is the boundary.
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kRandom, 0.05);
  options.shards = 2;
  options.ring_capacity = 64;
  options.publish_interval = 100'000;  // beyond the stream: only the
                                       // Stop-path publish can cover it
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);

  const std::vector<uint64_t> data = PipelineData(30'000, 59);
  uint64_t accepted = 0;
  for (uint64_t v : data) {
    if (pipeline->TryPush(Update{v, +1})) ++accepted;
  }
  EXPECT_LT(accepted, data.size()) << "rings never filled; test is vacuous";
  pipeline->Stop();

  EXPECT_EQ(pipeline->PushedCount(), accepted);
  EXPECT_EQ(pipeline->ProcessedCount(), accepted);
  EXPECT_EQ(pipeline->ViewEpoch(), accepted) << "final view misses updates";
  uint64_t stalls = 0;
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    stalls += pipeline->shard_stats(s).ring_full_stalls.load();
  }
  EXPECT_EQ(stalls, data.size() - accepted);
}

TEST(IngestPipelineTest, PushBackoffRecordsStallsAndLosesNothing) {
  // Force ring-full episodes on the blocking path: a 2-slot ring and a
  // stream long enough that the producer repeatedly outruns the worker.
  // Every episode must resolve (no deadlock), count one stall, and land a
  // sample in the ring_full_stall_ns histogram.
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kRandom, 0.05);
  options.shards = 1;
  options.ring_capacity = 2;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);

  constexpr uint64_t kCount = 20'000;
  for (uint64_t v = 0; v < kCount; ++v) {
    pipeline->Push(Update{v % 1024, +1});
  }
  pipeline->Flush();
  EXPECT_EQ(pipeline->ProcessedCount(), kCount);
  EXPECT_GT(pipeline->shard_stats(0).ring_full_stalls.load(), 0u);

  obs::MetricsRegistry registry;
  pipeline->PublishMetrics(registry, "ingest");
  const obs::Histogram* stall_ns =
      registry.FindHistogram("ingest.ring_full_stall_ns");
  ASSERT_NE(stall_ns, nullptr);
  EXPECT_EQ(stall_ns->count(),
            pipeline->shard_stats(0).ring_full_stalls.load());
  ASSERT_NE(registry.FindCounter("ingest.shard0.stall_watchdog_trips"),
            nullptr);
}

TEST(IngestPipelineTest, RejectedUpdatesAreCounted) {
  IngestOptions options;
  options.sketch = PipelineConfig(Algorithm::kDcs, 0.05);  // universe 2^20
  options.shards = 2;
  auto pipeline = IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);
  for (uint64_t v = 0; v < 1000; ++v) pipeline->Push(Update{v, +1});
  // Out-of-universe values are refused by the shard sketch, not applied.
  for (int i = 0; i < 100; ++i) {
    pipeline->Push(Update{uint64_t{1} << 40, +1});
  }
  pipeline->Flush();
  uint64_t rejected = 0;
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    rejected += pipeline->shard_stats(s).rejected.load();
  }
  EXPECT_EQ(rejected, 100u);
  EXPECT_EQ(pipeline->ProcessedCount(), 1100u);  // processed includes refused
}

}  // namespace
}  // namespace streamq::ingest
