// Cluster tier behaviour: coordinator merge accuracy, convergence under
// channel faults, partial-answer semantics with a node down (for every
// mergeable algorithm), staleness probing, and epoch resync on restart.
// The full crash matrix (armed storage crash points x channel faults)
// lives in cluster_fault_matrix_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exact/exact_oracle.h"
#include "obs/metrics.h"
#include "quantile/factory.h"
#include "stream/generators.h"

#if STREAMQ_DURABILITY_ENABLED
#include "durability/storage.h"
#endif

namespace streamq::cluster {
namespace {

constexpr double kEps = 0.05;
// Randomized summaries meet eps per query with constant probability; the
// fixed-seed streams here are checked at 3x slack like the rest of the
// suite.
constexpr double kSlack = 3 * kEps;

const std::vector<double>& TestPhis() {
  static const std::vector<double> phis = {0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99};
  return phis;
}

ClusterOptions BaseOptions(int nodes, Algorithm algorithm) {
  ClusterOptions options;
  options.nodes = nodes;
  options.node_pipeline.sketch.algorithm = algorithm;
  options.node_pipeline.sketch.eps = kEps;
  options.node_pipeline.sketch.log_universe = 16;
  options.node_pipeline.sketch.seed = 7;
  options.node_pipeline.shards = 2;
  options.node_pipeline.ring_capacity = 256;
  options.node_pipeline.batch_size = 64;
  options.node_pipeline.publish_interval = 256;
  options.theta = 0.05;
  options.retry = RetryPolicy{8, 256};
  options.stale_after = 256;
  options.probe = RetryPolicy{16, 256};
  options.seed = 5;
  return options;
}

std::vector<uint64_t> TestData(uint64_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 16;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(ClusterTest, MergedAnswersMatchOracleOverPerfectChannels) {
  auto cluster = QuantileCluster::Create(BaseOptions(3, Algorithm::kRandom));
  ASSERT_NE(cluster, nullptr);
  const std::vector<uint64_t> data = TestData(4000, 21);
  for (uint64_t v : data) EXPECT_GE(cluster->Append(v), 0);
  ASSERT_TRUE(cluster->Quiesce());
  EXPECT_EQ(cluster->StalenessBound(), 0u);
  EXPECT_EQ(cluster->coordinator().ReportedCount(), data.size());
  const ExactOracle oracle(data);
  for (double phi : TestPhis()) {
    const ClusterAnswer answer = cluster->Query(phi);
    EXPECT_EQ(answer.nodes_merged, 3);
    EXPECT_FALSE(answer.partial);
    EXPECT_EQ(answer.reported_count, data.size());
    EXPECT_LE(oracle.QuantileError(answer.value, phi), kSlack) << phi;
  }
  // Rank estimates live on the same merged scope.
  const uint64_t median = cluster->Query(0.5).value;
  const ClusterAnswer rank = cluster->Rank(median);
  EXPECT_EQ(rank.nodes_merged, 3);
  const int64_t true_rank = oracle.Rank(median);
  EXPECT_NEAR(static_cast<double>(rank.value),
              static_cast<double>(true_rank),
              kSlack * static_cast<double>(data.size()) + 1.0);
}

TEST(ClusterTest, ConvergesUnderLossyChannels) {
  ClusterOptions options = BaseOptions(2, Algorithm::kRandom);
  options.data_faults.drop = 0.1;
  options.data_faults.duplicate = 0.1;
  options.data_faults.reorder = 0.1;
  options.data_faults.corrupt = 0.1;
  options.data_faults.min_delay = 1;
  options.data_faults.max_delay = 16;
  options.ack_faults = options.data_faults;
  auto cluster = QuantileCluster::Create(options);
  ASSERT_NE(cluster, nullptr);
  const std::vector<uint64_t> data = TestData(3000, 33);
  for (uint64_t v : data) cluster->Append(v);
  ASSERT_TRUE(cluster->Quiesce());
  EXPECT_EQ(cluster->StalenessBound(), 0u);
  EXPECT_EQ(cluster->coordinator().ReportedCount(), data.size());
  const ExactOracle oracle(data);
  for (double phi : TestPhis()) {
    EXPECT_LE(oracle.QuantileError(cluster->Query(phi).value, phi), kSlack)
        << phi;
  }
  // The channel mix must actually have exercised the defence ladder.
  const ClusterCoordinatorStats& stats = cluster->coordinator().stats();
  EXPECT_GT(stats.rejected_corrupt + stats.rejected_stale, 0u);
  EXPECT_GT(stats.accepted, 0u);
}

// The partial-answer satellite: with one node down, kLiveOnly answers must
// sit within the merged eps*n bound of the SURVIVORS' true union stream,
// flag themselves partial, and report the dead node's staleness -- for
// every algorithm the pipeline can run (all the mergeable ones).
TEST(ClusterTest, PartialAnswersCoverSurvivorsForEveryMergeableAlgorithm) {
  for (Algorithm algorithm :
       {Algorithm::kRandom, Algorithm::kMrl99, Algorithm::kFastQDigest,
        Algorithm::kDcm, Algorithm::kDcs}) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    auto cluster = QuantileCluster::Create(BaseOptions(3, algorithm));
    ASSERT_NE(cluster, nullptr);
    const std::vector<uint64_t> data = TestData(3000, 44);
    // Phase 1: all nodes up.
    for (size_t i = 0; i < 2000; ++i) cluster->Append(data[i]);
    ASSERT_TRUE(cluster->Quiesce());
    const uint64_t dead_known = cluster->coordinator().KnownCount(1);
    EXPECT_GT(dead_known, 0u);

    // Phase 2: node 1 dies; its share of the tail is dropped at ingress.
    cluster->KillNode(1);
    for (size_t i = 2000; i < data.size(); ++i) cluster->Append(data[i]);
    ASSERT_TRUE(cluster->Quiesce());

    // The survivors' true union stream is exactly what was routed to them.
    std::vector<uint64_t> survivor_values;
    for (int node : {0, 2}) {
      for (const Update& u : cluster->node_stream(node)) {
        survivor_values.push_back(u.value);
      }
    }
    const ExactOracle oracle(survivor_values);
    for (double phi : TestPhis()) {
      const ClusterAnswer answer = cluster->Query(phi, QueryScope::kLiveOnly);
      EXPECT_TRUE(answer.partial);
      EXPECT_EQ(answer.nodes_merged, 2);
      EXPECT_GE(answer.nodes_suspect, 1);
      EXPECT_EQ(answer.reported_count, survivor_values.size());
      EXPECT_LE(oracle.QuantileError(answer.value, phi), kSlack) << phi;
    }
    // The dead node's staleness is reported, not hidden: its last accepted
    // state is intact and aging.
    const ClusterNodeStatus status =
        cluster->coordinator().Status(1, cluster->now());
    EXPECT_TRUE(status.reported);
    EXPECT_TRUE(status.suspect);
    EXPECT_EQ(status.count, dead_known);
    EXPECT_GT(status.staleness_ticks, uint64_t{256});  // past stale_after
    // kAll still merges the dead node's last accepted sketch (3 nodes, no
    // partial flag -- everyone has reported at least once).
    const ClusterAnswer all = cluster->Query(0.5, QueryScope::kAll);
    EXPECT_EQ(all.nodes_merged, 3);
    EXPECT_FALSE(all.partial);
  }
}

TEST(ClusterTest, DeadNodeDrawsCappedBackoffProbes) {
  auto cluster = QuantileCluster::Create(BaseOptions(2, Algorithm::kRandom));
  ASSERT_NE(cluster, nullptr);
  const std::vector<uint64_t> data = TestData(1500, 55);
  for (size_t i = 0; i < 1000; ++i) cluster->Append(data[i]);
  ASSERT_TRUE(cluster->Quiesce());
  EXPECT_EQ(cluster->coordinator().stats().probes_sent, 0u);
  cluster->KillNode(1);
  for (size_t i = 1000; i < data.size(); ++i) cluster->Append(data[i]);
  cluster->Quiesce(2000);
  const size_t probes = cluster->coordinator().stats().probes_sent;
  EXPECT_GT(probes, 0u);
  // Capped backoff, not probe-per-tick: far fewer probes than ticks.
  EXPECT_LT(probes, 200u);
  EXPECT_TRUE(cluster->coordinator().Suspect(1, cluster->now()));
  // A live node that answers probes is not left suspect.
  EXPECT_FALSE(cluster->coordinator().Suspect(0, cluster->now()));
}

TEST(ClusterTest, MetricsExposePerNodeState) {
  auto cluster = QuantileCluster::Create(BaseOptions(2, Algorithm::kRandom));
  ASSERT_NE(cluster, nullptr);
  for (uint64_t v : TestData(800, 66)) cluster->Append(v);
  ASSERT_TRUE(cluster->Quiesce());
  cluster->KillNode(1);
  obs::MetricsRegistry registry;
  cluster->PublishMetrics(registry, "cluster");
  EXPECT_EQ(registry.GetGauge("cluster.node0.alive").value(), 1);
  EXPECT_EQ(registry.GetGauge("cluster.node1.alive").value(), 0);
  EXPECT_GT(registry.GetGauge("cluster.node0.known_count").value(), 0);
  EXPECT_GT(registry.GetGauge("cluster.reported_count").value(), 0);
  EXPECT_GT(registry.GetCounter("cluster.coordinator.accepted").value(), 0u);
}

#if STREAMQ_DURABILITY_ENABLED

ClusterOptions DurableOptions(int nodes,
                              std::vector<durability::Storage*> storage) {
  ClusterOptions options = BaseOptions(nodes, Algorithm::kRandom);
  options.node_storage = std::move(storage);
  options.node_pipeline.durability.sync_interval = 128;
  options.node_pipeline.durability.checkpoint_interval = 512;
  options.node_pipeline.durability.segment_bytes = 2048;
  options.node_pipeline.durability.keep_checkpoints = 2;
  return options;
}

// Graceful restart: stop a durable node cleanly, bring it back, and the
// epoch fast-forward + recovery must converge the cluster to answers
// bit-identical to an uninterrupted run.
TEST(ClusterTest, DurableNodeRestartResyncsBitIdentically) {
  const std::vector<uint64_t> data = TestData(2500, 77);

  // Reference: uninterrupted run, same config.
  std::vector<uint64_t> reference;
  {
    durability::MemStorage disk0, disk1;
    auto cluster = QuantileCluster::Create(DurableOptions(2, {&disk0, &disk1}));
    ASSERT_NE(cluster, nullptr);
    for (uint64_t v : data) cluster->Append(v);
    ASSERT_TRUE(cluster->Quiesce());
    for (double phi : TestPhis()) reference.push_back(cluster->Query(phi).value);
  }

  durability::MemStorage disk0, disk1;
  auto cluster = QuantileCluster::Create(DurableOptions(2, {&disk0, &disk1}));
  ASSERT_NE(cluster, nullptr);
  for (size_t i = 0; i < 1500; ++i) cluster->Append(data[i]);
  ASSERT_TRUE(cluster->Quiesce());
  // Clean shutdown (destructor writes a final checkpoint), then restart
  // from the same disk and replay whatever the recovery contract asks for.
  cluster->KillNode(0);
  ASSERT_TRUE(cluster->RestartNode(0));
  ASSERT_NE(cluster->node(0), nullptr);
  EXPECT_TRUE(cluster->node(0)->recovery().recovered);
  // The restarted incarnation resumed its epoch horizon from NodeMeta.
  EXPECT_GT(cluster->node(0)->last_sent_epoch(), 0u);
  cluster->ReplayNode(0);
  for (size_t i = 1500; i < data.size(); ++i) cluster->Append(data[i]);
  ASSERT_TRUE(cluster->Quiesce());
  EXPECT_EQ(cluster->StalenessBound(), 0u);
  EXPECT_EQ(cluster->node(0)->DurableSeq(), cluster->node_stream(0).size());

  std::vector<uint64_t> answers;
  for (double phi : TestPhis()) answers.push_back(cluster->Query(phi).value);
  EXPECT_EQ(answers, reference);
}

// A corrupted NodeMeta record must degrade to the ack fast-forward path,
// never break convergence.
TEST(ClusterTest, CorruptNodeMetaDegradesToAckFastForward) {
  const std::vector<uint64_t> data = TestData(2000, 88);
  durability::MemStorage disk0, disk1;
  auto cluster = QuantileCluster::Create(DurableOptions(2, {&disk0, &disk1}));
  ASSERT_NE(cluster, nullptr);
  for (size_t i = 0; i < 1200; ++i) cluster->Append(data[i]);
  ASSERT_TRUE(cluster->Quiesce());
  const uint64_t epoch_before = cluster->coordinator().HighestEpoch(0);
  EXPECT_GT(epoch_before, 0u);

  cluster->KillNode(0);
  // Mangle the meta record on disk; recovery must ignore it.
  ASSERT_TRUE(disk0.WriteFile("cluster/node0/node-meta.sq", "garbage"));
  ASSERT_TRUE(cluster->RestartNode(0));
  // Horizon lost: the node starts below the coordinator's epoch...
  EXPECT_EQ(cluster->node(0)->last_sent_epoch(), 0u);
  cluster->ReplayNode(0);
  for (size_t i = 1200; i < data.size(); ++i) cluster->Append(data[i]);
  // ...and the coordinator's acks fast-forward it past the old horizon.
  ASSERT_TRUE(cluster->Quiesce());
  EXPECT_GT(cluster->node(0)->last_sent_epoch(), epoch_before);
  EXPECT_EQ(cluster->StalenessBound(), 0u);
  const ExactOracle oracle(data);
  for (double phi : TestPhis()) {
    EXPECT_LE(oracle.QuantileError(cluster->Query(phi).value, phi), kSlack);
  }
}

#endif  // STREAMQ_DURABILITY_ENABLED

}  // namespace
}  // namespace streamq::cluster
