// Cross-cutting property tests: structural invariants checked against
// brute-force reference implementations on randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/factory.h"
#include "quantile/fast_qdigest.h"
#include "quantile/gk_tuple_store.h"
#include "quantile/weighted_sample.h"
#include "stream/generators.h"
#include "util/random.h"

namespace streamq {
namespace {

// ---------- WeightedSampleView vs brute force ----------

class WeightedSamplePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(WeightedSamplePropertyTest, MatchesBruteForce) {
  Xoshiro256 rng(GetParam());
  std::vector<WeightedElement<uint64_t>> sample;
  const int n = 1 + static_cast<int>(rng.Below(200));
  for (int i = 0; i < n; ++i) {
    sample.push_back({rng.Below(50), 1 + static_cast<int64_t>(rng.Below(9))});
  }
  // Brute force: expand to a weighted multiset.
  std::vector<uint64_t> expanded;
  for (const auto& e : sample) {
    for (int64_t j = 0; j < e.weight; ++j) expanded.push_back(e.value);
  }
  std::sort(expanded.begin(), expanded.end());

  WeightedSampleView<uint64_t> view(sample);
  EXPECT_EQ(view.TotalWeight(), static_cast<int64_t>(expanded.size()));
  for (uint64_t probe = 0; probe <= 50; probe += 5) {
    const auto expected = std::lower_bound(expanded.begin(), expanded.end(),
                                           probe) -
                          expanded.begin();
    EXPECT_EQ(view.EstimateRank(probe), expected) << "probe " << probe;
  }
  // Quantile answers must be stored values whose rank distance to the
  // target is minimal among stored values.
  for (double frac : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    const double target = frac * static_cast<double>(expanded.size());
    const uint64_t q = view.Quantile(target);
    const double q_dist = std::abs(
        static_cast<double>(view.EstimateRank(q)) - target);
    for (const auto& e : sample) {
      const double other = std::abs(
          static_cast<double>(view.EstimateRank(e.value)) - target);
      EXPECT_LE(q_dist, other + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSamplePropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

// ---------- GkTupleStore structural unit tests ----------

TEST(GkTupleStoreTest, SuccessorAndInsertOrder) {
  GkTupleStore<uint64_t> store;
  auto end = store.Successor(10);
  EXPECT_EQ(end, store.End());
  store.InsertBefore(end, 10, 1, 0);
  store.InsertBefore(store.Successor(30), 30, 1, 0);
  store.InsertBefore(store.Successor(20), 20, 1, 0);
  std::vector<uint64_t> values;
  for (auto it = store.Begin(); it != store.End(); ++it) {
    values.push_back(it->v);
  }
  EXPECT_EQ(values, (std::vector<uint64_t>{10, 20, 30}));
}

TEST(GkTupleStoreTest, EqualValuesKeepInsertionOrder) {
  GkTupleStore<uint64_t> store;
  // Three equal values inserted one at a time: each lands after the
  // previous ones (the monotone sequence stamp), matching the semantics of
  // "insert before the strict successor".
  for (int i = 0; i < 3; ++i) {
    store.InsertBefore(store.Successor(7), 7, 1, static_cast<int64_t>(i));
  }
  std::vector<int64_t> deltas;
  for (auto it = store.Begin(); it != store.End(); ++it) {
    deltas.push_back(store.NodeOf(it->id).delta);
  }
  EXPECT_EQ(deltas, (std::vector<int64_t>{0, 1, 2}));
}

TEST(GkTupleStoreTest, RemoveFoldsMassIntoSuccessor) {
  GkTupleStore<uint64_t> store;
  store.InsertBefore(store.Successor(1), 1, 2, 0);
  store.InsertBefore(store.Successor(2), 2, 3, 0);
  store.InsertBefore(store.Successor(3), 3, 4, 0);
  auto it = store.Begin();
  store.RemoveIntoSuccessor(it);
  EXPECT_EQ(store.Size(), 2u);
  auto first = store.Begin();
  EXPECT_EQ(first->v, 2u);
  EXPECT_EQ(store.NodeOf(first->id).g, 5);  // 2 + 3
}

TEST(GkTupleStoreTest, SlotReuseKeepsOrdering) {
  GkTupleStore<uint64_t> store;
  // Fill, remove, re-insert equal values many times: order must stay
  // consistent (regression for the recycled-id tie-break bug).
  Xoshiro256 rng(9);
  for (int round = 0; round < 500; ++round) {
    const uint64_t v = rng.Below(8);
    store.InsertBefore(store.Successor(v), v, 1, 0);
    if (store.Size() > 4) {
      store.RemoveIntoSuccessor(store.Begin());
    }
    uint64_t prev = 0;
    bool first = true;
    int64_t total = 0;
    for (auto it = store.Begin(); it != store.End(); ++it) {
      if (!first) EXPECT_LE(prev, it->v);
      prev = it->v;
      first = false;
      total += store.NodeOf(it->id).g;
    }
    EXPECT_EQ(total, static_cast<int64_t>(round + 1));
  }
}

// ---------- q-digest structural invariant ----------

TEST(QDigestPropertyTest, NodeCountsSumToN) {
  FastQDigest digest(0.02, 16);
  Xoshiro256 rng(3);
  const int n = 50'000;
  std::map<uint64_t, int64_t> truth;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Below(1 << 16);
    digest.Insert(v);
    ++truth[v];
  }
  digest.Compress();
  // Total mass is preserved exactly by compression.
  EXPECT_EQ(digest.EstimateRank(1 << 16), n);
  // And ranks of random probes stay within the eps guarantee.
  std::vector<uint64_t> sorted;
  for (auto& [v, c] : truth) {
    for (int64_t j = 0; j < c; ++j) sorted.push_back(v);
  }
  for (int probe = 0; probe < 20; ++probe) {
    const uint64_t x = rng.Below(1 << 16);
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), x) -
                    sorted.begin();
    EXPECT_NEAR(static_cast<double>(digest.EstimateRank(x)),
                static_cast<double>(lo), 0.02 * n + 1);
  }
}

// ---------- mergeable-summary property ----------

// The property the parallel ingest subsystem rests on: split a stream into
// k shards uniformly at random, summarise each shard independently, merge
// the shard summaries, and the merged summary answers every phi within the
// same eps*n bound as a single-stream summary would.
class ShardedMergePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedMergePropertyTest, RandomShardingPreservesErrorBound) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const double eps = 0.02;
  const int k = 2 + static_cast<int>(rng.Below(4));  // 2..5 shards

  DatasetSpec spec;
  spec.distribution =
      (seed % 2 == 0) ? Distribution::kUniform : Distribution::kLogUniform;
  spec.n = 40'000;
  spec.log_universe = 20;
  spec.seed = seed * 31 + 7;
  const std::vector<uint64_t> data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  for (Algorithm algorithm :
       {Algorithm::kRandom, Algorithm::kFastQDigest, Algorithm::kDcs}) {
    SketchConfig config;
    config.algorithm = algorithm;
    config.eps = eps;
    config.log_universe = 20;
    config.seed = seed + 1;

    std::vector<std::unique_ptr<QuantileSketch>> shards;
    for (int i = 0; i < k; ++i) shards.push_back(MakeSketch(config));
    for (uint64_t v : data) {
      ASSERT_EQ(shards[rng.Below(static_cast<uint64_t>(k))]->Insert(v),
                StreamqStatus::kOk);
    }

    auto merged = MakeSketch(config);
    for (const auto& shard : shards) {
      ASSERT_EQ(merged->Merge(*shard), StreamqStatus::kOk);
    }
    ASSERT_EQ(merged->Count(), data.size());

    const ErrorStats stats = EvaluateQuantiles(*merged, oracle, eps);
    const double slack = algorithm == Algorithm::kFastQDigest ? 1.0 : 3.0;
    EXPECT_LE(stats.max_error, slack * eps)
        << merged->Name() << " with k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedMergePropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace streamq
