// Tests for the pre-GK deterministic baselines (MP80, MRL98) that the
// paper's study omits as dominated (section 1.2.1).

#include <gtest/gtest.h>

#include <tuple>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/cash_register.h"
#include "quantile/legacy_deterministic.h"
#include "stream/generators.h"

namespace streamq {
namespace {

std::vector<uint64_t> Workload(uint64_t n, Order order, uint64_t seed) {
  DatasetSpec spec;
  spec.n = n;
  spec.log_universe = 24;
  spec.order = order;
  spec.seed = seed;
  return GenerateDataset(spec);
}

using LegacyParam = std::tuple<std::string, double, Order>;
class LegacyErrorTest : public ::testing::TestWithParam<LegacyParam> {};

TEST_P(LegacyErrorTest, MeetsEpsTarget) {
  const auto& name = std::get<0>(GetParam());
  const double eps = std::get<1>(GetParam());
  const Order order = std::get<2>(GetParam());
  const uint64_t n = 60'000;
  const auto data = Workload(n, order, 51);
  const ExactOracle oracle(data);

  std::unique_ptr<QuantileSketch> sketch;
  if (name == "MP80") sketch = std::make_unique<Mp80>(eps);
  if (name == "MRL98") sketch = std::make_unique<Mrl98>(eps, n);
  ASSERT_NE(sketch, nullptr);
  for (uint64_t v : data) sketch->Insert(v);
  EXPECT_EQ(sketch->Count(), n);
  const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, eps);
  EXPECT_LE(stats.max_error, eps) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LegacyErrorTest,
    ::testing::Combine(::testing::Values("MP80", "MRL98"),
                       ::testing::Values(0.05, 0.01),
                       ::testing::Values(Order::kRandom, Order::kSorted)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_eps" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(info.param))) +
             (std::get<2>(info.param) == Order::kRandom ? "_random"
                                                        : "_sorted");
    });

TEST(Mp80Test, SpaceGrowsLogarithmically) {
  // MP80's carry chain adds one level per doubling: space ~ k log(n/k),
  // unlike GK's flat profile -- the reason the study drops it.
  Mp80 small(0.01), large(0.01);
  for (uint64_t v : Workload(20'000, Order::kRandom, 3)) small.Insert(v);
  for (uint64_t v : Workload(640'000, Order::kRandom, 3)) large.Insert(v);
  EXPECT_GT(large.impl().LevelCount(), small.impl().LevelCount());
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(Mp80Test, DominatedByGkInSpace) {
  const double eps = 0.005;
  const auto data = Workload(400'000, Order::kRandom, 5);
  const ExactOracle oracle(data);
  Mp80 mp(eps);
  GkArray gk(eps);
  for (uint64_t v : data) {
    mp.Insert(v);
    gk.Insert(v);
  }
  // Both meet the target...
  EXPECT_LE(EvaluateQuantiles(mp, oracle, eps).max_error, eps);
  EXPECT_LE(EvaluateQuantiles(gk, oracle, eps).max_error, eps);
  // ... but GK uses a fraction of the space.
  EXPECT_LT(2 * gk.MemoryBytes(), mp.MemoryBytes());
}

TEST(Mrl98Test, ParameterOptimiserRespectsConstraints) {
  for (double eps : {0.05, 0.01, 0.001}) {
    for (uint64_t n : {100'000ULL, 10'000'000ULL}) {
      Mrl98 sketch(eps, n);
      const double b = static_cast<double>(sketch.impl().buffer_count());
      const double k = static_cast<double>(sketch.impl().buffer_size());
      EXPECT_GE(k * std::pow(2.0, b - 2), static_cast<double>(n))
          << "coverage violated at eps=" << eps << " n=" << n;
      EXPECT_LE((b - 2) / (2 * k), eps + 1e-12)
          << "error constraint violated at eps=" << eps << " n=" << n;
    }
  }
}

TEST(Mrl98Test, GracefulPastTheHint) {
  // Exceeding the a-priori bound must not crash; the error degrades
  // smoothly rather than failing.
  const double eps = 0.02;
  Mrl98 sketch(eps, 10'000);
  const auto data = Workload(80'000, Order::kRandom, 7);  // 8x the hint
  for (uint64_t v : data) sketch.Insert(v);
  const ExactOracle oracle(data);
  const ErrorStats stats = EvaluateQuantiles(sketch, oracle, eps);
  EXPECT_LE(stats.max_error, 5 * eps);
}

TEST(Mrl98Test, DeterministicAcrossRuns) {
  const auto data = Workload(50'000, Order::kRandom, 9);
  Mrl98 a(0.01, 50'000), b(0.01, 50'000);
  for (uint64_t v : data) {
    a.Insert(v);
    b.Insert(v);
  }
  for (double phi : {0.1, 0.5, 0.9}) EXPECT_EQ(a.Query(phi), b.Query(phi));
}

TEST(LegacyTest, GenericElementTypes) {
  Mp80Impl<double> mp(0.02);
  Mrl98Impl<double> mrl(0.02, 30'000);
  Xoshiro256 rng(4);
  std::vector<double> data;
  for (int i = 0; i < 30'000; ++i) data.push_back(rng.NextGaussian());
  for (double v : data) {
    mp.Insert(v);
    mrl.Insert(v);
  }
  EXPECT_NEAR(mp.Query(0.5), 0.0, 0.08);
  EXPECT_NEAR(mrl.Query(0.5), 0.0, 0.08);
}

}  // namespace
}  // namespace streamq
