// Differential (fuzz-style) testing: random workloads over random
// parameters, every algorithm checked against the brute-force oracle.
// Complements the targeted unit tests with breadth: each seed draws a
// fresh combination of distribution, order, stream length, universe, and
// eps, and the invariants below must hold for every algorithm.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/factory.h"
#include "stream/generators.h"
#include "util/random.h"

namespace streamq {
namespace {

struct FuzzCase {
  DatasetSpec spec;
  double eps;
};

FuzzCase DrawCase(uint64_t seed) {
  Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  FuzzCase c;
  const Distribution dists[] = {Distribution::kUniform, Distribution::kNormal,
                                Distribution::kLogUniform,
                                Distribution::kMpcatLike};
  const Order orders[] = {Order::kRandom, Order::kSorted,
                          Order::kChunkedSorted};
  c.spec.distribution = dists[rng.Below(4)];
  c.spec.order = orders[rng.Below(3)];
  c.spec.log_universe = 10 + static_cast<int>(rng.Below(15));  // 10..24
  c.spec.n = 2'000 + rng.Below(40'000);
  c.spec.sigma = 0.05 + 0.3 * rng.NextDouble();
  c.spec.seed = seed;
  const double epses[] = {0.1, 0.05, 0.02, 0.01};
  c.eps = epses[rng.Below(4)];
  return c;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllAlgorithmsOnRandomWorkload) {
  const FuzzCase c = DrawCase(GetParam());
  const auto data = GenerateDataset(c.spec);
  const ExactOracle oracle(data);
  SCOPED_TRACE(c.spec.Name() + " eps=" + std::to_string(c.eps));

  for (Algorithm a :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
        Algorithm::kDcm, Algorithm::kDcs, Algorithm::kDcsPost}) {
    SketchConfig config;
    config.algorithm = a;
    config.eps = c.eps;
    config.log_universe = c.spec.LogUniverse();
    config.seed = GetParam() * 31 + 7;
    auto sketch = MakeSketch(config);
    for (uint64_t v : data) sketch->Insert(v);

    // Invariant 1: the count is exact.
    ASSERT_EQ(sketch->Count(), c.spec.n) << AlgorithmName(a);

    // Invariant 2: answers stay in (or near) the value domain.
    const uint64_t universe = c.spec.Universe();
    for (double phi : {0.01, 0.5, 0.99}) {
      EXPECT_LT(sketch->Query(phi), universe) << AlgorithmName(a);
    }

    // Invariant 3: error within eps (deterministic) / 2 eps slack for the
    // Monte Carlo ones on arbitrary seeds.
    const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, c.eps);
    const bool randomized =
        a == Algorithm::kMrl99 || a == Algorithm::kRandom ||
        a == Algorithm::kDcm || a == Algorithm::kDcs ||
        a == Algorithm::kDcsPost;
    EXPECT_LE(stats.max_error, randomized ? 2 * c.eps : c.eps)
        << AlgorithmName(a);

    // Invariant 4: rank estimates are monotone (within 2 eps n jitter) and
    // end at n.
    int64_t prev = 0;
    const uint64_t step = std::max<uint64_t>(1, universe / 16);
    for (uint64_t v = 0; v <= universe - 1; v += step) {
      const int64_t r = sketch->EstimateRank(v);
      EXPECT_GE(r + static_cast<int64_t>(2 * c.eps * c.spec.n) + 2, prev)
          << AlgorithmName(a) << " at v=" << v;
      prev = std::max(prev, r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace streamq
