// Tests for the linear-time BLUE solver.
//
// 1. The worked example of the paper (Fig. 3 / Table 2): the tree with
//    sigma^2 = 2 everywhere except an exact root; we reconstructed a y
//    assignment consistent with the table's Z column (y = 15,8,6,4,9,6,4,6,5
//    reproduces every Z exactly), and assert lambda, pi, Z, Delta and x*
//    against the table.
// 2. Property test: on random (unbalanced, possibly single-child) trees the
//    fast solver must match a dense constrained-OLS reference solved via the
//    KKT system with Gaussian elimination.
// 3. Structural invariants: x* of an internal node equals the sum of its
//    children; corrected estimates reduce the residual of the consistency
//    constraints to zero.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quantile/post/blue_solver.h"
#include "quantile/post/truncated_tree.h"
#include "util/random.h"

namespace streamq {
namespace {

// Builds the Fig. 3 tree: ids 1..9 mapped to indices 0..8.
//   1 -> (2, 3); 2 -> (4, 5); 3 -> (6, 7); 5 -> (8, 9).
TruncatedTree PaperExampleTree() {
  const double ys[9] = {15, 8, 6, 4, 9, 6, 4, 6, 5};
  std::vector<TreeNode> nodes(9);
  for (int i = 0; i < 9; ++i) {
    nodes[i].y = ys[i];
    nodes[i].sigma2 = i == 0 ? 0.0 : 2.0;
    nodes[i].level = 0;  // levels are irrelevant to the solver
    nodes[i].cell = static_cast<uint64_t>(i);
  }
  auto link = [&](int parent, int left, int right) {
    nodes[parent].left = left;
    nodes[parent].right = right;
    nodes[left].parent = parent;
    nodes[right].parent = parent;
  };
  link(0, 1, 2);
  link(1, 3, 4);
  link(2, 5, 6);
  link(4, 7, 8);
  return TruncatedTree(std::move(nodes));
}

TEST(BlueSolverTest, PaperWorkedExample) {
  const TruncatedTree tree = PaperExampleTree();
  const std::vector<double> xstar = SolveBlue(tree);
  // Table 2 of the paper (nodes 1..9).
  const double expected[9] = {15.0, 8.94, 6.06, 1.16, 7.77,
                              4.04, 2.03, 4.38, 3.38};
  for (int i = 0; i < 9; ++i) {
    EXPECT_NEAR(xstar[i], expected[i], 0.01) << "node " << (i + 1);
  }
}

TEST(BlueSolverTest, PaperExampleConsistency) {
  const TruncatedTree tree = PaperExampleTree();
  const std::vector<double> xstar = SolveBlue(tree);
  // After correction the estimates are consistent: parent = sum of children.
  EXPECT_NEAR(xstar[0], xstar[1] + xstar[2], 1e-9);
  EXPECT_NEAR(xstar[1], xstar[3] + xstar[4], 1e-9);
  EXPECT_NEAR(xstar[2], xstar[5] + xstar[6], 1e-9);
  EXPECT_NEAR(xstar[4], xstar[7] + xstar[8], 1e-9);
}

// ---------- dense constrained-OLS reference ----------

// Solves: minimise sum_{v estimated} (y_v - A_v x)^2 / sigma2_v subject to
// A_root x = y_root, where columns of A are the tree leaves and A_v marks
// the leaves below v. Returns x* per node (A_v x for internal nodes).
std::vector<double> DenseReference(const TruncatedTree& tree) {
  const auto& nodes = tree.nodes();
  const int m = static_cast<int>(nodes.size());
  // Leaves and their column ids.
  std::vector<int> col(m, -1);
  int tau = 0;
  for (int v = 0; v < m; ++v) {
    if (nodes[v].left < 0 && nodes[v].right < 0) col[v] = tau++;
  }
  // A_v by upward propagation: start from leaves.
  std::vector<std::vector<double>> A(m, std::vector<double>(tau, 0.0));
  // Process children before parents: nodes were appended parent-first in
  // construction, so reverse index order works for trees built by the
  // extractor; for hand-built trees we iterate until fixpoint instead.
  for (int v = 0; v < m; ++v) {
    if (col[v] >= 0) A[v][col[v]] = 1.0;
  }
  for (int pass = 0; pass < m; ++pass) {
    for (int v = m - 1; v >= 0; --v) {
      if (col[v] >= 0) continue;
      for (int t = 0; t < tau; ++t) {
        double s = 0;
        if (nodes[v].left >= 0) s += A[nodes[v].left][t];
        if (nodes[v].right >= 0) s += A[nodes[v].right][t];
        A[v][t] = s;
      }
    }
  }
  // KKT system over [x; mu]: dimension tau + 1 (root constraint only; tests
  // use trees whose only exact node is the root).
  const int dim = tau + 1;
  std::vector<std::vector<double>> K(dim, std::vector<double>(dim, 0.0));
  std::vector<double> rhs(dim, 0.0);
  for (int v = 0; v < m; ++v) {
    if (nodes[v].sigma2 == 0.0) continue;
    const double w = 1.0 / nodes[v].sigma2;
    for (int a = 0; a < tau; ++a) {
      if (A[v][a] == 0.0) continue;
      for (int b = 0; b < tau; ++b) {
        K[a][b] += 2.0 * w * A[v][a] * A[v][b];
      }
      rhs[a] += 2.0 * w * A[v][a] * nodes[v].y;
    }
  }
  for (int a = 0; a < tau; ++a) {
    K[a][tau] = A[0][a];
    K[tau][a] = A[0][a];
  }
  rhs[tau] = nodes[0].y;
  // Gaussian elimination with partial pivoting.
  for (int i = 0; i < dim; ++i) {
    int piv = i;
    for (int r = i + 1; r < dim; ++r) {
      if (std::abs(K[r][i]) > std::abs(K[piv][i])) piv = r;
    }
    std::swap(K[i], K[piv]);
    std::swap(rhs[i], rhs[piv]);
    for (int r = i + 1; r < dim; ++r) {
      const double f = K[r][i] / K[i][i];
      for (int c2 = i; c2 < dim; ++c2) K[r][c2] -= f * K[i][c2];
      rhs[r] -= f * rhs[i];
    }
  }
  std::vector<double> sol(dim);
  for (int i = dim - 1; i >= 0; --i) {
    double s = rhs[i];
    for (int c2 = i + 1; c2 < dim; ++c2) s -= K[i][c2] * sol[c2];
    sol[i] = s / K[i][i];
  }
  std::vector<double> xstar(m);
  for (int v = 0; v < m; ++v) {
    double s = 0;
    for (int t = 0; t < tau; ++t) s += A[v][t] * sol[t];
    xstar[v] = s;
  }
  return xstar;
}

// Random binary tree with optional single-child nodes (as pruning creates).
TruncatedTree RandomTree(uint64_t seed, int max_nodes) {
  Xoshiro256 rng(seed);
  std::vector<TreeNode> nodes(1);
  nodes[0].y = 100.0 + rng.NextDouble() * 50;
  nodes[0].sigma2 = 0.0;  // exact root
  std::vector<int> frontier = {0};
  while (!frontier.empty() && static_cast<int>(nodes.size()) < max_nodes) {
    const int v = frontier.back();
    frontier.pop_back();
    const double r = rng.NextDouble();
    int kids = r < 0.2 ? 0 : (r < 0.45 ? 1 : 2);
    if (v == 0 && kids == 0) kids = 2;  // root must have estimated children
    for (int k = 0; k < kids; ++k) {
      TreeNode child;
      child.parent = v;
      child.y = nodes[v].y * (0.3 + 0.4 * rng.NextDouble()) +
                rng.NextGaussian() * 3.0;
      child.sigma2 = 0.5 + 4.0 * rng.NextDouble();
      const int idx = static_cast<int>(nodes.size());
      nodes.push_back(child);
      if (k == 0) {
        nodes[v].left = idx;
      } else {
        nodes[v].right = idx;
      }
      frontier.push_back(idx);
    }
  }
  return TruncatedTree(std::move(nodes));
}

class BlueRandomTreeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlueRandomTreeTest, MatchesDenseReference) {
  const TruncatedTree tree = RandomTree(GetParam(), 60);
  if (tree.nodes().size() < 3) GTEST_SKIP();
  const std::vector<double> fast = SolveBlue(tree);
  const std::vector<double> dense = DenseReference(tree);
  for (size_t v = 0; v < tree.nodes().size(); ++v) {
    EXPECT_NEAR(fast[v], dense[v], 1e-6 * (1.0 + std::abs(dense[v])))
        << "node " << v;
  }
}

TEST_P(BlueRandomTreeTest, ChildrenSumToParent) {
  const TruncatedTree tree = RandomTree(GetParam() + 1000, 80);
  const std::vector<double> fast = SolveBlue(tree);
  const auto& nodes = tree.nodes();
  for (size_t v = 0; v < nodes.size(); ++v) {
    double sum = 0;
    bool internal = false;
    if (nodes[v].left >= 0) {
      sum += fast[nodes[v].left];
      internal = true;
    }
    if (nodes[v].right >= 0) {
      sum += fast[nodes[v].right];
      internal = true;
    }
    if (internal) {
      EXPECT_NEAR(fast[v], sum, 1e-7 * (1.0 + std::abs(fast[v])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlueRandomTreeTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(BlueSolverTest, VarianceReductionOnStar) {
  // Root (exact, y = 10) with children y1 = 6, y2 = 6: BLUE must split the
  // inconsistency evenly: x1* = x2* = 5.
  std::vector<TreeNode> nodes(3);
  nodes[0].y = 10;
  nodes[0].sigma2 = 0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1] = TreeNode{0, 1, 6.0, 1.0, 0, -1, -1};
  nodes[2] = TreeNode{0, 2, 6.0, 1.0, 0, -1, -1};
  const auto xstar = SolveBlue(TruncatedTree(std::move(nodes)));
  EXPECT_NEAR(xstar[0], 10.0, 1e-12);
  EXPECT_NEAR(xstar[1], 5.0, 1e-9);
  EXPECT_NEAR(xstar[2], 5.0, 1e-9);
}

TEST(BlueSolverTest, UnequalVariancesShiftTheCorrection) {
  // The noisier child absorbs more of the inconsistency.
  std::vector<TreeNode> nodes(3);
  nodes[0].y = 10;
  nodes[0].sigma2 = 0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1] = TreeNode{0, 1, 6.0, 1.0, 0, -1, -1};   // precise
  nodes[2] = TreeNode{0, 2, 6.0, 9.0, 0, -1, -1};   // noisy
  const auto xstar = SolveBlue(TruncatedTree(std::move(nodes)));
  EXPECT_NEAR(xstar[1] + xstar[2], 10.0, 1e-9);
  // Corrections proportional to variance: -0.2 vs -1.8.
  EXPECT_NEAR(xstar[1], 5.8, 1e-6);
  EXPECT_NEAR(xstar[2], 4.2, 1e-6);
}

TEST(BlueSolverTest, LeafOnlyTreeIsUntouched) {
  std::vector<TreeNode> nodes(1);
  nodes[0].y = 5;
  nodes[0].sigma2 = 0;
  const auto xstar = SolveBlue(TruncatedTree(std::move(nodes)));
  EXPECT_DOUBLE_EQ(xstar[0], 5.0);
}

TEST(BlueSolverTest, SingleChildChain) {
  // root -> a -> b (pruned siblings): BLUE fuses the chain observations.
  std::vector<TreeNode> nodes(3);
  nodes[0].y = 10;
  nodes[0].sigma2 = 0;
  nodes[0].left = 1;
  nodes[1] = TreeNode{0, 0, 9.0, 2.0, 0, 2, -1};
  nodes[2] = TreeNode{0, 0, 8.0, 2.0, 1, -1, -1};
  const auto fast = SolveBlue(TruncatedTree(std::move(nodes)));
  // x_a == x_b == x_leaf; constraint pins it to y_root = 10.
  EXPECT_NEAR(fast[0], 10.0, 1e-9);
  EXPECT_NEAR(fast[1], 10.0, 1e-9);
  EXPECT_NEAR(fast[2], 10.0, 1e-9);
}

}  // namespace
}  // namespace streamq
