// End-to-end integration tests: every algorithm through the factory on the
// paper's workloads, cross-module behaviour, and the full measurement
// pipeline.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <set>
#include <tuple>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/factory.h"
#include "stream/generators.h"

namespace streamq {
namespace {

TEST(FactoryTest, BuildsEveryAlgorithm) {
  for (Algorithm a :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
        Algorithm::kRss, Algorithm::kDcm, Algorithm::kDcs,
        Algorithm::kDcsPost}) {
    SketchConfig config;
    config.algorithm = a;
    config.eps = 0.05;
    config.log_universe = 16;
    auto sketch = MakeSketch(config);
    ASSERT_NE(sketch, nullptr);
    EXPECT_EQ(sketch->Name(), AlgorithmName(a));
    sketch->Insert(1);
    sketch->Insert(2);
    sketch->Insert(3);
    EXPECT_EQ(sketch->Count(), 3u);
    EXPECT_GT(sketch->MemoryBytes(), 0u);
    const uint64_t q = sketch->Query(0.5);
    EXPECT_LT(q, 1u << 16);
  }
}

TEST(FactoryTest, ParseRoundTrips) {
  for (Algorithm a : CashRegisterAlgorithms()) {
    Algorithm parsed;
    ASSERT_TRUE(ParseAlgorithm(AlgorithmName(a), &parsed));
    EXPECT_EQ(parsed, a);
  }
  Algorithm parsed;
  EXPECT_FALSE(ParseAlgorithm("NoSuchAlgorithm", &parsed));
}

TEST(FactoryTest, AlgorithmListsArePaperComplete) {
  EXPECT_EQ(CashRegisterAlgorithms().size(), 6u);
  EXPECT_EQ(TurnstileAlgorithms().size(), 3u);
}

TEST(FactoryTest, DeletionSupportMatchesModel) {
  SketchConfig config;
  config.eps = 0.05;
  config.log_universe = 16;
  for (Algorithm a : CashRegisterAlgorithms()) {
    config.algorithm = a;
    EXPECT_FALSE(MakeSketch(config)->SupportsDeletion()) << AlgorithmName(a);
  }
  for (Algorithm a : TurnstileAlgorithms()) {
    config.algorithm = a;
    EXPECT_TRUE(MakeSketch(config)->SupportsDeletion()) << AlgorithmName(a);
  }
}

// Every algorithm, on the MPCAT-like workload (the paper's primary dataset),
// must deliver its eps guarantee (deterministic) or stay within eps for the
// fixed seed (randomized). RSS is exempted from the eps bound (the paper
// drops it for exactly that reason) but must still be sane.
using E2eParam = std::tuple<Algorithm, double>;
class EndToEndTest : public ::testing::TestWithParam<E2eParam> {};

TEST_P(EndToEndTest, MpcatLikeWorkload) {
  const auto& [algorithm, eps] = GetParam();
  if (algorithm == Algorithm::kRss && eps < 0.05) {
    // RSS updates touch all w*d counters per level; at eps = 0.01 the
    // natural width of 1/eps^2 makes this test take minutes for no extra
    // coverage (the eps = 0.05 instance exercises the same code).
    GTEST_SKIP() << "RSS at small eps is prohibitively slow by design";
  }
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.order = Order::kChunkedSorted;
  spec.n = 60'000;
  spec.seed = 99;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  SketchConfig config;
  config.algorithm = algorithm;
  config.eps = eps;
  config.log_universe = spec.LogUniverse();
  config.seed = 4242;
  auto sketch = MakeSketch(config);
  for (uint64_t v : data) sketch->Insert(v);
  EXPECT_EQ(sketch->Count(), spec.n);

  const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, eps);
  if (algorithm == Algorithm::kRss) {
    EXPECT_LT(stats.max_error, 0.5);
  } else {
    EXPECT_LE(stats.max_error, eps) << AlgorithmName(algorithm);
  }
  EXPECT_LE(stats.avg_error, stats.max_error);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, EndToEndTest,
    ::testing::Combine(
        ::testing::Values(Algorithm::kGkTheory, Algorithm::kGkAdaptive,
                          Algorithm::kGkArray, Algorithm::kFastQDigest,
                          Algorithm::kMrl99, Algorithm::kRandom,
                          Algorithm::kRss, Algorithm::kDcm, Algorithm::kDcs,
                          Algorithm::kDcsPost),
        ::testing::Values(0.05, 0.01)),
    [](const auto& info) {
      return AlgorithmName(std::get<0>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(info.param)));
    });

TEST(IntegrationTest, ComparisonAlgorithmsIgnoreUniverse) {
  // A comparison-based summary must behave identically when the stream is
  // shifted by a constant (only order matters).
  DatasetSpec spec;
  spec.n = 30'000;
  spec.log_universe = 16;
  spec.seed = 31;
  const auto data = GenerateDataset(spec);

  for (Algorithm a : {Algorithm::kGkAdaptive, Algorithm::kGkArray,
                      Algorithm::kRandom, Algorithm::kMrl99}) {
    SketchConfig config;
    config.algorithm = a;
    config.eps = 0.02;
    config.seed = 7;
    auto base = MakeSketch(config);
    auto shifted = MakeSketch(config);
    const uint64_t offset = 1ULL << 40;
    for (uint64_t v : data) {
      base->Insert(v);
      shifted->Insert(v + offset);
    }
    for (double phi : {0.1, 0.5, 0.9}) {
      EXPECT_EQ(base->Query(phi) + offset, shifted->Query(phi))
          << AlgorithmName(a) << " phi=" << phi;
    }
  }
}

TEST(IntegrationTest, AnytimeQueries) {
  // Streaming algorithms must answer correctly at any prefix of the stream
  // (no a-priori knowledge of n).
  DatasetSpec spec;
  spec.n = 50'000;
  spec.log_universe = 20;
  spec.seed = 37;
  const auto data = GenerateDataset(spec);

  SketchConfig config;
  config.algorithm = Algorithm::kGkArray;
  config.eps = 0.02;
  auto sketch = MakeSketch(config);
  std::vector<uint64_t> prefix;
  for (size_t i = 0; i < data.size(); ++i) {
    sketch->Insert(data[i]);
    prefix.push_back(data[i]);
    if ((i + 1) % 10'000 == 0) {
      const ExactOracle oracle(prefix);
      const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, 0.02);
      EXPECT_LE(stats.max_error, 0.02) << "at prefix " << (i + 1);
    }
  }
}

TEST(IntegrationTest, TurnstileWorkloadThroughInterface) {
  DatasetSpec spec;
  spec.n = 20'000;
  spec.log_universe = 16;
  spec.seed = 51;
  const auto data = GenerateDataset(spec);
  const auto updates = MakeTurnstileWorkload(data, 0.2, spec.Universe(), 3);

  for (Algorithm a : TurnstileAlgorithms()) {
    SketchConfig config;
    config.algorithm = a;
    config.eps = 0.02;
    config.log_universe = 16;
    config.seed = 13;
    auto sketch = MakeSketch(config);
    for (const Update& u : updates) {
      if (u.delta > 0) {
        sketch->Insert(u.value);
      } else {
        sketch->Erase(u.value);
      }
    }
    EXPECT_EQ(sketch->Count(), data.size()) << AlgorithmName(a);
    const ExactOracle oracle(data);
    const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, 0.02);
    EXPECT_LE(stats.max_error, 0.02) << AlgorithmName(a);
  }
}

TEST(IntegrationTest, EraseOnCashRegisterIsCleanlyRejected) {
  // Cash-register sketches cannot delete; Erase is a documented error, not
  // an abort, and leaves the sketch untouched.
  SketchConfig config;
  config.algorithm = Algorithm::kGkArray;
  config.eps = 0.1;
  auto sketch = MakeSketch(config);
  EXPECT_EQ(sketch->Insert(5), StreamqStatus::kOk);
  EXPECT_EQ(sketch->Erase(5), StreamqStatus::kUnsupported);
  EXPECT_EQ(sketch->Count(), 1u);
  EXPECT_EQ(sketch->Query(0.5), 5u);
}

TEST(IntegrationTest, InvalidPhiIsRejected) {
  // Query validates phi in [0, 1]; out-of-range (and NaN) return 0 /
  // an empty batch instead of reading out of bounds.
  SketchConfig config;
  config.algorithm = Algorithm::kGkArray;
  config.eps = 0.1;
  auto sketch = MakeSketch(config);
  for (uint64_t v = 1; v <= 100; ++v) sketch->Insert(v);
  EXPECT_EQ(sketch->Query(-0.1), 0u);
  EXPECT_EQ(sketch->Query(1.5), 0u);
  EXPECT_EQ(sketch->Query(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(sketch->QueryMany({0.5, -1.0}),
            (std::vector<uint64_t>{0, 0}));  // batch: all-zero on any bad phi
  EXPECT_GE(sketch->Query(0.5), 1u);
}

TEST(IntegrationTest, EmptySketchesQuerySafely) {
  // Querying before any insertion is defined for every algorithm: the
  // "quantile of nothing" is 0, and batch queries keep their shape.
  SketchConfig config;
  config.eps = 0.05;
  config.log_universe = 16;
  for (Algorithm a :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
        Algorithm::kDcm, Algorithm::kDcs, Algorithm::kDcsPost}) {
    config.algorithm = a;
    auto sketch = MakeSketch(config);
    EXPECT_EQ(sketch->Count(), 0u) << AlgorithmName(a);
    EXPECT_LT(sketch->Query(0.5), 1u << 16) << AlgorithmName(a);
    const auto many = sketch->QueryMany({0.1, 0.5, 0.9});
    EXPECT_EQ(many.size(), 3u) << AlgorithmName(a);
  }
}

TEST(IntegrationTest, MemoryAccountingOrdering) {
  // At eps = 1e-3 on identical data, the paper's space ordering holds:
  // Random < GKArray-or-GKAdaptive < FastQDigest, and DCS < DCM.
  DatasetSpec spec;
  spec.n = 100'000;
  spec.log_universe = 24;
  spec.seed = 61;
  const auto data = GenerateDataset(spec);

  auto measure = [&](Algorithm a) {
    SketchConfig config;
    config.algorithm = a;
    config.eps = 1e-3;
    config.log_universe = 24;
    auto sketch = MakeSketch(config);
    for (uint64_t v : data) sketch->Insert(v);
    return sketch->MemoryBytes();
  };
  const size_t random_bytes = measure(Algorithm::kRandom);
  const size_t qdigest_bytes = measure(Algorithm::kFastQDigest);
  const size_t dcm_bytes = measure(Algorithm::kDcm);
  const size_t dcs_bytes = measure(Algorithm::kDcs);
  EXPECT_LT(random_bytes, qdigest_bytes);
  EXPECT_LT(dcs_bytes, dcm_bytes);
}

}  // namespace
}  // namespace streamq
