// Tests for the dataset generators and turnstile workload builder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "stream/generators.h"

namespace streamq {
namespace {

TEST(GeneratorsTest, DeterministicForSameSeed) {
  DatasetSpec spec;
  spec.n = 10'000;
  spec.seed = 17;
  EXPECT_EQ(GenerateDataset(spec), GenerateDataset(spec));
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  DatasetSpec spec;
  spec.n = 1'000;
  spec.seed = 1;
  auto a = GenerateDataset(spec);
  spec.seed = 2;
  auto b = GenerateDataset(spec);
  EXPECT_NE(a, b);
}

TEST(GeneratorsTest, RespectsLength) {
  for (uint64_t n : {1ULL, 10ULL, 12'345ULL}) {
    DatasetSpec spec;
    spec.n = n;
    EXPECT_EQ(GenerateDataset(spec).size(), n);
  }
}

TEST(GeneratorsTest, UniformStaysInUniverse) {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.log_universe = 16;
  spec.n = 50'000;
  for (uint64_t v : GenerateDataset(spec)) EXPECT_LT(v, 1ULL << 16);
}

TEST(GeneratorsTest, UniformCoversUniverse) {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.log_universe = 8;  // 256 values, 50k draws: all should appear
  spec.n = 50'000;
  std::map<uint64_t, int> counts;
  for (uint64_t v : GenerateDataset(spec)) ++counts[v];
  EXPECT_EQ(counts.size(), 256u);
}

TEST(GeneratorsTest, NormalIsConcentrated) {
  DatasetSpec spec;
  spec.distribution = Distribution::kNormal;
  spec.log_universe = 20;
  spec.sigma = 0.05;
  spec.n = 50'000;
  const double u = static_cast<double>(spec.Universe());
  double sum = 0;
  uint64_t inside = 0;
  for (uint64_t v : GenerateDataset(spec)) {
    sum += static_cast<double>(v);
    if (std::abs(static_cast<double>(v) - u / 2) < 2 * spec.sigma * u) ++inside;
  }
  EXPECT_NEAR(sum / spec.n, u / 2, 0.01 * u);
  // ~95% within two standard deviations.
  EXPECT_GT(inside, spec.n * 90 / 100);
}

TEST(GeneratorsTest, NormalSkewResponds) {
  // Smaller sigma -> smaller spread.
  auto spread = [](double sigma) {
    DatasetSpec spec;
    spec.distribution = Distribution::kNormal;
    spec.log_universe = 24;
    spec.sigma = sigma;
    spec.n = 20'000;
    auto data = GenerateDataset(spec);
    const double mean =
        std::accumulate(data.begin(), data.end(), 0.0) / data.size();
    double var = 0;
    for (uint64_t v : data) {
      var += (v - mean) * (v - mean);
    }
    return std::sqrt(var / data.size());
  };
  EXPECT_LT(spread(0.05), spread(0.25));
}

TEST(GeneratorsTest, SortedOrderIsSorted) {
  DatasetSpec spec;
  spec.order = Order::kSorted;
  spec.n = 10'000;
  auto data = GenerateDataset(spec);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(GeneratorsTest, ChunkedSortedHasLocalRuns) {
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.order = Order::kChunkedSorted;
  spec.n = 100'000;
  auto data = GenerateDataset(spec);
  // Not globally sorted ...
  EXPECT_FALSE(std::is_sorted(data.begin(), data.end()));
  // ... but far more locally ascending than a random stream (~50%).
  uint64_t ascending = 0;
  for (size_t i = 1; i < data.size(); ++i) ascending += data[i - 1] <= data[i];
  EXPECT_GT(ascending, data.size() * 90 / 100);
}

TEST(GeneratorsTest, MpcatUniverse) {
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.n = 20'000;
  EXPECT_EQ(spec.Universe(), 8'640'000u);
  EXPECT_EQ(spec.LogUniverse(), 24);
  for (uint64_t v : GenerateDataset(spec)) EXPECT_LT(v, 8'640'000u);
}

TEST(GeneratorsTest, MpcatIsNonUniform) {
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.n = 100'000;
  auto data = GenerateDataset(spec);
  // Bucket into 10 ranges; a uniform distribution would put ~10% in each.
  int buckets[10] = {0};
  for (uint64_t v : data) {
    ++buckets[v * 10 / 8'640'000];
  }
  const int mx = *std::max_element(buckets, buckets + 10);
  const int mn = *std::min_element(buckets, buckets + 10);
  EXPECT_GT(mx, 2 * mn);
}

TEST(GeneratorsTest, TerrainUniverse) {
  DatasetSpec spec;
  spec.distribution = Distribution::kTerrainLike;
  spec.n = 10'000;
  EXPECT_EQ(spec.Universe(), 1ULL << 24);
  for (uint64_t v : GenerateDataset(spec)) EXPECT_LT(v, 1ULL << 24);
}

TEST(GeneratorsTest, LogUniformIsSkewed) {
  DatasetSpec spec;
  spec.distribution = Distribution::kLogUniform;
  spec.log_universe = 32;
  spec.n = 50'000;
  auto data = GenerateDataset(spec);
  std::sort(data.begin(), data.end());
  // Median far below the midpoint of the universe.
  EXPECT_LT(data[data.size() / 2], 1ULL << 31);
  // Half the mass in the bottom 2^16th of the universe.
  const auto low = std::upper_bound(data.begin(), data.end(), 1ULL << 16) -
                   data.begin();
  EXPECT_GT(low, static_cast<long>(data.size() / 4));
}

TEST(GeneratorsTest, SpecName) {
  DatasetSpec spec;
  spec.distribution = Distribution::kNormal;
  spec.n = 12;
  spec.log_universe = 16;
  spec.order = Order::kSorted;
  EXPECT_EQ(spec.Name(), "normal-n12-logu16-sorted");
}

TEST(TurnstileWorkloadTest, SurvivorsMatchData) {
  DatasetSpec spec;
  spec.n = 2'000;
  spec.log_universe = 12;
  auto data = GenerateDataset(spec);
  auto updates = MakeTurnstileWorkload(data, 0.5, spec.Universe(), 9);

  std::map<uint64_t, int64_t> multiset;
  for (const Update& u : updates) {
    multiset[u.value] += u.delta;
    ASSERT_GE(multiset[u.value], 0) << "multiplicity went negative";
  }
  std::map<uint64_t, int64_t> expected;
  for (uint64_t v : data) ++expected[v];
  for (auto& [v, c] : multiset) {
    if (c != 0) {
      EXPECT_EQ(expected[v], c);
    }
  }
  for (auto& [v, c] : expected) EXPECT_EQ(multiset[v], c);
}

TEST(TurnstileWorkloadTest, ChurnAddsUpdates) {
  std::vector<uint64_t> data(1000, 5);
  auto updates = MakeTurnstileWorkload(data, 0.25, 1 << 10, 3);
  EXPECT_EQ(updates.size(), 1000u + 2 * 250u);
}

}  // namespace
}  // namespace streamq
