// Unit tests for the durable-ingest subsystem (src/durability/): the
// storage backends, the fault injector, the WAL record framing (including
// the exhaustive truncate-at-every-byte and flip-every-header-byte
// torture loops), the segmented WAL writer, the atomic checkpoint store,
// and clean end-to-end pipeline recovery. Crash-point sweeps live in
// crash_matrix_test.cc.

#if !defined(STREAMQ_DURABILITY_ENABLED)
#error "STREAMQ_DURABILITY_ENABLED must be defined by the build"
#endif
#if STREAMQ_DURABILITY_ENABLED

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/faulty_storage.h"
#include "durability/storage.h"
#include "durability/wal.h"
#include "exact/exact_oracle.h"
#include "ingest/ingest_pipeline.h"
#include "quantile/factory.h"
#include "stream/generators.h"
#include "stream/update.h"

namespace streamq::durability {
namespace {

// ---------- storage backends ----------

// Shared conformance check: every Storage implementation must pass.
void ExerciseStorage(Storage& storage, const std::string& root) {
  ASSERT_TRUE(storage.CreateDir(root + "/sub"));
  const std::string path = root + "/sub/file.log";

  std::unique_ptr<WritableFile> file = storage.Create(path);
  ASSERT_NE(file, nullptr);
  EXPECT_TRUE(file->Append("hello "));
  EXPECT_TRUE(file->Append("world"));
  EXPECT_TRUE(file->Sync());
  file.reset();

  std::string contents;
  ASSERT_TRUE(storage.ReadFile(path, &contents));
  EXPECT_EQ(contents, "hello world");
  EXPECT_FALSE(storage.ReadFile(root + "/sub/absent", &contents));
  EXPECT_EQ(contents, "hello world") << "failed read must not touch *out";

  // Create truncates an existing file.
  file = storage.Create(path);
  ASSERT_NE(file, nullptr);
  EXPECT_TRUE(file->Append("abcdef"));
  EXPECT_TRUE(file->Sync());
  file.reset();
  ASSERT_TRUE(storage.ReadFile(path, &contents));
  EXPECT_EQ(contents, "abcdef");

  EXPECT_TRUE(storage.Truncate(path, 4));
  ASSERT_TRUE(storage.ReadFile(path, &contents));
  EXPECT_EQ(contents, "abcd");
  EXPECT_TRUE(storage.Truncate(path, 100)) << "truncate beyond size: no-op";
  ASSERT_TRUE(storage.ReadFile(path, &contents));
  EXPECT_EQ(contents, "abcd");

  const std::string renamed = root + "/sub/renamed.log";
  ASSERT_TRUE(storage.Rename(path, renamed));
  EXPECT_FALSE(storage.ReadFile(path, &contents));
  ASSERT_TRUE(storage.ReadFile(renamed, &contents));
  EXPECT_EQ(contents, "abcd");

  ASSERT_TRUE(storage.WriteFile(root + "/sub/other", "xyz"));
  std::vector<std::string> names = storage.List(root + "/sub");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "other");  // sorted
  EXPECT_EQ(names[1], "renamed.log");
  EXPECT_TRUE(storage.List(root + "/nonexistent").empty());

  EXPECT_TRUE(storage.Delete(renamed));
  EXPECT_FALSE(storage.ReadFile(renamed, &contents));
  EXPECT_FALSE(storage.Delete(renamed)) << "double delete fails";
}

TEST(MemStorageTest, Conformance) {
  MemStorage storage;
  ExerciseStorage(storage, "mem");
  EXPECT_EQ(storage.FileSize("mem/sub/other"), 3);
  EXPECT_EQ(storage.FileSize("mem/sub/absent"), -1);
}

TEST(PosixStorageTest, Conformance) {
  PosixStorage storage;
  ExerciseStorage(storage, ::testing::TempDir() + "streamq_posix_test");
}

// ---------- fault injector ----------

TEST(FaultyStorageTest, PassesThroughWhenPerfect) {
  MemStorage base;
  FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/7);
  ExerciseStorage(faulty, "mem");
  EXPECT_FALSE(faulty.crashed());
  EXPECT_GT(faulty.op_count(), 0u);
}

TEST(FaultyStorageTest, TornWritePersistsStrictPrefix) {
  MemStorage base;
  StorageFaultSpec spec;
  spec.torn_write = 1.0;
  FaultyStorage faulty(&base, spec, /*seed=*/21);
  auto file = faulty.Create("f");
  ASSERT_NE(file, nullptr);
  EXPECT_FALSE(file->Append("0123456789"));
  EXPECT_LT(base.FileSize("f"), 10) << "torn write persisted everything";
  EXPECT_GE(base.FileSize("f"), 0);
  EXPECT_EQ(faulty.stats().torn_writes, 1u);
}

TEST(FaultyStorageTest, FailedAppendAndSyncAreCounted) {
  MemStorage base;
  StorageFaultSpec spec;
  spec.fail_append = 1.0;
  FaultyStorage faulty(&base, spec, /*seed=*/3);
  auto file = faulty.Create("f");
  ASSERT_NE(file, nullptr);
  EXPECT_FALSE(file->Append("data"));
  EXPECT_EQ(base.FileSize("f"), 0) << "failed append must persist nothing";
  EXPECT_EQ(faulty.stats().failed_appends, 1u);

  StorageFaultSpec sync_spec;
  sync_spec.fail_sync = 1.0;
  FaultyStorage faulty2(&base, sync_spec, /*seed=*/4);
  auto file2 = faulty2.Create("g");
  ASSERT_NE(file2, nullptr);
  EXPECT_TRUE(file2->Append("data"));
  EXPECT_FALSE(file2->Sync());
  EXPECT_EQ(faulty2.stats().failed_syncs, 1u);
}

TEST(FaultyStorageTest, ShortReadAndBitFlipMangleOnlyTheCopy) {
  MemStorage base;
  ASSERT_TRUE(base.WriteFile("f", std::string(100, 'a')));

  StorageFaultSpec spec;
  spec.short_read = 1.0;
  FaultyStorage faulty(&base, spec, /*seed=*/9);
  std::string out;
  ASSERT_TRUE(faulty.ReadFile("f", &out));
  EXPECT_LT(out.size(), 100u);
  EXPECT_EQ(base.FileSize("f"), 100) << "read fault must not touch the file";

  StorageFaultSpec flip_spec;
  flip_spec.bit_flip_read = 1.0;
  FaultyStorage flipper(&base, flip_spec, /*seed=*/10);
  ASSERT_TRUE(flipper.ReadFile("f", &out));
  ASSERT_EQ(out.size(), 100u);
  EXPECT_NE(out, std::string(100, 'a')) << "exactly one bit should differ";
  std::string clean;
  ASSERT_TRUE(base.ReadFile("f", &clean));
  EXPECT_EQ(clean, std::string(100, 'a'));
}

TEST(FaultyStorageTest, CrashPreservesSyncedPrefixOnly) {
  MemStorage base;
  FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/33);
  auto file = faulty.Create("f");
  ASSERT_NE(file, nullptr);
  ASSERT_TRUE(file->Append("synced-part|"));
  ASSERT_TRUE(file->Sync());
  ASSERT_TRUE(file->Append("unsynced-tail"));
  faulty.CrashNow();
  EXPECT_TRUE(faulty.crashed());

  std::string contents;
  ASSERT_TRUE(base.ReadFile("f", &contents));
  ASSERT_GE(contents.size(), 12u) << "crash harmed the synced prefix";
  // The synced prefix survives verbatim; the unsynced tail is some prefix
  // of what was appended, possibly with one flipped bit.
  EXPECT_EQ(contents.substr(0, 12), "synced-part|");
  EXPECT_LE(contents.size(), 25u);

  // Post-crash, every operation through the faulty view fails.
  EXPECT_FALSE(file->Append("more"));
  EXPECT_FALSE(file->Sync());
  EXPECT_EQ(faulty.Create("g"), nullptr);
  EXPECT_FALSE(faulty.ReadFile("f", &contents));
  EXPECT_FALSE(faulty.Rename("f", "h"));
  // ...but the base (the "disk") is still intact for recovery.
  EXPECT_GE(base.FileSize("f"), 12);
}

TEST(FaultyStorageTest, ArmedCrashFiresBeforeTheArmedOp) {
  // Arm at the 3rd append: two appends land, the third must not.
  MemStorage base;
  FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/5);
  faulty.ArmCrashAtOp(StorageOp::kAppend, 3);
  auto file = faulty.Create("f");
  ASSERT_NE(file, nullptr);
  ASSERT_TRUE(file->Append("a"));
  ASSERT_TRUE(file->Sync());
  ASSERT_TRUE(file->Append("b"));
  ASSERT_TRUE(file->Sync());
  EXPECT_FALSE(file->Append("c"));
  EXPECT_TRUE(faulty.crashed());
  std::string contents;
  ASSERT_TRUE(base.ReadFile("f", &contents));
  EXPECT_EQ(contents, "ab") << "the armed op must not take effect";
  EXPECT_EQ(faulty.stats().crashes, 1u);
}

TEST(FaultyStorageTest, OpIndexSweepIsDeterministic) {
  // The same seed and script crash identically at the same index.
  const auto run = [](uint64_t crash_at) {
    MemStorage base;
    FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/77);
    if (crash_at > 0) faulty.ArmCrashAtOpIndex(crash_at);
    auto file = faulty.Create("f");
    if (file != nullptr) {
      for (int i = 0; i < 5 && file->Append("x"); ++i) {
      }
      file->Sync();
    }
    std::string contents;
    base.ReadFile("f", &contents);
    return contents;
  };
  const uint64_t total = [] {
    MemStorage base;
    FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/77);
    auto file = faulty.Create("f");
    for (int i = 0; i < 5; ++i) file->Append("x");
    file->Sync();
    return faulty.op_count();
  }();
  EXPECT_EQ(total, 7u);  // create + 5 appends + sync
  for (uint64_t k = 1; k <= total; ++k) {
    EXPECT_EQ(run(k), run(k)) << "crash at op " << k << " not deterministic";
    EXPECT_LE(run(k).size(), run(0).size());
  }
}

// ---------- WAL record framing ----------

std::vector<WalEntry> MakeEntries(uint64_t first_seq, size_t n) {
  std::vector<WalEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(WalEntry{first_seq + i, (first_seq + i) * 977 % 4096,
                               (i % 7 == 3) ? int64_t{-1} : int64_t{2}});
  }
  return entries;
}

TEST(WalFramingTest, RoundTripsBatches) {
  std::string segment;
  std::vector<WalEntry> all;
  for (uint64_t b = 0; b < 5; ++b) {
    const std::vector<WalEntry> batch = MakeEntries(1 + b * 10, 10);
    segment += EncodeWalRecord(/*shard=*/2, batch.data(), batch.size());
    all.insert(all.end(), batch.begin(), batch.end());
  }
  const WalSegmentScan scan = ScanWalSegment(segment, /*expect_shard=*/2);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records, 5u);
  ASSERT_EQ(scan.entries.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(scan.entries[i].seq, all[i].seq);
    EXPECT_EQ(scan.entries[i].value, all[i].value);
    EXPECT_EQ(scan.entries[i].delta, all[i].delta);
  }
  // A record for another shard is corruption, not data.
  const WalSegmentScan cross = ScanWalSegment(segment, /*expect_shard=*/3);
  EXPECT_EQ(cross.records, 0u);
  EXPECT_FALSE(cross.clean);
}

TEST(WalFramingTest, TruncateAtEveryByteNeverAcceptsAPartialRecord) {
  // The exhaustive torn-tail loop: for every prefix length of a
  // multi-record segment, the scan must accept exactly the records that
  // are entirely inside the prefix -- never crash, never over-read,
  // never surface a partial record.
  std::string segment;
  std::vector<size_t> boundaries;  // byte offset after each record
  for (uint64_t b = 0; b < 4; ++b) {
    const std::vector<WalEntry> batch = MakeEntries(1 + b * 8, 8);
    segment += EncodeWalRecord(/*shard=*/0, batch.data(), batch.size());
    boundaries.push_back(segment.size());
  }
  for (size_t len = 0; len <= segment.size(); ++len) {
    const std::string prefix = segment.substr(0, len);
    const WalSegmentScan scan = ScanWalSegment(prefix, /*expect_shard=*/0);
    const size_t whole = static_cast<size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), len) -
        boundaries.begin());
    ASSERT_EQ(scan.records, whole) << "prefix " << len;
    ASSERT_EQ(scan.entries.size(), whole * 8) << "prefix " << len;
    const bool at_boundary =
        len == 0 || std::binary_search(boundaries.begin(), boundaries.end(),
                                       len);
    ASSERT_EQ(scan.clean, at_boundary) << "prefix " << len;
  }
}

TEST(WalFramingTest, FlipEveryHeaderByteNeverAcceptsTheRecord) {
  // Two records; flip each header byte of each record through all 8
  // single-bit flips. A mangled first header must yield zero records, a
  // mangled second header exactly the first record -- and never a crash
  // or an entry from the damaged record.
  const std::vector<WalEntry> first = MakeEntries(1, 6);
  const std::vector<WalEntry> second = MakeEntries(7, 6);
  const std::string r1 = EncodeWalRecord(0, first.data(), first.size());
  const std::string r2 = EncodeWalRecord(0, second.data(), second.size());
  const std::string segment = r1 + r2;
  for (size_t rec = 0; rec < 2; ++rec) {
    const size_t base = rec == 0 ? 0 : r1.size();
    for (size_t byte = 0; byte < kWalRecordHeaderBytes; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mangled = segment;
        mangled[base + byte] =
            static_cast<char>(mangled[base + byte] ^ (1 << bit));
        const WalSegmentScan scan = ScanWalSegment(mangled, 0);
        ASSERT_EQ(scan.records, rec)
            << "record " << rec << " header byte " << byte << " bit " << bit;
        ASSERT_FALSE(scan.clean);
        ASSERT_EQ(scan.entries.size(), rec * 6);
      }
    }
  }
}

TEST(WalFramingTest, ListWalSegmentsParsesVariableWidthNames) {
  // WalSegmentName's zero-padding is a minimum width: segment ids past
  // 10^8 (and shards past 10^4) emit longer names, which replay must
  // still find -- and order numerically, since "100000000" sorts before
  // "99999999" lexicographically.
  MemStorage storage;
  ASSERT_TRUE(storage.CreateDir("wal"));
  const std::vector<uint64_t> ids = {1, 99'999'999, 100'000'000,
                                     123'456'789'012ull};
  for (const uint64_t id : ids) {
    ASSERT_TRUE(storage.WriteFile("wal/" + WalSegmentName(7, id), "x"));
  }
  ASSERT_TRUE(storage.WriteFile("wal/" + WalSegmentName(8, 5), "x"));
  ASSERT_TRUE(storage.WriteFile("wal/" + WalSegmentName(12345, 6), "x"));
  ASSERT_TRUE(storage.WriteFile("wal/wal-0007-deadbeef.log", "x"));
  ASSERT_TRUE(storage.WriteFile("wal/stray.txt", "x"));
  EXPECT_EQ(ListWalSegments(storage, "wal", 7), ids);
  EXPECT_EQ(ListWalSegments(storage, "wal", 8), std::vector<uint64_t>{5});
  EXPECT_EQ(ListWalSegments(storage, "wal", 12345),
            std::vector<uint64_t>{6});
}

TEST(WalFramingTest, PayloadCorruptionIsCaughtByCrc) {
  const std::vector<WalEntry> batch = MakeEntries(1, 16);
  const std::string record = EncodeWalRecord(0, batch.data(), batch.size());
  for (size_t byte = kWalRecordHeaderBytes; byte < record.size(); ++byte) {
    std::string mangled = record;
    mangled[byte] = static_cast<char>(mangled[byte] ^ 0x40);
    const WalSegmentScan scan = ScanWalSegment(mangled, 0);
    ASSERT_EQ(scan.records, 0u) << "payload byte " << byte;
    ASSERT_TRUE(scan.entries.empty());
  }
}

// ---------- WAL writer ----------

TEST(WalWriterTest, SyncAdvancesDurableSeqAndSegmentsRoll) {
  MemStorage storage;
  ASSERT_TRUE(storage.CreateDir("wal"));
  // Tiny segment budget (clamped to 1024 internally) to force rolling.
  WalWriter writer(&storage, "wal", /*shard=*/1, /*first_segment=*/1,
                   /*segment_bytes=*/1024);
  EXPECT_EQ(writer.durable_seq(), 0u);
  uint64_t seq = 0;
  for (int batch = 0; batch < 40; ++batch) {
    const std::vector<WalEntry> entries = MakeEntries(seq + 1, 8);
    seq += 8;
    ASSERT_TRUE(writer.AppendBatch(entries.data(), entries.size()));
  }
  // Rolling syncs each closed segment, so durable_seq may already cover a
  // prefix -- but never the records still in the open segment.
  EXPECT_LT(writer.durable_seq(), seq);
  ASSERT_TRUE(writer.Sync());
  EXPECT_EQ(writer.durable_seq(), seq);
  EXPECT_FALSE(writer.dead());

  const std::vector<uint64_t> segments = ListWalSegments(storage, "wal", 1);
  ASSERT_GT(segments.size(), 1u) << "segment budget never rolled";
  EXPECT_EQ(segments.front(), 1u);

  // Everything written must replay, in order, exactly once.
  std::vector<WalEntry> replayed;
  uint64_t hw = 0;
  for (const uint64_t s : segments) {
    std::string contents;
    ASSERT_TRUE(
        storage.ReadFile("wal/" + WalSegmentName(1, s), &contents));
    const WalSegmentScan scan = ScanWalSegment(contents, 1);
    EXPECT_TRUE(scan.clean);
    for (const WalEntry& e : scan.entries) {
      if (e.seq <= hw) continue;
      replayed.push_back(e);
      hw = e.seq;
    }
  }
  ASSERT_EQ(replayed.size(), seq);
  for (uint64_t i = 0; i < seq; ++i) EXPECT_EQ(replayed[i].seq, i + 1);

  // Truncation deletes exactly the fully covered closed segments.
  const size_t before = segments.size();
  writer.TruncateThrough(seq);
  const size_t after = ListWalSegments(storage, "wal", 1).size();
  EXPECT_LT(after, before);
  EXPECT_GE(after, 1u) << "the open segment must survive";
  EXPECT_EQ(writer.stats().truncated_segments.load(), before - after);
}

TEST(WalWriterTest, PersistentSyncFailureMarksDead) {
  MemStorage base;
  ASSERT_TRUE(base.CreateDir("wal"));
  StorageFaultSpec spec;
  spec.fail_sync = 1.0;  // every fsync fails => roll, retry, die
  FaultyStorage faulty(&base, spec, /*seed=*/13);
  WalWriter writer(&faulty, "wal", 0, 1, 1 << 20);
  const std::vector<WalEntry> entries = MakeEntries(1, 4);
  ASSERT_TRUE(writer.AppendBatch(entries.data(), entries.size()));
  EXPECT_FALSE(writer.Sync());
  EXPECT_TRUE(writer.dead());
  EXPECT_EQ(writer.durable_seq(), 0u) << "a dead WAL must not acknowledge";
  // Dead is terminal: appends are refused, nothing crashes.
  EXPECT_FALSE(writer.AppendBatch(entries.data(), entries.size()));
  EXPECT_GT(writer.stats().failed_syncs.load(), 0u);
}

TEST(WalWriterTest, TornAppendRollsAndRecovers) {
  // One torn append: the writer rolls to a fresh segment, re-appends the
  // unsynced buffer, and the full history replays without loss.
  MemStorage base;
  ASSERT_TRUE(base.CreateDir("wal"));
  FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/29);
  WalWriter writer(&faulty, "wal", 0, 1, 1 << 20);

  const std::vector<WalEntry> first = MakeEntries(1, 8);
  ASSERT_TRUE(writer.AppendBatch(first.data(), first.size()));
  ASSERT_TRUE(writer.Sync());

  // Make exactly the next append tear. (A torn append both persists a
  // prefix and reports failure; the writer must roll.)
  StorageFaultSpec tear;
  tear.torn_write = 1.0;
  FaultyStorage tearing(&base, tear, /*seed=*/31);
  // Simulate by appending through a fresh writer over the same directory:
  // segment 2 is past segment 1 which stays immutable.
  WalWriter writer2(&tearing, "wal", 0, /*first_segment=*/2, 1 << 20);
  const std::vector<WalEntry> second = MakeEntries(9, 8);
  // Every append tears, the roll's re-append tears too => dead.
  EXPECT_FALSE(writer2.AppendBatch(second.data(), second.size()));
  EXPECT_TRUE(writer2.dead());
  EXPECT_GT(writer2.stats().rolls.load(), 0u);

  // The synced history from writer 1 is untouched by writer 2's death,
  // and replay dedup skips any torn duplicates by seq.
  std::vector<WalEntry> replayed;
  uint64_t hw = 0;
  for (const uint64_t s : ListWalSegments(base, "wal", 0)) {
    std::string contents;
    ASSERT_TRUE(base.ReadFile("wal/" + WalSegmentName(0, s), &contents));
    for (const WalEntry& e : ScanWalSegment(contents, 0).entries) {
      if (e.seq <= hw) continue;
      replayed.push_back(e);
      hw = e.seq;
    }
  }
  ASSERT_GE(replayed.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(replayed[i].seq, i + 1);
}

// ---------- checkpoint store ----------

CheckpointData MakeCheckpoint(uint64_t id, uint64_t salt) {
  CheckpointData data;
  data.id = id;
  for (int s = 0; s < 3; ++s) {
    CheckpointShard shard;
    shard.applied_seq = id * 100 + s + salt;
    shard.sketch_frame = "frame-" + std::to_string(id * 10 + s + salt);
    data.shards.push_back(std::move(shard));
  }
  return data;
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  const CheckpointData data = MakeCheckpoint(7, 0);
  const std::string frame = EncodeCheckpoint(data);
  CheckpointData out;
  ASSERT_TRUE(DecodeCheckpoint(frame, &out));
  EXPECT_EQ(out.id, 7u);
  ASSERT_EQ(out.shards.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(out.shards[s].applied_seq, data.shards[s].applied_seq);
    EXPECT_EQ(out.shards[s].sketch_frame, data.shards[s].sketch_frame);
  }
  // Truncation at any byte and any single-byte corruption must be caught
  // (outer CRC frame + strict parse).
  for (size_t len = 0; len < frame.size(); ++len) {
    CheckpointData scratch;
    ASSERT_FALSE(DecodeCheckpoint(frame.substr(0, len), &scratch));
  }
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    std::string mangled = frame;
    mangled[byte] = static_cast<char>(mangled[byte] ^ 0x10);
    CheckpointData scratch;
    ASSERT_FALSE(DecodeCheckpoint(mangled, &scratch)) << "byte " << byte;
  }
}

TEST(CheckpointTest, WritePrunesAndLoadNewestFallsBack) {
  MemStorage storage;
  CheckpointStore store(&storage, "ckpt");
  ASSERT_TRUE(store.Init());
  const auto accept_all = [](const CheckpointData&) { return true; };

  CheckpointData out;
  EXPECT_FALSE(store.LoadNewest(accept_all, &out)) << "empty store";

  ASSERT_TRUE(store.Write(MakeCheckpoint(1, 0), /*keep=*/2));
  ASSERT_TRUE(store.Write(MakeCheckpoint(2, 0), /*keep=*/2));
  ASSERT_TRUE(store.Write(MakeCheckpoint(3, 0), /*keep=*/2));
  EXPECT_EQ(store.ListIds(), (std::vector<uint64_t>{2, 3})) << "pruned to 2";
  ASSERT_TRUE(store.LoadNewest(accept_all, &out));
  EXPECT_EQ(out.id, 3u);

  // Corrupt the newest on disk: LoadNewest must fall back to generation 2.
  std::string frame;
  ASSERT_TRUE(storage.ReadFile("ckpt/ckpt-00000003.sq", &frame));
  frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 1);
  ASSERT_TRUE(storage.WriteFile("ckpt/ckpt-00000003.sq", frame));
  ASSERT_TRUE(store.LoadNewest(accept_all, &out));
  EXPECT_EQ(out.id, 2u);

  // A validator rejection (e.g. config mismatch) also falls back, and
  // rejecting everything loads nothing.
  ASSERT_TRUE(
      store.LoadNewest([](const CheckpointData& c) { return c.id < 3; }, &out));
  EXPECT_EQ(out.id, 2u);
  EXPECT_FALSE(
      store.LoadNewest([](const CheckpointData&) { return false; }, &out));
}

TEST(CheckpointTest, ListIdsParsesVariableWidthNames) {
  // Same minimum-width caveat as the WAL segment names: generation ids
  // past 10^8 widen the file name, and recovery must still see them as
  // the newest generation.
  MemStorage storage;
  CheckpointStore store(&storage, "ckpt");
  ASSERT_TRUE(store.Init());
  ASSERT_TRUE(store.Write(MakeCheckpoint(99'999'999, 0), /*keep=*/10));
  ASSERT_TRUE(store.Write(MakeCheckpoint(100'000'000, 0), /*keep=*/10));
  EXPECT_EQ(store.ListIds(),
            (std::vector<uint64_t>{99'999'999, 100'000'000}));
  CheckpointData out;
  ASSERT_TRUE(
      store.LoadNewest([](const CheckpointData&) { return true; }, &out));
  EXPECT_EQ(out.id, 100'000'000u);
}

TEST(CheckpointTest, FailedRenameLeavesPreviousGenerationIntact) {
  MemStorage base;
  CheckpointStore setup(&base, "ckpt");
  ASSERT_TRUE(setup.Init());
  ASSERT_TRUE(setup.Write(MakeCheckpoint(1, 0), 2));

  // Crash exactly at the publish rename: the tmp write happened, the
  // rename must not, and generation 1 stays authoritative.
  FaultyStorage faulty(&base, StorageFaultSpec::Perfect(), /*seed=*/41);
  faulty.ArmCrashAtOp(StorageOp::kRename, 1);
  CheckpointStore store(&faulty, "ckpt");
  EXPECT_FALSE(store.Write(MakeCheckpoint(2, 0), 2));

  CheckpointStore after(&base, "ckpt");
  CheckpointData out;
  ASSERT_TRUE(
      after.LoadNewest([](const CheckpointData&) { return true; }, &out));
  EXPECT_EQ(out.id, 1u);
}

// ---------- sketch serialize/deserialize dispatch ----------

TEST(SketchSerdeDispatchTest, RoundTripsEveryPipelineCapableAlgorithm) {
  for (const Algorithm algorithm :
       {Algorithm::kRandom, Algorithm::kMrl99, Algorithm::kFastQDigest,
        Algorithm::kDcm, Algorithm::kDcs}) {
    SketchConfig config;
    config.algorithm = algorithm;
    config.eps = 0.05;
    config.log_universe = 16;
    config.seed = 19;
    const std::unique_ptr<QuantileSketch> sketch = MakeSketch(config);
    for (uint64_t v = 0; v < 5000; ++v) {
      ASSERT_EQ(sketch->Insert(v * 37 % 65536), StreamqStatus::kOk);
    }
    const std::string frame = SerializeSketch(*sketch);
    ASSERT_FALSE(frame.empty()) << AlgorithmName(algorithm);
    const std::unique_ptr<QuantileSketch> restored = DeserializeSketch(frame);
    ASSERT_NE(restored, nullptr) << AlgorithmName(algorithm);
    EXPECT_EQ(restored->Count(), sketch->Count());
    for (const double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      EXPECT_EQ(restored->Query(phi), sketch->Query(phi))
          << AlgorithmName(algorithm) << " phi=" << phi;
    }
    EXPECT_EQ(DeserializeSketch("garbage"), nullptr);
  }
}

// ---------- end-to-end pipeline recovery (no crash; crash sweeps live in
// crash_matrix_test.cc) ----------

ingest::IngestOptions DurableOptions(Storage* storage) {
  ingest::IngestOptions options;
  options.sketch.algorithm = Algorithm::kRandom;
  options.sketch.eps = 0.05;
  options.sketch.log_universe = 20;
  options.sketch.seed = 11;
  options.shards = 2;
  options.ring_capacity = 1 << 10;
  options.publish_interval = 2048;
  options.durability.enabled = true;
  options.durability.storage = storage;
  options.durability.dir = "dur";
  options.durability.sync_interval = 256;
  options.durability.checkpoint_interval = 4096;
  options.durability.segment_bytes = 1 << 14;
  return options;
}

std::vector<uint64_t> DurableData(uint64_t n) {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 20;
  spec.seed = 47;
  return GenerateDataset(spec);
}

TEST(DurablePipelineTest, CleanRestartRestoresBitIdenticalQueries) {
  MemStorage storage;
  const std::vector<uint64_t> data = DurableData(20'000);
  const std::vector<double> phis = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99};

  std::vector<uint64_t> reference;
  {
    auto pipeline = ingest::IngestPipeline::Create(DurableOptions(&storage));
    ASSERT_NE(pipeline, nullptr);
    EXPECT_FALSE(pipeline->recovery().recovered);
    EXPECT_EQ(pipeline->ResumeSeq(), 1u);
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    EXPECT_EQ(pipeline->DurableSeq(), data.size())
        << "after Flush every pushed update must be acknowledged";
    pipeline->Stop();
    reference = pipeline->QueryMany(phis);
  }

  // Restart over the same storage: the final Stop() checkpoint covers the
  // whole stream, so recovery resumes past it and the restored view
  // answers bit-identically with zero re-pushed updates.
  auto restarted = ingest::IngestPipeline::Create(DurableOptions(&storage));
  ASSERT_NE(restarted, nullptr);
  EXPECT_TRUE(restarted->recovery().recovered);
  EXPECT_GT(restarted->recovery().checkpoint_id, 0u);
  // Resume is 1 + the *minimum* shard high-water mark: under round-robin
  // the minimum shard can be up to (shards - 1) seqs behind the stream
  // end, and re-pushing that overlap just dedups.
  EXPECT_GE(restarted->ResumeSeq(), data.size() + 2 - 2 /*shards*/);
  EXPECT_LE(restarted->ResumeSeq(), data.size() + 1);
  EXPECT_EQ(restarted->DurableSeq(), restarted->ResumeSeq() - 1);
  restarted->Flush();
  EXPECT_EQ(restarted->QueryMany(phis), reference);

  // And the recovered pipeline keeps ingesting: push a continuation and
  // the epsilon-n bound holds over the combined stream.
  std::vector<uint64_t> more = DurableData(10'000);
  for (uint64_t v : more) restarted->Push(Update{v, +1});
  restarted->Flush();
  std::vector<uint64_t> combined = data;
  combined.insert(combined.end(), more.begin(), more.end());
  const ExactOracle oracle(combined);
  for (const double phi : phis) {
    EXPECT_LE(oracle.QuantileError(restarted->Query(phi), phi), 3 * 0.05);
  }
  restarted->Stop();
}

TEST(DurablePipelineTest, UnsyncedStopTailIsReplayedFromTheWal) {
  // Kill without Stop(): no final checkpoint. Whatever was acknowledged
  // (WAL-synced) must recover via checkpoint + WAL tail replay.
  MemStorage storage;
  const std::vector<uint64_t> data = DurableData(12'000);
  uint64_t acked = 0;
  {
    auto pipeline = ingest::IngestPipeline::Create(DurableOptions(&storage));
    ASSERT_NE(pipeline, nullptr);
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    acked = pipeline->DurableSeq();
    EXPECT_EQ(acked, data.size());
    // Destructor runs Stop(); emulate an abrupt kill by recovering from a
    // copy of the storage taken *before* the destructor.
  }
  // (MemStorage survives the pipeline: this recovery sees the post-Stop
  // state. The pre-Stop crash states are exercised by the crash matrix;
  // here we check replay when only WAL data exists at all.)
  MemStorage wal_only;
  ASSERT_TRUE(wal_only.CreateDir("dur/wal"));
  // Rebuild a WAL-only universe: copy segments, drop all checkpoints.
  for (const std::string& name : storage.List("dur/wal")) {
    std::string contents;
    ASSERT_TRUE(storage.ReadFile("dur/wal/" + name, &contents));
    ASSERT_TRUE(wal_only.WriteFile("dur/wal/" + name, contents));
  }
  auto recovered = ingest::IngestPipeline::Create(DurableOptions(&wal_only));
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(recovered->recovery().recovered);
  EXPECT_EQ(recovered->recovery().checkpoint_id, 0u) << "no checkpoint left";
  EXPECT_GT(recovered->recovery().replayed_updates, 0u);
  recovered->Flush();
  // Note: checkpoints may have truncated covered WAL segments, so the WAL
  // alone holds a suffix; together with nothing it recovers at least every
  // update since the last checkpoint -- but never *claims* more than it
  // has: the resume contract stays honest.
  EXPECT_GE(recovered->ResumeSeq(), 1u);
  EXPECT_LE(recovered->ResumeSeq() - 1, data.size());
  recovered->Stop();
}

TEST(DurablePipelineTest, PosixStorageEndToEnd) {
  PosixStorage storage;
  ingest::IngestOptions options = DurableOptions(&storage);
  options.durability.dir =
      ::testing::TempDir() + "streamq_durable_e2e";  // fresh per test run
  // Clean any leftover state from a previous run of this binary.
  for (const char* sub : {"/wal", "/ckpt"}) {
    for (const std::string& name : storage.List(options.durability.dir + sub)) {
      storage.Delete(options.durability.dir + sub + "/" + name);
    }
  }
  const std::vector<uint64_t> data = DurableData(8'000);
  const std::vector<double> phis = {0.1, 0.5, 0.9};
  std::vector<uint64_t> reference;
  {
    auto pipeline = ingest::IngestPipeline::Create(options);
    ASSERT_NE(pipeline, nullptr);
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    EXPECT_EQ(pipeline->DurableSeq(), data.size());
    pipeline->Stop();
    reference = pipeline->QueryMany(phis);
  }
  auto restarted = ingest::IngestPipeline::Create(options);
  ASSERT_NE(restarted, nullptr);
  EXPECT_TRUE(restarted->recovery().recovered);
  EXPECT_GE(restarted->ResumeSeq(), data.size() + 2 - 2 /*shards*/);
  EXPECT_LE(restarted->ResumeSeq(), data.size() + 1);
  restarted->Flush();
  EXPECT_EQ(restarted->QueryMany(phis), reference);
  restarted->Stop();
}

/// Pass-through decorator with two targeted failure knobs FaultyStorage
/// cannot express without crashing the whole storage: fail the next N
/// renames (a checkpoint publish that fails transiently) and fail every
/// read of paths containing a substring (an existing-but-unreadable
/// segment).
class FlakyStorage : public Storage {
 public:
  explicit FlakyStorage(Storage* base) : base_(base) {}

  int fail_renames = 0;
  std::string fail_reads_containing;  // empty = reads pass through

  std::unique_ptr<WritableFile> Create(const std::string& path) override {
    return base_->Create(path);
  }
  bool ReadFile(const std::string& path, std::string* out) override {
    if (!fail_reads_containing.empty() &&
        path.find(fail_reads_containing) != std::string::npos) {
      return false;
    }
    return base_->ReadFile(path, out);
  }
  bool WriteFile(const std::string& path, const std::string& data) override {
    return base_->WriteFile(path, data);
  }
  bool Rename(const std::string& from, const std::string& to) override {
    if (fail_renames > 0) {
      --fail_renames;
      return false;
    }
    return base_->Rename(from, to);
  }
  bool Delete(const std::string& path) override { return base_->Delete(path); }
  bool Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  std::vector<std::string> List(const std::string& dir) override {
    return base_->List(dir);
  }
  bool CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }

 private:
  Storage* base_;
};

TEST(DurablePipelineTest, UnreadableWalSegmentFailsRecoveryLoudly) {
  // An existing WAL segment that cannot be read may hold acknowledged
  // records. Recovery must refuse to come up -- replaying later segments
  // across the gap and then pruning the unread one would turn a transient
  // read error into permanent silent loss.
  MemStorage storage;
  const std::vector<uint64_t> data = DurableData(12'000);
  {
    auto pipeline = ingest::IngestPipeline::Create(DurableOptions(&storage));
    ASSERT_NE(pipeline, nullptr);
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    pipeline->Stop();
  }
  ASSERT_FALSE(storage.List("dur/wal").empty())
      << "Stop() should leave the open segments on disk";
  FlakyStorage flaky(&storage);
  flaky.fail_reads_containing = "wal-";
  EXPECT_EQ(ingest::IngestPipeline::Create(DurableOptions(&flaky)), nullptr);
  // Once the transient error clears, the same disk recovers fine.
  EXPECT_NE(ingest::IngestPipeline::Create(DurableOptions(&storage)), nullptr);
}

TEST(DurablePipelineTest, FailedRecoveryCheckpointKeepsThenPrunesSegments) {
  MemStorage storage;
  const std::vector<uint64_t> data = DurableData(12'000);
  {
    auto pipeline = ingest::IngestPipeline::Create(DurableOptions(&storage));
    ASSERT_NE(pipeline, nullptr);
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    pipeline->Stop();
  }
  const std::vector<std::string> old_names = storage.List("dur/wal");
  ASSERT_FALSE(old_names.empty());

  // Fail exactly the post-recovery checkpoint's publish rename: the
  // pre-recovery segments must survive (they may hold the only durable
  // copy of acknowledged records)...
  FlakyStorage flaky(&storage);
  flaky.fail_renames = 1;
  auto pipeline = ingest::IngestPipeline::Create(DurableOptions(&flaky));
  ASSERT_NE(pipeline, nullptr);
  EXPECT_TRUE(pipeline->recovery().recovered);
  EXPECT_GT(pipeline->stats().checkpoint_failures.load(), 0u);
  std::string contents;
  for (const std::string& name : old_names) {
    EXPECT_TRUE(storage.ReadFile("dur/wal/" + name, &contents)) << name;
  }
  // ...and the next successful checkpoint covers the recovered state, so
  // it prunes them: a transient checkpoint failure cannot leak segments
  // until the next restart.
  ASSERT_TRUE(pipeline->Checkpoint());
  for (const std::string& name : old_names) {
    EXPECT_FALSE(storage.ReadFile("dur/wal/" + name, &contents)) << name;
  }
  pipeline->Stop();
}

TEST(DurablePipelineTest, DurableSeqNeverOverclaimsUnderConcurrentReads) {
  // With every fsync failing, nothing ever becomes durable, so
  // DurableSeq() must read 0 from any thread at any moment -- including
  // the window where a push has advanced the seq ceiling but the routed
  // shard's pending mark is not yet visible (the store-order race:
  // last_seq must be published before next_seq_).
  MemStorage base;
  for (int round = 0; round < 20; ++round) {
    StorageFaultSpec spec;
    spec.fail_sync = 1.0;
    FaultyStorage faulty(&base, spec, /*seed=*/100 + round);
    ingest::IngestOptions options = DurableOptions(&faulty);
    options.durability.dir = "dur" + std::to_string(round);
    auto pipeline = ingest::IngestPipeline::Create(options);
    ASSERT_NE(pipeline, nullptr);
    std::atomic<bool> done{false};
    uint64_t max_seen = 0;
    std::thread watcher([&] {
      while (!done.load(std::memory_order_acquire)) {
        max_seen = std::max(max_seen, pipeline->DurableSeq());
      }
    });
    for (uint64_t v = 0; v < 200; ++v) pipeline->Push(Update{v, +1});
    done.store(true, std::memory_order_release);
    watcher.join();
    EXPECT_EQ(max_seen, 0u) << "round " << round;
    EXPECT_EQ(pipeline->DurableSeq(), 0u);
    pipeline->Stop();
  }
}

TEST(DurablePipelineTest, CreateRefusesDurabilityWithoutStorage) {
  ingest::IngestOptions options = DurableOptions(nullptr);
  EXPECT_EQ(ingest::IngestPipeline::Create(options), nullptr);
}

TEST(DurablePipelineTest, DurableMetricsArePublished) {
  MemStorage storage;
  auto pipeline = ingest::IngestPipeline::Create(DurableOptions(&storage));
  ASSERT_NE(pipeline, nullptr);
  const std::vector<uint64_t> data = DurableData(10'000);
  for (uint64_t v : data) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  ASSERT_TRUE(pipeline->Checkpoint());
  pipeline->Stop();

  obs::MetricsRegistry registry;
  pipeline->PublishMetrics(registry, "ingest");
  const obs::Counter* checkpoints = registry.FindCounter("ingest.checkpoints");
  ASSERT_NE(checkpoints, nullptr);
  EXPECT_GT(checkpoints->value(), 0u);
  const obs::Gauge* durable_seq = registry.FindGauge("ingest.durable_seq");
  ASSERT_NE(durable_seq, nullptr);
  EXPECT_EQ(durable_seq->value(), static_cast<int64_t>(data.size()));
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    const std::string p = "ingest.shard" + std::to_string(s);
    const obs::Counter* bytes = registry.FindCounter(p + ".wal_bytes");
    const obs::Counter* syncs = registry.FindCounter(p + ".wal_syncs");
    ASSERT_NE(bytes, nullptr);
    ASSERT_NE(syncs, nullptr);
    wal_bytes += bytes->value();
    wal_syncs += syncs->value();
    ASSERT_NE(registry.FindGauge(p + ".wal_durable_seq"), nullptr);
  }
  EXPECT_GT(wal_bytes, 0u);
  EXPECT_GT(wal_syncs, 0u);
  const obs::Histogram* ticks =
      registry.FindHistogram("ingest.checkpoint_ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GT(ticks->count(), 0u);
}

}  // namespace
}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_ENABLED
