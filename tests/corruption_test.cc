// Snapshot hardening: a corrupted snapshot must never be accepted.
//
// For every sketch with Save/Load we take a small valid snapshot and flip
// every single byte in turn (all 8 bit positions would be 8x slower for no
// extra coverage: the CRC32C detects any single flipped bit, so one mask per
// position exercises every code path). Each corrupted snapshot must be
// rejected cleanly — Deserialize returns nullptr, no crash, no partially
// constructed sketch. Truncations and extensions of the frame must fail
// too.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "distributed/ack.h"
#include "quantile/cash_register.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/fast_qdigest.h"
#include "util/serde.h"

namespace streamq {
namespace {

struct SnapshotCase {
  std::string name;
  std::string bytes;
  // Returns nullptr-ness of the deserialization attempt.
  std::function<bool(const std::string&)> loads;
};

template <typename Sketch>
SnapshotCase MakeCase(std::string name, std::unique_ptr<Sketch> sketch) {
  SnapshotCase c;
  c.name = std::move(name);
  c.bytes = sketch->Serialize();
  c.loads = [](const std::string& bytes) {
    return Sketch::Deserialize(bytes) != nullptr;
  };
  return c;
}

std::vector<SnapshotCase> AllSnapshotCases() {
  // Small streams and coarse parameters keep the snapshots (and thus the
  // number of byte positions to sweep) small.
  std::vector<SnapshotCase> cases;
  {
    auto s = std::make_unique<GkTheory>(0.1);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v * 17 % 1000);
    cases.push_back(MakeCase("GKTheory", std::move(s)));
  }
  {
    auto s = std::make_unique<GkAdaptive>(0.1);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v * 31 % 1000);
    cases.push_back(MakeCase("GKAdaptive", std::move(s)));
  }
  {
    auto s = std::make_unique<GkArray>(0.1);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v * 13 % 1000);
    cases.push_back(MakeCase("GKArray", std::move(s)));
  }
  {
    auto s = std::make_unique<RandomSketch>(0.1, 7);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v * 7 % 1000);
    cases.push_back(MakeCase("Random", std::move(s)));
  }
  {
    auto s = std::make_unique<Mrl99>(0.1, 7);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v * 11 % 1000);
    cases.push_back(MakeCase("MRL99", std::move(s)));
  }
  {
    auto s = std::make_unique<FastQDigest>(0.1, 10);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v % 1024);
    cases.push_back(MakeCase("FastQDigest", std::move(s)));
  }
  {
    auto s = Dcm::WithWidth(16, 2, 8, 7);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v % 256);
    cases.push_back(MakeCase("DCM", std::move(s)));
  }
  {
    auto s = Dcs::WithWidth(16, 2, 8, 7);
    for (uint64_t v = 0; v < 200; ++v) s->Insert(v % 256);
    cases.push_back(MakeCase("DCS", std::move(s)));
  }
  return cases;
}

TEST(CorruptionTest, ValidSnapshotsLoad) {
  for (const SnapshotCase& c : AllSnapshotCases()) {
    EXPECT_TRUE(c.loads(c.bytes)) << c.name;
  }
}

TEST(CorruptionTest, EveryFlippedByteIsRejected) {
  for (const SnapshotCase& c : AllSnapshotCases()) {
    ASSERT_GE(c.bytes.size(), kFrameHeaderBytes) << c.name;
    for (size_t i = 0; i < c.bytes.size(); ++i) {
      std::string corrupted = c.bytes;
      corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5A);
      EXPECT_FALSE(c.loads(corrupted))
          << c.name << ": flipped byte " << i << " of " << c.bytes.size()
          << " was accepted";
    }
  }
}

TEST(CorruptionTest, TruncationsAndExtensionsAreRejected) {
  for (const SnapshotCase& c : AllSnapshotCases()) {
    EXPECT_FALSE(c.loads(std::string())) << c.name;
    // Every proper prefix, including a cut inside the header.
    for (size_t len : {size_t{1}, kFrameHeaderBytes - 1, kFrameHeaderBytes,
                       c.bytes.size() / 2, c.bytes.size() - 1}) {
      EXPECT_FALSE(c.loads(c.bytes.substr(0, len)))
          << c.name << ": prefix of " << len;
    }
    EXPECT_FALSE(c.loads(c.bytes + std::string(1, '\0')))
        << c.name << ": one trailing byte";
    EXPECT_FALSE(c.loads(c.bytes + c.bytes)) << c.name << ": doubled";
  }
}

TEST(CorruptionTest, EveryFlippedAckByteIsRejected) {
  // The ack return path gets the same CRC32C framing as the shipments it
  // confirms (distributed/ack.h, shared by the monitor and cluster tiers):
  // a flipped ack byte must drop the ack, never misparse it into a bogus
  // sequence horizon that desynchronises the retry protocol.
  for (const SnapshotType type :
       {SnapshotType::kMonitorAck, SnapshotType::kClusterAck}) {
    AckFrame ack;
    ack.node = 3;
    ack.seq = 0x0123456789ABCDEFull;
    ack.flags = kAckFlagReship;
    const std::string bytes = EncodeAck(type, ack);
    AckFrame decoded;
    ASSERT_TRUE(DecodeAck(type, bytes, &decoded));
    EXPECT_EQ(decoded.node, ack.node);
    EXPECT_EQ(decoded.seq, ack.seq);
    EXPECT_EQ(decoded.flags, ack.flags);
    for (size_t i = 0; i < bytes.size(); ++i) {
      std::string corrupted = bytes;
      corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5A);
      AckFrame scratch;
      scratch.node = 77;
      scratch.seq = 99;
      EXPECT_FALSE(DecodeAck(type, corrupted, &scratch))
          << "flipped ack byte " << i << " of " << bytes.size()
          << " was accepted";
      EXPECT_EQ(scratch.node, 77u) << "rejected ack mutated *out";
      EXPECT_EQ(scratch.seq, 99u) << "rejected ack mutated *out";
    }
    // Truncations, extensions, and the empty string.
    AckFrame scratch;
    EXPECT_FALSE(DecodeAck(type, std::string(), &scratch));
    EXPECT_FALSE(DecodeAck(type, bytes.substr(0, bytes.size() - 1), &scratch));
    EXPECT_FALSE(DecodeAck(type, bytes + std::string(1, '\0'), &scratch));
  }
  // The two tiers must not accept each other's acks: same payload, wrong
  // type tag.
  AckFrame ack;
  AckFrame scratch;
  EXPECT_FALSE(DecodeAck(SnapshotType::kClusterAck,
                         EncodeAck(SnapshotType::kMonitorAck, ack), &scratch));
  EXPECT_FALSE(DecodeAck(SnapshotType::kMonitorAck,
                         EncodeAck(SnapshotType::kClusterAck, ack), &scratch));
}

TEST(CorruptionTest, MismatchedSnapshotTypeIsRejected) {
  // A bit-perfect GKArray snapshot must not load as any other sketch: the
  // type tag in the frame header distinguishes them.
  GkArray s(0.1);
  for (uint64_t v = 0; v < 100; ++v) s.Insert(v);
  const std::string bytes = s.Serialize();
  EXPECT_NE(GkArray::Deserialize(bytes), nullptr);
  EXPECT_EQ(GkTheory::Deserialize(bytes), nullptr);
  EXPECT_EQ(Mrl99::Deserialize(bytes), nullptr);
  EXPECT_EQ(FastQDigest::Deserialize(bytes), nullptr);
}

}  // namespace
}  // namespace streamq
