// Merge capability tests: which summaries merge, the accuracy of merged
// summaries against ground truth, and the error paths (incompatible
// merges refuse without mutating, per the library error-path contract).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/cash_register.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/factory.h"
#include "quantile/fast_qdigest.h"
#include "stream/generators.h"
#include "util/memory.h"

namespace streamq {
namespace {

SketchConfig ConfigFor(Algorithm algorithm, double eps = 0.02) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.eps = eps;
  config.log_universe = 20;
  config.seed = 7;
  return config;
}

std::vector<uint64_t> TestData(uint64_t n, uint64_t seed = 42) {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 20;
  spec.seed = seed;
  return GenerateDataset(spec);
}

// ---------- capability flags ----------

TEST(MergeCapabilityTest, MergeableFamilies) {
  for (Algorithm a : {Algorithm::kRandom, Algorithm::kMrl99,
                      Algorithm::kFastQDigest, Algorithm::kDcm,
                      Algorithm::kDcs}) {
    const auto sketch = MakeSketch(ConfigFor(a));
    EXPECT_TRUE(sketch->Mergeable()) << sketch->Name();
    EXPECT_NE(sketch->Clone(), nullptr) << sketch->Name();
  }
  // The GK family is not mergeable: its tuple invariants are tied to one
  // linear scan of a single stream (DESIGN.md section 10).
  for (Algorithm a : {Algorithm::kGkTheory, Algorithm::kGkAdaptive,
                      Algorithm::kGkArray}) {
    const auto sketch = MakeSketch(ConfigFor(a));
    EXPECT_FALSE(sketch->Mergeable()) << sketch->Name();
    EXPECT_EQ(sketch->Clone(), nullptr) << sketch->Name();
  }
  // RSS merges in principle (linear sketch) but has no clone/serde path.
  const auto rss = MakeSketch(ConfigFor(Algorithm::kRss));
  EXPECT_TRUE(rss->Mergeable());
  EXPECT_EQ(rss->Clone(), nullptr);
}

TEST(MergeCapabilityTest, NonMergeableRefusesWithUnsupported) {
  auto a = MakeSketch(ConfigFor(Algorithm::kGkArray));
  auto b = MakeSketch(ConfigFor(Algorithm::kGkArray));
  for (uint64_t v = 0; v < 100; ++v) ASSERT_EQ(b->Insert(v), StreamqStatus::kOk);
  EXPECT_FALSE(a->CanMerge(*b));
  const uint64_t rejected_before = a->metrics().rejected.value();
  EXPECT_EQ(a->Merge(*b), StreamqStatus::kUnsupported);
  EXPECT_EQ(a->Count(), 0u);
#if STREAMQ_METRICS_ENABLED
  EXPECT_EQ(a->metrics().rejected.value(), rejected_before + 1);
  EXPECT_EQ(a->metrics().merges.value(), 0u);
#else
  (void)rejected_before;
#endif
}

// ---------- merged accuracy ----------

class MergeAccuracyTest : public ::testing::TestWithParam<Algorithm> {};

// Split a stream three ways, summarise the parts independently, fold them
// into a fresh sketch (exactly what the ingest publisher does), and check
// the merged summary against ground truth for the whole stream.
TEST_P(MergeAccuracyTest, MergedSketchMeetsErrorBound) {
  const double eps = 0.02;
  const SketchConfig config = ConfigFor(GetParam(), eps);
  const std::vector<uint64_t> data = TestData(60'000);

  std::vector<std::unique_ptr<QuantileSketch>> parts;
  for (int i = 0; i < 3; ++i) parts.push_back(MakeSketch(config));
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(parts[i % 3]->Insert(data[i]), StreamqStatus::kOk);
  }

  auto merged = MakeSketch(config);
  for (const auto& part : parts) {
    ASSERT_TRUE(merged->CanMerge(*part));
    ASSERT_EQ(merged->Merge(*part), StreamqStatus::kOk);
  }
#if STREAMQ_METRICS_ENABLED
  EXPECT_EQ(merged->metrics().merges.value(), 3u);
#endif
  EXPECT_EQ(merged->Count(), data.size());

  const ExactOracle oracle(data);
  const ErrorStats stats = EvaluateQuantiles(*merged, oracle, eps);
  // Deterministic bound for the q-digest; constant-factor slack for the
  // randomized summaries (same convention as the bench regression gate).
  const double slack = GetParam() == Algorithm::kFastQDigest ? 1.0 : 3.0;
  EXPECT_LE(stats.max_error, slack * eps)
      << merged->Name() << " merged max error";
}

// Merging into a non-empty sketch must summarise the union.
TEST_P(MergeAccuracyTest, MergeIntoNonEmpty) {
  const double eps = 0.02;
  const SketchConfig config = ConfigFor(GetParam(), eps);
  const std::vector<uint64_t> data = TestData(40'000, 99);

  auto left = MakeSketch(config);
  auto right = MakeSketch(config);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ((i < data.size() / 2 ? left : right)->Insert(data[i]),
              StreamqStatus::kOk);
  }
  ASSERT_EQ(left->Merge(*right), StreamqStatus::kOk);
  EXPECT_EQ(left->Count(), data.size());

  const ExactOracle oracle(data);
  const ErrorStats stats = EvaluateQuantiles(*left, oracle, eps);
  const double slack = GetParam() == Algorithm::kFastQDigest ? 1.0 : 3.0;
  EXPECT_LE(stats.max_error, slack * eps) << left->Name();
}

INSTANTIATE_TEST_SUITE_P(
    Mergeable, MergeAccuracyTest,
    ::testing::Values(Algorithm::kRandom, Algorithm::kMrl99,
                      Algorithm::kFastQDigest, Algorithm::kDcm,
                      Algorithm::kDcs),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return AlgorithmName(info.param);
    });

// ---------- error paths ----------

TEST(MergeErrorPathTest, SelfMergeRejected) {
  auto sketch = MakeSketch(ConfigFor(Algorithm::kRandom));
  for (uint64_t v = 0; v < 1000; ++v) {
    ASSERT_EQ(sketch->Insert(v), StreamqStatus::kOk);
  }
  EXPECT_FALSE(sketch->CanMerge(*sketch));
  EXPECT_EQ(sketch->Merge(*sketch), StreamqStatus::kMergeIncompatible);
  EXPECT_EQ(sketch->Count(), 1000u);
}

TEST(MergeErrorPathTest, DifferentTypesRejected) {
  auto random = MakeSketch(ConfigFor(Algorithm::kRandom));
  auto mrl = MakeSketch(ConfigFor(Algorithm::kMrl99));
  EXPECT_FALSE(random->CanMerge(*mrl));
  EXPECT_EQ(random->Merge(*mrl), StreamqStatus::kMergeIncompatible);
  EXPECT_EQ(mrl->Merge(*random), StreamqStatus::kMergeIncompatible);
}

TEST(MergeErrorPathTest, DcmNeverAbsorbsDcsEvenAtEqualDimensions) {
  // Same per-level dimensions and seed, different concrete estimators: the
  // shared dyadic base must still refuse the cross-merge.
  auto dcm = Dcm::WithWidth(64, 5, 16, 3);
  auto dcs = Dcs::WithWidth(64, 5, 16, 3);
  EXPECT_FALSE(dcm->CanMerge(*dcs));
  EXPECT_EQ(dcm->Merge(*dcs), StreamqStatus::kMergeIncompatible);
  EXPECT_EQ(dcs->Merge(*dcm), StreamqStatus::kMergeIncompatible);
}

TEST(MergeErrorPathTest, IncompatibleParametersRejectedWithoutMutation) {
  // Different eps (FastQDigest), different seed (DCS): both must refuse
  // leaving the target bit-identical -- checked through the serialized
  // image, the strongest equality the library can express.
  {
    FastQDigest a(0.02, 16), b(0.05, 16);
    for (uint64_t v = 0; v < 5000; ++v) {
      ASSERT_EQ(a.Insert(v % 1024), StreamqStatus::kOk);
      ASSERT_EQ(b.Insert(v % 512), StreamqStatus::kOk);
    }
    const std::string before = a.Serialize();
    const uint64_t rejected_before = a.metrics().rejected.value();
    EXPECT_EQ(a.Merge(b), StreamqStatus::kMergeIncompatible);
    EXPECT_EQ(a.Serialize(), before);
#if STREAMQ_METRICS_ENABLED
    EXPECT_EQ(a.metrics().rejected.value(), rejected_before + 1);
    EXPECT_EQ(a.metrics().merges.value(), 0u);
#else
    (void)rejected_before;
#endif
  }
  {
    SketchConfig c1 = ConfigFor(Algorithm::kDcs);
    SketchConfig c2 = c1;
    c2.seed = c1.seed + 1;  // different hash functions: counters don't align
    auto a = MakeSketch(c1);
    auto b = MakeSketch(c2);
    for (uint64_t v = 0; v < 5000; ++v) {
      ASSERT_EQ(a->Insert(v), StreamqStatus::kOk);
      ASSERT_EQ(b->Insert(v), StreamqStatus::kOk);
    }
    auto* dcs_a = dynamic_cast<Dcs*>(a.get());
    ASSERT_NE(dcs_a, nullptr);
    const std::string before = dcs_a->Serialize();
    EXPECT_EQ(a->Merge(*b), StreamqStatus::kMergeIncompatible);
    EXPECT_EQ(dcs_a->Serialize(), before);
  }
}

// ---------- clone ----------

TEST(CloneTest, CloneIsIndependentWithFreshMetrics) {
  for (Algorithm a : {Algorithm::kRandom, Algorithm::kMrl99,
                      Algorithm::kFastQDigest, Algorithm::kDcm,
                      Algorithm::kDcs}) {
    auto original = MakeSketch(ConfigFor(a));
    for (uint64_t v = 0; v < 10'000; ++v) {
      ASSERT_EQ(original->Insert(v % 4096), StreamqStatus::kOk);
    }
    auto clone = original->Clone();
    ASSERT_NE(clone, nullptr) << original->Name();
    EXPECT_EQ(clone->Count(), original->Count()) << original->Name();
    EXPECT_EQ(clone->metrics().inserts.value(), 0u) << original->Name();
    // Mutating the original must not leak into the clone.
    const uint64_t clone_count = clone->Count();
    for (uint64_t v = 0; v < 1000; ++v) {
      ASSERT_EQ(original->Insert(v), StreamqStatus::kOk);
    }
    EXPECT_EQ(clone->Count(), clone_count) << original->Name();
    // The clone answers like the original did at clone time. The inserted
    // multiset is v % 4096 for v in [0, 10000): values below 10000 % 4096 =
    // 1808 occur three times, the rest twice, so rank(2048) = 3 * 1808 +
    // 2 * (2048 - 1808) = 5904 exactly; allow the summary's eps slack.
    EXPECT_NEAR(static_cast<double>(clone->EstimateRank(2048)), 5904.0,
                0.05 * static_cast<double>(clone_count))
        << original->Name();
  }
}

// ---------- space accounting across merges ----------

TEST(MergeMemoryTest, MemoryBytesReflectsPostMergeStructure) {
  const std::vector<uint64_t> data = TestData(30'000, 5);
  for (Algorithm a : {Algorithm::kRandom, Algorithm::kMrl99,
                      Algorithm::kFastQDigest, Algorithm::kDcm,
                      Algorithm::kDcs}) {
    const SketchConfig config = ConfigFor(a);
    auto left = MakeSketch(config);
    auto right = MakeSketch(config);
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ((i % 2 ? left : right)->Insert(data[i]), StreamqStatus::kOk);
    }
    ASSERT_EQ(left->Merge(*right), StreamqStatus::kOk);
    // The accounting must describe the merged structure, not the merge
    // history: a structural copy of the merged summary reports the same
    // footprint.
    auto copy = left->Clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(left->MemoryBytes(), copy->MemoryBytes()) << left->Name();
    EXPECT_GT(left->MemoryBytes(), 0u) << left->Name();
  }
}

TEST(MergeMemoryTest, QDigestMemoryTracksMergedNodeCount) {
  FastQDigest a(0.02, 16), b(0.02, 16);
  for (uint64_t v = 0; v < 20'000; ++v) {
    ASSERT_EQ(a.Insert(v % 60'000 % 65'536), StreamqStatus::kOk);
    ASSERT_EQ(b.Insert((v * 7919) % 65'536), StreamqStatus::kOk);
  }
  ASSERT_EQ(a.Merge(b), StreamqStatus::kOk);
  EXPECT_EQ(a.MemoryBytes(), a.NodeCount() * kBytesPerHashSlot);
}

}  // namespace
}  // namespace streamq
