// Network tier unit tests over the in-process loopback transport: the
// whole server state machine -- protocol, pipelining, backpressure,
// durability acks, the HTTP scrape endpoint -- without a single socket,
// so the suite runs identically under ASan/UBSan and TSan.
//
// The protocol-robustness sweeps here are the satellite contract: every
// single-byte flip and every truncation of a request frame must produce a
// clean error response or a connection close -- never a crash, never a
// desynced parse.

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "durability/storage.h"
#include "net/client.h"
#include "net/loopback.h"
#include "net/protocol.h"
#include "net/server.h"

namespace streamq::net {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Harness: a server pumped by a background thread; AddConn and the pump
// loop serialise on one mutex, preserving the server's single-threaded
// contract while clients run on the test thread.
// ---------------------------------------------------------------------------

class NetLoopbackTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<StreamqServer>(std::move(options));
    stop_.store(false);
    pump_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        size_t progressed;
        {
          std::lock_guard<std::mutex> lock(server_mutex_);
          progressed = server_->PumpAll();
        }
        if (progressed == 0) std::this_thread::sleep_for(100us);
      }
    });
  }

  void TearDown() override { StopServer(); }

  void StopServer() {
    if (pump_.joinable()) {
      stop_.store(true, std::memory_order_release);
      pump_.join();
    }
    server_.reset();
  }

  /// New loopback connection to the server; returns the client end.
  std::unique_ptr<Conn> Attach() {
    auto [server_end, client_end] = MakeLoopbackPair();
    std::lock_guard<std::mutex> lock(server_mutex_);
    server_->AddConn(std::move(server_end));
    return std::move(client_end);
  }

  std::unique_ptr<StreamqClient> MakeClient() {
    ClientOptions options;
    options.io_timeout_ms = 10000;
    return std::make_unique<StreamqClient>(Attach(), options);
  }

  size_t SessionCount() {
    std::lock_guard<std::mutex> lock(server_mutex_);
    return server_->SessionCount();
  }

  /// Waits for all server sessions to drain away (closed conns reaped).
  bool WaitForSessionCount(size_t want, std::chrono::milliseconds deadline) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (SessionCount() == want) return true;
      std::this_thread::sleep_for(1ms);
    }
    return SessionCount() == want;
  }

  std::unique_ptr<StreamqServer> server_;
  std::mutex server_mutex_;
  std::thread pump_;
  std::atomic<bool> stop_{false};
};

// Raw-conn helpers for the corruption sweeps (no client library between
// the test and the bytes).

bool WriteAll(Conn& conn, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const int n = conn.Write(data.data() + off, data.size() - off);
    if (n < 0) return false;
    if (n == 0) {
      if (!conn.WaitWritable(2000)) return false;
      continue;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

enum class ReadOutcome { kResponse, kClosed, kTimeout };

ReadOutcome ReadOneResponse(Conn& conn, FrameBuffer& inbuf, NetResponse* out,
                            std::chrono::milliseconds timeout = 5000ms) {
  char buf[4096];
  const auto until = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    std::string frame;
    const FrameScan scan = inbuf.Next(&frame);
    if (scan == FrameScan::kBad) return ReadOutcome::kClosed;
    if (scan == FrameScan::kFrame) {
      if (!DecodeResponse(frame, out)) return ReadOutcome::kClosed;
      return ReadOutcome::kResponse;
    }
    if (std::chrono::steady_clock::now() > until) return ReadOutcome::kTimeout;
    if (!conn.WaitReadable(100)) continue;
    const int n = conn.Read(buf, sizeof(buf));
    if (n < 0) return ReadOutcome::kClosed;
    if (n > 0) inbuf.Append(buf, static_cast<size_t>(n));
  }
}

NetRequest InsertRequest(const std::string& stream, uint64_t value,
                         uint64_t id) {
  NetRequest req;
  req.id = id;
  req.op = NetOp::kInsert;
  req.stream = stream;
  req.value = value;
  return req;
}

// ---------------------------------------------------------------------------
// Pure protocol tests (no server)
// ---------------------------------------------------------------------------

TEST(NetProtocol, RoundTripAllOps) {
  NetRequest create;
  create.id = 7;
  create.op = NetOp::kCreate;
  create.stream = "s1";
  create.create.algorithm = "DCS";
  create.create.eps = 0.01;
  create.create.log_universe = 20;
  create.create.depth = 5;
  create.create.seed = 42;
  create.create.shards = 3;
  create.create.durable = true;

  NetRequest batch;
  batch.id = 8;
  batch.op = NetOp::kBatchInsert;
  batch.stream = "s1";
  batch.values = {1, 2, 3, uint64_t{1} << 40};

  NetRequest query;
  query.id = 9;
  query.op = NetOp::kQuery;
  query.stream = "s1";
  query.phi = 0.75;

  for (const NetRequest* req : {&create, &batch, &query}) {
    NetRequest got;
    ASSERT_TRUE(DecodeRequest(EncodeRequest(*req), &got));
    EXPECT_EQ(got.id, req->id);
    EXPECT_EQ(got.op, req->op);
    EXPECT_EQ(got.stream, req->stream);
  }
  NetRequest got;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(create), &got));
  EXPECT_EQ(got.create.algorithm, "DCS");
  EXPECT_DOUBLE_EQ(got.create.eps, 0.01);
  EXPECT_EQ(got.create.shards, 3u);
  EXPECT_TRUE(got.create.durable);
  ASSERT_TRUE(DecodeRequest(EncodeRequest(batch), &got));
  EXPECT_EQ(got.values, batch.values);
  ASSERT_TRUE(DecodeRequest(EncodeRequest(query), &got));
  EXPECT_DOUBLE_EQ(got.phi, 0.75);

  NetResponse resp;
  resp.id = 11;
  resp.op = NetOp::kStats;
  resp.status = NetStatus::kOk;
  resp.value = 123;
  resp.stats.count = 1000;
  resp.stats.durable_seq = 999;
  resp.stats.algorithm = "Random";
  resp.stats.durable = true;
  resp.stats.recovered = true;
  NetResponse rgot;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(resp), &rgot));
  EXPECT_EQ(rgot.id, 11u);
  EXPECT_EQ(rgot.stats.count, 1000u);
  EXPECT_EQ(rgot.stats.durable_seq, 999u);
  EXPECT_TRUE(rgot.stats.durable);
  EXPECT_TRUE(rgot.stats.recovered);
  EXPECT_EQ(rgot.stats.algorithm, "Random");

  NetResponse err;
  err.id = 12;
  err.op = NetOp::kInsert;
  err.status = NetStatus::kUnknownStream;
  err.message = "no such stream";
  ASSERT_TRUE(DecodeResponse(EncodeResponse(err), &rgot));
  EXPECT_EQ(rgot.status, NetStatus::kUnknownStream);
  EXPECT_EQ(rgot.message, "no such stream");
}

TEST(NetProtocol, RejectsWrongTypeAndTrailingGarbage) {
  const std::string req = EncodeRequest(InsertRequest("s", 1, 1));
  // A request frame is not a response frame.
  NetResponse resp;
  EXPECT_FALSE(DecodeResponse(req, &resp));
  // Trailing garbage inside the frame string.
  NetRequest out;
  EXPECT_FALSE(DecodeRequest(req + "x", &out));
}

TEST(NetProtocol, FrameBufferChunkedDeliveryAndPipelining) {
  const std::string f1 = EncodeRequest(InsertRequest("s", 1, 1));
  const std::string f2 = EncodeRequest(InsertRequest("s", 2, 2));
  FrameBuffer buf;
  std::string frame;
  // Byte-by-byte: kNeedMore until the last byte of f1.
  for (size_t i = 0; i < f1.size(); ++i) {
    ASSERT_EQ(buf.Next(&frame), FrameScan::kNeedMore) << "at byte " << i;
    buf.Append(f1.data() + i, 1);
  }
  ASSERT_EQ(buf.Next(&frame), FrameScan::kFrame);
  EXPECT_EQ(frame, f1);
  // Two frames appended at once: both extracted, in order.
  buf.Append(f1.data(), f1.size());
  buf.Append(f2.data(), f2.size());
  ASSERT_EQ(buf.Next(&frame), FrameScan::kFrame);
  EXPECT_EQ(frame, f1);
  ASSERT_EQ(buf.Next(&frame), FrameScan::kFrame);
  EXPECT_EQ(frame, f2);
  EXPECT_EQ(buf.Next(&frame), FrameScan::kNeedMore);
}

TEST(NetProtocol, FrameBufferPoisonsOnBadHeader) {
  FrameBuffer buf;
  std::string garbage = "this is not a frame header, clearly";
  buf.Append(garbage.data(), garbage.size());
  std::string frame;
  EXPECT_EQ(buf.Next(&frame), FrameScan::kBad);
  // Poisoned: even appending a valid frame cannot resurrect the stream.
  const std::string good = EncodeRequest(InsertRequest("s", 1, 1));
  buf.Append(good.data(), good.size());
  EXPECT_EQ(buf.Next(&frame), FrameScan::kBad);
}

TEST(NetProtocol, FrameBufferRejectsOversizeHeader) {
  // A header advertising a payload beyond the ceiling is corruption, even
  // though the magic bytes are intact.
  std::string frame = EncodeRequest(InsertRequest("s", 1, 1));
  const uint64_t huge = kMaxFrameBytes + 1;
  std::memcpy(frame.data() + 8, &huge, 8);
  FrameBuffer buf;
  buf.Append(frame.data(), frame.size());
  std::string out;
  EXPECT_EQ(buf.Next(&out), FrameScan::kBad);
}

TEST(NetProtocol, ResponseCorruptionEveryByteRejected) {
  NetResponse resp;
  resp.id = 77;
  resp.op = NetOp::kQuery;
  resp.value = 12345;
  resp.message = "";
  const std::string frame = EncodeResponse(resp);
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    for (const uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string bad = frame;
      bad[pos] = static_cast<char>(static_cast<uint8_t>(bad[pos]) ^ flip);
      NetResponse out;
      EXPECT_FALSE(DecodeResponse(bad, &out))
          << "flip 0x" << std::hex << int{flip} << " at byte " << std::dec
          << pos << " was accepted";
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end over loopback
// ---------------------------------------------------------------------------

TEST_F(NetLoopbackTest, CreateInsertQueryFlushStatsDrop) {
  StartServer();
  auto client = MakeClient();

  CreateParams params;
  params.algorithm = "Random";
  params.eps = 0.005;
  NetResponse resp = client->Create("ticks", params);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.stats.algorithm, "Random");
  EXPECT_FALSE(resp.stats.recovered);

  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 1000; ++v) values.push_back(v);
  resp = client->InsertBatch("ticks", values);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.value, 1000u);

  resp = client->Insert("ticks", 500);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.value, 1u);

  resp = client->Flush("ticks");
  ASSERT_TRUE(resp.ok()) << resp.message;

  resp = client->Query("ticks", 0.5);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_NEAR(static_cast<double>(resp.value), 500.0, 60.0);

  resp = client->Rank("ticks", 500);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_NEAR(static_cast<double>(resp.rank), 499.0, 60.0);

  resp = client->Stats("ticks");
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.stats.pushed, 1001u);
  EXPECT_EQ(resp.stats.processed, 1001u);
  EXPECT_EQ(resp.stats.count, 1001u);
  EXPECT_FALSE(resp.stats.durable);

  resp = client->Drop("ticks");
  ASSERT_TRUE(resp.ok()) << resp.message;
  resp = client->Query("ticks", 0.5);
  EXPECT_EQ(resp.status, NetStatus::kUnknownStream);
}

TEST_F(NetLoopbackTest, PipelinedResponsesArriveInSendOrder) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client->Create("p", CreateParams{}).ok());

  std::vector<uint64_t> ids;
  for (uint64_t v = 0; v < 64; ++v) {
    NetRequest req = InsertRequest("p", v * 10, 0);
    const uint64_t id = client->Send(std::move(req));
    ASSERT_NE(id, 0u);
    ids.push_back(id);
    if (v % 8 == 0) {
      NetRequest q;
      q.op = NetOp::kQuery;
      q.stream = "p";
      q.phi = 0.5;
      const uint64_t qid = client->Send(std::move(q));
      ASSERT_NE(qid, 0u);
      ids.push_back(qid);
    }
  }
  std::vector<NetResponse> responses;
  ASSERT_TRUE(client->DrainAll(&responses)) << client->error();
  ASSERT_EQ(responses.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(responses[i].id, ids[i]) << "response " << i << " out of order";
    EXPECT_TRUE(responses[i].ok());
  }
  EXPECT_EQ(client->outstanding(), 0u);
}

TEST_F(NetLoopbackTest, ErrorStatuses) {
  ServerOptions options;
  options.max_streams = 2;
  StartServer(options);
  auto client = MakeClient();

  EXPECT_EQ(client->Insert("ghost", 1).status, NetStatus::kUnknownStream);

  CreateParams bad_algo;
  bad_algo.algorithm = "NotAnAlgorithm";
  EXPECT_EQ(client->Create("a", bad_algo).status, NetStatus::kBadRequest);

  CreateParams gk;
  gk.algorithm = "GKArray";  // not mergeable: cannot back a pipeline
  EXPECT_EQ(client->Create("a", gk).status, NetStatus::kUnsupported);

  CreateParams durable;
  durable.durable = true;  // server has no storage backend
  EXPECT_EQ(client->Create("a", durable).status, NetStatus::kUnsupported);

  EXPECT_EQ(client->Create("bad name!", CreateParams{}).status,
            NetStatus::kBadRequest);

  ASSERT_TRUE(client->Create("a", CreateParams{}).ok());
  EXPECT_EQ(client->Create("a", CreateParams{}).status,
            NetStatus::kStreamExists);

  ASSERT_TRUE(client->Create("b", CreateParams{}).ok());
  EXPECT_EQ(client->Create("c", CreateParams{}).status,
            NetStatus::kTooManyStreams);

  EXPECT_EQ(client->Query("a", 1.5).status, NetStatus::kBadRequest);
  EXPECT_EQ(client->Insert("a", 1, 0).status, NetStatus::kBadRequest);
}

// ---------------------------------------------------------------------------
// Protocol robustness sweeps (the satellite contract)
// ---------------------------------------------------------------------------

TEST_F(NetLoopbackTest, RequestCorruptionFlipEveryByte) {
  StartServer();
  {
    auto client = MakeClient();
    ASSERT_TRUE(client->Create("c", CreateParams{}).ok());
  }
  const std::string insert = EncodeRequest(InsertRequest("c", 42, 1));
  NetRequest query;
  query.id = 999;
  query.op = NetOp::kQuery;
  query.stream = "c";
  query.phi = 0.5;
  const std::string follow_up = EncodeRequest(query);

  for (size_t pos = 0; pos < insert.size(); ++pos) {
    SCOPED_TRACE("flipped byte " + std::to_string(pos));
    std::string bad = insert;
    bad[pos] = static_cast<char>(static_cast<uint8_t>(bad[pos]) ^ 0x20);
    auto conn = Attach();
    ASSERT_TRUE(WriteAll(*conn, bad + follow_up));

    bool got_follow_up_ok = false;
    bool got_error = false;
    bool closed = false;
    bool stalled = false;
    FrameBuffer inbuf;
    for (int i = 0; i < 4 && !got_follow_up_ok && !closed && !stalled; ++i) {
      NetResponse resp;
      switch (ReadOneResponse(*conn, inbuf, &resp, 2000ms)) {
        case ReadOutcome::kResponse:
          if (resp.id == 999 && resp.ok()) {
            got_follow_up_ok = true;
          } else {
            EXPECT_FALSE(resp.ok());
            got_error = true;
          }
          break;
        case ReadOutcome::kClosed:
          closed = true;
          break;
        case ReadOutcome::kTimeout:
          stalled = true;
          break;
      }
    }
    // Always: a clean error response, a connection close, or (length-field
    // flips only) a frame that never completes. Never a bogus success, and
    // per region we can demand more:
    if (pos < 8) {
      // Magic / version+type: unrecoverable header corruption.
      EXPECT_TRUE(closed);
      EXPECT_FALSE(got_follow_up_ok);
    } else if (pos >= 16) {
      // CRC field or payload: the boundary stayed exact, so the error is
      // per-request and the pipelined follow-up must succeed.
      EXPECT_TRUE(got_error);
      EXPECT_TRUE(got_follow_up_ok);
    } else {
      // Length field: oversize flips close immediately; a shrunk length
      // yields an error then a close (the stream cannot be
      // resynchronised); a grown-but-plausible length swallows the
      // follow-up into a frame that never completes (the client's timeout
      // handles it, as with any truncation).
      EXPECT_TRUE(closed || stalled || got_error);
      EXPECT_FALSE(got_follow_up_ok);
    }
    conn->Close();
  }

  // The server survived the whole sweep.
  auto client = MakeClient();
  EXPECT_TRUE(client->Query("c", 0.5).ok());
  EXPECT_TRUE(WaitForSessionCount(1, 5000ms));
}

TEST_F(NetLoopbackTest, RequestTruncationEveryLength) {
  StartServer();
  {
    auto client = MakeClient();
    ASSERT_TRUE(client->Create("t", CreateParams{}).ok());
  }
  const std::string frame = EncodeRequest(InsertRequest("t", 7, 1));
  for (size_t len = 0; len < frame.size(); ++len) {
    auto conn = Attach();
    ASSERT_TRUE(WriteAll(*conn, frame.substr(0, len)));
    // A truncated frame never completes; the server must neither answer
    // nor crash, and must reap the session once we hang up.
    conn->Close();
  }
  ASSERT_TRUE(WaitForSessionCount(0, 5000ms));
  auto client = MakeClient();
  EXPECT_TRUE(client->Query("t", 0.5).ok());
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

TEST_F(NetLoopbackTest, RingFullBackpressureParksAndCompletes) {
  ServerOptions options;
  options.ring_capacity = 256;  // tiny rings: a big batch cannot fit at once
  options.default_shards = 1;
  StartServer(options);
  auto client = MakeClient();
  ASSERT_TRUE(client->Create("bp", CreateParams{}).ok());

  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 100000; ++v) values.push_back(v % 1000);
  NetResponse resp = client->InsertBatch("bp", values);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.value, values.size());

  resp = client->Flush("bp");
  ASSERT_TRUE(resp.ok());
  resp = client->Stats("bp");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.stats.pushed, values.size());
  EXPECT_EQ(resp.stats.processed, values.size());

  // The park is observable: a 100k batch through 256-slot rings cannot
  // have been accepted in one go.
  std::string metrics;
  {
    std::lock_guard<std::mutex> lock(server_mutex_);
    metrics = server_->MetricsText();
  }
  EXPECT_NE(metrics.find("streamq_net_parks_total"), std::string::npos);
  EXPECT_EQ(metrics.find("streamq_net_parks_total 0\n"), std::string::npos)
      << "expected at least one park";
}

TEST_F(NetLoopbackTest, WriteQueueBackpressureKeepsOrder) {
  ServerOptions options;
  options.write_queue_limit = 1024;  // a handful of responses
  StartServer(options);
  auto client = MakeClient();
  ASSERT_TRUE(client->Create("wq", CreateParams{}).ok());

  // Pipeline far more queries than the write queue can hold; the server
  // must defer reads rather than buffer unboundedly, and every response
  // must still arrive in order.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 500; ++i) {
    NetRequest q;
    q.op = NetOp::kQuery;
    q.stream = "wq";
    q.phi = 0.5;
    const uint64_t id = client->Send(std::move(q));
    ASSERT_NE(id, 0u) << client->error();
    ids.push_back(id);
  }
  std::vector<NetResponse> responses;
  ASSERT_TRUE(client->DrainAll(&responses)) << client->error();
  ASSERT_EQ(responses.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(responses[i].id, ids[i]);
    EXPECT_TRUE(responses[i].ok());
  }
}

// ---------------------------------------------------------------------------
// Durability ack
// ---------------------------------------------------------------------------

#if STREAMQ_DURABILITY_ENABLED
TEST_F(NetLoopbackTest, FlushAcksDurableSeq) {
  durability::MemStorage storage;
  ServerOptions options;
  options.storage = &storage;
  options.data_dir = "flush-ack";
  options.wal_sync_interval = 64;
  StartServer(options);
  auto client = MakeClient();

  CreateParams params;
  params.durable = true;
  ASSERT_TRUE(client->Create("d", params).ok());

  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 5000; ++v) values.push_back(v);
  ASSERT_TRUE(client->InsertBatch("d", values).ok());

  NetResponse resp = client->Flush("d");
  ASSERT_TRUE(resp.ok()) << resp.message;
  // The FLUSH ack is a durability guarantee: the mark covers everything
  // this connection sent.
  EXPECT_EQ(resp.value, 5000u);

  resp = client->Stats("d");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.stats.durable);
  EXPECT_EQ(resp.stats.durable_seq, 5000u);

  // The server (and its WAL writer) must die before the stack-local
  // storage it writes to.
  client.reset();
  StopServer();
}
#endif  // STREAMQ_DURABILITY_ENABLED

// ---------------------------------------------------------------------------
// HTTP scrape endpoint
// ---------------------------------------------------------------------------

TEST_F(NetLoopbackTest, HttpMetricsScrape) {
  StartServer();
  {
    auto client = MakeClient();
    ASSERT_TRUE(client->Create("m", CreateParams{}).ok());
    ASSERT_TRUE(client->Insert("m", 1).ok());
  }
  auto conn = Attach();
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(WriteAll(*conn, get));
  std::string body;
  char buf[4096];
  const auto until = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    if (std::chrono::steady_clock::now() > until) FAIL() << "scrape timeout";
    if (!conn->WaitReadable(100)) continue;
    const int n = conn->Read(buf, sizeof(buf));
    if (n < 0) break;  // server closed: response complete (HTTP/1.0)
    if (n > 0) body.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(body.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(body.find("text/plain"), std::string::npos);
  EXPECT_NE(body.find("streamq_net_requests_INSERT_total"),
            std::string::npos);
  EXPECT_NE(body.find("streamq_net_connections_accepted_total"),
            std::string::npos);
  // Per-stream pipeline metrics ride the same registry.
  EXPECT_NE(body.find("streamq_net_stream_m_"), std::string::npos);
}

TEST_F(NetLoopbackTest, HttpUnknownPathIs404) {
  StartServer();
  auto conn = Attach();
  ASSERT_TRUE(WriteAll(*conn, "GET /nope HTTP/1.0\r\n\r\n"));
  std::string body;
  char buf[1024];
  const auto until = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    if (std::chrono::steady_clock::now() > until) FAIL() << "404 timeout";
    if (!conn->WaitReadable(100)) continue;
    const int n = conn->Read(buf, sizeof(buf));
    if (n < 0) break;
    if (n > 0) body.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(body.find("404 Not Found"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Client death on corrupt responses
// ---------------------------------------------------------------------------

TEST(NetClient, DiesCleanlyOnCorruptResponse) {
  auto [server_end, client_end] = MakeLoopbackPair();
  ClientOptions options;
  options.io_timeout_ms = 5000;
  StreamqClient client(std::move(client_end), options);

  NetRequest q;
  q.op = NetOp::kQuery;
  q.stream = "x";
  const uint64_t id = client.Send(std::move(q));
  ASSERT_NE(id, 0u);

  // Hand-deliver a response whose payload byte is flipped.
  NetResponse resp;
  resp.id = id;
  resp.op = NetOp::kQuery;
  resp.value = 5;
  std::string frame = EncodeResponse(resp);
  frame[frame.size() - 1] ^= 0x01;
  ASSERT_TRUE(WriteAll(*server_end, frame));

  NetResponse out;
  EXPECT_FALSE(client.Receive(&out));
  EXPECT_FALSE(client.ok());
  EXPECT_NE(client.error().find("protocol error"), std::string::npos);
}

}  // namespace
}  // namespace streamq::net
