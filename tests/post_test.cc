// Tests for the truncated-tree extraction and DCS + OLS post-processing.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/post/post_process.h"
#include "quantile/post/truncated_tree.h"
#include "stream/generators.h"

namespace streamq {
namespace {

std::vector<uint64_t> Workload(uint64_t n, int log_u, uint64_t seed,
                               Distribution dist = Distribution::kUniform) {
  DatasetSpec spec;
  spec.n = n;
  spec.log_universe = log_u;
  spec.seed = seed;
  spec.distribution = dist;
  return GenerateDataset(spec);
}

TEST(TruncatedTreeTest, RootOnlyWhenEmpty) {
  Dcs dcs(0.05, 16);
  TruncatedTree tree(dcs, 1.0);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.nodes()[0].level, 16);
  EXPECT_DOUBLE_EQ(tree.nodes()[0].y, 0.0);
  EXPECT_DOUBLE_EQ(tree.nodes()[0].sigma2, 0.0);
}

TEST(TruncatedTreeTest, KeepsHeavyPath) {
  Dcs dcs(0.02, 16, 7, 3);
  // 10k copies of one value: its root-to-leaf path must survive truncation.
  for (int i = 0; i < 10'000; ++i) dcs.Insert(12345);
  TruncatedTree tree(dcs, 0.1 * 0.02 * 10'000);
  bool found_leaf = false;
  for (const TreeNode& node : tree.nodes()) {
    if (node.level == 0 && node.cell == 12345) found_leaf = true;
    // Links consistent.
    if (node.parent >= 0) {
      const TreeNode& p = tree.nodes()[node.parent];
      EXPECT_EQ(p.level, node.level + 1);
      EXPECT_EQ(p.cell, node.cell >> 1);
    }
  }
  EXPECT_TRUE(found_leaf);
}

TEST(TruncatedTreeTest, SizeIsNearLinearInOneOverEps) {
  const auto data = Workload(50'000, 20, 5);
  Dcs dcs(0.01, 20, 7, 9);
  for (uint64_t v : data) dcs.Insert(v);
  const double eps = 0.01;
  TruncatedTree tree(dcs, 0.1 * eps * 50'000);
  // Lemma 1: O((1/eps) log u) nodes in expectation; generous multiple.
  EXPECT_LT(tree.size(), static_cast<size_t>(20.0 / eps * 20));
  EXPECT_GT(tree.size(), 10u);
}

TEST(TruncatedTreeTest, LargerEtaSmallerTree) {
  const auto data = Workload(50'000, 20, 7);
  Dcs dcs(0.01, 20, 7, 9);
  for (uint64_t v : data) dcs.Insert(v);
  TruncatedTree fine(dcs, 0.01 * 0.01 * 50'000);   // eta = 0.01
  TruncatedTree coarse(dcs, 1.0 * 0.01 * 50'000);  // eta = 1
  EXPECT_GT(fine.size(), coarse.size());
}

TEST(TruncatedTreeTest, ExactLevelsMarkedExact) {
  Dcs dcs(0.05, 16, 7, 1);
  for (int i = 0; i < 5'000; ++i) dcs.Insert(i % 1024);
  TruncatedTree tree(dcs, 1.0);
  for (const TreeNode& node : tree.nodes()) {
    if (node.level < 16) {
      EXPECT_EQ(node.sigma2 == 0.0, dcs.LevelIsExact(node.level));
    }
  }
}

TEST(DcsPostTest, ErrorAtMostEps) {
  const double eps = 0.01;
  const auto data = Workload(60'000, 20, 11);
  const ExactOracle oracle(data);
  DcsPost post(eps, 20, 7, 0.1, 5);
  for (uint64_t v : data) post.Insert(v);
  const ErrorStats stats = EvaluateQuantiles(post, oracle, eps);
  EXPECT_LE(stats.max_error, eps);
}

TEST(DcsPostTest, ImprovesOnRawDcsOnAverage) {
  // The paper's headline: Post reduces DCS error by 60-80%. Compare summed
  // average errors across several seeds; Post must win clearly overall.
  const double eps = 0.01;
  const auto data = Workload(50'000, 20, 13, Distribution::kNormal);
  const ExactOracle oracle(data);
  double post_err = 0, dcs_err = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    DcsPost post(eps, 20, 7, 0.1, seed);
    Dcs dcs(eps, 20, 7, seed);  // same seed: identical underlying sketch
    for (uint64_t v : data) {
      post.Insert(v);
      dcs.Insert(v);
    }
    post_err += EvaluateQuantiles(post, oracle, eps).avg_error;
    dcs_err += EvaluateQuantiles(dcs, oracle, eps).avg_error;
  }
  // The paper reports 60-80% error reduction; require a clear win here.
  EXPECT_LT(post_err, 0.8 * dcs_err);
}

TEST(DcsPostTest, FinalizeIsLazyAndCached) {
  DcsPost post(0.05, 16, 7, 0.1, 3);
  for (int i = 0; i < 10'000; ++i) post.Insert(i % 4096);
  EXPECT_EQ(post.LastTreeSize(), 0u);  // nothing finalised yet
  post.Query(0.5);
  const size_t size1 = post.LastTreeSize();
  EXPECT_GT(size1, 0u);
  post.Query(0.9);  // no updates in between: no re-finalisation needed
  EXPECT_EQ(post.LastTreeSize(), size1);
  post.Insert(1);
  post.Query(0.5);  // dirty -> rebuilt
  EXPECT_GT(post.LastTreeSize(), 0u);
}

TEST(DcsPostTest, SupportsDeletions) {
  DcsPost post(0.02, 16, 7, 0.1, 9);
  const auto data = Workload(20'000, 16, 17);
  for (uint64_t v : data) post.Insert(v);
  for (uint64_t v : data) {
    if (v % 2 == 0) post.Erase(v);
  }
  std::vector<uint64_t> survivors;
  for (uint64_t v : data) {
    if (v % 2 != 0) survivors.push_back(v);
  }
  EXPECT_EQ(post.Count(), survivors.size());
  const ExactOracle oracle(survivors);
  const ErrorStats stats = EvaluateQuantiles(post, oracle, 0.02);
  EXPECT_LE(stats.max_error, 0.02);
}

TEST(DcsPostTest, StreamingMemoryEqualsDcs) {
  // "incurring no more space and time (during streaming)".
  DcsPost post(0.01, 20, 7, 0.1, 1);
  Dcs dcs(0.01, 20, 7, 1);
  EXPECT_EQ(post.MemoryBytes(), dcs.MemoryBytes());
}

TEST(DcsPostTest, CorrectedRanksAreMonotone) {
  const auto data = Workload(40'000, 18, 19);
  DcsPost post(0.01, 18, 7, 0.1, 7);
  for (uint64_t v : data) post.Insert(v);
  int64_t prev = 0;
  for (uint64_t probe = 0; probe < (1 << 18); probe += 1 << 12) {
    const int64_t r = post.EstimateRank(probe);
    EXPECT_GE(r + static_cast<int64_t>(0.005 * data.size()), prev);
    prev = std::max(prev, r);
  }
}

TEST(DcsPostTest, WithWidthConstructor) {
  auto post = DcsPost::WithWidth(256, 7, 16, 0.02, 0.1, 3);
  const auto data = Workload(20'000, 16, 21);
  for (uint64_t v : data) post->Insert(v);
  const ExactOracle oracle(data);
  const ErrorStats stats = EvaluateQuantiles(*post, oracle, 0.02);
  EXPECT_LE(stats.max_error, 0.05);
}

}  // namespace
}  // namespace streamq
