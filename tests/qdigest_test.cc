// Tests for FastQDigest: error guarantee, q-digest compression behaviour,
// mergeability, and fixed-universe semantics.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/fast_qdigest.h"
#include "stream/generators.h"

namespace streamq {
namespace {

TEST(FastQDigestTest, ExactOnTinyStream) {
  FastQDigest d(0.1, 8);
  for (uint64_t v : {5, 5, 7, 200, 1}) d.Insert(v);
  EXPECT_EQ(d.Count(), 5u);
  EXPECT_EQ(d.EstimateRank(5), 1);   // one element (1) below 5
  EXPECT_EQ(d.EstimateRank(201), 5);
}

using QdParam = std::tuple<double, int, Order>;
class QDigestErrorTest : public ::testing::TestWithParam<QdParam> {};

TEST_P(QDigestErrorTest, NeverExceedsEps) {
  const auto& [eps, log_u, order] = GetParam();
  DatasetSpec spec;
  spec.n = 60'000;
  spec.log_universe = log_u;
  spec.order = order;
  spec.seed = 23;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  FastQDigest d(eps, log_u);
  for (uint64_t v : data) d.Insert(v);
  const ErrorStats stats = EvaluateQuantiles(d, oracle, eps);
  EXPECT_LE(stats.max_error, eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QDigestErrorTest,
    ::testing::Combine(::testing::Values(0.05, 0.01, 0.002),
                       ::testing::Values(12, 16, 24),
                       ::testing::Values(Order::kRandom, Order::kSorted)),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(1.0 / std::get<0>(info.param))) +
             "_logu" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == Order::kRandom ? "_random"
                                                        : "_sorted");
    });

TEST(FastQDigestTest, CompressionBoundsNodeCount) {
  const double eps = 0.01;
  const int log_u = 24;
  DatasetSpec spec;
  spec.n = 200'000;
  spec.log_universe = log_u;
  spec.seed = 2;
  FastQDigest d(eps, log_u);
  for (uint64_t v : GenerateDataset(spec)) d.Insert(v);
  d.Compress();
  // q-digest size bound: O(log(u)/eps) nodes.
  EXPECT_LT(d.NodeCount(), static_cast<size_t>(6 * log_u / eps));
}

TEST(FastQDigestTest, CompressPreservesCountAndRanks) {
  DatasetSpec spec;
  spec.n = 50'000;
  spec.log_universe = 16;
  spec.seed = 3;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  FastQDigest d(0.02, 16);
  for (uint64_t v : data) d.Insert(v);
  const int64_t before = d.EstimateRank(1 << 15);
  d.Compress();
  d.Compress();  // idempotent-ish: repeated compression keeps the guarantee
  const int64_t after = d.EstimateRank(1 << 15);
  EXPECT_NEAR(static_cast<double>(after), static_cast<double>(before),
              0.02 * spec.n + 1);
  const ErrorStats stats = EvaluateQuantiles(d, oracle, 0.02);
  EXPECT_LE(stats.max_error, 0.02);
}

TEST(FastQDigestTest, MergedDigestCoversUnion) {
  const double eps = 0.02;
  const int log_u = 16;
  DatasetSpec spec_a, spec_b;
  spec_a.n = spec_b.n = 30'000;
  spec_a.log_universe = spec_b.log_universe = log_u;
  spec_a.seed = 4;
  spec_b.seed = 5;
  spec_b.distribution = Distribution::kNormal;
  const auto a_data = GenerateDataset(spec_a);
  const auto b_data = GenerateDataset(spec_b);

  FastQDigest a(eps, log_u), b(eps, log_u);
  for (uint64_t v : a_data) a.Insert(v);
  for (uint64_t v : b_data) b.Insert(v);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 60'000u);

  std::vector<uint64_t> all(a_data);
  all.insert(all.end(), b_data.begin(), b_data.end());
  const ExactOracle oracle(all);
  const ErrorStats stats = EvaluateQuantiles(a, oracle, eps);
  // Merging two eps-digests gives an eps-digest (mergeable summary).
  EXPECT_LE(stats.max_error, eps);
}

TEST(FastQDigestTest, ManyWayMergeStaysAccurate) {
  // Sensor-network style: 8 sites, merged pairwise up a binary tree.
  const double eps = 0.05;
  const int log_u = 16;
  std::vector<std::unique_ptr<FastQDigest>> sites;
  std::vector<uint64_t> all;
  for (int s = 0; s < 8; ++s) {
    DatasetSpec spec;
    spec.n = 10'000;
    spec.log_universe = log_u;
    spec.seed = 100 + s;
    spec.distribution = s % 2 ? Distribution::kNormal : Distribution::kUniform;
    auto data = GenerateDataset(spec);
    all.insert(all.end(), data.begin(), data.end());
    auto d = std::make_unique<FastQDigest>(eps, log_u);
    for (uint64_t v : data) d->Insert(v);
    sites.push_back(std::move(d));
  }
  while (sites.size() > 1) {
    std::vector<std::unique_ptr<FastQDigest>> next;
    for (size_t i = 0; i + 1 < sites.size(); i += 2) {
      sites[i]->Merge(*sites[i + 1]);
      next.push_back(std::move(sites[i]));
    }
    sites = std::move(next);
  }
  const ExactOracle oracle(all);
  const ErrorStats stats = EvaluateQuantiles(*sites[0], oracle, eps);
  // Each merge level adds error; 3 levels stay within ~2 eps in practice.
  EXPECT_LE(stats.max_error, 2 * eps);
}

TEST(FastQDigestTest, SmallerUniverseSmallerDigest) {
  auto run = [](int log_u) {
    DatasetSpec spec;
    spec.n = 100'000;
    spec.log_universe = log_u;
    spec.seed = 6;
    FastQDigest d(0.01, log_u);
    for (uint64_t v : GenerateDataset(spec)) d.Insert(v);
    d.Compress();
    return d.MemoryBytes();
  };
  EXPECT_LT(run(12), run(28));
}

TEST(FastQDigestTest, QueryManyMatchesSingle) {
  DatasetSpec spec;
  spec.n = 40'000;
  spec.log_universe = 16;
  spec.seed = 7;
  FastQDigest d(0.01, 16);
  for (uint64_t v : GenerateDataset(spec)) d.Insert(v);
  std::vector<double> phis = {0.05, 0.25, 0.5, 0.9, 0.99};
  const auto batch = d.QueryMany(phis);
  for (size_t i = 0; i < phis.size(); ++i) {
    EXPECT_EQ(batch[i], d.Query(phis[i]));
  }
}

TEST(FastQDigestTest, ReturnedValuesMayBeUnseen) {
  // Fixed-universe model: answers need not be stream elements, but they must
  // stay inside the universe.
  FastQDigest d(0.1, 10);
  DatasetSpec spec;
  spec.n = 20'000;
  spec.log_universe = 10;
  for (uint64_t v : GenerateDataset(spec)) d.Insert(v);
  for (double phi : {0.1, 0.5, 0.9}) EXPECT_LT(d.Query(phi), 1u << 10);
}

}  // namespace
}  // namespace streamq
