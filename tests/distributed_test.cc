// Tests for the distributed continuous quantile monitor.

#include <gtest/gtest.h>

#include <vector>

#include "distributed/monitor.h"
#include "exact/exact_oracle.h"
#include "stream/generators.h"
#include "util/random.h"

namespace streamq {
namespace {

TEST(DistributedMonitorTest, SingleSiteMatchesLocalSummary) {
  DistributedQuantileMonitor monitor(1, 0.02);
  DatasetSpec spec;
  spec.n = 50'000;
  spec.log_universe = 20;
  spec.seed = 3;
  const auto data = GenerateDataset(spec);
  for (uint64_t v : data) monitor.Observe(0, v);
  const ExactOracle oracle(data);
  for (double phi : {0.1, 0.5, 0.9}) {
    // eps/2 summary error + up to theta = eps/2 staleness, with a little
    // slack for the coordinator normalising against its (stale) count.
    EXPECT_LE(oracle.QuantileError(monitor.Query(phi), phi), 1.2 * 0.02);
  }
}

TEST(DistributedMonitorTest, UnionAccuracyAcrossSkewedSites) {
  // Sites see disjoint value ranges; the coordinator must still answer the
  // union correctly (a per-site average would be badly wrong).
  const int kSites = 8;
  const double eps = 0.02;
  DistributedQuantileMonitor monitor(kSites, eps);
  Xoshiro256 rng(5);
  std::vector<uint64_t> all;
  for (int round = 0; round < 40'000; ++round) {
    const int site = static_cast<int>(rng.Below(kSites));
    const uint64_t value = site * 100'000 + rng.Below(100'000);
    monitor.Observe(site, value);
    all.push_back(value);
  }
  const ExactOracle oracle(all);
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_LE(oracle.QuantileError(monitor.Query(phi), phi), eps)
        << "phi=" << phi;
  }
}

TEST(DistributedMonitorTest, AnytimeQueriesStayAccurate) {
  const int kSites = 4;
  const double eps = 0.05;
  DistributedQuantileMonitor monitor(kSites, eps);
  DatasetSpec spec;
  spec.n = 60'000;
  spec.log_universe = 16;
  spec.seed = 9;
  const auto data = GenerateDataset(spec);
  std::vector<uint64_t> seen;
  Xoshiro256 rng(2);
  for (size_t i = 0; i < data.size(); ++i) {
    monitor.Observe(static_cast<int>(rng.Below(kSites)), data[i]);
    seen.push_back(data[i]);
    if ((i + 1) % 15'000 == 0) {
      const ExactOracle oracle(seen);
      for (double phi : {0.25, 0.5, 0.75}) {
        // eps plus the staleness slack the protocol allows mid-flight.
        EXPECT_LE(oracle.QuantileError(monitor.Query(phi), phi), 1.5 * eps)
            << "at " << (i + 1);
      }
    }
  }
}

TEST(DistributedMonitorTest, CommunicationWellBelowRawForwarding) {
  const int kSites = 4;
  DistributedQuantileMonitor monitor(kSites, 0.05);
  DatasetSpec spec;
  spec.n = 1'000'000;
  spec.log_universe = 24;
  spec.seed = 11;
  const auto data = GenerateDataset(spec);
  Xoshiro256 rng(7);
  for (uint64_t v : data) {
    monitor.Observe(static_cast<int>(rng.Below(kSites)), v);
  }
  const size_t raw_bytes = data.size() * 4;  // forwarding every element
  EXPECT_LT(monitor.CommunicationBytes(), raw_bytes / 2);
  EXPECT_GT(monitor.ShipmentCount(), static_cast<size_t>(kSites));
}

TEST(DistributedMonitorTest, CountsAndMemory) {
  DistributedQuantileMonitor monitor(3, 0.1);
  for (int i = 0; i < 1'000; ++i) monitor.Observe(i % 3, i);
  EXPECT_EQ(monitor.GlobalCount(), 1'000u);
  EXPECT_GT(monitor.CoordinatorMemoryBytes(), 0u);
  EXPECT_EQ(monitor.num_sites(), 3);
}

TEST(DistributedMonitorTest, EmptyCoordinatorIsSafe) {
  DistributedQuantileMonitor monitor(2, 0.1);
  EXPECT_EQ(monitor.Query(0.5), 0u);
  EXPECT_EQ(monitor.EstimateRank(100), 0);
}

}  // namespace
}  // namespace streamq
