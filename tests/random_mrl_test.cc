// Tests for the randomized cash-register summaries (Random, MRL99) and the
// shared weighted-sample query machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/cash_register.h"
#include "quantile/weighted_sample.h"
#include "stream/generators.h"
#include "util/random.h"

namespace streamq {
namespace {

TEST(WeightedSampleTest, RankAndQuantileBasics) {
  std::vector<WeightedElement<uint64_t>> sample = {
      {30, 2}, {10, 1}, {20, 4}, {40, 3}};
  WeightedSampleView<uint64_t> view(std::move(sample));
  EXPECT_EQ(view.TotalWeight(), 10);
  EXPECT_EQ(view.EstimateRank(10), 0);
  EXPECT_EQ(view.EstimateRank(15), 1);
  EXPECT_EQ(view.EstimateRank(20), 1);
  EXPECT_EQ(view.EstimateRank(25), 5);
  EXPECT_EQ(view.EstimateRank(100), 10);
  EXPECT_EQ(view.Quantile(0.0), 10u);
  EXPECT_EQ(view.Quantile(3.0), 20u);   // rank(20)=1, rank(30)=5: closer to 20? |1-3|=2,|5-3|=2 -> ties to lower
  EXPECT_EQ(view.Quantile(9.9), 40u);
}

TEST(WeightedSampleTest, DuplicatesShareRank) {
  std::vector<WeightedElement<uint64_t>> sample = {{5, 1}, {5, 1}, {5, 1}};
  WeightedSampleView<uint64_t> view(std::move(sample));
  EXPECT_EQ(view.EstimateRank(5), 0);
  EXPECT_EQ(view.EstimateRank(6), 3);
}

TEST(RandomSketchTest, ParametersFollowEps) {
  RandomSketch s(0.001);
  // h = ceil(log2(1000)) = 10, s = 1000 * sqrt(10) ~ 3163, b = 11.
  EXPECT_EQ(s.impl().height(), 10);
  EXPECT_NEAR(static_cast<double>(s.impl().buffer_size()), 3163, 5);
}

TEST(RandomSketchTest, ExactBeforeSamplingKicksIn) {
  // While n <= s (single buffer at level 0), the summary stores every
  // element, so small-prefix queries are near-exact.
  RandomSketch s(0.01, 77);
  for (uint64_t i = 0; i < 100; ++i) s.Insert(i);
  EXPECT_EQ(s.Count(), 100u);
  EXPECT_EQ(s.EstimateRank(50), 50);
  EXPECT_EQ(s.Query(0.5), 50u);
}

TEST(RandomSketchTest, SpaceIsConstantInN) {
  RandomSketch s(0.01, 5);
  const size_t before = s.MemoryBytes();
  DatasetSpec spec;
  spec.n = 300'000;
  for (uint64_t v : GenerateDataset(spec)) s.Insert(v);
  EXPECT_EQ(s.MemoryBytes(), before);
}

TEST(RandomSketchTest, TotalWeightTracksN) {
  RandomSketch s(0.02, 9);
  DatasetSpec spec;
  spec.n = 137'111;
  spec.seed = 3;
  for (uint64_t v : GenerateDataset(spec)) s.Insert(v);
  // The weighted snapshot should represent ~n elements (truncation of the
  // in-progress block and stride promotions lose at most a small fraction).
  const int64_t rank_of_max = s.EstimateRank(~0ULL);
  EXPECT_NEAR(static_cast<double>(rank_of_max), 137'111.0, 0.02 * 137'111);
}

TEST(RandomSketchTest, RankEstimatesAreUnbiased) {
  // Average the estimated rank of the true median over many seeds.
  DatasetSpec spec;
  spec.n = 60'000;
  spec.log_universe = 24;
  spec.seed = 31;
  const auto data = GenerateDataset(spec);
  ExactOracle oracle(data);
  const uint64_t median = oracle.Quantile(0.5);
  const double truth = static_cast<double>(oracle.Rank(median));
  double sum = 0;
  const int kReps = 40;
  for (int rep = 0; rep < kReps; ++rep) {
    RandomSketch s(0.01, 1000 + rep);
    for (uint64_t v : data) s.Insert(v);
    sum += static_cast<double>(s.EstimateRank(median));
  }
  EXPECT_NEAR(sum / kReps, truth, 0.005 * spec.n);
}

using RandParam = std::tuple<std::string, double, Order>;
class RandomizedErrorTest : public ::testing::TestWithParam<RandParam> {};

TEST_P(RandomizedErrorTest, ObservedErrorWellBelowEps) {
  const auto& [name, eps, order] = GetParam();
  DatasetSpec spec;
  spec.n = 80'000;
  spec.log_universe = 24;
  spec.order = order;
  spec.seed = 8;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  std::unique_ptr<QuantileSketch> sketch;
  if (name == "Random") sketch = std::make_unique<RandomSketch>(eps, 12345);
  if (name == "MRL99") sketch = std::make_unique<Mrl99>(eps, 12345);
  ASSERT_NE(sketch, nullptr);
  for (uint64_t v : data) sketch->Insert(v);
  const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, eps);
  // The guarantee is probabilistic; the paper observes max errors well below
  // eps. With a fixed seed this is a deterministic regression check.
  EXPECT_LE(stats.max_error, eps) << name;
  EXPECT_LE(stats.avg_error, stats.max_error);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizedErrorTest,
    ::testing::Combine(::testing::Values("Random", "MRL99"),
                       ::testing::Values(0.05, 0.01, 0.002),
                       ::testing::Values(Order::kRandom, Order::kSorted)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_eps" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(info.param))) +
             (std::get<2>(info.param) == Order::kRandom ? "_random"
                                                        : "_sorted");
    });

TEST(Mrl99Test, CollapsePreservesTotalWeight) {
  Mrl99 s(0.02, 4);
  DatasetSpec spec;
  spec.n = 200'000;
  spec.seed = 2;
  for (uint64_t v : GenerateDataset(spec)) s.Insert(v);
  const int64_t rank_of_max = s.EstimateRank(~0ULL);
  EXPECT_NEAR(static_cast<double>(rank_of_max), 200'000.0, 0.02 * 200'000);
}

TEST(Mrl99Test, SpaceIsConstantInN) {
  Mrl99 s(0.01, 5);
  const size_t before = s.MemoryBytes();
  DatasetSpec spec;
  spec.n = 250'000;
  for (uint64_t v : GenerateDataset(spec)) s.Insert(v);
  EXPECT_EQ(s.MemoryBytes(), before);
}

TEST(Mrl99Test, UsesMoreSpaceThanRandom) {
  // O((1/eps) log^2) vs O((1/eps) log^1.5): MRL99's buffers are larger.
  Mrl99 m(0.001);
  RandomSketch r(0.001);
  EXPECT_GT(m.MemoryBytes(), r.MemoryBytes());
}

TEST(RandomMrlTest, QueryManyMatchesSingleQueries) {
  DatasetSpec spec;
  spec.n = 50'000;
  spec.seed = 77;
  const auto data = GenerateDataset(spec);
  RandomSketch r(0.01, 3);
  Mrl99 m(0.01, 3);
  for (uint64_t v : data) {
    r.Insert(v);
    m.Insert(v);
  }
  std::vector<double> phis = {0.1, 0.25, 0.5, 0.75, 0.9};
  for (QuantileSketch* s : std::vector<QuantileSketch*>{&r, &m}) {
    const auto batch = s->QueryMany(phis);
    for (size_t i = 0; i < phis.size(); ++i) {
      EXPECT_EQ(batch[i], s->Query(phis[i])) << s->Name();
    }
  }
}

TEST(RandomMrlTest, DeterministicGivenSeed) {
  DatasetSpec spec;
  spec.n = 30'000;
  spec.seed = 5;
  const auto data = GenerateDataset(spec);
  RandomSketch a(0.01, 42), b(0.01, 42);
  for (uint64_t v : data) {
    a.Insert(v);
    b.Insert(v);
  }
  for (double phi : {0.1, 0.5, 0.9}) EXPECT_EQ(a.Query(phi), b.Query(phi));
}

TEST(RandomSketchTest, MergeCoversUnion) {
  DatasetSpec spec_a, spec_b;
  spec_a.n = 120'000;
  spec_b.n = 80'000;
  spec_a.log_universe = spec_b.log_universe = 24;
  spec_a.seed = 71;
  spec_b.seed = 72;
  spec_b.distribution = Distribution::kNormal;
  const auto a_data = GenerateDataset(spec_a);
  const auto b_data = GenerateDataset(spec_b);

  const double eps = 0.01;
  RandomSketch a(eps, 5), b(eps, 6);
  for (uint64_t v : a_data) a.Insert(v);
  for (uint64_t v : b_data) b.Insert(v);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200'000u);

  std::vector<uint64_t> all(a_data);
  all.insert(all.end(), b_data.begin(), b_data.end());
  const ExactOracle oracle(all);
  const ErrorStats stats = EvaluateQuantiles(a, oracle, eps);
  // One merge round adds one level of random-halving noise; 2 eps is a
  // conservative regression bound for this fixed seed.
  EXPECT_LE(stats.max_error, 2 * eps);
  // The summary can keep inserting after a merge.
  for (uint64_t v : a_data) a.Insert(v);
  EXPECT_EQ(a.Count(), 320'000u);
}

TEST(RandomSketchTest, ManyWayMergeStaysAccurate) {
  const double eps = 0.02;
  std::vector<std::unique_ptr<RandomSketch>> sites;
  std::vector<uint64_t> all;
  for (int s = 0; s < 8; ++s) {
    DatasetSpec spec;
    spec.n = 40'000;
    spec.log_universe = 24;
    spec.seed = 300 + s;
    spec.distribution =
        s % 2 ? Distribution::kNormal : Distribution::kUniform;
    auto data = GenerateDataset(spec);
    all.insert(all.end(), data.begin(), data.end());
    auto sk = std::make_unique<RandomSketch>(eps, 500 + s);
    for (uint64_t v : data) sk->Insert(v);
    sites.push_back(std::move(sk));
  }
  while (sites.size() > 1) {
    std::vector<std::unique_ptr<RandomSketch>> next;
    for (size_t i = 0; i + 1 < sites.size(); i += 2) {
      sites[i]->Merge(*sites[i + 1]);
      next.push_back(std::move(sites[i]));
    }
    sites = std::move(next);
  }
  const ExactOracle oracle(all);
  const ErrorStats stats = EvaluateQuantiles(*sites[0], oracle, eps);
  EXPECT_LE(stats.max_error, 3 * eps);
  EXPECT_EQ(sites[0]->Count(), all.size());
}

TEST(RandomMrlTest, GenericElementType) {
  RandomSketchImpl<double> impl(0.02, 7);
  Xoshiro256 rng(1);
  std::vector<double> data;
  for (int i = 0; i < 40'000; ++i) data.push_back(rng.NextDouble());
  for (double v : data) impl.Insert(v);
  const double median = impl.Query(0.5);
  EXPECT_NEAR(median, 0.5, 0.03);
}

}  // namespace
}  // namespace streamq
