// Tests for sketch serialisation: round-trips preserve answers bit-for-bit,
// reloaded sketches keep streaming, and corrupt input is rejected cleanly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "quantile/cash_register.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/fast_qdigest.h"
#include "stream/generators.h"
#include "util/serde.h"

namespace streamq {
namespace {

std::vector<uint64_t> Data(uint64_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.n = n;
  spec.log_universe = 20;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(SerdeTest, WriterReaderPrimitives) {
  SerdeWriter w;
  w.U32(7);
  w.U64(~0ULL);
  w.I64(-42);
  w.F64(3.25);
  w.PodVector(std::vector<int64_t>{1, -2, 3});

  SerdeReader r(w.buffer());
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double f64;
  std::vector<int64_t> vec;
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.I64(&i64));
  ASSERT_TRUE(r.F64(&f64));
  ASSERT_TRUE(r.PodVector(&vec));
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, ~0ULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.25);
  EXPECT_EQ(vec, (std::vector<int64_t>{1, -2, 3}));
}

TEST(SerdeTest, ReaderRejectsTruncation) {
  SerdeWriter w;
  w.U64(123);
  SerdeReader r(w.buffer());
  uint64_t v;
  ASSERT_TRUE(r.U64(&v));
  EXPECT_FALSE(r.U64(&v));  // nothing left
}

TEST(SerdeTest, ReaderRejectsOversizedVector) {
  SerdeWriter w;
  w.U64(1ULL << 60);  // claims 2^60 elements in an empty payload
  SerdeReader r(w.buffer());
  std::vector<int64_t> vec;
  EXPECT_FALSE(r.PodVector(&vec));
}

TEST(SerdeTest, GkArrayRoundTrip) {
  const auto data = Data(50'000, 3);
  GkArray original(0.01);
  for (uint64_t v : data) original.Insert(v);
  const std::string bytes = original.Serialize();
  auto restored = GkArray::Deserialize(bytes);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Count(), original.Count());
  for (double phi = 0.05; phi < 1.0; phi += 0.05) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi)) << phi;
  }
}

TEST(SerdeTest, GkArrayRoundTripMidBuffer) {
  // Serialisation mid-stream (with a partially filled buffer) must keep the
  // exact state: continuing both copies gives identical answers.
  const auto data = Data(10'123, 5);  // not a multiple of the buffer size
  GkArray original(0.02);
  for (uint64_t v : data) original.Insert(v);
  auto restored = GkArray::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  for (uint64_t v : Data(5'000, 6)) {
    original.Insert(v);
    restored->Insert(v);
  }
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
}

TEST(SerdeTest, GkAdaptiveRoundTripContinuesStream) {
  const auto data = Data(40'000, 21);
  GkAdaptive original(0.01);
  for (uint64_t v : data) original.Insert(v);
  auto restored = GkAdaptive::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Count(), original.Count());
  // The rebuilt heap must keep the summary functional under more inserts.
  for (uint64_t v : Data(20'000, 22)) {
    original.Insert(v);
    restored->Insert(v);
  }
  EXPECT_EQ(restored->Count(), original.Count());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
}

TEST(SerdeTest, GkTheoryRoundTrip) {
  const auto data = Data(30'000, 23);
  GkTheory original(0.02);
  for (uint64_t v : data) original.Insert(v);
  auto restored = GkTheory::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  for (double phi : {0.25, 0.5, 0.75}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
}

TEST(SerdeTest, Mrl99RoundTripContinuesStream) {
  const auto data = Data(60'000, 25);
  Mrl99 original(0.01, 55);
  for (uint64_t v : data) original.Insert(v);
  auto restored = Mrl99::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  for (uint64_t v : Data(30'000, 26)) {
    original.Insert(v);
    restored->Insert(v);
  }
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
}

TEST(SerdeTest, GkStoreRejectsUnsortedTuples) {
  // Hand-craft a GKTheory snapshot with out-of-order values.
  SerdeWriter w;
  w.F64(0.1);       // eps
  w.U64(5);         // compress period
  w.U64(2);         // n
  w.U64(2);         // tuple count
  w.Pod<uint64_t>(10);
  w.I64(1);
  w.I64(0);
  w.Pod<uint64_t>(5);  // decreasing: invalid
  w.I64(1);
  w.I64(0);
  // A valid frame around an invalid payload: the frame layer accepts it,
  // the structural validation must still reject it.
  EXPECT_EQ(GkTheory::Deserialize(
                FrameSnapshot(SnapshotType::kGkTheory, w.Take())),
            nullptr);
}

TEST(SerdeTest, RandomSketchRoundTripContinuesStream) {
  // The PRNG state travels with the snapshot, so the restored sketch makes
  // the same sampling decisions: bit-identical answers even after more
  // insertions.
  const auto data = Data(80'000, 7);
  RandomSketch original(0.01, 99);
  for (uint64_t v : data) original.Insert(v);
  auto restored = RandomSketch::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Count(), original.Count());
  for (uint64_t v : Data(40'000, 8)) {
    original.Insert(v);
    restored->Insert(v);
  }
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi)) << phi;
  }
}

TEST(SerdeTest, FastQDigestRoundTrip) {
  const auto data = Data(60'000, 9);
  FastQDigest original(0.01, 20);
  for (uint64_t v : data) original.Insert(v);
  auto restored = FastQDigest::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Count(), original.Count());
  EXPECT_EQ(restored->NodeCount(), original.NodeCount());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
  // Restored digests remain mergeable.
  restored->Merge(original);
  EXPECT_EQ(restored->Count(), 2 * original.Count());
}

TEST(SerdeTest, DcsRoundTripWithDeletions) {
  const auto data = Data(30'000, 11);
  Dcs original(0.02, 20, 7, 17);
  for (uint64_t v : data) original.Insert(v);
  auto restored = Dcs::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->Count(), original.Count());
  // Deleting from the restored sketch behaves exactly as the original
  // (same hash seeds, same counters).
  for (size_t i = 0; i < 1000; ++i) {
    original.Erase(data[i]);
    restored->Erase(data[i]);
  }
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
}

TEST(SerdeTest, DcmRoundTrip) {
  const auto data = Data(20'000, 13);
  Dcm original(0.02, 20, 7, 23);
  for (uint64_t v : data) original.Insert(v);
  auto restored = Dcm::Deserialize(original.Serialize());
  ASSERT_NE(restored, nullptr);
  for (double phi : {0.25, 0.5, 0.75}) {
    EXPECT_EQ(restored->Query(phi), original.Query(phi));
  }
}

TEST(SerdeTest, CorruptInputRejected) {
  const auto data = Data(5'000, 15);
  Dcs original(0.05, 20, 5, 29);
  for (uint64_t v : data) original.Insert(v);
  std::string bytes = original.Serialize();

  EXPECT_EQ(Dcs::Deserialize(std::string()), nullptr);
  EXPECT_EQ(Dcs::Deserialize(bytes.substr(0, bytes.size() / 2)), nullptr);
  std::string extended = bytes + "extra";
  EXPECT_EQ(Dcs::Deserialize(extended), nullptr);
  EXPECT_EQ(FastQDigest::Deserialize(std::string("garbage")), nullptr);
  EXPECT_EQ(GkArray::Deserialize(std::string("\x01\x02")), nullptr);
  EXPECT_EQ(RandomSketch::Deserialize(std::string(8, '\xff')), nullptr);
}

TEST(SerdeTest, CrossTypeRejected) {
  const auto data = Data(5'000, 17);
  FastQDigest digest(0.05, 16);
  for (uint64_t v : data) digest.Insert(v);
  // A q-digest snapshot is not a valid DCS snapshot (structure mismatch is
  // detected by size/na validation, not by luck).
  EXPECT_EQ(Dcs::Deserialize(digest.Serialize()), nullptr);
}

}  // namespace
}  // namespace streamq
