// End-to-end cluster fault matrix (the acceptance sweep of DESIGN.md
// section 13): armed storage crash points on one node's disk composed
// with the full channel fault mix (drop/duplicate/reorder/delay/corrupt
// on both the data and ack directions), across k in {2, 4} nodes.
//
// Every cell must show zero acked-update loss and full convergence: the
// killed node restarts from whatever its raw disk holds (checkpoint +
// WAL tail), the producer replays its recorded sub-stream from
// ResumeSeq(), the epoch protocol resynchronises it with the
// coordinator, and the post-recovery global quantile answers are
// bit-identical to an uninterrupted run of the same cluster -- plus,
// independently, within the merged eps * n oracle bound.
//
// The bit-identical comparison against a perfect-channel reference is
// legitimate because every link in the chain is deterministic: routing
// is a pure function of (seq, value) and Append always consumes the seq;
// the recovered pipeline + deduped replay reconstructs the exact node
// stream (the single-node crash matrix proves this); the coordinator's
// final accepted shipment is the post-Flush complete clone; and queries
// merge in node-id order into a fresh scratch. Channel faults and crash
// history can delay convergence, never change the converged answer.

#if !defined(STREAMQ_DURABILITY_ENABLED)
#error "STREAMQ_DURABILITY_ENABLED must be defined by the build"
#endif
#if STREAMQ_DURABILITY_ENABLED

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "durability/faulty_storage.h"
#include "durability/storage.h"
#include "exact/exact_oracle.h"
#include "quantile/factory.h"
#include "stream/generators.h"

namespace streamq::cluster {
namespace {

using durability::FaultyStorage;
using durability::MemStorage;
using durability::Storage;
using durability::StorageFaultSpec;
using durability::StorageOp;

constexpr double kEps = 0.05;
constexpr uint64_t kStreamLen = 2400;
// Crash after ~60% of the stream has been appended cluster-wide.
constexpr uint64_t kCrashAfter = (kStreamLen * 3) / 5;

const std::vector<double>& MatrixPhis() {
  static const std::vector<double> phis = {0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99};
  return phis;
}

std::vector<uint64_t> MatrixData() {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = kStreamLen;
  spec.log_universe = 20;
  spec.seed = 83;
  return GenerateDataset(spec);
}

FaultSpec LossyMix() {
  FaultSpec spec;
  spec.drop = 0.05;
  spec.duplicate = 0.05;
  spec.reorder = 0.05;
  spec.corrupt = 0.05;
  spec.min_delay = 0;
  spec.max_delay = 8;
  return spec;
}

ClusterOptions MatrixOptions(int nodes, std::vector<Storage*> storage,
                             bool lossy) {
  ClusterOptions options;
  options.nodes = nodes;
  options.node_pipeline.sketch.algorithm = Algorithm::kRandom;
  // Random serializes its RNG state, so recovery + replay is
  // bit-reproducible (same reason the single-node crash matrix uses it).
  options.node_pipeline.sketch.eps = kEps;
  options.node_pipeline.sketch.log_universe = 20;
  options.node_pipeline.sketch.seed = 11;
  options.node_pipeline.shards = 2;
  options.node_pipeline.ring_capacity = 256;
  options.node_pipeline.batch_size = 64;
  options.node_pipeline.publish_interval = 512;
  // Small durability intervals so each node's sub-stream still crosses
  // many sync / segment-roll / checkpoint / pruning boundaries.
  options.node_pipeline.durability.sync_interval = 128;
  options.node_pipeline.durability.checkpoint_interval = 512;
  options.node_pipeline.durability.segment_bytes = 2048;
  options.node_pipeline.durability.keep_checkpoints = 2;
  options.theta = 0.05;
  options.retry = RetryPolicy{8, 256};
  options.stale_after = 1024;
  options.probe = RetryPolicy{16, 256};
  options.seed = 5;
  options.node_storage = std::move(storage);
  if (lossy) {
    options.data_faults = LossyMix();
    options.ack_faults = LossyMix();
  }
  return options;
}

/// The uninterrupted reference for k nodes: same durable config, perfect
/// channels, no crash. One cached run per k.
const std::vector<uint64_t>& ReferenceAnswers(int nodes) {
  static std::vector<std::vector<uint64_t>> cache(8);
  std::vector<uint64_t>& answers = cache[static_cast<size_t>(nodes)];
  if (!answers.empty()) return answers;
  std::vector<std::unique_ptr<MemStorage>> disks;
  std::vector<Storage*> storage;
  for (int i = 0; i < nodes; ++i) {
    disks.push_back(std::make_unique<MemStorage>());
    storage.push_back(disks.back().get());
  }
  auto cluster =
      QuantileCluster::Create(MatrixOptions(nodes, storage, /*lossy=*/false));
  EXPECT_NE(cluster, nullptr);
  for (uint64_t v : MatrixData()) cluster->Append(v);
  EXPECT_TRUE(cluster->Quiesce());
  for (double phi : MatrixPhis()) answers.push_back(cluster->Query(phi).value);
  return answers;
}

/// One cell of the matrix: run the cluster with `arm` installed on
/// crash_node's storage, power-lose that node mid-stream, restart it from
/// its raw disk, replay, finish the stream, and check the full contract.
/// Returns whether the armed crash actually fired.
bool RunClusterTrial(const std::string& label, int nodes, int crash_node,
                     bool lossy, uint64_t seed,
                     const std::function<void(FaultyStorage&)>& arm) {
  const std::vector<uint64_t> data = MatrixData();
  const std::vector<uint64_t>& reference = ReferenceAnswers(nodes);
  EXPECT_EQ(reference.size(), MatrixPhis().size());

  std::vector<std::unique_ptr<MemStorage>> disks;  // survive "power loss"
  for (int i = 0; i < nodes; ++i) disks.push_back(std::make_unique<MemStorage>());
  FaultyStorage faulty(disks[static_cast<size_t>(crash_node)].get(),
                       StorageFaultSpec::Perfect(), seed);
  arm(faulty);

  std::vector<Storage*> storage;
  for (int i = 0; i < nodes; ++i) {
    storage.push_back(i == crash_node
                          ? static_cast<Storage*>(&faulty)
                          : static_cast<Storage*>(disks[size_t(i)].get()));
  }
  auto cluster =
      QuantileCluster::Create(MatrixOptions(nodes, storage, lossy));

  bool fired = false;
  if (cluster == nullptr) {
    // The armed crash fired during the crash node's durable setup itself:
    // nothing was acknowledged anywhere, so recovery from the raw disks
    // must come up (possibly fresh) and the full stream runs from the top.
    EXPECT_TRUE(faulty.crashed()) << label << ": Create refused without crash";
    fired = faulty.crashed();
    faulty.CrashNow();
    std::vector<Storage*> raw;
    for (int i = 0; i < nodes; ++i) raw.push_back(disks[size_t(i)].get());
    cluster = QuantileCluster::Create(MatrixOptions(nodes, raw, lossy));
    EXPECT_NE(cluster, nullptr) << label << ": recovery after setup crash";
    if (cluster == nullptr) return fired;
    for (uint64_t v : data) cluster->Append(v);
  } else {
    for (uint64_t i = 0; i < kCrashAfter; ++i) cluster->Append(data[i]);
    fired = faulty.crashed();
    // Power loss on the crash node (a no-op second failure if the armed
    // crash already fired), then the kill: the node destructor's final
    // flush/checkpoint fails against dead storage, like the real thing.
    faulty.CrashNow();
    cluster->KillNode(crash_node);
    // Restart from the RAW disk -- exactly what a new process sees.
    const bool restarted = cluster->RestartNode(
        crash_node, disks[static_cast<size_t>(crash_node)].get());
    EXPECT_TRUE(restarted) << label << ": recovery failed";
    if (!restarted) return fired;
    cluster->ReplayNode(crash_node);
    for (uint64_t i = kCrashAfter; i < data.size(); ++i) {
      cluster->Append(data[i]);
    }
  }

  // Convergence: the epoch protocol must resynchronise the restarted node
  // despite the channel fault mix.
  EXPECT_TRUE(cluster->Quiesce()) << label << ": cluster failed to quiesce";
  EXPECT_EQ(cluster->dropped_appends(), 0u) << label;
  EXPECT_EQ(cluster->StalenessBound(), 0u) << label;

  // Zero acked-update loss, per node: every appended update is durable
  // and acknowledged again after the replay.
  for (int i = 0; i < nodes; ++i) {
    EXPECT_NE(cluster->node(i), nullptr) << label;
    if (cluster->node(i) == nullptr) return fired;
    EXPECT_EQ(cluster->node(i)->DurableSeq(), cluster->node_stream(i).size())
        << label << ": node " << i << " lost acknowledged updates";
  }

  // Bit-identical global answers vs the uninterrupted run...
  std::vector<uint64_t> answers;
  for (double phi : MatrixPhis()) {
    const ClusterAnswer answer = cluster->Query(phi);
    EXPECT_EQ(answer.nodes_merged, nodes) << label;
    EXPECT_FALSE(answer.partial) << label;
    answers.push_back(answer.value);
  }
  EXPECT_EQ(answers, reference) << label;

  // ...and independently the merged eps-n bound against the exact oracle
  // over the full logical stream.
  const ExactOracle oracle(data);
  for (size_t i = 0; i < MatrixPhis().size(); ++i) {
    EXPECT_LE(oracle.QuantileError(answers[i], MatrixPhis()[i]), 3 * kEps)
        << label << " phi=" << MatrixPhis()[i];
  }
  return fired;
}

struct KindPoint {
  StorageOp kind;
  const char* name;
  uint64_t nth;
};

/// The semantically interesting storage edges on the crash node's disk:
/// WAL segment/checkpoint creation, WAL appends, fsyncs, checkpoint
/// publication renames, and the deletions behind segment truncation and
/// checkpoint pruning. (NodeMeta goes through create+append+sync+rename
/// too, so its atomic-write protocol sits under the same points.)
const std::vector<KindPoint>& MatrixPoints() {
  static const std::vector<KindPoint> points = {
      {StorageOp::kCreate, "create", 2},  {StorageOp::kAppend, "append", 3},
      {StorageOp::kAppend, "append", 13}, {StorageOp::kSync, "sync", 2},
      {StorageOp::kSync, "sync", 5},      {StorageOp::kRename, "rename", 1},
      {StorageOp::kDelete, "delete", 1},
  };
  return points;
}

void RunMatrixForClusterSize(int nodes, bool lossy, uint64_t seed_base) {
  int fired = 0;
  uint64_t seed = seed_base;
  for (const KindPoint& point : MatrixPoints()) {
    // Crash the last node: with round-robin routing every node sees the
    // same op shape, and the highest id exercises the "merge order is node
    // id, not arrival" property hardest.
    const int crash_node = nodes - 1;
    const std::string label = std::string(lossy ? "lossy" : "perfect") + "/k" +
                              std::to_string(nodes) + "/crash@" + point.name +
                              "#" + std::to_string(point.nth);
    if (RunClusterTrial(label, nodes, crash_node, lossy, ++seed,
                        [&point](FaultyStorage& faulty) {
                          faulty.ArmCrashAtOp(point.kind, point.nth);
                        })) {
      ++fired;
    }
    if (testing::Test::HasFatalFailure()) return;
  }
  // The workload must actually reach nearly all the armed operations.
  EXPECT_GE(fired, static_cast<int>(MatrixPoints().size()) - 1)
      << "the cluster workload no longer reaches the armed operations; "
         "retune the matrix intervals";
}

TEST(ClusterFaultMatrixTest, TwoNodesLossyChannels) {
  RunMatrixForClusterSize(/*nodes=*/2, /*lossy=*/true, /*seed_base=*/9000);
}

TEST(ClusterFaultMatrixTest, FourNodesLossyChannels) {
  RunMatrixForClusterSize(/*nodes=*/4, /*lossy=*/true, /*seed_base=*/17000);
}

TEST(ClusterFaultMatrixTest, PerfectChannelsSanity) {
  // Two cells with no channel faults at all: isolates the storage-crash
  // half of the matrix, so a regression here pins the blame on recovery
  // rather than on the retry protocol.
  EXPECT_TRUE(RunClusterTrial("perfect/k2/crash@sync#3", /*nodes=*/2,
                              /*crash_node=*/1, /*lossy=*/false,
                              /*seed=*/31337, [](FaultyStorage& faulty) {
                                faulty.ArmCrashAtOp(StorageOp::kSync, 3);
                              }));
  RunClusterTrial("perfect/k2/crash@append#8", /*nodes=*/2, /*crash_node=*/0,
                  /*lossy=*/false, /*seed=*/31338,
                  [](FaultyStorage& faulty) {
                    faulty.ArmCrashAtOp(StorageOp::kAppend, 8);
                  });
}

}  // namespace
}  // namespace streamq::cluster

#endif  // STREAMQ_DURABILITY_ENABLED
