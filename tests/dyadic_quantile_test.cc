// Tests for the turnstile quantile algorithms DCM / DCS / RSS.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/dyadic_quantile.h"
#include "stream/generators.h"

namespace streamq {
namespace {

TEST(DyadicQuantileTest, SupportsDeletion) {
  Dcs dcs(0.05, 16);
  Dcm dcm(0.05, 16);
  EXPECT_TRUE(dcs.SupportsDeletion());
  EXPECT_TRUE(dcm.SupportsDeletion());
}

TEST(DyadicQuantileTest, SmallLevelsAreExact) {
  // With log_u = 16 and a ~1000-counter sketch, the top levels (reduced
  // universe <= sketch size) must be exact.
  Dcs dcs(0.05, 16);
  EXPECT_TRUE(dcs.LevelIsExact(15));  // 2 cells
  EXPECT_TRUE(dcs.LevelIsExact(16)); // root
  EXPECT_FALSE(dcs.LevelIsExact(0)); // 65536 cells
}

TEST(DyadicQuantileTest, CountTracksInsertMinusErase) {
  Dcs dcs(0.1, 12);
  for (int i = 0; i < 100; ++i) dcs.Insert(i);
  for (int i = 0; i < 40; ++i) dcs.Erase(i);
  EXPECT_EQ(dcs.Count(), 60u);
}

TEST(DyadicQuantileTest, DeletionsRemoveAllImpact) {
  // The paper: "Deleting a previously inserted element completely removes
  // its impact on the data structure."
  DatasetSpec spec;
  spec.n = 20'000;
  spec.log_universe = 16;
  spec.seed = 3;
  const auto data = GenerateDataset(spec);
  DatasetSpec noise_spec = spec;
  noise_spec.seed = 99;
  const auto noise = GenerateDataset(noise_spec);

  Dcs with_churn(0.02, 16, 7, 5);
  Dcs clean(0.02, 16, 7, 5);
  for (uint64_t v : data) clean.Insert(v);
  // Interleave the real stream with transient noise.
  for (size_t i = 0; i < data.size(); ++i) {
    with_churn.Insert(noise[i]);
    with_churn.Insert(data[i]);
    with_churn.Erase(noise[i]);
  }
  for (double phi : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_EQ(with_churn.Query(phi), clean.Query(phi)) << phi;
  }
}

using TurnstileParam = std::tuple<std::string, double, int>;
class TurnstileErrorTest : public ::testing::TestWithParam<TurnstileParam> {};

TEST_P(TurnstileErrorTest, ObservedErrorWithinEps) {
  const auto& [name, eps, log_u] = GetParam();
  DatasetSpec spec;
  spec.n = 60'000;
  spec.log_universe = log_u;
  spec.seed = 17;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  std::unique_ptr<QuantileSketch> sketch;
  if (name == "DCM") sketch = std::make_unique<Dcm>(eps, log_u, 7, 11);
  if (name == "DCS") sketch = std::make_unique<Dcs>(eps, log_u, 7, 11);
  ASSERT_NE(sketch, nullptr);
  for (uint64_t v : data) sketch->Insert(v);
  const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, eps);
  // Probabilistic guarantee; fixed seed makes this a regression check. The
  // paper observes max errors around eps/10 for these algorithms.
  EXPECT_LE(stats.max_error, eps) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TurnstileErrorTest,
    ::testing::Combine(::testing::Values("DCM", "DCS"),
                       ::testing::Values(0.05, 0.01, 0.002),
                       ::testing::Values(16, 24)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_eps" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(info.param))) +
             "_logu" + std::to_string(std::get<2>(info.param));
    });

TEST(TurnstileErrorTest, AccurateAfterHeavyChurn) {
  const double eps = 0.02;
  DatasetSpec spec;
  spec.n = 30'000;
  spec.log_universe = 20;
  spec.seed = 21;
  const auto data = GenerateDataset(spec);
  const auto updates = MakeTurnstileWorkload(data, 0.3, spec.Universe(), 5);
  Dcs dcs(eps, 20, 7, 9);
  for (const Update& u : updates) {
    if (u.delta > 0) {
      dcs.Insert(u.value);
    } else {
      dcs.Erase(u.value);
    }
  }
  EXPECT_EQ(dcs.Count(), data.size());
  const ExactOracle oracle(data);
  ErrorStats stats = EvaluateQuantiles(dcs, oracle, eps);
  EXPECT_LE(stats.max_error, eps);
}

TEST(DyadicQuantileTest, RankEstimateMatchesTruthWithinEps) {
  const double eps = 0.01;
  DatasetSpec spec;
  spec.n = 50'000;
  spec.log_universe = 20;
  spec.seed = 31;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  Dcs dcs(eps, 20, 7, 3);
  for (uint64_t v : data) dcs.Insert(v);
  for (uint64_t probe = 0; probe < (1 << 20); probe += 1 << 15) {
    const double truth = static_cast<double>(oracle.Rank(probe));
    EXPECT_NEAR(static_cast<double>(dcs.EstimateRank(probe)), truth,
                eps * spec.n);
  }
}

TEST(DyadicQuantileTest, DcsUsesLessSpaceThanDcmAtSameEps) {
  // DCM width = log(u)/eps vs DCS width = sqrt(log u)/eps.
  Dcm dcm(0.001, 32);
  Dcs dcs(0.001, 32);
  EXPECT_GT(dcm.MemoryBytes(), 2 * dcs.MemoryBytes());
}

TEST(DyadicQuantileTest, SmallerUniverseSmallerSketch) {
  Dcs wide(0.01, 32);
  Dcs narrow(0.01, 16);
  EXPECT_GT(wide.MemoryBytes(), narrow.MemoryBytes());
}

TEST(DyadicQuantileTest, WithWidthHonoursDimensions) {
  auto dcs = Dcs::WithWidth(128, 5, 20, 1);
  // All levels with reduced universe > 640 use a 128x5 sketch.
  EXPECT_FALSE(dcs->LevelIsExact(0));
  EXPECT_TRUE(dcs->LevelIsExact(19));
  dcs->Insert(7);
  EXPECT_EQ(dcs->Count(), 1u);
}

TEST(RssQuantileTest, WorksEndToEnd) {
  DatasetSpec spec;
  spec.n = 20'000;
  spec.log_universe = 16;
  spec.seed = 13;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  RssQuantile rss(256, 5, 16, 3);
  for (uint64_t v : data) rss.Insert(v);
  EXPECT_EQ(rss.Count(), data.size());
  const ErrorStats rss_stats = EvaluateQuantiles(rss, oracle, 0.02);
  EXPECT_LT(rss_stats.max_error, 0.5);
}

TEST(RssQuantileTest, GuaranteeCostDwarfsDcs) {
  // The paper's reason for dropping RSS: for the same eps target its
  // analysis demands width ~1/eps^2 per level vs DCS's sqrt(log u)/eps, so
  // the structure is an order of magnitude larger (and each update pays for
  // the whole width).
  const double eps = 0.01;
  RssQuantile rss(static_cast<uint64_t>(1.0 / (eps * eps)), 5, 24, 1);
  Dcs dcs(eps, 24, 5, 1);
  EXPECT_GT(rss.MemoryBytes(), 10 * dcs.MemoryBytes());
}

TEST(DyadicQuantileTest, DescentQueryAlsoWithinEps) {
  // QueryByDescent is our clamped-descent alternative to the paper's binary
  // search; both must meet the eps target, and the descent is particularly
  // kind to Count-Min (the clamp suppresses its one-sided inflation).
  const double eps = 0.01;
  DatasetSpec spec;
  spec.n = 60'000;
  spec.log_universe = 20;
  spec.seed = 43;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  Dcm dcm(eps, 20, 7, 3);
  Dcs dcs(eps, 20, 7, 3);
  for (uint64_t v : data) {
    dcm.Insert(v);
    dcs.Insert(v);
  }
  for (double phi : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (DyadicQuantileBase* s : {static_cast<DyadicQuantileBase*>(&dcm),
                                  static_cast<DyadicQuantileBase*>(&dcs)}) {
      EXPECT_LE(oracle.QuantileError(s->Query(phi), phi), eps);
      EXPECT_LE(oracle.QuantileError(s->QueryByDescent(phi), phi), eps);
    }
  }
}

TEST(DyadicQuantileTest, OutOfUniverseValuesAreRejected) {
  // Feeding values beyond 2^log_u must not corrupt state (release builds
  // previously risked an out-of-bounds write in the exact-level counters):
  // the update is rejected with kOutOfUniverse and the sketch is unchanged.
  Dcs dcs(0.05, 8, 5, 3);
  EXPECT_EQ(dcs.Insert(1 << 20), StreamqStatus::kOutOfUniverse);
  EXPECT_EQ(dcs.Erase(1 << 20), StreamqStatus::kOutOfUniverse);
  EXPECT_EQ(dcs.Count(), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(dcs.Insert(200), StreamqStatus::kOk);
  EXPECT_EQ(dcs.Count(), 1000u);
  EXPECT_EQ(dcs.Insert(1 << 20), StreamqStatus::kOutOfUniverse);
  EXPECT_EQ(dcs.Count(), 1000u);  // rejected update did not mutate
  EXPECT_EQ(dcs.Query(0.5), 200u);
}

TEST(DyadicQuantileTest, EmptySketchQueriesSafely) {
  Dcs dcs(0.1, 12);
  EXPECT_EQ(dcs.Count(), 0u);
  EXPECT_LT(dcs.Query(0.5), 1u << 12);
  EXPECT_EQ(dcs.EstimateRank(100), 0);
}

TEST(DyadicQuantileTest, QuantilesMonotoneInPhi) {
  DatasetSpec spec;
  spec.n = 40'000;
  spec.log_universe = 18;
  spec.seed = 41;
  Dcs dcs(0.01, 18, 7, 7);
  for (uint64_t v : GenerateDataset(spec)) dcs.Insert(v);
  uint64_t prev = 0;
  for (double phi = 0.05; phi < 1.0; phi += 0.05) {
    const uint64_t q = dcs.Query(phi);
    EXPECT_GE(q + (1 << 10), prev);  // allow small sketch-noise inversions
    prev = q;
  }
}

}  // namespace
}  // namespace streamq
