// Tests for the sliding-window quantile extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <tuple>
#include <vector>

#include "exact/exact_oracle.h"
#include "quantile/sliding_window.h"
#include "stream/generators.h"
#include "util/random.h"

namespace streamq {
namespace {

// Brute-force window error: distance of the answer's window-rank interval
// from phi * |window|, normalised.
double WindowError(const std::deque<uint64_t>& window, uint64_t answer,
                   double phi) {
  ExactOracle oracle(std::vector<uint64_t>(window.begin(), window.end()));
  return oracle.QuantileError(answer, phi);
}

TEST(SlidingWindowTest, ExactWhileWindowNotFull) {
  SlidingWindowQuantile sw(0.05, 10'000);
  for (uint64_t i = 0; i < 1'000; ++i) sw.Insert(i);
  EXPECT_EQ(sw.WindowCount(), 1'000u);
  const uint64_t median = sw.Query(0.5);
  EXPECT_NEAR(static_cast<double>(median), 500.0, 0.05 * 1'000 + 1);
}

using SwParam = std::tuple<double, uint64_t>;
class SlidingWindowErrorTest : public ::testing::TestWithParam<SwParam> {};

TEST_P(SlidingWindowErrorTest, MeetsEpsOverTheWindow) {
  const auto [eps, window] = GetParam();
  DatasetSpec spec;
  spec.n = 120'000;
  spec.log_universe = 20;
  spec.seed = 77;
  const auto data = GenerateDataset(spec);

  SlidingWindowQuantile sw(eps, window);
  std::deque<uint64_t> truth;
  for (size_t i = 0; i < data.size(); ++i) {
    sw.Insert(data[i]);
    truth.push_back(data[i]);
    if (truth.size() > window) truth.pop_front();
    if ((i + 1) % 20'000 == 0) {
      for (double phi : {0.1, 0.5, 0.9}) {
        const double err = WindowError(truth, sw.Query(phi), phi);
        EXPECT_LE(err, eps) << "at element " << (i + 1) << " phi=" << phi;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingWindowErrorTest,
    ::testing::Combine(::testing::Values(0.1, 0.02),
                       ::testing::Values(uint64_t{5'000}, uint64_t{40'000})),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(1.0 / std::get<0>(info.param))) +
             "_w" + std::to_string(std::get<1>(info.param));
    });

TEST(SlidingWindowTest, TracksDistributionShift) {
  // First phase small values, second phase large: once the window has
  // rolled over, the old phase must be gone from the quantiles.
  SlidingWindowQuantile sw(0.05, 10'000);
  Xoshiro256 rng(3);
  for (int i = 0; i < 50'000; ++i) sw.Insert(rng.Below(1'000));
  for (int i = 0; i < 20'000; ++i) sw.Insert(1'000'000 + rng.Below(1'000));
  EXPECT_GE(sw.Query(0.05), 1'000'000u);
  EXPECT_GE(sw.Query(0.95), 1'000'000u);
}

TEST(SlidingWindowTest, MemoryIndependentOfStreamLength) {
  SlidingWindowQuantile sw(0.02, 20'000);
  size_t peak_after_warmup = 0;
  DatasetSpec spec;
  spec.n = 200'000;
  spec.seed = 5;
  const auto data = GenerateDataset(spec);
  for (size_t i = 0; i < data.size(); ++i) {
    sw.Insert(data[i]);
    if (i == 50'000) peak_after_warmup = sw.MemoryBytes();
  }
  // Memory stays within a small factor of its steady-state value.
  EXPECT_LE(sw.MemoryBytes(), 2 * peak_after_warmup);
  EXPECT_LT(sw.BlockCount(), 2 / 0.02 + 3);
}

TEST(SlidingWindowTest, WindowCountSaturates) {
  SlidingWindowQuantile sw(0.1, 1'000);
  for (uint64_t i = 0; i < 5'000; ++i) sw.Insert(i);
  EXPECT_EQ(sw.WindowCount(), 1'000u);
  EXPECT_EQ(sw.Count(), 5'000u);
}

TEST(SlidingWindowTest, RankWithinWindow) {
  SlidingWindowQuantile sw(0.05, 2'000);
  for (uint64_t i = 0; i < 10'000; ++i) sw.Insert(i % 4'000);
  // The window holds exactly the values 0..1999 (one each), so the rank of
  // 1000 is ~1000 and the rank of 2000 is the whole window.
  EXPECT_NEAR(static_cast<double>(sw.EstimateRank(1'000)), 1'000.0,
              0.15 * 2'000);
  EXPECT_NEAR(static_cast<double>(sw.EstimateRank(2'000)), 2'000.0,
              0.15 * 2'000);
}

}  // namespace
}  // namespace streamq
