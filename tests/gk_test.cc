// Tests for the Greenwald-Khanna family: GKTheory, GKAdaptive, GKArray.
//
// The key correctness property is invariant (1)+(2) of the paper:
//   (1) sum_{j<=i} g_j <= r(v_i) + 1 <= sum_{j<=i} g_j + Delta_i
//   (2) g_i + Delta_i <= max(floor(2 eps n), 1)
// which we verify against brute-force ranks, plus the end-to-end guarantee
// that every phi-quantile has rank error <= eps * n.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/cash_register.h"
#include "stream/generators.h"
#include "util/random.h"

namespace streamq {
namespace {

// ---------- invariant verification against brute force ----------

template <typename Impl>
void CheckInvariants(Impl& impl, const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> sorted(stream);
  std::sort(sorted.begin(), sorted.end());
  const int64_t n = static_cast<int64_t>(sorted.size());
  const int64_t cap = std::max<int64_t>(
      static_cast<int64_t>(2 * 0.05 * static_cast<double>(n)), 1);

  int64_t prefix = 0;
  uint64_t prev = 0;
  bool first = true;
  impl.ForEachTuple([&](uint64_t v, int64_t g, int64_t delta) {
    prefix += g;
    // Sortedness of the summary.
    if (!first) {
      EXPECT_LE(prev, v);
    }
    prev = v;
    first = false;
    // Invariant (2).
    EXPECT_LE(g + delta, cap) << "tuple v=" << v;
    // Invariant (1), relaxed over the duplicate rank interval.
    const int64_t r_lo =
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
    const int64_t r_hi =
        std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
    EXPECT_LE(prefix, r_hi) << "lower bound violated at v=" << v;
    EXPECT_GE(prefix + delta, r_lo + 1) << "upper bound violated at v=" << v;
  });
  EXPECT_EQ(prefix, n) << "g values must sum to n";
}

std::vector<uint64_t> SmallStream(Order order, uint64_t seed) {
  DatasetSpec spec;
  spec.n = 20'000;
  spec.log_universe = 16;
  spec.order = order;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(GkInvariantsTest, AdaptiveRandomOrder) {
  auto stream = SmallStream(Order::kRandom, 1);
  GkAdaptiveImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, AdaptiveSortedOrder) {
  auto stream = SmallStream(Order::kSorted, 2);
  GkAdaptiveImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, TheoryRandomOrder) {
  auto stream = SmallStream(Order::kRandom, 3);
  GkTheoryImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, TheorySortedOrder) {
  auto stream = SmallStream(Order::kSorted, 4);
  GkTheoryImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, ArrayRandomOrder) {
  auto stream = SmallStream(Order::kRandom, 5);
  GkArrayImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, ArraySortedOrder) {
  auto stream = SmallStream(Order::kSorted, 6);
  GkArrayImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, ArrayReverseSortedOrder) {
  auto stream = SmallStream(Order::kSorted, 7);
  std::reverse(stream.begin(), stream.end());
  GkArrayImpl<uint64_t> impl(0.05);
  for (uint64_t v : stream) impl.Insert(v);
  CheckInvariants(impl, stream);
}

TEST(GkInvariantsTest, InvariantsHoldMidStream) {
  auto stream = SmallStream(Order::kRandom, 8);
  GkAdaptiveImpl<uint64_t> impl(0.05);
  std::vector<uint64_t> seen;
  for (size_t i = 0; i < stream.size(); ++i) {
    impl.Insert(stream[i]);
    seen.push_back(stream[i]);
    if ((i + 1) % 2'500 == 0) CheckInvariants(impl, seen);
  }
}

// ---------- end-to-end error-guarantee sweep (property-style) ----------

using GkErrorParam = std::tuple<std::string, double, Order>;

class GkErrorTest : public ::testing::TestWithParam<GkErrorParam> {};

TEST_P(GkErrorTest, NeverExceedsEps) {
  const auto& [name, eps, order] = GetParam();
  DatasetSpec spec;
  spec.n = 50'000;
  spec.log_universe = 20;
  spec.order = order;
  spec.seed = 11;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  std::unique_ptr<QuantileSketch> sketch;
  if (name == "GKTheory") sketch = std::make_unique<GkTheory>(eps);
  if (name == "GKAdaptive") sketch = std::make_unique<GkAdaptive>(eps);
  if (name == "GKArray") sketch = std::make_unique<GkArray>(eps);
  ASSERT_NE(sketch, nullptr);

  for (uint64_t v : data) sketch->Insert(v);
  const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, eps);
  EXPECT_LE(stats.max_error, eps) << name << " eps=" << eps;
  EXPECT_LE(stats.avg_error, stats.max_error);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GkErrorTest,
    ::testing::Combine(::testing::Values("GKTheory", "GKAdaptive", "GKArray"),
                       ::testing::Values(0.05, 0.01, 0.002),
                       ::testing::Values(Order::kRandom, Order::kSorted,
                                         Order::kChunkedSorted)),
    [](const auto& info) {
      const Order order = std::get<2>(info.param);
      const char* o = order == Order::kRandom   ? "random"
                      : order == Order::kSorted ? "sorted"
                                                : "chunked";
      return std::get<0>(info.param) + "_eps" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(info.param))) +
             "_" + o;
    });

// ---------- behavioural details ----------

TEST(GkTest, QueryManyMatchesSingleQueries) {
  auto stream = SmallStream(Order::kRandom, 13);
  GkAdaptive adaptive(0.01);
  GkArray array(0.01);
  GkTheory theory(0.01);
  for (uint64_t v : stream) {
    adaptive.Insert(v);
    array.Insert(v);
    theory.Insert(v);
  }
  std::vector<double> phis;
  for (double p = 0.01; p < 1.0; p += 0.01) phis.push_back(p);
  for (QuantileSketch* s :
       std::vector<QuantileSketch*>{&adaptive, &array, &theory}) {
    const auto batch = s->QueryMany(phis);
    ASSERT_EQ(batch.size(), phis.size());
    for (size_t i = 0; i < phis.size(); ++i) {
      EXPECT_EQ(batch[i], s->Query(phis[i])) << s->Name() << " phi=" << phis[i];
    }
  }
}

TEST(GkTest, QueriesAreMonotone) {
  auto stream = SmallStream(Order::kRandom, 14);
  GkArray sketch(0.02);
  for (uint64_t v : stream) sketch.Insert(v);
  uint64_t prev = 0;
  for (double phi = 0.02; phi < 1.0; phi += 0.02) {
    const uint64_t q = sketch.Query(phi);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(GkTest, ExtremeQuantilesAreReasonable) {
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 10'000; ++i) data.push_back(i);
  GkAdaptive sketch(0.01);
  for (uint64_t v : data) sketch.Insert(v);
  EXPECT_LE(sketch.Query(0.001), 200u);
  EXPECT_GE(sketch.Query(0.999), 9'800u);
}

TEST(GkTest, SingleElement) {
  GkAdaptive a(0.1);
  GkArray b(0.1);
  GkTheory c(0.1);
  a.Insert(42);
  b.Insert(42);
  c.Insert(42);
  EXPECT_EQ(a.Query(0.5), 42u);
  EXPECT_EQ(b.Query(0.5), 42u);
  EXPECT_EQ(c.Query(0.5), 42u);
  EXPECT_EQ(a.Count(), 1u);
}

TEST(GkTest, AllDuplicates) {
  GkArray sketch(0.01);
  for (int i = 0; i < 50'000; ++i) sketch.Insert(7);
  EXPECT_EQ(sketch.Query(0.25), 7u);
  EXPECT_EQ(sketch.Query(0.75), 7u);
  // Invariant (2) caps each tuple at 2 eps n mass, so ~1/(2 eps) = 50 tuples
  // is the floor; the summary must stay within a small factor of it.
  EXPECT_LT(sketch.impl().TupleCount(), 160u);
}

TEST(GkTest, EstimateRankWithinEpsN) {
  auto stream = SmallStream(Order::kRandom, 15);
  ExactOracle oracle(stream);
  GkAdaptive sketch(0.02);
  for (uint64_t v : stream) sketch.Insert(v);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.Below(1 << 16);
    const auto [lo, hi] = oracle.RankInterval(v);
    const double est = static_cast<double>(sketch.EstimateRank(v));
    EXPECT_GE(est, static_cast<double>(lo) - 0.02 * stream.size() - 1);
    EXPECT_LE(est, static_cast<double>(hi) + 0.02 * stream.size() + 1);
  }
}

TEST(GkTest, TheorySpaceIsLogarithmic) {
  // |L| <= (11/(2 eps)) log(2 eps n) after COMPRESS.
  const double eps = 0.01;
  GkTheory sketch(eps);
  DatasetSpec spec;
  spec.n = 200'000;
  spec.seed = 4;
  for (uint64_t v : GenerateDataset(spec)) sketch.Insert(v);
  const double n = 200'000;
  const double bound = (11.0 / (2 * eps)) * std::log2(2 * eps * n);
  EXPECT_LE(sketch.impl().TupleCount(), static_cast<size_t>(bound));
}

TEST(GkTest, AdaptiveAndTheorySpaceComparable) {
  // Both GK variants must stay near the information-theoretic floor of
  // ~1/(2 eps) tuples and within a small factor of each other. (The paper
  // finds GKAdaptive slightly ahead of GKTheory empirically; the exact
  // ordering depends on the band realisation inside COMPRESS, so we assert
  // the magnitudes, not the ordering.)
  const double eps = 0.005;
  DatasetSpec spec;
  spec.n = 100'000;
  spec.seed = 9;
  const auto data = GenerateDataset(spec);
  GkAdaptive adaptive(eps);
  GkTheory theory(eps);
  for (uint64_t v : data) {
    adaptive.Insert(v);
    theory.Insert(v);
  }
  const double floor_tuples = 1.0 / (2 * eps);
  EXPECT_LT(adaptive.impl().TupleCount(), 4 * floor_tuples);
  EXPECT_LT(theory.impl().TupleCount(), 4 * floor_tuples);
  EXPECT_GE(adaptive.impl().TupleCount(), floor_tuples / 2);
  EXPECT_GE(theory.impl().TupleCount(), floor_tuples / 2);
}

TEST(GkTest, CountTracksInsertions) {
  GkArray sketch(0.1);
  for (int i = 0; i < 12'345; ++i) sketch.Insert(i);
  EXPECT_EQ(sketch.Count(), 12'345u);
}

TEST(GkTest, MemoryGrowsSublinearly) {
  GkAdaptive sketch(0.01);
  DatasetSpec spec;
  spec.n = 100'000;
  spec.seed = 21;
  const auto data = GenerateDataset(spec);
  for (uint64_t v : data) sketch.Insert(v);
  // A linear-space structure would hold 100k tuples.
  EXPECT_LT(sketch.impl().TupleCount(), 5'000u);
  EXPECT_GT(sketch.MemoryBytes(), 0u);
}

// ---------- the comparison model: generic element types ----------

TEST(GkGenericTest, WorksOnDoubles) {
  GkArrayImpl<double> impl(0.01);
  Xoshiro256 rng(5);
  std::vector<double> data;
  for (int i = 0; i < 30'000; ++i) data.push_back(rng.NextGaussian());
  for (double v : data) impl.Insert(v);
  std::sort(data.begin(), data.end());
  const double median = impl.Query(0.5);
  const auto pos = std::lower_bound(data.begin(), data.end(), median) -
                   data.begin();
  EXPECT_NEAR(static_cast<double>(pos), data.size() / 2.0,
              0.011 * data.size());
}

TEST(GkGenericTest, WorksOnStrings) {
  GkAdaptiveImpl<std::string> impl(0.05);
  Xoshiro256 rng(6);
  std::vector<std::string> data;
  for (int i = 0; i < 5'000; ++i) {
    std::string s;
    for (int j = 0; j < 8; ++j) s.push_back('a' + rng.Below(26));
    data.push_back(s);
  }
  for (const auto& s : data) impl.Insert(s);
  std::sort(data.begin(), data.end());
  const std::string median = impl.Query(0.5);
  const auto pos =
      std::lower_bound(data.begin(), data.end(), median) - data.begin();
  EXPECT_NEAR(static_cast<double>(pos), data.size() / 2.0,
              0.06 * data.size());
}

}  // namespace
}  // namespace streamq
