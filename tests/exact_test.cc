// Tests for the exact oracle and the error-measurement protocol.

#include <gtest/gtest.h>

#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "quantile/quantile_sketch.h"

namespace streamq {
namespace {

TEST(ExactOracleTest, RanksOnDistinctData) {
  ExactOracle oracle({10, 20, 30, 40, 50});
  EXPECT_EQ(oracle.n(), 5u);
  EXPECT_EQ(oracle.Rank(5), 0u);
  EXPECT_EQ(oracle.Rank(10), 0u);
  EXPECT_EQ(oracle.Rank(11), 1u);
  EXPECT_EQ(oracle.Rank(50), 4u);
  EXPECT_EQ(oracle.Rank(100), 5u);
}

TEST(ExactOracleTest, RankIntervalWithDuplicates) {
  ExactOracle oracle({1, 2, 2, 2, 3});
  const auto [lo, hi] = oracle.RankInterval(2);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 4u);
  const auto [lo3, hi3] = oracle.RankInterval(3);
  EXPECT_EQ(lo3, 4u);
  EXPECT_EQ(hi3, 5u);
  const auto [lo9, hi9] = oracle.RankInterval(9);
  EXPECT_EQ(lo9, 5u);
  EXPECT_EQ(hi9, 5u);
}

TEST(ExactOracleTest, Quantiles) {
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 100; ++i) data.push_back(i);
  ExactOracle oracle(data);
  EXPECT_EQ(oracle.Quantile(0.5), 50u);
  EXPECT_EQ(oracle.Quantile(0.01), 1u);
  EXPECT_EQ(oracle.Quantile(0.99), 99u);
}

TEST(ExactOracleTest, QuantileErrorZeroInsideInterval) {
  // Value 2 occupies ranks [1, 4) in {1,2,2,2,3}; phi*n = 0.4*5 = 2 inside.
  ExactOracle oracle({1, 2, 2, 2, 3});
  EXPECT_DOUBLE_EQ(oracle.QuantileError(2, 0.4), 0.0);
}

TEST(ExactOracleTest, QuantileErrorDistanceToInterval) {
  ExactOracle oracle({0, 10, 20, 30, 40, 50, 60, 70, 80, 90});
  // Reporting 90 (rank interval [9,10]) for phi = 0.5 (target 5):
  // error (9-5)/10 = 0.4.
  EXPECT_DOUBLE_EQ(oracle.QuantileError(90, 0.5), 0.4);
  // Reporting 0 (interval [0,1]) for phi = 0.5: (5-1)/10 = 0.4.
  EXPECT_DOUBLE_EQ(oracle.QuantileError(0, 0.5), 0.4);
}

TEST(ExactOracleTest, QuantileErrorFavoursAlgorithms) {
  // The paper: the error is the distance to the *closer* interval endpoint.
  std::vector<uint64_t> data(100, 7);  // all duplicates: interval [0,100]
  ExactOracle oracle(data);
  EXPECT_DOUBLE_EQ(oracle.QuantileError(7, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(oracle.QuantileError(7, 0.99), 0.0);
}

// A fake sketch answering exact quantiles, to validate the protocol wiring.
class OracleSketch : public QuantileSketch {
 public:
  explicit OracleSketch(ExactOracle oracle) : oracle_(std::move(oracle)) {}
  StreamqStatus InsertImpl(uint64_t) override { return StreamqStatus::kOk; }
  uint64_t QueryImpl(double phi) override { return oracle_.Quantile(phi); }
  int64_t EstimateRank(uint64_t v) override {
    return static_cast<int64_t>(oracle_.Rank(v));
  }
  uint64_t Count() const override { return oracle_.n(); }
  size_t MemoryBytes() const override { return 0; }
  std::string Name() const override { return "Oracle"; }

 private:
  ExactOracle oracle_;
};

// And one answering a constant, to check errors are actually measured.
class ConstantSketch : public QuantileSketch {
 public:
  explicit ConstantSketch(uint64_t v, uint64_t n) : v_(v), n_(n) {}
  StreamqStatus InsertImpl(uint64_t) override { return StreamqStatus::kOk; }
  uint64_t QueryImpl(double) override { return v_; }
  int64_t EstimateRank(uint64_t) override { return 0; }
  uint64_t Count() const override { return n_; }
  size_t MemoryBytes() const override { return 0; }
  std::string Name() const override { return "Constant"; }

 private:
  uint64_t v_;
  uint64_t n_;
};

TEST(ErrorMetricsTest, ExactAnswersHaveTinyError) {
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 10'000; ++i) data.push_back(i * 3);
  ExactOracle oracle(data);
  OracleSketch sketch{ExactOracle(data)};
  const ErrorStats stats = EvaluateQuantiles(sketch, oracle, 0.01);
  EXPECT_LE(stats.max_error, 1.0 / 10'000 + 1e-12);
  EXPECT_EQ(stats.num_queries, 99u);
}

TEST(ErrorMetricsTest, ConstantAnswerHasLargeMaxError) {
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 1'000; ++i) data.push_back(i);
  ExactOracle oracle(data);
  ConstantSketch sketch(0, 1'000);
  const ErrorStats stats = EvaluateQuantiles(sketch, oracle, 0.1);
  EXPECT_GT(stats.max_error, 0.85);  // phi=0.9 answered with the minimum
  EXPECT_GT(stats.avg_error, 0.3);
  EXPECT_LT(stats.avg_error, stats.max_error);
}

TEST(ErrorMetricsTest, QueryGridIsCapped) {
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 1'000; ++i) data.push_back(i);
  ExactOracle oracle(data);
  OracleSketch sketch{ExactOracle(data)};
  const ErrorStats stats = EvaluateQuantiles(sketch, oracle, 1e-6, 50);
  EXPECT_EQ(stats.num_queries, 50u);
}

}  // namespace
}  // namespace streamq
