// Crash-matrix harness for durable ingest (the acceptance sweep of
// DESIGN.md section 11): kill the pipeline at storage-operation crash
// points covering every WAL append, fsync, checkpoint write, rename and
// segment truncation, recover from what survived on the (simulated) disk,
// re-push the stream from ResumeSeq(), and require
//
//   * zero acknowledged-update loss: recovery + deduped re-push converges
//     to exactly the uninterrupted stream, so the final quantile answers
//     are bit-identical to an uninterrupted reference run;
//   * the eps-n error bound holds on the recovered pipeline;
//   * the ack mark never overclaims (acked <= pushed, and after the
//     re-push completes the whole stream is acknowledged again).
//
// Crash points are armed two ways: by operation kind (the Nth append, the
// Nth fsync, ...) to pin the semantically interesting edges, and by
// global operation index spread across a fault-free run's whole op count
// to sweep everything in between. The fault injector fires each crash
// just BEFORE the armed operation, and arming at index k+1 reaches
// "just after operation k", so both sides of every operation are covered.

#if !defined(STREAMQ_DURABILITY_ENABLED)
#error "STREAMQ_DURABILITY_ENABLED must be defined by the build"
#endif
#if STREAMQ_DURABILITY_ENABLED

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "durability/faulty_storage.h"
#include "durability/storage.h"
#include "exact/exact_oracle.h"
#include "ingest/ingest_pipeline.h"
#include "quantile/factory.h"
#include "stream/generators.h"
#include "stream/update.h"

namespace streamq::durability {
namespace {

constexpr double kEps = 0.05;
constexpr uint64_t kStreamLen = 3000;

ingest::IngestOptions MatrixOptions(Storage* storage) {
  ingest::IngestOptions options;
  options.sketch.algorithm = Algorithm::kRandom;  // serializes its RNG
                                                  // state: replay is
                                                  // bit-reproducible
  options.sketch.eps = kEps;
  options.sketch.log_universe = 20;
  options.sketch.seed = 11;
  options.shards = 2;
  options.ring_capacity = 256;
  options.batch_size = 64;
  options.publish_interval = 512;
  options.durability.enabled = true;
  options.durability.storage = storage;
  options.durability.dir = "dur";
  // Small intervals so a 3000-update stream crosses many sync, segment
  // roll, checkpoint and truncation boundaries.
  options.durability.sync_interval = 256;
  options.durability.checkpoint_interval = 1024;
  options.durability.segment_bytes = 4096;
  options.durability.keep_checkpoints = 2;
  return options;
}

std::vector<uint64_t> MatrixData() {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = kStreamLen;
  spec.log_universe = 20;
  spec.seed = 83;
  return GenerateDataset(spec);
}

const std::vector<double>& MatrixPhis() {
  static const std::vector<double> phis = {0.01, 0.1,  0.25, 0.5,
                                           0.75, 0.9,  0.99};
  return phis;
}

/// The uninterrupted reference: same options, fault-free storage.
std::vector<uint64_t> ReferenceAnswers() {
  MemStorage storage;
  auto pipeline = ingest::IngestPipeline::Create(MatrixOptions(&storage));
  EXPECT_NE(pipeline, nullptr);
  for (uint64_t v : MatrixData()) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  pipeline->Stop();
  return pipeline->QueryMany(MatrixPhis());
}

struct TrialResult {
  bool armed_crash_fired = false;
  uint64_t acked_at_crash = 0;
  uint64_t resume_seq = 0;
  uint64_t replayed_updates = 0;
};

/// One kill-and-recover cycle. `arm` installs the crash point on the
/// faulty view before the run starts. Every assertion of the durability
/// contract lives here.
TrialResult RunCrashTrial(const std::string& label, uint64_t seed,
                          const std::function<void(FaultyStorage&)>& arm,
                          const std::vector<uint64_t>& reference) {
  TrialResult result;
  const std::vector<uint64_t> data = MatrixData();
  MemStorage disk;  // the state that survives "power loss"
  {
    FaultyStorage faulty(&disk, StorageFaultSpec::Perfect(), seed);
    arm(faulty);
    auto pipeline = ingest::IngestPipeline::Create(MatrixOptions(&faulty));
    if (pipeline != nullptr) {
      for (uint64_t v : data) pipeline->Push(Update{v, +1});
      pipeline->Flush();
      result.acked_at_crash = pipeline->DurableSeq();
      EXPECT_LE(result.acked_at_crash, data.size())
          << label << ": ack mark overclaims";
    }
    // else: the crash fired during durable setup itself -- nothing was
    // acknowledged, recovery below must still come up (possibly fresh).
    result.armed_crash_fired = faulty.crashed();
    // Power loss now (mangles every unsynced tail; synced bytes and
    // completed renames survive). If the armed crash already fired this
    // is a no-op second failure.
    faulty.CrashNow();
    // The destructor's Stop() path then runs against dead storage: its
    // final checkpoint must fail harmlessly without touching `disk`.
  }

  // Restart: recovery sees the raw disk, exactly like a new process.
  auto recovered = ingest::IngestPipeline::Create(MatrixOptions(&disk));
  EXPECT_NE(recovered, nullptr) << label << ": recovery failed";
  if (recovered == nullptr) return result;
  result.resume_seq = recovered->ResumeSeq();
  result.replayed_updates = recovered->recovery().replayed_updates;
  EXPECT_GE(result.resume_seq, 1u) << label;
  EXPECT_LE(result.resume_seq, data.size() + 1)
      << label << ": recovery claims updates that were never pushed";

  // Re-push the stream from the resume point (seq s <-> data[s-1]);
  // per-shard seq dedup absorbs whatever the recovered state already
  // holds beyond the minimum shard.
  for (uint64_t seq = result.resume_seq; seq <= data.size(); ++seq) {
    recovered->Push(Update{data[seq - 1], +1});
  }
  recovered->Flush();
  EXPECT_EQ(recovered->DurableSeq(), data.size())
      << label << ": the re-pushed stream must be fully re-acknowledged";
  recovered->Stop();

  // Zero acknowledged-update loss, and in fact zero loss of any kind:
  // recovery + deduped replay must reconstruct the exact uninterrupted
  // stream, giving bit-identical answers...
  const std::vector<uint64_t> answers = recovered->QueryMany(MatrixPhis());
  EXPECT_EQ(answers, reference) << label << " (acked=" << result.acked_at_crash
                                << " resume=" << result.resume_seq << ")";
  // ...and independently the eps-n rank bound against the exact oracle.
  const ExactOracle oracle(data);
  for (size_t i = 0; i < MatrixPhis().size(); ++i) {
    EXPECT_LE(oracle.QuantileError(answers[i], MatrixPhis()[i]), 3 * kEps)
        << label << " phi=" << MatrixPhis()[i];
  }
  return result;
}

/// Total storage ops of a fault-free run, for spreading index crash
/// points over the whole lifetime.
uint64_t FaultFreeOpCount() {
  MemStorage disk;
  FaultyStorage faulty(&disk, StorageFaultSpec::Perfect(), /*seed=*/1);
  auto pipeline = ingest::IngestPipeline::Create(MatrixOptions(&faulty));
  EXPECT_NE(pipeline, nullptr);
  for (uint64_t v : MatrixData()) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  pipeline->Stop();
  return faulty.op_count();
}

TEST(CrashMatrixTest, KindTargetedCrashPointsLoseNothing) {
  const std::vector<uint64_t> reference = ReferenceAnswers();
  ASSERT_EQ(reference.size(), MatrixPhis().size());

  struct KindPoint {
    StorageOp kind;
    const char* name;
    uint64_t nth;
  };
  std::vector<KindPoint> points;
  // Segment/checkpoint-file creation, WAL appends, fsyncs, checkpoint
  // publication renames, and the segment deletions behind WAL truncation
  // and checkpoint pruning. (StorageOp::kTruncate never occurs in live
  // operation -- WAL "truncation" is whole-segment deletion -- and reads
  // only happen during recovery, which runs fault-free here.)
  for (const uint64_t nth : {1, 2, 3}) {
    points.push_back({StorageOp::kCreate, "create", nth});
  }
  for (const uint64_t nth : {1, 2, 3, 5, 8, 13, 21}) {
    points.push_back({StorageOp::kAppend, "append", nth});
  }
  for (const uint64_t nth : {1, 2, 3, 5, 8}) {
    points.push_back({StorageOp::kSync, "sync", nth});
  }
  for (const uint64_t nth : {1, 2}) {
    points.push_back({StorageOp::kRename, "rename", nth});
  }
  for (const uint64_t nth : {1, 2}) {
    points.push_back({StorageOp::kDelete, "delete", nth});
  }

  int fired = 0;
  uint64_t seed = 9000;
  for (const KindPoint& point : points) {
    const std::string label =
        std::string("crash@") + point.name + "#" + std::to_string(point.nth);
    const TrialResult result = RunCrashTrial(
        label, ++seed,
        [&point](FaultyStorage& faulty) {
          faulty.ArmCrashAtOp(point.kind, point.nth);
        },
        reference);
    if (result.armed_crash_fired) ++fired;
    if (HasFatalFailure()) return;
  }
  // Every kind except the rarest tail points must actually fire.
  EXPECT_GE(fired, static_cast<int>(points.size()) - 3)
      << "the workload no longer reaches the armed operations; retune the "
         "matrix intervals";
}

TEST(CrashMatrixTest, IndexSweepCoversThirtyPlusCrashPoints) {
  const std::vector<uint64_t> reference = ReferenceAnswers();
  const uint64_t total_ops = FaultFreeOpCount();
  ASSERT_GT(total_ops, 30u) << "workload too small for a meaningful sweep";

  // >= 31 points: both sides of the first op, then evenly spread over the
  // whole fault-free lifetime (worker timing may shift a run's op count a
  // little; mid-range indices always fire).
  constexpr uint64_t kPoints = 30;
  std::vector<uint64_t> indices = {1, 2};
  for (uint64_t i = 1; i < kPoints; ++i) {
    const uint64_t index = 2 + i * (total_ops - 2) / kPoints;
    if (index != indices.back()) indices.push_back(index);
  }
  int fired = 0;
  uint64_t seed = 17000;
  for (const uint64_t index : indices) {
    const TrialResult result = RunCrashTrial(
        "crash@op" + std::to_string(index), ++seed,
        [index](FaultyStorage& faulty) { faulty.ArmCrashAtOpIndex(index); },
        reference);
    if (result.armed_crash_fired) ++fired;
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(fired, static_cast<int>(indices.size()) * 3 / 4)
      << "op-index sweep mostly missed; the run shape drifted";
}

TEST(CrashMatrixTest, RepeatedCrashesAcrossGenerations) {
  // Crash, recover, crash again mid-re-push, recover again: generational
  // fallback and WAL dedup must compose across incarnations.
  const std::vector<uint64_t> reference = ReferenceAnswers();
  const std::vector<uint64_t> data = MatrixData();
  MemStorage disk;

  // Incarnation 1: crash partway through the stream.
  {
    FaultyStorage faulty(&disk, StorageFaultSpec::Perfect(), /*seed=*/31337);
    faulty.ArmCrashAtOp(StorageOp::kSync, 4);
    auto pipeline = ingest::IngestPipeline::Create(MatrixOptions(&faulty));
    ASSERT_NE(pipeline, nullptr);
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    EXPECT_TRUE(faulty.crashed());
    faulty.CrashNow();
  }

  // Incarnation 2: recover, re-push, crash again before finishing.
  uint64_t second_resume = 0;
  {
    FaultyStorage faulty(&disk, StorageFaultSpec::Perfect(), /*seed=*/31338);
    faulty.ArmCrashAtOp(StorageOp::kAppend, 6);
    auto pipeline = ingest::IngestPipeline::Create(MatrixOptions(&faulty));
    if (pipeline != nullptr) {
      second_resume = pipeline->ResumeSeq();
      for (uint64_t seq = second_resume; seq <= data.size(); ++seq) {
        pipeline->Push(Update{data[seq - 1], +1});
      }
      pipeline->Flush();
    }
    faulty.CrashNow();
  }

  // Incarnation 3: fault-free recovery completes the stream.
  auto pipeline = ingest::IngestPipeline::Create(MatrixOptions(&disk));
  ASSERT_NE(pipeline, nullptr);
  for (uint64_t seq = pipeline->ResumeSeq(); seq <= data.size(); ++seq) {
    pipeline->Push(Update{data[seq - 1], +1});
  }
  pipeline->Flush();
  EXPECT_EQ(pipeline->DurableSeq(), data.size());
  pipeline->Stop();
  EXPECT_EQ(pipeline->QueryMany(MatrixPhis()), reference);
}

}  // namespace
}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_ENABLED
