// Fault-injected distributed monitoring: the channel's deterministic fault
// injector, the retry/dedup protocol under a fault matrix, and site
// crash/checkpoint recovery.
//
// Everything here is driven by fixed seeds and virtual time, so each
// scenario is reproducible bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "distributed/channel.h"
#include "distributed/monitor.h"
#include "exact/exact_oracle.h"
#include "util/random.h"

namespace streamq {
namespace {

// ---------------------------------------------------------------- channel

TEST(FaultyChannelTest, PerfectChannelDeliversImmediatelyInOrder) {
  FaultyChannel ch(FaultSpec{}, 1);
  ch.Send(5, "alpha");
  ch.Send(5, "beta");
  EXPECT_TRUE(ch.Poll(4).empty());  // nothing due before send time
  const auto msgs = ch.Poll(5);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0], "alpha");
  EXPECT_EQ(msgs[1], "beta");
  EXPECT_TRUE(ch.Idle());
  EXPECT_EQ(ch.stats().sent, 2u);
  EXPECT_EQ(ch.stats().delivered, 2u);
  EXPECT_EQ(ch.stats().dropped, 0u);
  EXPECT_EQ(ch.stats().bytes_offered, 9u);
  EXPECT_EQ(ch.stats().bytes_delivered, 9u);
}

TEST(FaultyChannelTest, DropRateIsRespectedStatistically) {
  FaultSpec spec;
  spec.drop = 0.3;
  FaultyChannel ch(spec, 42);
  const int kSends = 4000;
  for (int i = 0; i < kSends; ++i) ch.Send(i, "x");
  size_t delivered = 0;
  for (int i = 0; i < kSends; ++i) delivered += ch.Poll(i).size();
  EXPECT_EQ(ch.stats().dropped + delivered, static_cast<size_t>(kSends));
  // 0.3 +- 5 sigma on 4000 trials.
  EXPECT_NEAR(static_cast<double>(ch.stats().dropped) / kSends, 0.3, 0.04);
}

TEST(FaultyChannelTest, DuplicatesProduceExtraCopies) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  FaultyChannel ch(spec, 7);
  ch.Send(0, "msg");
  const auto msgs = ch.Poll(0);
  EXPECT_EQ(msgs.size(), 2u);
  EXPECT_EQ(ch.stats().duplicated, 1u);
}

TEST(FaultyChannelTest, CorruptionFlipsExactlyOneByte) {
  FaultSpec spec;
  spec.corrupt = 1.0;
  FaultyChannel ch(spec, 9);
  const std::string original(64, 'A');
  ch.Send(0, original);
  const auto msgs = ch.Poll(0);
  ASSERT_EQ(msgs.size(), 1u);
  ASSERT_EQ(msgs[0].size(), original.size());
  size_t differing = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    if (msgs[0][i] != original[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);
  EXPECT_EQ(ch.stats().corrupted, 1u);
}

TEST(FaultyChannelTest, ReorderHoldsACopyBack) {
  FaultSpec spec;
  spec.reorder = 1.0;
  spec.reorder_extra = 16;
  FaultyChannel ch(spec, 11);
  ch.Send(0, "held");
  EXPECT_TRUE(ch.Poll(0).empty());  // held back
  size_t delivered = 0;
  for (uint64_t t = 1; t <= 1 + spec.reorder_extra; ++t) {
    delivered += ch.Poll(t).size();
  }
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(ch.stats().reordered, 1u);
}

TEST(FaultyChannelTest, SameSeedSameFaults) {
  FaultSpec spec;
  spec.drop = 0.4;
  spec.duplicate = 0.2;
  spec.corrupt = 0.3;
  spec.min_delay = 1;
  spec.max_delay = 9;
  auto run = [&](uint64_t seed) {
    FaultyChannel ch(spec, seed);
    std::vector<std::string> out;
    for (int i = 0; i < 500; ++i) {
      ch.Send(i, std::string(16, static_cast<char>('a' + i % 26)));
      for (std::string& m : ch.Poll(i)) out.push_back(std::move(m));
    }
    for (int i = 500; i < 600; ++i) {
      for (std::string& m : ch.Poll(i)) out.push_back(std::move(m));
    }
    return out;
  };
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(124));  // and the seed actually matters
}

// ----------------------------------------------------- protocol vs oracle

struct Scenario {
  const char* name;
  FaultSpec faults;  // applied to both directions
};

std::vector<Scenario> FaultMatrix() {
  std::vector<Scenario> rows;
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    FaultSpec f;
    f.drop = drop;
    f.min_delay = 1;
    f.max_delay = 8;
    rows.push_back({"drop", f});
  }
  {
    FaultSpec f;
    f.duplicate = 0.5;
    f.min_delay = 1;
    f.max_delay = 8;
    rows.push_back({"duplicate", f});
  }
  {
    FaultSpec f;
    f.reorder = 0.5;
    f.reorder_extra = 32;
    f.min_delay = 1;
    f.max_delay = 8;
    rows.push_back({"reorder", f});
  }
  {
    FaultSpec f;
    f.corrupt = 0.3;
    f.min_delay = 1;
    f.max_delay = 8;
    rows.push_back({"corrupt", f});
  }
  {
    FaultSpec f;  // everything at once
    f.drop = 0.25;
    f.duplicate = 0.25;
    f.reorder = 0.25;
    f.corrupt = 0.25;
    f.min_delay = 1;
    f.max_delay = 12;
    rows.push_back({"combined", f});
  }
  return rows;
}

// Worst-case rank error of a coordinator answer: the local summaries carry
// eps/2 each, and un-delivered suffixes add StalenessBound() whole ranks.
void ExpectWithinBound(DistributedQuantileMonitor& monitor,
                       const std::vector<uint64_t>& observed, double eps,
                       const std::string& context) {
  if (observed.empty()) return;
  ExactOracle oracle(observed);
  const double n = static_cast<double>(observed.size());
  const double bound =
      eps * n + static_cast<double>(monitor.StalenessBound()) + 1.0;
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const uint64_t exact_q = oracle.Quantile(phi);
    const auto interval = oracle.RankInterval(exact_q);
    const int64_t est = monitor.EstimateRank(exact_q);
    const double lo = static_cast<double>(interval.first) - bound;
    const double hi = static_cast<double>(interval.second) + bound;
    EXPECT_GE(static_cast<double>(est), lo)
        << context << " phi=" << phi << " staleness="
        << monitor.StalenessBound();
    EXPECT_LE(static_cast<double>(est), hi)
        << context << " phi=" << phi << " staleness="
        << monitor.StalenessBound();
  }
}

TEST(FaultMatrixTest, CoordinatorStaysWithinEpsPlusStaleness) {
  const double eps = 0.05;
  const int kSites = 3;
  const int kN = 3000;
  for (const Scenario& scenario : FaultMatrix()) {
    for (uint64_t seed : {1u, 7u, 23u}) {
      MonitorOptions options;
      options.data_faults = scenario.faults;
      options.ack_faults = scenario.faults;
      options.seed = seed;
      DistributedQuantileMonitor monitor(kSites, eps, -1.0, options);
      Xoshiro256 rng(seed * 1000 + 17);
      std::vector<uint64_t> observed;
      observed.reserve(kN);
      const std::string context = std::string(scenario.name) + " drop=" +
                                  std::to_string(scenario.faults.drop) +
                                  " seed=" + std::to_string(seed);
      for (int i = 0; i < kN; ++i) {
        const int site = static_cast<int>(rng.Below(kSites));
        // Skewed per-site ranges so the union genuinely needs all sites.
        const uint64_t value =
            static_cast<uint64_t>(site) * 100'000 + rng.Below(100'000);
        monitor.Observe(site, value);
        observed.push_back(value);
        if ((i + 1) % 1000 == 0) {
          // Mid-stream: answers may be stale, but never beyond the bound
          // the monitor itself reports.
          ExpectWithinBound(monitor, observed, eps, context + " mid");
        }
      }
      EXPECT_EQ(monitor.GlobalCount(), static_cast<uint64_t>(kN)) << context;
      // With retries, even 50% drop in both directions quiesces.
      EXPECT_TRUE(monitor.Quiesce()) << context;
      EXPECT_EQ(monitor.StalenessBound(), 0u) << context;
      EXPECT_EQ(monitor.coordinator().ReportedCount(),
                static_cast<uint64_t>(kN))
          << context << ": dedup must keep the reported count exact";
      ExpectWithinBound(monitor, observed, eps, context + " final");
      if (scenario.faults.corrupt > 0.0) {
        // The injector did corrupt shipments, and every one was caught by
        // the frame check rather than accepted.
        EXPECT_GT(monitor.data_channel_stats().corrupted, 0u) << context;
        EXPECT_GT(monitor.coordinator().stats().rejected_corrupt, 0u)
            << context;
      }
    }
  }
}

TEST(FaultMatrixTest, HeavyDuplicationKeepsCountsExact) {
  FaultSpec f;
  f.duplicate = 0.9;
  MonitorOptions options;
  options.data_faults = f;
  options.ack_faults = f;
  options.seed = 5;
  DistributedQuantileMonitor monitor(2, 0.1, -1.0, options);
  for (int i = 0; i < 2000; ++i) {
    monitor.Observe(i % 2, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(monitor.Quiesce());
  EXPECT_GT(monitor.data_channel_stats().duplicated, 0u);
  EXPECT_GT(monitor.coordinator().stats().rejected_stale, 0u);
  EXPECT_EQ(monitor.GlobalCount(), 2000u);
  EXPECT_EQ(monitor.coordinator().ReportedCount(), 2000u);
}

TEST(FaultMatrixTest, StalenessBoundShrinksOnQuiesce) {
  FaultSpec f;
  f.drop = 0.5;
  f.min_delay = 2;
  f.max_delay = 16;
  MonitorOptions options;
  options.data_faults = f;
  options.ack_faults = f;
  options.seed = 3;
  DistributedQuantileMonitor monitor(4, 0.05, -1.0, options);
  Xoshiro256 rng(99);
  for (int i = 0; i < 4000; ++i) {
    monitor.Observe(static_cast<int>(rng.Below(4)), rng.Below(1 << 20));
  }
  ASSERT_TRUE(monitor.Quiesce());
  EXPECT_EQ(monitor.StalenessBound(), 0u);
  EXPECT_GT(monitor.RetransmitCount(), 0u);  // retries actually happened
}

TEST(FaultMatrixTest, DeterministicAcrossRuns) {
  auto run = [] {
    FaultSpec f;
    f.drop = 0.3;
    f.duplicate = 0.2;
    f.corrupt = 0.2;
    f.min_delay = 1;
    f.max_delay = 10;
    MonitorOptions options;
    options.data_faults = f;
    options.ack_faults = f;
    options.seed = 77;
    DistributedQuantileMonitor monitor(3, 0.05, -1.0, options);
    Xoshiro256 rng(7);
    for (int i = 0; i < 2000; ++i) {
      monitor.Observe(static_cast<int>(rng.Below(3)), rng.Below(1 << 16));
    }
    monitor.Quiesce();
    return std::tuple(monitor.CommunicationBytes(), monitor.ShipmentCount(),
                      monitor.RetransmitCount(),
                      monitor.coordinator().stats().rejected_corrupt,
                      monitor.Query(0.5));
  };
  EXPECT_EQ(run(), run());
}

// -------------------------------------------------------- crash / restart

TEST(RecoveryTest, CheckpointRestartReplaysLostTail) {
  const double eps = 0.05;
  FaultSpec f;
  f.drop = 0.2;
  f.min_delay = 1;
  f.max_delay = 6;
  MonitorOptions options;
  options.data_faults = f;
  options.ack_faults = f;
  options.seed = 13;
  DistributedQuantileMonitor monitor(2, eps, -1.0, options);
  Xoshiro256 rng(21);
  std::vector<uint64_t> observed;
  std::vector<uint64_t> site0_since_checkpoint;
  std::string checkpoint;
  for (int i = 0; i < 3000; ++i) {
    const int site = static_cast<int>(rng.Below(2));
    const uint64_t value = rng.Below(1 << 20);
    monitor.Observe(site, value);
    observed.push_back(value);
    if (site == 0) site0_since_checkpoint.push_back(value);
    if (i == 1500) {
      checkpoint = monitor.CheckpointSite(0);
      ASSERT_FALSE(checkpoint.empty());
      site0_since_checkpoint.clear();
    }
  }
  const uint64_t count_before_crash = monitor.SiteCount(0);
  monitor.CrashSite(0);
  EXPECT_EQ(monitor.SiteCount(0), 0u);
  ASSERT_TRUE(monitor.RestartSite(0, checkpoint));
  EXPECT_LT(monitor.SiteCount(0), count_before_crash);  // tail was lost
  // The application replays the lost tail (e.g. from an upstream log).
  for (uint64_t value : site0_since_checkpoint) monitor.Observe(0, value);
  EXPECT_EQ(monitor.SiteCount(0), count_before_crash);
  ASSERT_TRUE(monitor.Quiesce());
  EXPECT_EQ(monitor.coordinator().ReportedCount(),
            static_cast<uint64_t>(observed.size()));
  ExactOracle oracle(observed);
  const double n = static_cast<double>(observed.size());
  for (double phi : {0.25, 0.5, 0.75}) {
    const uint64_t exact_q = oracle.Quantile(phi);
    const auto interval = oracle.RankInterval(exact_q);
    const int64_t est = monitor.EstimateRank(exact_q);
    EXPECT_GE(est, static_cast<int64_t>(interval.first) -
                       static_cast<int64_t>(eps * n) - 1)
        << phi;
    EXPECT_LE(est, static_cast<int64_t>(interval.second) +
                       static_cast<int64_t>(eps * n) + 1)
        << phi;
  }
}

TEST(RecoveryTest, RestartWithoutReplayKeepsCheckpointState) {
  // If the tail is simply lost, the monitor converges on the checkpointed
  // prefix: the coordinator ends up reflecting exactly the restored count.
  DistributedQuantileMonitor monitor(2, 0.1);
  for (int i = 0; i < 1000; ++i) {
    monitor.Observe(i % 2, static_cast<uint64_t>(i));
  }
  const std::string checkpoint = monitor.CheckpointSite(1);
  const uint64_t checkpointed = monitor.SiteCount(1);
  for (int i = 1000; i < 1500; ++i) monitor.Observe(1, static_cast<uint64_t>(i));
  monitor.CrashSite(1);
  ASSERT_TRUE(monitor.RestartSite(1, checkpoint));
  EXPECT_EQ(monitor.SiteCount(1), checkpointed);
  ASSERT_TRUE(monitor.Quiesce());
  EXPECT_EQ(monitor.coordinator().KnownCount(1), checkpointed);
  EXPECT_EQ(monitor.GlobalCount(),
            monitor.SiteCount(0) + checkpointed);
}

TEST(RecoveryTest, CorruptCheckpointIsRejected) {
  DistributedQuantileMonitor monitor(1, 0.1);
  for (int i = 0; i < 500; ++i) monitor.Observe(0, static_cast<uint64_t>(i));
  const std::string checkpoint = monitor.CheckpointSite(0);
  for (size_t i = 0; i < checkpoint.size(); ++i) {
    std::string corrupted = checkpoint;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5A);
    EXPECT_FALSE(monitor.RestartSite(0, corrupted)) << "byte " << i;
  }
  EXPECT_FALSE(monitor.RestartSite(0, std::string()));
  EXPECT_FALSE(monitor.RestartSite(0, checkpoint.substr(0, 10)));
  // The intact checkpoint still restores.
  EXPECT_TRUE(monitor.RestartSite(0, checkpoint));
}

TEST(RecoveryTest, RestartAfterCoordinatorAdvancedFastForwards) {
  // Checkpoint early, let the site ship far past it, crash, restore the
  // OLD checkpoint: the coordinator's acks teach the revived site the
  // foreign sequence horizon and it re-ships, so the coordinator converges
  // back to the (older) truthful state instead of rejecting it forever.
  DistributedQuantileMonitor monitor(1, 0.1);
  for (int i = 0; i < 200; ++i) monitor.Observe(0, static_cast<uint64_t>(i));
  const std::string old_checkpoint = monitor.CheckpointSite(0);
  const uint64_t old_count = monitor.SiteCount(0);
  for (int i = 200; i < 2000; ++i) monitor.Observe(0, static_cast<uint64_t>(i));
  ASSERT_TRUE(monitor.Quiesce());
  ASSERT_EQ(monitor.coordinator().KnownCount(0), 2000u);
  monitor.CrashSite(0);
  ASSERT_TRUE(monitor.RestartSite(0, old_checkpoint));
  ASSERT_TRUE(monitor.Quiesce());
  EXPECT_EQ(monitor.coordinator().KnownCount(0), old_count);
  EXPECT_EQ(monitor.StalenessBound(), 0u);
}

}  // namespace
}  // namespace streamq
