// Tests for the flight-recorder tracing layer (src/obs/trace.h,
// src/obs/trace_export.h) and its satellites: TickClock calibration,
// Histogram::ValueAtQuantile, ring record/snapshot/wrap semantics, the
// Chrome-trace and Prometheus exporters (including wrap-orphaned spans),
// crash-dump triggers, and the end-to-end armed-crash dump the acceptance
// criteria require.
//
// The file compiles and passes in both trace build flavours; assertions
// that need live macro call sites are guarded on STREAMQ_TRACE_ENABLED,
// and a -DSTREAMQ_TRACE=OFF build instead asserts the macros record
// nothing. The concurrency tests double as the TSan proof that concurrent
// record + snapshot is race-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "quantile/factory.h"
#include "stream/update.h"

#if STREAMQ_DURABILITY_ENABLED
#include "durability/faulty_storage.h"
#include "durability/storage.h"
#endif

namespace streamq {
namespace {

using obs::ChromeTraceOptions;
using obs::ExportChromeTrace;
using obs::ExportPrometheusText;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TickClock;
using obs::TracePhase;
using obs::TracePoint;
using obs::Tracer;
using obs::TraceRing;

// Restores the global tracer to its default state (disabled, cleared,
// disarmed) however a test exits.
struct GlobalTraceGuard {
  GlobalTraceGuard() {
    Tracer::Global().SetEnabled(true);
    Tracer::Global().Clear();
  }
  ~GlobalTraceGuard() {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().SetCrashDumpPath("");
    Tracer::Global().Clear();
  }
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Minimal structural JSON sanity: balanced braces/brackets outside string
// literals and no trailing commas. The authoritative json.loads validation
// runs in scripts/check_trace_json.py; this keeps C++-side coverage for
// builds where the script tests are not registered.
void ExpectStructurallyValidJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
      EXPECT_NE(prev_significant, ',') << "trailing comma";
    }
    if (c != ' ' && c != '\n' && c != '\t' && c != '\r') {
      prev_significant = c;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

// --- TickClock calibration ------------------------------------------------

TEST(TickClockTest, CalibrationIsSelfConsistent) {
  if (TickClock::UsingTsc()) {
    // A plausible TSC frequency: 100 MHz .. 10 GHz.
    EXPECT_GT(TickClock::NanosPerTick(), 0.1);
    EXPECT_LT(TickClock::NanosPerTick(), 10.0);
  } else {
    EXPECT_EQ(TickClock::NanosPerTick(), 1.0);
    EXPECT_EQ(TickClock::ToNanos(12345), 12345u);
  }
  EXPECT_EQ(TickClock::ToNanos(0), 0u);
}

TEST(TickClockTest, NanosTrackRealTime) {
  // A 20 ms sleep must measure as tens of milliseconds in calibrated
  // nanoseconds — this is what makes exported trace timestamps real time
  // rather than raw cycle counts. Wide bounds absorb scheduler noise.
  const uint64_t t0 = TickClock::NowNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t t1 = TickClock::NowNanos();
  EXPECT_GE(t1 - t0, 10'000'000u);
  EXPECT_LE(t1 - t0, 2'000'000'000u);
}

TEST(TickClockTest, MonotonicAcrossThreads) {
  // Sequenced handoff: ticks taken in joined threads never run backwards
  // from the perspective of the next thread (invariant TSC is synchronized
  // across cores; the steady_clock fallback is monotonic by contract).
  uint64_t previous = TickClock::Now();
  for (int i = 0; i < 8; ++i) {
    uint64_t sampled = 0;
    std::thread t([&sampled] { sampled = TickClock::Now(); });
    t.join();
    EXPECT_GE(sampled, previous);
    previous = sampled;
  }
}

// --- Histogram::ValueAtQuantile ------------------------------------------

TEST(ValueAtQuantileTest, EmptyAndInvalidInputs) {
  Histogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  h.Record(7);
  EXPECT_EQ(h.ValueAtQuantile(-0.1), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.1), 0u);
  EXPECT_EQ(h.ValueAtQuantile(std::nan("")), 0u);
}

TEST(ValueAtQuantileTest, DegenerateDistributionIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(42);
  // All mass in one bucket, min == max == 42: clamping makes every
  // quantile exact.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 42u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 42u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 42u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 42u);
}

TEST(ValueAtQuantileTest, EndpointsAreMinAndMax) {
  Histogram h;
  h.Record(3);
  h.Record(1000);
  h.Record(17);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 3u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1000u);
}

TEST(ValueAtQuantileTest, MatchesExactRankBucket) {
  // Uniform 1..N: for each phi, the estimate must land in the same pow2
  // bucket as the exact rank-ceil(phi*N) order statistic — the histogram's
  // resolution bound.
  constexpr uint64_t kN = 10000;
  Histogram h;
  std::vector<uint64_t> sorted;
  sorted.reserve(kN);
  for (uint64_t v = 1; v <= kN; ++v) {
    h.Record(v);
    sorted.push_back(v);
  }
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const uint64_t rank = static_cast<uint64_t>(
        std::ceil(phi * static_cast<double>(kN)));
    const uint64_t exact = sorted[rank - 1];
    const uint64_t est = h.ValueAtQuantile(phi);
    EXPECT_EQ(Histogram::BucketIndex(est), Histogram::BucketIndex(exact))
        << "phi=" << phi << " exact=" << exact << " est=" << est;
    EXPECT_GE(est, h.min());
    EXPECT_LE(est, h.max());
  }
}

TEST(ValueAtQuantileTest, SkewedMassFindsTheHeavyBucket) {
  Histogram h;
  for (int i = 0; i < 990; ++i) h.Record(4);   // bucket of [4,8)
  for (int i = 0; i < 10; ++i) h.Record(1 << 20);
  EXPECT_EQ(Histogram::BucketIndex(h.ValueAtQuantile(0.5)),
            Histogram::BucketIndex(4));
  EXPECT_EQ(Histogram::BucketIndex(h.ValueAtQuantile(0.999)),
            Histogram::BucketIndex(1 << 20));
}

TEST(ValueAtQuantileTest, SaturatingBucketUsesRecordedMax) {
  Histogram h;
  const uint64_t huge = uint64_t{1} << 40;  // saturates into the last bucket
  h.Record(huge);
  h.Record(huge + 5);
  EXPECT_GE(h.ValueAtQuantile(0.9), huge);
  EXPECT_LE(h.ValueAtQuantile(0.9), huge + 5);
}

// --- TraceRing ------------------------------------------------------------

TEST(TraceRingTest, RoundTripInOrder) {
  TraceRing ring(64);
  ring.Record(TracePoint::kPush, TracePhase::kBegin, 11);
  ring.Record(TracePoint::kPush, TracePhase::kEnd, 0);
  ring.Record(TracePoint::kViewFlip, TracePhase::kInstant, 7);
  const TraceRing::SnapshotResult snap = ring.Snapshot();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.recorded, 3u);
  EXPECT_EQ(snap.overwritten, 0u);
  EXPECT_EQ(snap.discarded, 0u);
  EXPECT_EQ(snap.events[0].point, TracePoint::kPush);
  EXPECT_EQ(snap.events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(snap.events[0].arg, 11u);
  EXPECT_EQ(snap.events[2].point, TracePoint::kViewFlip);
  EXPECT_EQ(snap.events[2].arg, 7u);
  // Timestamps from one thread are non-decreasing.
  EXPECT_LE(snap.events[0].ticks, snap.events[1].ticks);
  EXPECT_LE(snap.events[1].ticks, snap.events[2].ticks);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 8u);
  EXPECT_EQ(TraceRing(100).capacity(), 128u);
  EXPECT_EQ(TraceRing(256).capacity(), 256u);
}

TEST(TraceRingTest, WrapKeepsTheNewestEvents) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 100; ++i) {
    ring.Record(TracePoint::kPush, TracePhase::kInstant, i);
  }
  const TraceRing::SnapshotResult snap = ring.Snapshot();
  EXPECT_EQ(snap.recorded, 100u);
  EXPECT_EQ(snap.overwritten, 100u - ring.capacity());
  // The seqlock rule keeps index i only when i + capacity > head: the
  // oldest surviving slot is the one a writer mid-recording could be
  // rewriting, so even a quiescent wrapped ring yields capacity - 1
  // events with exactly one conservatively discarded.
  ASSERT_EQ(snap.events.size(), ring.capacity() - 1);
  EXPECT_EQ(snap.discarded, 1u);
  // The survivors are exactly the newest `capacity - 1` args, in order.
  for (size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].arg, 100 - (ring.capacity() - 1) + i);
  }
}

TEST(TraceRingTest, ResetForgetsHistory) {
  TraceRing ring(16);
  ring.Record(TracePoint::kPush, TracePhase::kInstant, 1);
  ring.Reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().events.empty());
}

TEST(TraceRingTest, ConcurrentSnapshotsNeverTear) {
  // One writer hammering a tiny ring, one reader snapshotting: every kept
  // event must be internally consistent (arg == ticks payload contract
  // below) even while being overwritten. Runs under TSan in the verify
  // config, which also proves data-race freedom.
  TraceRing ring(16);
  std::atomic<bool> stop{false};
  std::thread writer([&ring, &stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // arg encodes the sequence; phase alternates to vary meta.
      ring.Record(TracePoint::kWalAppend,
                  (i & 1) != 0 ? TracePhase::kEnd : TracePhase::kBegin, i);
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    const TraceRing::SnapshotResult snap = ring.Snapshot();
    // Kept events are in recording order: args strictly increase.
    for (size_t i = 1; i < snap.events.size(); ++i) {
      EXPECT_GT(snap.events[i].arg, snap.events[i - 1].arg);
      EXPECT_GE(snap.events[i].ticks, snap.events[i - 1].ticks);
    }
    EXPECT_LE(snap.events.size() + snap.discarded, ring.capacity());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// --- Tracer pool + macros -------------------------------------------------

TEST(TracerTest, RingsAreReusedAcrossThreads) {
  GlobalTraceGuard guard;
  auto record_once = [] {
    obs::TraceRecord(TracePoint::kPush, TracePhase::kInstant, 1);
  };
  std::thread(record_once).join();
  const size_t rings_after_first = Tracer::Global().RingCount();
  // A second short-lived thread reuses the released ring instead of
  // growing the pool.
  std::thread(record_once).join();
  EXPECT_EQ(Tracer::Global().RingCount(), rings_after_first);
}

#if STREAMQ_TRACE_ENABLED

TEST(TracerTest, SpanMacroRecordsBeginAndEnd) {
  GlobalTraceGuard guard;
  const uint64_t before = Tracer::Global().TotalRecorded();
  {
    STREAMQ_TRACE_SPAN(TracePoint::kQuery, 42);
  }
  EXPECT_EQ(Tracer::Global().TotalRecorded(), before + 2);
  STREAMQ_TRACE_INSTANT(TracePoint::kViewFlip, 9);
  EXPECT_EQ(Tracer::Global().TotalRecorded(), before + 3);
}

TEST(TracerTest, DisabledMacrosRecordNothing) {
  GlobalTraceGuard guard;
  Tracer::Global().SetEnabled(false);
  const uint64_t before = Tracer::Global().TotalRecorded();
  {
    STREAMQ_TRACE_SPAN(TracePoint::kQuery, 1);
    STREAMQ_TRACE_INSTANT(TracePoint::kViewFlip, 2);
  }
  EXPECT_EQ(Tracer::Global().TotalRecorded(), before);
}

TEST(TracerTest, SpanLatchesEnabledAtConstruction) {
  GlobalTraceGuard guard;
  const uint64_t before = Tracer::Global().TotalRecorded();
  {
    STREAMQ_TRACE_SPAN(TracePoint::kQuery, 1);
    // Disabling mid-span must not orphan the begin: the span latched the
    // flag and still records its end.
    Tracer::Global().SetEnabled(false);
  }
  EXPECT_EQ(Tracer::Global().TotalRecorded(), before + 2);
}

#else  // !STREAMQ_TRACE_ENABLED

TEST(TracerTest, CompiledOutMacrosRecordNothing) {
  GlobalTraceGuard guard;
  const uint64_t before = Tracer::Global().TotalRecorded();
  {
    STREAMQ_TRACE_SPAN(TracePoint::kQuery, 1);
    STREAMQ_TRACE_INSTANT(TracePoint::kViewFlip, 2);
    STREAMQ_TRACE_CRASH_DUMP("noop");
  }
  EXPECT_EQ(Tracer::Global().TotalRecorded(), before);
}

#endif  // STREAMQ_TRACE_ENABLED

// --- Chrome trace export --------------------------------------------------

TEST(ChromeExportTest, PairsSpansAndMarksOrphans) {
  Tracer tracer;
  TraceRing* ring = tracer.AcquireThreadRing();
  // An orphan end (its begin was "overwritten"), a matched span with a
  // nested instant, and an orphan begin (no end before the dump).
  ring->Record(TracePoint::kWalSync, TracePhase::kEnd, 0);
  ring->Record(TracePoint::kWorkerBatch, TracePhase::kBegin, 64);
  ring->Record(TracePoint::kViewFlip, TracePhase::kInstant, 3);
  ring->Record(TracePoint::kWorkerBatch, TracePhase::kEnd, 0);
  ring->Record(TracePoint::kWalAppend, TracePhase::kBegin, 1);
  const std::string json = ExportChromeTrace(tracer);
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"worker_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"orphan\": \"end\""), std::string::npos);
  EXPECT_NE(json.find("\"orphan\": \"begin\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"view_flip\""), std::string::npos);
  tracer.ReleaseThreadRing(ring);
}

TEST(ChromeExportTest, WrappedMidSpanRingStaysValid) {
  Tracer tracer;
  tracer.SetRingEvents(16);
  TraceRing* ring = tracer.AcquireThreadRing();
  // Begin/end pairs flood a tiny ring so it wraps mid-span many times;
  // the export must remain structurally valid with orphans marked.
  for (uint64_t i = 0; i < 999; ++i) {
    ring->Record(TracePoint::kPush, TracePhase::kBegin, i);
    if (i % 3 != 0) ring->Record(TracePoint::kPush, TracePhase::kEnd, 0);
  }
  const std::string json = ExportChromeTrace(tracer);
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"events_overwritten\""), std::string::npos);
  tracer.ReleaseThreadRing(ring);
}

TEST(ChromeExportTest, EmptyTracerExportsValidJson) {
  Tracer tracer;
  const std::string json = ExportChromeTrace(tracer);
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeExportTest, CrashReasonLandsInOtherData) {
  Tracer tracer;
  ChromeTraceOptions options;
  options.crash_reason = "wal_dead";
  const std::string json = ExportChromeTrace(tracer, options);
  EXPECT_NE(json.find("\"crash_reason\": \"wal_dead\""), std::string::npos);
}

// --- Prometheus export ----------------------------------------------------

TEST(PrometheusExportTest, FamiliesAndSamples) {
  MetricsRegistry registry;
  registry.GetCounter("pipeline.shard0.pushed").Add(17);
  registry.GetGauge("pipeline.view_epoch").Set(-3);
  Histogram& h = registry.GetHistogram("pipeline.merge_ticks");
  for (uint64_t v : {1u, 2u, 3u, 100u}) h.Record(v);
  const std::string text = ExportPrometheusText(registry);

  EXPECT_NE(
      text.find(
          "# TYPE streamq_pipeline_shard0_pushed_total counter"),
      std::string::npos);
  EXPECT_NE(text.find("streamq_pipeline_shard0_pushed_total 17"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE streamq_pipeline_view_epoch gauge"),
            std::string::npos);
  EXPECT_NE(text.find("streamq_pipeline_view_epoch -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE streamq_pipeline_merge_ticks histogram"),
            std::string::npos);
  EXPECT_NE(text.find("streamq_pipeline_merge_ticks_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("streamq_pipeline_merge_ticks_sum 106"),
            std::string::npos);
  EXPECT_NE(text.find("streamq_pipeline_merge_ticks_count 4"),
            std::string::npos);
  // The summary's median comes from ValueAtQuantile.
  const std::string median_line =
      "streamq_pipeline_merge_ticks_quantiles{quantile=\"0.5\"} " +
      std::to_string(h.ValueAtQuantile(0.5));
  EXPECT_NE(text.find(median_line), std::string::npos);
}

TEST(PrometheusExportTest, BucketCountsAreCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("hist");
  for (uint64_t v = 0; v < 1000; ++v) h.Record(v);
  const std::string text = ExportPrometheusText(registry);
  // Walk the bucket lines in order; the counts must be non-decreasing and
  // end at the total count.
  uint64_t previous = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("streamq_hist_bucket{le=", pos)) !=
         std::string::npos) {
    const size_t space = text.find('}', pos);
    const uint64_t count = std::stoull(text.substr(space + 2));
    EXPECT_GE(count, previous);
    previous = count;
    ++buckets_seen;
    pos = space;
  }
  EXPECT_EQ(buckets_seen, Histogram::kBucketCount);  // 31 finite + Inf
  EXPECT_EQ(previous, 1000u);
}

// --- crash-dump latch -----------------------------------------------------

TEST(CrashDumpTest, DumpsOncePerArm) {
  GlobalTraceGuard guard;
  const std::string path = ::testing::TempDir() + "streamq_crash_dump.json";
  std::remove(path.c_str());
  Tracer::Global().SetCrashDumpPath(path);
  obs::TraceRecord(TracePoint::kWalAppend, TracePhase::kBegin, 0);
  obs::TraceRecord(TracePoint::kWalAppend, TracePhase::kEnd, 0);

  EXPECT_TRUE(Tracer::Global().CrashDump("test_trigger"));
  EXPECT_TRUE(Tracer::Global().crash_dumped());
  const std::string first = ReadWholeFile(path);
  EXPECT_FALSE(first.empty());
  ExpectStructurallyValidJson(first);
  EXPECT_NE(first.find("\"crash_reason\": \"test_trigger\""),
            std::string::npos);
  EXPECT_NE(first.find("wal_append"), std::string::npos);

  // Latched: a second trigger neither rewrites nor fails loudly.
  EXPECT_FALSE(Tracer::Global().CrashDump("second_trigger"));
  // Re-arming re-opens it.
  Tracer::Global().RearmCrashDump();
  EXPECT_TRUE(Tracer::Global().CrashDump("third_trigger"));
  std::remove(path.c_str());
}

TEST(CrashDumpTest, UnarmedDumpIsANoop) {
  GlobalTraceGuard guard;
  EXPECT_FALSE(Tracer::Global().CrashDump("nobody_listening"));
}

// --- pipeline integration -------------------------------------------------

#if STREAMQ_TRACE_ENABLED

ingest::IngestOptions TracePipelineOptions() {
  ingest::IngestOptions options;
  options.sketch.algorithm = Algorithm::kRandom;
  options.sketch.eps = 0.05;
  options.sketch.log_universe = 20;
  options.sketch.seed = 7;
  options.shards = 2;
  options.ring_capacity = 256;
  options.batch_size = 64;
  options.publish_interval = 512;
  return options;
}

TEST(TracePipelineTest, FullPathShowsUpInTheExport) {
  GlobalTraceGuard guard;
  auto pipeline = ingest::IngestPipeline::Create(TracePipelineOptions());
  ASSERT_NE(pipeline, nullptr);
  for (uint64_t v = 0; v < 5000; ++v) {
    pipeline->Push(Update{v % 1024, +1});
  }
  pipeline->Flush();
  (void)pipeline->Query(0.5);
  pipeline->Stop();
  const std::string json = ExportChromeTrace(Tracer::Global());
  ExpectStructurallyValidJson(json);
  for (const char* name :
       {"\"push\"", "\"worker_batch\"", "\"sketch_update\"",
        "\"view_publish\"", "\"view_flip\"", "\"query\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

#if STREAMQ_DURABILITY_ENABLED

// The acceptance-criteria path: an armed crash point kills storage, the
// WAL writer goes dead, and the dying writer's MarkDead auto-dumps a
// flight record that contains the shard's WAL append/sync spans.
TEST(TracePipelineTest, ArmedCrashProducesDumpWithWalSpans) {
  GlobalTraceGuard guard;
  const std::string path =
      ::testing::TempDir() + "streamq_armed_crash_dump.json";
  std::remove(path.c_str());
  Tracer::Global().SetCrashDumpPath(path);

  durability::MemStorage disk;
  durability::FaultyStorage faulty(
      &disk, durability::StorageFaultSpec::Perfect(), /*seed=*/5);
  // Crash just before the 6th fsync: by then several append+sync spans are
  // on record; afterwards every storage op fails, so the next append's
  // roll-and-retry fails twice and the writer goes dead.
  faulty.ArmCrashAtOp(durability::StorageOp::kSync, 6);

  ingest::IngestOptions options = TracePipelineOptions();
  options.durability.enabled = true;
  options.durability.storage = &faulty;
  options.durability.dir = "dur";
  options.durability.sync_interval = 64;
  options.durability.checkpoint_interval = 1u << 30;  // keep it WAL-only
  options.durability.segment_bytes = 1u << 20;
  auto pipeline = ingest::IngestPipeline::Create(options);
  ASSERT_NE(pipeline, nullptr);
  for (uint64_t v = 0; v < 3000; ++v) {
    pipeline->Push(Update{v % 512, +1});
  }
  pipeline->Flush();
  pipeline->Stop();

  EXPECT_TRUE(Tracer::Global().crash_dumped());
  const std::string dump = ReadWholeFile(path);
  ASSERT_FALSE(dump.empty());
  ExpectStructurallyValidJson(dump);
  EXPECT_NE(dump.find("\"crash_reason\": \"wal_dead\""), std::string::npos);
  EXPECT_NE(dump.find("\"wal_dead\""), std::string::npos);
  EXPECT_NE(dump.find("\"wal_append\""), std::string::npos);
  EXPECT_NE(dump.find("\"wal_sync\""), std::string::npos);
  std::remove(path.c_str());
}

#endif  // STREAMQ_DURABILITY_ENABLED

TEST(TracePipelineTest, ConcurrentExportWhileRecording) {
  // Exporting while the pipeline's producer + workers are recording: the
  // TSan verify config proves the rings race-free; every interim export
  // must stay structurally valid.
  GlobalTraceGuard guard;
  auto pipeline = ingest::IngestPipeline::Create(TracePipelineOptions());
  ASSERT_NE(pipeline, nullptr);
  std::atomic<bool> stop{false};
  std::thread exporter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = ExportChromeTrace(Tracer::Global());
      ExpectStructurallyValidJson(json);
    }
  });
  for (uint64_t v = 0; v < 20000; ++v) {
    pipeline->Push(Update{v % 4096, +1});
  }
  pipeline->Flush();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();
  pipeline->Stop();
}

#endif  // STREAMQ_TRACE_ENABLED

}  // namespace
}  // namespace streamq
