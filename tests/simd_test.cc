// Equivalence tests for the runtime-dispatched SIMD kernels (util/simd.h)
// and the radix sorts that feed the batched sample-based summaries
// (util/radix_sort.h).
//
// The contract under test is *bit-identity*: every vector flavour must
// produce exactly the scalar flavour's output on every input, including the
// boundary cases of the Mersenne-61 reduction (operands at and above p) and
// the narrow-operand fast path of the AVX-512 polynomial kernels (all lanes
// < 2^32). The vector flavours are guarded by the matching cpuid probe, so
// this file passes on hosts without AVX2/AVX-512 by exercising the scalar
// reference and the dispatcher's forced-scalar mode only.

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/radix_sort.h"
#include "util/random.h"
#include "util/simd.h"

namespace streamq {
namespace {

constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

// Restores the dispatcher to hardware-selected flavours when a test that
// forces the scalar path exits (on success or failure).
class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) { simd::SetForceScalar(force); }
  ~ForceScalarGuard() { simd::SetForceScalar(false); }
};

// Input sizes straddling the vector widths: empty, sub-vector, exactly one
// AVX2 vector (4 lanes), one AVX-512 vector (8 lanes), both plus remainders,
// and a size large enough to hit the main loops many times.
const size_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 257, 1000};

// Operand mixes for the polynomial kernels. The AVX-512 flavours take a
// cheaper product path when every lane of a vector is < 2^32, so inputs
// must cover all-narrow, all-wide, and interleaved vectors.
enum class Mix { kNarrow, kWide, kInterleaved, kBoundary };

std::vector<uint64_t> MakeInputs(size_t n, Mix mix, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> x(n);
  const uint64_t kBoundaries[] = {0,
                                  1,
                                  (uint64_t{1} << 32) - 1,
                                  uint64_t{1} << 32,
                                  kMersenne61 - 1,
                                  kMersenne61,
                                  kMersenne61 + 1,
                                  std::numeric_limits<uint64_t>::max()};
  for (size_t i = 0; i < n; ++i) {
    switch (mix) {
      case Mix::kNarrow:
        x[i] = rng.Next() >> 32;
        break;
      case Mix::kWide:
        x[i] = rng.Next() | (uint64_t{1} << 32);
        break;
      case Mix::kInterleaved:
        x[i] = (i & 1) ? rng.Next() : (rng.Next() >> 32);
        break;
      case Mix::kBoundary:
        x[i] = kBoundaries[rng.Below(std::size(kBoundaries))];
        break;
    }
  }
  return x;
}

template <size_t K>
std::array<uint64_t, K> MakeCoeffs(uint64_t seed) {
  Xoshiro256 rng(seed);
  std::array<uint64_t, K> c;
  for (auto& v : c) v = rng.Below(kMersenne61);
  // A leading coefficient of zero degrades the hash family, not the kernel
  // arithmetic, so zero is a legal and worthwhile test input; force it in
  // one configuration via the seed convention below.
  if (seed == 0) c[K - 1] = 0;
  return c;
}

// --- PolyEvalBatch ------------------------------------------------------

using PolyFn = void (*)(const uint64_t*, const uint64_t*, uint64_t*, size_t);

void ExpectPolyFlavourMatchesScalar(PolyFn flavour, PolyFn scalar,
                                    const char* label) {
  for (uint64_t seed : {uint64_t{0}, uint64_t{11}, uint64_t{12345}}) {
    const auto c2 = MakeCoeffs<2>(seed);
    const auto c4 = MakeCoeffs<4>(seed);
    (void)c4;
    for (size_t n : kSizes) {
      for (Mix mix :
           {Mix::kNarrow, Mix::kWide, Mix::kInterleaved, Mix::kBoundary}) {
        const auto x = MakeInputs(n, mix, seed * 1000 + n);
        std::vector<uint64_t> got(n, 0xDEAD), want(n, 0xBEEF);
        flavour(c2.data(), x.data(), got.data(), n);
        scalar(c2.data(), x.data(), want.data(), n);
        ASSERT_EQ(got, want) << label << " n=" << n << " seed=" << seed
                             << " mix=" << static_cast<int>(mix);
      }
    }
  }
}

void ExpectPoly4FlavourMatchesScalar(PolyFn flavour, const char* label) {
  for (uint64_t seed : {uint64_t{0}, uint64_t{7}, uint64_t{424242}}) {
    const auto c4 = MakeCoeffs<4>(seed);
    for (size_t n : kSizes) {
      for (Mix mix :
           {Mix::kNarrow, Mix::kWide, Mix::kInterleaved, Mix::kBoundary}) {
        const auto x = MakeInputs(n, mix, seed * 1000 + n + 1);
        std::vector<uint64_t> got(n, 0xDEAD), want(n, 0xBEEF);
        flavour(c4.data(), x.data(), got.data(), n);
        simd::PolyEvalBatch4Scalar(c4.data(), x.data(), want.data(), n);
        ASSERT_EQ(got, want) << label << " n=" << n << " seed=" << seed
                             << " mix=" << static_cast<int>(mix);
      }
    }
  }
}

TEST(SimdPolyTest, ScalarMatchesPerElementPolyHash) {
  // The scalar batch kernels are the reference for every vector flavour;
  // anchor them to the original per-element PolyHash evaluation.
  PolyHash<2> h2(99);
  PolyHash<4> h4(99);
  const auto x = MakeInputs(513, Mix::kInterleaved, 5);
  std::vector<uint64_t> out2(x.size()), out4(x.size());
  h2.EvalBatch(x.data(), out2.data(), x.size());
  h4.EvalBatch(x.data(), out4.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(out2[i], h2(x[i])) << i;
    ASSERT_EQ(out4[i], h4(x[i])) << i;
  }
}

TEST(SimdPolyTest, DispatcherMatchesScalar) {
  ExpectPolyFlavourMatchesScalar(&simd::PolyEvalBatch2,
                                 &simd::PolyEvalBatch2Scalar, "dispatch2");
  ExpectPoly4FlavourMatchesScalar(&simd::PolyEvalBatch4, "dispatch4");
}

TEST(SimdPolyTest, ForcedScalarDispatchMatchesScalar) {
  ForceScalarGuard guard(true);
  EXPECT_FALSE(simd::Avx2Active());
  EXPECT_FALSE(simd::Avx512Active());
  ExpectPolyFlavourMatchesScalar(&simd::PolyEvalBatch2,
                                 &simd::PolyEvalBatch2Scalar, "forced2");
  ExpectPoly4FlavourMatchesScalar(&simd::PolyEvalBatch4, "forced4");
}

#if defined(__x86_64__)
TEST(SimdPolyTest, Avx2MatchesScalar) {
  if (!simd::CpuHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  ExpectPolyFlavourMatchesScalar(&simd::PolyEvalBatch2Avx2,
                                 &simd::PolyEvalBatch2Scalar, "avx2/2");
  ExpectPoly4FlavourMatchesScalar(&simd::PolyEvalBatch4Avx2, "avx2/4");
}

TEST(SimdPolyTest, Avx512MatchesScalar) {
  if (!simd::CpuHasAvx512()) GTEST_SKIP() << "host lacks AVX-512";
  ExpectPolyFlavourMatchesScalar(&simd::PolyEvalBatch2Avx512,
                                 &simd::PolyEvalBatch2Scalar, "avx512/2");
  ExpectPoly4FlavourMatchesScalar(&simd::PolyEvalBatch4Avx512, "avx512/4");
}
#endif

// --- SliceBucketSign ----------------------------------------------------

uint64_t SliceReference(uint64_t h, unsigned shift, unsigned lg_width) {
  const uint64_t mask = (uint64_t{1} << lg_width) - 1;
  const uint64_t bucket = (h >> shift) & mask;
  const uint64_t sign_bit = (~(h >> (shift + lg_width))) & 1;
  return bucket | (sign_bit << 63);
}

using SliceFn = void (*)(const uint64_t*, uint64_t*, size_t, unsigned,
                         unsigned);

void ExpectSliceFlavourCorrect(SliceFn flavour, const char* label) {
  // (shift, lg_width) pairs covering low windows, high windows, and the
  // maximal case shift + lg_width + 1 == 64.
  const std::pair<unsigned, unsigned> kWindows[] = {
      {0, 1}, {0, 14}, {7, 7}, {16, 10}, {33, 14}, {49, 14}, {62, 1}};
  for (auto [shift, lg_width] : kWindows) {
    ASSERT_LE(shift + lg_width + 1, 64u);
    for (size_t n : kSizes) {
      const auto h = MakeInputs(n, Mix::kInterleaved, shift * 100 + n);
      std::vector<uint64_t> got(n, 0xDEAD);
      flavour(h.data(), got.data(), n, shift, lg_width);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], SliceReference(h[i], shift, lg_width))
            << label << " n=" << n << " shift=" << shift
            << " lg_width=" << lg_width << " i=" << i;
      }
    }
  }
}

TEST(SimdSliceTest, ScalarMatchesPackingContract) {
  ExpectSliceFlavourCorrect(&simd::SliceBucketSignScalar, "scalar");
}

TEST(SimdSliceTest, DispatcherMatchesContract) {
  ExpectSliceFlavourCorrect(&simd::SliceBucketSign, "dispatch");
  ForceScalarGuard guard(true);
  ExpectSliceFlavourCorrect(&simd::SliceBucketSign, "forced");
}

TEST(SimdSliceTest, SignRecoveryRoundTrips) {
  // The scatter loop consuming the packed words recovers the signed delta
  // as (delta ^ s) - s with s = int64(word) >> 63; check both signs.
  const uint64_t h_pos = uint64_t{1} << 20;  // window top bit set -> +1
  const uint64_t h_neg = 0;                  // window top bit clear -> -1
  uint64_t out[2];
  simd::SliceBucketSignScalar(&h_pos, &out[0], 1, 6, 14);
  simd::SliceBucketSignScalar(&h_neg, &out[1], 1, 6, 14);
  const int64_t s_pos = static_cast<int64_t>(out[0]) >> 63;
  const int64_t s_neg = static_cast<int64_t>(out[1]) >> 63;
  EXPECT_EQ((int64_t{1} ^ s_pos) - s_pos, 1);
  EXPECT_EQ((int64_t{1} ^ s_neg) - s_neg, -1);
}

#if defined(__x86_64__)
TEST(SimdSliceTest, Avx2MatchesContract) {
  if (!simd::CpuHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  ExpectSliceFlavourCorrect(&simd::SliceBucketSignAvx2, "avx2");
}

TEST(SimdSliceTest, Avx512MatchesContract) {
  if (!simd::CpuHasAvx512()) GTEST_SKIP() << "host lacks AVX-512";
  ExpectSliceFlavourCorrect(&simd::SliceBucketSignAvx512, "avx512");
}
#endif

// --- DecimateStride -----------------------------------------------------

using DecimateFn = size_t (*)(const uint64_t*, size_t, size_t, size_t,
                              uint64_t*, size_t);

void ExpectDecimateFlavourCorrect(DecimateFn flavour, const char* label) {
  for (size_t n : kSizes) {
    const auto in = MakeInputs(n, Mix::kInterleaved, n + 77);
    for (size_t stride : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                          size_t{16}, n + 1}) {
      if (stride == 0) continue;
      for (size_t offset : {size_t{0}, size_t{1}, stride - 1, n}) {
        for (size_t max_out :
             {size_t{0}, size_t{1}, size_t{5}, std::numeric_limits<size_t>::max()}) {
          // Scalar reference computed longhand.
          std::vector<uint64_t> want;
          for (size_t i = offset; i < n && want.size() < max_out; i += stride) {
            want.push_back(in[i]);
          }
          std::vector<uint64_t> got(want.size() + 8, 0xDEAD);
          const size_t count =
              flavour(in.data(), n, offset, stride, got.data(), max_out);
          ASSERT_EQ(count, want.size())
              << label << " n=" << n << " offset=" << offset
              << " stride=" << stride << " max_out=" << max_out;
          got.resize(count);
          ASSERT_EQ(got, want)
              << label << " n=" << n << " offset=" << offset
              << " stride=" << stride << " max_out=" << max_out;
        }
      }
    }
  }
}

TEST(SimdDecimateTest, ScalarMatchesLonghand) {
  ExpectDecimateFlavourCorrect(&simd::DecimateStrideScalar, "scalar");
}

TEST(SimdDecimateTest, DispatcherMatchesLonghand) {
  ExpectDecimateFlavourCorrect(&simd::DecimateStride, "dispatch");
  ForceScalarGuard guard(true);
  ExpectDecimateFlavourCorrect(&simd::DecimateStride, "forced");
}

#if defined(__x86_64__)
TEST(SimdDecimateTest, Avx2MatchesLonghand) {
  if (!simd::CpuHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  ExpectDecimateFlavourCorrect(&simd::DecimateStrideAvx2, "avx2");
}
#endif

// --- Dispatcher state ---------------------------------------------------

TEST(SimdDispatchTest, ForceScalarTogglesActiveFlags) {
  ASSERT_EQ(simd::Avx2Active(), simd::CpuHasAvx2());
  ASSERT_EQ(simd::Avx512Active(), simd::CpuHasAvx512());
  simd::SetForceScalar(true);
  EXPECT_FALSE(simd::Avx2Active());
  EXPECT_FALSE(simd::Avx512Active());
  simd::SetForceScalar(false);
  EXPECT_EQ(simd::Avx2Active(), simd::CpuHasAvx2());
  EXPECT_EQ(simd::Avx512Active(), simd::CpuHasAvx512());
}

// --- Radix sorts --------------------------------------------------------

std::vector<uint64_t> MakeSortInput(size_t n, int pattern, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case 0:  // full 64-bit: all eight digit positions active
        v[i] = rng.Next();
        break;
      case 1:  // 29-bit universe as in the benchmark gates: 4 active digits
        v[i] = rng.Next() >> 35;
        break;
      case 2:  // all equal: zero active digits (early-out path)
        v[i] = 0x0123456789ABCDEFULL;
        break;
      case 3:  // few distinct values: heavy duplicate buckets
        v[i] = rng.Below(5) * 0x1000001ULL;
        break;
      case 4:  // already sorted
        v[i] = i * 3;
        break;
      default:  // reverse sorted
        v[i] = (n - i) * 7;
        break;
    }
  }
  return v;
}

TEST(RadixSortTest, MatchesStdSort) {
  // Covers both the std::sort fallback (n < 64) and the radix path, and the
  // buffer sizes the sample-based summaries actually sort (265, 350).
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{63}, size_t{64},
                   size_t{65}, size_t{265}, size_t{350}, size_t{4096}}) {
    for (int pattern = 0; pattern < 6; ++pattern) {
      auto data = MakeSortInput(n, pattern, n * 10 + pattern);
      auto want = data;
      std::vector<uint64_t> scratch(n);
      RadixSortU64(data.data(), n, scratch.data());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(data, want) << "n=" << n << " pattern=" << pattern;
    }
  }
}

TEST(RadixSortTest, ByKeyMatchesStableSortAndIsStable) {
  struct Elem {
    uint64_t key;
    uint32_t tag;  // original position, to observe stability
    bool operator==(const Elem&) const = default;
  };
  const auto key_fn = [](const Elem& e) { return e.key; };
  for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                   size_t{350}, size_t{2800}}) {
    for (int pattern : {0, 1, 2, 3}) {
      const auto keys = MakeSortInput(n, pattern, n * 31 + pattern);
      std::vector<Elem> data(n);
      for (size_t i = 0; i < n; ++i) {
        data[i] = {keys[i], static_cast<uint32_t>(i)};
      }
      auto want = data;
      std::vector<Elem> scratch(n);
      RadixSortByKeyU64(data.data(), n, scratch.data(), key_fn);
      std::stable_sort(want.begin(), want.end(),
                       [&](const Elem& a, const Elem& b) {
                         return key_fn(a) < key_fn(b);
                       });
      // Stable sorts of the same input agree element-for-element, tags
      // included -- this checks both key order and stability at once.
      ASSERT_EQ(data, want) << "n=" << n << " pattern=" << pattern;
    }
  }
}

// --- BelowPow2 bit-identity ---------------------------------------------

TEST(RandomTest, BelowPow2MatchesBelowIncludingStreamPosition) {
  // The batched sampling fast paths replaced Below(1 << level) with
  // BelowPow2(level); serialized-state identity of the sketches depends on
  // the two consuming the same draws AND returning the same values.
  for (unsigned lg : {0u, 1u, 3u, 7u, 31u, 63u}) {
    Xoshiro256 a(555), b(555);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(a.BelowPow2(lg), b.Below(uint64_t{1} << lg))
          << "lg=" << lg << " i=" << i;
    }
    // Same stream position afterwards: the next raw draws agree.
    EXPECT_EQ(a.Next(), b.Next()) << "lg=" << lg;
  }
}

}  // namespace
}  // namespace streamq
