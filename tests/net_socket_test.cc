// Network tier over real TCP: reactor round-trips on both backends
// (epoll and the portable poll fallback), 16 concurrent pipelined clients
// with corrupt frames interleaved among them, and the acceptance-criteria
// fault test: a server kill (simulated power loss via FaultyStorage) must
// lose nothing an acked FLUSH covered, across WAL recovery on restart.

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "durability/faulty_storage.h"
#include "durability/storage.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/reactor.h"
#include "net/server.h"
#include "net/socket.h"

namespace streamq::net {
namespace {

using namespace std::chrono_literals;

/// Server + reactor on a background thread, bound to an ephemeral port.
class TcpFixture {
 public:
  explicit TcpFixture(ServerOptions server_options = {},
                      bool force_poll = false) {
    server_ = std::make_unique<StreamqServer>(std::move(server_options));
    ReactorOptions options;
    options.force_poll = force_poll;
    reactor_ = Reactor::Create(server_.get(), options);
    if (reactor_ == nullptr) return;
    thread_ = std::thread([this] { reactor_->Run(); });
  }

  ~TcpFixture() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      reactor_->Shutdown();
      thread_.join();
    }
  }

  bool ok() const { return reactor_ != nullptr; }
  uint16_t port() const { return reactor_->port(); }
  StreamqServer& server() { return *server_; }
  Reactor& reactor() { return *reactor_; }

  std::unique_ptr<StreamqClient> Connect() {
    ClientOptions options;
    options.io_timeout_ms = 20000;
    return StreamqClient::ConnectTcp("127.0.0.1", port(), options);
  }

 private:
  std::unique_ptr<StreamqServer> server_;
  std::unique_ptr<Reactor> reactor_;
  std::thread thread_;
};

void RoundTrip(TcpFixture& fixture) {
  ASSERT_TRUE(fixture.ok());
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);

  CreateParams params;
  params.algorithm = "Random";
  ASSERT_TRUE(client->Create("rt", params).ok());

  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 2000; ++v) values.push_back(v);
  NetResponse resp = client->InsertBatch("rt", values);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.value, 2000u);

  ASSERT_TRUE(client->Flush("rt").ok());
  resp = client->Query("rt", 0.5);
  ASSERT_TRUE(resp.ok());
  EXPECT_NEAR(static_cast<double>(resp.value), 1000.0, 120.0);

  resp = client->Stats("rt");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.stats.pushed, 2000u);
  ASSERT_TRUE(client->Drop("rt").ok());
}

TEST(NetSocket, ReactorRoundTripEpoll) {
  TcpFixture fixture;
#ifdef __linux__
  EXPECT_TRUE(fixture.reactor().using_epoll());
#endif
  RoundTrip(fixture);
}

TEST(NetSocket, ReactorRoundTripPollFallback) {
  TcpFixture fixture(ServerOptions{}, /*force_poll=*/true);
  EXPECT_FALSE(fixture.reactor().using_epoll());
  RoundTrip(fixture);
}

TEST(NetSocket, HttpScrapeOverTcp) {
  TcpFixture fixture;
  ASSERT_TRUE(fixture.ok());
  {
    auto client = fixture.Connect();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Create("h", CreateParams{}).ok());
    ASSERT_TRUE(client->Insert("h", 42).ok());
  }
  const int fd = TcpConnect("127.0.0.1", fixture.port(), 5000);
  ASSERT_GE(fd, 0);
  SocketConn conn(fd);
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < get.size()) {
    const int n = conn.Write(get.data() + off, get.size() - off);
    ASSERT_GE(n, 0);
    if (n == 0) {
      ASSERT_TRUE(conn.WaitWritable(2000));
      continue;
    }
    off += static_cast<size_t>(n);
  }
  std::string body;
  char buf[8192];
  const auto until = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    ASSERT_LT(std::chrono::steady_clock::now(), until) << "scrape timeout";
    if (!conn.WaitReadable(100)) continue;
    const int n = conn.Read(buf, sizeof(buf));
    if (n < 0) break;
    if (n > 0) body.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(body.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(body.find("streamq_net_requests_INSERT_total"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The pipelined-client fault test of the acceptance criteria: 16
// concurrent connections, a quarter of them hostile (corrupt frames
// interleaved with valid ones); every well-formed client's pipeline must
// complete, in order, while the server survives the hostiles.
// ---------------------------------------------------------------------------

TEST(NetSocket, SixteenConcurrentClientsWithCorruptFramesInterleaved) {
  constexpr int kClients = 16;
  constexpr int kBatchesPerClient = 20;
  constexpr size_t kBatchSize = 512;

  TcpFixture fixture;
  ASSERT_TRUE(fixture.ok());
  {
    auto setup = fixture.Connect();
    ASSERT_NE(setup, nullptr);
    ASSERT_TRUE(setup->Create("shared", CreateParams{}).ok());
  }

  std::atomic<int> good_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, &fixture, &good_failures] {
      const bool hostile = (c % 4) == 3;
      if (hostile) {
        // Interleave valid inserts with corrupted copies of the same
        // frame on one connection, plus raw garbage on another.
        const int fd = TcpConnect("127.0.0.1", fixture.port(), 5000);
        if (fd < 0) {
          ++good_failures;
          return;
        }
        SocketConn conn(fd);
        NetRequest req;
        req.op = NetOp::kInsert;
        req.stream = "shared";
        for (int i = 0; i < 200; ++i) {
          req.id = static_cast<uint64_t>(i + 1);
          req.value = static_cast<uint64_t>(i);
          std::string frame = EncodeRequest(req);
          if (i % 2 == 1) {
            frame[i % frame.size()] ^= 0x41;  // corrupt every other frame
          }
          size_t off = 0;
          while (off < frame.size()) {
            const int n = conn.Write(frame.data() + off, frame.size() - off);
            if (n < 0) return;  // server closed us: expected for hostiles
            if (n == 0) {
              if (!conn.WaitWritable(1000)) return;
              continue;
            }
            off += static_cast<size_t>(n);
          }
          // Drain whatever came back so the server's write queue moves.
          char buf[4096];
          const int r = conn.Read(buf, sizeof(buf));
          if (r < 0) return;
        }
        return;
      }
      // Well-formed pipelined client: its stream of batches must all be
      // accepted and answered in send order.
      auto client = fixture.Connect();
      if (client == nullptr) {
        ++good_failures;
        return;
      }
      std::vector<uint64_t> ids;
      for (int b = 0; b < kBatchesPerClient; ++b) {
        NetRequest req;
        req.op = NetOp::kBatchInsert;
        req.stream = "shared";
        req.values.resize(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          req.values[i] = static_cast<uint64_t>(c) * 1000003 + i;
        }
        const uint64_t id = client->Send(std::move(req));
        if (id == 0) {
          ++good_failures;
          return;
        }
        ids.push_back(id);
      }
      std::vector<NetResponse> responses;
      if (!client->DrainAll(&responses) || responses.size() != ids.size()) {
        ++good_failures;
        return;
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        if (responses[i].id != ids[i] || !responses[i].ok() ||
            responses[i].value != kBatchSize) {
          ++good_failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(good_failures.load(), 0);

  // The server is alive and the stream holds every well-formed batch plus
  // however many valid interleaved inserts landed before each hostile's
  // connection was cut.
  auto client = fixture.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Flush("shared").ok());
  NetResponse stats = client->Stats("shared");
  ASSERT_TRUE(stats.ok());
  constexpr uint64_t kGoodClients = kClients - kClients / 4;
  EXPECT_GE(stats.stats.pushed,
            kGoodClients * kBatchesPerClient * kBatchSize);
  EXPECT_EQ(stats.stats.processed, stats.stats.pushed);
}

// ---------------------------------------------------------------------------
// Kill + recovery: zero acked-FLUSH loss (acceptance criteria)
// ---------------------------------------------------------------------------

#if STREAMQ_DURABILITY_ENABLED
TEST(NetSocket, ServerKillLosesNothingAckedByFlush) {
  durability::MemStorage disk;  // the state that survives "power loss"
  uint64_t acked_mark = 0;
  constexpr uint64_t kAckedValues = 4096;
  constexpr uint64_t kUnackedValues = 1500;

  {
    // Incarnation 1, on fault-injectable storage.
    durability::FaultyStorage faulty(
        &disk, durability::StorageFaultSpec::Perfect(), /*seed=*/4242);
    ServerOptions options;
    options.storage = &faulty;
    options.data_dir = "killtest";
    options.wal_sync_interval = 256;
    TcpFixture fixture(std::move(options));
    ASSERT_TRUE(fixture.ok());
    auto client = fixture.Connect();
    ASSERT_NE(client, nullptr);

    CreateParams params;
    params.durable = true;
    ASSERT_TRUE(client->Create("wal", params).ok());

    std::vector<uint64_t> values;
    for (uint64_t v = 1; v <= kAckedValues; ++v) values.push_back(v);
    ASSERT_TRUE(client->InsertBatch("wal", values).ok());

    NetResponse flush = client->Flush("wal");
    ASSERT_TRUE(flush.ok()) << flush.message;
    acked_mark = flush.value;
    EXPECT_EQ(acked_mark, kAckedValues);

    // More updates the client never flushed: the crash may or may not
    // keep them, no promise was made.
    std::vector<uint64_t> unacked;
    for (uint64_t v = 0; v < kUnackedValues; ++v) {
      unacked.push_back(uint64_t{1} << 30);
    }
    ASSERT_TRUE(client->InsertBatch("wal", unacked).ok());

    // Power loss: unsynced tails are mangled and every later storage
    // operation fails -- including the server's shutdown checkpoint, so
    // the teardown below really is a kill, not a graceful stop.
    faulty.CrashNow();
    client->CloseConn();
    fixture.Stop();
  }

  {
    // Incarnation 2: a fresh storage epoch over the same surviving bytes.
    durability::FaultyStorage faulty(
        &disk, durability::StorageFaultSpec::Perfect(), /*seed=*/4243);
    ServerOptions options;
    options.storage = &faulty;
    options.data_dir = "killtest";
    options.wal_sync_interval = 256;
    TcpFixture fixture(std::move(options));
    ASSERT_TRUE(fixture.ok());
    auto client = fixture.Connect();
    ASSERT_NE(client, nullptr);

    // CREATE of the same durable stream recovers checkpoint + WAL tail.
    CreateParams params;
    params.durable = true;
    NetResponse created = client->Create("wal", params);
    ASSERT_TRUE(created.ok()) << created.message;
    EXPECT_TRUE(created.stats.recovered);

    // Zero acked loss: everything at or below the acked FLUSH mark
    // survived. (resume_seq tells the producer where to re-push from; it
    // may trail the mark by at most shards - 1.)
    NetResponse stats = client->Stats("wal");
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats.stats.count, acked_mark);
    EXPECT_LE(stats.stats.count, kAckedValues + kUnackedValues);

    // The recovered summary really contains the acked values 1..4096, not
    // just a count: the rank of a value above them must cover them all.
    NetResponse rank = client->Rank("wal", (uint64_t{1} << 30) - 1);
    ASSERT_TRUE(rank.ok());
    const double eps_slack =
        0.001 * static_cast<double>(kAckedValues + kUnackedValues) + 64.0;
    EXPECT_GE(static_cast<double>(rank.rank),
              static_cast<double>(kAckedValues) - eps_slack);

    // And the recovered stream keeps serving writes.
    ASSERT_TRUE(client->Insert("wal", 7).ok());
    ASSERT_TRUE(client->Flush("wal").ok());
  }
}
#endif  // STREAMQ_DURABILITY_ENABLED

}  // namespace
}  // namespace streamq::net
