// Tests for the biased-quantiles extension (relative rank error).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "exact/exact_oracle.h"
#include "quantile/biased_quantiles.h"
#include "quantile/cash_register.h"
#include "stream/generators.h"

namespace streamq {
namespace {

std::vector<uint64_t> Workload(uint64_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.n = n;
  spec.log_universe = 24;
  spec.distribution = Distribution::kLogUniform;  // interesting tails
  spec.seed = seed;
  return GenerateDataset(spec);
}

class BiasedSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BiasedSweepTest, RelativeErrorAtLowTail) {
  const double eps = GetParam();
  const uint64_t n = 200'000;
  const auto data = Workload(n, 3);
  const ExactOracle oracle(data);
  BiasedQuantiles sketch(eps, Bias::kLow);
  for (uint64_t v : data) sketch.Insert(v);

  for (double phi : {0.0005, 0.001, 0.01, 0.05, 0.25, 0.5}) {
    const uint64_t q = sketch.Query(phi);
    const double err = oracle.QuantileError(q, phi);
    // Relative guarantee: error <= eps * phi (plus one-element slack).
    EXPECT_LE(err, eps * phi + 2.0 / n) << "phi=" << phi;
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, BiasedSweepTest, ::testing::Values(0.1, 0.05),
                         [](const auto& info) {
                           return "eps" + std::to_string(static_cast<int>(
                                              1.0 / info.param));
                         });

TEST(BiasedQuantilesTest, HighBiasMirrorsLowBias) {
  const double eps = 0.05;
  const uint64_t n = 150'000;
  const auto data = Workload(n, 7);
  const ExactOracle oracle(data);
  BiasedQuantiles sketch(eps, Bias::kHigh);
  for (uint64_t v : data) sketch.Insert(v);
  for (double phi : {0.5, 0.9, 0.99, 0.999}) {
    const double err = oracle.QuantileError(sketch.Query(phi), phi);
    EXPECT_LE(err, eps * (1.0 - phi) + 2.0 / n) << "phi=" << phi;
  }
}

TEST(BiasedQuantilesTest, SharperTailsThanUniformGkAtComparableSpace) {
  // The motivating comparison: at the far tail, the biased summary answers
  // with far smaller error than a uniform-guarantee summary of similar
  // size.
  const uint64_t n = 300'000;
  const auto data = Workload(n, 11);
  const ExactOracle oracle(data);

  BiasedQuantiles biased(0.05, Bias::kLow);
  GkArray uniform(0.05);
  for (uint64_t v : data) {
    biased.Insert(v);
    uniform.Insert(v);
  }
  double biased_tail = 0, uniform_tail = 0;
  for (double phi : {0.0002, 0.0005, 0.001}) {
    biased_tail += oracle.QuantileError(biased.Query(phi), phi);
    uniform_tail += oracle.QuantileError(uniform.Query(phi), phi);
  }
  EXPECT_LT(biased_tail * 3, uniform_tail + 1e-9);
  // And the biased structure stays sublinear.
  EXPECT_LT(biased.impl().TupleCount(), n / 20);
}

TEST(BiasedQuantilesTest, SpaceGrowsModeratelyWithLogN) {
  BiasedQuantiles sketch(0.05, Bias::kLow);
  const auto data = Workload(400'000, 13);
  for (uint64_t v : data) sketch.Insert(v);
  // O((1/eps) log(eps n) log u)-ish: generous bound far below linear.
  EXPECT_LT(sketch.impl().TupleCount(), 20'000u);
}

TEST(BiasedQuantilesTest, CountAndEmpty) {
  BiasedQuantiles sketch(0.1);
  EXPECT_EQ(sketch.Query(0.5), 0u);
  sketch.Insert(42);
  EXPECT_EQ(sketch.Count(), 1u);
  EXPECT_EQ(sketch.Query(0.5), 42u);
}

}  // namespace
}  // namespace streamq
