// Continuous distributed monitoring: 8 CDN edge sites observe request
// latencies; a central coordinator answers global latency quantiles at any
// moment while the sites ship only compact summary snapshots (never raw
// events). Reproduces the setting of the paper's related work on holistic
// aggregates in a networked world (Cormode et al., SIGMOD'05).
//
// This is the *monitoring* tier: sites observe into lightweight local
// summaries and the coordinator's view is approximate. For the cluster
// *data path* -- full durable pipelines per node, mergeable shipments
// with exact-count bounds, node failover -- see cluster_ingest.cpp.

#include <cmath>
#include <cstdio>

#include "distributed/monitor.h"
#include "util/random.h"

int main() {
  using namespace streamq;

  constexpr int kSites = 8;
  DistributedQuantileMonitor monitor(kSites, /*eps=*/0.04);
  Xoshiro256 rng(17);

  // Each site has its own base latency (geography) and traffic share.
  double base_us[kSites];
  for (int s = 0; s < kSites; ++s) base_us[s] = 3'000 + 2'500 * s;

  constexpr uint64_t kEvents = 8'000'000;
  for (uint64_t t = 0; t < kEvents; ++t) {
    const int site = static_cast<int>(rng.Below(kSites));
    const double latency =
        base_us[site] * std::exp(0.4 * rng.NextGaussian());
    monitor.Observe(site, static_cast<uint64_t>(latency));

    if ((t + 1) % 1'600'000 == 0) {
      std::printf(
          "after %7llu events: p50=%6lluus p95=%6lluus p99=%6lluus | "
          "comm %6.1f KB (%zu shipments) vs raw %6.1f KB\n",
          static_cast<unsigned long long>(t + 1),
          static_cast<unsigned long long>(monitor.Query(0.50)),
          static_cast<unsigned long long>(monitor.Query(0.95)),
          static_cast<unsigned long long>(monitor.Query(0.99)),
          monitor.CommunicationBytes() / 1024.0, monitor.ShipmentCount(),
          (t + 1) * 4 / 1024.0);
    }
  }
  std::printf(
      "\ncoordinator state: %.1f KB across %d sites; every answer is within "
      "4%% rank error of the true union quantile.\n",
      monitor.CoordinatorMemoryBytes() / 1024.0, monitor.num_sites());
  return 0;
}
