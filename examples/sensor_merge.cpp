// Sensor-network aggregation, the q-digest's original use case (Shrivastava
// et al., SenSys'04): each sensor summarises its own readings locally; the
// summaries are merged up a routing tree, and the root answers quantile
// queries over the union -- without any node ever seeing the raw data of
// the others. q-digest is the only deterministic mergeable quantile summary.

#include <cstdio>
#include <memory>
#include <vector>

#include "exact/exact_oracle.h"
#include "quantile/fast_qdigest.h"
#include "stream/generators.h"

int main() {
  using namespace streamq;

  constexpr int kSensors = 16;
  constexpr double kEps = 0.01;
  constexpr int kLogU = 16;  // 16-bit temperature readings

  // Each sensor sees a different micro-climate (its own normal distribution)
  // and builds a local digest.
  std::vector<std::unique_ptr<FastQDigest>> digests;
  std::vector<uint64_t> all_readings;
  for (int s = 0; s < kSensors; ++s) {
    DatasetSpec spec;
    spec.distribution = Distribution::kNormal;
    spec.sigma = 0.02 + 0.01 * (s % 4);
    spec.log_universe = kLogU;
    spec.n = 50'000;
    spec.seed = 1000 + s;
    auto readings = GenerateDataset(spec);
    // Micro-climate offset, clamped to the universe.
    for (auto& r : readings) {
      r = std::min<uint64_t>((1 << kLogU) - 1, r / 2 + s * 1024);
    }
    auto digest = std::make_unique<FastQDigest>(kEps, kLogU);
    for (uint64_t r : readings) digest->Insert(r);
    all_readings.insert(all_readings.end(), readings.begin(), readings.end());
    digests.push_back(std::move(digest));
    std::printf("sensor %2d: %6llu readings -> %5.1f KB digest\n", s,
                static_cast<unsigned long long>(digests.back()->Count()),
                digests.back()->MemoryBytes() / 1024.0);
  }

  // Merge pairwise up a binary routing tree (any merge order works).
  int level = 0;
  while (digests.size() > 1) {
    std::vector<std::unique_ptr<FastQDigest>> next;
    for (size_t i = 0; i + 1 < digests.size(); i += 2) {
      digests[i]->Merge(*digests[i + 1]);
      next.push_back(std::move(digests[i]));
    }
    if (digests.size() % 2 == 1) next.push_back(std::move(digests.back()));
    digests = std::move(next);
    std::printf("merge level %d: %zu digests remain\n", ++level,
                digests.size());
  }

  FastQDigest& root = *digests[0];
  const ExactOracle oracle(all_readings);
  std::printf("\nroot digest: %llu readings in %.1f KB\n\n",
              static_cast<unsigned long long>(root.Count()),
              root.MemoryBytes() / 1024.0);
  std::printf("%8s %10s %10s %10s\n", "phi", "merged", "exact", "err");
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const uint64_t est = root.Query(phi);
    std::printf("%8.2f %10llu %10llu %9.4f%%\n", phi,
                static_cast<unsigned long long>(est),
                static_cast<unsigned long long>(oracle.Quantile(phi)),
                100.0 * oracle.QuantileError(est, phi));
  }
  return 0;
}
