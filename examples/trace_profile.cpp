// trace_profile: capture a flight-recorder trace of a durable ingest run.
//
// Runs the sharded pipeline (WAL + checkpoints on in-memory storage) with
// tracing enabled, then writes both exports:
//
//   * a Chrome trace-event JSON timeline (open in chrome://tracing or
//     https://ui.perfetto.dev) of pushes, worker batches, sketch updates,
//     compactions, WAL appends/syncs/rolls, checkpoints, and view flips;
//   * a Prometheus text-format dump of the pipeline's MetricsRegistry,
//     including ValueAtQuantile-backed summary lines.
//
// With --crash N, a storage fault is armed at the Nth fsync: every storage
// operation after it fails, the shard's WAL writer goes dead, and the
// flight recorder auto-dumps to --out-trace with crash_reason "wal_dead" —
// the same path a production stall/dead-writer freeze takes. The normal
// (no --crash) mode dumps explicitly at the end of the run.
//
// Usage:
//   trace_profile [--n UPDATES] [--shards S] [--ring-events E]
//                 [--out-trace FILE] [--out-prom FILE] [--crash N]
//
// Exit code 0 on success (including the deliberate --crash run, whose
// success criterion is "the auto-dump fired"), 1 on any failure.
//
// scripts/check_trace_json.py and scripts/check_prometheus_text.py drive
// this binary as their producer; keep flag names stable.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "durability/faulty_storage.h"
#include "durability/storage.h"
#include "ingest/ingest_pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "quantile/factory.h"
#include "stream/update.h"

namespace {

struct Args {
  uint64_t n = 200000;
  int shards = 2;
  size_t ring_events = 0;  // 0 = tracer default
  uint64_t crash_at_sync = 0;  // 0 = no crash
  std::string out_trace = "trace_profile.trace.json";
  std::string out_prom = "trace_profile.prom.txt";
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      args->n = std::strtoull(v, nullptr, 10);
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      args->shards = std::atoi(v);
    } else if (flag == "--ring-events") {
      const char* v = next();
      if (v == nullptr) return false;
      args->ring_events = std::strtoull(v, nullptr, 10);
    } else if (flag == "--crash") {
      const char* v = next();
      if (v == nullptr) return false;
      args->crash_at_sync = std::strtoull(v, nullptr, 10);
    } else if (flag == "--out-trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_trace = v;
    } else if (flag == "--out-prom") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_prom = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return args->n > 0 && args->shards > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamq;

  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--n UPDATES] [--shards S] [--ring-events E]\n"
                 "          [--out-trace FILE] [--out-prom FILE] [--crash N]\n",
                 argv[0]);
    return 1;
  }

#if !STREAMQ_TRACE_ENABLED
  std::fprintf(stderr,
               "trace_profile requires a -DSTREAMQ_TRACE=ON build; this one "
               "compiled the instrumentation out\n");
  return 1;
#else
  obs::Tracer& tracer = obs::Tracer::Global();
  if (args.ring_events > 0) tracer.SetRingEvents(args.ring_events);
  tracer.SetEnabled(true);
  // Arm the auto-dump before the pipeline exists so every failure mode —
  // recovery, dead writer, stall — lands a flight record at the same path.
  tracer.SetCrashDumpPath(args.out_trace);

  durability::MemStorage disk;
  durability::FaultyStorage faulty(
      &disk, durability::StorageFaultSpec::Perfect(), /*seed=*/1);
  if (args.crash_at_sync > 0) {
    faulty.ArmCrashAtOp(durability::StorageOp::kSync, args.crash_at_sync);
  }

  ingest::IngestOptions options;
  options.sketch.algorithm = Algorithm::kRandom;
  options.sketch.eps = 0.01;
  options.sketch.log_universe = 24;
  options.sketch.seed = 42;
  options.shards = args.shards;
  options.ring_capacity = 1 << 12;
  options.batch_size = 256;
  options.publish_interval = 1 << 14;
  options.durability.enabled = true;
  options.durability.storage = &faulty;
  options.durability.dir = "trace-profile-dur";
  options.durability.sync_interval = 1024;
  options.durability.checkpoint_interval = 1 << 16;
  options.durability.segment_bytes = 1 << 18;

  auto pipeline = ingest::IngestPipeline::Create(options);
  if (pipeline == nullptr) {
    std::fprintf(stderr, "pipeline creation failed\n");
    return 1;
  }

  // Zipf-flavoured value mix: repeated small values force compactions,
  // scattered large ones exercise the universe, so the captured trace has
  // visibly interesting sketch_compaction spans.
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (uint64_t i = 0; i < args.n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const uint64_t value =
        (i % 4 != 0) ? (x % 1024) : (x % (uint64_t{1} << 24));
    pipeline->Push(Update{value, +1});
  }
  pipeline->Flush();
  const double p50 = static_cast<double>(pipeline->Query(0.5));
  const double p99 = static_cast<double>(pipeline->Query(0.99));
  pipeline->Stop();

  if (args.crash_at_sync > 0) {
    // The run's whole point: the dying WAL writer must have auto-dumped.
    if (!tracer.crash_dumped()) {
      std::fprintf(stderr,
                   "--crash %llu armed but no flight-recorder dump fired\n",
                   static_cast<unsigned long long>(args.crash_at_sync));
      return 1;
    }
    std::printf("crash dump written to %s\n", args.out_trace.c_str());
  } else {
    if (!obs::WriteChromeTraceFile(tracer, args.out_trace)) {
      std::fprintf(stderr, "failed to write %s\n", args.out_trace.c_str());
      return 1;
    }
    std::printf("trace written to %s (%llu events recorded)\n",
                args.out_trace.c_str(),
                static_cast<unsigned long long>(tracer.TotalRecorded()));
  }

  obs::MetricsRegistry registry;
  pipeline->PublishMetrics(registry, "pipeline");
  if (!obs::WritePrometheusTextFile(registry, args.out_prom)) {
    std::fprintf(stderr, "failed to write %s\n", args.out_prom.c_str());
    return 1;
  }
  std::printf("metrics written to %s\n", args.out_prom.c_str());
  std::printf("p50=%.0f p99=%.0f durable_seq=%llu\n", p50, p99,
              static_cast<unsigned long long>(pipeline->DurableSeq()));
  return 0;
#endif  // STREAMQ_TRACE_ENABLED
}
