// The cluster tier as a data path: 4 ingest nodes, each running the full
// sharded durable pipeline, ship mergeable sketches over faulty channels
// to a coordinator that answers cluster-wide quantiles -- then one node
// is power-lost mid-stream, restarted from its disk, and resynchronised,
// and the final answers are identical to a run where nothing failed.
//
// This is the cluster-scale composition of the monitoring tier
// (distributed_monitor.cpp: sampling sites, approximate union view) with
// the durable single-process pipeline (DESIGN.md sections 10-11): here
// every shipped sketch is *mergeable*, so the coordinator's answers carry
// the exact-count eps*n bound over the union stream, and every node's WAL
// + checkpoint makes its sub-stream recoverable. See DESIGN.md section 13.

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "durability/storage.h"
#include "stream/generators.h"

int main() {
  using namespace streamq;
  using namespace streamq::cluster;

  constexpr int kNodes = 4;
  constexpr uint64_t kUpdates = 200'000;
  constexpr int kCrashNode = 2;

  // One (in-memory) disk per node; a real deployment points these at
  // PosixStorage directories.
  std::vector<std::unique_ptr<durability::MemStorage>> disks;
  std::vector<durability::Storage*> storage;
  for (int i = 0; i < kNodes; ++i) {
    disks.push_back(std::make_unique<durability::MemStorage>());
    storage.push_back(disks.back().get());
  }

  ClusterOptions options;
  options.nodes = kNodes;
  options.node_pipeline.sketch.algorithm = Algorithm::kRandom;
  options.node_pipeline.sketch.eps = 0.02;
  options.node_pipeline.sketch.log_universe = 20;
  options.node_pipeline.sketch.seed = 7;
  options.node_pipeline.shards = 2;
  options.node_storage = storage;
  // The links lose, duplicate, reorder, delay and corrupt frames; the
  // epoch/ack/CRC protocol absorbs all of it.
  options.data_faults.drop = 0.02;
  options.data_faults.duplicate = 0.02;
  options.data_faults.reorder = 0.05;
  options.data_faults.corrupt = 0.02;
  options.data_faults.max_delay = 8;
  options.ack_faults = options.data_faults;

  auto cluster = QuantileCluster::Create(options);
  if (cluster == nullptr) {
    std::fprintf(stderr, "cluster refused its options\n");
    return 1;
  }

  DatasetSpec spec;
  spec.distribution = Distribution::kLogUniform;
  spec.n = kUpdates;
  spec.log_universe = 20;
  spec.seed = 42;
  const std::vector<uint64_t> data = GenerateDataset(spec);

  // Phase 1: 60% of the stream with everyone up.
  const uint64_t crash_at = kUpdates * 3 / 5;
  for (uint64_t i = 0; i < crash_at; ++i) cluster->Append(data[i]);
  cluster->Quiesce();
  std::printf("phase 1 (%llu updates, %d nodes up):  p50=%7llu  p99=%7llu\n",
              static_cast<unsigned long long>(crash_at), kNodes,
              static_cast<unsigned long long>(cluster->Query(0.50).value),
              static_cast<unsigned long long>(cluster->Query(0.99).value));

  // Power loss on node 2: its process is gone, its disk survives. The
  // stream does not stop -- appends routed to the dead node are counted
  // and dropped at ingress (connection refused), everyone else ingests on.
  cluster->KillNode(kCrashNode);
  const uint64_t down_until = crash_at + kUpdates / 5;
  for (uint64_t i = crash_at; i < down_until; ++i) cluster->Append(data[i]);
  const ClusterAnswer partial = cluster->Query(0.99, QueryScope::kLiveOnly);
  std::printf(
      "node %d down, stream flowing: p99=%7llu from the survivors "
      "(partial=%d, %d/%d nodes merged, %llu appends dropped)\n",
      kCrashNode, static_cast<unsigned long long>(partial.value),
      partial.partial ? 1 : 0, partial.nodes_merged, kNodes,
      static_cast<unsigned long long>(cluster->dropped_appends()));

  // Restart from the disk: checkpoint + WAL recovery, then the producer
  // replays the node's recorded sub-stream from ResumeSeq() (per-shard
  // seq dedup absorbs the overlap) and the epoch protocol resyncs the
  // coordinator.
  cluster->RestartNode(kCrashNode);
  const uint64_t replayed = cluster->ReplayNode(kCrashNode);
  std::printf("node %d recovered (resume_seq=%llu, replayed %llu updates)\n",
              kCrashNode,
              static_cast<unsigned long long>(
                  cluster->node(kCrashNode)->recovery().resume_seq),
              static_cast<unsigned long long>(replayed));

  // Phase 3: the rest of the stream, then full convergence.
  for (uint64_t i = down_until; i < kUpdates; ++i) cluster->Append(data[i]);
  if (!cluster->Quiesce()) {
    std::fprintf(stderr, "cluster failed to quiesce\n");
    return 1;
  }

  std::printf(
      "converged: %llu updates reflected, staleness bound %llu, "
      "%llu dropped while node %d was down\n",
      static_cast<unsigned long long>(cluster->coordinator().ReportedCount()),
      static_cast<unsigned long long>(cluster->StalenessBound()),
      static_cast<unsigned long long>(cluster->dropped_appends()), kCrashNode);
  for (const double phi : {0.50, 0.95, 0.99}) {
    const ClusterAnswer a = cluster->Query(phi);
    std::printf("  p%02.0f = %7llu  (%d/%d nodes, partial=%d)\n", phi * 100,
                static_cast<unsigned long long>(a.value), a.nodes_merged,
                kNodes, a.partial ? 1 : 0);
  }
  std::printf(
      "every update that reached a live node is acknowledged and in the\n"
      "answer; the drops during the outage are counted, never silent. (The\n"
      "cluster fault-matrix tests prove the stronger property: with no\n"
      "ingress drops, post-recovery answers are bit-identical to a run\n"
      "where node %d never crashed.)\n",
      kCrashNode);
  return 0;
}
