// Command-line quantile summariser, two modes.
//
// Local (the original): reads whitespace-separated numbers from stdin,
// sketches them in-process, prints requested quantiles.
//
//   $ seq 1 1000000 | shuf | ./streamq_cli --algo=GKArray --eps=0.001 \
//         --phi=0.5,0.9,0.99
//
// Client (network tier): connects to a running streamq server and drives
// the wire protocol interactively -- CREATE/INSERT/QUERY/RANK/FLUSH/
// STATS/DROP -- one command per stdin line.
//
//   $ ./streamq_server --port=9409 &
//   $ ./streamq_cli connect 127.0.0.1:9409
//   > create rtt Random 0.001
//   > insert rtt 200 210 5000
//   > query rtt 0.5
//   > flush rtt
//
// Floating-point input in local mode is supported through the
// order-preserving IEEE-754 mapping (footnote 1 of the paper): values are
// mapped to uint64, sketched in the fixed universe, and mapped back.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "quantile/factory.h"
#include "util/float_order.h"

#if STREAMQ_NET_ENABLED
#include "net/client.h"
#endif

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: streamq_cli [--algo=NAME] [--eps=E] [--phi=P1,P2,...]\n"
               "       streamq_cli connect HOST:PORT\n"
               "  NAME: GKTheory GKAdaptive GKArray FastQDigest MRL99 Random\n"
               "        DCM DCS Post (default: GKArray)\n"
               "  E:    rank error target (default 0.001)\n"
               "  P:    comma-separated quantiles in (0,1) "
               "(default 0.5,0.9,0.99)\n"
               "local mode reads whitespace-separated numbers from stdin;\n"
               "connect mode reads protocol commands (type 'help')\n");
}

#if STREAMQ_NET_ENABLED

void ConnectHelp() {
  std::printf(
      "commands (one per line):\n"
      "  create NAME [ALGO] [EPS] [durable]   make a stream on the server\n"
      "  drop NAME                            drop it (and durable state)\n"
      "  insert NAME V...                     insert value(s); >1 => one\n"
      "                                       BATCH_INSERT frame\n"
      "  delete NAME V                        turnstile delete (delta -1)\n"
      "  query NAME PHI                       phi-quantile in (0,1)\n"
      "  rank NAME V                          estimated rank of V\n"
      "  flush NAME                           durability barrier; prints ack\n"
      "  stats NAME                           server-side stream stats\n"
      "  help / quit\n");
}

void PrintResponse(const streamq::net::NetResponse& resp) {
  using namespace streamq::net;
  if (!resp.ok()) {
    std::printf("%s %s: %s\n", NetOpName(resp.op), NetStatusName(resp.status),
                resp.message.c_str());
    return;
  }
  switch (resp.op) {
    case NetOp::kQuery:
      std::printf("%llu\n", static_cast<unsigned long long>(resp.value));
      break;
    case NetOp::kRank:
      std::printf("%lld\n", static_cast<long long>(resp.rank));
      break;
    case NetOp::kFlush:
      std::printf("ok flush-ack=%llu\n",
                  static_cast<unsigned long long>(resp.value));
      break;
    case NetOp::kInsert:
    case NetOp::kBatchInsert:
      std::printf("ok accepted=%llu\n",
                  static_cast<unsigned long long>(resp.value));
      break;
    case NetOp::kCreate:
    case NetOp::kStats: {
      const auto& s = resp.stats;
      std::printf(
          "ok algo=%s count=%llu pushed=%llu processed=%llu shards=%u "
          "mem=%.1fKB durable=%d durable_seq=%llu recovered=%d\n",
          s.algorithm.c_str(), static_cast<unsigned long long>(s.count),
          static_cast<unsigned long long>(s.pushed),
          static_cast<unsigned long long>(s.processed), s.shards,
          s.memory_bytes / 1024.0, s.durable ? 1 : 0,
          static_cast<unsigned long long>(s.durable_seq), s.recovered ? 1 : 0);
      break;
    }
    default:
      std::printf("ok\n");
      break;
  }
}

int RunConnectMode(const std::string& endpoint) {
  using namespace streamq::net;
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "connect: expected HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "connect: bad port in '%s'\n", endpoint.c_str());
    return 2;
  }

  auto client = StreamqClient::ConnectTcp(host, static_cast<uint16_t>(port));
  if (client == nullptr) {
    std::fprintf(stderr, "connect to %s failed\n", endpoint.c_str());
    return 1;
  }
  std::printf("connected to %s (type 'help')\n", endpoint.c_str());

  std::string line;
  while (true) {
    std::printf("> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      ConnectHelp();
      continue;
    }

    std::string stream;
    if (!(in >> stream)) {
      std::printf("error: '%s' needs a stream name (try 'help')\n",
                  cmd.c_str());
      continue;
    }

    NetResponse resp;
    bool handled = true;
    if (cmd == "create") {
      CreateParams params;
      std::string tok;
      if (in >> tok) params.algorithm = tok;
      if (in >> tok) params.eps = std::atof(tok.c_str());
      if (in >> tok) params.durable = (tok == "durable");
      resp = client->Create(stream, params);
    } else if (cmd == "drop") {
      resp = client->Drop(stream);
    } else if (cmd == "insert") {
      std::vector<uint64_t> values;
      unsigned long long v = 0;
      while (in >> v) values.push_back(v);
      if (values.empty()) {
        std::printf("error: insert needs at least one value\n");
        continue;
      }
      resp = values.size() == 1 ? client->Insert(stream, values[0])
                                : client->InsertBatch(stream, values);
    } else if (cmd == "delete") {
      unsigned long long v = 0;
      if (!(in >> v)) {
        std::printf("error: delete needs a value\n");
        continue;
      }
      resp = client->Insert(stream, v, -1);
    } else if (cmd == "query") {
      double phi = 0.0;
      if (!(in >> phi)) {
        std::printf("error: query needs a phi\n");
        continue;
      }
      resp = client->Query(stream, phi);
    } else if (cmd == "rank") {
      unsigned long long v = 0;
      if (!(in >> v)) {
        std::printf("error: rank needs a value\n");
        continue;
      }
      resp = client->Rank(stream, v);
    } else if (cmd == "flush") {
      resp = client->Flush(stream);
    } else if (cmd == "stats") {
      resp = client->Stats(stream);
    } else {
      std::printf("error: unknown command '%s' (try 'help')\n", cmd.c_str());
      handled = false;
    }
    if (!handled) continue;

    if (!client->ok()) {
      std::fprintf(stderr, "connection lost: %s\n", client->error().c_str());
      return 1;
    }
    PrintResponse(resp);
  }
  return 0;
}

#else  // !STREAMQ_NET_ENABLED

int RunConnectMode(const std::string&) {
  std::fprintf(stderr,
               "connect mode requires a build with -DSTREAMQ_NET=ON\n");
  return 2;
}

#endif  // STREAMQ_NET_ENABLED

}  // namespace

int main(int argc, char** argv) {
  using namespace streamq;

  if (argc >= 2 && std::strcmp(argv[1], "connect") == 0) {
    if (argc != 3) {
      Usage();
      return 2;
    }
    return RunConnectMode(argv[2]);
  }

  SketchConfig config;
  config.algorithm = Algorithm::kGkArray;
  config.eps = 0.001;
  config.log_universe = 64;  // full double-order universe
  std::vector<double> phis = {0.5, 0.9, 0.99};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      if (!ParseAlgorithm(arg.substr(7), &config.algorithm)) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", arg.substr(7).c_str());
        Usage();
        return 2;
      }
    } else if (arg.rfind("--eps=", 0) == 0) {
      config.eps = std::atof(arg.substr(6).c_str());
      if (config.eps <= 0 || config.eps >= 1) {
        std::fprintf(stderr, "eps must be in (0,1)\n");
        return 2;
      }
    } else if (arg.rfind("--phi=", 0) == 0) {
      phis.clear();
      std::string list = arg.substr(6);
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        const double phi = std::atof(tok);
        if (phi <= 0 || phi >= 1) {
          std::fprintf(stderr, "phi must be in (0,1): %s\n", tok);
          return 2;
        }
        phis.push_back(phi);
      }
    } else {
      Usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  const bool fixed_universe = config.algorithm == Algorithm::kFastQDigest ||
                              config.algorithm == Algorithm::kDcm ||
                              config.algorithm == Algorithm::kDcs ||
                              config.algorithm == Algorithm::kDcsPost ||
                              config.algorithm == Algorithm::kRss;
  if (fixed_universe) config.log_universe = 32;  // dyadic depth over floats?

  auto sketch = MakeSketch(config);
  double value = 0.0;
  uint64_t n = 0;
  while (std::scanf("%lf", &value) == 1) {
    uint64_t mapped;
    if (fixed_universe) {
      // 32-bit order-preserving float universe keeps the dyadic structures
      // at a practical depth.
      mapped = OrderedFromFloat(static_cast<float>(value));
    } else {
      mapped = OrderedFromDouble(value);
    }
    sketch->Insert(mapped);
    ++n;
  }
  if (n == 0) {
    std::fprintf(stderr, "no input values\n");
    return 1;
  }

  std::printf("# %s eps=%g n=%llu memory=%.1fKB\n", sketch->Name().c_str(),
              config.eps, static_cast<unsigned long long>(n),
              sketch->MemoryBytes() / 1024.0);
  std::sort(phis.begin(), phis.end());
  const auto answers = sketch->QueryMany(phis);
  for (size_t i = 0; i < phis.size(); ++i) {
    const double out =
        fixed_universe
            ? static_cast<double>(FloatFromOrdered(
                  static_cast<uint32_t>(answers[i])))
            : DoubleFromOrdered(answers[i]);
    std::printf("%g\t%.10g\n", phis[i], out);
  }
  return 0;
}
