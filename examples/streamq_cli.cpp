// Command-line quantile summariser: reads whitespace-separated numbers from
// stdin, prints requested quantiles.
//
//   $ seq 1 1000000 | shuf | ./streamq_cli --algo=GKArray --eps=0.001 \
//         --phi=0.5,0.9,0.99
//
// Floating-point input is supported through the order-preserving IEEE-754
// mapping (footnote 1 of the paper): values are mapped to uint64, sketched
// in the fixed universe, and mapped back for output.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "quantile/factory.h"
#include "util/float_order.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: streamq_cli [--algo=NAME] [--eps=E] [--phi=P1,P2,...]\n"
               "  NAME: GKTheory GKAdaptive GKArray FastQDigest MRL99 Random\n"
               "        DCM DCS Post (default: GKArray)\n"
               "  E:    rank error target (default 0.001)\n"
               "  P:    comma-separated quantiles in (0,1) "
               "(default 0.5,0.9,0.99)\n"
               "reads whitespace-separated numbers from stdin\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamq;

  SketchConfig config;
  config.algorithm = Algorithm::kGkArray;
  config.eps = 0.001;
  config.log_universe = 64;  // full double-order universe
  std::vector<double> phis = {0.5, 0.9, 0.99};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      if (!ParseAlgorithm(arg.substr(7), &config.algorithm)) {
        std::fprintf(stderr, "unknown algorithm '%s'\n", arg.substr(7).c_str());
        Usage();
        return 2;
      }
    } else if (arg.rfind("--eps=", 0) == 0) {
      config.eps = std::atof(arg.substr(6).c_str());
      if (config.eps <= 0 || config.eps >= 1) {
        std::fprintf(stderr, "eps must be in (0,1)\n");
        return 2;
      }
    } else if (arg.rfind("--phi=", 0) == 0) {
      phis.clear();
      std::string list = arg.substr(6);
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        const double phi = std::atof(tok);
        if (phi <= 0 || phi >= 1) {
          std::fprintf(stderr, "phi must be in (0,1): %s\n", tok);
          return 2;
        }
        phis.push_back(phi);
      }
    } else {
      Usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  const bool fixed_universe = config.algorithm == Algorithm::kFastQDigest ||
                              config.algorithm == Algorithm::kDcm ||
                              config.algorithm == Algorithm::kDcs ||
                              config.algorithm == Algorithm::kDcsPost ||
                              config.algorithm == Algorithm::kRss;
  if (fixed_universe) config.log_universe = 32;  // dyadic depth over floats?

  auto sketch = MakeSketch(config);
  double value = 0.0;
  uint64_t n = 0;
  while (std::scanf("%lf", &value) == 1) {
    uint64_t mapped;
    if (fixed_universe) {
      // 32-bit order-preserving float universe keeps the dyadic structures
      // at a practical depth.
      mapped = OrderedFromFloat(static_cast<float>(value));
    } else {
      mapped = OrderedFromDouble(value);
    }
    sketch->Insert(mapped);
    ++n;
  }
  if (n == 0) {
    std::fprintf(stderr, "no input values\n");
    return 1;
  }

  std::printf("# %s eps=%g n=%llu memory=%.1fKB\n", sketch->Name().c_str(),
              config.eps, static_cast<unsigned long long>(n),
              sketch->MemoryBytes() / 1024.0);
  std::sort(phis.begin(), phis.end());
  const auto answers = sketch->QueryMany(phis);
  for (size_t i = 0; i < phis.size(); ++i) {
    const double out =
        fixed_universe
            ? static_cast<double>(FloatFromOrdered(
                  static_cast<uint32_t>(answers[i])))
            : DoubleFromOrdered(answers[i]);
    std::printf("%g\t%.10g\n", phis[i], out);
  }
  return 0;
}
