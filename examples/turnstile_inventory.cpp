// Turnstile model end-to-end: order values in a live marketplace, where
// orders are placed (insert) and cancelled (delete), and the analytics tier
// wants price quantiles over the orders *currently open*. Comparison-based
// summaries cannot handle deletions at all (see section 1.2.2 of the
// paper); DCS with OLS post-processing is the paper's recommendation.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "exact/exact_oracle.h"
#include "quantile/post/post_process.h"
#include "util/random.h"

int main() {
  using namespace streamq;

  constexpr int kLogU = 20;  // prices in cents, up to ~$10k
  DcsPost sketch(0.01, kLogU, /*depth=*/7, /*eta=*/0.1, /*seed=*/3);

  Xoshiro256 rng(11);
  std::vector<uint64_t> open_orders;

  auto place = [&](uint64_t price) {
    sketch.Insert(price);
    open_orders.push_back(price);
  };
  auto cancel_random = [&] {
    if (open_orders.empty()) return;
    const size_t idx = rng.Below(open_orders.size());
    sketch.Erase(open_orders[idx]);
    open_orders[idx] = open_orders.back();
    open_orders.pop_back();
  };

  // Phase 1: market fills with lognormal-ish prices around $20.
  for (int i = 0; i < 400'000; ++i) {
    const double price = 2000.0 * std::exp(0.6 * rng.NextGaussian());
    place(std::min<uint64_t>((1 << kLogU) - 1,
                             static_cast<uint64_t>(price)));
  }
  // Phase 2: churn -- 60% of open orders cancelled, new ones at higher prices.
  for (int i = 0; i < 240'000; ++i) cancel_random();
  for (int i = 0; i < 100'000; ++i) {
    const double price = 5000.0 * std::exp(0.4 * rng.NextGaussian());
    place(std::min<uint64_t>((1 << kLogU) - 1,
                             static_cast<uint64_t>(price)));
  }

  std::printf("open orders: %llu (sketch: %.0f KB, turnstile-updated)\n\n",
              static_cast<unsigned long long>(sketch.Count()),
              sketch.MemoryBytes() / 1024.0);

  const ExactOracle oracle(open_orders);
  std::printf("%8s %14s %12s %10s\n", "phi", "Post estimate", "exact", "err");
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const uint64_t est = sketch.Query(phi);
    std::printf("%8.2f %14llu %12llu %9.4f%%\n", phi,
                static_cast<unsigned long long>(est),
                static_cast<unsigned long long>(oracle.Quantile(phi)),
                100.0 * oracle.QuantileError(est, phi));
  }
  std::printf("\npost-processing tree: %zu nodes (built at query time "
              "only)\n", sketch.LastTreeSize());
  return 0;
}
