// Quickstart: summarise a stream of a million values in a few kilobytes and
// read off any quantile.
//
//   $ ./quickstart
//
// Shows the three API entry points most users need: MakeSketch (factory),
// Insert, and Query, plus the observed-vs-true comparison.

#include <cstdio>

#include "exact/exact_oracle.h"
#include "quantile/factory.h"
#include "stream/generators.h"

int main() {
  using namespace streamq;

  // A million log-normal-ish latency samples (heavy right tail).
  DatasetSpec spec;
  spec.distribution = Distribution::kLogUniform;
  spec.log_universe = 20;
  spec.n = 1'000'000;
  spec.seed = 42;
  const auto latencies = GenerateDataset(spec);

  // Random is the paper's recommendation when a hard space cap matters;
  // GKArray when a deterministic guarantee matters.
  SketchConfig config;
  config.algorithm = Algorithm::kRandom;
  config.eps = 0.001;  // rank error at most 0.1% of the stream
  auto sketch = MakeSketch(config);

  for (uint64_t v : latencies) sketch->Insert(v);

  std::printf("summarised %llu values in %.1f KB (%s, eps=%g)\n\n",
              static_cast<unsigned long long>(sketch->Count()),
              sketch->MemoryBytes() / 1024.0, sketch->Name().c_str(),
              config.eps);

  const ExactOracle oracle(latencies);  // ground truth, for the demo only
  std::printf("%10s %12s %12s %12s\n", "phi", "estimate", "exact", "err");
  for (double phi : {0.25, 0.5, 0.9, 0.99, 0.999}) {
    const uint64_t est = sketch->Query(phi);
    const uint64_t exact = oracle.Quantile(phi);
    std::printf("%10.3f %12llu %12llu %11.5f%%\n", phi,
                static_cast<unsigned long long>(est),
                static_cast<unsigned long long>(exact),
                100.0 * oracle.QuantileError(est, phi));
  }
  return 0;
}
