// Standalone streamq server: the network service tier (src/net/) on a real
// TCP port with real disks.
//
//   $ ./streamq_server --port=9409 --data-dir=/var/lib/streamq
//   serving on 0.0.0.0:9409 (epoll backend), data dir /var/lib/streamq
//
// Clients: StreamqClient (src/net/client.h), `streamq_cli connect
// HOST:PORT`, or any HTTP scraper hitting GET /metrics on the same port.
// Durable streams (CREATE with durable=true) put their WAL + checkpoints
// under --data-dir; a restarted server recovers them on the next CREATE of
// the same stream name.
//
// SIGINT/SIGTERM shut the reactor down cleanly (Reactor::Shutdown is
// async-signal-safe: an atomic flag plus a self-pipe write).

#include <cstdio>

#if STREAMQ_NET_ENABLED

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include "durability/storage.h"
#include "net/reactor.h"
#include "net/server.h"

namespace {

streamq::net::Reactor* g_reactor = nullptr;

void HandleSignal(int) {
  if (g_reactor != nullptr) g_reactor->Shutdown();
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: streamq_server [flags]\n"
      "  --port=N              listen port (default 9409; 0 = ephemeral)\n"
      "  --bind=ADDR           listen address (default 127.0.0.1)\n"
      "  --data-dir=PATH       durable stream state (default streamq-data)\n"
      "  --max-streams=N       stream table ceiling (default 64)\n"
      "  --shards=N            default pipeline shards per stream "
      "(default 2)\n"
      "  --ring=N              ingest ring capacity per shard "
      "(default 16384)\n"
      "  --poll                force the poll() backend (no epoll)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamq;

  net::ServerOptions server_options;
  net::ReactorOptions reactor_options;
  reactor_options.port = 9409;
  std::string data_dir = "streamq-data";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      const int port = std::atoi(arg.c_str() + 7);
      if (port < 0 || port > 65535) {
        std::fprintf(stderr, "bad --port\n");
        return 2;
      }
      reactor_options.port = static_cast<uint16_t>(port);
    } else if (arg.rfind("--bind=", 0) == 0) {
      reactor_options.bind_addr = arg.substr(7);
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = arg.substr(11);
    } else if (arg.rfind("--max-streams=", 0) == 0) {
      server_options.max_streams = std::strtoul(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      server_options.default_shards =
          std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--ring=", 0) == 0) {
      server_options.ring_capacity = std::strtoul(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--poll") {
      reactor_options.force_poll = true;
    } else {
      Usage();
      return arg == "--help" ? 0 : 2;
    }
  }

#if STREAMQ_DURABILITY_ENABLED
  durability::PosixStorage storage;
  server_options.storage = &storage;
  server_options.data_dir = data_dir;
  const char* durability_note = data_dir.c_str();
#else
  // No durability tier in this build: CREATE with durable=true is refused
  // with kUnsupported, everything else serves normally.
  const char* durability_note = "(durability compiled out)";
#endif

  net::StreamqServer server(server_options);
  auto reactor = net::Reactor::Create(&server, reactor_options);
  if (reactor == nullptr) {
    std::fprintf(stderr, "streamq_server: cannot listen on %s:%u\n",
                 reactor_options.bind_addr.c_str(), reactor_options.port);
    return 1;
  }

  g_reactor = reactor.get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("serving on %s:%u (%s backend), data dir %s\n",
              reactor_options.bind_addr.c_str(), reactor->port(),
              reactor->using_epoll() ? "epoll" : "poll", durability_note);
  std::printf("metrics: curl http://%s:%u/metrics\n",
              reactor_options.bind_addr.c_str(), reactor->port());
  std::fflush(stdout);

  reactor->Run();

  g_reactor = nullptr;
  std::printf("shutting down: %zu session(s), %zu stream(s) open\n",
              server.SessionCount(), server.StreamCount());
  return 0;
}

#else  // !STREAMQ_NET_ENABLED

int main() {
  std::printf("streamq_server: built with -DSTREAMQ_NET=OFF; the network "
              "service tier is compiled out.\n");
  return 0;
}

#endif  // STREAMQ_NET_ENABLED
