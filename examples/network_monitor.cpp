// Network health monitoring, the paper's ISP motivation: track the p50/p95/
// p99 of per-packet round-trip latencies continuously, reporting at fixed
// intervals while the stream keeps flowing (streaming algorithms answer at
// any time, with no knowledge of the final n).
//
// Uses GKArray: the deterministic guarantee means a reported p99 is never
// off by more than eps in rank -- an SLO check can rely on it.
//
// Scaling this beyond one process: distributed_monitor.cpp spreads the
// observation across sites (approximate union view); cluster_ingest.cpp
// runs the full multi-node data path with durability and failover.

#include <cstdio>

#include "quantile/cash_register.h"
#include "util/random.h"

int main() {
  using namespace streamq;

  GkArray sketch(0.001);
  Xoshiro256 rng(7);

  std::printf("%12s %10s %10s %10s %10s %9s\n", "packets", "p50(us)",
              "p95(us)", "p99(us)", "KB", "tuples");

  const uint64_t kTotal = 4'000'000;
  for (uint64_t t = 0; t < kTotal; ++t) {
    // Base latency ~200us with jitter; a congestion episode mid-run shifts
    // the distribution so the reported quantiles must track the change.
    double latency_us = 200.0 + 40.0 * rng.NextGaussian();
    if (t > kTotal / 2 && t < kTotal * 3 / 4) {
      latency_us += 300.0 + 150.0 * rng.NextDouble();  // congestion
    }
    if (rng.NextDouble() < 0.001) latency_us += 5000.0;  // retransmit tail
    if (latency_us < 1.0) latency_us = 1.0;
    sketch.Insert(static_cast<uint64_t>(latency_us));

    if ((t + 1) % 500'000 == 0) {
      std::printf("%12llu %10llu %10llu %10llu %10.1f %9zu\n",
                  static_cast<unsigned long long>(t + 1),
                  static_cast<unsigned long long>(sketch.Query(0.50)),
                  static_cast<unsigned long long>(sketch.Query(0.95)),
                  static_cast<unsigned long long>(sketch.Query(0.99)),
                  sketch.MemoryBytes() / 1024.0, sketch.impl().TupleCount());
    }
  }
  std::printf("\nnote the p95/p99 rise once the congestion episode starts "
              "(packets 2M..3M); the summary covers the whole stream, so "
              "the tail quantiles stay elevated afterwards.\n");
  return 0;
}
