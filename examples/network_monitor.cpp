// Network health monitoring, the paper's ISP motivation -- now end to
// end through the real service tier (src/net/): a streamq server on a TCP
// port, a StreamqClient feeding it per-packet latencies in batched frames,
// quantile queries answered mid-stream, a FLUSH whose ack is a durability
// guarantee, and finally the Prometheus /metrics scrape a fleet monitor
// would poll.
//
// Single process for the demo, but nothing here is in-process-only: the
// client speaks the wire protocol through a real socket, so splitting
// this file at the dashed lines gives a working server and a working
// monitor agent.
//
// The single-process predecessors of this demo: quickstart.cpp (one
// sketch, one stream), distributed_monitor.cpp (approximate union across
// sites), cluster_ingest.cpp (multi-node durable data path).

#include <cstdio>

#if STREAMQ_NET_ENABLED

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "durability/storage.h"
#include "net/client.h"
#include "net/reactor.h"
#include "net/server.h"
#include "util/random.h"

int main() {
  using namespace streamq;

  // --- server side --------------------------------------------------------
  durability::MemStorage storage;  // PosixStorage in production
  net::ServerOptions server_options;
  server_options.storage = &storage;
  server_options.data_dir = "monitor-data";
  net::StreamqServer server(server_options);

  net::ReactorOptions reactor_options;  // ephemeral port on 127.0.0.1
  auto reactor = net::Reactor::Create(&server, reactor_options);
  if (reactor == nullptr) {
    std::fprintf(stderr, "could not bind a listening socket\n");
    return 1;
  }
  std::thread serving([&reactor] { reactor->Run(); });
  std::printf("serving on 127.0.0.1:%u (%s backend)\n\n", reactor->port(),
              reactor->using_epoll() ? "epoll" : "poll");

  // --- client side --------------------------------------------------------
  auto client = net::StreamqClient::ConnectTcp("127.0.0.1", reactor->port());
  if (client == nullptr) {
    std::fprintf(stderr, "connect failed\n");
    reactor->Shutdown();
    serving.join();
    return 1;
  }

  net::CreateParams params;
  params.algorithm = "Random";
  params.eps = 0.001;
  // FLUSH acks below are real durability marks (when the build carries the
  // durability tier; otherwise they are drain barriers).
  params.durable = STREAMQ_DURABILITY_ENABLED != 0;
  net::NetResponse resp = client->Create("rtt", params);
  if (!resp.ok()) {
    std::fprintf(stderr, "CREATE failed: %s\n", resp.message.c_str());
    return 1;
  }

  std::printf("%12s %10s %10s %10s %12s\n", "packets", "p50(us)", "p95(us)",
              "p99(us)", "flush-ack");

  Xoshiro256 rng(7);
  const uint64_t kTotal = 2'000'000;
  const size_t kBatch = 4096;
  std::vector<uint64_t> batch;
  batch.reserve(kBatch);
  for (uint64_t t = 0; t < kTotal; ++t) {
    // Base latency ~200us with jitter; a congestion episode mid-run shifts
    // the distribution so the reported quantiles must track the change.
    double latency_us = 200.0 + 40.0 * rng.NextGaussian();
    if (t > kTotal / 2 && t < kTotal * 3 / 4) {
      latency_us += 300.0 + 150.0 * rng.NextDouble();  // congestion
    }
    if (rng.NextDouble() < 0.001) latency_us += 5000.0;  // retransmit tail
    if (latency_us < 1.0) latency_us = 1.0;
    batch.push_back(static_cast<uint64_t>(latency_us));

    if (batch.size() == kBatch) {
      resp = client->InsertBatch("rtt", batch);
      if (!resp.ok()) {
        std::fprintf(stderr, "BATCH_INSERT failed: %s\n",
                     resp.message.c_str());
        return 1;
      }
      batch.clear();
    }

    if ((t + 1) % 500'000 == 0) {
      if (!batch.empty()) {
        client->InsertBatch("rtt", batch);
        batch.clear();
      }
      // The FLUSH ack means: every packet sent so far survives a server
      // crash. Then query the live quantiles over the wire.
      const net::NetResponse flush = client->Flush("rtt");
      const uint64_t p50 = client->Query("rtt", 0.50).value;
      const uint64_t p95 = client->Query("rtt", 0.95).value;
      const uint64_t p99 = client->Query("rtt", 0.99).value;
      std::printf("%12llu %10llu %10llu %10llu %12llu\n",
                  static_cast<unsigned long long>(t + 1),
                  static_cast<unsigned long long>(p50),
                  static_cast<unsigned long long>(p95),
                  static_cast<unsigned long long>(p99),
                  static_cast<unsigned long long>(flush.value));
    }
  }

  // --- what the fleet monitor sees ---------------------------------------
  std::printf("\n--- /metrics scrape (excerpt) ---\n");
  const std::string metrics = server.MetricsText();
  // Print just the request/byte counters; the full text also carries every
  // per-stream pipeline metric and the per-opcode latency summaries.
  size_t pos = 0;
  int lines = 0;
  while (pos < metrics.size() && lines < 24) {
    size_t eol = metrics.find('\n', pos);
    if (eol == std::string::npos) eol = metrics.size();
    const std::string line = metrics.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.find("net_requests") != std::string::npos ||
        line.find("net_bytes") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++lines;
    }
  }

  client->Drop("rtt");
  client.reset();
  reactor->Shutdown();
  serving.join();
  std::printf("\nnote the p95/p99 rise once the congestion episode starts "
              "(packets 1M..1.5M); every reported figure crossed the wire, "
              "and every flush-ack was a durable mark.\n");
  return 0;
}

#else  // !STREAMQ_NET_ENABLED

int main() {
  std::printf("network_monitor: built with -DSTREAMQ_NET=OFF; the network "
              "service tier is compiled out.\n");
  return 0;
}

#endif  // STREAMQ_NET_ENABLED
