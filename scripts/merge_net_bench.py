#!/usr/bin/env python3
"""Merges bench_net's JSON output into BENCH_baseline.json.

bench_baseline always emits "net": null -- the network sweep (inserts/sec
and query latency vs concurrent client count over TCP loopback, for both
single-INSERT and 4096-element BATCH_INSERT framing) is bench_net's own
workload, kept out of the single-process baseline run. This script
splices the real numbers in:

    build/bench/bench_net --json /tmp/net.json
    scripts/merge_net_bench.py BENCH_baseline.json /tmp/net.json

The section file is bench_net's --json output:

    {"algorithm": ..., "transport": ..., "batch": ...,
     "sweep": [{"clients": ..., "insert_per_sec": ...,
                "batch_insert_per_sec": ..., "query_p50_us": ...,
                "query_p99_us": ...}, ...]}

The merged document must pass check_bench_json.py's schema-v7 net check
(including the hard >= 10x batch-vs-single gate at one client) before
the baseline file is rewritten; a failing merge leaves it untouched.

Exit code 0 = baseline updated, 1 = any failure (messages on stderr).
"""

import json
import sys

import check_bench_json


def fail(msg):
    print(f"merge_net_bench: {msg}", file=sys.stderr)
    return 1


def main():
    if len(sys.argv) != 3:
        return fail("usage: merge_net_bench.py BASELINE.json SECTION.json")
    baseline_path, section_path = sys.argv[1], sys.argv[2]

    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{baseline_path}: {e}")
    try:
        with open(section_path, "r", encoding="utf-8") as f:
            section = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{section_path}: {e}")

    if not isinstance(section, dict) or "sweep" not in section:
        return fail(f"{section_path}: not a bench_net section file")
    if doc.get("schema_version", 0) < 7:
        return fail(
            f"{baseline_path}: schema_version "
            f"{doc.get('schema_version')!r} predates the net section; "
            f"regenerate with the current bench_baseline first"
        )
    doc["net"] = section

    errors = check_bench_json.check_net(section, baseline_path)
    if errors:
        return fail("merged section failed validation; baseline unchanged")

    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    points = ", ".join(
        f"c={p['clients']}:{p['batch_insert_per_sec']:.0f}/s"
        for p in section["sweep"]
    )
    print(f"merge_net_bench: {baseline_path} updated ({points})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
