#!/usr/bin/env python3
"""Fails when a repo markdown file references a file that does not exist,
or when a source subsystem is documented nowhere.

Usage: check_docs_links.py [REPO_ROOT]

Two checks:

1. Dangling references: scans the repo's top-level *.md files for
   references to repo files -- markdown links, inline code spans like
   `src/obs/metrics.h`, and bare path-looking tokens -- and reports any
   that point at nothing on disk. Shorthand like `foo.h/.cc` expands into
   both files; paths ending in "/" must be directories; build outputs
   under build*/ are resolved relative to any configured build dir if one
   exists, and skipped otherwise (a fresh checkout has no build tree).

2. Orphan subsystems: every top-level directory under src/ must be
   mentioned as `src/<name>` somewhere in DESIGN.md. A subsystem the
   design document never names is either undocumented (fix DESIGN.md) or
   dead (delete it); both are CI failures.

Exit code 0 = clean, 1 = problems (listed on stderr).
"""

import glob
import os
import re
import sys

# Tokens that look like repo paths: contain a slash or a known source/doc
# extension. Deliberately conservative to avoid flagging prose.
PATH_EXTENSIONS = (
    ".h", ".cc", ".cpp", ".md", ".txt", ".py", ".json", ".cmake",
)

# `path` or `path/.ext` inside backticks, and [text](path) markdown links.
CODE_SPAN = re.compile(r"`([^`\n]+)`")
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")

# External references we never check.
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def looks_like_path(token):
    if token.startswith(SKIP_PREFIXES):
        return False
    if any(ch in token for ch in " <>{}$=;,"):
        return False
    if token.endswith("/"):
        return "/" in token.rstrip("/")
    base = token.split("/")[-1]
    has_ext = any(base.endswith(ext) for ext in PATH_EXTENSIONS)
    named_file = base in ("CMakeLists.txt", "Makefile")
    return ("/" in token and (has_ext or named_file)) or has_ext or named_file


def expand_shorthand(token):
    """`foo.h/.cc` -> [foo.h, foo.cc]; `foo.{h,cc}` -> both too."""
    m = re.fullmatch(r"(.+)\.([a-z]+)/\.([a-z]+)", token)
    if m:
        return [f"{m.group(1)}.{m.group(2)}", f"{m.group(1)}.{m.group(3)}"]
    m = re.fullmatch(r"(.+)\.\{([a-z]+),([a-z]+)\}", token)
    if m:
        return [f"{m.group(1)}.{m.group(2)}", f"{m.group(1)}.{m.group(3)}"]
    return [token]


def candidate_dirs(root, md_path):
    # Paths in docs are written relative to the repo root (the dominant
    # convention), to src/ (the include-path convention of the C++ sources),
    # to scripts/ (checker scripts are often named bare), or occasionally
    # to the doc's own directory.
    return [root, os.path.join(root, "src"), os.path.join(root, "scripts"),
            os.path.dirname(md_path)]


def exists_in_repo(root, md_path, token):
    if token.startswith("build/") or token.startswith("build-"):
        # Build outputs: a fresh checkout has no build tree, so these are
        # documentation of what a build *produces*, not checked-in files.
        return True
    if token.startswith("/"):
        # Absolute paths describe the host environment (reference corpora,
        # container mounts), not repo files; out of scope for this check.
        return True
    for base in candidate_dirs(root, md_path):
        full = os.path.join(base, token)
        if token.endswith("/"):
            if os.path.isdir(full.rstrip("/")):
                return True
        elif os.path.exists(full):
            return True
    return False


def check_file(root, md_path):
    dangling = []
    with open(md_path, "r", encoding="utf-8") as f:
        text = f.read()

    tokens = set()
    for m in CODE_SPAN.finditer(text):
        span = m.group(1).strip()
        for piece in span.split():
            if looks_like_path(piece):
                tokens.add(piece)
    for m in MD_LINK.finditer(text):
        target = m.group(1).strip()
        if not target.startswith(SKIP_PREFIXES):
            tokens.add(target)

    for token in sorted(tokens):
        for path in expand_shorthand(token.rstrip(".,:;")):
            # Tokens with glob or placeholder characters are illustrative.
            if any(ch in path for ch in "*?N<>"):
                continue
            if not looks_like_path(path):
                continue
            if not exists_in_repo(root, md_path, path):
                dangling.append((md_path, path))
    return dangling


def orphan_subsystems(root):
    """Top-level src/ directories DESIGN.md never names as src/<name>."""
    design = os.path.join(root, "DESIGN.md")
    src = os.path.join(root, "src")
    if not os.path.isfile(design) or not os.path.isdir(src):
        return []
    with open(design, "r", encoding="utf-8") as f:
        text = f.read()
    orphans = []
    for name in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, name)):
            continue
        if f"src/{name}" not in text:
            orphans.append(name)
    return orphans


def main():
    root = os.path.abspath(sys.argv[1]) if len(sys.argv) > 1 else os.getcwd()
    md_files = sorted(glob.glob(os.path.join(root, "*.md")))
    if not md_files:
        print(f"check_docs_links: no markdown files under {root}",
              file=sys.stderr)
        return 1

    dangling = []
    for md in md_files:
        dangling.extend(check_file(root, md))

    orphans = orphan_subsystems(root)

    if dangling or orphans:
        for md, path in dangling:
            print(f"check_docs_links: {os.path.relpath(md, root)} references "
                  f"missing file: {path}", file=sys.stderr)
        for name in orphans:
            print(f"check_docs_links: src/{name}/ is not documented in "
                  f"DESIGN.md (orphan subsystem)", file=sys.stderr)
        return 1
    print(f"check_docs_links: {len(md_files)} markdown files OK, "
          f"no orphan subsystems")
    return 0


if __name__ == "__main__":
    sys.exit(main())
