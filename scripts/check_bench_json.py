#!/usr/bin/env python3
"""Validates a bench_baseline JSON file and flags performance regressions.

Usage:
    check_bench_json.py CANDIDATE.json [--baseline BASELINE.json]
                        [--threshold 0.20]

Schema checks (always):
  * top-level keys: schema_version (1..6), eps, n, rss_n, entries
  * every entry has dataset/algorithm/ns_per_update/max_memory_bytes/
    max_rank_error/avg_rank_error with sane types and ranges
  * all expected (dataset, algorithm) cells are present, none duplicated
  * observed max rank error respects the configured eps with the same
    slack the repo's integration tests allow (3x for the randomized
    algorithms whose guarantee is probabilistic, and RSS's width cap
    makes it advisory-only)
  * schema_version 2 additionally requires a parallel_ingest section: a
    mergeable algorithm, a known dataset, and a thread sweep starting at
    1 thread with positive throughput and merged accuracy within the
    algorithm's slack
  * schema_version 3 additionally requires a durability section (null in
    a -DSTREAMQ_DURABILITY=OFF build): a mode list containing the
    wal_off baseline plus at least one WAL-on mode whose wal_bytes and
    wal_syncs are positive; timings are sanity-checked, never gated
  * schema_version 4 additionally requires a trace_overhead section
    (null straight out of bench_baseline; the committed baseline carries
    the merged bench_trace_overhead lanes, see
    scripts/merge_trace_overhead.py): lanes "off" (a -DSTREAMQ_TRACE=OFF
    build), "idle" (compiled in, tracer disabled), and "recording"
    (tracer enabled, events flowing). This is the one timing this
    checker HARD-GATES: idle ns_per_update must stay within 5% of off --
    the whole point of the compiled-in flight recorder is that leaving
    it idle in production is free
  * schema_version 5 additionally requires a cluster section (null
    straight out of bench_baseline; the committed baseline carries the
    bench_cluster output, spliced with scripts/merge_cluster_bench.py):
    a node-count sweep of sustained cluster insert throughput and
    coordinator merge (query) latency, plus a failover point timing a
    killed node's recovery and resync. Timings are sanity-checked, never
    gated -- they depend on host thread scheduling
  * schema_version 6 additionally requires ns_per_update_batch (> 0) in
    every entry: the same stream fed through UpdateBatch in 4096-element
    spans. This is the second timing this checker HARD-GATES, and only on
    the single-thread lane (never on the multi-threaded sweeps, whose
    numbers ride on scheduling): on the uniform-random dataset, the
    amortised batch cost must stay under the BATCH_NS_GATES ceilings
    (Random/MRL99 <= 5 ns/item, DCS <= 300 ns/item) -- the hot-path
    speed campaign's acceptance bars
  * schema_version 7 additionally requires a net section (null straight
    out of bench_baseline; the committed baseline carries the bench_net
    output, spliced with scripts/merge_net_bench.py): a client-count
    sweep of sustained INSERT and BATCH_INSERT throughput plus query
    latency percentiles over TCP loopback. The third HARD GATE lives
    here: at the 1-client point, 4096-element BATCH_INSERT frames must
    sustain >= 10x the single-item INSERT inserts/sec -- the network
    tier's acceptance bar (a ratio on one host, so stable where absolute
    throughput is not)

Regression check (with --baseline): every cell's ns_per_update must stay
within (1 + threshold) of the baseline's. Comparing a file against itself
(as the `verify` target does) degenerates to the schema check. The
parallel_ingest sweep is schema-checked only -- thread-scheduling noise
makes its ns/update numbers unsuitable for a tight regression gate.

Every violation found is reported; the checker never stops at the first
problem (a schema bump touching several sections should need exactly one
fix-check iteration). Only an unreadable/unparsable input file aborts.

Exit code 0 = clean, 1 = any failure (messages on stderr).
"""

import argparse
import json
import sys

EXPECTED_ALGORITHMS = [
    "GKTheory",
    "GKAdaptive",
    "GKArray",
    "FastQDigest",
    "MRL99",
    "Random",
    "RSS",
    "DCM",
    "DCS",
    "Post",
]

EXPECTED_DATASETS = [
    "uniform-random",
    "normal-random",
    "uniform-sorted",
    "loguniform-random",
]

# Observed max rank error is allowed eps * slack. Deterministic
# comparison-based summaries must meet eps outright; randomized and
# universe-capped ones get the same latitude the integration tests grant.
ERROR_SLACK = {
    "GKTheory": 1.0,
    "GKAdaptive": 1.0,
    "GKArray": 1.0,
    "FastQDigest": 1.0,
    "MRL99": 3.0,
    "Random": 3.0,
    "DCM": 3.0,
    "DCS": 3.0,
    "Post": 3.0,
    "RSS": None,  # width-capped far below its 1/eps^2 theory: advisory
}


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    return 1


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def check_schema(doc, path):
    # Missing pieces are reported and then skipped over: every other check
    # that can still run does, so one pass surfaces every violation.
    errors = 0
    for key in ("schema_version", "eps", "n", "rss_n", "entries"):
        if key not in doc:
            errors += fail(f"{path}: missing top-level key '{key}'")
    version = doc.get("schema_version", 0)
    if "schema_version" in doc and version not in (1, 2, 3, 4, 5, 6, 7):
        errors += fail(f"{path}: unsupported schema_version {version!r}")
    eps = doc.get("eps", 0.0)
    if "eps" in doc and not (isinstance(eps, float) and 0.0 < eps < 1.0):
        errors += fail(f"{path}: eps must be a float in (0, 1), got {eps!r}")
    for key in ("n", "rss_n"):
        if key in doc and not (isinstance(doc[key], int) and doc[key] > 0):
            errors += fail(f"{path}: {key} must be a positive integer")
    if not isinstance(version, int):
        version = 0

    cells = {}
    entries = doc.get("entries")
    if not isinstance(entries, list):
        entries = []
    for i, entry in enumerate(entries):
        where = f"{path}: entries[{i}]"
        if not isinstance(entry, dict):
            errors += fail(f"{where}: not an object")
            continue
        missing = [
            k
            for k in (
                "dataset",
                "algorithm",
                "ns_per_update",
                "max_memory_bytes",
                "max_rank_error",
                "avg_rank_error",
            )
            if k not in entry
        ]
        if missing:
            errors += fail(f"{where}: missing keys {missing}")
            continue
        dataset, algorithm = entry["dataset"], entry["algorithm"]
        if dataset not in EXPECTED_DATASETS:
            errors += fail(f"{where}: unknown dataset {dataset!r}")
        if algorithm not in EXPECTED_ALGORITHMS:
            errors += fail(f"{where}: unknown algorithm {algorithm!r}")
        if not (isinstance(entry["ns_per_update"], (int, float)) and entry["ns_per_update"] > 0):
            errors += fail(f"{where}: ns_per_update must be > 0")
        if version >= 6:
            batch_ns = entry.get("ns_per_update_batch")
            if not (isinstance(batch_ns, (int, float)) and batch_ns > 0):
                errors += fail(
                    f"{where}: schema_version 6 requires ns_per_update_batch > 0"
                )
        if not (isinstance(entry["max_memory_bytes"], int) and entry["max_memory_bytes"] > 0):
            errors += fail(f"{where}: max_memory_bytes must be a positive integer")
        for k in ("max_rank_error", "avg_rank_error"):
            v = entry[k]
            if not (isinstance(v, (int, float)) and 0.0 <= v <= 1.0):
                errors += fail(f"{where}: {k} must be in [0, 1]")
        if entry["avg_rank_error"] > entry["max_rank_error"]:
            errors += fail(f"{where}: avg_rank_error exceeds max_rank_error")

        key = (dataset, algorithm)
        if key in cells:
            errors += fail(f"{where}: duplicate cell {key}")
        cells[key] = entry

        slack = ERROR_SLACK.get(algorithm)
        if slack is not None and entry["max_rank_error"] > eps * slack:
            errors += fail(
                f"{where}: max_rank_error {entry['max_rank_error']:.6f} "
                f"exceeds eps*{slack} = {eps * slack:.6f}"
            )

    if isinstance(doc.get("entries"), list):
        for dataset in EXPECTED_DATASETS:
            for algorithm in EXPECTED_ALGORITHMS:
                if (dataset, algorithm) not in cells:
                    errors += fail(f"{path}: missing cell ({dataset}, {algorithm})")

    if version >= 2:
        if "parallel_ingest" not in doc:
            errors += fail(f"{path}: schema_version 2 requires 'parallel_ingest'")
        else:
            errors += check_parallel_ingest(doc["parallel_ingest"], eps, path)
    if version >= 3:
        if "durability" not in doc:
            errors += fail(f"{path}: schema_version 3 requires 'durability'")
        else:
            errors += check_durability(doc["durability"], path)
    if version >= 4:
        if "trace_overhead" not in doc:
            errors += fail(f"{path}: schema_version 4 requires 'trace_overhead'")
        else:
            errors += check_trace_overhead(doc["trace_overhead"], path)
    if version >= 5:
        if "cluster" not in doc:
            errors += fail(f"{path}: schema_version 5 requires 'cluster'")
        else:
            errors += check_cluster(doc["cluster"], path)
    if version >= 6:
        errors += check_batch_gates(cells, path)
    if version >= 7:
        if "net" not in doc:
            errors += fail(f"{path}: schema_version 7 requires 'net'")
        else:
            errors += check_net(doc["net"], path)
    return errors, cells


# Hard single-thread ceilings on the amortised batched-update cost
# (ns/item through UpdateBatch in 4096-element spans), measured on the
# uniform-random dataset. These are the hot-path speed campaign's
# acceptance bars: the sampling summaries must amortise to a few ns/item
# (block striding skips whole sampling blocks in O(1)), and DCS -- one
# counter update per dyadic level, hashing vectorised -- must stay under
# 300 ns. Absolute ceilings, not relative ones: a host too slow to meet
# them is a host too slow to reproduce the paper's relative timings.
# Multi-threaded sections are NEVER ns-gated (scheduling noise).
BATCH_NS_GATES = {
    "Random": 5.0,
    "MRL99": 5.0,
    "DCS": 300.0,
}
BATCH_GATE_DATASET = "uniform-random"


def check_batch_gates(cells, path):
    errors = 0
    for algorithm, limit in BATCH_NS_GATES.items():
        entry = cells.get((BATCH_GATE_DATASET, algorithm))
        if entry is None:
            continue  # absence already reported by the schema pass
        batch_ns = entry.get("ns_per_update_batch")
        if not isinstance(batch_ns, (int, float)):
            continue  # type error already reported by the schema pass
        if batch_ns > limit:
            errors += fail(
                f"{path}: {algorithm} on {BATCH_GATE_DATASET} spends "
                f"{batch_ns:.2f} ns/item in batch mode "
                f"(hard ceiling {limit:.0f} ns)"
            )
    return errors


# Algorithms the ingest pipeline accepts: mergeable with a clone path.
PIPELINE_ALGORITHMS = ["Random", "MRL99", "FastQDigest", "DCM", "DCS"]


def check_parallel_ingest(section, eps, path):
    """Schema check of the parallel-ingest sweep (no regression gate)."""
    where = f"{path}: parallel_ingest"
    errors = 0
    if not isinstance(section, dict):
        return fail(f"{where}: not an object")
    for key in ("algorithm", "dataset", "n", "sweep"):
        if key not in section:
            errors += fail(f"{where}: missing key '{key}'")
    algorithm = section.get("algorithm")
    if "algorithm" in section and algorithm not in PIPELINE_ALGORITHMS:
        errors += fail(
            f"{where}: algorithm {algorithm!r} is not pipeline-capable "
            f"(expected one of {PIPELINE_ALGORITHMS})"
        )
    if "dataset" in section and section["dataset"] not in EXPECTED_DATASETS:
        errors += fail(f"{where}: unknown dataset {section['dataset']!r}")
    if "n" in section and not (isinstance(section["n"], int) and section["n"] > 0):
        errors += fail(f"{where}: n must be a positive integer")
    sweep = section.get("sweep")
    if sweep is None:
        return errors
    if not (isinstance(sweep, list) and sweep):
        return errors + fail(f"{where}: sweep must be a non-empty list")
    seen_threads = set()
    for i, point in enumerate(sweep):
        p_where = f"{where}.sweep[{i}]"
        if not isinstance(point, dict):
            errors += fail(f"{p_where}: not an object")
            continue
        missing = [
            k
            for k in (
                "threads",
                "ns_per_update",
                "updates_per_sec",
                "merged_max_rank_error",
                "peak_memory_bytes",
            )
            if k not in point
        ]
        if missing:
            errors += fail(f"{p_where}: missing keys {missing}")
            continue
        threads = point["threads"]
        if not (isinstance(threads, int) and threads > 0):
            errors += fail(f"{p_where}: threads must be a positive integer")
        elif threads in seen_threads:
            errors += fail(f"{p_where}: duplicate thread count {threads}")
        else:
            seen_threads.add(threads)
        for k in ("ns_per_update", "updates_per_sec"):
            if not (isinstance(point[k], (int, float)) and point[k] > 0):
                errors += fail(f"{p_where}: {k} must be > 0")
        err = point["merged_max_rank_error"]
        if not (isinstance(err, (int, float)) and 0.0 <= err <= 1.0):
            errors += fail(f"{p_where}: merged_max_rank_error must be in [0, 1]")
        else:
            slack = ERROR_SLACK.get(algorithm)
            if slack is not None and err > eps * slack:
                errors += fail(
                    f"{p_where}: merged_max_rank_error {err:.6f} exceeds "
                    f"eps*{slack} = {eps * slack:.6f}"
                )
        if not (
            isinstance(point["peak_memory_bytes"], int)
            and point["peak_memory_bytes"] > 0
        ):
            errors += fail(f"{p_where}: peak_memory_bytes must be positive")
    if 1 not in seen_threads:
        errors += fail(f"{where}: sweep must include the 1-thread baseline")
    return errors


def check_durability(section, path):
    """Schema check of the durability cost section (no regression gate).

    `null` is legal -- it is what a -DSTREAMQ_DURABILITY=OFF build emits --
    but the committed baseline is produced by the default ON build, so a
    null there would be regenerated-from-the-wrong-config and still obvious
    in review.
    """
    where = f"{path}: durability"
    errors = 0
    if section is None:
        return 0
    if not isinstance(section, dict):
        return fail(f"{where}: not an object (or null)")
    for key in ("algorithm", "dataset", "n", "modes"):
        if key not in section:
            errors += fail(f"{where}: missing key '{key}'")
    if "algorithm" in section and section["algorithm"] not in PIPELINE_ALGORITHMS:
        errors += fail(
            f"{where}: algorithm {section['algorithm']!r} is not "
            f"pipeline-capable (expected one of {PIPELINE_ALGORITHMS})"
        )
    if "dataset" in section and section["dataset"] not in EXPECTED_DATASETS:
        errors += fail(f"{where}: unknown dataset {section['dataset']!r}")
    if "n" in section and not (isinstance(section["n"], int) and section["n"] > 0):
        errors += fail(f"{where}: n must be a positive integer")
    modes = section.get("modes")
    if modes is None:
        return errors
    if not (isinstance(modes, list) and modes):
        return errors + fail(f"{where}: modes must be a non-empty list")
    seen_modes = set()
    wal_on_modes = 0
    for i, point in enumerate(modes):
        p_where = f"{where}.modes[{i}]"
        if not isinstance(point, dict):
            errors += fail(f"{p_where}: not an object")
            continue
        missing = [
            k
            for k in (
                "mode",
                "ns_per_update",
                "wal_bytes",
                "wal_syncs",
                "checkpoints",
                "recovery_ms",
                "replayed_updates",
            )
            if k not in point
        ]
        if missing:
            errors += fail(f"{p_where}: missing keys {missing}")
            continue
        mode = point["mode"]
        if not isinstance(mode, str) or not mode:
            errors += fail(f"{p_where}: mode must be a non-empty string")
            continue
        if mode in seen_modes:
            errors += fail(f"{p_where}: duplicate mode {mode!r}")
        seen_modes.add(mode)
        if not (isinstance(point["ns_per_update"], (int, float)) and point["ns_per_update"] > 0):
            errors += fail(f"{p_where}: ns_per_update must be > 0")
        for k in ("wal_bytes", "wal_syncs", "checkpoints", "replayed_updates"):
            if not (isinstance(point[k], int) and point[k] >= 0):
                errors += fail(f"{p_where}: {k} must be a non-negative integer")
        if not (isinstance(point["recovery_ms"], (int, float)) and point["recovery_ms"] >= 0):
            errors += fail(f"{p_where}: recovery_ms must be >= 0")
        if mode == "wal_off":
            for k in ("wal_bytes", "wal_syncs", "checkpoints"):
                if point.get(k):
                    errors += fail(f"{p_where}: wal_off must have {k} == 0")
        else:
            wal_on_modes += 1
            if not point.get("wal_bytes"):
                errors += fail(f"{p_where}: WAL-on mode must log bytes")
            if not point.get("wal_syncs"):
                errors += fail(f"{p_where}: WAL-on mode must sync at least once")
    if "wal_off" not in seen_modes:
        errors += fail(f"{where}: modes must include the wal_off baseline")
    if wal_on_modes == 0:
        errors += fail(f"{where}: modes must include at least one WAL-on mode")
    return errors


# Hard gate on compiled-in-but-idle tracing cost over a trace-OFF build.
# This is the PR's acceptance criterion, deliberately tighter than the
# generic 20% regression threshold: idle tracing is one relaxed atomic
# load + branch per macro site and must stay in the noise.
TRACE_IDLE_OVERHEAD_LIMIT = 0.05

TRACE_LANES = ("off", "idle", "recording")


def check_trace_overhead(section, path):
    """Schema + overhead gate for the trace_overhead section.

    `null` is legal -- bench_baseline emits it because one build cannot
    measure both sides of the comparison (the "off" lane needs a
    -DSTREAMQ_TRACE=OFF binary). The committed baseline must carry the
    real section, produced by running bench_trace_overhead in both builds
    and merging with scripts/merge_trace_overhead.py.
    """
    where = f"{path}: trace_overhead"
    errors = 0
    if section is None:
        return 0
    if not isinstance(section, dict):
        return fail(f"{where}: not an object (or null)")
    for key in ("n", "reps", "lanes"):
        if key not in section:
            errors += fail(f"{where}: missing key '{key}'")
    for key in ("n", "reps"):
        if key in section and not (isinstance(section[key], int) and section[key] > 0):
            errors += fail(f"{where}: {key} must be a positive integer")
    lanes = section.get("lanes")
    if lanes is None:
        return errors
    if not isinstance(lanes, dict):
        return errors + fail(f"{where}: lanes must be an object")
    for mode in lanes:
        if mode not in TRACE_LANES:
            errors += fail(f"{where}: unknown lane {mode!r}")
    for mode, lane in lanes.items():
        l_where = f"{where}.lanes.{mode}"
        if not isinstance(lane, dict):
            errors += fail(f"{l_where}: not an object")
            continue
        missing = [k for k in ("ns_per_update", "events_recorded") if k not in lane]
        if missing:
            errors += fail(f"{l_where}: missing keys {missing}")
            continue
        ns = lane["ns_per_update"]
        if not (isinstance(ns, (int, float)) and ns > 0):
            errors += fail(f"{l_where}: ns_per_update must be > 0")
        events = lane["events_recorded"]
        if not (isinstance(events, int) and events >= 0):
            errors += fail(f"{l_where}: events_recorded must be >= 0")
        elif mode == "recording" and events == 0:
            errors += fail(f"{l_where}: recording lane recorded no events")
        elif mode != "recording" and events != 0:
            errors += fail(f"{l_where}: lane {mode!r} must record 0 events")
    for mode in TRACE_LANES:
        if mode not in lanes:
            errors += fail(f"{where}: missing lane {mode!r}")
    # Gate whenever both operands are usable numbers, even if some other
    # lane had problems above -- one run reports everything.
    off_ns = lanes.get("off", {}).get("ns_per_update") if isinstance(
        lanes.get("off"), dict) else None
    idle_ns = lanes.get("idle", {}).get("ns_per_update") if isinstance(
        lanes.get("idle"), dict) else None
    if (isinstance(off_ns, (int, float)) and off_ns > 0
            and isinstance(idle_ns, (int, float))):
        limit = off_ns * (1.0 + TRACE_IDLE_OVERHEAD_LIMIT)
        if idle_ns > limit:
            errors += fail(
                f"{where}: idle tracing costs {idle_ns:.2f} ns/update vs "
                f"{off_ns:.2f} with tracing compiled out "
                f"(> {TRACE_IDLE_OVERHEAD_LIMIT:.0%} overhead)"
            )
    return errors


def check_cluster(section, path):
    """Schema check of the cluster section (no regression gate).

    `null` is legal -- bench_baseline always emits it because the cluster
    sweep is bench_cluster's own workload. The committed baseline must
    carry the real section, spliced in with scripts/merge_cluster_bench.py.
    Timings are structure/sanity-checked only: cluster throughput and
    recovery latency ride on worker-thread scheduling.
    """
    where = f"{path}: cluster"
    errors = 0
    if section is None:
        return 0
    if not isinstance(section, dict):
        return fail(f"{where}: not an object (or null)")
    for key in ("algorithm", "dataset", "n", "sweep", "failover"):
        if key not in section:
            errors += fail(f"{where}: missing key '{key}'")
    if "algorithm" in section and section["algorithm"] not in PIPELINE_ALGORITHMS:
        errors += fail(
            f"{where}: algorithm {section['algorithm']!r} is not "
            f"pipeline-capable (expected one of {PIPELINE_ALGORITHMS})"
        )
    if "dataset" in section and section["dataset"] not in EXPECTED_DATASETS:
        errors += fail(f"{where}: unknown dataset {section['dataset']!r}")
    if "n" in section and not (isinstance(section["n"], int) and section["n"] > 0):
        errors += fail(f"{where}: n must be a positive integer")
    errors += check_cluster_sweep(section.get("sweep"), where)
    errors += check_cluster_failover(section.get("failover"), where)
    return errors


def check_cluster_sweep(sweep, where):
    errors = 0
    if sweep is None:
        return errors
    if not (isinstance(sweep, list) and sweep):
        return errors + fail(f"{where}: sweep must be a non-empty list")
    seen_nodes = set()
    for i, point in enumerate(sweep):
        p_where = f"{where}.sweep[{i}]"
        if not isinstance(point, dict):
            errors += fail(f"{p_where}: not an object")
            continue
        missing = [
            k
            for k in (
                "nodes",
                "ns_per_append",
                "inserts_per_sec",
                "merge_latency_us",
                "coordinator_memory_bytes",
            )
            if k not in point
        ]
        if missing:
            errors += fail(f"{p_where}: missing keys {missing}")
            continue
        nodes = point["nodes"]
        if not (isinstance(nodes, int) and nodes > 0):
            errors += fail(f"{p_where}: nodes must be a positive integer")
        elif nodes in seen_nodes:
            errors += fail(f"{p_where}: duplicate node count {nodes}")
        else:
            seen_nodes.add(nodes)
        for k in ("ns_per_append", "inserts_per_sec", "merge_latency_us"):
            if not (isinstance(point[k], (int, float)) and point[k] > 0):
                errors += fail(f"{p_where}: {k} must be > 0")
        if not (
            isinstance(point["coordinator_memory_bytes"], int)
            and point["coordinator_memory_bytes"] > 0
        ):
            errors += fail(f"{p_where}: coordinator_memory_bytes must be positive")
    if 1 not in seen_nodes:
        errors += fail(f"{where}: sweep must include the 1-node baseline")
    return errors


def check_cluster_failover(failover, where):
    errors = 0
    if failover is None:
        return errors
    f_where = f"{where}.failover"
    if not isinstance(failover, dict):
        return errors + fail(f"{f_where}: not an object")
    missing = [
        k
        for k in ("nodes", "recovery_ms", "replayed_updates", "resync_ms")
        if k not in failover
    ]
    if missing:
        errors += fail(f"{f_where}: missing keys {missing}")
    if "nodes" in failover and not (
        isinstance(failover["nodes"], int) and failover["nodes"] > 1
    ):
        errors += fail(f"{f_where}: nodes must be an integer > 1 (a 1-node "
                       f"cluster has no survivors to fail over to)")
    for k in ("recovery_ms", "resync_ms"):
        if k in failover and not (
            isinstance(failover[k], (int, float)) and failover[k] >= 0
        ):
            errors += fail(f"{f_where}: {k} must be >= 0")
    if "replayed_updates" in failover and not (
        isinstance(failover["replayed_updates"], int)
        and failover["replayed_updates"] >= 0
    ):
        errors += fail(f"{f_where}: replayed_updates must be a non-negative "
                       f"integer")
    return errors


# Hard gate on the network tier's framing amortisation: at one client, a
# 4096-element BATCH_INSERT frame must sustain at least this multiple of
# the single-item INSERT inserts/sec over TCP loopback. A ratio, not an
# absolute: both lanes run in the same process on the same host, so the
# per-frame overheads (syscalls, header, CRC, response) divide out of any
# host-speed dependence.
NET_BATCH_SPEEDUP_GATE = 10.0


def check_net(section, path):
    """Schema + batch-speedup gate for the net section.

    `null` is legal -- bench_baseline always emits it (the network sweep
    is bench_net's own workload) and a -DSTREAMQ_NET=OFF build has nothing
    to measure. The committed baseline must carry the real section,
    spliced in with scripts/merge_net_bench.py. Query latencies are
    sanity-checked, never gated (scheduling noise); the batch-vs-single
    throughput RATIO at 1 client is hard-gated.
    """
    where = f"{path}: net"
    errors = 0
    if section is None:
        return 0
    if not isinstance(section, dict):
        return fail(f"{where}: not an object (or null)")
    for key in ("algorithm", "transport", "batch", "sweep"):
        if key not in section:
            errors += fail(f"{where}: missing key '{key}'")
    if "algorithm" in section and section["algorithm"] not in PIPELINE_ALGORITHMS:
        errors += fail(
            f"{where}: algorithm {section['algorithm']!r} is not "
            f"pipeline-capable (expected one of {PIPELINE_ALGORITHMS})"
        )
    if "transport" in section and not (
        isinstance(section["transport"], str) and section["transport"]
    ):
        errors += fail(f"{where}: transport must be a non-empty string")
    if "batch" in section and not (
        isinstance(section["batch"], int) and section["batch"] > 1
    ):
        errors += fail(f"{where}: batch must be an integer > 1")
    sweep = section.get("sweep")
    if sweep is None:
        return errors
    if not (isinstance(sweep, list) and sweep):
        return errors + fail(f"{where}: sweep must be a non-empty list")
    seen_clients = {}
    for i, point in enumerate(sweep):
        p_where = f"{where}.sweep[{i}]"
        if not isinstance(point, dict):
            errors += fail(f"{p_where}: not an object")
            continue
        missing = [
            k
            for k in (
                "clients",
                "insert_per_sec",
                "batch_insert_per_sec",
                "query_p50_us",
                "query_p99_us",
            )
            if k not in point
        ]
        if missing:
            errors += fail(f"{p_where}: missing keys {missing}")
            continue
        clients = point["clients"]
        if not (isinstance(clients, int) and clients > 0):
            errors += fail(f"{p_where}: clients must be a positive integer")
        elif clients in seen_clients:
            errors += fail(f"{p_where}: duplicate client count {clients}")
        else:
            seen_clients[clients] = point
        for k in (
            "insert_per_sec",
            "batch_insert_per_sec",
            "query_p50_us",
            "query_p99_us",
        ):
            if not (isinstance(point[k], (int, float)) and point[k] > 0):
                errors += fail(f"{p_where}: {k} must be > 0")
        if (
            isinstance(point["query_p50_us"], (int, float))
            and isinstance(point["query_p99_us"], (int, float))
            and point["query_p99_us"] < point["query_p50_us"]
        ):
            errors += fail(f"{p_where}: query_p99_us below query_p50_us")
    if 1 not in seen_clients:
        errors += fail(f"{where}: sweep must include the 1-client baseline")
    else:
        point = seen_clients[1]
        single = point.get("insert_per_sec")
        batch = point.get("batch_insert_per_sec")
        if (
            isinstance(single, (int, float))
            and single > 0
            and isinstance(batch, (int, float))
            and batch < NET_BATCH_SPEEDUP_GATE * single
        ):
            errors += fail(
                f"{where}: at 1 client, BATCH_INSERT sustains {batch:.0f} "
                f"inserts/sec vs {single:.0f} single-item "
                f"({batch / single:.1f}x; hard floor "
                f"{NET_BATCH_SPEEDUP_GATE:.0f}x)"
            )
    return errors


def check_regression(candidate, baseline, threshold):
    errors = 0
    for key, base_entry in baseline.items():
        cand_entry = candidate.get(key)
        if cand_entry is None:
            continue  # absence already reported by the schema pass
        base_ns = base_entry["ns_per_update"]
        cand_ns = cand_entry["ns_per_update"]
        if cand_ns > base_ns * (1.0 + threshold):
            errors += fail(
                f"regression: {key[1]} on {key[0]} went from "
                f"{base_ns:.1f} to {cand_ns:.1f} ns/update "
                f"(> {threshold:.0%} over baseline)"
            )
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", help="bench_baseline JSON to validate")
    parser.add_argument("--baseline", help="committed baseline to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional ns/update increase (default 0.20)",
    )
    args = parser.parse_args()

    try:
        candidate_doc = load(args.candidate)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.candidate}: {e}")

    errors, candidate_cells = check_schema(candidate_doc, args.candidate)

    if args.baseline and args.baseline != args.candidate:
        try:
            baseline_doc = load(args.baseline)
        except (OSError, json.JSONDecodeError) as e:
            return fail(f"{args.baseline}: {e}")
        base_errors, baseline_cells = check_schema(baseline_doc, args.baseline)
        errors += base_errors
        errors += check_regression(candidate_cells, baseline_cells, args.threshold)

    if errors:
        print(f"check_bench_json: {errors} problem(s)", file=sys.stderr)
        return 1
    print(f"check_bench_json: {args.candidate} OK "
          f"({len(candidate_cells)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
