#!/usr/bin/env python3
"""End-to-end validation of the Chrome trace-event export.

Usage:
    check_trace_json.py PATH/TO/trace_profile [--workdir DIR]

Drives the trace_profile example binary through three scenarios and
validates every produced file with Python's own json parser (the
acceptance bar: a file chrome://tracing or Perfetto would load):

  1. normal    -- a clean run; the dump must contain the full pipeline
                  vocabulary (push, worker_batch, sketch_update,
                  wal_append, wal_sync, checkpoint_write, view_flip,
                  query) with well-formed complete/instant events;
  2. wrapped   -- a tiny ring (--ring-events 64) wraps thousands of
                  times mid-span; the export must stay valid JSON,
                  report the overwrites, and mark orphaned span halves;
  3. crash     -- an armed storage fault (--crash N) kills a WAL writer;
                  the auto-dump must carry crash_reason "wal_dead", a
                  wal_dead instant naming the dead shard, and that same
                  shard's earlier wal_append AND wal_sync spans (the
                  flight-recorder promise: the history that explains the
                  crash is in the dump).

Exit code 0 = all scenarios pass, 1 = any failure (stderr says which).
"""

import argparse
import json
import os
import subprocess
import sys

FAILURES = 0


def fail(msg):
    global FAILURES
    FAILURES += 1
    print(f"check_trace_json: {msg}", file=sys.stderr)


def run_producer(binary, workdir, out_trace, extra):
    cmd = [
        binary,
        "--n", "60000",
        "--out-trace", out_trace,
        "--out-prom", os.path.join(workdir, "ignored.prom.txt"),
    ] + extra
    proc = subprocess.run(
        cmd, cwd=workdir, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}: {proc.stderr.strip()}")
        return False
    return True


def load_trace(path, scenario):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)  # the acceptance check itself
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{scenario}: {path}: {e}")
        return None
    for key in ("traceEvents", "otherData", "displayTimeUnit"):
        if key not in doc:
            fail(f"{scenario}: missing top-level key '{key}'")
            return None
    if not isinstance(doc["traceEvents"], list) or not doc["traceEvents"]:
        fail(f"{scenario}: traceEvents must be a non-empty list")
        return None
    return doc


def check_events_shape(doc, scenario):
    """Every event is a well-formed complete ('X') or instant ('i')."""
    for i, event in enumerate(doc["traceEvents"]):
        where = f"{scenario}: traceEvents[{i}]"
        for key in ("name", "cat", "ph", "ts", "pid", "tid", "args"):
            if key not in event:
                fail(f"{where}: missing key '{key}'")
                return
        if event["ph"] not in ("X", "i"):
            fail(f"{where}: unexpected phase {event['ph']!r}")
        if event["ph"] == "X":
            if "dur" not in event or event["dur"] < 0:
                fail(f"{where}: complete event without non-negative dur")
        if event["ts"] < 0:
            fail(f"{where}: negative timestamp")
        if "v" not in event["args"]:
            fail(f"{where}: args missing the 'v' payload")


def names(doc):
    return {event["name"] for event in doc["traceEvents"]}


def check_normal(binary, workdir):
    out = os.path.join(workdir, "normal.trace.json")
    if not run_producer(binary, workdir, out, []):
        return
    doc = load_trace(out, "normal")
    if doc is None:
        return
    check_events_shape(doc, "normal")
    required = {
        "push", "worker_batch", "sketch_update", "wal_append", "wal_sync",
        "checkpoint_write", "view_flip", "query",
    }
    missing = required - names(doc)
    if missing:
        fail(f"normal: trace lacks event names {sorted(missing)}")
    other = doc["otherData"]
    if other.get("clock") not in ("tsc_calibrated", "steady_clock"):
        fail(f"normal: unexpected clock {other.get('clock')!r}")
    if not other.get("nanos_per_tick", 0) > 0:
        fail("normal: nanos_per_tick must be positive")


def check_wrapped(binary, workdir):
    out = os.path.join(workdir, "wrapped.trace.json")
    if not run_producer(binary, workdir, out, ["--ring-events", "64"]):
        return
    doc = load_trace(out, "wrapped")
    if doc is None:
        return
    check_events_shape(doc, "wrapped")
    if not doc["otherData"].get("events_overwritten", 0) > 0:
        fail("wrapped: a 64-event ring over 60k updates must overwrite")
    # Wrap cuts spans in half; whenever it does, the half must be marked
    # (in args, where trace viewers surface it) rather than silently
    # dropped or emitted malformed. The deterministic orphan requirement
    # lives in the crash scenario -- a clean-cut wrap here is legal.
    check_orphan_markers(doc, "wrapped")


def orphans_of(doc):
    return [e for e in doc["traceEvents"] if "orphan" in e["args"]]


def check_orphan_markers(doc, scenario):
    for event in orphans_of(doc):
        if event["args"]["orphan"] not in ("begin", "end"):
            fail(f"{scenario}: bad orphan marker "
                 f"{event['args']['orphan']!r}")


def check_crash(binary, workdir):
    out = os.path.join(workdir, "crash.trace.json")
    if not run_producer(binary, workdir, out, ["--crash", "6"]):
        return
    doc = load_trace(out, "crash")
    if doc is None:
        return
    check_events_shape(doc, "crash")
    # The dump is written from inside the dying writer's still-open
    # wal/worker spans, so orphan "begin" halves are guaranteed here.
    if not orphans_of(doc):
        fail("crash: no orphaned span halves in the crash dump")
    check_orphan_markers(doc, "crash")
    if doc["otherData"].get("crash_reason") != "wal_dead":
        fail(
            f"crash: crash_reason is "
            f"{doc['otherData'].get('crash_reason')!r}, expected 'wal_dead'"
        )
    dead = [e for e in doc["traceEvents"] if e["name"] == "wal_dead"]
    if not dead:
        fail("crash: no wal_dead instant in the dump")
        return
    shard = dead[0]["args"]["v"]
    for wal_event in ("wal_append", "wal_sync"):
        shard_events = [
            e for e in doc["traceEvents"]
            if e["name"] == wal_event and e["args"]["v"] == shard
        ]
        if not shard_events:
            fail(
                f"crash: dump lacks {wal_event} spans for the crashed "
                f"shard {shard}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the trace_profile example")
    parser.add_argument(
        "--workdir", default=".",
        help="directory for produced trace files (default: cwd)",
    )
    args = parser.parse_args()
    binary = os.path.abspath(args.binary)
    workdir = os.path.abspath(args.workdir)
    os.makedirs(workdir, exist_ok=True)

    check_normal(binary, workdir)
    check_wrapped(binary, workdir)
    check_crash(binary, workdir)

    if FAILURES:
        print(f"check_trace_json: {FAILURES} problem(s)", file=sys.stderr)
        return 1
    print("check_trace_json: normal, wrapped, crash scenarios OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
