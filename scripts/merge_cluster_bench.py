#!/usr/bin/env python3
"""Merges bench_cluster's JSON output into BENCH_baseline.json.

bench_baseline always emits "cluster": null -- the cluster sweep
(throughput and coordinator merge latency vs node count, plus a failover
recovery point) is bench_cluster's own workload, kept out of the
single-process baseline run. This script splices the real numbers in:

    build/bench/bench_cluster --json /tmp/cluster.json
    scripts/merge_cluster_bench.py BENCH_baseline.json /tmp/cluster.json

The section file is bench_cluster's --json output:

    {"algorithm": ..., "dataset": ..., "n": ...,
     "sweep": [{"nodes": ..., "ns_per_append": ..., ...}, ...],
     "failover": {"nodes": ..., "recovery_ms": ..., ...}}

The merged document must pass check_bench_json.py's schema-v5 cluster
check before the baseline file is rewritten; a failing merge leaves it
untouched.

Exit code 0 = baseline updated, 1 = any failure (messages on stderr).
"""

import json
import sys

import check_bench_json


def fail(msg):
    print(f"merge_cluster_bench: {msg}", file=sys.stderr)
    return 1


def main():
    if len(sys.argv) != 3:
        return fail("usage: merge_cluster_bench.py BASELINE.json SECTION.json")
    baseline_path, section_path = sys.argv[1], sys.argv[2]

    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{baseline_path}: {e}")
    try:
        with open(section_path, "r", encoding="utf-8") as f:
            section = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{section_path}: {e}")

    if not isinstance(section, dict) or "sweep" not in section:
        return fail(f"{section_path}: not a bench_cluster section file")
    if doc.get("schema_version", 0) < 5:
        return fail(
            f"{baseline_path}: schema_version "
            f"{doc.get('schema_version')!r} predates the cluster section; "
            f"regenerate with the current bench_baseline first"
        )
    doc["cluster"] = section

    errors = check_bench_json.check_cluster(section, baseline_path)
    if errors:
        return fail("merged section failed validation; baseline unchanged")

    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    points = ", ".join(
        f"k={p['nodes']}:{p['inserts_per_sec']:.0f}/s"
        for p in section["sweep"]
    )
    print(f"merge_cluster_bench: {baseline_path} updated ({points})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
