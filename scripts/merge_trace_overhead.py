#!/usr/bin/env python3
"""Merges bench_trace_overhead lane JSON into BENCH_baseline.json.

The trace-overhead comparison spans two build configurations: the "off"
lane comes from a -DSTREAMQ_TRACE=OFF binary, while "idle" and
"recording" come from the default trace-ON binary. No single run of
bench_baseline can therefore produce the section itself -- it emits
"trace_overhead": null, and this script splices in the real numbers:

    # default (trace-ON) build
    build/bench/bench_trace_overhead --json > /tmp/lanes_on.json
    # trace-OFF build with benchmarks enabled
    build-trace-off/bench/bench_trace_overhead --json > /tmp/lanes_off.json
    scripts/merge_trace_overhead.py BENCH_baseline.json \\
        /tmp/lanes_on.json /tmp/lanes_off.json

Each lane file is bench_trace_overhead's --json output:

    {"n": ..., "reps": ..., "lanes": {"<mode>": {"ns_per_update": ...,
                                                 "events_recorded": ...}}}

Lane files are merged left to right (later files override same-named
lanes). The merged document must pass check_bench_json.py's schema-v4
gate -- including the idle-within-5%-of-off check -- before the baseline
file is rewritten; a failing merge leaves it untouched.

Exit code 0 = baseline updated, 1 = any failure (messages on stderr).
"""

import json
import sys

import check_bench_json


def fail(msg):
    print(f"merge_trace_overhead: {msg}", file=sys.stderr)
    return 1


def main():
    if len(sys.argv) < 3:
        return fail(
            "usage: merge_trace_overhead.py BASELINE.json LANES.json..."
        )
    baseline_path, lane_paths = sys.argv[1], sys.argv[2:]

    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{baseline_path}: {e}")

    merged = {"n": None, "reps": None, "lanes": {}}
    for path in lane_paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                part = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            return fail(f"{path}: {e}")
        if not isinstance(part, dict) or "lanes" not in part:
            return fail(f"{path}: not a bench_trace_overhead lane file")
        for key in ("n", "reps"):
            value = part.get(key)
            if merged[key] is None:
                merged[key] = value
            elif merged[key] != value:
                return fail(
                    f"{path}: {key}={value!r} disagrees with earlier "
                    f"lane file ({merged[key]!r}); rerun both builds with "
                    f"the same workload"
                )
        for mode, lane in part["lanes"].items():
            merged["lanes"][mode] = lane

    if doc.get("schema_version", 0) < 4:
        return fail(
            f"{baseline_path}: schema_version "
            f"{doc.get('schema_version')!r} predates trace_overhead; "
            f"regenerate with the current bench_baseline first"
        )
    doc["trace_overhead"] = merged

    errors = check_bench_json.check_trace_overhead(merged, baseline_path)
    if errors:
        return fail("merged section failed validation; baseline unchanged")

    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    lanes = ", ".join(
        f"{mode}={merged['lanes'][mode]['ns_per_update']:.2f}ns"
        for mode in check_bench_json.TRACE_LANES
        if mode in merged["lanes"]
    )
    print(f"merge_trace_overhead: {baseline_path} updated ({lanes})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
