#!/usr/bin/env python3
"""Line-format checker for the Prometheus text exposition export.

Usage:
    check_prometheus_text.py PATH/TO/trace_profile [--workdir DIR]
    check_prometheus_text.py --file METRICS.txt

Runs the trace_profile example (or reads an existing file with --file)
and validates the produced metrics dump against Prometheus text format
0.0.4, line by line:

  * every line is a '# HELP', '# TYPE', or sample line -- nothing else;
  * metric and family names match [a-zA-Z_:][a-zA-Z0-9_:]* and carry the
    streamq_ prefix;
  * every sample's family has a preceding # TYPE, and the declared kind
    matches the sample shape (counter families end in _total; histogram
    families emit _bucket/_sum/_count; summaries emit quantile labels);
  * histogram bucket counts are cumulative in le-order and end in a
    le="+Inf" bucket equal to _count;
  * label values are properly quoted, sample values parse as numbers.

Exit code 0 = clean, 1 = any failure (messages on stderr).
"""

import argparse
import math
import os
import re
import subprocess
import sys

FAILURES = 0

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary)$"
)
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (-?[0-9.eE+]+|[+-]Inf|NaN)$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"\\]*)"$')


def fail(msg):
    global FAILURES
    FAILURES += 1
    print(f"check_prometheus_text: {msg}", file=sys.stderr)


def parse_labels(raw, where):
    labels = {}
    if not raw:
        return labels
    for part in raw.split(","):
        m = LABEL_RE.match(part)
        if m is None:
            fail(f"{where}: malformed label {part!r}")
            continue
        labels[m.group(1)] = m.group(2)
    return labels


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def family_of(name, kind):
    """Maps a sample name to the family its # TYPE line declares."""
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    if kind == "summary":
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def check_text(text, path):
    types = {}          # family -> declared kind
    helps = set()
    samples = []        # (lineno, name, labels, value)
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"{path}:{lineno}"
        if not line:
            continue
        if line.startswith("#"):
            if HELP_RE.match(line):
                helps.add(HELP_RE.match(line).group(1))
                continue
            m = TYPE_RE.match(line)
            if m is None:
                fail(f"{where}: comment is neither valid HELP nor TYPE: "
                     f"{line!r}")
                continue
            family, kind = m.group(1), m.group(2)
            if family in types:
                fail(f"{where}: duplicate # TYPE for {family}")
            types[family] = kind
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"{where}: malformed sample line: {line!r}")
            continue
        name, raw_labels, raw_value = m.groups()
        if not name.startswith("streamq_"):
            fail(f"{where}: metric {name} lacks the streamq_ prefix")
        labels = parse_labels(raw_labels, where)
        try:
            value = parse_value(raw_value)
        except ValueError:
            fail(f"{where}: unparsable value {raw_value!r}")
            continue
        samples.append((lineno, name, labels, value))

    if not samples:
        fail(f"{path}: no samples at all")
        return

    # Every sample must belong to a typed family of matching shape.
    by_family = {}
    for lineno, name, labels, value in samples:
        where = f"{path}:{lineno}"
        owner = None
        for kind in ("histogram", "summary"):
            family = family_of(name, kind)
            if types.get(family) == kind:
                owner = (family, kind)
                break
        if owner is None and name in types:
            owner = (name, types[name])
        if owner is None:
            fail(f"{where}: sample {name} has no matching # TYPE line")
            continue
        family, kind = owner
        if kind == "counter":
            if not name.endswith("_total"):
                fail(f"{where}: counter sample {name} must end in _total")
            if value < 0:
                fail(f"{where}: counter {name} is negative")
        if kind == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                fail(f"{where}: histogram bucket without an le label")
        if kind == "summary" and name == family:
            if "quantile" not in labels:
                fail(f"{where}: summary sample without a quantile label")
            elif not 0.0 <= float(labels["quantile"]) <= 1.0:
                fail(f"{where}: quantile {labels['quantile']} out of range")
        by_family.setdefault((family, kind), []).append(
            (lineno, name, labels, value)
        )

    # Histogram internals: cumulative buckets ending at +Inf == _count.
    for (family, kind), rows in by_family.items():
        if kind != "histogram":
            continue
        buckets = [
            (parse_value(labels["le"]), value, lineno)
            for lineno, name, labels, value in rows
            if name == family + "_bucket" and "le" in labels
        ]
        counts = [v for _, name, _, v in rows if name == family + "_count"]
        if not buckets:
            fail(f"{path}: histogram {family} has no buckets")
            continue
        if sorted(b[0] for b in buckets) != [b[0] for b in buckets]:
            fail(f"{path}: histogram {family} buckets not in le-order")
        previous = -1.0
        for le, value, lineno in buckets:
            if value < previous:
                fail(f"{path}:{lineno}: histogram {family} bucket counts "
                     f"not cumulative")
            previous = value
        if buckets[-1][0] != math.inf:
            fail(f"{path}: histogram {family} lacks the +Inf bucket")
        elif counts and buckets[-1][1] != counts[0]:
            fail(f"{path}: histogram {family} +Inf bucket != _count")

    # The exporter pairs every histogram with a ValueAtQuantile summary.
    kinds = {kind for _, kind in by_family}
    for expected in ("counter", "gauge", "histogram", "summary"):
        if expected not in kinds:
            fail(f"{path}: export contains no {expected} family")
    for family in types:
        if family not in helps:
            fail(f"{path}: family {family} has # TYPE but no # HELP")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "binary", nargs="?",
        help="path to the trace_profile example (omit with --file)",
    )
    parser.add_argument("--file", help="validate an existing metrics file")
    parser.add_argument(
        "--workdir", default=".",
        help="directory for produced files (default: cwd)",
    )
    args = parser.parse_args()

    if args.file:
        path = args.file
    else:
        if not args.binary:
            print("check_prometheus_text: need a producer binary or --file",
                  file=sys.stderr)
            return 1
        workdir = os.path.abspath(args.workdir)
        os.makedirs(workdir, exist_ok=True)
        path = os.path.join(workdir, "metrics.prom.txt")
        cmd = [
            os.path.abspath(args.binary),
            "--n", "60000",
            "--out-trace", os.path.join(workdir, "metrics.trace.json"),
            "--out-prom", path,
        ]
        proc = subprocess.run(
            cmd, cwd=workdir, capture_output=True, text=True, timeout=600
        )
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}: "
                 f"{proc.stderr.strip()}")
            return 1

    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(str(e))
        return 1
    check_text(text, path)

    if FAILURES:
        print(f"check_prometheus_text: {FAILURES} problem(s)",
              file=sys.stderr)
        return 1
    print(f"check_prometheus_text: {path} OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
