#include "quantile/quantile_sketch.h"

namespace streamq {

const char* StreamqStatusName(StreamqStatus status) {
  switch (status) {
    case StreamqStatus::kOk:
      return "kOk";
    case StreamqStatus::kUnsupported:
      return "kUnsupported";
    case StreamqStatus::kOutOfUniverse:
      return "kOutOfUniverse";
    case StreamqStatus::kInvalidArgument:
      return "kInvalidArgument";
    case StreamqStatus::kMergeIncompatible:
      return "kMergeIncompatible";
  }
  return "unknown";
}

size_t QuantileSketch::InsertBatchImpl(const uint64_t* values, size_t n) {
  size_t rejected = 0;
  for (size_t i = 0; i < n; ++i) {
    if (InsertImpl(values[i]) != StreamqStatus::kOk) ++rejected;
  }
  return rejected;
}

StreamqStatus QuantileSketch::EraseImpl(uint64_t /*value*/) {
  // Cash-register summaries do not support deletions; refusing is part of
  // the contract, not a programming error, so no abort.
  return StreamqStatus::kUnsupported;
}

StreamqStatus QuantileSketch::MergeCompatibility(
    const QuantileSketch& /*other*/) const {
  // Non-mergeable summary types (the GK family and Post) refuse any merge;
  // like Erase on a cash-register summary this is contract, not error.
  return StreamqStatus::kUnsupported;
}

StreamqStatus QuantileSketch::MergeImpl(const QuantileSketch& /*other*/) {
  return StreamqStatus::kUnsupported;
}

std::vector<uint64_t> QuantileSketch::QueryManyImpl(
    const std::vector<double>& phis) {
  std::vector<uint64_t> out;
  out.reserve(phis.size());
  for (double phi : phis) out.push_back(QueryImpl(phi));
  return out;
}

}  // namespace streamq
