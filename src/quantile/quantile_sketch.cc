#include "quantile/quantile_sketch.h"

#include <cstdio>
#include <cstdlib>

namespace streamq {

void QuantileSketch::Erase(uint64_t /*value*/) {
  std::fprintf(stderr,
               "streamq: Erase() called on cash-register summary %s, which "
               "does not support deletions\n",
               Name().c_str());
  std::abort();
}

std::vector<uint64_t> QuantileSketch::QueryMany(const std::vector<double>& phis) {
  std::vector<uint64_t> out;
  out.reserve(phis.size());
  for (double phi : phis) out.push_back(Query(phi));
  return out;
}

}  // namespace streamq
