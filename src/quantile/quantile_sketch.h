// Common interface for all streaming quantile summaries in the library.

#ifndef STREAMQ_QUANTILE_QUANTILE_SKETCH_H_
#define STREAMQ_QUANTILE_QUANTILE_SKETCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace streamq {

/// Result of a sketch mutation or query. The library's single error-path
/// convention: operations that can be refused return a StreamqStatus
/// instead of aborting, and refuse WITHOUT mutating the sketch.
enum class StreamqStatus {
  kOk = 0,
  /// The operation is not supported by this summary's stream model
  /// (e.g. Erase on a cash-register summary).
  kUnsupported,
  /// The value lies outside the fixed universe [0, 2^log_u) of a
  /// fixed-universe summary; the update was rejected, not clamped.
  kOutOfUniverse,
  /// A parameter was malformed (e.g. phi outside [0, 1] or NaN).
  kInvalidArgument,
};

/// Human-readable status name (for logs and test failure messages).
const char* StreamqStatusName(StreamqStatus status);

/// Abstract streaming quantile summary.
///
/// All implementations process one update at a time and can answer quantile
/// queries at any point of the stream (no a-priori knowledge of n).
/// Query() is non-const because several summaries (GKArray, FastQDigest,
/// DCS+Post) flush buffers or run a finalisation pass on query; this never
/// changes the summarised multiset.
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Inserts one value. Fixed-universe (turnstile) summaries reject values
  /// outside their universe with kOutOfUniverse and leave the summary
  /// unchanged; comparison-based summaries accept any value.
  virtual StreamqStatus Insert(uint64_t value) = 0;

  /// Deletes one previously inserted occurrence of value. Only supported in
  /// the turnstile model; cash-register summaries return kUnsupported (the
  /// summary is unchanged — no abort).
  virtual StreamqStatus Erase(uint64_t value);

  /// Whether Erase is supported (turnstile model).
  virtual bool SupportsDeletion() const { return false; }

  /// Returns an eps-approximate phi-quantile of the elements currently
  /// summarised. phi is validated against [0, 1] (NaN rejected); an invalid
  /// phi yields 0 without consulting the summary.
  uint64_t Query(double phi) {
    if (!PhiIsValid(phi)) return 0;
    return QueryImpl(phi);
  }

  /// Batch quantile query; phis must be sorted ascending and each valid per
  /// Query(). Any invalid phi yields an all-zero result of the same length.
  std::vector<uint64_t> QueryMany(const std::vector<double>& phis) {
    for (double phi : phis) {
      if (!PhiIsValid(phi)) return std::vector<uint64_t>(phis.size(), 0);
    }
    return QueryManyImpl(phis);
  }

  /// The Query() validity test: phi in [0, 1], rejecting NaN.
  static bool PhiIsValid(double phi) { return phi >= 0.0 && phi <= 1.0; }

  /// Estimated rank (number of summarised elements < value). Exposed for
  /// diagnostics and tests; all summaries can answer it.
  virtual int64_t EstimateRank(uint64_t value) = 0;

  /// Number of elements currently summarised (insertions minus deletions).
  virtual uint64_t Count() const = 0;

  /// Current memory footprint under the paper's accounting conventions
  /// (see util/memory.h). Harnesses track the maximum over the stream.
  virtual size_t MemoryBytes() const = 0;

  /// Algorithm name as used in the paper's figures.
  virtual std::string Name() const = 0;

 protected:
  /// Quantile query with phi already validated.
  virtual uint64_t QueryImpl(double phi) = 0;

  /// Batch query with all phis validated. The default loops over
  /// QueryImpl(); summaries with linear-scan query paths override this with
  /// a single pass.
  virtual std::vector<uint64_t> QueryManyImpl(const std::vector<double>& phis);
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_QUANTILE_SKETCH_H_
