// Common interface for all streaming quantile summaries in the library.

#ifndef STREAMQ_QUANTILE_QUANTILE_SKETCH_H_
#define STREAMQ_QUANTILE_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/sketch_metrics.h"

namespace streamq {

/// Result of a sketch mutation or query. The library's single error-path
/// convention: operations that can be refused return a StreamqStatus
/// instead of aborting, and refuse WITHOUT mutating the sketch.
///
/// Contract (established in PR 1, "error-path semantics"):
///  * A non-kOk return guarantees the summary is bit-identical to its state
///    before the call -- callers may retry, skip, or surface the error
///    without resynchronising.
///  * No library operation aborts the process on bad input; aborts are
///    reserved for internal invariant violations (assert, debug builds).
///  * Statuses are ordered benign-to-worse only for reading convenience;
///    no code may rely on their numeric values (the serialised form is the
///    name, never the integer).
enum class StreamqStatus {
  kOk = 0,
  /// The operation is not supported by this summary's stream model
  /// (e.g. Erase on a cash-register summary).
  kUnsupported,
  /// The value lies outside the fixed universe [0, 2^log_u) of a
  /// fixed-universe summary; the update was rejected, not clamped.
  kOutOfUniverse,
  /// A parameter was malformed (e.g. phi outside [0, 1] or NaN).
  kInvalidArgument,
  /// The two summaries cannot be merged: different concrete types, or the
  /// same type built with incompatible parameters (eps, universe, depth,
  /// seed). Neither summary was modified.
  kMergeIncompatible,
};

/// Human-readable status name (for logs and test failure messages).
/// Never returns nullptr; out-of-range values map to "unknown".
const char* StreamqStatusName(StreamqStatus status);

/// Abstract streaming quantile summary.
///
/// All implementations process one update at a time and can answer quantile
/// queries at any point of the stream (no a-priori knowledge of n).
///
/// The public mutators and queries are non-virtual: they validate input,
/// maintain the per-sketch metrics (obs/sketch_metrics.h), and dispatch to
/// the protected *Impl virtuals that concrete summaries override. Query()
/// is non-const because several summaries (GKArray, FastQDigest, DCS+Post)
/// flush buffers or run a finalisation pass on query; this never changes
/// the summarised multiset.
///
/// Thread-safety: none. A sketch may be used from one thread at a time;
/// concurrent Insert/Query on the same instance is a data race. Distinct
/// instances are fully independent (no shared mutable state).
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Inserts one value.
  ///
  /// Preconditions: none (any uint64_t is a legal argument).
  /// Returns kOk on success. Fixed-universe (turnstile) summaries reject
  /// values outside their universe with kOutOfUniverse and leave the
  /// summary unchanged; comparison-based summaries accept any value.
  StreamqStatus Insert(uint64_t value) {
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kSketchUpdate, value);
    const StreamqStatus status = InsertImpl(value);
    if (status == StreamqStatus::kOk) {
      metrics_.inserts.Inc();
    } else {
      metrics_.rejected.Inc();
    }
    return status;
  }

  /// Inserts a batch of values, in order, as if by calling Insert() on each
  /// element of `values` front to back.
  ///
  /// Preconditions: none (any values, any length including 0).
  /// Returns the number of rejected elements (0 means the whole batch was
  /// accepted). Rejection is per element and independent -- a rejected
  /// element (e.g. out-of-universe on a fixed-universe summary) leaves the
  /// summary exactly as if that element had been skipped; the rest of the
  /// batch is still applied. The resulting summary state is bit-identical
  /// to the item-wise loop (same compaction points, same RNG draws), which
  /// the batch property tests assert for every algorithm.
  ///
  /// Metrics are counted once per batch (`values.size() - rejected` into
  /// inserts, `rejected` into rejected) and one trace instant covers the
  /// whole batch -- this, plus one virtual dispatch per batch instead of
  /// per item, is the NVI-level amortization; concrete summaries override
  /// InsertBatchImpl to amortize their interiors too (DESIGN.md section 14).
  size_t UpdateBatch(std::span<const uint64_t> values) {
    if (values.empty()) return 0;
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kSketchUpdate,
                          static_cast<uint64_t>(values.size()));
    const size_t rejected = InsertBatchImpl(values.data(), values.size());
    metrics_.inserts.Add(static_cast<uint64_t>(values.size() - rejected));
    if (rejected != 0) {
      metrics_.rejected.Add(static_cast<uint64_t>(rejected));
    }
    return rejected;
  }

  /// Deletes one previously inserted occurrence of value.
  ///
  /// Preconditions: `value` was inserted more often than erased (the
  /// turnstile model's "strict" assumption; violating it silently corrupts
  /// rank estimates but does not crash).
  /// Returns kOk on success. Only supported in the turnstile model:
  /// cash-register summaries return kUnsupported, fixed-universe summaries
  /// reject out-of-universe values with kOutOfUniverse -- in both cases the
  /// summary is unchanged (no abort).
  StreamqStatus Erase(uint64_t value) {
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kSketchUpdate, value);
    const StreamqStatus status = EraseImpl(value);
    if (status == StreamqStatus::kOk) {
      metrics_.erases.Inc();
    } else {
      metrics_.rejected.Inc();
    }
    return status;
  }

  /// Whether Erase is supported (turnstile model).
  virtual bool SupportsDeletion() const { return false; }

  // --- mergeability ----------------------------------------------------

  /// Whether this summary type supports Merge at all. Mergeable summaries
  /// (Random, MRL99, FastQDigest, and the dyadic turnstile family) combine
  /// with a compatible sibling into a summary of the union stream with the
  /// same eps*n_total error bound -- the property the parallel ingest
  /// subsystem (src/ingest/) is built on. The GK family is not mergeable:
  /// its (g, Delta) tuple invariants are tied to one linear scan of a
  /// single stream and repeated pairwise merging grows its error.
  virtual bool Mergeable() const { return false; }

  /// Whether Merge(other) would be accepted: both summaries mergeable, same
  /// concrete type, compatible construction parameters. Never mutates.
  bool CanMerge(const QuantileSketch& other) const {
    return &other != this &&
           MergeCompatibility(other) == StreamqStatus::kOk;
  }

  /// Folds `other` into this summary so that it summarises the union of
  /// both input streams. `other` is not modified; the metrics of `other`
  /// are not transferred (this summary's counters keep counting its own
  /// Insert/Merge calls).
  ///
  /// Returns kOk on success. A non-mergeable summary type returns
  /// kUnsupported; a mergeable one refuses a sibling of different concrete
  /// type or incompatible parameters (and self-merge) with
  /// kMergeIncompatible. Per the library error-path contract, a non-kOk
  /// return leaves this summary bit-identical to its prior state; rejected
  /// merges count into the `rejected` metric like any refused mutation.
  StreamqStatus Merge(const QuantileSketch& other) {
    StreamqStatus status = &other == this ? StreamqStatus::kMergeIncompatible
                                          : MergeCompatibility(other);
    if (status == StreamqStatus::kOk) status = MergeImpl(other);
    if (status == StreamqStatus::kOk) {
      metrics_.merges.Inc();
    } else {
      metrics_.rejected.Inc();
    }
    return status;
  }

  /// Deep copy of this summary (same parameters, same summarised state,
  /// fresh metrics). Supported by the mergeable summaries -- the parallel
  /// ingest workers clone their shard summaries to publish consistent
  /// snapshots -- and returns nullptr for every other type.
  virtual std::unique_ptr<QuantileSketch> Clone() const { return nullptr; }

  /// Returns an eps-approximate phi-quantile of the elements currently
  /// summarised.
  ///
  /// Preconditions: phi in [0, 1] (NaN rejected); an invalid phi yields 0
  /// without consulting the summary. An empty summary also yields 0 (there
  /// is nothing to report).
  uint64_t Query(double phi) {
    metrics_.queries.Inc();
    if (!PhiIsValid(phi)) return 0;
    return QueryImpl(phi);
  }

  /// Batch quantile query.
  ///
  /// Preconditions: phis sorted ascending, each valid per Query(). Any
  /// invalid phi yields an all-zero result of the same length; an unsorted
  /// list yields unspecified (but in-range) answers on the summaries with
  /// single-pass batch paths.
  std::vector<uint64_t> QueryMany(const std::vector<double>& phis) {
    metrics_.queries.Inc();
    for (double phi : phis) {
      if (!PhiIsValid(phi)) return std::vector<uint64_t>(phis.size(), 0);
    }
    return QueryManyImpl(phis);
  }

  /// The Query() validity test: phi in [0, 1], rejecting NaN.
  static bool PhiIsValid(double phi) { return phi >= 0.0 && phi <= 1.0; }

  /// Estimated rank (number of summarised elements < value). Exposed for
  /// diagnostics and tests; all summaries can answer it. No preconditions;
  /// out-of-universe values clamp naturally (rank 0 or n).
  virtual int64_t EstimateRank(uint64_t value) = 0;

  /// Number of elements currently summarised (insertions minus deletions).
  virtual uint64_t Count() const = 0;

  /// Current memory footprint under the paper's accounting conventions
  /// (see util/memory.h). Harnesses track the maximum over the stream.
  virtual size_t MemoryBytes() const = 0;

  /// Algorithm name as used in the paper's figures. Stable across versions;
  /// parseable back through ParseAlgorithm() for the factory-built sketches.
  virtual std::string Name() const = 0;

  // --- observability (src/obs/) ---------------------------------------

  /// This sketch's live metrics (update/query/compaction counters; see
  /// obs/sketch_metrics.h). In a -DSTREAMQ_METRICS=OFF build the returned
  /// object is a no-op stub whose reads are all zero.
  const obs::SketchMetrics& metrics() const { return metrics_; }

  /// Publishes the metrics into `registry` under "<prefix>.<metric>",
  /// sampling MemoryBytes() into the memory gauge at the same moment.
  /// Cold path: allocates registry entries on first publish of a prefix.
  void PublishMetrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) {
    metrics_.memory_bytes.Set(static_cast<int64_t>(MemoryBytes()));
    metrics_.PublishTo(registry, prefix);
  }

 protected:
  /// Insertion with metrics accounting handled by the caller (Insert).
  virtual StreamqStatus InsertImpl(uint64_t value) = 0;

  /// Batch insertion with metrics accounting handled by the caller
  /// (UpdateBatch); returns the number of rejected elements. The default
  /// loops over InsertImpl -- already amortizing dispatch and metrics --
  /// and overrides must preserve bit-identity with that loop (same state,
  /// same compaction boundaries, same RNG consumption). `n` is >= 1.
  virtual size_t InsertBatchImpl(const uint64_t* values, size_t n);

  /// Deletion; the default refuses (cash-register model).
  virtual StreamqStatus EraseImpl(uint64_t value);

  /// Full merge-compatibility check, called by Merge() before MergeImpl and
  /// by CanMerge(). The default refuses (non-mergeable summary). Overrides
  /// must check everything MergeImpl relies on, so that an accepted merge
  /// cannot fail halfway (which would violate the no-mutation-on-error
  /// contract). Self-merge is rejected by the non-virtual callers before
  /// this hook runs, so overrides may assume `&other != this`.
  virtual StreamqStatus MergeCompatibility(const QuantileSketch& other) const;

  /// The merge itself, with compatibility already verified by
  /// MergeCompatibility. The default refuses with kUnsupported.
  virtual StreamqStatus MergeImpl(const QuantileSketch& other);

  /// Quantile query with phi already validated.
  virtual uint64_t QueryImpl(double phi) = 0;

  /// Batch query with all phis validated. The default loops over
  /// QueryImpl(); summaries with linear-scan query paths override this with
  /// a single pass.
  virtual std::vector<uint64_t> QueryManyImpl(const std::vector<double>& phis);

  /// Hook for concrete summaries (and the template impls they wrap) to
  /// record compaction events into the shared metrics object. The pointer
  /// is stable for the sketch's lifetime.
  obs::SketchMetrics* mutable_metrics() { return &metrics_; }

 private:
  obs::SketchMetrics metrics_;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_QUANTILE_SKETCH_H_
