// Common interface for all streaming quantile summaries in the library.

#ifndef STREAMQ_QUANTILE_QUANTILE_SKETCH_H_
#define STREAMQ_QUANTILE_QUANTILE_SKETCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace streamq {

/// Abstract streaming quantile summary.
///
/// All implementations process one update at a time and can answer quantile
/// queries at any point of the stream (no a-priori knowledge of n).
/// Query() is non-const because several summaries (GKArray, FastQDigest,
/// DCS+Post) flush buffers or run a finalisation pass on query; this never
/// changes the summarised multiset.
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Inserts one value.
  virtual void Insert(uint64_t value) = 0;

  /// Deletes one previously inserted occurrence of value. Only supported in
  /// the turnstile model; cash-register summaries abort.
  virtual void Erase(uint64_t value);

  /// Whether Erase is supported (turnstile model).
  virtual bool SupportsDeletion() const { return false; }

  /// Returns an eps-approximate phi-quantile of the elements currently
  /// summarised, 0 < phi < 1.
  virtual uint64_t Query(double phi) = 0;

  /// Batch quantile query; phis must be sorted ascending. The default loops
  /// over Query(); summaries with linear-scan query paths override this with
  /// a single pass.
  virtual std::vector<uint64_t> QueryMany(const std::vector<double>& phis);

  /// Estimated rank (number of summarised elements < value). Exposed for
  /// diagnostics and tests; all summaries can answer it.
  virtual int64_t EstimateRank(uint64_t value) = 0;

  /// Number of elements currently summarised (insertions minus deletions).
  virtual uint64_t Count() const = 0;

  /// Current memory footprint under the paper's accounting conventions
  /// (see util/memory.h). Harnesses track the maximum over the stream.
  virtual size_t MemoryBytes() const = 0;

  /// Algorithm name as used in the paper's figures.
  virtual std::string Name() const = 0;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_QUANTILE_SKETCH_H_
