// Factory constructing any of the paper's algorithms from a uniform config,
// used by the benches, examples, and integration tests.

#ifndef STREAMQ_QUANTILE_FACTORY_H_
#define STREAMQ_QUANTILE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "quantile/quantile_sketch.h"

namespace streamq {

/// The algorithms of Table 1 (plus the Post variant of DCS).
enum class Algorithm {
  kGkTheory,
  kGkAdaptive,
  kGkArray,
  kFastQDigest,
  kMrl99,
  kRandom,
  kRss,
  kDcm,
  kDcs,
  kDcsPost,
};

/// Display name matching the paper's figures.
std::string AlgorithmName(Algorithm algorithm);

/// Parses a display name (case-sensitive, as printed by AlgorithmName).
bool ParseAlgorithm(const std::string& name, Algorithm* out);

struct SketchConfig {
  Algorithm algorithm = Algorithm::kRandom;
  double eps = 0.001;
  /// Universe is [0, 2^log_universe); required by the fixed-universe
  /// algorithms, ignored by the comparison-based ones.
  int log_universe = 32;
  /// Rows per sketch for the dyadic algorithms (paper tuning: 7).
  int depth = 7;
  /// Truncation constant for DCS+Post (paper tuning: 0.1).
  double eta = 0.1;
  /// RSS per-level width cap (its natural 1/eps^2 width is impractical).
  uint64_t rss_width_cap = 1 << 14;
  uint64_t seed = 1;
};

/// Builds the configured sketch.
std::unique_ptr<QuantileSketch> MakeSketch(const SketchConfig& config);

/// All cash-register algorithms, in the paper's order.
std::vector<Algorithm> CashRegisterAlgorithms();
/// All turnstile algorithms, in the paper's order.
std::vector<Algorithm> TurnstileAlgorithms();

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_FACTORY_H_
