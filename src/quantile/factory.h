// Factory constructing any of the paper's algorithms from a uniform config,
// used by the benches, examples, and integration tests.
//
// The factory is the supported way to build sketches generically (sweeps
// over algorithms, CLI flags, config files); code targeting one specific
// algorithm can equally construct the concrete class (cash_register.h,
// fast_qdigest.h, dyadic_quantile.h, post/post_process.h) directly.

#ifndef STREAMQ_QUANTILE_FACTORY_H_
#define STREAMQ_QUANTILE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "quantile/quantile_sketch.h"

namespace streamq {

/// The algorithms of Table 1 (plus the Post variant of DCS).
enum class Algorithm {
  kGkTheory,
  kGkAdaptive,
  kGkArray,
  kFastQDigest,
  kMrl99,
  kRandom,
  kRss,
  kDcm,
  kDcs,
  kDcsPost,
};

/// Display name matching the paper's figures ("GKArray", "DCS", ...).
/// Total: every enumerator has a name, and the mapping is stable across
/// versions (bench JSON and serialized references rely on it).
std::string AlgorithmName(Algorithm algorithm);

/// Parses a display name (case-sensitive, exactly as printed by
/// AlgorithmName). Returns false -- leaving *out untouched -- for any
/// other string.
bool ParseAlgorithm(const std::string& name, Algorithm* out);

/// Uniform construction parameters. Every field has a sensible default;
/// fields an algorithm does not use are ignored (a config is never
/// rejected for carrying an irrelevant knob).
struct SketchConfig {
  Algorithm algorithm = Algorithm::kRandom;
  /// Target rank-error fraction: answers are within eps * n ranks.
  /// Must be in (0, 1); the deterministic comparison-based summaries meet
  /// it outright, the randomized ones with constant probability per query.
  double eps = 0.001;
  /// Universe is [0, 2^log_universe); required by the fixed-universe
  /// algorithms, ignored by the comparison-based ones.
  int log_universe = 32;
  /// Rows per sketch for the dyadic algorithms (paper tuning: 7).
  int depth = 7;
  /// Truncation constant for DCS+Post (paper tuning: 0.1).
  double eta = 0.1;
  /// RSS per-level width cap (its natural 1/eps^2 width is impractical).
  uint64_t rss_width_cap = 1 << 14;
  /// Seed for all randomness of the randomized algorithms. Two sketches
  /// built from equal configs behave bit-identically; deterministic
  /// algorithms ignore it.
  uint64_t seed = 1;
};

/// Builds the configured sketch, never nullptr. The returned summary is
/// freshly constructed (Count() == 0) with its metrics zeroed; it is not
/// thread-safe (see QuantileSketch). Invalid numeric parameters are the
/// caller's responsibility -- the factory forwards them unchecked, as the
/// constructors clamp or assert per their own documented contracts.
std::unique_ptr<QuantileSketch> MakeSketch(const SketchConfig& config);

/// All cash-register algorithms, in the paper's order.
std::vector<Algorithm> CashRegisterAlgorithms();
/// All turnstile algorithms, in the paper's order.
std::vector<Algorithm> TurnstileAlgorithms();

/// Serializes `sketch` into its CRC32C-framed snapshot (the same per-type
/// format the distributed monitor ships), dispatching on the concrete type.
/// Returns "" for the types with no restore path (RSS, DCS+Post) -- exactly
/// the types the ingest pipeline already refuses, so every pipeline-capable
/// sketch serializes.
std::string SerializeSketch(const QuantileSketch& sketch);

/// Rebuilds a sketch from a frame produced by SerializeSketch, dispatching
/// on the frame's type tag. Returns nullptr -- never a partially restored
/// sketch -- on unknown/unsupported type tags or any frame/payload
/// corruption (the per-type Deserialize validates the CRC and requires an
/// exact parse).
std::unique_ptr<QuantileSketch> DeserializeSketch(const std::string& frame);

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_FACTORY_H_
