// MRL99: the randomized quantile summary of Manku, Rajagopalan and Lindsay
// (SIGMOD'99), as evaluated by the paper (section 1.2.1 / 2.2).
//
// The algorithm keeps b buffers of k elements, each carrying an integer
// weight. NEW fills an empty buffer with k elements sampled from the stream
// (one uniform choice per block of 2^l elements at the current active level
// l, weight 2^l), exactly as in Random. COLLAPSE fires when every buffer is
// full: all buffers at the lowest level are merged into one buffer whose
// weight W is the sum of the input weights. In the weighted-expanded sorted
// sequence of the inputs, the output keeps the k elements at positions
// offset + j*W (offset uniform in [0, W)), i.e. evenly spaced selection with
// a random start -- MRL99's key difference from Random's per-pair coin flip.
// The output buffer sits one level above the lowest input level.
//
// Parameters: the original paper picks (b, k, h) by solving a small
// optimisation problem to minimise b*k subject to its coverage constraint;
// following its O((1/eps) log^2(1/eps)) space shape we use b = h+1 buffers
// with h = ceil(log2(1/eps)) and k = ceil((1/(2 eps)) * log2(1/eps)).

#ifndef STREAMQ_QUANTILE_MRL99_IMPL_H_
#define STREAMQ_QUANTILE_MRL99_IMPL_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "obs/sketch_metrics.h"
#include "quantile/weighted_sample.h"
#include "util/bits.h"
#include "util/memory.h"
#include "util/radix_sort.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/simd.h"

namespace streamq {

template <typename T, typename Less = std::less<T>>
class Mrl99Impl {
 public:
  Mrl99Impl(double eps, uint64_t seed) : rng_(seed) {
    const double inv_eps = 1.0 / eps;
    h_ = std::max(1, CeilLog2(static_cast<uint64_t>(std::ceil(inv_eps))));
    k_ = std::max<size_t>(8, static_cast<size_t>(
                                 std::ceil(0.5 * inv_eps * std::max(1, h_))));
    buffers_.resize(static_cast<size_t>(h_) + 1);
    for (Buffer& b : buffers_) b.data.reserve(k_);
    scratch_pool_.reserve(2 * k_);
    scratch_pool2_.reserve(2 * k_);
  }

  void Insert(const T& v) {
    ++n_;
    if (fill_ < 0) AcquireFillBuffer();
    Buffer& buf = buffers_[fill_];
    // One uniform choice per weight-sized block, drawn up front (see
    // random_impl.h). The fill buffer always has weight 1 << level
    // (AcquireFillBuffer), so the pow2 draw is exact.
    if (block_seen_ == 0) {
      assert(buf.weight == int64_t{1} << buf.level);
      block_pick_ = rng_.BelowPow2(static_cast<unsigned>(buf.level));
    }
    if (block_seen_ == block_pick_) block_choice_ = v;
    ++block_seen_;
    if (block_seen_ == static_cast<uint64_t>(buf.weight)) {
      buf.data.push_back(block_choice_);
      block_seen_ = 0;
      if (buf.data.size() == k_) CompleteFill(buf);
    }
  }

  /// Inserts values[0..n) in order, bit-identically to the item-wise loop
  /// (same buffer fills, same PRNG draws) in O(1) work per weighted block:
  /// only the picked element of each block is read, as in
  /// RandomSketchImpl::InsertBatch.
  void InsertBatch(const T* values, size_t n) {
    size_t i = 0;
    while (i < n) {
      if (fill_ < 0) {
        // Mirror the item-wise ordering: AcquireFillBuffer runs after the
        // ++n_ of its triggering element (ActiveLevel reads n_).
        ++n_;
        AcquireFillBuffer();
        --n_;
      }
      Buffer& buf = buffers_[fill_];
      const uint64_t block = static_cast<uint64_t>(buf.weight);
      if (block_seen_ == 0 && n - i >= block) {
        // Whole-block fast loop, as in RandomSketchImpl::InsertBatch: one
        // register-resident PRNG draw and one element load per complete
        // block, with the draw order matching the item-wise loop exactly.
        const unsigned lvl = static_cast<unsigned>(buf.level);
        const size_t nb = static_cast<size_t>(std::min<uint64_t>(
            (n - i) >> lvl, static_cast<uint64_t>(k_ - buf.data.size())));
        const size_t old_size = buf.data.size();
        buf.data.resize(old_size + nb);
        T* out = buf.data.data() + old_size;
        Xoshiro256 rng = rng_;  // keep the generator state in registers
        uint64_t pick = 0;
        for (size_t j = 0; j < nb; ++j) {
          pick = rng.BelowPow2(lvl);
          out[j] = values[i + (j << lvl) + pick];
        }
        rng_ = rng;
        block_pick_ = pick;
        block_choice_ = out[nb - 1];
        i += nb << lvl;
        n_ += nb << lvl;
        if (buf.data.size() == k_) CompleteFill(buf);
        continue;  // partial trailing block falls through to the slow path
      }
      if (block_seen_ == 0) {
        block_pick_ = rng_.BelowPow2(static_cast<unsigned>(buf.level));
      }
      const uint64_t take = std::min<uint64_t>(block - block_seen_,
                                               static_cast<uint64_t>(n - i));
      // One pick test per span; unsigned wrap rejects already-passed picks.
      const uint64_t rel = block_pick_ - block_seen_;
      if (rel < take) block_choice_ = values[i + rel];
      block_seen_ += take;
      n_ += take;
      i += static_cast<size_t>(take);
      if (block_seen_ == block) {
        buf.data.push_back(block_choice_);
        block_seen_ = 0;
        if (buf.data.size() == k_) CompleteFill(buf);
      }
    }
  }

  T Query(double phi) const {
    WeightedSampleView<T, Less> view(Snapshot());
    if (view.Empty()) return T{};  // empty summary: nothing to report
    return view.Quantile(phi * static_cast<double>(n_));
  }

  std::vector<T> QueryMany(const std::vector<double>& phis) const {
    WeightedSampleView<T, Less> view(Snapshot());
    std::vector<T> out;
    if (view.Empty()) {
      out.assign(phis.size(), T{});
      return out;
    }
    out.reserve(phis.size());
    for (double phi : phis) out.push_back(view.Quantile(phi * static_cast<double>(n_)));
    return out;
  }

  int64_t EstimateRank(const T& v) const {
    return WeightedSampleView<T, Less>(Snapshot()).EstimateRank(v);
  }

  uint64_t Count() const { return n_; }

  size_t MemoryBytes() const {
    return buffers_.size() * (k_ * kBytesPerElement + 3 * kBytesPerCounter) +
           kBytesPerElement + 2 * kBytesPerCounter;
  }

  size_t buffer_size() const { return k_; }
  int height() const { return h_; }

  /// Optional instrumentation hook (owned by the wrapping QuantileSketch);
  /// never serialized, may stay null.
  void set_metrics(obs::SketchMetrics* metrics) { metrics_ = metrics; }

  /// Snapshot to a byte buffer, including the PRNG state (see
  /// random_impl.h for the format conventions).
  void Serialize(SerdeWriter& w) const
    requires std::is_trivially_copyable_v<T>
  {
    w.U32(static_cast<uint32_t>(h_));
    w.U64(k_);
    w.U64(n_);
    w.U32(static_cast<uint32_t>(fill_));
    w.U64(block_seen_);
    w.U64(block_pick_);
    w.Pod(block_choice_);
    w.Pod(rng_.GetState());
    w.U64(buffers_.size());
    for (const Buffer& b : buffers_) {
      w.I64(b.weight);
      w.U32(static_cast<uint32_t>(b.level));
      w.U32(b.full ? 1 : 0);
      w.PodVector(b.data);
    }
  }

  /// Restores a snapshot; returns false on corrupt input.
  bool Deserialize(SerdeReader& r)
    requires std::is_trivially_copyable_v<T>
  {
    uint32_t h = 0, fill = 0;
    uint64_t k = 0;
    Xoshiro256::State state{};
    if (!r.U32(&h) || !r.U64(&k) || !r.U64(&n_) || !r.U32(&fill) ||
        !r.U64(&block_seen_) || !r.U64(&block_pick_) ||
        !r.Pod(&block_choice_) || !r.Pod(&state)) {
      return false;
    }
    h_ = static_cast<int>(h);
    k_ = k;
    fill_ = static_cast<int32_t>(fill);
    rng_.SetState(state);
    uint64_t count = 0;
    if (!r.U64(&count) || count > 4096) return false;
    buffers_.assign(count, Buffer{});
    for (Buffer& b : buffers_) {
      uint32_t level = 0, full = 0;
      if (!r.I64(&b.weight) || !r.U32(&level) || !r.U32(&full) ||
          !r.PodVector(&b.data) || b.weight <= 0) {
        return false;
      }
      b.level = static_cast<int>(level);
      b.full = full != 0;
    }
    return fill_ < static_cast<int>(buffers_.size());
  }

  /// Folds `other` (built with the same eps, hence the same h and k) into
  /// this summary: the buffer sets of both summaries are pooled level-wise
  /// and COLLAPSE passes (the same evenly-spaced weighted selection as the
  /// streaming path) run until the pooled set respects the buffer budget,
  /// which preserves MRL99's coverage guarantee on the union stream (the
  /// mergeable-summary argument of Agarwal et al.). The other summary's
  /// in-progress sampling block (one element standing for up to 2^l inputs)
  /// is re-inserted by repetition, keeping counts exact at a rank error of
  /// at most its weight = O(eps n), as in RandomSketchImpl::Merge.
  void Merge(const Mrl99Impl& other) {
    assert(other.k_ == k_ && other.h_ == h_);
    // Pool every non-empty buffer from both summaries. Partially filled
    // buffers are declared full at their current size; their weight stays
    // the per-element block weight of their level.
    std::vector<Buffer> pool;
    for (Buffer& b : buffers_) {
      if (!b.data.empty()) pool.push_back(std::move(b));
      b = Buffer{};
    }
    for (const Buffer& b : other.buffers_) {
      if (!b.data.empty()) pool.push_back(b);
    }
    n_ += other.n_;
    fill_ = -1;
    block_seen_ = 0;
    for (Buffer& b : pool) {
      std::sort(b.data.begin(), b.data.end(), Less());
      b.full = true;
    }
    // Collapse lowest-level groups until an empty slot remains for filling.
    while (pool.size() + 1 > buffers_.size()) {
      STREAMQ_COMPACTION_EVENT(metrics_, k_);
      std::vector<int> chosen;
      const int out_level = SelectCollapseGroup(pool, &chosen);
      CollapseGroup(pool, chosen, out_level);
      // CollapseGroup empties every chosen buffer but the first; drop them.
      pool.erase(std::remove_if(pool.begin(), pool.end(),
                                [](const Buffer& b) { return b.Empty(); }),
                 pool.end());
    }
    for (size_t i = 0; i < pool.size(); ++i) buffers_[i] = std::move(pool[i]);

    // Re-insert the other summary's in-progress block by repetition (only
    // meaningful once that block has committed to its sample).
    if (other.fill_ >= 0 && other.block_seen_ > other.block_pick_) {
      n_ -= other.block_seen_;  // Insert() re-counts them
      for (uint64_t i = 0; i < other.block_seen_; ++i) {
        Insert(other.block_choice_);
      }
    }
  }

 private:
  struct Buffer {
    std::vector<T> data;
    int64_t weight = 1;
    int level = 0;
    bool full = false;
    bool Empty() const { return data.empty() && !full; }
  };

  int ActiveLevel() const {
    const double denom = static_cast<double>(k_) * std::pow(2.0, h_ - 1);
    const double ratio = static_cast<double>(n_) / denom;
    if (ratio <= 1.0) return 0;
    return CeilLog2(static_cast<uint64_t>(std::ceil(ratio)));
  }

  bool AnyEmpty() const {
    for (const Buffer& b : buffers_) {
      if (b.Empty()) return true;
    }
    return false;
  }

  // Sorts a completed buffer: radix sort for uint64 keys (identical
  // ascending output, see util/radix_sort.h), comparison sort otherwise.
  // The COLLAPSE scratch doubles as radix scratch -- it is idle here.
  void SortBuffer(std::vector<T>& data) {
    if constexpr (std::is_same_v<T, uint64_t> &&
                  std::is_same_v<Less, std::less<uint64_t>>) {
      scratch_pool_.resize(data.size());
      RadixSortU64(data.data(), data.size(), scratch_pool_.data());
    } else {
      std::sort(data.begin(), data.end(), Less());
    }
  }

  // Fill buffer reached k_ elements: sort it, mark it full, and collapse if
  // every buffer is now occupied. Shared by Insert and both InsertBatch
  // paths so the three sites cannot drift.
  void CompleteFill(Buffer& buf) {
    SortBuffer(buf.data);
    buf.full = true;
    fill_ = -1;
    if (!AnyEmpty()) Collapse();
  }

  void AcquireFillBuffer() {
    for (size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i].Empty()) {
        fill_ = static_cast<int>(i);
        buffers_[i].level = ActiveLevel();
        buffers_[i].weight = int64_t{1} << buffers_[i].level;
        buffers_[i].data.clear();
        block_seen_ = 0;
        return;
      }
    }
    assert(false && "no empty buffer available");
  }

  // Gathers the indices of all full buffers of `bufs` at the minimum level;
  // if only one exists, widens to the two lowest levels so a collapse is
  // always possible. Returns the output level of the collapsed buffer.
  static int SelectCollapseGroup(const std::vector<Buffer>& bufs,
                                 std::vector<int>* chosen) {
    int min_level = INT32_MAX;
    for (const Buffer& b : bufs) {
      if (b.full) min_level = std::min(min_level, b.level);
    }
    for (size_t i = 0; i < bufs.size(); ++i) {
      if (bufs[i].full && bufs[i].level == min_level) {
        chosen->push_back(static_cast<int>(i));
      }
    }
    int out_level = min_level + 1;
    if (chosen->size() < 2) {
      int second = INT32_MAX;
      for (const Buffer& b : bufs) {
        if (b.full && b.level > min_level) second = std::min(second, b.level);
      }
      for (size_t i = 0; i < bufs.size(); ++i) {
        if (bufs[i].full && bufs[i].level == second) {
          chosen->push_back(static_cast<int>(i));
        }
      }
      out_level = second + 1;
    }
    assert(chosen->size() >= 2);
    return out_level;
  }

  // COLLAPSE of the chosen buffers: weighted k-way merge with evenly spaced
  // selection and a uniform random start. The collapsed buffer replaces
  // bufs[chosen[0]] at `out_level`; the other chosen buffers become empty.
  void CollapseGroup(std::vector<Buffer>& bufs, const std::vector<int>& chosen,
                     int out_level) {
    int64_t total_weight = 0;
    bool equal_weights = true;
    const int64_t we = bufs[chosen[0]].weight;  // per-element weight
    for (int idx : chosen) {
      total_weight += bufs[idx].weight;
      equal_weights &= bufs[idx].weight == we;
    }
    const int64_t w = total_weight;
    Buffer& out = bufs[chosen[0]];
    if (equal_weights) {
      // All chosen buffers sit at one level (the streaming COLLAPSE always
      // does; only a widened merge-time group mixes weights). Every element
      // then spans exactly `we` weighted positions, so the evenly spaced
      // picks at offset + j*w land on sorted-value indices
      // offset/we + j*(w/we): a plain strided selection, no weighted walk.
      // Allocation-free while streaming: the pooled elements land in the
      // pre-reserved scratch and the kept subsequence is decimated straight
      // into the output buffer. Same elements, same PRNG draws as the
      // temporary-vector version it replaced.
      // Pool the chosen buffers in ascending order. A streaming COLLAPSE
      // often takes *every* buffer at the lowest level (7-8 of them), so
      // the branchy comparison work has to go: a two-buffer group is a
      // single linear merge of its sorted inputs, and a wider group
      // radix-sorts the concatenation (linear passes, data-independent).
      // Either way the pooled sequence is the identical ascending multiset
      // the historical sort produced. The generic-T path keeps that sort.
      if constexpr (std::is_same_v<T, uint64_t> &&
                    std::is_same_v<Less, std::less<uint64_t>>) {
        if (chosen.size() == 2) {
          const std::vector<T>& d0 = bufs[chosen[0]].data;
          const std::vector<T>& d1 = bufs[chosen[1]].data;
          scratch_pool_.resize(d0.size() + d1.size());
          std::merge(d0.begin(), d0.end(), d1.begin(), d1.end(),
                     scratch_pool_.begin(), Less());
        } else {
          scratch_pool_.clear();
          for (int idx : chosen) {
            const Buffer& b = bufs[idx];
            scratch_pool_.insert(scratch_pool_.end(), b.data.begin(),
                                 b.data.end());
          }
          scratch_pool2_.resize(scratch_pool_.size());
          RadixSortU64(scratch_pool_.data(), scratch_pool_.size(),
                       scratch_pool2_.data());
        }
      } else {
        scratch_pool_.clear();
        for (int idx : chosen) {
          const Buffer& b = bufs[idx];
          scratch_pool_.insert(scratch_pool_.end(), b.data.begin(),
                               b.data.end());
        }
        std::sort(scratch_pool_.begin(), scratch_pool_.end(), Less());
      }
      const int64_t offset =
          static_cast<int64_t>(rng_.Below(static_cast<uint64_t>(w)));
      const size_t first = static_cast<size_t>(offset / we);
      const size_t stride = static_cast<size_t>(w / we);  // = chosen.size()
      size_t count = 0;
      if (first < scratch_pool_.size()) {
        count = (scratch_pool_.size() - first + stride - 1) / stride;
        if (count > k_) count = k_;
      }
      out.data.resize(count);
      if constexpr (std::is_same_v<T, uint64_t>) {
        simd::DecimateStride(scratch_pool_.data(), scratch_pool_.size(),
                             first, stride, out.data.data(), count);
      } else {
        for (size_t i = 0; i < count; ++i) {
          out.data[i] = scratch_pool_[first + i * stride];
        }
      }
    } else {
      std::vector<T> kept;
      kept.reserve(k_);
      // Value-order the weighted pool. Tie order between equal values from
      // different buffers does not matter: a group of equal values occupies
      // one contiguous weighted interval whose start depends only on the
      // weight of strictly smaller values, and every pick inside it appends
      // that same value -- any value-ordered arrangement yields the
      // identical kept sequence. uint64 keys therefore use the keyed radix
      // sort (linear, data-independent); other types the comparison sort.
      size_t total = 0;
      for (int idx : chosen) total += bufs[idx].data.size();
      std::vector<WeightedElement<T>> pool;
      pool.reserve(total);
      for (int idx : chosen) {
        const Buffer& b = bufs[idx];
        for (const T& v : b.data) pool.push_back({v, b.weight});
      }
      if constexpr (std::is_same_v<T, uint64_t> &&
                    std::is_same_v<Less, std::less<uint64_t>>) {
        std::vector<WeightedElement<T>> tmp(pool.size());
        RadixSortByKeyU64(pool.data(), pool.size(), tmp.data(),
                          [](const WeightedElement<T>& e) { return e.value; });
      } else {
        Less less;
        std::sort(pool.begin(), pool.end(),
                  [&](const WeightedElement<T>& a,
                      const WeightedElement<T>& b) {
                    return less(a.value, b.value);
                  });
      }
      const int64_t offset =
          static_cast<int64_t>(rng_.Below(static_cast<uint64_t>(w)));
      int64_t pos = 0;  // weighted position of the current element start
      int64_t next_pick = offset;
      for (const WeightedElement<T>& e : pool) {
        while (next_pick < pos + e.weight &&
               kept.size() < k_) {
          kept.push_back(e.value);
          next_pick += w;
        }
        pos += e.weight;
      }
      out.data = std::move(kept);
    }

    out.weight = w;
    out.level = out_level;
    out.full = true;
    for (size_t c = 1; c < chosen.size(); ++c) {
      Buffer& b = bufs[chosen[c]];
      b.data.clear();
      b.data.reserve(k_);
      b.full = false;
      b.weight = 1;
      b.level = 0;
    }
  }

  void Collapse() {
    STREAMQ_COMPACTION_EVENT(metrics_, k_);
    STREAMQ_COMPACTION_TIMER(metrics_);
    std::vector<int> chosen;
    const int out_level = SelectCollapseGroup(buffers_, &chosen);
    CollapseGroup(buffers_, chosen, out_level);
  }

  std::vector<WeightedElement<T>> Snapshot() const {
    std::vector<WeightedElement<T>> sample;
    for (const Buffer& b : buffers_) {
      for (const T& v : b.data) sample.push_back({v, b.weight});
    }
    if (fill_ >= 0 && block_seen_ > block_pick_) {
      sample.push_back({block_choice_, static_cast<int64_t>(block_seen_)});
    }
    return sample;
  }

  int h_ = 1;
  size_t k_ = 8;
  uint64_t n_ = 0;
  int fill_ = -1;
  uint64_t block_seen_ = 0;
  uint64_t block_pick_ = 0;
  T block_choice_{};
  std::vector<Buffer> buffers_;
  // COLLAPSE scratch (working memory, not summary state -- MemoryBytes
  // counts the summary only, as it did when these were per-collapse
  // temporaries); reserved for the common two-buffer group, grows if a
  // merge-time group is wider. The second vector is the merge ping-pong
  // target; the first doubles as the fill-sort radix scratch.
  std::vector<T> scratch_pool_;
  std::vector<T> scratch_pool2_;
  mutable Xoshiro256 rng_;
  obs::SketchMetrics* metrics_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_MRL99_IMPL_H_
