// Shared tuple machinery for the Greenwald-Khanna family (GKTheory,
// GKAdaptive). GKArray uses a flat array instead (see gk_array.h).
//
// The GK summary is a sorted list of tuples (v_i, g_i, Delta_i) with
//   (1) sum_{j<=i} g_j <= r(v_i) + 1 <= sum_{j<=i} g_j + Delta_i
//   (2) g_i + Delta_i <= floor(2 eps n)
// We store tuples in a pool (stable 32-bit ids, freelist reuse) and keep the
// sorted order in a std::set of (value, id) entries. Set iterators are stable
// under unrelated insert/erase, which gives O(log |L|) successor search,
// O(1) neighbour access, and O(log |L|) erase -- the "binary search tree on
// top of L" of the paper, with the id tie-breaker making duplicates
// unambiguous.

#ifndef STREAMQ_QUANTILE_GK_TUPLE_STORE_H_
#define STREAMQ_QUANTILE_GK_TUPLE_STORE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "util/memory.h"
#include "util/serde.h"

namespace streamq {

template <typename T, typename Less = std::less<T>>
class GkTupleStore {
 public:
  struct IndexEntry {
    T v;
    uint64_t seq;  // monotone insertion stamp: newer equal values sort later
    int32_t id;
  };

  // Ties on the value are broken by the insertion sequence number, never by
  // the pool id: ids are recycled, and recycling could otherwise place a new
  // tuple *before* older tuples of the same value, which breaks the g-mass
  // accounting (a successor merge must never jump over an equal-valued
  // tuple that absorbed mass earlier).
  struct EntryLess {
    Less less;
    using is_transparent = void;
    bool operator()(const IndexEntry& a, const IndexEntry& b) const {
      if (less(a.v, b.v)) return true;
      if (less(b.v, a.v)) return false;
      return a.seq < b.seq;
    }
  };

  using Index = std::set<IndexEntry, EntryLess>;
  using Iterator = typename Index::iterator;

  struct Node {
    int64_t g = 0;
    int64_t delta = 0;
    uint32_t version = 0;  // bumped on every key-relevant change and on free
    Iterator self;         // position in the sorted index
  };

  GkTupleStore() = default;

  bool Empty() const { return index_.empty(); }
  size_t Size() const { return index_.size(); }

  Iterator Begin() { return index_.begin(); }
  Iterator End() { return index_.end(); }
  typename Index::const_iterator Begin() const { return index_.begin(); }
  typename Index::const_iterator End() const { return index_.end(); }

  Node& NodeOf(int32_t id) { return pool_[id]; }
  const Node& NodeOf(int32_t id) const { return pool_[id]; }

  /// First tuple with value strictly greater than v (the "successor").
  Iterator Successor(const T& v) {
    // The max sequence stamp makes the probe compare after every real entry
    // of value v.
    return index_.upper_bound(IndexEntry{v, ~uint64_t{0}, 0});
  }

  /// Inserts a tuple (v, g, delta) immediately before `pos`; returns its
  /// iterator. `pos` must be the successor position of v.
  Iterator InsertBefore(Iterator pos, const T& v, int64_t g, int64_t delta) {
    const int32_t id = Allocate();
    Node& node = pool_[id];
    node.g = g;
    node.delta = delta;
    const Iterator it = index_.insert(pos, IndexEntry{v, next_seq_++, id});
    node.self = it;
    return it;
  }

  /// Removes the tuple at `it`, folding its g into the successor, which must
  /// exist (the largest tuple is never removed). Returns the successor.
  Iterator RemoveIntoSuccessor(Iterator it) {
    Iterator nxt = std::next(it);
    assert(nxt != index_.end());
    pool_[nxt->id].g += pool_[it->id].g;
    ++pool_[nxt->id].version;
    Free(it->id);
    index_.erase(it);
    return nxt;
  }

  /// Rank bounds of the tuple at `it` require a prefix sum; queries do a
  /// single scan, so expose the raw sequence via Begin()/End().

  /// The paper's query rule: with e = max_i(g_i + Delta_i)/2, report v_{i-1}
  /// for the smallest i whose r_max exceeds target + e.
  T Query(double phi, uint64_t n) const {
    if (index_.empty()) return T{};  // empty summary: nothing to report
    const double target = phi * static_cast<double>(n);
    // First pass: tolerance.
    int64_t max_gap = 0;
    for (const IndexEntry& e : index_) {
      const Node& node = pool_[e.id];
      max_gap = std::max(max_gap, node.g + node.delta);
    }
    const double tol = static_cast<double>(max_gap) / 2.0;
    int64_t prefix = 0;
    const T* prev = nullptr;
    for (const IndexEntry& e : index_) {
      const Node& node = pool_[e.id];
      prefix += node.g;
      if (prev != nullptr &&
          static_cast<double>(prefix + node.delta) > target + tol) {
        return *prev;
      }
      prev = &e.v;
    }
    return *prev;  // last (exact maximum)
  }

  /// Batch version of Query: one scan for an ascending list of phis.
  std::vector<T> QueryMany(const std::vector<double>& phis, uint64_t n) const {
    std::vector<T> out;
    out.reserve(phis.size());
    if (index_.empty()) {
      out.assign(phis.size(), T{});
      return out;
    }
    int64_t max_gap = 0;
    for (const IndexEntry& e : index_) {
      const Node& node = pool_[e.id];
      max_gap = std::max(max_gap, node.g + node.delta);
    }
    const double tol = static_cast<double>(max_gap) / 2.0;
    auto it = index_.begin();
    int64_t prefix = pool_[it->id].g;
    const T* prev = &it->v;
    ++it;
    for (double phi : phis) {
      const double bound = phi * static_cast<double>(n) + tol;
      while (it != index_.end()) {
        const Node& node = pool_[it->id];
        if (static_cast<double>(prefix + node.g + node.delta) > bound) break;
        prefix += node.g;
        prev = &it->v;
        ++it;
      }
      out.push_back(*prev);
    }
    return out;
  }

  /// Estimated rank of `value`: with i the first tuple of value >= `value`,
  /// the true rank lies in [prefix_{i-1}, prefix_{i-1} + g_i + Delta_i - 1];
  /// return the midpoint.
  int64_t EstimateRank(const T& value) const {
    Less less;
    int64_t prefix = 0;
    for (const IndexEntry& e : index_) {
      const Node& node = pool_[e.id];
      if (!less(e.v, value)) {  // e.v >= value: the bracketing gap
        return prefix + (node.g + node.delta - 1) / 2;
      }
      prefix += node.g;
    }
    return prefix;  // value beyond the maximum
  }

  /// Accounting: v + g + Delta per tuple plus three BST links.
  size_t MemoryBytes() const {
    return Size() * (kBytesPerElement + 2 * kBytesPerCounter + 3 * kBytesPerPointer);
  }

  /// Snapshot: the tuple sequence in sorted order (trivially copyable T).
  void Serialize(SerdeWriter& w) const
    requires std::is_trivially_copyable_v<T>
  {
    w.U64(Size());
    for (const IndexEntry& e : index_) {
      const Node& node = pool_[e.id];
      w.Pod(e.v);
      w.I64(node.g);
      w.I64(node.delta);
    }
  }

  /// Restores a snapshot into an empty-or-reset store; tuples must come
  /// back sorted (validated). Returns false on corrupt input.
  bool Deserialize(SerdeReader& r)
    requires std::is_trivially_copyable_v<T>
  {
    pool_.clear();
    free_.clear();
    index_.clear();
    next_seq_ = 0;
    uint64_t count = 0;
    if (!r.U64(&count)) return false;
    Less less;
    bool first = true;
    T prev{};
    for (uint64_t i = 0; i < count; ++i) {
      T v{};
      int64_t g = 0, delta = 0;
      if (!r.Pod(&v) || !r.I64(&g) || !r.I64(&delta)) return false;
      if (g < 0 || delta < 0) return false;
      if (!first && less(v, prev)) return false;  // must stay sorted
      InsertBefore(End(), v, g, delta);
      prev = v;
      first = false;
    }
    return true;
  }

 private:
  int32_t Allocate() {
    if (!free_.empty()) {
      const int32_t id = free_.back();
      free_.pop_back();
      return id;
    }
    pool_.emplace_back();
    return static_cast<int32_t>(pool_.size() - 1);
  }

  void Free(int32_t id) {
    ++pool_[id].version;  // invalidate any outstanding lazy-heap entries
    free_.push_back(id);
  }

  std::vector<Node> pool_;
  std::vector<int32_t> free_;
  Index index_;
  uint64_t next_seq_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_GK_TUPLE_STORE_H_
