// Common machinery of the turnstile quantile algorithms (section 3 of the
// paper): a frequency estimator per dyadic level, rank queries by prefix
// decomposition, quantile queries by descending the dyadic tree.

#ifndef STREAMQ_QUANTILE_DYADIC_QUANTILE_H_
#define STREAMQ_QUANTILE_DYADIC_QUANTILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "quantile/quantile_sketch.h"
#include "sketch/frequency_estimator.h"
#include "util/serde.h"

namespace streamq {

/// Base of DCM / DCS / RSS-based quantiles. Subclasses populate one
/// FrequencyEstimator per level in their constructor; levels whose reduced
/// universe is no larger than the sketch use ExactCounts instead.
class DyadicQuantileBase : public QuantileSketch {
 public:
  bool SupportsDeletion() const override { return true; }

  /// The dyadic sketches are linear: merging is exact counter addition, so
  /// a merged sketch summarises the sum of both update streams with the
  /// per-level width/depth guarantee at the combined stream length.
  /// Compatibility requires the same concrete type built with the same
  /// (log_u, width, depth, seed) -- identical seeds make the per-level hash
  /// functions identical, which counter addition relies on.
  bool Mergeable() const override { return true; }

  /// Alternative query (not in the paper): descend the dyadic tree keeping
  /// a running mass bound and clamping each child estimate into
  /// [0, remaining]. The clamp suppresses much of Count-Min's inflation, so
  /// DCM in particular answers markedly better this way; see the
  /// "descent vs binary search" note in EXPERIMENTS.md.
  uint64_t QueryByDescent(double phi);

  int64_t EstimateRank(uint64_t value) override;
  uint64_t Count() const override { return static_cast<uint64_t>(n_); }
  size_t MemoryBytes() const override;

  // --- accessors used by the OLS post-processing and by tests ---

  int log_universe() const { return log_u_; }

  /// Estimated count of cell `index` at `level`; level == log_universe()
  /// returns the exact stream count n.
  double CellEstimate(int level, uint64_t index) const;

  /// Whether `level` stores exact frequencies (level log_universe() is
  /// always exact).
  bool LevelIsExact(int level) const;

  /// Variance proxy of one cell estimate at `level` (0 when exact).
  double LevelVariance(int level) const;

  /// Framed snapshot of the sketch (construction parameters + all
  /// counters). Restore with the matching Deserialize of the concrete
  /// class; a snapshot of one dyadic sketch type is rejected by another's.
  std::string Serialize() const;

 protected:
  explicit DyadicQuantileBase(int log_u) : log_u_(log_u), levels_(log_u) {}

  /// Values outside the configured universe [0, 2^log_u) are rejected with
  /// kOutOfUniverse; the sketch is not modified (no clamping, no
  /// out-of-bounds write).
  StreamqStatus InsertImpl(uint64_t value) override {
    return ApplyUpdate(value, +1);
  }
  StreamqStatus EraseImpl(uint64_t value) override {
    return ApplyUpdate(value, -1);
  }

  /// Batched insert: filter in-universe values into a scratch chunk, then
  /// feed each level's estimator the whole chunk at once (the estimators
  /// are linear, so per-level reordering leaves identical counters). The
  /// level-i item is value >> i, maintained by shifting the chunk in place
  /// between levels.
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override;

  /// The paper's quantile query: binary search over [u] for the largest
  /// value whose estimated rank (sum over the dyadic decomposition, one
  /// estimate per level) stays below phi*n. Unbiased per-level estimators
  /// (DCS) profit from error cancellation across levels here; Count-Min's
  /// one-sided bias accumulates, which is the mechanism behind the paper's
  /// Fig. 10 separation between DCM and DCS.
  uint64_t QueryImpl(double phi) override;

  /// Frame type tag for Serialize (one per concrete sketch).
  virtual SnapshotType snapshot_type() const = 0;

  StreamqStatus MergeCompatibility(
      const QuantileSketch& other) const override;
  StreamqStatus MergeImpl(const QuantileSketch& other) override;

  StreamqStatus ApplyUpdate(uint64_t value, int64_t delta);
  bool LoadFrom(class SerdeReader& r);

  int log_u_;
  int64_t n_ = 0;
  uint64_t width_ = 0;  // per-level sketch width (0 before BuildLevels)
  int depth_ = 0;
  uint64_t seed_ = 0;
  std::vector<std::unique_ptr<FrequencyEstimator>> levels_;  // [0, log_u)
  std::vector<uint64_t> batch_scratch_;  // InsertBatchImpl working chunk
};

/// DCM: Dyadic Count-Min (Cormode & Muthukrishnan). Per-level width
/// w = (1/eps) * log2(u), depth d (paper's tuning: d = 7).
class Dcm : public DyadicQuantileBase {
 public:
  Dcm(double eps, int log_u, int depth = 7, uint64_t seed = 1);
  /// Explicit per-level dimensions (used by the tuning benches).
  static std::unique_ptr<Dcm> WithWidth(uint64_t width, int depth, int log_u,
                                        uint64_t seed);
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<Dcm> Deserialize(const std::string& bytes);
  std::string Name() const override { return "DCM"; }
  /// Deep copy via the snapshot path (cold; used by the ingest publishers).
  std::unique_ptr<QuantileSketch> Clone() const override {
    return Deserialize(Serialize());
  }

 protected:
  SnapshotType snapshot_type() const override { return SnapshotType::kDcm; }

 private:
  Dcm(int log_u) : DyadicQuantileBase(log_u) {}
  void BuildLevels(uint64_t width, int depth, uint64_t seed);
};

/// DCS: Dyadic Count-Sketch -- the paper's new turnstile algorithm. Per-level
/// width w = sqrt(log2(u))/eps, depth d (paper's tuning: d = 7).
class Dcs : public DyadicQuantileBase {
 public:
  Dcs(double eps, int log_u, int depth = 7, uint64_t seed = 1);
  static std::unique_ptr<Dcs> WithWidth(uint64_t width, int depth, int log_u,
                                        uint64_t seed);
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<Dcs> Deserialize(const std::string& bytes);
  std::string Name() const override { return "DCS"; }
  /// Deep copy via the snapshot path (cold; used by the ingest publishers).
  std::unique_ptr<QuantileSketch> Clone() const override {
    return Deserialize(Serialize());
  }

 protected:
  SnapshotType snapshot_type() const override { return SnapshotType::kDcs; }

 private:
  Dcs(int log_u) : DyadicQuantileBase(log_u) {}
  void BuildLevels(uint64_t width, int depth, uint64_t seed);
};

/// Dyadic random-subset-sum (Gilbert et al.): the baseline turnstile
/// algorithm. Width would need to be ~1/eps^2 for eps-accuracy; callers
/// bound it explicitly because of its prohibitive cost.
class RssQuantile : public DyadicQuantileBase {
 public:
  RssQuantile(uint64_t width, int depth, int log_u, uint64_t seed = 1);
  std::string Name() const override { return "RSS"; }

 protected:
  SnapshotType snapshot_type() const override { return SnapshotType::kRss; }
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_DYADIC_QUANTILE_H_
