// Biased quantiles (extension; the paper's related work cites Cormode,
// Korn, Muthukrishnan & Srivastava, PODS'06).
//
// Uniform summaries guarantee absolute rank error eps*n, which is useless
// at the extreme tails (the p99.99 of a million elements has rank slack
// eps*n >> its distance from the maximum). Biased quantiles promise
// *relative* rank error: the phi-quantile is answered within eps*phi*n --
// sharp at the low tail, looser in the middle. The high-biased variant
// mirrors this for phi -> 1.
//
// The structure is the GK tuple list with a rank-dependent capacity
// function f(r) in place of the uniform 2*eps*n: a tuple whose minimum rank
// is r may absorb at most f(r) = 2*eps*r mass (low-biased; the high-biased
// variant uses 2*eps*(n-r)). Insertion and batched compression follow the
// GKArray discipline (sort the buffer, merge, fold removable tuples into
// their successor whenever g_i + g_{i+1} + Delta_{i+1} <= f(r_{i+1})).

#ifndef STREAMQ_QUANTILE_BIASED_QUANTILES_H_
#define STREAMQ_QUANTILE_BIASED_QUANTILES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/memory.h"

namespace streamq {

enum class Bias {
  kLow,   // relative error at the low tail (phi -> 0)
  kHigh,  // relative error at the high tail (phi -> 1)
};

template <typename T, typename Less = std::less<T>>
class BiasedQuantilesImpl {
 public:
  explicit BiasedQuantilesImpl(double eps, Bias bias = Bias::kLow)
      : eps_(eps), bias_(bias) {
    buffer_.reserve(kMinBuffer);
  }

  void Insert(const T& v) {
    buffer_.push_back(v);
    if (buffer_.size() >= std::max(kMinBuffer, summary_.size())) Flush();
  }

  /// phi-quantile with rank error at most eps * phi * n (low-biased) or
  /// eps * (1-phi) * n (high-biased).
  T Query(double phi) {
    Flush();
    if (summary_.empty()) return T{};
    const double n = static_cast<double>(n_);
    const double target = phi * n;
    int64_t prefix = 0;
    const T* prev = &summary_.front().v;
    for (const Tuple& t : summary_) {
      const double tol = Capacity(static_cast<double>(prefix)) / 2.0 + 1.0;
      if (static_cast<double>(prefix + t.g + t.delta) > target + tol) {
        return *prev;
      }
      prefix += t.g;
      prev = &t.v;
    }
    return summary_.back().v;
  }

  int64_t EstimateRank(const T& value) {
    Flush();
    Less less;
    int64_t prefix = 0;
    for (const Tuple& t : summary_) {
      if (!less(t.v, value)) {
        return prefix + (t.g + t.delta - 1) / 2;
      }
      prefix += t.g;
    }
    return prefix;
  }

  uint64_t Count() const { return n_ + buffer_.size(); }
  size_t TupleCount() const { return summary_.size(); }

  size_t MemoryBytes() const {
    return summary_.capacity() * (kBytesPerElement + 2 * kBytesPerCounter) +
           buffer_.capacity() * kBytesPerElement;
  }

  template <typename Fn>
  void ForEachTuple(Fn&& fn) {
    Flush();
    for (const Tuple& t : summary_) fn(t.v, t.g, t.delta);
  }

  void Flush() {
    if (buffer_.empty()) return;
    std::sort(buffer_.begin(), buffer_.end(), Less());
    std::vector<Tuple> out;
    out.reserve(summary_.size() + buffer_.size());
    Less less;

    uint64_t cur_n = n_;
    size_t si = 0, bi = 0;
    bool has_pending = false;
    Tuple pending{};
    int64_t out_rank = 0;  // mass already emitted to `out`

    auto emit = [&](const Tuple& t) {
      if (has_pending) {
        // Fold pending into t when t's capacity at its minimum rank allows.
        const double r = static_cast<double>(out_rank + pending.g + t.g);
        if (static_cast<double>(pending.g + t.g + t.delta) <=
            Capacity(r, static_cast<double>(cur_n))) {
          Tuple merged = t;
          merged.g += pending.g;
          pending = merged;
          return;
        }
        out.push_back(pending);
        out_rank += pending.g;
      }
      pending = t;
      has_pending = true;
    };

    while (si < summary_.size() || bi < buffer_.size()) {
      const bool take_buffer =
          si == summary_.size() ||
          (bi < buffer_.size() && less(buffer_[bi], summary_[si].v));
      if (take_buffer) {
        ++cur_n;
        Tuple t;
        t.v = buffer_[bi++];
        t.g = 1;
        t.delta = si < summary_.size()
                      ? summary_[si].g + summary_[si].delta - 1
                      : 0;
        emit(t);
      } else {
        emit(summary_[si++]);
      }
    }
    if (has_pending) out.push_back(pending);
    summary_.swap(out);
    n_ = cur_n;
    buffer_.clear();
  }

 private:
  struct Tuple {
    T v{};
    int64_t g = 0;
    int64_t delta = 0;
  };

  static constexpr size_t kMinBuffer = 256;

  // Capacity of a tuple whose minimum rank is r: the maximal allowed
  // g + Delta, i.e. 2*eps*r for low bias, 2*eps*(n-r) for high bias.
  double Capacity(double r) const {
    return Capacity(r, static_cast<double>(n_));
  }
  double Capacity(double r, double n) const {
    const double slack =
        bias_ == Bias::kLow ? 2.0 * eps_ * r : 2.0 * eps_ * (n - r);
    return std::max(slack, 1.0);
  }

  double eps_;
  Bias bias_;
  uint64_t n_ = 0;
  std::vector<Tuple> summary_;
  std::vector<T> buffer_;
};

/// uint64_t convenience wrapper.
class BiasedQuantiles {
 public:
  explicit BiasedQuantiles(double eps, Bias bias = Bias::kLow)
      : impl_(eps, bias) {}
  void Insert(uint64_t v) { impl_.Insert(v); }
  uint64_t Query(double phi) { return impl_.Query(phi); }
  int64_t EstimateRank(uint64_t v) { return impl_.EstimateRank(v); }
  uint64_t Count() const { return impl_.Count(); }
  size_t MemoryBytes() const { return impl_.MemoryBytes(); }
  BiasedQuantilesImpl<uint64_t>& impl() { return impl_; }

 private:
  BiasedQuantilesImpl<uint64_t> impl_;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_BIASED_QUANTILES_H_
