// The two earlier deterministic quantile summaries the paper's study omits
// from its main comparison because they had "previously been demonstrated
// to be outperformed by the GK algorithm" (section 1.2.1, citing [15]):
//
//  * Mp80: the streaming (first) pass of Munro & Paterson (1980). Sorted
//    buffers of k elements form a binary carry chain; two buffers at the
//    same level merge by keeping alternate positions of their sorted merge
//    (parity alternating per level to balance the drift). Space grows as
//    k * log(n/k) -- the O((1/eps) log^2(eps n)) behaviour that GK strictly
//    improves.
//
//  * Mrl98: Manku, Rajagopalan & Lindsay (SIGMOD'98). b weighted buffers of
//    k elements; NEW fills an empty buffer with raw elements at weight 1,
//    COLLAPSE merges all buffers at the lowest level keeping evenly spaced
//    positions of the weighted merge with the deterministic median offset.
//    (b, k) are chosen by the original paper's optimisation: minimise b*k
//    subject to the coverage constraint k * 2^(b-2) >= N and the error
//    constraint (b-2)/(2k) <= eps, which is why the algorithm needs an
//    a-priori bound N on the stream length -- one of the criticisms that
//    motivated MRL99 and GK.
//
// Both are comparison-based templates, wrapped for uint64_t streams at the
// bottom of this header, and both are exercised by bench_prior_deterministic
// to reproduce the "GK dominates" claim.

#ifndef STREAMQ_QUANTILE_LEGACY_DETERMINISTIC_H_
#define STREAMQ_QUANTILE_LEGACY_DETERMINISTIC_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "quantile/quantile_sketch.h"
#include "quantile/weighted_sample.h"
#include "util/memory.h"

namespace streamq {

// ---------------------------------------------------------------------------
// Munro-Paterson 1980, first pass.
// ---------------------------------------------------------------------------

template <typename T, typename Less = std::less<T>>
class Mp80Impl {
 public:
  explicit Mp80Impl(double eps)
      : k_(std::max<size_t>(8, static_cast<size_t>(std::ceil(2.0 / eps)))) {
    fill_.reserve(k_);
  }

  void Insert(const T& v) {
    ++n_;
    fill_.push_back(v);
    if (fill_.size() == k_) {
      std::sort(fill_.begin(), fill_.end(), Less());
      Carry(std::move(fill_), 0);
      fill_.clear();
      fill_.reserve(k_);
    }
  }

  T Query(double phi) const {
    WeightedSampleView<T, Less> view(Snapshot());
    if (view.Empty()) return T{};
    return view.Quantile(phi * static_cast<double>(n_));
  }

  std::vector<T> QueryMany(const std::vector<double>& phis) const {
    WeightedSampleView<T, Less> view(Snapshot());
    std::vector<T> out;
    if (view.Empty()) {
      out.assign(phis.size(), T{});
      return out;
    }
    out.reserve(phis.size());
    for (double phi : phis) {
      out.push_back(view.Quantile(phi * static_cast<double>(n_)));
    }
    return out;
  }

  int64_t EstimateRank(const T& v) const {
    return WeightedSampleView<T, Less>(Snapshot()).EstimateRank(v);
  }

  uint64_t Count() const { return n_; }
  size_t LevelCount() const { return levels_.size(); }

  size_t MemoryBytes() const {
    size_t elements = fill_.capacity();
    for (const auto& level : levels_) elements += level.size();
    return elements * kBytesPerElement + levels_.size() * kBytesPerCounter;
  }

 private:
  // Binary carry chain: install `buf` at `level`, merging upward while the
  // slot is occupied.
  void Carry(std::vector<T> buf, size_t level) {
    while (true) {
      if (levels_.size() <= level) levels_.resize(level + 1);
      if (levels_[level].empty()) {
        levels_[level] = std::move(buf);
        return;
      }
      // Merge with the occupant, keep alternate positions. The starting
      // parity alternates per level so the systematic rank drift of
      // deterministic halving cancels across merges.
      std::vector<T> merged;
      merged.reserve(2 * k_);
      std::merge(levels_[level].begin(), levels_[level].end(), buf.begin(),
                 buf.end(), std::back_inserter(merged), Less());
      levels_[level].clear();
      levels_[level].shrink_to_fit();
      if (static_cast<int>(parity_.size()) <= static_cast<int>(level)) {
        parity_.resize(level + 1, false);
      }
      std::vector<T> kept;
      kept.reserve(k_);
      for (size_t i = parity_[level] ? 1 : 0; i < merged.size(); i += 2) {
        kept.push_back(merged[i]);
      }
      parity_[level] = !parity_[level];
      buf = std::move(kept);
      ++level;
    }
  }

  std::vector<WeightedElement<T>> Snapshot() const {
    std::vector<WeightedElement<T>> sample;
    for (const T& v : fill_) sample.push_back({v, 1});
    for (size_t l = 0; l < levels_.size(); ++l) {
      // A buffer that settled at level l went through l halvings.
      const int64_t w = int64_t{1} << l;
      for (const T& v : levels_[l]) sample.push_back({v, w});
    }
    return sample;
  }

  size_t k_;
  uint64_t n_ = 0;
  std::vector<T> fill_;
  std::vector<std::vector<T>> levels_;  // level l holds weight-2^l elements
  std::vector<bool> parity_;
};

// ---------------------------------------------------------------------------
// Manku-Rajagopalan-Lindsay 1998.
// ---------------------------------------------------------------------------

template <typename T, typename Less = std::less<T>>
class Mrl98Impl {
 public:
  /// n_hint is the a-priori stream length bound the original algorithm
  /// requires; exceeding it degrades the guarantee gracefully (collapses
  /// simply continue).
  Mrl98Impl(double eps, uint64_t n_hint) {
    ChooseParameters(eps, std::max<uint64_t>(n_hint, 1024));
    buffers_.resize(b_);
    for (Buffer& b : buffers_) b.data.reserve(k_);
  }

  void Insert(const T& v) {
    ++n_;
    if (fill_ < 0) AcquireFillBuffer();
    Buffer& buf = buffers_[fill_];
    buf.data.push_back(v);
    if (buf.data.size() == k_) {
      std::sort(buf.data.begin(), buf.data.end(), Less());
      buf.full = true;
      fill_ = -1;
      if (!AnyEmpty()) Collapse();
    }
  }

  T Query(double phi) const {
    WeightedSampleView<T, Less> view(Snapshot());
    if (view.Empty()) return T{};
    return view.Quantile(phi * static_cast<double>(n_));
  }

  std::vector<T> QueryMany(const std::vector<double>& phis) const {
    WeightedSampleView<T, Less> view(Snapshot());
    std::vector<T> out;
    if (view.Empty()) {
      out.assign(phis.size(), T{});
      return out;
    }
    out.reserve(phis.size());
    for (double phi : phis) {
      out.push_back(view.Quantile(phi * static_cast<double>(n_)));
    }
    return out;
  }

  int64_t EstimateRank(const T& v) const {
    return WeightedSampleView<T, Less>(Snapshot()).EstimateRank(v);
  }

  uint64_t Count() const { return n_; }
  size_t buffer_count() const { return b_; }
  size_t buffer_size() const { return k_; }

  size_t MemoryBytes() const {
    return b_ * (k_ * kBytesPerElement + 3 * kBytesPerCounter);
  }

 private:
  struct Buffer {
    std::vector<T> data;
    int64_t weight = 1;
    int level = 0;
    bool full = false;
    bool Empty() const { return data.empty() && !full; }
  };

  void ChooseParameters(double eps, uint64_t n_hint) {
    // MRL98's optimisation: minimise b*k subject to coverage
    // k * 2^(b-2) >= N and collapse error (b-2)/(2k) <= eps.
    size_t best_cost = SIZE_MAX;
    for (size_t b = 3; b <= 40; ++b) {
      const double coverage =
          static_cast<double>(n_hint) / std::pow(2.0, static_cast<double>(b - 2));
      const double err_k = static_cast<double>(b - 2) / (2.0 * eps);
      const size_t k = std::max<size_t>(
          8, static_cast<size_t>(std::ceil(std::max(coverage, err_k))));
      if (b * k < best_cost) {
        best_cost = b * k;
        b_ = b;
        k_ = k;
      }
    }
  }

  bool AnyEmpty() const {
    for (const Buffer& b : buffers_) {
      if (b.Empty()) return true;
    }
    return false;
  }

  void AcquireFillBuffer() {
    for (size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i].Empty()) {
        fill_ = static_cast<int>(i);
        // New buffers enter at the current minimum level of the full
        // buffers (MRL98's NEW policy), weight 1.
        buffers_[i].level = 0;
        buffers_[i].weight = 1;
        buffers_[i].data.clear();
        return;
      }
    }
    assert(false && "no empty buffer available");
  }

  void Collapse() {
    int min_level = INT32_MAX;
    for (const Buffer& b : buffers_) {
      if (b.full) min_level = std::min(min_level, b.level);
    }
    std::vector<int> chosen;
    for (size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i].full && buffers_[i].level == min_level) {
        chosen.push_back(static_cast<int>(i));
      }
    }
    int out_level = min_level + 1;
    if (chosen.size() < 2) {
      int second = INT32_MAX;
      for (const Buffer& b : buffers_) {
        if (b.full && b.level > min_level) second = std::min(second, b.level);
      }
      for (size_t i = 0; i < buffers_.size(); ++i) {
        if (buffers_[i].full && buffers_[i].level == second) {
          chosen.push_back(static_cast<int>(i));
        }
      }
      out_level = second + 1;
    }
    assert(chosen.size() >= 2);

    std::vector<WeightedElement<T>> pool;
    int64_t total_weight = 0;
    for (int idx : chosen) {
      const Buffer& b = buffers_[idx];
      total_weight += b.weight;
      for (const T& v : b.data) pool.push_back({v, b.weight});
    }
    Less less;
    std::sort(pool.begin(), pool.end(),
              [&](const WeightedElement<T>& a, const WeightedElement<T>& b) {
                return less(a.value, b.value);
              });
    // Deterministic median-offset selection (MRL98): positions
    // offset + j*W in the weighted expansion, offset = (W+1)/2 for odd W,
    // alternating W/2 and (W+2)/2 for even W.
    const int64_t w = total_weight;
    int64_t offset;
    if (w % 2 == 1) {
      offset = (w + 1) / 2;
    } else {
      offset = even_toggle_ ? w / 2 : (w + 2) / 2;
      even_toggle_ = !even_toggle_;
    }
    offset -= 1;  // to 0-indexed weighted positions
    std::vector<T> kept;
    kept.reserve(k_);
    int64_t pos = 0;
    int64_t next_pick = offset;
    for (const WeightedElement<T>& e : pool) {
      while (next_pick < pos + e.weight && kept.size() < k_) {
        kept.push_back(e.value);
        next_pick += w;
      }
      pos += e.weight;
    }

    Buffer& out = buffers_[chosen[0]];
    out.data = std::move(kept);
    out.weight = w;
    out.level = out_level;
    out.full = true;
    for (size_t c = 1; c < chosen.size(); ++c) {
      Buffer& b = buffers_[chosen[c]];
      b.data.clear();
      b.data.reserve(k_);
      b.full = false;
      b.weight = 1;
      b.level = 0;
    }
  }

  std::vector<WeightedElement<T>> Snapshot() const {
    std::vector<WeightedElement<T>> sample;
    for (const Buffer& b : buffers_) {
      for (const T& v : b.data) sample.push_back({v, b.weight});
    }
    return sample;
  }

  size_t b_ = 3;
  size_t k_ = 8;
  uint64_t n_ = 0;
  int fill_ = -1;
  bool even_toggle_ = false;
  std::vector<Buffer> buffers_;
};

// ---------------------------------------------------------------------------
// uint64_t wrappers.
// ---------------------------------------------------------------------------

/// Munro-Paterson (1980) over uint64_t.
class Mp80 : public QuantileSketch {
 public:
  explicit Mp80(double eps) : impl_(eps) {}
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "MP80"; }
  Mp80Impl<uint64_t>& impl() { return impl_; }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }

 private:
  Mp80Impl<uint64_t> impl_;
};

/// MRL98 over uint64_t.
class Mrl98 : public QuantileSketch {
 public:
  Mrl98(double eps, uint64_t n_hint) : impl_(eps, n_hint) {}
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "MRL98"; }
  Mrl98Impl<uint64_t>& impl() { return impl_; }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }

 private:
  Mrl98Impl<uint64_t> impl_;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_LEGACY_DETERMINISTIC_H_
