// Concrete QuantileSketch wrappers over the comparison-based cash-register
// summaries, instantiated for uint64_t streams. The underlying
// implementations (gk_*.h, random_impl.h, mrl99_impl.h) are templates over
// any strict-weak-ordered element type, reflecting the comparison model.
//
// Snapshots (Serialize/Deserialize) use the framed format of util/serde.h:
// a per-type tag plus CRC32C, so corrupted or cross-type input is rejected
// before any payload byte is interpreted.

#ifndef STREAMQ_QUANTILE_CASH_REGISTER_H_
#define STREAMQ_QUANTILE_CASH_REGISTER_H_

#include <memory>

#include "quantile/gk_adaptive.h"
#include "quantile/gk_array.h"
#include "quantile/gk_theory.h"
#include "quantile/mrl99_impl.h"
#include "quantile/quantile_sketch.h"
#include "quantile/random_impl.h"
#include "util/serde.h"

namespace streamq {

/// GKTheory over uint64_t (section 2.1 of the paper).
class GkTheory : public QuantileSketch {
 public:
  explicit GkTheory(double eps) : impl_(eps) {
    impl_.set_metrics(mutable_metrics());
  }
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "GKTheory"; }
  GkTheoryImpl<uint64_t>& impl() { return impl_; }

  /// Framed snapshot of the summary; restore with Deserialize.
  std::string Serialize() const {
    SerdeWriter w;
    impl_.Serialize(w);
    return FrameSnapshot(SnapshotType::kGkTheory, w.Take());
  }
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<GkTheory> Deserialize(const std::string& bytes) {
    std::string payload;
    if (!UnframeSnapshot(bytes, SnapshotType::kGkTheory, &payload)) {
      return nullptr;
    }
    auto sketch = std::make_unique<GkTheory>(0.5);
    SerdeReader r(payload);
    if (!sketch->impl_.Deserialize(r) || !r.Done()) return nullptr;
    return sketch;
  }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  // Comparison-based summary: every value is accepted, so the batch entry
  // only amortizes the virtual dispatch and metrics (the tuple-list insert
  // itself has no batch shortcut).
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override {
    for (size_t i = 0; i < n; ++i) impl_.Insert(values[i]);
    return 0;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }

 private:
  GkTheoryImpl<uint64_t> impl_;
};

/// GKAdaptive over uint64_t (section 2.1.1).
class GkAdaptive : public QuantileSketch {
 public:
  explicit GkAdaptive(double eps) : impl_(eps) {
    impl_.set_metrics(mutable_metrics());
  }
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "GKAdaptive"; }
  GkAdaptiveImpl<uint64_t>& impl() { return impl_; }

  /// Framed snapshot of the summary; restore with Deserialize.
  std::string Serialize() const {
    SerdeWriter w;
    impl_.Serialize(w);
    return FrameSnapshot(SnapshotType::kGkAdaptive, w.Take());
  }
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<GkAdaptive> Deserialize(const std::string& bytes) {
    std::string payload;
    if (!UnframeSnapshot(bytes, SnapshotType::kGkAdaptive, &payload)) {
      return nullptr;
    }
    auto sketch = std::make_unique<GkAdaptive>(0.5);
    SerdeReader r(payload);
    if (!sketch->impl_.Deserialize(r) || !r.Done()) return nullptr;
    return sketch;
  }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  // As for GkTheory: batch amortizes dispatch + metrics only.
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override {
    for (size_t i = 0; i < n; ++i) impl_.Insert(values[i]);
    return 0;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }

 private:
  GkAdaptiveImpl<uint64_t> impl_;
};

/// GKArray over uint64_t (section 2.1.2, journal version).
class GkArray : public QuantileSketch {
 public:
  explicit GkArray(double eps) : impl_(eps) {
    impl_.set_metrics(mutable_metrics());
  }
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "GKArray"; }
  GkArrayImpl<uint64_t>& impl() { return impl_; }

  /// Framed snapshot of the summary; restore with Deserialize.
  std::string Serialize() const {
    SerdeWriter w;
    impl_.Serialize(w);
    return FrameSnapshot(SnapshotType::kGkArray, w.Take());
  }
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<GkArray> Deserialize(const std::string& bytes) {
    std::string payload;
    if (!UnframeSnapshot(bytes, SnapshotType::kGkArray, &payload)) {
      return nullptr;
    }
    auto sketch = std::make_unique<GkArray>(0.5);
    SerdeReader r(payload);
    if (!sketch->impl_.Deserialize(r) || !r.Done()) return nullptr;
    return sketch;
  }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  // Bulk-appends into the insert buffer with the same flush points as the
  // item-wise loop (GkArrayImpl::InsertBatch).
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override {
    impl_.InsertBatch(values, n);
    return 0;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }

 private:
  GkArrayImpl<uint64_t> impl_;
};

/// Random over uint64_t (section 2.2). Mergeable: two Random summaries
/// built with the same eps combine into a summary of the union stream (the
/// mergeable-summary property of Agarwal et al. that Random inherits).
class RandomSketch : public QuantileSketch {
 public:
  RandomSketch(double eps, uint64_t seed = 1) : impl_(eps, seed) {
    impl_.set_metrics(mutable_metrics());
  }
  RandomSketch(const RandomSketch& other)
      : QuantileSketch(), impl_(other.impl_) {
    impl_.set_metrics(mutable_metrics());
  }
  RandomSketch& operator=(const RandomSketch&) = delete;
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "Random"; }
  RandomSketchImpl<uint64_t>& impl() { return impl_; }

  bool Mergeable() const override { return true; }
  std::unique_ptr<QuantileSketch> Clone() const override {
    return std::unique_ptr<QuantileSketch>(new RandomSketch(*this));
  }

  /// Framed snapshot of the summary (including PRNG state).
  std::string Serialize() const {
    SerdeWriter w;
    impl_.Serialize(w);
    return FrameSnapshot(SnapshotType::kRandom, w.Take());
  }
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<RandomSketch> Deserialize(const std::string& bytes) {
    std::string payload;
    if (!UnframeSnapshot(bytes, SnapshotType::kRandom, &payload)) {
      return nullptr;
    }
    auto sketch = std::make_unique<RandomSketch>(0.5);
    SerdeReader r(payload);
    if (!sketch->impl_.Deserialize(r) || !r.Done()) return nullptr;
    return sketch;
  }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  // Strides over whole sampling blocks, consuming the PRNG exactly as the
  // item-wise loop would (RandomSketchImpl::InsertBatch).
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override {
    impl_.InsertBatch(values, n);
    return 0;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }
  StreamqStatus MergeCompatibility(
      const QuantileSketch& other) const override {
    const auto* peer = dynamic_cast<const RandomSketch*>(&other);
    if (peer == nullptr || peer->impl_.height() != impl_.height() ||
        peer->impl_.buffer_size() != impl_.buffer_size()) {
      return StreamqStatus::kMergeIncompatible;
    }
    return StreamqStatus::kOk;
  }
  StreamqStatus MergeImpl(const QuantileSketch& other) override {
    impl_.Merge(static_cast<const RandomSketch&>(other).impl_);
    return StreamqStatus::kOk;
  }

 private:
  RandomSketchImpl<uint64_t> impl_;
};

/// MRL99 over uint64_t (section 1.2.1). Mergeable: two MRL99 summaries
/// built with the same eps combine level-wise, with COLLAPSE passes
/// restoring the buffer budget (see Mrl99Impl::Merge).
class Mrl99 : public QuantileSketch {
 public:
  Mrl99(double eps, uint64_t seed = 1) : impl_(eps, seed) {
    impl_.set_metrics(mutable_metrics());
  }
  Mrl99(const Mrl99& other) : QuantileSketch(), impl_(other.impl_) {
    impl_.set_metrics(mutable_metrics());
  }
  Mrl99& operator=(const Mrl99&) = delete;
  int64_t EstimateRank(uint64_t value) override {
    return impl_.EstimateRank(value);
  }
  uint64_t Count() const override { return impl_.Count(); }
  size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
  std::string Name() const override { return "MRL99"; }
  Mrl99Impl<uint64_t>& impl() { return impl_; }

  bool Mergeable() const override { return true; }
  std::unique_ptr<QuantileSketch> Clone() const override {
    return std::unique_ptr<QuantileSketch>(new Mrl99(*this));
  }

  /// Framed snapshot of the summary (including PRNG state).
  std::string Serialize() const {
    SerdeWriter w;
    impl_.Serialize(w);
    return FrameSnapshot(SnapshotType::kMrl99, w.Take());
  }
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<Mrl99> Deserialize(const std::string& bytes) {
    std::string payload;
    if (!UnframeSnapshot(bytes, SnapshotType::kMrl99, &payload)) {
      return nullptr;
    }
    auto sketch = std::make_unique<Mrl99>(0.5);
    SerdeReader r(payload);
    if (!sketch->impl_.Deserialize(r) || !r.Done()) return nullptr;
    return sketch;
  }

 protected:
  StreamqStatus InsertImpl(uint64_t value) override {
    impl_.Insert(value);
    return StreamqStatus::kOk;
  }
  // Strides over whole weighted blocks, same PRNG consumption as item-wise
  // (Mrl99Impl::InsertBatch).
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override {
    impl_.InsertBatch(values, n);
    return 0;
  }
  uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
  std::vector<uint64_t> QueryManyImpl(
      const std::vector<double>& phis) override {
    return impl_.QueryMany(phis);
  }
  StreamqStatus MergeCompatibility(
      const QuantileSketch& other) const override {
    const auto* peer = dynamic_cast<const Mrl99*>(&other);
    if (peer == nullptr || peer->impl_.height() != impl_.height() ||
        peer->impl_.buffer_size() != impl_.buffer_size()) {
      return StreamqStatus::kMergeIncompatible;
    }
    return StreamqStatus::kOk;
  }
  StreamqStatus MergeImpl(const QuantileSketch& other) override {
    impl_.Merge(static_cast<const Mrl99&>(other).impl_);
    return StreamqStatus::kOk;
  }

 private:
  Mrl99Impl<uint64_t> impl_;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_CASH_REGISTER_H_
