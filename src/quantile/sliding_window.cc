#include "quantile/sliding_window.h"

#include <algorithm>
#include <cmath>

namespace streamq {

SlidingWindowQuantile::SlidingWindowQuantile(double eps, uint64_t window)
    : eps_(eps), window_(std::max<uint64_t>(window, 16)) {
  block_size_ = std::max<uint64_t>(
      16, static_cast<uint64_t>(std::ceil(eps_ * static_cast<double>(window_) / 2.0)));
}

void SlidingWindowQuantile::Insert(uint64_t value) {
  ++n_;
  if (blocks_.empty() || blocks_.back().count == block_size_) {
    blocks_.emplace_back(eps_ / 2.0);
    Expire();
  }
  Block& block = blocks_.back();
  block.summary.Insert(value);
  ++block.count;
}

void SlidingWindowQuantile::Expire() {
  // Drop whole blocks from the front while the remaining ones still cover
  // the window; afterwards the stored count exceeds the window by less than
  // one block.
  uint64_t total = 0;
  for (const Block& b : blocks_) total += b.count;
  while (blocks_.size() > 1 && total - blocks_.front().count >= window_) {
    total -= blocks_.front().count;
    blocks_.pop_front();
  }
}

uint64_t SlidingWindowQuantile::WindowCount() const {
  uint64_t total = 0;
  for (const Block& b : blocks_) total += b.count;
  return std::min(total, window_);
}

std::vector<WeightedElement<uint64_t>> SlidingWindowQuantile::MergedSample() {
  std::vector<WeightedElement<uint64_t>> sample;
  for (Block& block : blocks_) {
    block.summary.ForEachTuple([&](uint64_t v, int64_t g, int64_t /*delta*/) {
      sample.push_back({v, g});
    });
  }
  return sample;
}

uint64_t SlidingWindowQuantile::Query(double phi) {
  WeightedSampleView<uint64_t> view(MergedSample());
  if (view.Empty()) return 0;
  // Target against everything stored: the stored count exceeds the window
  // by at most one partially expired block (< eps*W/2 rank slack).
  return view.Quantile(phi * static_cast<double>(view.TotalWeight()));
}

int64_t SlidingWindowQuantile::EstimateRank(uint64_t value) {
  return WeightedSampleView<uint64_t>(MergedSample()).EstimateRank(value);
}

size_t SlidingWindowQuantile::MemoryBytes() const {
  size_t total = 2 * kBytesPerCounter;  // window + block-size parameters
  for (const Block& b : blocks_) {
    total += b.summary.MemoryBytes() + kBytesPerCounter;
  }
  return total;
}

}  // namespace streamq
