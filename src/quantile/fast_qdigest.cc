#include "quantile/fast_qdigest.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/memory.h"
#include "util/serde.h"

namespace streamq {

namespace {

// Node ids are heap-style over a complete binary tree of depth log_u:
// root = 1, children of x are 2x and 2x+1, leaf of value v is 2^log_u + v.
inline int NodeDepth(uint64_t id) {
  return 63 - __builtin_clzll(id);
}

}  // namespace

FastQDigest::FastQDigest(double eps, int log_universe)
    : eps_(eps), log_u_(log_universe) {
  // Initial space budget ~ 6 log(u)/eps nodes; grown adaptively if the
  // threshold is still too small to compress down to it (early stream).
  const double budget = 6.0 * static_cast<double>(log_u_) / eps_;
  size_limit_ = static_cast<size_t>(std::min(budget, 1e9)) + 64;
}

int64_t FastQDigest::Threshold() const {
  return static_cast<int64_t>(eps_ * static_cast<double>(n_) /
                              static_cast<double>(log_u_));
}

StreamqStatus FastQDigest::InsertImpl(uint64_t value) {
  // Out-of-universe values are rejected rather than clamped: a clamp would
  // silently bias the top leaf, and an unchecked id would fall outside the
  // tree.
  const uint64_t max_value = (uint64_t{1} << log_u_) - 1;
  if (value > max_value) return StreamqStatus::kOutOfUniverse;
  ++n_;
  counts_[(uint64_t{1} << log_u_) + value] += 1;
  snapshot_dirty_ = true;
  MaybeCompress();
  return StreamqStatus::kOk;
}

void FastQDigest::MaybeCompress() {
  if (n_ >= 2 * std::max<uint64_t>(last_compress_n_, 1) ||
      counts_.size() > size_limit_) {
    Compress();
    // If COMPRESS cannot shrink below the budget (threshold still ~0 early
    // in the stream), grow the budget instead of thrashing.
    if (counts_.size() > size_limit_ / 2) size_limit_ = 2 * counts_.size() + 64;
  }
}

void FastQDigest::Compress() {
  STREAMQ_COMPACTION_EVENT(mutable_metrics(), counts_.size());
  STREAMQ_COMPACTION_TIMER(mutable_metrics());
  last_compress_n_ = n_;
  snapshot_dirty_ = true;
  const int64_t t = Threshold();
  if (t <= 0) return;
  // Bottom-up sweep: descending ids visit children before parents. Parents
  // created by a merge are appended to the worklist so merges cascade all
  // the way toward the root in one COMPRESS call.
  std::vector<uint64_t> ids;
  ids.reserve(counts_.size());
  for (const auto& [id, cnt] : counts_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), std::greater<>());
  std::vector<uint64_t> next_level;
  while (!ids.empty()) {
    for (uint64_t id : ids) {
      if (id == 1) continue;
      const auto it = counts_.find(id);
      if (it == counts_.end()) continue;  // already merged as a sibling
      const uint64_t sibling = id ^ 1;
      const uint64_t parent = id >> 1;
      const auto sib_it = counts_.find(sibling);
      const int64_t c_sib = sib_it == counts_.end() ? 0 : sib_it->second;
      const auto par_it = counts_.find(parent);
      const int64_t c_par = par_it == counts_.end() ? 0 : par_it->second;
      const int64_t merged = it->second + c_sib + c_par;
      if (merged <= t) {
        // Erase by key before the insertion: operator[] may rehash.
        counts_.erase(id);
        counts_.erase(sibling);
        if (par_it == counts_.end()) next_level.push_back(parent);
        counts_[parent] = merged;
      }
    }
    std::sort(next_level.begin(), next_level.end(), std::greater<>());
    ids.swap(next_level);
    next_level.clear();
  }
}

const std::vector<FastQDigest::Entry>& FastQDigest::SortedEntries() {
  if (!snapshot_dirty_) return snapshot_;
  snapshot_.clear();
  snapshot_.reserve(counts_.size());
  for (const auto& [id, cnt] : counts_) {
    const int depth = NodeDepth(id);
    const uint64_t width = uint64_t{1} << (log_u_ - depth);
    const uint64_t lo = (id - (uint64_t{1} << depth)) * width;
    snapshot_.push_back(Entry{lo + width - 1, width, cnt});
  }
  // q-digest query order: ascending interval end, smaller (more specific)
  // intervals first on ties.
  std::sort(snapshot_.begin(), snapshot_.end(), [](const Entry& a, const Entry& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.width < b.width;
  });
  snapshot_dirty_ = false;
  return snapshot_;
}

uint64_t FastQDigest::QueryImpl(double phi) {
  const auto& entries = SortedEntries();
  if (entries.empty()) return 0;  // empty digest: nothing to report
  const double target = phi * static_cast<double>(n_);
  int64_t acc = 0;
  for (const Entry& e : entries) {
    acc += e.count;
    if (static_cast<double>(acc) >= target) return e.hi;
  }
  return entries.back().hi;
}

std::vector<uint64_t> FastQDigest::QueryManyImpl(const std::vector<double>& phis) {
  const auto& entries = SortedEntries();
  std::vector<uint64_t> out;
  if (entries.empty()) {
    out.assign(phis.size(), 0);
    return out;
  }
  out.reserve(phis.size());
  size_t i = 0;
  int64_t acc = entries[0].count;
  for (double phi : phis) {
    const double target = phi * static_cast<double>(n_);
    while (static_cast<double>(acc) < target && i + 1 < entries.size()) {
      ++i;
      acc += entries[i].count;
    }
    out.push_back(entries[i].hi);
  }
  return out;
}

int64_t FastQDigest::EstimateRank(uint64_t value) {
  // Mass of every digest node is attributed to its interval end; the rank of
  // `value` is the mass strictly below it.
  const auto& entries = SortedEntries();
  int64_t acc = 0;
  for (const Entry& e : entries) {
    if (e.hi >= value) break;
    acc += e.count;
  }
  return acc;
}

size_t FastQDigest::MemoryBytes() const {
  return counts_.size() * kBytesPerHashSlot;
}

namespace {
struct NodeEntry {
  uint64_t id;
  int64_t count;
};
}  // namespace

std::string FastQDigest::Serialize() const {
  SerdeWriter w;
  w.F64(eps_);
  w.U32(static_cast<uint32_t>(log_u_));
  w.U64(n_);
  w.U64(last_compress_n_);
  w.U64(size_limit_);
  std::vector<NodeEntry> entries;
  entries.reserve(counts_.size());
  for (const auto& [id, cnt] : counts_) entries.push_back({id, cnt});
  w.PodVector(entries);
  return FrameSnapshot(SnapshotType::kFastQDigest, w.Take());
}

std::unique_ptr<FastQDigest> FastQDigest::Deserialize(const std::string& bytes) {
  std::string payload;
  if (!UnframeSnapshot(bytes, SnapshotType::kFastQDigest, &payload)) {
    return nullptr;
  }
  SerdeReader r(payload);
  double eps = 0;
  uint32_t log_u = 0;
  uint64_t n = 0, last = 0, limit = 0;
  std::vector<NodeEntry> entries;
  if (!r.F64(&eps) || !r.U32(&log_u) || !r.U64(&n) || !r.U64(&last) ||
      !r.U64(&limit) || !r.PodVector(&entries) || !r.Done()) {
    return nullptr;
  }
  if (eps <= 0 || eps >= 1 || log_u == 0 || log_u > 62) return nullptr;
  auto digest = std::make_unique<FastQDigest>(eps, static_cast<int>(log_u));
  digest->n_ = n;
  digest->last_compress_n_ = last;
  digest->size_limit_ = limit;
  digest->counts_.reserve(entries.size());
  const uint64_t max_id = (uint64_t{2} << log_u);
  for (const NodeEntry& e : entries) {
    if (e.id == 0 || e.id >= max_id) return nullptr;  // not a tree node
    digest->counts_[e.id] += e.count;
  }
  return digest;
}

StreamqStatus FastQDigest::MergeCompatibility(
    const QuantileSketch& other) const {
  const auto* peer = dynamic_cast<const FastQDigest*>(&other);
  if (peer == nullptr || peer->log_u_ != log_u_ || peer->eps_ != eps_) {
    return StreamqStatus::kMergeIncompatible;
  }
  return StreamqStatus::kOk;
}

StreamqStatus FastQDigest::MergeImpl(const QuantileSketch& other) {
  const auto& peer = static_cast<const FastQDigest&>(other);
  for (const auto& [id, cnt] : peer.counts_) counts_[id] += cnt;
  n_ += peer.n_;
  snapshot_dirty_ = true;
  Compress();
  return StreamqStatus::kOk;
}

}  // namespace streamq
