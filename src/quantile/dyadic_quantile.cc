#include "quantile/dyadic_quantile.h"

#include <algorithm>
#include <cmath>
#include <typeinfo>

#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic.h"
#include "sketch/exact_counts.h"
#include "sketch/rss_sketch.h"
#include "util/memory.h"
#include "util/serde.h"

namespace streamq {

StreamqStatus DyadicQuantileBase::ApplyUpdate(uint64_t value, int64_t delta) {
  // Values outside the configured universe are rejected, not clamped: a
  // clamp would silently bias the top cell, and an unchecked update would
  // be an out-of-bounds write into an exact-level counter array. Insert and
  // Erase reject identically, so no rejected insertion can leave a stray
  // deletion behind.
  if (log_u_ < 64 && value >= (uint64_t{1} << log_u_)) {
    return StreamqStatus::kOutOfUniverse;
  }
  n_ += delta;
  for (int i = 0; i < log_u_; ++i) {
    levels_[i]->Update(value >> i, delta);
  }
  return StreamqStatus::kOk;
}

size_t DyadicQuantileBase::InsertBatchImpl(const uint64_t* values, size_t n) {
  // Chunked so the scratch stays cache-resident however large the caller's
  // batch is. Within a chunk the accepted values visit the levels in level-
  // major order; the estimators are linear (counter adds commute), so the
  // final state matches the item-wise value-major loop bit-for-bit.
  constexpr size_t kChunk = 4096;
  const bool bounded = log_u_ < 64;
  const uint64_t limit = bounded ? (uint64_t{1} << log_u_) : 0;
  size_t rejected = 0;
  batch_scratch_.reserve(std::min(n, kChunk));
  for (size_t off = 0; off < n; off += kChunk) {
    const size_t m = std::min(kChunk, n - off);
    batch_scratch_.clear();
    for (size_t j = 0; j < m; ++j) {
      const uint64_t v = values[off + j];
      if (bounded && v >= limit) {
        ++rejected;
      } else {
        batch_scratch_.push_back(v);
      }
    }
    if (batch_scratch_.empty()) continue;
    n_ += static_cast<int64_t>(batch_scratch_.size());
    for (int i = 0; i < log_u_; ++i) {
      levels_[i]->UpdateBatch(batch_scratch_.data(), batch_scratch_.size(),
                              +1);
      if (i + 1 < log_u_) {
        for (uint64_t& v : batch_scratch_) v >>= 1;
      }
    }
  }
  return rejected;
}

StreamqStatus DyadicQuantileBase::MergeCompatibility(
    const QuantileSketch& other) const {
  // typeid (not dynamic_cast) so a DCM never absorbs a DCS or RSS sibling
  // through the shared base: their per-level estimators are different
  // sketches even at equal dimensions.
  if (typeid(*this) != typeid(other)) return StreamqStatus::kMergeIncompatible;
  const auto& peer = static_cast<const DyadicQuantileBase&>(other);
  if (peer.log_u_ != log_u_ || peer.width_ != width_ ||
      peer.depth_ != depth_ || peer.seed_ != seed_) {
    return StreamqStatus::kMergeIncompatible;
  }
  // Defense in depth: equal construction parameters imply structurally
  // identical levels, but verify before MergeImpl commits to mutating (an
  // accepted merge must not fail halfway).
  for (int i = 0; i < log_u_; ++i) {
    if (!levels_[i]->CompatibleForMerge(*peer.levels_[i])) {
      return StreamqStatus::kMergeIncompatible;
    }
  }
  return StreamqStatus::kOk;
}

StreamqStatus DyadicQuantileBase::MergeImpl(const QuantileSketch& other) {
  const auto& peer = static_cast<const DyadicQuantileBase&>(other);
  n_ += peer.n_;
  for (int i = 0; i < log_u_; ++i) {
    levels_[i]->MergeFrom(*peer.levels_[i]);
  }
  return StreamqStatus::kOk;
}

double DyadicQuantileBase::CellEstimate(int level, uint64_t index) const {
  if (level >= log_u_) return static_cast<double>(n_);
  return levels_[level]->Estimate(index);
}

bool DyadicQuantileBase::LevelIsExact(int level) const {
  if (level >= log_u_) return true;
  return levels_[level]->IsExact();
}

double DyadicQuantileBase::LevelVariance(int level) const {
  if (level >= log_u_) return 0.0;
  return levels_[level]->VarianceEstimate();
}

int64_t DyadicQuantileBase::EstimateRank(uint64_t value) {
  double rank = 0.0;
  for (const DyadicCell& cell : PrefixDecomposition(value, log_u_)) {
    rank += CellEstimate(cell.level, cell.index);
  }
  return static_cast<int64_t>(std::llround(rank));
}

uint64_t DyadicQuantileBase::QueryImpl(double phi) {
  // Build the answer bit by bit: x stays the largest prefix whose estimated
  // rank is below the target (binary search on [u], as in the paper).
  double target = std::clamp(phi * static_cast<double>(n_), 0.0,
                             static_cast<double>(n_));
  if (target <= 0.0) target = 0.5;  // phi ~ 0: the minimum still has rank 0
  uint64_t x = 0;
  for (int bit = log_u_ - 1; bit >= 0; --bit) {
    const uint64_t candidate = x | (uint64_t{1} << bit);
    double rank = 0.0;
    for (const DyadicCell& cell : PrefixDecomposition(candidate, log_u_)) {
      rank += CellEstimate(cell.level, cell.index);
    }
    if (rank < target) x = candidate;
  }
  return x;
}

uint64_t DyadicQuantileBase::QueryByDescent(double phi) {
  if (!PhiIsValid(phi)) return 0;
  double target = phi * static_cast<double>(n_);
  target = std::clamp(target, 0.0, static_cast<double>(n_));
  uint64_t cell = 0;
  double remaining = static_cast<double>(n_);
  for (int level = log_u_; level > 0; --level) {
    const double left = std::clamp(CellEstimate(level - 1, cell << 1), 0.0, remaining);
    if (target <= left) {
      cell <<= 1;
      remaining = left;
    } else {
      target -= left;
      remaining -= left;
      cell = (cell << 1) | 1;
    }
  }
  return cell;
}

std::string DyadicQuantileBase::Serialize() const {
  SerdeWriter w;
  w.U32(static_cast<uint32_t>(log_u_));
  w.U64(width_);
  w.U32(static_cast<uint32_t>(depth_));
  w.U64(seed_);
  w.I64(n_);
  for (const auto& level : levels_) level->SaveCounters(w);
  return FrameSnapshot(snapshot_type(), w.Take());
}

bool DyadicQuantileBase::LoadFrom(SerdeReader& r) {
  // Header (log_u/width/depth/seed) was already consumed by the caller to
  // rebuild the structure; restore the stream count and counters.
  if (!r.I64(&n_)) return false;
  for (auto& level : levels_) {
    if (!level->LoadCounters(r)) return false;
  }
  return r.Done();
}

namespace {
struct DyadicHeader {
  int log_u;
  uint64_t width;
  int depth;
  uint64_t seed;
};

bool ReadDyadicHeader(SerdeReader& r, DyadicHeader* h) {
  uint32_t log_u = 0, depth = 0;
  if (!r.U32(&log_u) || !r.U64(&h->width) || !r.U32(&depth) ||
      !r.U64(&h->seed)) {
    return false;
  }
  if (log_u > 63 || depth == 0 || depth > 64 || h->width == 0) return false;
  h->log_u = static_cast<int>(log_u);
  h->depth = static_cast<int>(depth);
  return true;
}
}  // namespace

size_t DyadicQuantileBase::MemoryBytes() const {
  size_t total = kBytesPerCounter;  // the exact stream count n
  for (const auto& level : levels_) total += level->MemoryBytes();
  return total;
}

namespace {

// Builds per-level estimators, replacing the sketch by exact counters
// whenever the reduced universe is no larger than the sketch's counter
// array.
template <typename Sketch>
void PopulateLevels(std::vector<std::unique_ptr<FrequencyEstimator>>& levels,
                    int log_u, uint64_t width, int depth, uint64_t seed) {
  const uint64_t sketch_counters = width * static_cast<uint64_t>(depth);
  for (int i = 0; i < log_u; ++i) {
    const int reduced_bits = log_u - i;
    const bool small = reduced_bits < 63 &&
                       (uint64_t{1} << reduced_bits) <= sketch_counters;
    if (small) {
      levels[i] = std::make_unique<ExactCounts>(uint64_t{1} << reduced_bits);
    } else {
      levels[i] = std::make_unique<Sketch>(width, depth,
                                           seed * 0x9E3779B97F4A7C15ULL + i);
    }
  }
}

}  // namespace

Dcm::Dcm(double eps, int log_u, int depth, uint64_t seed)
    : DyadicQuantileBase(log_u) {
  const uint64_t width = static_cast<uint64_t>(
      std::ceil(static_cast<double>(log_u) / eps));
  BuildLevels(width, depth, seed);
}

std::unique_ptr<Dcm> Dcm::WithWidth(uint64_t width, int depth, int log_u,
                                    uint64_t seed) {
  std::unique_ptr<Dcm> dcm(new Dcm(log_u));
  dcm->BuildLevels(width, depth, seed);
  return dcm;
}

void Dcm::BuildLevels(uint64_t width, int depth, uint64_t seed) {
  width_ = width;
  depth_ = depth;
  seed_ = seed;
  PopulateLevels<CountMin>(levels_, log_u_, width, depth, seed);
}

std::unique_ptr<Dcm> Dcm::Deserialize(const std::string& bytes) {
  std::string payload;
  if (!UnframeSnapshot(bytes, SnapshotType::kDcm, &payload)) return nullptr;
  SerdeReader r(payload);
  DyadicHeader h;
  if (!ReadDyadicHeader(r, &h)) return nullptr;
  auto dcm = WithWidth(h.width, h.depth, h.log_u, h.seed);
  if (!dcm->LoadFrom(r)) return nullptr;
  return dcm;
}

Dcs::Dcs(double eps, int log_u, int depth, uint64_t seed)
    : DyadicQuantileBase(log_u) {
  const uint64_t width = static_cast<uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(log_u)) / eps));
  BuildLevels(width, depth, seed);
}

std::unique_ptr<Dcs> Dcs::WithWidth(uint64_t width, int depth, int log_u,
                                    uint64_t seed) {
  std::unique_ptr<Dcs> dcs(new Dcs(log_u));
  dcs->BuildLevels(width, depth, seed);
  return dcs;
}

void Dcs::BuildLevels(uint64_t width, int depth, uint64_t seed) {
  width_ = width;
  depth_ = depth;
  seed_ = seed;
  PopulateLevels<CountSketch>(levels_, log_u_, width, depth, seed);
}

std::unique_ptr<Dcs> Dcs::Deserialize(const std::string& bytes) {
  std::string payload;
  if (!UnframeSnapshot(bytes, SnapshotType::kDcs, &payload)) return nullptr;
  SerdeReader r(payload);
  DyadicHeader h;
  if (!ReadDyadicHeader(r, &h)) return nullptr;
  auto dcs = WithWidth(h.width, h.depth, h.log_u, h.seed);
  if (!dcs->LoadFrom(r)) return nullptr;
  return dcs;
}

RssQuantile::RssQuantile(uint64_t width, int depth, int log_u, uint64_t seed)
    : DyadicQuantileBase(log_u) {
  width_ = width;
  depth_ = depth;
  seed_ = seed;
  PopulateLevels<RssSketch>(levels_, log_u_, width, depth, seed);
}

}  // namespace streamq
