// Sliding-window quantiles (extension; the paper's related work cites
// Arasu & Manku, PODS'04).
//
// Maintains eps-approximate quantiles over the most recent `window`
// elements of the stream. We use the block decomposition at the base of the
// Arasu-Manku construction: the stream is cut into blocks of
// B = ceil(eps*W/2) elements, each summarised by a GKArray with error
// eps/2, and the last ceil(W/B)+1 block summaries are retained. A query
// merges the live summaries into one weighted sample; the partially expired
// oldest block contributes at most B = eps*W/2 rank error and each summary
// at most (eps/2)*B, so the total error is at most eps*W.
//
// Space: O((1/eps) * |GK summary of B elements|) -- independent of the
// stream length, proportional to 1/eps^2 * log(eps^2 W) in the worst case.
// (The full Arasu-Manku structure layers geometrically coarser levels to
// shave the 1/eps factor; this single-level variant is the simple,
// practical version.)

#ifndef STREAMQ_QUANTILE_SLIDING_WINDOW_H_
#define STREAMQ_QUANTILE_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "quantile/gk_array.h"
#include "quantile/weighted_sample.h"

namespace streamq {

class SlidingWindowQuantile {
 public:
  /// eps: rank-error target relative to the window size; window: number of
  /// most recent elements the summary covers.
  SlidingWindowQuantile(double eps, uint64_t window);

  /// Appends one element (the oldest element leaves the window once more
  /// than `window` elements have arrived).
  void Insert(uint64_t value);

  /// eps-approximate phi-quantile of the current window contents.
  uint64_t Query(double phi);

  /// Estimated rank of `value` within the current window.
  int64_t EstimateRank(uint64_t value);

  /// Number of elements the answer effectively covers: min(n, window),
  /// up to one block of slack at the trailing edge.
  uint64_t WindowCount() const;

  /// Total elements ever inserted.
  uint64_t Count() const { return n_; }

  /// Accounting bytes across all live block summaries.
  size_t MemoryBytes() const;

  /// Number of live blocks (for tests).
  size_t BlockCount() const { return blocks_.size(); }

 private:
  struct Block {
    GkArrayImpl<uint64_t> summary;
    uint64_t count = 0;
    explicit Block(double eps) : summary(eps) {}
  };

  std::vector<WeightedElement<uint64_t>> MergedSample();
  void Expire();

  double eps_;
  uint64_t window_;
  uint64_t block_size_;
  uint64_t n_ = 0;
  std::deque<Block> blocks_;  // newest at the back
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_SLIDING_WINDOW_H_
