// Query machinery shared by the sample-based summaries (Random, MRL99).
//
// Both summaries end up holding a collection of (element, weight) pairs where
// the weight says how many stream elements the sample stands for. The
// estimated rank of v is the total weight of stored elements smaller than v,
// and a phi-quantile is the stored element whose estimated rank is closest
// to phi * n (section 2.2 of the paper).

#ifndef STREAMQ_QUANTILE_WEIGHTED_SAMPLE_H_
#define STREAMQ_QUANTILE_WEIGHTED_SAMPLE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace streamq {

template <typename T>
struct WeightedElement {
  T value;
  int64_t weight;
};

/// Sorted view over a weighted sample supporting rank and quantile queries.
template <typename T, typename Less = std::less<T>>
class WeightedSampleView {
 public:
  /// Takes ownership of the (unsorted) sample and prepares prefix sums.
  explicit WeightedSampleView(std::vector<WeightedElement<T>> sample)
      : sample_(std::move(sample)) {
    Less less;
    std::sort(sample_.begin(), sample_.end(),
              [&](const WeightedElement<T>& a, const WeightedElement<T>& b) {
                return less(a.value, b.value);
              });
    ranks_.resize(sample_.size());
    int64_t prefix = 0;
    for (size_t i = 0; i < sample_.size(); ++i) {
      // Equal values share the same estimated rank (#weight strictly below).
      if (i > 0 && !less(sample_[i - 1].value, sample_[i].value)) {
        ranks_[i] = ranks_[i - 1];
      } else {
        ranks_[i] = prefix;
      }
      prefix += sample_[i].weight;
    }
    total_ = prefix;
  }

  bool Empty() const { return sample_.empty(); }
  int64_t TotalWeight() const { return total_; }

  /// Estimated rank of `value`: total weight of stored elements < value.
  int64_t EstimateRank(const T& value) const {
    Less less;
    auto it = std::lower_bound(
        sample_.begin(), sample_.end(), value,
        [&](const WeightedElement<T>& a, const T& v) { return less(a.value, v); });
    if (it == sample_.end()) return total_;
    return ranks_[it - sample_.begin()];
  }

  /// The stored element whose estimated rank is closest to `target`.
  T Quantile(double target) const {
    // ranks_ is non-decreasing: binary search the insertion point, then
    // compare the two neighbours.
    size_t lo = 0, hi = ranks_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (static_cast<double>(ranks_[mid]) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == ranks_.size()) return sample_.back().value;
    if (lo == 0) return sample_[0].value;
    const double d_hi = static_cast<double>(ranks_[lo]) - target;
    const double d_lo = target - static_cast<double>(ranks_[lo - 1]);
    return d_lo <= d_hi ? sample_[lo - 1].value : sample_[lo].value;
  }

 private:
  std::vector<WeightedElement<T>> sample_;
  std::vector<int64_t> ranks_;
  int64_t total_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_WEIGHTED_SAMPLE_H_
