// GKAdaptive: the variant of the Greenwald-Khanna summary the original paper
// implemented (and the paper under reproduction re-evaluates).
//
// Differences from the analysed algorithm (section 2.1.1 of the paper):
//   1. A new element v is inserted with Delta = g_i + Delta_i - 1, where
//      (v_i, g_i, Delta_i) is its successor tuple (Delta = 0 when v is a new
//      maximum).
//   2. COMPRESS is never run. Instead, after each insertion the summary tries
//      to remove one "removable" tuple: tuple i is removable when
//      g_i + g_{i+1} + Delta_{i+1} <= floor(2 eps n). The newly inserted
//      tuple is checked first; otherwise the globally cheapest candidate is
//      taken from a min-heap keyed by g_i + g_{i+1} + Delta_{i+1}.
//
// The heap is lazy: keys change when a neighbour is inserted or removed, so
// each change pushes a fresh (key, id, version) entry and stale entries are
// discarded on pop. The heap is rebuilt when stale entries dominate.
//
// This class is a template over the element type: GKAdaptive is
// comparison-based and works for any strict-weak-ordered T.

#ifndef STREAMQ_QUANTILE_GK_ADAPTIVE_H_
#define STREAMQ_QUANTILE_GK_ADAPTIVE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "obs/sketch_metrics.h"
#include "quantile/gk_tuple_store.h"
#include "util/memory.h"

namespace streamq {

template <typename T, typename Less = std::less<T>>
class GkAdaptiveImpl {
 public:
  explicit GkAdaptiveImpl(double eps) : eps_(eps) {}

  void Insert(const T& v) {
    ++n_;
    const int64_t threshold = Threshold();
    auto succ = store_.Successor(v);
    int64_t delta = 0;
    if (succ != store_.End()) {
      const auto& snode = store_.NodeOf(succ->id);
      delta = snode.g + snode.delta - 1;
    }
    auto it = store_.InsertBefore(succ, v, /*g=*/1, delta);

    // The successor's removability key involves the tuple before it, which
    // is now the new tuple; the new tuple's key involves succ. Refresh both.
    PushKey(it);
    if (it != store_.Begin()) PushKey(std::prev(it));

    // Paper: "first check if the tuple itself is removable, and remove it
    // immediately if so. Otherwise check the top tuple in the heap."
    bool removed_self = false;
    if (succ != store_.End()) {
      const auto& self = store_.NodeOf(it->id);
      const auto& snode = store_.NodeOf(succ->id);
      if (self.g + snode.g + snode.delta <= threshold) {
        Remove(it);
        removed_self = true;
      }
    }
    if (!removed_self) TryRemoveCheapest(threshold);
    MaybeCompactHeap();
  }

  T Query(double phi) const { return store_.Query(phi, n_); }

  std::vector<T> QueryMany(const std::vector<double>& phis) const {
    return store_.QueryMany(phis, n_);
  }

  int64_t EstimateRank(const T& v) const { return store_.EstimateRank(v); }

  uint64_t Count() const { return n_; }
  size_t TupleCount() const { return store_.Size(); }

  /// Optional instrumentation hook (owned by the wrapping QuantileSketch);
  /// never serialized, may stay null.
  void set_metrics(obs::SketchMetrics* metrics) { metrics_ = metrics; }

  size_t MemoryBytes() const {
    // Tuples + BST links (store) plus live heap entries (key + pointer).
    return store_.MemoryBytes() +
           heap_.size() * (kBytesPerCounter + kBytesPerPointer);
  }

  /// Snapshot to a byte buffer (trivially copyable element types only).
  void Serialize(SerdeWriter& w) const
    requires std::is_trivially_copyable_v<T>
  {
    w.F64(eps_);
    w.U64(n_);
    store_.Serialize(w);
  }

  /// Restores a snapshot; the lazy heap is rebuilt from scratch.
  bool Deserialize(SerdeReader& r)
    requires std::is_trivially_copyable_v<T>
  {
    if (!r.F64(&eps_) || !r.U64(&n_) || !store_.Deserialize(r)) return false;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> empty;
    heap_.swap(empty);
    for (auto it = store_.Begin(); it != store_.End(); ++it) PushKey(it);
    return true;
  }

  /// Test hook: verifies invariant (2) and the orderedness of the summary.
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    for (auto it = store_.Begin(); it != store_.End(); ++it) {
      const auto& node = store_.NodeOf(it->id);
      fn(it->v, node.g, node.delta);
    }
  }

 private:
  using Store = GkTupleStore<T, Less>;
  using Iterator = typename Store::Iterator;

  struct HeapEntry {
    int64_t key;
    int32_t id;
    uint32_t version;
    bool operator>(const HeapEntry& o) const { return key > o.key; }
  };

  int64_t Threshold() const {
    return static_cast<int64_t>(2.0 * eps_ * static_cast<double>(n_));
  }

  // Removability key of the tuple at `it` (requires a successor).
  int64_t KeyOf(Iterator it) {
    auto nxt = std::next(it);
    const auto& node = store_.NodeOf(it->id);
    const auto& snode = store_.NodeOf(nxt->id);
    return node.g + snode.g + snode.delta;
  }

  void PushKey(Iterator it) {
    if (std::next(it) == store_.End()) return;  // last tuple: not removable
    auto& node = store_.NodeOf(it->id);
    ++node.version;
    heap_.push(HeapEntry{KeyOf(it), it->id, node.version});
  }

  void Remove(Iterator it) {
    // Each fold of a removable tuple is GKAdaptive's (one-tuple) COMPRESS.
    STREAMQ_IF_METRICS(if (metrics_ != nullptr) metrics_->compressions.Inc();)
    Iterator succ = store_.RemoveIntoSuccessor(it);
    // succ's g changed -> its key changed; the tuple before the removed one
    // now precedes succ -> its key changed too.
    PushKey(succ);
    if (succ != store_.Begin()) PushKey(std::prev(succ));
  }

  void TryRemoveCheapest(int64_t threshold) {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      auto& node = store_.NodeOf(top.id);
      if (node.version != top.version) {
        heap_.pop();  // stale
        continue;
      }
      if (top.key > threshold) return;  // cheapest candidate too expensive
      heap_.pop();
      Remove(node.self);
      return;
    }
  }

  void MaybeCompactHeap() {
    if (heap_.size() <= 4 * store_.Size() + 64) return;
    STREAMQ_COMPACTION_EVENT(metrics_, heap_.size());
    STREAMQ_COMPACTION_TIMER(metrics_);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> fresh;
    for (auto it = store_.Begin(); it != store_.End(); ++it) {
      if (std::next(it) == store_.End()) break;
      auto& node = store_.NodeOf(it->id);
      ++node.version;
      fresh.push(HeapEntry{KeyOf(it), it->id, node.version});
    }
    heap_.swap(fresh);
  }

  double eps_;
  uint64_t n_ = 0;
  Store store_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  obs::SketchMetrics* metrics_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_GK_ADAPTIVE_H_
