// GKArray: the journal version's cache-friendly batch implementation of the
// adaptive GK summary (section 2.1.2 of the paper).
//
// Tuples live in a flat sorted array; incoming elements are buffered, and
// when the buffer (of size Theta(|L|)) fills it is sorted and merged into
// the summary in one linear pass. During the merge each buffer element v is
// assigned the tuple (v, 1, g_i + Delta_i - 1) from its successor summary
// tuple -- matching the one-at-a-time GKAdaptive semantics, because buffered
// elements are conceptually inserted in ascending order -- and every tuple
// is dropped (folded into its successor) the moment it is removable:
// g + g_next + Delta_next <= floor(2 eps n), with n advancing as buffered
// elements are consumed.
//
// No search tree, no heap: the only operations are sort and merge, which is
// what makes this variant much faster once the summary outgrows the cache.

#ifndef STREAMQ_QUANTILE_GK_ARRAY_H_
#define STREAMQ_QUANTILE_GK_ARRAY_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "obs/sketch_metrics.h"
#include "util/branchless.h"
#include "util/memory.h"
#include "util/serde.h"

namespace streamq {

template <typename T, typename Less = std::less<T>>
class GkArrayImpl {
 public:
  /// buffer_factor scales the element buffer relative to the summary size
  /// (the paper's variant uses Theta(|L|), i.e. factor 1). Exposed for the
  /// buffering ablation; 0 pins the buffer at min_buffer.
  explicit GkArrayImpl(double eps, size_t min_buffer = 256,
                       double buffer_factor = 1.0)
      : eps_(eps), min_buffer_(min_buffer), buffer_factor_(buffer_factor) {
    buffer_.reserve(min_buffer_);
  }

  void Insert(const T& v) {
    buffer_.push_back(v);
    if (buffer_.size() >= BufferCapacity()) Flush();
  }

  /// Inserts values[0..n) in order, bit-identically to the item-wise loop:
  /// the buffer is bulk-appended up to exactly the flush boundary the
  /// per-item path would hit, so every Flush sees the same buffer contents
  /// (and hence produces the same summary).
  void InsertBatch(const T* values, size_t n) {
    size_t i = 0;
    while (i < n) {
      const size_t cap = BufferCapacity();
      if (buffer_.size() >= cap) {  // defensive; Insert() flushes at cap
        buffer_.push_back(values[i++]);
        if (buffer_.size() >= BufferCapacity()) Flush();
        continue;
      }
      const size_t take = std::min(cap - buffer_.size(), n - i);
      buffer_.insert(buffer_.end(), values + i, values + i + take);
      i += take;
      if (buffer_.size() >= cap) Flush();
    }
  }

  T Query(double phi) {
    Flush();
    if (summary_.empty()) return T{};  // empty summary: nothing to report
    const double target = phi * static_cast<double>(n_);
    const double tol = static_cast<double>(MaxGap()) / 2.0;
    int64_t prefix = 0;
    const T* prev = nullptr;
    for (const Tuple& t : summary_) {
      prefix += t.g;
      if (prev != nullptr &&
          static_cast<double>(prefix + t.delta) > target + tol) {
        return *prev;
      }
      prev = &t.v;
    }
    return *prev;
  }

  std::vector<T> QueryMany(const std::vector<double>& phis) {
    Flush();
    std::vector<T> out;
    out.reserve(phis.size());
    if (summary_.empty()) {
      out.assign(phis.size(), T{});
      return out;
    }
    const double tol = static_cast<double>(MaxGap()) / 2.0;
    size_t i = 1;
    int64_t prefix = summary_[0].g;
    const T* prev = &summary_[0].v;
    for (double phi : phis) {
      const double bound = phi * static_cast<double>(n_) + tol;
      while (i < summary_.size()) {
        const Tuple& t = summary_[i];
        if (static_cast<double>(prefix + t.g + t.delta) > bound) break;
        prefix += t.g;
        prev = &t.v;
        ++i;
      }
      out.push_back(*prev);
    }
    return out;
  }

  int64_t EstimateRank(const T& value) {
    Flush();
    Less less;
    int64_t prefix = 0;
    for (const Tuple& t : summary_) {
      if (!less(t.v, value)) {
        return prefix + (t.g + t.delta - 1) / 2;
      }
      prefix += t.g;
    }
    return prefix;
  }

  uint64_t Count() const { return n_ + buffer_.size(); }
  size_t TupleCount() const { return summary_.size(); }

  size_t MemoryBytes() const {
    // Flat tuple array (v, g, Delta) plus the element buffer; no pointers.
    return summary_.capacity() * (kBytesPerElement + 2 * kBytesPerCounter) +
           buffer_.capacity() * kBytesPerElement;
  }

  template <typename Fn>
  void ForEachTuple(Fn&& fn) {
    Flush();
    for (const Tuple& t : summary_) fn(t.v, t.g, t.delta);
  }

  /// Snapshot to a byte buffer (trivially copyable element types only).
  void Serialize(SerdeWriter& w) const
    requires std::is_trivially_copyable_v<T>
  {
    w.F64(eps_);
    w.U64(n_);
    w.PodVector(summary_);
    w.PodVector(buffer_);
  }

  /// Restores a snapshot; returns false (leaving *this unspecified) on
  /// corrupt input.
  bool Deserialize(SerdeReader& r)
    requires std::is_trivially_copyable_v<T>
  {
    return r.F64(&eps_) && r.U64(&n_) && r.PodVector(&summary_) &&
           r.PodVector(&buffer_);
  }

  /// Optional instrumentation hook (owned by the wrapping QuantileSketch);
  /// never serialized, may stay null.
  void set_metrics(obs::SketchMetrics* metrics) { metrics_ = metrics; }

  /// Flushes buffered elements into the summary (idempotent when empty).
  void Flush() {
    if (buffer_.empty()) return;
    STREAMQ_COMPACTION_EVENT(metrics_, buffer_.size());
    STREAMQ_COMPACTION_TIMER(metrics_);
    std::sort(buffer_.begin(), buffer_.end(), Less());

    std::vector<Tuple> out;
    out.reserve(summary_.size() + buffer_.size());
    Less less;

    uint64_t cur_n = n_;
    size_t si = 0;  // next summary tuple
    size_t bi = 0;  // next buffer element
    bool has_pending = false;
    Tuple pending{};

    auto emit = [&](const Tuple& t, bool removable_candidate) {
      // Fold `pending` into t if pending is removable w.r.t. t; a tuple that
      // is the current maximum is never folded away (see gk_tuple_store.h).
      const int64_t threshold =
          static_cast<int64_t>(2.0 * eps_ * static_cast<double>(cur_n));
      if (has_pending && removable_candidate &&
          pending.g + t.g + t.delta <= threshold) {
        Tuple merged = t;
        merged.g += pending.g;
        pending = merged;
      } else {
        if (has_pending) out.push_back(pending);
        pending = t;
        has_pending = true;
      }
    };

    // Merge walk, restructured around a branch-free binary search: for each
    // buffer element, the run of summary tuples preceding it ends at its
    // upper bound (summary wins ties, so tuples with value <= the element
    // come first). The emit sequence -- and therefore the folded output --
    // is identical to the element-at-a-time two-way merge, but the control
    // flow is driven by log-depth cmov probes instead of one value
    // comparison branch per tuple.
    while (bi < buffer_.size()) {
      const size_t run_end =
          si + BranchlessUpperBound(
                   summary_.data() + si, summary_.size() - si, buffer_[bi],
                   [&](const T& v, const Tuple& t) { return less(v, t.v); });
      for (; si < run_end; ++si) {
        emit(summary_[si], /*removable_candidate=*/true);
      }
      ++cur_n;
      Tuple t;
      t.v = buffer_[bi++];
      t.g = 1;
      t.delta = si < summary_.size()
                    ? summary_[si].g + summary_[si].delta - 1
                    : 0;  // new maximum: rank known exactly
      emit(t, /*removable_candidate=*/true);
    }
    for (; si < summary_.size(); ++si) {
      emit(summary_[si], /*removable_candidate=*/true);
    }
    if (has_pending) out.push_back(pending);
    summary_.swap(out);
    n_ = cur_n;
    buffer_.clear();
  }

 private:
  struct Tuple {
    T v{};
    int64_t g = 0;
    int64_t delta = 0;
  };

  size_t BufferCapacity() const {
    return std::max(min_buffer_,
                    static_cast<size_t>(buffer_factor_ *
                                        static_cast<double>(summary_.size())));
  }

  int64_t MaxGap() const {
    int64_t m = 0;
    for (const Tuple& t : summary_) m = std::max(m, t.g + t.delta);
    return m;
  }

  double eps_;
  size_t min_buffer_ = 256;
  double buffer_factor_ = 1.0;
  uint64_t n_ = 0;  // elements represented by summary_ (excludes buffer)
  std::vector<Tuple> summary_;
  std::vector<T> buffer_;
  obs::SketchMetrics* metrics_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_GK_ARRAY_H_
