#include "quantile/post/blue_solver.h"

#include <cassert>

namespace streamq {

namespace {

// Solves one OLS subtree rooted at `r` (an exact node whose descendants in
// the subtree are all estimated). Writes corrected values into xstar.
// Scratch vectors are indexed by global node index and owned by the caller.
struct Scratch {
  std::vector<double> alpha, beta, lambda, pi, zprime, z, f;
  std::vector<int32_t> post;  // reusable postorder buffer
};

void SolveSubtree(const std::vector<TreeNode>& nodes, int32_t r,
                  std::vector<double>& xstar, Scratch& s) {
  // Postorder over the subtree (children before parents).
  s.post.clear();
  {
    std::vector<int32_t> stack = {r};
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      s.post.push_back(v);
      if (nodes[v].left >= 0) stack.push_back(nodes[v].left);
      if (nodes[v].right >= 0) stack.push_back(nodes[v].right);
    }
    // Reversing a DFS preorder gives a valid postorder for our purposes
    // (every child precedes its parent).
  }
  if (s.post.size() <= 1) return;  // no estimated nodes below r

  // --- Pass 1 (bottom-up): alpha & beta -------------------------------
  for (auto it = s.post.rbegin(); it != s.post.rend(); ++it) {
    const int32_t v = *it;
    const TreeNode& node = nodes[v];
    const int32_t c1 = node.left;
    const int32_t c2 = node.right;
    if (c1 < 0 && c2 < 0) {
      // Leaf of the truncated tree.
      s.beta[v] = 1.0 / node.sigma2;
      continue;
    }
    double child_term = 0.0;
    if (c1 >= 0 && c2 >= 0) {
      const double b1 = s.beta[c1];
      const double b2 = s.beta[c2];
      s.alpha[c1] = b2 / (b1 + b2);
      s.alpha[c2] = b1 / (b1 + b2);
      child_term = s.alpha[c1] * b1;  // == alpha[c2] * b2
    } else {
      const int32_t c = c1 >= 0 ? c1 : c2;
      s.alpha[c] = 1.0;
      child_term = s.beta[c];
    }
    if (v == r) break;  // the root's beta is never used (sigma2 == 0)
    s.beta[v] = child_term + 1.0 / node.sigma2;
  }

  // --- Pass 2 (top-down): lambda, pi, Z' ------------------------------
  s.lambda[r] = 1.0;
  s.zprime[r] = 0.0;
  for (const int32_t v : s.post) {
    if (v == r) continue;
    const int32_t p = nodes[v].parent;
    s.lambda[v] = s.alpha[v] * s.lambda[p];
    s.pi[v] = s.beta[v] * s.lambda[v];
    s.zprime[v] = s.zprime[p] + nodes[v].y / nodes[v].sigma2;
  }
  // s.post is a preorder (parents before children), so the loop above sees
  // each parent before its children.

  // --- Pass 3 (bottom-up): Z ------------------------------------------
  for (auto it = s.post.rbegin(); it != s.post.rend(); ++it) {
    const int32_t v = *it;
    const TreeNode& node = nodes[v];
    if (node.left < 0 && node.right < 0) {
      s.z[v] = s.lambda[v] * s.zprime[v];
    } else {
      s.z[v] = 0.0;
      if (node.left >= 0) s.z[v] += s.z[node.left];
      if (node.right >= 0) s.z[v] += s.z[node.right];
    }
  }

  // --- Pass 4 (top-down): Delta, F, x* --------------------------------
  const int32_t first_child = nodes[r].left >= 0 ? nodes[r].left : nodes[r].right;
  const double delta = (s.z[r] - nodes[r].y * s.pi[first_child]) / s.lambda[r];
  s.f[r] = 0.0;
  xstar[r] = nodes[r].y;
  for (const int32_t v : s.post) {
    if (v == r) continue;
    const int32_t p = nodes[v].parent;
    xstar[v] = (s.z[v] - s.lambda[v] * s.f[p] - s.lambda[v] * delta) / s.pi[v];
    s.f[v] = s.f[p] + xstar[v] / nodes[v].sigma2;
  }
}

}  // namespace

std::vector<double> SolveBlue(const TruncatedTree& tree) {
  const std::vector<TreeNode>& nodes = tree.nodes();
  std::vector<double> xstar(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) xstar[i] = nodes[i].y;
  if (nodes.empty()) return xstar;

  Scratch s;
  s.alpha.assign(nodes.size(), 0.0);
  s.beta.assign(nodes.size(), 0.0);
  s.lambda.assign(nodes.size(), 0.0);
  s.pi.assign(nodes.size(), 0.0);
  s.zprime.assign(nodes.size(), 0.0);
  s.z.assign(nodes.size(), 0.0);
  s.f.assign(nodes.size(), 0.0);

  // OLS subtree roots: exact nodes with at least one estimated child.
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].sigma2 != 0.0) continue;
    const int32_t l = nodes[i].left;
    const int32_t rgt = nodes[i].right;
    const bool estimated_child = (l >= 0 && nodes[l].sigma2 > 0.0) ||
                                 (rgt >= 0 && nodes[rgt].sigma2 > 0.0);
    if (estimated_child) {
      SolveSubtree(nodes, static_cast<int32_t>(i), xstar, s);
    }
  }
  return xstar;
}

}  // namespace streamq
