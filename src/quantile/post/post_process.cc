#include "quantile/post/post_process.h"

#include <algorithm>
#include <cmath>

#include "quantile/post/blue_solver.h"
#include "util/memory.h"

namespace streamq {

namespace {
inline uint64_t NodeLow(const TreeNode& node) { return node.cell << node.level; }
inline uint64_t NodeWidth(const TreeNode& node) {
  return uint64_t{1} << node.level;
}
}  // namespace

DcsPost::DcsPost(double eps, int log_u, int depth, double eta, uint64_t seed)
    : dcs_(std::make_unique<Dcs>(eps, log_u, depth, seed)),
      eps_(eps),
      eta_(eta) {}

DcsPost::DcsPost(std::unique_ptr<Dcs> dcs, double eps, double eta)
    : dcs_(std::move(dcs)), eps_(eps), eta_(eta) {}

std::unique_ptr<DcsPost> DcsPost::WithWidth(uint64_t width, int depth,
                                            int log_u, double eps, double eta,
                                            uint64_t seed) {
  return std::unique_ptr<DcsPost>(
      new DcsPost(Dcs::WithWidth(width, depth, log_u, seed), eps, eta));
}

StreamqStatus DcsPost::InsertImpl(uint64_t value) {
  const StreamqStatus status = dcs_->Insert(value);
  if (status == StreamqStatus::kOk) dirty_ = true;
  return status;
}

size_t DcsPost::InsertBatchImpl(const uint64_t* values, size_t n) {
  // Delegates to the inner DCS batch path (the inner sketch counts its own
  // metrics, as in InsertImpl); any accepted element invalidates the
  // finalized tree.
  const size_t rejected = dcs_->UpdateBatch(std::span(values, n));
  if (rejected < n) dirty_ = true;
  return rejected;
}

StreamqStatus DcsPost::EraseImpl(uint64_t value) {
  const StreamqStatus status = dcs_->Erase(value);
  if (status == StreamqStatus::kOk) dirty_ = true;
  return status;
}

void DcsPost::Finalize() {
  STREAMQ_COMPACTION_TIMER(mutable_metrics());
  const double threshold = eta_ * eps_ * static_cast<double>(dcs_->Count());
  TruncatedTree tree(*dcs_, threshold);
  xstar_ = SolveBlue(tree);
  tree_ = tree.nodes();
  dirty_ = false;
  // Trigger histogram logs the truncated-tree size the finalisation built.
  STREAMQ_COMPACTION_EVENT(mutable_metrics(), tree_.size());
}

void DcsPost::EnsureFinalized() {
  if (dirty_) Finalize();
}

double DcsPost::Mass(int32_t idx) const {
  return std::max(0.0, xstar_[idx]);
}

double DcsPost::TreePrefixMass(uint64_t v) const {
  if (tree_.empty()) return 0.0;
  double acc = 0.0;
  int32_t idx = 0;
  // Walk down the tree accumulating the mass of everything left of v; stop
  // when v exits the node or the tree runs out of resolution.
  while (true) {
    const TreeNode& node = tree_[idx];
    const uint64_t lo = NodeLow(node);
    const uint64_t width = NodeWidth(node);
    if (v <= lo) return acc;
    if (v >= lo + width) return acc + Mass(idx);
    const int32_t left = node.left;
    const int32_t right = node.right;
    if (left < 0 && right < 0) {
      // Boundary leaf: interpolate. Its mass is either below the truncation
      // threshold (pruned children) or an exact level-0 cell.
      return acc + Mass(idx) * static_cast<double>(v - lo) /
                       static_cast<double>(width);
    }
    const uint64_t mid = lo + width / 2;
    // Mass of the two halves: a missing child's mass is whatever the parent
    // has beyond its present sibling (pruned == negligible but non-zero).
    const double total = Mass(idx);
    double left_mass, right_mass;
    if (left >= 0 && right >= 0) {
      left_mass = Mass(left);
      right_mass = Mass(right);
    } else if (left >= 0) {
      left_mass = std::min(Mass(left), total);
      right_mass = total - left_mass;
    } else {
      right_mass = std::min(Mass(right), total);
      left_mass = total - right_mass;
    }
    if (v < mid) {
      if (left >= 0) {
        idx = left;
        continue;
      }
      // Pruned left half: interpolate inside it.
      return acc + left_mass * static_cast<double>(v - lo) /
                       static_cast<double>(mid - lo);
    }
    acc += left_mass;
    if (v == mid) return acc;
    if (right >= 0) {
      idx = right;
      continue;
    }
    return acc + right_mass * static_cast<double>(v - mid) /
                     static_cast<double>(width - width / 2);
  }
}

int64_t DcsPost::EstimateRank(uint64_t value) {
  EnsureFinalized();
  return static_cast<int64_t>(std::llround(TreePrefixMass(value)));
}

uint64_t DcsPost::QueryImpl(double phi) {
  EnsureFinalized();
  if (tree_.empty()) return 0;
  const double n = static_cast<double>(dcs_->Count());
  double target = std::clamp(phi * n, 0.0, n);
  int32_t idx = 0;
  uint64_t lo = 0;
  uint64_t width = uint64_t{1} << tree_[0].level;
  while (true) {
    const TreeNode& node = tree_[idx];
    lo = NodeLow(node);
    width = NodeWidth(node);
    const int32_t left = node.left;
    const int32_t right = node.right;
    const double total = std::max(Mass(idx), 1e-12);
    if (left < 0 && right < 0) break;  // leaf: interpolate below
    const uint64_t mid = lo + width / 2;
    double left_mass;
    if (left >= 0 && right >= 0) {
      left_mass = Mass(left);
    } else if (left >= 0) {
      left_mass = std::min(Mass(left), total);
    } else {
      left_mass = total - std::min(Mass(right), total);
    }
    if (target <= left_mass) {
      if (left >= 0) {
        idx = left;
        continue;
      }
      // Descend into the pruned left half by interpolation.
      const double frac = left_mass <= 0 ? 0.0 : target / left_mass;
      return lo + static_cast<uint64_t>(frac * static_cast<double>(mid - lo));
    }
    target -= left_mass;
    if (right >= 0) {
      idx = right;
      continue;
    }
    const double right_mass = std::max(total - left_mass, 1e-12);
    const double frac = std::min(1.0, target / right_mass);
    return mid + static_cast<uint64_t>(frac * static_cast<double>(width - width / 2));
  }
  // Interpolate inside the final leaf.
  const double mass = std::max(Mass(idx), 1e-12);
  const double frac = std::min(1.0, target / mass);
  uint64_t pos = lo + static_cast<uint64_t>(frac * static_cast<double>(width));
  if (pos >= lo + width) pos = lo + width - 1;
  return pos;
}

size_t DcsPost::LastTreeBytes() const {
  // level + cell + y + sigma2 + three links, in accounting units.
  return tree_.size() * (2 * kBytesPerCounter + 2 * kBytesPerCounter +
                         3 * kBytesPerPointer);
}

}  // namespace streamq
