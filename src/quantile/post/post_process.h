// DCS with OLS post-processing ("Post" in the paper, section 3.2).
//
// During streaming this is exactly DCS. At query time (only), a truncated
// dyadic tree is extracted with threshold eta * eps * n, the BLUE-corrected
// estimates x* are computed by the linear-time solver, and rank / quantile
// queries are answered from the corrected tree alone: intervals below the
// truncation threshold were discarded precisely because their weight is
// negligible (< eta*eps*n), so queries interpolate inside boundary leaves
// instead of consulting the raw (noisy) per-level sketches. The paper
// reports this reduces the DCS error by 60-80% at no extra streaming space
// or time; eta = 0.1 is its tuned sweet spot (Fig. 9).

#ifndef STREAMQ_QUANTILE_POST_POST_PROCESS_H_
#define STREAMQ_QUANTILE_POST_POST_PROCESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "quantile/dyadic_quantile.h"
#include "quantile/post/truncated_tree.h"

namespace streamq {

class DcsPost : public QuantileSketch {
 public:
  DcsPost(double eps, int log_u, int depth = 7, double eta = 0.1,
          uint64_t seed = 1);
  /// Explicit sketch dimensions (used by benches); eps is still needed for
  /// the truncation threshold.
  static std::unique_ptr<DcsPost> WithWidth(uint64_t width, int depth,
                                            int log_u, double eps, double eta,
                                            uint64_t seed);

  bool SupportsDeletion() const override { return true; }
  int64_t EstimateRank(uint64_t value) override;
  uint64_t Count() const override { return dcs_->Count(); }
  size_t MemoryBytes() const override { return dcs_->MemoryBytes(); }
  std::string Name() const override { return "Post"; }

  /// Number of nodes in the truncated tree of the last finalisation
  /// (0 before any query); Fig. 9 reports its size relative to the sketch.
  size_t LastTreeSize() const { return tree_.size(); }
  /// Accounting bytes of that tree (transient, query-time only).
  size_t LastTreeBytes() const;

  /// The underlying DCS (for side-by-side evaluation).
  Dcs& dcs() { return *dcs_; }

  /// Re-runs truncation + BLUE immediately (normally lazy on query).
  void Finalize();

 protected:
  StreamqStatus InsertImpl(uint64_t value) override;
  size_t InsertBatchImpl(const uint64_t* values, size_t n) override;
  StreamqStatus EraseImpl(uint64_t value) override;
  uint64_t QueryImpl(double phi) override;

 private:
  DcsPost(std::unique_ptr<Dcs> dcs, double eps, double eta);

  void EnsureFinalized();
  /// Corrected mass of tree node `idx`, clamped non-negative.
  double Mass(int32_t idx) const;
  /// Mass of the prefix [0, v) computed from the corrected tree, with
  /// linear interpolation inside boundary leaves.
  double TreePrefixMass(uint64_t v) const;

  std::unique_ptr<Dcs> dcs_;
  double eps_;
  double eta_;
  bool dirty_ = true;
  std::vector<TreeNode> tree_;   // nodes of the last truncated tree
  std::vector<double> xstar_;    // BLUE-corrected estimates, same order
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_POST_POST_PROCESS_H_
