#include "quantile/post/truncated_tree.h"

#include <algorithm>

namespace streamq {

namespace {
// Variances of zero would make the OLS weights singular; exact nodes are
// the only legitimate zero-variance nodes, so clamp estimated levels.
constexpr double kMinVariance = 1e-9;
}  // namespace

TruncatedTree::TruncatedTree(const DyadicQuantileBase& sketch,
                             double threshold) {
  const int log_u = sketch.log_universe();
  TreeNode root;
  root.level = log_u;
  root.cell = 0;
  root.y = sketch.CellEstimate(log_u, 0);
  root.sigma2 = 0.0;  // the stream count n is always exact
  nodes_.push_back(root);

  // DFS with an explicit stack; children are appended when their own
  // estimate clears the threshold.
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const int child_level = nodes_[idx].level - 1;
    if (child_level < 0) continue;
    const uint64_t base = nodes_[idx].cell << 1;
    for (int side = 0; side < 2; ++side) {
      const uint64_t cell = base + side;
      const double est = sketch.CellEstimate(child_level, cell);
      if (est < threshold) continue;
      TreeNode child;
      child.level = child_level;
      child.cell = cell;
      child.y = est;
      child.parent = idx;
      if (sketch.LevelIsExact(child_level)) {
        child.sigma2 = 0.0;
      } else {
        child.sigma2 = std::max(sketch.LevelVariance(child_level), kMinVariance);
      }
      const int32_t child_idx = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(child);
      if (side == 0) {
        nodes_[idx].left = child_idx;
      } else {
        nodes_[idx].right = child_idx;
      }
      stack.push_back(child_idx);
    }
  }
}

}  // namespace streamq
