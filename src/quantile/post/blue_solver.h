// Linear-time best-linear-unbiased-estimator (BLUE) solver over the
// truncated dyadic tree (section 3.2.3 of the paper).
//
// Model: the unknowns x are the true frequencies at the LEAVES of the
// truncated tree; every tree node v carries an observation y_v of the sum of
// the leaves below it, with variance sigma2_v (0 for exact nodes). The BLUE
// x* minimises sum (y_v - A_v x)^2 / sigma2_v subject to the exact
// observations, and by Gauss-Markov every linear combination of the x*'s --
// in particular every rank -- also has minimal variance.
//
// Exact nodes "shield" their subtrees, so the tree decomposes into
// independent OLS subtrees rooted at the deepest exact nodes. Each subtree
// is solved with the paper's three-traversal algorithm:
//   1. bottom-up: node weights lambda via the alpha/beta recurrences of
//      eq. (2) (pi_left = pi_right, lambda_v = sum of leaf lambdas below v);
//   2. top-down Z' and bottom-up Z (note: the paper's statement
//      "Z_v = sum lambda_w Z_w" has a spurious lambda_w; eq. (7) of its own
//      proof gives Z_v = sum_{leaves w below v} Z_w, which is what we use --
//      verified against the worked example of Fig. 3 / Table 2);
//   3. top-down F and x* via eq. (3) with Delta = (Z_r - y_r pi_child)/lambda_r.
//
// Unlike Hay et al.'s solver, this handles arbitrarily unbalanced trees
// (including single-child chains created by pruning) and exact roots.

#ifndef STREAMQ_QUANTILE_POST_BLUE_SOLVER_H_
#define STREAMQ_QUANTILE_POST_BLUE_SOLVER_H_

#include <vector>

#include "quantile/post/truncated_tree.h"

namespace streamq {

/// Returns the BLUE-corrected estimate x*_v for every node of `tree`,
/// aligned with tree.nodes(). Nodes not below any estimated subtree keep
/// their (exact) y value.
std::vector<double> SolveBlue(const TruncatedTree& tree);

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_POST_BLUE_SOLVER_H_
