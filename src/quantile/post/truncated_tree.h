// Truncated dyadic tree extraction (section 3.2.2 of the paper).
//
// Starting from the root, nodes whose estimated frequency is at least
// eta * eps * n are kept and their children visited; any node estimated
// below the threshold is discarded together with its subtree. The expected
// size of the result is O((1/eps) log u) (paper, Lemma 1).

#ifndef STREAMQ_QUANTILE_POST_TRUNCATED_TREE_H_
#define STREAMQ_QUANTILE_POST_TRUNCATED_TREE_H_

#include <cstdint>
#include <vector>

#include "quantile/dyadic_quantile.h"

namespace streamq {

/// One node of the truncated tree.
struct TreeNode {
  int level = 0;       // dyadic level (cell width 2^level)
  uint64_t cell = 0;   // cell index at that level
  double y = 0.0;      // raw estimate from the sketch
  double sigma2 = 0.0; // estimator variance proxy; 0 means exact
  int32_t parent = -1;
  int32_t left = -1;   // child covering the lower half, -1 if pruned
  int32_t right = -1;  // child covering the upper half, -1 if pruned
};

/// Materialised truncated tree over a dyadic quantile sketch.
class TruncatedTree {
 public:
  /// Extracts the tree top-down; `threshold` is the pruning cutoff
  /// (eta * eps * n in the paper).
  TruncatedTree(const DyadicQuantileBase& sketch, double threshold);

  /// Wraps an explicitly constructed tree (tests, worked examples). Node 0
  /// must be the root and parent/left/right links must be consistent.
  explicit TruncatedTree(std::vector<TreeNode> nodes)
      : nodes_(std::move(nodes)) {}

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  /// Index of the root (always 0 when non-empty).
  int32_t root() const { return nodes_.empty() ? -1 : 0; }

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_POST_TRUNCATED_TREE_H_
