// "Random": the paper's simplified randomized quantile summary (section 2.2),
// a streamlined MRL99 inspired by the mergeable summaries of Agarwal et al.
//
// With h = log2(1/eps), it keeps b = h+1 buffers of s = (1/eps) sqrt(h)
// elements each. A buffer is filled at the current active level l by keeping
// one uniformly random element out of every block of 2^l consecutive stream
// elements. When every buffer is full, the two buffers at the lowest level
// are merged: their elements are merged in sorted order and either the odd
// or the even positions are kept (fair coin), producing one buffer one level
// higher. The estimated rank of v sums 2^l(X) * |{x in X : x < v}| over all
// buffers. Space O((1/eps) log^1.5(1/eps)); all quantiles correct with
// constant probability.
//
// When all full buffers sit at pairwise distinct levels (possible once the
// active level has advanced past stale low-level buffers), we merge the two
// lowest-level buffers: the lower one is first promoted to the higher level
// by keeping a random stride-2^(lb-la) subsequence of its sorted elements,
// which preserves unbiasedness; the standard odd/even merge then applies.

#ifndef STREAMQ_QUANTILE_RANDOM_IMPL_H_
#define STREAMQ_QUANTILE_RANDOM_IMPL_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "obs/sketch_metrics.h"
#include "quantile/weighted_sample.h"
#include "util/bits.h"
#include "util/memory.h"
#include "util/radix_sort.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/simd.h"

namespace streamq {

template <typename T, typename Less = std::less<T>>
class RandomSketchImpl {
 public:
  RandomSketchImpl(double eps, uint64_t seed) : rng_(seed) {
    const double inv_eps = 1.0 / eps;
    h_ = std::max(1, CeilLog2(static_cast<uint64_t>(std::ceil(inv_eps))));
    const double root = std::sqrt(static_cast<double>(h_));
    s_ = std::max<size_t>(8, static_cast<size_t>(std::ceil(inv_eps * root)));
    buffers_.resize(static_cast<size_t>(h_) + 1);
    for (Buffer& b : buffers_) b.data.reserve(s_);
    scratch_lift_.reserve(s_);
    scratch_merge_.reserve(2 * s_);
  }

  /// Optional instrumentation hook (owned by the wrapping QuantileSketch);
  /// never serialized, may stay null.
  void set_metrics(obs::SketchMetrics* metrics) { metrics_ = metrics; }

  void Insert(const T& v) {
    ++n_;
    if (fill_ < 0) AcquireFillBuffer();
    Buffer& buf = buffers_[fill_];
    // One uniform choice per block of 2^level elements, drawn up front:
    // skipped elements cost no randomness, so the per-element update time
    // *drops* as the sampling rate rises (the paper's Fig. 7a observation).
    if (block_seen_ == 0) {
      block_pick_ = rng_.BelowPow2(static_cast<unsigned>(buf.level));
    }
    if (block_seen_ == block_pick_) block_choice_ = v;
    ++block_seen_;
    if (block_seen_ == (uint64_t{1} << buf.level)) {
      buf.data.push_back(block_choice_);
      block_seen_ = 0;
      if (buf.data.size() == s_) CompleteFill(buf);
    }
  }

  /// Inserts values[0..n) in order, bit-identically to calling Insert() on
  /// each (same buffer fills, same PRNG draws), but in O(1) work per whole
  /// sampling block: within a block of 2^level elements only the one picked
  /// element is ever read, so at high levels the amortized per-item cost
  /// approaches a pointer bump -- the batch-mode headline of this summary.
  void InsertBatch(const T* values, size_t n) {
    size_t i = 0;
    while (i < n) {
      if (fill_ < 0) {
        // Item-wise, AcquireFillBuffer runs after the ++n_ of its
        // triggering element; mirror that so ActiveLevel() sees the same
        // count (the element itself is re-counted with its span below).
        ++n_;
        AcquireFillBuffer();
        --n_;
      }
      Buffer& buf = buffers_[fill_];
      const uint64_t block = uint64_t{1} << buf.level;
      if (block_seen_ == 0 && n - i >= block) {
        // Whole-block fast loop: every complete sampling block the span
        // covers costs one register-resident PRNG draw and one element
        // load -- no span-splitting state is touched (block_seen_ stays 0),
        // and the draws, picks, and buffer fills land exactly as item-wise.
        const unsigned lvl = static_cast<unsigned>(buf.level);
        const size_t nb = static_cast<size_t>(std::min<uint64_t>(
            (n - i) >> lvl, static_cast<uint64_t>(s_ - buf.data.size())));
        const size_t old_size = buf.data.size();
        buf.data.resize(old_size + nb);
        T* out = buf.data.data() + old_size;
        Xoshiro256 rng = rng_;  // keep the generator state in registers
        uint64_t pick = 0;
        for (size_t j = 0; j < nb; ++j) {
          pick = rng.BelowPow2(lvl);
          out[j] = values[i + (j << lvl) + pick];
        }
        rng_ = rng;
        block_pick_ = pick;
        block_choice_ = out[nb - 1];
        i += nb << lvl;
        n_ += nb << lvl;
        if (buf.data.size() == s_) CompleteFill(buf);
        continue;  // partial trailing block falls through to the slow path
      }
      if (block_seen_ == 0) {
        block_pick_ = rng_.BelowPow2(static_cast<unsigned>(buf.level));
      }
      const uint64_t take = std::min<uint64_t>(block - block_seen_,
                                               static_cast<uint64_t>(n - i));
      // One pick test per span instead of per element; unsigned wrap
      // rejects picks already consumed in an earlier span of this block.
      const uint64_t rel = block_pick_ - block_seen_;
      if (rel < take) block_choice_ = values[i + rel];
      block_seen_ += take;
      n_ += take;
      i += static_cast<size_t>(take);
      if (block_seen_ == block) {
        buf.data.push_back(block_choice_);
        block_seen_ = 0;
        if (buf.data.size() == s_) CompleteFill(buf);
      }
    }
  }

  T Query(double phi) const {
    WeightedSampleView<T, Less> view(Snapshot());
    if (view.Empty()) return T{};  // empty summary: nothing to report
    return view.Quantile(phi * static_cast<double>(n_));
  }

  std::vector<T> QueryMany(const std::vector<double>& phis) const {
    WeightedSampleView<T, Less> view(Snapshot());
    std::vector<T> out;
    if (view.Empty()) {
      out.assign(phis.size(), T{});
      return out;
    }
    out.reserve(phis.size());
    for (double phi : phis) out.push_back(view.Quantile(phi * static_cast<double>(n_)));
    return out;
  }

  int64_t EstimateRank(const T& v) const {
    return WeightedSampleView<T, Less>(Snapshot()).EstimateRank(v);
  }

  uint64_t Count() const { return n_; }

  size_t MemoryBytes() const {
    // Buffers are pre-allocated: b * s elements plus per-buffer level
    // counters and the in-progress block sample. Space is constant in n.
    return buffers_.size() * (s_ * kBytesPerElement + 2 * kBytesPerCounter) +
           kBytesPerElement + 2 * kBytesPerCounter;
  }

  int height() const { return h_; }
  size_t buffer_size() const { return s_; }

  /// Snapshot to a byte buffer, including the PRNG state: a reloaded sketch
  /// continues the exact stream-processing sequence of the original.
  void Serialize(SerdeWriter& w) const
    requires std::is_trivially_copyable_v<T>
  {
    w.U32(static_cast<uint32_t>(h_));
    w.U64(s_);
    w.U64(n_);
    w.U32(static_cast<uint32_t>(fill_));
    w.U64(block_seen_);
    w.U64(block_pick_);
    w.Pod(block_choice_);
    w.Pod(rng_.GetState());
    w.U64(buffers_.size());
    for (const Buffer& b : buffers_) {
      w.U32(static_cast<uint32_t>(b.level));
      w.U32(b.full ? 1 : 0);
      w.PodVector(b.data);
    }
  }

  /// Restores a snapshot; returns false on corrupt input.
  bool Deserialize(SerdeReader& r)
    requires std::is_trivially_copyable_v<T>
  {
    uint32_t h = 0, fill = 0;
    uint64_t s = 0;
    Xoshiro256::State state{};
    if (!r.U32(&h) || !r.U64(&s) || !r.U64(&n_) || !r.U32(&fill) ||
        !r.U64(&block_seen_) || !r.U64(&block_pick_) ||
        !r.Pod(&block_choice_) || !r.Pod(&state)) {
      return false;
    }
    s_ = s;
    h_ = static_cast<int>(h);
    fill_ = static_cast<int32_t>(fill);
    rng_.SetState(state);
    uint64_t count = 0;
    if (!r.U64(&count) || count > 4096) return false;
    buffers_.assign(count, Buffer{});
    for (Buffer& b : buffers_) {
      uint32_t level = 0, full = 0;
      if (!r.U32(&level) || !r.U32(&full) || !r.PodVector(&b.data)) {
        return false;
      }
      b.level = static_cast<int>(level);
      b.full = full != 0;
    }
    return fill_ < static_cast<int>(buffers_.size());
  }

  /// Folds `other` (built with the same eps, hence the same h and s) into
  /// this summary. Random inherits the mergeable-summary property of
  /// Agarwal et al. that inspired it: pools both buffer sets and re-merges
  /// lowest-level pairs until the buffer budget is respected. The other
  /// summary's in-progress sampling block (at most one element standing for
  /// up to 2^l inputs) is re-inserted by repetition, which keeps counts
  /// exact at a rank error of at most 2^l = O(eps n).
  void Merge(const RandomSketchImpl& other) {
    assert(other.s_ == s_ && other.h_ == h_);
    // Pool every non-empty buffer from both summaries.
    std::vector<Buffer> pool;
    for (Buffer& b : buffers_) {
      if (!b.data.empty()) pool.push_back(std::move(b));
      b = Buffer{};
    }
    for (const Buffer& b : other.buffers_) {
      if (!b.data.empty()) pool.push_back(b);
    }
    n_ += other.n_;
    fill_ = -1;
    block_seen_ = 0;

    // Partially filled buffers break the full-merge flow; top them up by
    // declaring them full at their current size (they are sorted on demand).
    for (Buffer& b : pool) {
      SortBuffer(b.data);
      b.full = true;
    }
    // Reduce to at most b-1 buffers so an empty slot remains for filling.
    while (pool.size() + 1 > buffers_.size()) {
      size_t ia = 0, ib = 1;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (pool[i].level < pool[ia].level) {
          ib = ia;
          ia = i;
        } else if (i != ia && pool[i].level < pool[ib].level) {
          ib = i;
        }
      }
      if (pool[ia].level > pool[ib].level) std::swap(ia, ib);
      Combine(pool[ia], pool[ib]);
      pool.erase(pool.begin() + ia);
    }
    for (size_t i = 0; i < pool.size(); ++i) buffers_[i] = std::move(pool[i]);

    // Re-insert the other summary's in-progress block by repetition (only
    // meaningful once that block has committed to its sample).
    if (other.fill_ >= 0 && other.block_seen_ > other.block_pick_) {
      n_ -= other.block_seen_;  // Insert() re-counts them
      for (uint64_t i = 0; i < other.block_seen_; ++i) {
        Insert(other.block_choice_);
      }
    }
  }

 private:
  struct Buffer {
    std::vector<T> data;
    int level = 0;
    bool full = false;
    bool Empty() const { return data.empty() && !full; }
  };

  int ActiveLevel() const {
    // l = max(0, ceil(log2(n / (s * 2^(h-1))))).
    const double denom = static_cast<double>(s_) * std::pow(2.0, h_ - 1);
    const double ratio = static_cast<double>(n_) / denom;
    if (ratio <= 1.0) return 0;
    return CeilLog2(static_cast<uint64_t>(std::ceil(ratio)));
  }

  bool AnyEmpty() const {
    for (const Buffer& b : buffers_) {
      if (b.Empty()) return true;
    }
    return false;
  }

  // Sorts a completed buffer and returns it to the merge machinery. The
  // fill-time sort dominates the batched ingest profile, so uint64 keys use
  // the radix sort (util/radix_sort.h; identical ascending output); the
  // merge scratch doubles as radix scratch -- it is idle here.
  void SortBuffer(std::vector<T>& data) {
    if constexpr (std::is_same_v<T, uint64_t> &&
                  std::is_same_v<Less, std::less<uint64_t>>) {
      scratch_merge_.resize(data.size());
      RadixSortU64(data.data(), data.size(), scratch_merge_.data());
    } else {
      std::sort(data.begin(), data.end(), Less());
    }
  }

  // Fill buffer reached s_ elements: sort it, mark it full, and merge if
  // every buffer is now occupied. Shared by Insert and both InsertBatch
  // paths so the three sites cannot drift.
  void CompleteFill(Buffer& buf) {
    SortBuffer(buf.data);
    buf.full = true;
    fill_ = -1;
    if (!AnyEmpty()) MergeOnce();
  }

  void AcquireFillBuffer() {
    for (size_t i = 0; i < buffers_.size(); ++i) {
      if (buffers_[i].Empty()) {
        fill_ = static_cast<int>(i);
        buffers_[i].level = ActiveLevel();
        buffers_[i].data.clear();
        block_seen_ = 0;
        return;
      }
    }
    assert(false && "no empty buffer available");
  }

  // Merges two full buffers, freeing one slot.
  void MergeOnce() {
    STREAMQ_COMPACTION_EVENT(metrics_, s_);
    STREAMQ_COMPACTION_TIMER(metrics_);
    // Prefer the lowest level holding >= 2 full buffers.
    int best_level = -1;
    for (const Buffer& b : buffers_) {
      if (!b.full) continue;
      int count = 0;
      for (const Buffer& o : buffers_) {
        if (o.full && o.level == b.level) ++count;
      }
      if (count >= 2 && (best_level < 0 || b.level < best_level)) {
        best_level = b.level;
      }
    }
    int ia = -1, ib = -1;
    if (best_level >= 0) {
      for (size_t i = 0; i < buffers_.size(); ++i) {
        if (!buffers_[i].full || buffers_[i].level != best_level) continue;
        if (ia < 0) {
          ia = static_cast<int>(i);
        } else {
          ib = static_cast<int>(i);
          break;
        }
      }
    } else {
      // All levels distinct: take the two lowest.
      for (size_t i = 0; i < buffers_.size(); ++i) {
        if (!buffers_[i].full) continue;
        if (ia < 0 || buffers_[i].level < buffers_[ia].level) {
          ib = ia;
          ia = static_cast<int>(i);
        } else if (ib < 0 || buffers_[i].level < buffers_[ib].level) {
          ib = static_cast<int>(i);
        }
      }
    }
    assert(ia >= 0 && ib >= 0);
    Buffer& a = buffers_[ia];
    Buffer& b = buffers_[ib];
    if (a.level > b.level) std::swap(ia, ib);
    Combine(buffers_[ia], buffers_[ib]);
  }

  // Combines a (level la) into b (level lb >= la); result replaces b at
  // level lb + 1, a becomes empty. Allocation-free once the scratch
  // vectors (promoted subsequence + merged pair, reserved up front) have
  // reached their steady capacity: both buffers keep their storage, and
  // the kept subsequence is decimated straight into b. Same elements,
  // same PRNG draws as the textbook three-vector version it replaced.
  void Combine(Buffer& a, Buffer& b) {
    assert(a.level <= b.level);
    const int gap = b.level - a.level;
    const T* lo = a.data.data();
    size_t lo_n = a.data.size();
    if (gap > 0) {
      // Promote a to b's level: keep a random stride-2^gap subsequence.
      const uint64_t stride = uint64_t{1} << gap;
      const uint64_t offset = rng_.BelowPow2(static_cast<unsigned>(gap));
      scratch_lift_.clear();
      if (offset < a.data.size()) {
        if constexpr (std::is_same_v<T, uint64_t>) {
          // Vectorized strided copy (util/simd.h); same elements kept.
          scratch_lift_.resize(static_cast<size_t>(
              (a.data.size() - offset + stride - 1) / stride));
          simd::DecimateStride(a.data.data(), a.data.size(),
                               static_cast<size_t>(offset),
                               static_cast<size_t>(stride),
                               scratch_lift_.data(), scratch_lift_.size());
        } else {
          for (uint64_t i = offset; i < a.data.size(); i += stride) {
            scratch_lift_.push_back(a.data[i]);
          }
        }
      }
      lo = scratch_lift_.data();
      lo_n = scratch_lift_.size();
    }
    // Sorted merge, then keep odd or even positions with equal probability.
    scratch_merge_.resize(lo_n + b.data.size());
    std::merge(lo, lo + lo_n, b.data.begin(), b.data.end(),
               scratch_merge_.begin(), Less());
    const size_t start = rng_.NextBool() ? 1 : 0;
    const size_t count = scratch_merge_.size() > start
                             ? (scratch_merge_.size() - start + 1) / 2
                             : 0;
    b.data.resize(count);
    if constexpr (std::is_same_v<T, uint64_t>) {
      simd::DecimateStride(scratch_merge_.data(), scratch_merge_.size(),
                           start, 2, b.data.data(), count);
    } else {
      for (size_t i = 0; i < count; ++i) {
        b.data[i] = scratch_merge_[start + 2 * i];
      }
    }
    b.level += 1;
    b.full = true;
    a.data.clear();
    a.full = false;
    a.level = 0;
  }

  // Weighted snapshot of all stored elements (full buffers, the partially
  // filled buffer, and the in-progress block sample).
  std::vector<WeightedElement<T>> Snapshot() const {
    std::vector<WeightedElement<T>> sample;
    for (size_t i = 0; i < buffers_.size(); ++i) {
      const Buffer& b = buffers_[i];
      const int64_t w = int64_t{1} << b.level;
      for (const T& v : b.data) sample.push_back({v, w});
    }
    if (fill_ >= 0 && block_seen_ > block_pick_) {
      // The in-progress block has committed to its sample; it stands for
      // the block_seen_ elements consumed so far.
      sample.push_back({block_choice_, static_cast<int64_t>(block_seen_)});
    }
    return sample;
  }

  int h_ = 1;
  size_t s_ = 8;
  uint64_t n_ = 0;
  int fill_ = -1;  // index of the buffer being filled, -1 if none
  uint64_t block_seen_ = 0;
  uint64_t block_pick_ = 0;  // position within the block chosen as sample
  T block_choice_{};
  std::vector<Buffer> buffers_;
  // Compaction scratch (working memory, not summary state -- MemoryBytes
  // counts the summary only, as it did when these were per-merge
  // temporaries); reserved once so Combine never allocates while streaming.
  std::vector<T> scratch_lift_;
  std::vector<T> scratch_merge_;
  mutable Xoshiro256 rng_;
  obs::SketchMetrics* metrics_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_RANDOM_IMPL_H_
