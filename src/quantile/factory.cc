#include "quantile/factory.h"

#include <algorithm>
#include <cmath>

#include "quantile/cash_register.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/fast_qdigest.h"
#include "quantile/post/post_process.h"
#include "util/serde.h"

namespace streamq {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kGkTheory: return "GKTheory";
    case Algorithm::kGkAdaptive: return "GKAdaptive";
    case Algorithm::kGkArray: return "GKArray";
    case Algorithm::kFastQDigest: return "FastQDigest";
    case Algorithm::kMrl99: return "MRL99";
    case Algorithm::kRandom: return "Random";
    case Algorithm::kRss: return "RSS";
    case Algorithm::kDcm: return "DCM";
    case Algorithm::kDcs: return "DCS";
    case Algorithm::kDcsPost: return "Post";
  }
  return "?";
}

bool ParseAlgorithm(const std::string& name, Algorithm* out) {
  for (Algorithm a :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
        Algorithm::kRss, Algorithm::kDcm, Algorithm::kDcs,
        Algorithm::kDcsPost}) {
    if (AlgorithmName(a) == name) {
      *out = a;
      return true;
    }
  }
  return false;
}

std::unique_ptr<QuantileSketch> MakeSketch(const SketchConfig& config) {
  switch (config.algorithm) {
    case Algorithm::kGkTheory:
      return std::make_unique<GkTheory>(config.eps);
    case Algorithm::kGkAdaptive:
      return std::make_unique<GkAdaptive>(config.eps);
    case Algorithm::kGkArray:
      return std::make_unique<GkArray>(config.eps);
    case Algorithm::kFastQDigest:
      return std::make_unique<FastQDigest>(config.eps, config.log_universe);
    case Algorithm::kMrl99:
      return std::make_unique<Mrl99>(config.eps, config.seed);
    case Algorithm::kRandom:
      return std::make_unique<RandomSketch>(config.eps, config.seed);
    case Algorithm::kRss: {
      const double natural = 1.0 / (config.eps * config.eps);
      const uint64_t width = static_cast<uint64_t>(std::min(
          natural, static_cast<double>(config.rss_width_cap)));
      return std::make_unique<RssQuantile>(std::max<uint64_t>(width, 4),
                                           config.depth, config.log_universe,
                                           config.seed);
    }
    case Algorithm::kDcm:
      return std::make_unique<Dcm>(config.eps, config.log_universe,
                                   config.depth, config.seed);
    case Algorithm::kDcs:
      return std::make_unique<Dcs>(config.eps, config.log_universe,
                                   config.depth, config.seed);
    case Algorithm::kDcsPost:
      return std::make_unique<DcsPost>(config.eps, config.log_universe,
                                       config.depth, config.eta, config.seed);
  }
  return nullptr;
}

std::vector<Algorithm> CashRegisterAlgorithms() {
  return {Algorithm::kGkTheory,    Algorithm::kGkAdaptive,
          Algorithm::kGkArray,     Algorithm::kFastQDigest,
          Algorithm::kMrl99,       Algorithm::kRandom};
}

std::vector<Algorithm> TurnstileAlgorithms() {
  return {Algorithm::kDcm, Algorithm::kDcs, Algorithm::kDcsPost};
}

std::string SerializeSketch(const QuantileSketch& sketch) {
  // Dispatch on the concrete type: QuantileSketch deliberately has no
  // virtual Serialize (most callers know their type), so the generic entry
  // point -- checkpoints, generic tooling -- lives here with the factory.
  if (auto* p = dynamic_cast<const GkTheory*>(&sketch)) return p->Serialize();
  if (auto* p = dynamic_cast<const GkAdaptive*>(&sketch)) {
    return p->Serialize();
  }
  if (auto* p = dynamic_cast<const GkArray*>(&sketch)) return p->Serialize();
  if (auto* p = dynamic_cast<const RandomSketch*>(&sketch)) {
    return p->Serialize();
  }
  if (auto* p = dynamic_cast<const Mrl99*>(&sketch)) return p->Serialize();
  if (auto* p = dynamic_cast<const FastQDigest*>(&sketch)) {
    return p->Serialize();
  }
  if (auto* p = dynamic_cast<const Dcm*>(&sketch)) return p->Serialize();
  if (auto* p = dynamic_cast<const Dcs*>(&sketch)) return p->Serialize();
  return "";  // RSS / DCS+Post: no restore path
}

std::unique_ptr<QuantileSketch> DeserializeSketch(const std::string& frame) {
  SnapshotType type;
  if (!PeekSnapshotType(frame, &type)) return nullptr;
  switch (type) {
    case SnapshotType::kGkTheory: return GkTheory::Deserialize(frame);
    case SnapshotType::kGkAdaptive: return GkAdaptive::Deserialize(frame);
    case SnapshotType::kGkArray: return GkArray::Deserialize(frame);
    case SnapshotType::kRandom: return RandomSketch::Deserialize(frame);
    case SnapshotType::kMrl99: return Mrl99::Deserialize(frame);
    case SnapshotType::kFastQDigest: return FastQDigest::Deserialize(frame);
    case SnapshotType::kDcm: return Dcm::Deserialize(frame);
    case SnapshotType::kDcs: return Dcs::Deserialize(frame);
    default: return nullptr;
  }
}

}  // namespace streamq
