// GKTheory: the Greenwald-Khanna summary as analysed in their paper, with
// the periodic banded COMPRESS procedure, giving the O((1/eps) log(eps n))
// worst-case space bound.
//
// A new element is inserted as (v, 1, floor(2 eps n) - 1) (Delta = 0 at the
// extremes). Every floor(1/(2 eps)) insertions, COMPRESS sweeps the summary
// right-to-left and merges tuple i into tuple i+1 whenever
//   band(Delta_i) <= band(Delta_{i+1})  and
//   g_i + g_{i+1} + Delta_{i+1} <= floor(2 eps n).
//
// Banding groups tuples into geometrically growing age classes: Delta close
// to p = floor(2 eps n) means recently inserted (low band), Delta near 0
// means old (high band). We compute band(Delta) = floor(log2(p - Delta)) + 1
// (band 0 for Delta = p), which realises the same geometric age classes as
// the exact GK band boundaries; the (p mod 2^alpha) offsets in the original
// definition only matter for the constant in the worst-case proof.

#ifndef STREAMQ_QUANTILE_GK_THEORY_H_
#define STREAMQ_QUANTILE_GK_THEORY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/sketch_metrics.h"
#include "quantile/gk_tuple_store.h"
#include "util/bits.h"

namespace streamq {

template <typename T, typename Less = std::less<T>>
class GkTheoryImpl {
 public:
  explicit GkTheoryImpl(double eps)
      : eps_(eps),
        compress_period_(std::max<uint64_t>(
            1, static_cast<uint64_t>(1.0 / (2.0 * eps)))) {}

  void Insert(const T& v) {
    ++n_;
    const int64_t threshold = Threshold();
    auto succ = store_.Successor(v);
    int64_t delta = 0;
    if (succ != store_.End() && succ != store_.Begin()) {
      delta = std::max<int64_t>(0, threshold - 1);
    }
    store_.InsertBefore(succ, v, /*g=*/1, delta);
    if (n_ % compress_period_ == 0) {
      STREAMQ_COMPACTION_EVENT(metrics_, store_.Size());
      STREAMQ_COMPACTION_TIMER(metrics_);
      Compress();
    }
  }

  /// Optional instrumentation hook (owned by the wrapping QuantileSketch);
  /// never serialized, may stay null.
  void set_metrics(obs::SketchMetrics* metrics) { metrics_ = metrics; }

  T Query(double phi) const { return store_.Query(phi, n_); }

  std::vector<T> QueryMany(const std::vector<double>& phis) const {
    return store_.QueryMany(phis, n_);
  }

  int64_t EstimateRank(const T& v) const { return store_.EstimateRank(v); }

  uint64_t Count() const { return n_; }
  size_t TupleCount() const { return store_.Size(); }
  size_t MemoryBytes() const { return store_.MemoryBytes(); }

  /// Snapshot to a byte buffer (trivially copyable element types only).
  void Serialize(SerdeWriter& w) const
    requires std::is_trivially_copyable_v<T>
  {
    w.F64(eps_);
    w.U64(compress_period_);
    w.U64(n_);
    store_.Serialize(w);
  }

  /// Restores a snapshot; returns false on corrupt input.
  bool Deserialize(SerdeReader& r)
    requires std::is_trivially_copyable_v<T>
  {
    return r.F64(&eps_) && r.U64(&compress_period_) && r.U64(&n_) &&
           store_.Deserialize(r) && compress_period_ > 0;
  }

  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    for (auto it = store_.Begin(); it != store_.End(); ++it) {
      const auto& node = store_.NodeOf(it->id);
      fn(it->v, node.g, node.delta);
    }
  }

 private:
  int64_t Threshold() const {
    return static_cast<int64_t>(2.0 * eps_ * static_cast<double>(n_));
  }

  static int Band(int64_t delta, int64_t p) {
    const int64_t diff = p - delta;
    if (diff <= 0) return 0;
    return FloorLog2(static_cast<uint64_t>(diff)) + 1;
  }

  void Compress() {
    if (store_.Size() < 2) return;
    const int64_t p = Threshold();
    // Snapshot the order, then sweep right-to-left merging into the current
    // surviving successor.
    std::vector<typename GkTupleStore<T, Less>::Iterator> order;
    order.reserve(store_.Size());
    for (auto it = store_.Begin(); it != store_.End(); ++it) order.push_back(it);
    size_t succ = order.size() - 1;
    for (size_t i = order.size() - 1; i-- > 0;) {
      const auto& node = store_.NodeOf(order[i]->id);
      const auto& snode = store_.NodeOf(order[succ]->id);
      if (Band(node.delta, p) <= Band(snode.delta, p) &&
          node.g + snode.g + snode.delta <= p) {
        store_.RemoveIntoSuccessor(order[i]);
      } else {
        succ = i;
      }
    }
  }

  double eps_;
  uint64_t compress_period_;
  uint64_t n_ = 0;
  GkTupleStore<T, Less> store_;
  obs::SketchMetrics* metrics_ = nullptr;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_GK_THEORY_H_
