// FastQDigest: the q-digest of Shrivastava et al. (SenSys'04) with the fast
// hash-map implementation evaluated by the paper.
//
// The universe [0, 2^log_u) is viewed as a complete binary tree; the digest
// is a set of (node -> count) entries satisfying the q-digest property with
// threshold t = floor(eps * n / log2 u): sibling pairs whose combined count
// (together with their parent) is at most t are merged upward by COMPRESS.
// Rank error is at most log2(u) * t <= eps * n.
//
// Updates increment a leaf counter in a hash map (O(1)); COMPRESS runs each
// time n doubles (so only log n times over the whole stream, matching the
// amortisation the paper observes in Fig. 7a) and additionally whenever the
// map outgrows its space budget. The digest is a mergeable summary: Merge()
// folds another digest over the same universe into this one.

#ifndef STREAMQ_QUANTILE_FAST_QDIGEST_H_
#define STREAMQ_QUANTILE_FAST_QDIGEST_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "quantile/quantile_sketch.h"

namespace streamq {

class FastQDigest : public QuantileSketch {
 public:
  /// eps: target rank error; log_universe: values are in [0, 2^log_universe).
  FastQDigest(double eps, int log_universe);

  int64_t EstimateRank(uint64_t value) override;
  uint64_t Count() const override { return n_; }
  size_t MemoryBytes() const override;
  std::string Name() const override { return "FastQDigest"; }

  /// The q-digest is the only deterministic mergeable quantile summary in
  /// the library (Agarwal et al.): Merge() -- inherited from QuantileSketch
  /// -- folds a sibling over the same universe and eps into this digest by
  /// node-count addition followed by a COMPRESS.
  bool Mergeable() const override { return true; }
  std::unique_ptr<QuantileSketch> Clone() const override {
    return Deserialize(Serialize());
  }

  /// Forces a COMPRESS (exposed for tests).
  void Compress();

  /// Snapshot of the digest; restore with Deserialize.
  std::string Serialize() const;
  /// Restores a Serialize() snapshot; nullptr on corrupt input.
  static std::unique_ptr<FastQDigest> Deserialize(const std::string& bytes);

  size_t NodeCount() const { return counts_.size(); }
  int log_universe() const { return log_u_; }

 protected:
  /// Values outside [0, 2^log_universe) are rejected with kOutOfUniverse.
  StreamqStatus InsertImpl(uint64_t value) override;
  uint64_t QueryImpl(double phi) override;
  std::vector<uint64_t> QueryManyImpl(const std::vector<double>& phis) override;
  StreamqStatus MergeCompatibility(
      const QuantileSketch& other) const override;
  StreamqStatus MergeImpl(const QuantileSketch& other) override;

 private:
  int64_t Threshold() const;
  void MaybeCompress();
  // Sorted (interval-end, interval-length, count) snapshot used by queries.
  struct Entry {
    uint64_t hi;
    uint64_t width;
    int64_t count;
  };
  const std::vector<Entry>& SortedEntries();

  double eps_;
  int log_u_;
  uint64_t n_ = 0;
  uint64_t last_compress_n_ = 0;
  size_t size_limit_;
  std::unordered_map<uint64_t, int64_t> counts_;  // heap-style node id -> count
  std::vector<Entry> snapshot_;
  bool snapshot_dirty_ = true;
};

}  // namespace streamq

#endif  // STREAMQ_QUANTILE_FAST_QDIGEST_H_
