// Thread-safe counters for the parallel ingest pipeline.
//
// The obs metrics primitives (obs/metrics.h) deliberately do not
// synchronise -- they are built for the single-threaded sketch hot path.
// The pipeline therefore keeps its own std::atomic counters, updated
// lock-free from whichever thread owns the event, and *copies* them into a
// MetricsRegistry on demand (IngestPipeline::PublishMetrics). The registry
// itself is only ever touched by the publishing caller's thread.
//
// Relaxed ordering throughout: these are statistics, not synchronisation.
// The pipeline's correctness-bearing ordering lives in the SPSC rings, the
// snapshot shared_ptrs, and the publish mutex.

#ifndef STREAMQ_INGEST_INGEST_METRICS_H_
#define STREAMQ_INGEST_INGEST_METRICS_H_

#include <atomic>
#include <cstdint>

namespace streamq::ingest {

/// Per-shard statistics. Owned by the shard struct, one cache line each
/// (the enclosing Shard is alignas(64)) so workers never false-share.
struct ShardStats {
  /// Updates routed into this shard's ring (producer side).
  std::atomic<uint64_t> pushed{0};
  /// Updates applied to this shard's sketch (worker side).
  std::atomic<uint64_t> processed{0};
  /// Updates the shard sketch refused (out-of-universe, unsupported erase).
  std::atomic<uint64_t> rejected{0};
  /// Ring-full events: every failed TryPush, and each blocking-Push stall
  /// episode (one count per episode, however long the backoff runs).
  std::atomic<uint64_t> ring_full_stalls{0};
  /// 100 ms watchdog periods elapsed inside a single continuous Push
  /// stall; a nonzero rate means this shard's consumer is stuck, not just
  /// momentarily behind.
  std::atomic<uint64_t> stall_watchdog_trips{0};
  /// Shard snapshots cloned and installed by the worker.
  std::atomic<uint64_t> snapshots{0};
  /// Processed count captured by the newest installed shard snapshot.
  std::atomic<uint64_t> snapshot_epoch{0};
  /// Maximum MemoryBytes() the shard sketch reached (paper accounting).
  std::atomic<uint64_t> peak_memory_bytes{0};
  // --- durable mode only (stay 0 otherwise) ---------------------------
  /// Re-pushed updates skipped because the recovered state already covers
  /// their seq (the replay/restart dedup of DESIGN.md section 11).
  std::atomic<uint64_t> deduped{0};
  /// Highest seq the producer routed to this shard (ack accounting).
  std::atomic<uint64_t> last_seq{0};
  /// Highest applied seq covered by a published checkpoint; together with
  /// the WAL's durable seq this forms the shard's durability floor.
  std::atomic<uint64_t> checkpoint_seq{0};
};

/// Pipeline-wide statistics (single struct, shared by all threads).
struct PipelineStats {
  /// Updates accepted by Push/TryPush across all shards.
  std::atomic<uint64_t> pushed{0};
  /// Merged query-view publications (successful ones).
  std::atomic<uint64_t> publishes{0};
  /// Publication attempts skipped because another publisher held the lock.
  std::atomic<uint64_t> publish_contended{0};
  /// Query() / QueryMany() calls answered from the view.
  std::atomic<uint64_t> queries{0};
  /// Queries answered from a snapshot older than the processed count at
  /// query time (the publish-staleness counter of DESIGN.md section 10).
  std::atomic<uint64_t> stale_queries{0};
  /// Largest combined MemoryBytes() of the two query-view buffers.
  std::atomic<uint64_t> peak_view_bytes{0};
  /// Checkpoint generations published (durable mode).
  std::atomic<uint64_t> checkpoints{0};
  /// Checkpoint attempts that failed at any step (durable mode).
  std::atomic<uint64_t> checkpoint_failures{0};
};

/// max-update for the peak gauges (relaxed CAS loop; uncontended in
/// practice since each peak has one writer).
inline void UpdatePeak(std::atomic<uint64_t>& peak, uint64_t candidate) {
  uint64_t cur = peak.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !peak.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_INGEST_METRICS_H_
