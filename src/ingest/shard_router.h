// Routing policy mapping each stream update to one ingest shard.

#ifndef STREAMQ_INGEST_SHARD_ROUTER_H_
#define STREAMQ_INGEST_SHARD_ROUTER_H_

#include <cstdint>

namespace streamq::ingest {

/// How the pipeline distributes updates across shard workers.
///
///  * kRoundRobin: the update with sequence number s goes to shard
///    s mod N. Perfectly balanced regardless of the value distribution;
///    an insert and a later delete of the same value may land on
///    different shards, which is still correct for the linear (dyadic)
///    summaries -- merging sums all shard counters, so only the union
///    stream matters.
///  * kHash: shard chosen by a mixed hash of the value, so all updates of
///    one value land on one shard. Balanced for high-cardinality streams;
///    a single very hot value concentrates on its shard.
enum class ShardingPolicy {
  kRoundRobin,
  kHash,
};

/// Stateless, deterministic router: the shard is a pure function of the
/// update's (seq, value). Determinism is what durable recovery relies on
/// -- a replayed or re-pushed update must land on the shard that already
/// logged it (DESIGN.md section 11) -- and it also makes the router
/// trivially thread-safe, though the pipeline keeps its single-producer
/// contract regardless.
class ShardRouter {
 public:
  ShardRouter(ShardingPolicy policy, int shards)
      : policy_(policy), shards_(static_cast<uint64_t>(shards)) {}

  int Route(uint64_t seq, uint64_t value) const {
    if (policy_ == ShardingPolicy::kRoundRobin) {
      return static_cast<int>(seq % shards_);
    }
    return static_cast<int>(Mix(value) % shards_);
  }

 private:
  // SplitMix64 finaliser: full-avalanche mix so consecutive values spread
  // across shards instead of striding (the stream generators emit dense
  // integer ranges).
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  ShardingPolicy policy_;
  uint64_t shards_;
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_SHARD_ROUTER_H_
