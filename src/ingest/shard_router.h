// Routing policy mapping each stream update to one ingest shard.

#ifndef STREAMQ_INGEST_SHARD_ROUTER_H_
#define STREAMQ_INGEST_SHARD_ROUTER_H_

#include <cstdint>

namespace streamq::ingest {

/// How the pipeline distributes updates across shard workers.
///
///  * kRoundRobin: update i goes to shard i mod N. Perfectly balanced
///    regardless of the value distribution; an insert and a later delete of
///    the same value may land on different shards, which is still correct
///    for the linear (dyadic) summaries -- merging sums all shard counters,
///    so only the union stream matters.
///  * kHash: shard chosen by a mixed hash of the value, so all updates of
///    one value land on one shard. Balanced for high-cardinality streams;
///    a single very hot value concentrates on its shard.
enum class ShardingPolicy {
  kRoundRobin,
  kHash,
};

/// Stateful router (the round-robin policy carries a cursor). Not
/// thread-safe: one router per producer thread, which is the pipeline's
/// single-producer contract anyway.
class ShardRouter {
 public:
  ShardRouter(ShardingPolicy policy, int shards)
      : policy_(policy), shards_(static_cast<uint64_t>(shards)) {}

  int Route(uint64_t value) {
    if (policy_ == ShardingPolicy::kRoundRobin) {
      const uint64_t s = next_;
      next_ = next_ + 1 == shards_ ? 0 : next_ + 1;
      return static_cast<int>(s);
    }
    return static_cast<int>(Mix(value) % shards_);
  }

 private:
  // SplitMix64 finaliser: full-avalanche mix so consecutive values spread
  // across shards instead of striding (the stream generators emit dense
  // integer ranges).
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  ShardingPolicy policy_;
  uint64_t shards_;
  uint64_t next_ = 0;
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_SHARD_ROUTER_H_
