// RCU-style double-buffered snapshot slot for the merged query sketch.
//
// The publisher (one shard worker holding the pipeline's publish mutex, or
// the flush path) builds a fresh merged sketch, installs it into the
// *inactive* buffer, and then flips the active index with an atomic store.
// Readers load the active index and then that slot's shared_ptr; whichever
// snapshot they end up with is complete and immutable-by-publisher, and the
// shared_ptr keeps it alive for as long as the reader holds it --
// reclamation is reference counting, the RCU grace period made explicit.
// The swap between buffers is the lone atomic index flip; the shared_ptr
// inside each slot is guarded by a SharedSlot mutex held only for the
// pointer copy (see shared_slot.h for why std::atomic<shared_ptr> is not an
// option under TSan), so neither side ever blocks the other for longer than
// that copy -- and ingestion's hot path touches none of this.
//
// Why two buffers rather than a single atomic slot: the previous snapshot
// stays installed (and its memory accounted) while the next one is being
// swapped in, so a reader racing the flip always finds a fully published
// sketch in whichever slot its index load selects, and the pipeline can
// report the view's worst-case footprint as the sum of both residents.
//
// Concurrency contract: any number of concurrent Load() calls; one
// Publish() at a time (the pipeline serialises publishers through its
// publish mutex). The sketch inside a snapshot is shared -- QuantileSketch
// is not itself thread-safe, so callers serialise Query() on it (the
// pipeline's query mutex); the publisher never touches a sketch again after
// publishing it.

#ifndef STREAMQ_INGEST_QUERY_VIEW_H_
#define STREAMQ_INGEST_QUERY_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "ingest/shared_slot.h"
#include "obs/trace.h"
#include "quantile/quantile_sketch.h"

namespace streamq::ingest {

class QueryView {
 public:
  /// One published merged snapshot. `epoch` is the number of stream updates
  /// the merged sketch summarises (the sum of the shard snapshot epochs it
  /// was built from); readers compare it against the pipeline's processed
  /// count to measure staleness.
  struct Snapshot {
    std::shared_ptr<QuantileSketch> sketch;
    uint64_t epoch = 0;
  };

  /// Installs a new snapshot. Single publisher at a time (caller holds the
  /// pipeline publish mutex).
  void Publish(std::shared_ptr<QuantileSketch> sketch, uint64_t epoch) {
    const int inactive = 1 - active_.load(std::memory_order_relaxed);
    auto snap = std::make_shared<Snapshot>();
    snap->sketch = std::move(sketch);
    snap->epoch = epoch;
    slots_[inactive].Store(std::move(snap));
    active_.store(inactive, std::memory_order_release);
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kViewFlip, epoch);
  }

  /// Current snapshot; `sketch` is nullptr before the first Publish. Never
  /// blocks beyond the slot's pointer-copy critical section.
  Snapshot Load() const {
    const int active = active_.load(std::memory_order_acquire);
    auto snap = slots_[active].Load();
    return snap == nullptr ? Snapshot{} : *snap;
  }

  /// Epoch of the current snapshot (0 before the first Publish).
  uint64_t Epoch() const {
    const int active = active_.load(std::memory_order_acquire);
    auto snap = slots_[active].Load();
    return snap == nullptr ? 0 : snap->epoch;
  }

 private:
  SharedSlot<Snapshot> slots_[2];
  std::atomic<int> active_{0};
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_QUERY_VIEW_H_
