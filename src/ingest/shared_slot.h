// A shared_ptr slot written by one thread and read by others.
//
// Why not std::atomic<std::shared_ptr<T>>: libstdc++ 12 implements it with
// an embedded spinlock whose load() path releases the lock with
// memory_order_relaxed, so the plain read of the stored pointer inside the
// critical section has no happens-before edge to the next store's plain
// write. ThreadSanitizer flags that as a data race -- correctly, under the
// letter of the memory model -- which would poison every TSan run of the
// ingest tests. A plain mutex held only for the duration of a pointer copy
// has the same cost profile at this call frequency (snapshots change every
// tens of thousands of updates; queries copy one pointer) and is fully
// understood by the sanitizer.
//
// The reference count does the reclamation: a reader's copy keeps the old
// object alive after the slot moves on (the RCU grace period, made
// explicit). Store drops the previous value outside the lock so a final
// release that frees a large sketch never runs inside the critical
// section.

#ifndef STREAMQ_INGEST_SHARED_SLOT_H_
#define STREAMQ_INGEST_SHARED_SLOT_H_

#include <memory>
#include <mutex>
#include <utility>

namespace streamq::ingest {

template <typename T>
class SharedSlot {
 public:
  SharedSlot() = default;
  SharedSlot(const SharedSlot&) = delete;
  SharedSlot& operator=(const SharedSlot&) = delete;

  void Store(std::shared_ptr<T> next) {
    std::shared_ptr<T> prev;
    {
      std::lock_guard<std::mutex> guard(mu_);
      prev = std::move(ptr_);
      ptr_ = std::move(next);
    }
    // prev (possibly the last reference) destroys here, outside the lock.
  }

  std::shared_ptr<T> Load() const {
    std::lock_guard<std::mutex> guard(mu_);
    return ptr_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_SHARED_SLOT_H_
