#include "ingest/ingest_pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/trace.h"

#if STREAMQ_DURABILITY_ENABLED
#include "durability/checkpoint.h"
#include "durability/storage.h"
#include "durability/wal.h"
#endif

namespace streamq::ingest {

namespace {

/// Applies one (value, delta) update to a sketch, expanding multiplicity
/// into |delta| Insert/Erase calls. Returns how many were refused.
uint64_t ApplyUpdate(QuantileSketch& sketch, uint64_t value, int64_t delta) {
  const int64_t reps = delta >= 0 ? delta : -delta;
  uint64_t rejected = 0;
  for (int64_t k = 0; k < reps; ++k) {
    const StreamqStatus status =
        delta >= 0 ? sketch.Insert(value) : sketch.Erase(value);
    if (status != StreamqStatus::kOk) ++rejected;
  }
  return rejected;
}

/// Applies entries[0..n) to `sketch` in order, feeding each maximal run of
/// consecutive delta == +1 entries through the batched UpdateBatch entry
/// point. UpdateBatch is bit-identical to the item-wise Insert loop, so the
/// grouping only amortises virtual dispatch and metrics; any other delta
/// falls back to ApplyUpdate one entry at a time. `value_of`/`delta_of`
/// project the entry, `on_applied` sees the last entry of every applied
/// group (durable mode advances applied_seq there), and `scratch` is
/// reusable gather space for run values. Returns how many updates were
/// refused.
template <typename Entry, typename ValueFn, typename DeltaFn,
          typename AppliedFn>
uint64_t ApplyEntries(QuantileSketch& sketch, const Entry* entries, size_t n,
                      std::vector<uint64_t>& scratch, ValueFn value_of,
                      DeltaFn delta_of, AppliedFn on_applied) {
  uint64_t rejected = 0;
  size_t i = 0;
  while (i < n) {
    if (delta_of(entries[i]) == 1) {
      scratch.clear();
      do {
        scratch.push_back(value_of(entries[i]));
        ++i;
      } while (i < n && delta_of(entries[i]) == 1);
      rejected += sketch.UpdateBatch(
          std::span<const uint64_t>(scratch.data(), scratch.size()));
    } else {
      rejected += ApplyUpdate(sketch, value_of(entries[i]),
                              delta_of(entries[i]));
      ++i;
    }
    on_applied(entries[i - 1]);
  }
  return rejected;
}

}  // namespace

/// Per-shard durable state. `wal` is used by the shard worker only;
/// TruncateThrough (via the checkpointer) is the one cross-thread entry
/// and synchronises internally. The plain fields are worker-private after
/// Start (recovery writes them before the worker thread exists).
struct IngestPipeline::ShardDurable {
#if STREAMQ_DURABILITY_ENABLED
  std::unique_ptr<durability::WalWriter> wal;
  /// Highest seq folded into the shard sketch (recovery seed + live).
  uint64_t applied_seq = 0;
  /// Updates logged since the last WAL fsync.
  uint64_t since_sync = 0;
#endif
};

IngestPipeline::Shard::Shard(size_t ring_capacity) : ring(ring_capacity) {}
IngestPipeline::Shard::~Shard() = default;

/// Pipeline-level durable state: the checkpoint store plus the checkpoint
/// lock and everything it guards.
struct IngestPipeline::PipelineDurable {
#if STREAMQ_DURABILITY_ENABLED
  std::string wal_dir;
  std::unique_ptr<durability::CheckpointStore> store;
  std::mutex checkpoint_mutex;
  // Guarded by checkpoint_mutex.
  uint64_t next_checkpoint_id = 1;
  obs::Histogram checkpoint_ticks;
  /// Pre-recovery WAL segments, (shard, segment id), pending deletion.
  /// Every record in them is covered by the recovered per-shard state, so
  /// any successful post-recovery checkpoint covers them too; they are
  /// deleted after the first one that publishes and kept (retried on the
  /// next restart) while checkpoint writes keep failing. Guarded by
  /// checkpoint_mutex.
  std::vector<std::pair<int, uint64_t>> old_segments;
  /// Processed total covered by the newest checkpoint (interval trigger).
  std::atomic<uint64_t> last_checkpoint_processed{0};
#endif
};

std::unique_ptr<IngestPipeline> IngestPipeline::Create(
    const IngestOptions& options) {
  if (options.shards < 1 || options.batch_size == 0) return nullptr;
  if (options.durability.enabled) {
#if STREAMQ_DURABILITY_ENABLED
    if (options.durability.storage == nullptr) return nullptr;
#else
    return nullptr;  // compiled out (-DSTREAMQ_DURABILITY=OFF)
#endif
  }
  // Probe the config: the pipeline needs Merge (to combine shards) and
  // Clone (to snapshot them). GK-family summaries fail the first, RSS and
  // DCS+Post the second.
  const std::unique_ptr<QuantileSketch> probe = MakeSketch(options.sketch);
  if (!probe->Mergeable() || probe->Clone() == nullptr) return nullptr;
  std::unique_ptr<IngestPipeline> pipeline(new IngestPipeline(options));
  if (options.durability.enabled && !pipeline->InitDurability()) {
    return nullptr;
  }
  pipeline->Start();
  return pipeline;
}

IngestPipeline::IngestPipeline(const IngestOptions& options)
    : options_(options), router_(options.sharding, options.shards) {
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>(options_.ring_capacity);
    shard->sketch = MakeSketch(options_.sketch);
    if (options_.durability.enabled) {
      shard->durable = std::make_unique<ShardDurable>();
    }
    shards_.push_back(std::move(shard));
  }
  if (options_.durability.enabled) {
    durable_ = std::make_unique<PipelineDurable>();
  }
}

bool IngestPipeline::InitDurability() {
#if STREAMQ_DURABILITY_ENABLED
  PipelineDurable& d = *durable_;
  durability::Storage& storage = *options_.durability.storage;
  d.wal_dir = options_.durability.dir + "/wal";
  if (!storage.CreateDir(options_.durability.dir) ||
      !storage.CreateDir(d.wal_dir)) {
    STREAMQ_TRACE_CRASH_DUMP("recovery_failure");
    return false;
  }
  d.store = std::make_unique<durability::CheckpointStore>(
      &storage, options_.durability.dir + "/ckpt");
  if (!d.store->Init()) {
    STREAMQ_TRACE_CRASH_DUMP("recovery_failure");
    return false;
  }

  // 1. Newest valid checkpoint, all-or-nothing: shard count must match
  // and every nested sketch frame must deserialize into something
  // merge-compatible with this pipeline's config, else the whole
  // generation is rejected and the previous one is tried.
  const std::unique_ptr<QuantileSketch> probe = MakeSketch(options_.sketch);
  std::vector<std::unique_ptr<QuantileSketch>> restored;
  const auto validate = [&](const durability::CheckpointData& c) {
    if (c.shards.size() != shards_.size()) return false;
    std::vector<std::unique_ptr<QuantileSketch>> sketches;
    for (const durability::CheckpointShard& s : c.shards) {
      std::unique_ptr<QuantileSketch> sketch =
          DeserializeSketch(s.sketch_frame);
      if (sketch == nullptr || !probe->CanMerge(*sketch)) return false;
      sketches.push_back(std::move(sketch));
    }
    restored = std::move(sketches);
    return true;
  };
  durability::CheckpointData checkpoint;
  const bool have_checkpoint = d.store->LoadNewest(validate, &checkpoint);
  if (have_checkpoint) {
    recovery_.checkpoint_id = checkpoint.id;
    d.next_checkpoint_id = checkpoint.id + 1;
    for (size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->sketch = std::move(restored[i]);
      shards_[i]->durable->applied_seq = checkpoint.shards[i].applied_seq;
    }
  }

  // 2. Replay the WAL tails: per shard, every valid record with a seq
  // beyond the recovered high-water mark, in segment order, stopping at
  // the first torn/corrupt record of each segment. Monotone seq skipping
  // makes rolled-segment duplicates harmless (wal.h).
  uint64_t max_segment = 0;
  std::vector<std::pair<int, uint64_t>>& old_segments = d.old_segments;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    STREAMQ_TRACE_SPAN(obs::TracePoint::kRecoveryReplay, i);
    uint64_t hw = shard.durable->applied_seq;
    for (const uint64_t seg : durability::ListWalSegments(
             storage, d.wal_dir, static_cast<int>(i))) {
      old_segments.emplace_back(static_cast<int>(i), seg);
      max_segment = std::max(max_segment, seg);
      std::string contents;
      if (!storage.ReadFile(
              d.wal_dir + "/" +
                  durability::WalSegmentName(static_cast<int>(i), seg),
              &contents)) {
        // An existing segment that cannot be read may hold acknowledged
        // records. Skipping it would replay later segments across the
        // gap, advance the resume point past the missing seqs, and
        // eventually delete the unread segment -- turning a transient
        // read error into permanent silent loss. Fail recovery loudly
        // instead; a later restart retries the read.
        STREAMQ_TRACE_CRASH_DUMP("recovery_failure");
        return false;
      }
      const durability::WalSegmentScan scan =
          durability::ScanWalSegment(contents, static_cast<int>(i));
      recovery_.replayed_records += scan.records;
      if (!scan.clean) ++recovery_.torn_segments;
      for (const durability::WalEntry& e : scan.entries) {
        if (e.seq <= hw) continue;
        ApplyUpdate(*shard.sketch, e.value, e.delta);
        hw = e.seq;
        ++recovery_.replayed_updates;
      }
    }
    shard.durable->applied_seq = hw;
    UpdatePeak(shard.stats.peak_memory_bytes,
               static_cast<uint64_t>(shard.sketch->MemoryBytes()));
  }
  recovery_.recovered = have_checkpoint || !old_segments.empty();

  // 3. Resume point: everything below the minimum shard high-water mark
  // is recovered on every shard, so the producer restarts there. Shards
  // ahead of it dedup the re-pushed seqs they already hold.
  uint64_t min_applied = UINT64_MAX;
  for (const auto& shard : shards_) {
    min_applied = std::min(min_applied, shard->durable->applied_seq);
  }
  recovery_.resume_seq = min_applied + 1;
  next_seq_.store(recovery_.resume_seq, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    // Re-seed the ack accounting: the recovered prefix counts as routed
    // and durable once the post-recovery checkpoint below publishes.
    shard->stats.last_seq.store(shard->durable->applied_seq,
                                std::memory_order_relaxed);
  }

  // 4. Make the recovered state durable in its own right: replayed WAL
  // bytes were read back, but nothing guarantees an unsynced tail
  // survives a *second* crash. A fresh checkpoint generation covering the
  // recovered state closes that window; only after it publishes are the
  // old segments deleted. If the write fails (storage still faulty) the
  // old checkpoint + segments stay authoritative and we carry on; the
  // kept segments are pruned by the first later checkpoint that does
  // publish (WriteCheckpointLocked), so they cannot accumulate forever.
  if (recovery_.recovered) {
    std::lock_guard<std::mutex> lock(d.checkpoint_mutex);
    durability::CheckpointData data;
    data.id = d.next_checkpoint_id;
    bool serializable = true;
    for (const auto& shard : shards_) {
      durability::CheckpointShard cs;
      cs.applied_seq = shard->durable->applied_seq;
      cs.sketch_frame = SerializeSketch(*shard->sketch);
      serializable = serializable && !cs.sketch_frame.empty();
      data.shards.push_back(std::move(cs));
    }
    if (serializable &&
        d.store->Write(data, options_.durability.keep_checkpoints)) {
      ++d.next_checkpoint_id;
      stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
      d.last_checkpoint_processed.store(0, std::memory_order_relaxed);
      for (size_t i = 0; i < shards_.size(); ++i) {
        shards_[i]->stats.checkpoint_seq.store(
            data.shards[i].applied_seq, std::memory_order_release);
      }
      PruneOldSegmentsLocked();
    } else {
      stats_.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      for (size_t i = 0; i < shards_.size(); ++i) {
        shards_[i]->stats.checkpoint_seq.store(
            have_checkpoint ? checkpoint.shards[i].applied_seq : 0,
            std::memory_order_release);
      }
    }
  }

  // 5. WAL writers start after every pre-existing segment id: closed
  // segments are immutable, even the ones recovery failed to delete.
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->durable->wal = std::make_unique<durability::WalWriter>(
        &storage, d.wal_dir, static_cast<int>(i), max_segment + 1,
        options_.durability.segment_bytes);
  }

  // 6. Seed the snapshot slots with the recovered sketches (pre-Start, so
  // single-threaded). Without this, a checkpoint racing the workers'
  // first publish would serialize empty sketches at applied_seq 0 --
  // silently regressing the newest generation below the recovered state
  // -- and a recovered-but-idle pipeline would merge an empty view.
  for (auto& shard : shards_) PublishShardSnapshot(*shard);
  // ...and fold the seeds into an initial merged view. Workers only
  // publish on new activity, so without this a recovered-but-idle
  // pipeline would answer Query/Rank/CloneView from an empty view until
  // the first post-restart update arrived.
  if (recovery_.recovered) PublishMergedView(/*block=*/true);
  return true;
#else
  return false;
#endif
}

void IngestPipeline::Start() {
  // Workers start only after every shard exists (and recovery finished):
  // a worker publishing a merged view iterates over all of shards_.
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { WorkerLoop(*s); });
  }
  started_ = true;
}

IngestPipeline::~IngestPipeline() { Stop(); }

bool IngestPipeline::TryPush(const Update& update) {
  const uint64_t seq = next_seq_.load(std::memory_order_relaxed);
  const int shard_idx = router_.Route(seq, update.value);
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  if (!shard.ring.TryPush(SeqUpdate{seq, update})) {
    shard.stats.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kRingFull, shard_idx);
    return false;  // seq not consumed: the next attempt reuses it
  }
  // last_seq strictly before next_seq_ (both release, and DurableSeq
  // loads next_seq_ first with acquire): DurableSeq starts from
  // next_seq_ - 1 and only clamps on shards whose floor < last_seq, so
  // publishing the new seq ceiling while the shard still shows the old
  // last_seq would report this merely-enqueued, un-logged update as
  // durable. This order can only underclaim, which is safe.
  shard.stats.last_seq.store(seq, std::memory_order_release);
  next_seq_.store(seq + 1, std::memory_order_release);
  shard.stats.pushed.fetch_add(1, std::memory_order_relaxed);
  stats_.pushed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void IngestPipeline::Push(const Update& update) {
  STREAMQ_TRACE_SPAN(obs::TracePoint::kPush, update.value);
  const uint64_t seq = next_seq_.load(std::memory_order_relaxed);
  const int shard_idx = router_.Route(seq, update.value);
  Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
  const SeqUpdate item{seq, update};
  if (!shard.ring.TryPush(item)) PushSlow(shard, shard_idx, item);
  // last_seq before next_seq_; see TryPush for the DurableSeq ordering
  // argument.
  shard.stats.last_seq.store(seq, std::memory_order_release);
  next_seq_.store(seq + 1, std::memory_order_release);
  shard.stats.pushed.fetch_add(1, std::memory_order_relaxed);
  stats_.pushed.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::PushBatch(std::span<const Update> updates) {
  if (updates.empty()) return;
  STREAMQ_TRACE_SPAN(obs::TracePoint::kPush, updates.size());
  const uint64_t seq0 = next_seq_.load(std::memory_order_relaxed);
  // One routing pass partitions the span into per-shard runs. Seqs are
  // assigned in span order and appended in that order, so each run's seqs
  // stay strictly increasing (the WAL invariant), and routing depends only
  // on (seq, value), so a replayed or re-pushed batch lands on the same
  // shards (see the sharding note in the header).
  if (push_scratch_.size() != shards_.size()) {
    push_scratch_.resize(shards_.size());
  }
  for (auto& run : push_scratch_) run.clear();
  for (size_t k = 0; k < updates.size(); ++k) {
    const uint64_t seq = seq0 + k;
    const int shard_idx = router_.Route(seq, updates[k].value);
    push_scratch_[static_cast<size_t>(shard_idx)].push_back(
        SeqUpdate{seq, updates[k]});
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<SeqUpdate>& run = push_scratch_[s];
    if (run.empty()) continue;
    Shard& shard = *shards_[s];
    const size_t pushed = shard.ring.TryPushBatch(run.data(), run.size());
    if (pushed < run.size()) {
      PushBatchSlow(shard, static_cast<int>(s), run.data() + pushed,
                    run.size() - pushed);
    }
    // Every shard's last_seq lands before the single next_seq_ advance
    // below; see TryPush for the DurableSeq ordering argument (deferring
    // the ceiling past ALL runs can only underclaim more, which is safe).
    shard.stats.last_seq.store(run.back().seq, std::memory_order_release);
    shard.stats.pushed.fetch_add(run.size(), std::memory_order_relaxed);
  }
  next_seq_.store(seq0 + updates.size(), std::memory_order_release);
  stats_.pushed.fetch_add(updates.size(), std::memory_order_relaxed);
}

size_t IngestPipeline::TryPushBatch(std::span<const Update> updates) {
  if (updates.empty()) return 0;
  const uint64_t seq0 = next_seq_.load(std::memory_order_relaxed);
  // Fast path: partition into per-shard runs exactly like PushBatch, and
  // take it only when every run fits its ring right now (ProducerFree is
  // a lower bound, so the subsequent multi-slot pushes cannot fail).
  if (push_scratch_.size() != shards_.size()) {
    push_scratch_.resize(shards_.size());
  }
  for (auto& run : push_scratch_) run.clear();
  for (size_t k = 0; k < updates.size(); ++k) {
    const uint64_t seq = seq0 + k;
    const int shard_idx = router_.Route(seq, updates[k].value);
    push_scratch_[static_cast<size_t>(shard_idx)].push_back(
        SeqUpdate{seq, updates[k]});
  }
  bool fits = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<SeqUpdate>& run = push_scratch_[s];
    if (!run.empty() && shards_[s]->ring.ProducerFree() < run.size()) {
      fits = false;
      break;
    }
  }
  if (fits) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      const std::vector<SeqUpdate>& run = push_scratch_[s];
      if (run.empty()) continue;
      Shard& shard = *shards_[s];
      const size_t pushed = shard.ring.TryPushBatch(run.data(), run.size());
      (void)pushed;  // guaranteed complete by the ProducerFree probe
      shard.stats.last_seq.store(run.back().seq, std::memory_order_release);
      shard.stats.pushed.fetch_add(run.size(), std::memory_order_relaxed);
    }
    next_seq_.store(seq0 + updates.size(), std::memory_order_release);
    stats_.pushed.fetch_add(updates.size(), std::memory_order_relaxed);
    return updates.size();
  }
  // Slow path: item-wise fill preserving the prefix contract -- stop at
  // the first full ring so accepted seqs stay contiguous (the WAL and
  // DurableSeq invariants both ride on gap-free seq assignment).
  size_t accepted = 0;
  for (; accepted < updates.size(); ++accepted) {
    const uint64_t seq = seq0 + accepted;
    const int shard_idx = router_.Route(seq, updates[accepted].value);
    Shard& shard = *shards_[static_cast<size_t>(shard_idx)];
    if (!shard.ring.TryPush(SeqUpdate{seq, updates[accepted]})) {
      shard.stats.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
      STREAMQ_TRACE_INSTANT(obs::TracePoint::kRingFull, shard_idx);
      break;
    }
    // last_seq before next_seq_; see TryPush for the DurableSeq ordering
    // argument.
    shard.stats.last_seq.store(seq, std::memory_order_release);
    next_seq_.store(seq + 1, std::memory_order_release);
    shard.stats.pushed.fetch_add(1, std::memory_order_relaxed);
  }
  if (accepted != 0) {
    stats_.pushed.fetch_add(accepted, std::memory_order_relaxed);
  }
  return accepted;
}

void IngestPipeline::PushSlow(Shard& shard, int shard_idx,
                              const SeqUpdate& item) {
  // Backpressure: the ring bounds memory, so a producer outrunning a
  // worker waits here instead of growing a queue. Capped exponential
  // backoff: brief yields catch the common blip without latency cost,
  // then doubling sleeps stop a long stall from burning a core. One
  // episode counts one ring_full_stall; the watchdog ticks every 100 ms
  // of continuous stalling so a wedged consumer shows up in metrics while
  // the stall is still in progress (and, on the first trip, freezes the
  // flight recorder into a crash dump while the evidence is fresh).
  STREAMQ_TRACE_SPAN(obs::TracePoint::kPushBackoff, shard_idx);
  using Clock = std::chrono::steady_clock;
  constexpr auto kMaxDelay = std::chrono::microseconds(1000);
  constexpr auto kWatchdogPeriod = std::chrono::milliseconds(100);
  constexpr int kYieldSpins = 16;
  const Clock::time_point start = Clock::now();
  Clock::time_point next_watchdog = start + kWatchdogPeriod;
  auto delay = std::chrono::microseconds(1);
  int spins = 0;
  shard.stats.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
  while (!shard.ring.TryPush(item)) {
    if (spins < kYieldSpins) {
      ++spins;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(delay);
      delay = std::min(delay * 2, kMaxDelay);
      const Clock::time_point now = Clock::now();
      if (now >= next_watchdog) {
        shard.stats.stall_watchdog_trips.fetch_add(
            1, std::memory_order_relaxed);
        STREAMQ_TRACE_INSTANT(obs::TracePoint::kStallWatchdog, shard_idx);
        STREAMQ_TRACE_CRASH_DUMP("stall_watchdog");
        next_watchdog = now + kWatchdogPeriod;
      }
    }
  }
  const uint64_t stall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  std::lock_guard<std::mutex> lock(stall_mutex_);
  ring_full_stall_ns_.Record(stall_ns);
}

void IngestPipeline::PushBatchSlow(Shard& shard, int shard_idx,
                                   const SeqUpdate* items, size_t n) {
  // Same backoff/watchdog contract as PushSlow, amortised over the rest of
  // one shard run: the whole episode -- however many partial multi-slot
  // pushes it takes -- ticks ring_full_stalls ONCE and records its total
  // duration ONCE, so batched producers neither inflate nor starve the
  // stall signal relative to item-wise ones. Progress resets the backoff
  // ladder (a partial push means the worker is draining, so the next retry
  // yields before it sleeps again) but not the episode.
  STREAMQ_TRACE_SPAN(obs::TracePoint::kPushBackoff, shard_idx);
  using Clock = std::chrono::steady_clock;
  constexpr auto kMaxDelay = std::chrono::microseconds(1000);
  constexpr auto kWatchdogPeriod = std::chrono::milliseconds(100);
  constexpr int kYieldSpins = 16;
  const Clock::time_point start = Clock::now();
  Clock::time_point next_watchdog = start + kWatchdogPeriod;
  auto delay = std::chrono::microseconds(1);
  int spins = 0;
  shard.stats.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
  size_t done = 0;
  while (done < n) {
    const size_t pushed = shard.ring.TryPushBatch(items + done, n - done);
    if (pushed > 0) {
      done += pushed;
      spins = 0;
      delay = std::chrono::microseconds(1);
      continue;
    }
    if (spins < kYieldSpins) {
      ++spins;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(delay);
      delay = std::min(delay * 2, kMaxDelay);
      const Clock::time_point now = Clock::now();
      if (now >= next_watchdog) {
        shard.stats.stall_watchdog_trips.fetch_add(1,
                                                   std::memory_order_relaxed);
        STREAMQ_TRACE_INSTANT(obs::TracePoint::kStallWatchdog, shard_idx);
        STREAMQ_TRACE_CRASH_DUMP("stall_watchdog");
        next_watchdog = now + kWatchdogPeriod;
      }
    }
  }
  const uint64_t stall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  std::lock_guard<std::mutex> lock(stall_mutex_);
  ring_full_stall_ns_.Record(stall_ns);
}

void IngestPipeline::WorkerLoop(Shard& shard) {
  std::vector<SeqUpdate> batch(options_.batch_size);
  // Gather scratch for ApplyEntries' delta == +1 runs (reused per batch).
  std::vector<uint64_t> apply_scratch;
  apply_scratch.reserve(options_.batch_size);
#if STREAMQ_DURABILITY_ENABLED
  const bool durable = shard.durable != nullptr;
  std::vector<durability::WalEntry> wal_batch;
  if (durable) wal_batch.reserve(options_.batch_size);
#endif
  uint64_t since_publish = 0;
  for (;;) {
    const size_t n = shard.ring.PopBatch(batch.data(), batch.size());
    if (n == 0) {
#if STREAMQ_DURABILITY_ENABLED
      if (durable && shard.durable->since_sync > 0) {
        // Idle fsync: the ack mark catches up to everything applied
        // whenever ingestion pauses (this is also what lets Flush wait
        // for durability without signalling the worker).
        if (shard.durable->wal->Sync()) shard.durable->since_sync = 0;
      }
#endif
      // Idle: bring the shard snapshot up to date so Flush (and queries)
      // see everything processed, then help refresh the merged view.
      if (shard.stats.snapshot_epoch.load(std::memory_order_relaxed) !=
          shard.stats.processed.load(std::memory_order_relaxed)) {
        PublishShardSnapshot(shard);
        PublishMergedView(/*block=*/false);
      }
      // The producer stops pushing before setting stop_, so an empty ring
      // observed after the flag is a drained ring.
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    uint64_t rejected = 0;
    STREAMQ_TRACE_SPAN(obs::TracePoint::kWorkerBatch, n);
#if STREAMQ_DURABILITY_ENABLED
    if (durable) {
      // Log-ahead, then apply. Seqs at or below the recovered high-water
      // mark are re-pushed duplicates: already durable, already in the
      // sketch -- skipped entirely (and not re-logged, which keeps shard
      // seqs strictly increasing across WAL segments).
      wal_batch.clear();
      for (size_t i = 0; i < n; ++i) {
        const SeqUpdate& u = batch[i];
        if (u.seq <= shard.durable->applied_seq) continue;
        wal_batch.push_back(durability::WalEntry{
            u.seq, u.update.value, static_cast<int64_t>(u.update.delta)});
      }
      if (wal_batch.size() < n) {
        shard.stats.deduped.fetch_add(n - wal_batch.size(),
                                      std::memory_order_relaxed);
      }
      if (!wal_batch.empty()) {
        // A dead WAL stops acknowledging (durable_seq freezes) but the
        // pipeline keeps serving -- availability over durability.
        shard.durable->wal->AppendBatch(wal_batch.data(), wal_batch.size());
        rejected += ApplyEntries(
            *shard.sketch, wal_batch.data(), wal_batch.size(), apply_scratch,
            [](const durability::WalEntry& e) { return e.value; },
            [](const durability::WalEntry& e) { return e.delta; },
            [&shard](const durability::WalEntry& e) {
              shard.durable->applied_seq = e.seq;
            });
        shard.durable->since_sync += wal_batch.size();
        if (shard.durable->since_sync >=
            options_.durability.sync_interval) {
          if (shard.durable->wal->Sync()) shard.durable->since_sync = 0;
        }
      }
    } else
#endif
    {
      rejected += ApplyEntries(
          *shard.sketch, batch.data(), n, apply_scratch,
          [](const SeqUpdate& u) { return u.update.value; },
          [](const SeqUpdate& u) {
            return static_cast<int64_t>(u.update.delta);
          },
          [](const SeqUpdate&) {});
    }
    shard.stats.processed.fetch_add(n, std::memory_order_release);
    if (rejected != 0) {
      shard.stats.rejected.fetch_add(rejected, std::memory_order_relaxed);
    }
    UpdatePeak(shard.stats.peak_memory_bytes,
               static_cast<uint64_t>(shard.sketch->MemoryBytes()));
    since_publish += n;
    if (since_publish >= options_.publish_interval) {
      since_publish = 0;
      PublishShardSnapshot(shard);
      PublishMergedView(/*block=*/false);
      MaybeCheckpoint(/*block=*/false);
    }
  }
}

void IngestPipeline::PublishShardSnapshot(Shard& shard) {
  const uint64_t processed =
      shard.stats.processed.load(std::memory_order_relaxed);
  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->sketch = shard.sketch->Clone();
  assert(snapshot->sketch != nullptr);  // Create() verified clonability
  snapshot->processed = processed;
#if STREAMQ_DURABILITY_ENABLED
  if (shard.durable != nullptr) {
    snapshot->applied_seq = shard.durable->applied_seq;
  }
#endif
  shard.snapshot.Store(std::move(snapshot));
  // Epoch strictly after the snapshot: a reader that sees the new epoch is
  // guaranteed a snapshot at least that fresh (it may see an even newer
  // snapshot with an older epoch, which only overstates staleness).
  shard.stats.snapshot_epoch.store(processed, std::memory_order_release);
  shard.stats.snapshots.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::PublishMergedView(bool block) {
  std::unique_lock<std::mutex> lock(publish_mutex_, std::defer_lock);
  if (block) {
    lock.lock();
  } else if (!lock.try_lock()) {
    // Another worker is already building a view; skipping keeps the hot
    // path free of lock waits (the other publisher's view is nearly as
    // fresh anyway).
    stats_.publish_contended.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const obs::ScopedTimer publish_timer(&publish_ticks_);
  STREAMQ_TRACE_SPAN(obs::TracePoint::kViewPublish, shards_.size());
  std::unique_ptr<QuantileSketch> merged = MakeSketch(options_.sketch);
  uint64_t epoch = 0;
  for (const auto& shard : shards_) {
    // Epoch before snapshot (each with acquire), mirroring the publisher's
    // snapshot-then-epoch stores: the loaded snapshot is at least as fresh
    // as the loaded epoch, so the view's epoch never overclaims.
    const uint64_t shard_epoch =
        shard->stats.snapshot_epoch.load(std::memory_order_acquire);
    const std::shared_ptr<ShardSnapshot> snap = shard->snapshot.Load();
    if (snap == nullptr) continue;
    const uint64_t t0 = obs::TickClock::Now();
    const StreamqStatus status = merged->Merge(*snap->sketch);
    merge_ticks_.Record(obs::TickClock::Now() - t0);
    assert(status == StreamqStatus::kOk);  // identical configs by design
    (void)status;
    epoch += shard_epoch;
  }
  // Account the new resident before it goes live: with double buffering
  // the previous snapshot stays resident in the other slot, so the view's
  // footprint is the sum of both.
  const int slot = 1 - last_slot_;
  slot_bytes_[slot] = static_cast<uint64_t>(merged->MemoryBytes());
  last_slot_ = slot;
  UpdatePeak(stats_.peak_view_bytes, slot_bytes_[0] + slot_bytes_[1]);
  view_.Publish(std::move(merged), epoch);
  stats_.publishes.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::MaybeCheckpoint(bool block) {
#if STREAMQ_DURABILITY_ENABLED
  if (durable_ == nullptr) return;
  PipelineDurable& d = *durable_;
  if (!block) {
    // Cheap pre-check off the lock; re-checked under it.
    const uint64_t covered =
        d.last_checkpoint_processed.load(std::memory_order_relaxed);
    if (ProcessedCount() - covered < options_.durability.checkpoint_interval) {
      return;
    }
  }
  std::unique_lock<std::mutex> lock(d.checkpoint_mutex, std::defer_lock);
  if (block) {
    lock.lock();
  } else {
    if (!lock.try_lock()) return;  // someone else is checkpointing
    const uint64_t covered =
        d.last_checkpoint_processed.load(std::memory_order_relaxed);
    if (ProcessedCount() - covered < options_.durability.checkpoint_interval) {
      return;
    }
  }
  WriteCheckpointLocked();
#else
  (void)block;
#endif
}

bool IngestPipeline::WriteCheckpointLocked() {
#if STREAMQ_DURABILITY_ENABLED
  PipelineDurable& d = *durable_;
  const obs::ScopedTimer timer(&d.checkpoint_ticks);
  STREAMQ_TRACE_SPAN(obs::TracePoint::kCheckpointWrite, d.next_checkpoint_id);
  // Checkpoint from the published snapshots: each is a consistent
  // (sketch, applied_seq) pair, and serializing a snapshot clone is safe
  // against the worker mutating its live sketch concurrently.
  durability::CheckpointData data;
  data.id = d.next_checkpoint_id;
  uint64_t covered_processed = 0;
  for (const auto& shard : shards_) {
    const std::shared_ptr<ShardSnapshot> snap = shard->snapshot.Load();
    durability::CheckpointShard cs;
    if (snap != nullptr) {
      cs.applied_seq = snap->applied_seq;
      cs.sketch_frame = SerializeSketch(*snap->sketch);
      covered_processed += snap->processed;
    } else {
      // Shard never published (no updates yet): checkpoint it as empty.
      const std::unique_ptr<QuantileSketch> empty = MakeSketch(options_.sketch);
      cs.applied_seq = 0;
      cs.sketch_frame = SerializeSketch(*empty);
    }
    if (cs.sketch_frame.empty()) {
      stats_.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return false;  // unreachable for pipeline-capable types
    }
    data.shards.push_back(std::move(cs));
  }
  if (!d.store->Write(data, options_.durability.keep_checkpoints)) {
    stats_.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++d.next_checkpoint_id;
  d.last_checkpoint_processed.store(covered_processed,
                                    std::memory_order_relaxed);
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Publish the new durability floor, then drop the WAL segments the
    // checkpoint covers (every record in them has seq <= applied_seq).
    shards_[i]->stats.checkpoint_seq.store(data.shards[i].applied_seq,
                                           std::memory_order_release);
    shards_[i]->durable->wal->TruncateThrough(data.shards[i].applied_seq);
  }
  // Pre-recovery segments the recovery-time checkpoint failed to cover
  // (its write failed) are covered by this one: recovery seeded every
  // shard snapshot at its replayed high-water mark, and applied_seq only
  // grows from there, so this checkpoint dominates every old record.
  PruneOldSegmentsLocked();
  return true;
#else
  return false;
#endif
}

void IngestPipeline::PruneOldSegmentsLocked() {
#if STREAMQ_DURABILITY_ENABLED
  PipelineDurable& d = *durable_;
  if (d.old_segments.empty()) return;
  STREAMQ_TRACE_SPAN(obs::TracePoint::kCheckpointPrune, d.old_segments.size());
  for (const auto& [shard_idx, seg] : d.old_segments) {
    options_.durability.storage->Delete(
        d.wal_dir + "/" + durability::WalSegmentName(shard_idx, seg));
  }
  d.old_segments.clear();
#endif
}

bool IngestPipeline::Checkpoint() {
#if STREAMQ_DURABILITY_ENABLED
  if (durable_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(durable_->checkpoint_mutex);
  return WriteCheckpointLocked();
#else
  return false;
#endif
}

uint64_t IngestPipeline::DurableSeq() const {
#if STREAMQ_DURABILITY_ENABLED
  if (durable_ == nullptr) return 0;
  // A shard constrains the global mark only while some seq routed to it
  // is still above its durability floor (max of WAL-synced and
  // checkpoint-covered). Shards with nothing pending -- including ones
  // that never received an update -- do not hold the mark back.
  // Acquire pairs with the producer's release store: any seq visible in
  // next_seq_ is already recorded in its shard's last_seq, so an
  // enqueued-but-unlogged update always clamps the result below itself.
  uint64_t result = next_seq_.load(std::memory_order_acquire) - 1;
  for (const auto& shard : shards_) {
    const uint64_t floor =
        std::max(shard->durable->wal != nullptr
                     ? shard->durable->wal->durable_seq()
                     : 0,
                 shard->stats.checkpoint_seq.load(std::memory_order_acquire));
    const uint64_t last = shard->stats.last_seq.load(std::memory_order_acquire);
    if (floor < last) result = std::min(result, floor);
  }
  return result;
#else
  return 0;
#endif
}

void IngestPipeline::Flush() {
  for (const auto& shard : shards_) {
    // First wait for the worker to drain its ring, then for its snapshot
    // to cover everything drained (idle workers re-snapshot on their own).
    while (shard->stats.processed.load(std::memory_order_acquire) <
               shard->stats.pushed.load(std::memory_order_acquire) ||
           shard->stats.snapshot_epoch.load(std::memory_order_acquire) <
               shard->stats.processed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
#if STREAMQ_DURABILITY_ENABLED
    if (shard->durable != nullptr) {
      // Then for durability: idle workers fsync on their own, so the
      // shard's floor climbs to its last routed seq -- unless its WAL
      // died, in which case waiting longer would change nothing.
      while (!shard->durable->wal->dead()) {
        const uint64_t floor = std::max(
            shard->durable->wal->durable_seq(),
            shard->stats.checkpoint_seq.load(std::memory_order_acquire));
        if (floor >= shard->stats.last_seq.load(std::memory_order_acquire)) {
          break;
        }
        std::this_thread::yield();
      }
    }
#endif
  }
  PublishMergedView(/*block=*/true);
}

void IngestPipeline::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  started_ = false;
  // Workers fsynced their WALs and published final shard snapshots before
  // exiting; persist one final checkpoint so a restart recovers the whole
  // stream without replay, then fold the snapshots into one last complete
  // view so post-Stop queries see it too.
  if (durable_ != nullptr) MaybeCheckpoint(/*block=*/true);
  PublishMergedView(/*block=*/true);
}

uint64_t IngestPipeline::Query(double phi) {
  // arg: phi in parts-per-million (trace args are integers).
  STREAMQ_TRACE_SPAN(obs::TracePoint::kQuery,
                     static_cast<uint64_t>(phi * 1e6));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const QueryView::Snapshot snap = view_.Load();
  if (snap.epoch < ProcessedCount()) {
    stats_.stale_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (snap.sketch == nullptr) return 0;
  // QuantileSketch::Query mutates lazy caches and metrics, so concurrent
  // queries serialise here. Ingestion never takes this mutex.
  std::lock_guard<std::mutex> lock(query_mutex_);
  return snap.sketch->Query(phi);
}

std::vector<uint64_t> IngestPipeline::QueryMany(
    const std::vector<double>& phis) {
  STREAMQ_TRACE_SPAN(obs::TracePoint::kQuery, phis.size());
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const QueryView::Snapshot snap = view_.Load();
  if (snap.epoch < ProcessedCount()) {
    stats_.stale_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (snap.sketch == nullptr) return std::vector<uint64_t>(phis.size(), 0);
  std::lock_guard<std::mutex> lock(query_mutex_);
  return snap.sketch->QueryMany(phis);
}

int64_t IngestPipeline::Rank(uint64_t value) {
  STREAMQ_TRACE_SPAN(obs::TracePoint::kQuery, value);
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const QueryView::Snapshot snap = view_.Load();
  if (snap.epoch < ProcessedCount()) {
    stats_.stale_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (snap.sketch == nullptr) return 0;
  // EstimateRank may touch the same lazy caches as Query; serialise on the
  // query mutex (never taken by ingestion).
  std::lock_guard<std::mutex> lock(query_mutex_);
  return snap.sketch->EstimateRank(value);
}

std::unique_ptr<QuantileSketch> IngestPipeline::CloneView(uint64_t* count) {
  const QueryView::Snapshot snap = view_.Load();
  if (snap.sketch == nullptr) return nullptr;
  // Clone() walks the sketch's full state while concurrent Query() calls
  // mutate lazy caches, so cloning serialises on the same query mutex.
  std::lock_guard<std::mutex> lock(query_mutex_);
  std::unique_ptr<QuantileSketch> clone = snap.sketch->Clone();
  if (clone != nullptr && count != nullptr) *count = clone->Count();
  return clone;
}

uint64_t IngestPipeline::PushedCount() const {
  return stats_.pushed.load(std::memory_order_acquire);
}

uint64_t IngestPipeline::ProcessedCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->stats.processed.load(std::memory_order_acquire);
  }
  return total;
}

size_t IngestPipeline::PeakMemoryBytes() const {
  uint64_t total = stats_.peak_view_bytes.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    total += shard->stats.peak_memory_bytes.load(std::memory_order_acquire);
  }
  return static_cast<size_t>(total);
}

size_t IngestPipeline::RingBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->ring.capacity() * sizeof(SeqUpdate);
  }
  return total;
}

void IngestPipeline::PublishMetrics(obs::MetricsRegistry& registry,
                                    const std::string& prefix) {
  const auto set_counter = [&registry](const std::string& name, uint64_t v) {
    obs::Counter& c = registry.GetCounter(name);
    c.Reset();
    c.Add(v);
  };
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    const std::string p = prefix + ".shard" + std::to_string(i);
    registry.GetGauge(p + ".queue_depth")
        .Set(static_cast<int64_t>(shard.ring.SizeApprox()));
    registry.GetGauge(p + ".peak_memory_bytes")
        .Set(static_cast<int64_t>(
            shard.stats.peak_memory_bytes.load(std::memory_order_acquire)));
    set_counter(p + ".pushed",
                shard.stats.pushed.load(std::memory_order_acquire));
    set_counter(p + ".processed",
                shard.stats.processed.load(std::memory_order_acquire));
    set_counter(p + ".rejected",
                shard.stats.rejected.load(std::memory_order_acquire));
    set_counter(p + ".ring_full_stalls",
                shard.stats.ring_full_stalls.load(std::memory_order_acquire));
    set_counter(
        p + ".stall_watchdog_trips",
        shard.stats.stall_watchdog_trips.load(std::memory_order_acquire));
    set_counter(p + ".snapshots",
                shard.stats.snapshots.load(std::memory_order_acquire));
#if STREAMQ_DURABILITY_ENABLED
    if (shard.durable != nullptr && shard.durable->wal != nullptr) {
      const durability::WalStats& w = shard.durable->wal->stats();
      set_counter(p + ".deduped",
                  shard.stats.deduped.load(std::memory_order_acquire));
      set_counter(p + ".wal_records",
                  w.records.load(std::memory_order_acquire));
      set_counter(p + ".wal_bytes", w.bytes.load(std::memory_order_acquire));
      set_counter(p + ".wal_syncs", w.syncs.load(std::memory_order_acquire));
      set_counter(p + ".wal_failed_syncs",
                  w.failed_syncs.load(std::memory_order_acquire));
      set_counter(p + ".wal_rolls", w.rolls.load(std::memory_order_acquire));
      set_counter(p + ".wal_truncated_segments",
                  w.truncated_segments.load(std::memory_order_acquire));
      registry.GetGauge(p + ".wal_durable_seq")
          .Set(static_cast<int64_t>(shard.durable->wal->durable_seq()));
      registry.GetGauge(p + ".wal_dead")
          .Set(shard.durable->wal->dead() ? 1 : 0);
      registry.GetGauge(p + ".checkpoint_seq")
          .Set(static_cast<int64_t>(
              shard.stats.checkpoint_seq.load(std::memory_order_acquire)));
    }
#endif
  }
  set_counter(prefix + ".pushed",
              stats_.pushed.load(std::memory_order_acquire));
  set_counter(prefix + ".publishes",
              stats_.publishes.load(std::memory_order_acquire));
  set_counter(prefix + ".publish_contended",
              stats_.publish_contended.load(std::memory_order_acquire));
  set_counter(prefix + ".queries",
              stats_.queries.load(std::memory_order_acquire));
  set_counter(prefix + ".stale_queries",
              stats_.stale_queries.load(std::memory_order_acquire));
  registry.GetGauge(prefix + ".view_epoch")
      .Set(static_cast<int64_t>(view_.Epoch()));
  registry.GetGauge(prefix + ".peak_view_bytes")
      .Set(static_cast<int64_t>(
          stats_.peak_view_bytes.load(std::memory_order_acquire)));
  registry.GetGauge(prefix + ".peak_memory_bytes")
      .Set(static_cast<int64_t>(PeakMemoryBytes()));
  registry.GetGauge(prefix + ".ring_bytes")
      .Set(static_cast<int64_t>(RingBytes()));
#if STREAMQ_DURABILITY_ENABLED
  if (durable_ != nullptr) {
    set_counter(prefix + ".checkpoints",
                stats_.checkpoints.load(std::memory_order_acquire));
    set_counter(prefix + ".checkpoint_failures",
                stats_.checkpoint_failures.load(std::memory_order_acquire));
    set_counter(prefix + ".replayed_records", recovery_.replayed_records);
    set_counter(prefix + ".replayed_updates", recovery_.replayed_updates);
    registry.GetGauge(prefix + ".durable_seq")
        .Set(static_cast<int64_t>(DurableSeq()));
    registry.GetGauge(prefix + ".resume_seq")
        .Set(static_cast<int64_t>(recovery_.resume_seq));
    {
      std::lock_guard<std::mutex> lock(durable_->checkpoint_mutex);
      registry.GetHistogram(prefix + ".checkpoint_ticks") =
          durable_->checkpoint_ticks;
    }
  }
#endif
  {
    // The latency histograms are guarded by the publish mutex; copy them
    // out under it.
    std::lock_guard<std::mutex> lock(publish_mutex_);
    registry.GetHistogram(prefix + ".merge_ticks") = merge_ticks_;
    registry.GetHistogram(prefix + ".publish_ticks") = publish_ticks_;
  }
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    registry.GetHistogram(prefix + ".ring_full_stall_ns") =
        ring_full_stall_ns_;
  }
}

}  // namespace streamq::ingest
