#include "ingest/ingest_pipeline.h"

#include <cassert>

namespace streamq::ingest {

std::unique_ptr<IngestPipeline> IngestPipeline::Create(
    const IngestOptions& options) {
  if (options.shards < 1 || options.batch_size == 0) return nullptr;
  // Probe the config: the pipeline needs Merge (to combine shards) and
  // Clone (to snapshot them). GK-family summaries fail the first, RSS and
  // DCS+Post the second.
  const std::unique_ptr<QuantileSketch> probe = MakeSketch(options.sketch);
  if (!probe->Mergeable() || probe->Clone() == nullptr) return nullptr;
  return std::unique_ptr<IngestPipeline>(new IngestPipeline(options));
}

IngestPipeline::IngestPipeline(const IngestOptions& options)
    : options_(options), router_(options.sharding, options.shards) {
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>(options_.ring_capacity);
    shard->sketch = MakeSketch(options_.sketch);
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every shard exists: a worker publishing a
  // merged view iterates over all of shards_.
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { WorkerLoop(*s); });
  }
  started_ = true;
}

IngestPipeline::~IngestPipeline() { Stop(); }

bool IngestPipeline::TryPush(const Update& update) {
  Shard& shard = *shards_[static_cast<size_t>(router_.Route(update.value))];
  if (!shard.ring.TryPush(update)) {
    shard.stats.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.stats.pushed.fetch_add(1, std::memory_order_relaxed);
  stats_.pushed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void IngestPipeline::Push(const Update& update) {
  Shard& shard = *shards_[static_cast<size_t>(router_.Route(update.value))];
  while (!shard.ring.TryPush(update)) {
    // Backpressure: the ring bounds memory, so a producer outrunning a
    // worker waits here instead of growing a queue.
    shard.stats.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  shard.stats.pushed.fetch_add(1, std::memory_order_relaxed);
  stats_.pushed.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::WorkerLoop(Shard& shard) {
  std::vector<Update> batch(options_.batch_size);
  uint64_t since_publish = 0;
  for (;;) {
    const size_t n = shard.ring.PopBatch(batch.data(), batch.size());
    if (n == 0) {
      // Idle: bring the shard snapshot up to date so Flush (and queries)
      // see everything processed, then help refresh the merged view.
      if (shard.stats.snapshot_epoch.load(std::memory_order_relaxed) !=
          shard.stats.processed.load(std::memory_order_relaxed)) {
        PublishShardSnapshot(shard);
        PublishMergedView(/*block=*/false);
      }
      // The producer stops pushing before setting stop_, so an empty ring
      // observed after the flag is a drained ring.
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    uint64_t rejected = 0;
    for (size_t i = 0; i < n; ++i) {
      const Update& u = batch[i];
      const int32_t reps = u.delta >= 0 ? u.delta : -u.delta;
      for (int32_t k = 0; k < reps; ++k) {
        const StreamqStatus status = u.delta >= 0
                                         ? shard.sketch->Insert(u.value)
                                         : shard.sketch->Erase(u.value);
        if (status != StreamqStatus::kOk) ++rejected;
      }
    }
    shard.stats.processed.fetch_add(n, std::memory_order_release);
    if (rejected != 0) {
      shard.stats.rejected.fetch_add(rejected, std::memory_order_relaxed);
    }
    UpdatePeak(shard.stats.peak_memory_bytes,
               static_cast<uint64_t>(shard.sketch->MemoryBytes()));
    since_publish += n;
    if (since_publish >= options_.publish_interval) {
      since_publish = 0;
      PublishShardSnapshot(shard);
      PublishMergedView(/*block=*/false);
    }
  }
}

void IngestPipeline::PublishShardSnapshot(Shard& shard) {
  const uint64_t processed =
      shard.stats.processed.load(std::memory_order_relaxed);
  std::shared_ptr<QuantileSketch> clone = shard.sketch->Clone();
  assert(clone != nullptr);  // Create() verified the config is clonable
  shard.snapshot.Store(std::move(clone));
  // Epoch strictly after the snapshot: a reader that sees the new epoch is
  // guaranteed a snapshot at least that fresh (it may see an even newer
  // snapshot with an older epoch, which only overstates staleness).
  shard.stats.snapshot_epoch.store(processed, std::memory_order_release);
  shard.stats.snapshots.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::PublishMergedView(bool block) {
  std::unique_lock<std::mutex> lock(publish_mutex_, std::defer_lock);
  if (block) {
    lock.lock();
  } else if (!lock.try_lock()) {
    // Another worker is already building a view; skipping keeps the hot
    // path free of lock waits (the other publisher's view is nearly as
    // fresh anyway).
    stats_.publish_contended.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const obs::ScopedTimer publish_timer(&publish_ticks_);
  std::unique_ptr<QuantileSketch> merged = MakeSketch(options_.sketch);
  uint64_t epoch = 0;
  for (const auto& shard : shards_) {
    // Epoch before snapshot (each with acquire), mirroring the publisher's
    // snapshot-then-epoch stores: the loaded snapshot is at least as fresh
    // as the loaded epoch, so the view's epoch never overclaims.
    const uint64_t shard_epoch =
        shard->stats.snapshot_epoch.load(std::memory_order_acquire);
    const std::shared_ptr<QuantileSketch> snap = shard->snapshot.Load();
    if (snap == nullptr) continue;
    const uint64_t t0 = obs::TickClock::Now();
    const StreamqStatus status = merged->Merge(*snap);
    merge_ticks_.Record(obs::TickClock::Now() - t0);
    assert(status == StreamqStatus::kOk);  // identical configs by design
    (void)status;
    epoch += shard_epoch;
  }
  // Account the new resident before it goes live: with double buffering
  // the previous snapshot stays resident in the other slot, so the view's
  // footprint is the sum of both.
  const int slot = 1 - last_slot_;
  slot_bytes_[slot] = static_cast<uint64_t>(merged->MemoryBytes());
  last_slot_ = slot;
  UpdatePeak(stats_.peak_view_bytes, slot_bytes_[0] + slot_bytes_[1]);
  view_.Publish(std::move(merged), epoch);
  stats_.publishes.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::Flush() {
  for (const auto& shard : shards_) {
    // First wait for the worker to drain its ring, then for its snapshot
    // to cover everything drained (idle workers re-snapshot on their own).
    while (shard->stats.processed.load(std::memory_order_acquire) <
               shard->stats.pushed.load(std::memory_order_acquire) ||
           shard->stats.snapshot_epoch.load(std::memory_order_acquire) <
               shard->stats.processed.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  PublishMergedView(/*block=*/true);
}

void IngestPipeline::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  started_ = false;
  // Workers published their final shard snapshots before exiting; fold
  // them into one last complete view so post-Stop queries see the whole
  // stream.
  PublishMergedView(/*block=*/true);
}

uint64_t IngestPipeline::Query(double phi) {
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const QueryView::Snapshot snap = view_.Load();
  if (snap.epoch < ProcessedCount()) {
    stats_.stale_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (snap.sketch == nullptr) return 0;
  // QuantileSketch::Query mutates lazy caches and metrics, so concurrent
  // queries serialise here. Ingestion never takes this mutex.
  std::lock_guard<std::mutex> lock(query_mutex_);
  return snap.sketch->Query(phi);
}

std::vector<uint64_t> IngestPipeline::QueryMany(
    const std::vector<double>& phis) {
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const QueryView::Snapshot snap = view_.Load();
  if (snap.epoch < ProcessedCount()) {
    stats_.stale_queries.fetch_add(1, std::memory_order_relaxed);
  }
  if (snap.sketch == nullptr) return std::vector<uint64_t>(phis.size(), 0);
  std::lock_guard<std::mutex> lock(query_mutex_);
  return snap.sketch->QueryMany(phis);
}

uint64_t IngestPipeline::PushedCount() const {
  return stats_.pushed.load(std::memory_order_acquire);
}

uint64_t IngestPipeline::ProcessedCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->stats.processed.load(std::memory_order_acquire);
  }
  return total;
}

size_t IngestPipeline::PeakMemoryBytes() const {
  uint64_t total = stats_.peak_view_bytes.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    total += shard->stats.peak_memory_bytes.load(std::memory_order_acquire);
  }
  return static_cast<size_t>(total);
}

size_t IngestPipeline::RingBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->ring.capacity() * sizeof(Update);
  }
  return total;
}

void IngestPipeline::PublishMetrics(obs::MetricsRegistry& registry,
                                    const std::string& prefix) {
  const auto set_counter = [&registry](const std::string& name, uint64_t v) {
    obs::Counter& c = registry.GetCounter(name);
    c.Reset();
    c.Add(v);
  };
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    const std::string p = prefix + ".shard" + std::to_string(i);
    registry.GetGauge(p + ".queue_depth")
        .Set(static_cast<int64_t>(shard.ring.SizeApprox()));
    registry.GetGauge(p + ".peak_memory_bytes")
        .Set(static_cast<int64_t>(
            shard.stats.peak_memory_bytes.load(std::memory_order_acquire)));
    set_counter(p + ".pushed",
                shard.stats.pushed.load(std::memory_order_acquire));
    set_counter(p + ".processed",
                shard.stats.processed.load(std::memory_order_acquire));
    set_counter(p + ".rejected",
                shard.stats.rejected.load(std::memory_order_acquire));
    set_counter(p + ".ring_full_stalls",
                shard.stats.ring_full_stalls.load(std::memory_order_acquire));
    set_counter(p + ".snapshots",
                shard.stats.snapshots.load(std::memory_order_acquire));
  }
  set_counter(prefix + ".pushed",
              stats_.pushed.load(std::memory_order_acquire));
  set_counter(prefix + ".publishes",
              stats_.publishes.load(std::memory_order_acquire));
  set_counter(prefix + ".publish_contended",
              stats_.publish_contended.load(std::memory_order_acquire));
  set_counter(prefix + ".queries",
              stats_.queries.load(std::memory_order_acquire));
  set_counter(prefix + ".stale_queries",
              stats_.stale_queries.load(std::memory_order_acquire));
  registry.GetGauge(prefix + ".view_epoch")
      .Set(static_cast<int64_t>(view_.Epoch()));
  registry.GetGauge(prefix + ".peak_view_bytes")
      .Set(static_cast<int64_t>(
          stats_.peak_view_bytes.load(std::memory_order_acquire)));
  registry.GetGauge(prefix + ".peak_memory_bytes")
      .Set(static_cast<int64_t>(PeakMemoryBytes()));
  registry.GetGauge(prefix + ".ring_bytes")
      .Set(static_cast<int64_t>(RingBytes()));
  {
    // The latency histograms are guarded by the publish mutex; copy them
    // out under it.
    std::lock_guard<std::mutex> lock(publish_mutex_);
    registry.GetHistogram(prefix + ".merge_ticks") = merge_ticks_;
    registry.GetHistogram(prefix + ".publish_ticks") = publish_ticks_;
  }
}

}  // namespace streamq::ingest
