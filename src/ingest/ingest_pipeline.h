// Sharded multi-threaded ingestion for the mergeable quantile summaries.
//
// Topology (DESIGN.md section 10):
//
//   producer --ShardRouter--> [SPSC ring]xN --> N shard workers,
//   each owning a private sketch (no shared mutable state on the hot path)
//
//   workers periodically Clone() their shard sketch into a per-shard
//   snapshot slot (shared_slot.h), then one of them (publish mutex, try_lock)
//   merges all shard snapshots into a fresh sketch and installs it into
//   the double-buffered QueryView. Query(phi) reads the view RCU-style
//   and never blocks -- or is blocked by -- ingestion.
//
// The pipeline accepts any factory-buildable summary that is Mergeable()
// and Clone()-able: Random, MRL99, FastQDigest, DCM, DCS. Create() refuses
// the others (GK family: not mergeable; RSS/DCS+Post: no clone path).
//
// All shards are built from the *same* SketchConfig, identical seed
// included: the dyadic summaries are only merge-compatible when their
// per-level hash functions are identical, and identical construction is
// what guarantees that. The merged result then carries the usual eps * n
// bound at the combined stream length (mergeable-summary property;
// tests/property_test.cc checks it end to end).
//
// Durable mode (DESIGN.md section 11, options.durability.enabled): every
// update carries a producer-assigned sequence number; workers append
// sequence-stamped batches to per-shard write-ahead logs off the hot path
// and periodically publish atomic checkpoints. Create() then *recovers*
// whatever a previous incarnation left in options.durability.dir --
// newest valid checkpoint plus WAL tail replay -- before starting the
// workers. The contract with the producer:
//
//   * DurableSeq() is the acknowledgement mark: every update with
//     seq <= DurableSeq() survives any crash.
//   * After a restart, re-push the source stream starting at position
//     ResumeSeq() - 1 (0-based). ResumeSeq() is 1 + the *minimum* shard
//     high-water mark, which under round-robin can trail the previous
//     crash's DurableSeq() by up to shards - 1: those trailing seqs are
//     already recovered on their shards and the re-pushed duplicates are
//     detected by seq and skipped, so every update below ResumeSeq() is
//     recovered, every update at or above it is re-pushed, and the
//     pipeline converges to exactly the uninterrupted stream.
//
// Sharding is deterministic in (seq, value) -- round-robin is seq mod N,
// hash depends only on the value -- which is what makes replayed and
// re-pushed updates land on the shard that already knows their seq.
//
// Threading contract:
//  * Push/TryPush/Flush: one producer thread at a time.
//  * Query/QueryMany: any threads, any time (serialised internally on a
//    query mutex because QuantileSketch::Query mutates lazy caches; the
//    mutex is never taken by ingestion).
//  * Stop(): once, from the producer thread; joins the workers. The
//    destructor calls it.
//  * PublishMetrics: any single thread; the registry is touched only by
//    that caller.

#ifndef STREAMQ_INGEST_INGEST_PIPELINE_H_
#define STREAMQ_INGEST_INGEST_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "durability/options.h"
#include "ingest/ingest_metrics.h"
#include "ingest/query_view.h"
#include "ingest/shared_slot.h"
#include "ingest/shard_router.h"
#include "ingest/spsc_ring.h"
#include "obs/metrics.h"
#include "quantile/factory.h"
#include "stream/update.h"

namespace streamq::ingest {

struct IngestOptions {
  /// Per-shard summary. Every shard gets an identical sketch (same seed --
  /// required for dyadic merge compatibility, see header comment).
  SketchConfig sketch;
  /// Number of shard workers (>= 1). 1 degenerates to a single-threaded
  /// pipeline with the same queue/publish machinery, which is the bench's
  /// scaling baseline.
  int shards = 4;
  /// Per-shard ring capacity (rounded up to a power of two).
  size_t ring_capacity = size_t{1} << 14;
  /// Max updates a worker dequeues per PopBatch call.
  size_t batch_size = 256;
  /// Worker publishes a fresh shard snapshot (and attempts a merged-view
  /// publish) every `publish_interval` updates it processes. Idle workers
  /// additionally publish whatever they have, so the view goes fresh
  /// whenever ingestion pauses.
  uint64_t publish_interval = uint64_t{1} << 16;
  ShardingPolicy sharding = ShardingPolicy::kRoundRobin;
  /// Crash-safety (WAL + checkpoints). Disabled by default; requires a
  /// build with -DSTREAMQ_DURABILITY=ON and a non-null storage when
  /// enabled, otherwise Create() returns nullptr.
  durability::DurabilityOptions durability;
};

/// Ring element: the update plus its producer-assigned global sequence
/// number (1-based; seq 0 never occurs and means "nothing" in marks).
struct SeqUpdate {
  uint64_t seq = 0;
  Update update;
};

/// A worker-published shard snapshot: the cloned sketch together with the
/// exact ingest state it covers, so a checkpointer reading the slot gets
/// one consistent (sketch, applied_seq) pair.
struct ShardSnapshot {
  std::shared_ptr<QuantileSketch> sketch;
  /// Highest ingest seq folded into `sketch` (0 before any).
  uint64_t applied_seq = 0;
  /// This-incarnation processed count at snapshot time (epoch bookkeeping).
  uint64_t processed = 0;
};

/// What Create() found on storage (all zeros/false for a fresh start or a
/// non-durable pipeline). Immutable after Create returns.
struct RecoveryInfo {
  bool recovered = false;
  /// Generation id of the checkpoint loaded (0 = none survived).
  uint64_t checkpoint_id = 0;
  /// Valid WAL records scanned across all shards.
  uint64_t replayed_records = 0;
  /// Updates from those records actually applied (beyond the checkpoint).
  uint64_t replayed_updates = 0;
  /// Segments whose scan stopped at a torn/corrupt tail (expected: the
  /// crash tore at most the unsynced suffix of each shard's last segment).
  uint64_t torn_segments = 0;
  /// First seq the producer must (re-)push: 1 + min over shards of the
  /// recovered applied seq.
  uint64_t resume_seq = 1;
};

class IngestPipeline {
 public:
  /// Builds and starts the pipeline (workers are running on return). In
  /// durable mode, recovery -- checkpoint load, WAL replay, a fresh
  /// post-recovery checkpoint -- completes before any worker starts.
  /// Returns nullptr -- building nothing -- when the configured algorithm
  /// cannot back a pipeline (not Mergeable(), no Clone(), or shards < 1),
  /// when durability is requested without a storage or in a
  /// -DSTREAMQ_DURABILITY=OFF build, or when the durable directories
  /// cannot be initialised.
  static std::unique_ptr<IngestPipeline> Create(const IngestOptions& options);

  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Non-blocking enqueue; false when the target shard's ring is full (the
  /// update was not accepted and its seq was not consumed). Single
  /// producer.
  bool TryPush(const Update& update);

  /// Blocking enqueue: waits until the target shard's ring accepts the
  /// update, spinning with capped exponential backoff (yields first, then
  /// sleeps doubling up to 1 ms). Stall time lands in the
  /// `ring_full_stall_ns` histogram and every 100 ms of one continuous
  /// stall trips the shard's stall watchdog counter, so a stuck consumer
  /// is observable instead of silently burning CPU. Single producer.
  void Push(const Update& update);

  /// Blocking batch enqueue, equivalent to Push(updates[0..n)) in order but
  /// amortising the per-update costs: the whole span is routed in one pass
  /// into per-shard runs (seq order preserved within each shard, so WAL
  /// seqs stay strictly increasing and replay routing is deterministic),
  /// each run lands with multi-slot ring pushes (one Lamport handshake per
  /// span instead of per element), and the producer-side counters advance
  /// once per batch. A shard run that does not fit falls back to the same
  /// capped-backoff slow path as Push; however many partial pushes one
  /// episode takes, it is ticked ONCE in `ring_full_stalls` and its total
  /// duration lands ONCE in the `ring_full_stall_ns` histogram, so batched
  /// producers keep the same stall signal as item-wise ones. Single
  /// producer.
  void PushBatch(std::span<const Update> updates);

  /// Non-blocking batch enqueue: accepts a maximal PREFIX of `updates`
  /// (in span order -- seqs are assigned only to the accepted elements, so
  /// the caller re-offers exactly the rejected suffix later) and returns
  /// its length, possibly 0 (every target ring full) or updates.size()
  /// (all accepted). When every shard run fits its ring, this is
  /// PushBatch's amortised multi-slot fast path; otherwise it degrades to
  /// an item-wise fill that stops at the first full ring. The network
  /// tier's backpressure primitive (src/net/): a server parks the suffix
  /// and stops reading the connection instead of blocking its event loop
  /// or buffering unboundedly. Single producer.
  size_t TryPushBatch(std::span<const Update> updates);

  /// Waits until every pushed update has been applied to its shard sketch
  /// -- and, in durable mode, is covered by the acknowledgement mark or
  /// its shard's WAL has failed dead -- then publishes a merged view
  /// covering all of them. On return, Query(phi) reflects the complete
  /// stream pushed so far. Producer thread only.
  void Flush();

  /// Drains the rings, stops and joins the workers, writes a final
  /// checkpoint (durable mode), and publishes a final complete view.
  /// Idempotent; called by the destructor. After Stop, Push is no longer
  /// allowed but Query keeps answering from the final view.
  void Stop();

  /// eps-approximate phi-quantile from the current published view. Never
  /// blocks ingestion; concurrent callers are serialised on an internal
  /// query mutex. Returns 0 before the first publish (empty summary
  /// semantics, matching QuantileSketch::Query on an empty sketch).
  uint64_t Query(double phi);

  /// Batch quantile query against one consistent snapshot.
  std::vector<uint64_t> QueryMany(const std::vector<double>& phis);

  /// Estimated rank (number of summarised elements < value) from the
  /// current published view, with the same never-blocks-ingestion and
  /// internal-serialisation contract as Query. 0 before the first publish.
  int64_t Rank(uint64_t value);

  /// Clones the currently published merged view into a private, mergeable
  /// sketch (nullptr before the first publish). `count`, when non-null,
  /// receives the clone's Count(). This is how the cluster tier builds
  /// shipment snapshots: the clone is taken from the RCU view, so it never
  /// blocks -- or is blocked by -- ingestion. Any thread.
  std::unique_ptr<QuantileSketch> CloneView(uint64_t* count = nullptr);

  // --- durability -------------------------------------------------------

  /// Acknowledgement mark: every update with seq <= DurableSeq() is
  /// guaranteed to survive a crash (WAL-synced or checkpoint-covered).
  /// 0 when nothing is guaranteed yet or durability is off. Any thread.
  uint64_t DurableSeq() const;

  /// First seq this incarnation expects from the producer (see the
  /// restart contract in the header comment). 1 for a fresh start.
  uint64_t ResumeSeq() const { return recovery_.resume_seq; }

  /// Highest seq assigned so far (0 before the first push of a fresh
  /// pipeline). DurableSeq() == LastPushedSeq() is the "everything pushed
  /// is durable" condition the network tier's FLUSH ack checks. Any
  /// thread.
  uint64_t LastPushedSeq() const {
    return next_seq_.load(std::memory_order_acquire) - 1;
  }

  /// What recovery found at Create() time.
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Forces a checkpoint now (blocking; waits for the checkpoint lock).
  /// Returns true when a new generation was published -- after which the
  /// WAL segments it covers are truncated. False when durability is off
  /// or the write failed. Call after Flush() for a checkpoint covering
  /// everything pushed. Producer thread.
  bool Checkpoint();

  // --- introspection ----------------------------------------------------

  uint64_t PushedCount() const;
  uint64_t ProcessedCount() const;
  /// Epoch (update count processed this incarnation) of the currently
  /// published view. After recovery this intentionally counts from 0
  /// again; durable correctness is asserted on Count()/queries, not on
  /// epochs.
  uint64_t ViewEpoch() const { return view_.Epoch(); }

  /// Worst-case footprint of the whole pipeline under the paper's memory
  /// accounting: the sum of the per-shard sketch peaks plus the peak
  /// combined size of the two query-view buffers. Ring slots are transient
  /// I/O buffers, reported separately by RingBytes().
  size_t PeakMemoryBytes() const;
  /// Fixed footprint of the shard rings (capacity * sizeof(SeqUpdate)
  /// each).
  size_t RingBytes() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const ShardStats& shard_stats(int shard) const {
    return shards_[static_cast<size_t>(shard)]->stats;
  }
  const PipelineStats& stats() const { return stats_; }

  /// Copies pipeline and per-shard statistics into `registry` under
  /// "<prefix>.": per-shard queue-depth gauges and throughput counters,
  /// the merge-latency histogram, the publish-staleness counter, the
  /// ring-stall histogram, and -- in durable mode -- WAL byte/fsync/roll
  /// counters, checkpoint counts and latency, replay totals and the
  /// acknowledgement mark.
  void PublishMetrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

 private:
  struct ShardDurable;     // per-shard WAL state, defined in the .cc
  struct PipelineDurable;  // checkpoint machinery, defined in the .cc

  struct alignas(64) Shard {
    // Constructor and destructor live in the .cc: members reference the
    // forward-declared ShardDurable.
    explicit Shard(size_t ring_capacity);
    SpscRing<SeqUpdate> ring;
    std::unique_ptr<QuantileSketch> sketch;  // worker-private after Start
    SharedSlot<ShardSnapshot> snapshot;      // worker writes, readers read
    std::unique_ptr<ShardDurable> durable;   // null when durability is off
    ShardStats stats;
    std::thread worker;
    ~Shard();
  };

  explicit IngestPipeline(const IngestOptions& options);

  /// Durable-mode setup: directories, checkpoint load, WAL replay, the
  /// post-recovery checkpoint, WAL writers. False => Create fails.
  bool InitDurability();
  /// Launches the shard workers (after recovery, if any).
  void Start();

  void WorkerLoop(Shard& shard);
  /// Ring-full slow path of Push: backoff + stall accounting.
  void PushSlow(Shard& shard, int shard_idx, const SeqUpdate& item);
  /// Ring-full slow path of PushBatch: pushes the remaining items[0..n) of
  /// one shard run with the same backoff/watchdog contract as PushSlow,
  /// counting the whole episode as one stall however many partial
  /// multi-slot pushes it takes.
  void PushBatchSlow(Shard& shard, int shard_idx, const SeqUpdate* items,
                     size_t n);
  /// Clones the shard sketch into its snapshot slot (worker thread only).
  void PublishShardSnapshot(Shard& shard);
  /// Merges all shard snapshots into a fresh sketch and installs it into
  /// the view. `block` selects mutex lock vs try_lock (workers use
  /// try_lock so a contended publish never stalls ingestion).
  void PublishMergedView(bool block);
  /// Checkpoint when due (workers: try_lock, cheap interval pre-check) or
  /// unconditionally (block = true).
  void MaybeCheckpoint(bool block);
  /// Serialises all shard snapshots into a new checkpoint generation and
  /// truncates the WAL segments it covers. Checkpoint lock held.
  bool WriteCheckpointLocked();
  /// Deletes the pre-recovery WAL segments still pending after a failed
  /// recovery-time checkpoint. Checkpoint lock held.
  void PruneOldSegmentsLocked();

  IngestOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  /// Next seq the producer will assign (producer-owned; atomic only so
  /// DurableSeq() may read it from other threads).
  std::atomic<uint64_t> next_seq_{1};
  /// PushBatch partition scratch, one run per shard (producer-owned;
  /// reused across batches so routing allocates only on growth).
  std::vector<std::vector<SeqUpdate>> push_scratch_;
  RecoveryInfo recovery_;  // written by Create, immutable afterwards
  std::unique_ptr<PipelineDurable> durable_;  // null when durability off

  QueryView view_;
  std::mutex publish_mutex_;
  // Guarded by publish_mutex_: merge/publish latency distributions (ticks,
  // obs::TickClock) and the sizes of the two resident view buffers.
  obs::Histogram merge_ticks_;
  obs::Histogram publish_ticks_;
  uint64_t slot_bytes_[2] = {0, 0};
  int last_slot_ = 0;

  // Guarded by stall_mutex_ (touched only on the ring-full slow path and
  // by PublishMetrics, never on the fast path).
  std::mutex stall_mutex_;
  obs::Histogram ring_full_stall_ns_;

  std::mutex query_mutex_;
  PipelineStats stats_;
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_INGEST_PIPELINE_H_
