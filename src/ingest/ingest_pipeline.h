// Sharded multi-threaded ingestion for the mergeable quantile summaries.
//
// Topology (DESIGN.md section 10):
//
//   producer --ShardRouter--> [SPSC ring]xN --> N shard workers,
//   each owning a private sketch (no shared mutable state on the hot path)
//
//   workers periodically Clone() their shard sketch into a per-shard
//   snapshot slot (shared_slot.h), then one of them (publish mutex, try_lock)
//   merges all shard snapshots into a fresh sketch and installs it into
//   the double-buffered QueryView. Query(phi) reads the view RCU-style
//   and never blocks -- or is blocked by -- ingestion.
//
// The pipeline accepts any factory-buildable summary that is Mergeable()
// and Clone()-able: Random, MRL99, FastQDigest, DCM, DCS. Create() refuses
// the others (GK family: not mergeable; RSS/DCS+Post: no clone path).
//
// All shards are built from the *same* SketchConfig, identical seed
// included: the dyadic summaries are only merge-compatible when their
// per-level hash functions are identical, and identical construction is
// what guarantees that. The merged result then carries the usual eps * n
// bound at the combined stream length (mergeable-summary property;
// tests/property_test.cc checks it end to end).
//
// Threading contract:
//  * Push/TryPush/Flush: one producer thread at a time.
//  * Query/QueryMany: any threads, any time (serialised internally on a
//    query mutex because QuantileSketch::Query mutates lazy caches; the
//    mutex is never taken by ingestion).
//  * Stop(): once, from the producer thread; joins the workers. The
//    destructor calls it.
//  * PublishMetrics: any single thread; the registry is touched only by
//    that caller.

#ifndef STREAMQ_INGEST_INGEST_PIPELINE_H_
#define STREAMQ_INGEST_INGEST_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_metrics.h"
#include "ingest/query_view.h"
#include "ingest/shared_slot.h"
#include "ingest/shard_router.h"
#include "ingest/spsc_ring.h"
#include "obs/metrics.h"
#include "quantile/factory.h"
#include "stream/update.h"

namespace streamq::ingest {

struct IngestOptions {
  /// Per-shard summary. Every shard gets an identical sketch (same seed --
  /// required for dyadic merge compatibility, see header comment).
  SketchConfig sketch;
  /// Number of shard workers (>= 1). 1 degenerates to a single-threaded
  /// pipeline with the same queue/publish machinery, which is the bench's
  /// scaling baseline.
  int shards = 4;
  /// Per-shard ring capacity (rounded up to a power of two).
  size_t ring_capacity = size_t{1} << 14;
  /// Max updates a worker dequeues per PopBatch call.
  size_t batch_size = 256;
  /// Worker publishes a fresh shard snapshot (and attempts a merged-view
  /// publish) every `publish_interval` updates it processes. Idle workers
  /// additionally publish whatever they have, so the view goes fresh
  /// whenever ingestion pauses.
  uint64_t publish_interval = uint64_t{1} << 16;
  ShardingPolicy sharding = ShardingPolicy::kRoundRobin;
};

class IngestPipeline {
 public:
  /// Builds and starts the pipeline (workers are running on return).
  /// Returns nullptr -- building nothing -- when the configured algorithm
  /// cannot back a pipeline (not Mergeable(), no Clone(), or shards < 1).
  static std::unique_ptr<IngestPipeline> Create(const IngestOptions& options);

  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Non-blocking enqueue; false when the target shard's ring is full (the
  /// update was not accepted). Single producer.
  bool TryPush(const Update& update);

  /// Blocking enqueue: spins (with yields) until the target shard's ring
  /// accepts the update. Single producer.
  void Push(const Update& update);

  /// Waits until every pushed update has been applied to its shard sketch,
  /// then publishes a merged view covering all of them. On return,
  /// Query(phi) reflects the complete stream pushed so far. Producer
  /// thread only.
  void Flush();

  /// Drains the rings, stops and joins the workers, and publishes a final
  /// complete view. Idempotent; called by the destructor. After Stop, Push
  /// is no longer allowed but Query keeps answering from the final view.
  void Stop();

  /// eps-approximate phi-quantile from the current published view. Never
  /// blocks ingestion; concurrent callers are serialised on an internal
  /// query mutex. Returns 0 before the first publish (empty summary
  /// semantics, matching QuantileSketch::Query on an empty sketch).
  uint64_t Query(double phi);

  /// Batch quantile query against one consistent snapshot.
  std::vector<uint64_t> QueryMany(const std::vector<double>& phis);

  // --- introspection ----------------------------------------------------

  uint64_t PushedCount() const;
  uint64_t ProcessedCount() const;
  /// Epoch (update count) of the currently published view.
  uint64_t ViewEpoch() const { return view_.Epoch(); }

  /// Worst-case footprint of the whole pipeline under the paper's memory
  /// accounting: the sum of the per-shard sketch peaks plus the peak
  /// combined size of the two query-view buffers. Ring slots are transient
  /// I/O buffers, reported separately by RingBytes().
  size_t PeakMemoryBytes() const;
  /// Fixed footprint of the shard rings (capacity * sizeof(Update) each).
  size_t RingBytes() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const ShardStats& shard_stats(int shard) const {
    return shards_[static_cast<size_t>(shard)]->stats;
  }
  const PipelineStats& stats() const { return stats_; }

  /// Copies pipeline and per-shard statistics into `registry` under
  /// "<prefix>.": per-shard queue-depth gauges and throughput counters,
  /// the merge-latency histogram, and the publish-staleness counter.
  void PublishMetrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

 private:
  struct alignas(64) Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<Update> ring;
    std::unique_ptr<QuantileSketch> sketch;  // worker-private after Start
    SharedSlot<QuantileSketch> snapshot;     // worker writes, publisher reads
    ShardStats stats;
    std::thread worker;
  };

  explicit IngestPipeline(const IngestOptions& options);

  void WorkerLoop(Shard& shard);
  /// Clones the shard sketch into its snapshot slot (worker thread only).
  void PublishShardSnapshot(Shard& shard);
  /// Merges all shard snapshots into a fresh sketch and installs it into
  /// the view. `block` selects mutex lock vs try_lock (workers use
  /// try_lock so a contended publish never stalls ingestion).
  void PublishMergedView(bool block);

  IngestOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  QueryView view_;
  std::mutex publish_mutex_;
  // Guarded by publish_mutex_: merge/publish latency distributions (ticks,
  // obs::TickClock) and the sizes of the two resident view buffers.
  obs::Histogram merge_ticks_;
  obs::Histogram publish_ticks_;
  uint64_t slot_bytes_[2] = {0, 0};
  int last_slot_ = 0;

  std::mutex query_mutex_;
  PipelineStats stats_;
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_INGEST_PIPELINE_H_
