// Fixed-capacity single-producer / single-consumer ring buffer: the queue
// between the ingest front-end and one shard worker (see ingest_pipeline.h).
//
// Design (classic Lamport queue with index caching):
//
//  * Power-of-two capacity, slots indexed by monotonically increasing
//    64-bit positions masked into the array. head_ is owned by the
//    consumer, tail_ by the producer; neither side ever stores the other's
//    index.
//  * Both indices live on their own cache line (alignas(64)) together with
//    the opposite side's *cached* copy, so a push normally touches only the
//    producer line and a pop only the consumer line. The shared atomic is
//    re-read only when the cached copy suggests the ring is full (producer)
//    or empty (consumer) -- one cache-coherence round-trip per batch rather
//    than per element.
//  * Release/acquire pairing: the producer's tail_ store releases the slot
//    writes, the consumer's tail_ load acquires them (and symmetrically for
//    head_ on reuse of slots). No seq_cst, no fences, no locks.
//  * No allocation after construction; TryPush/PopBatch never block.
//
// Thread-safety contract: at most one thread calls TryPush/SizeApprox's
// producer side and at most one thread calls PopBatch. This is exactly the
// pipeline's topology (one router thread, one worker per ring) and is what
// makes the wait-free index protocol sufficient.

#ifndef STREAMQ_INGEST_SPSC_RING_H_
#define STREAMQ_INGEST_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamq::ingest {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2) so index
  /// masking replaces modulo on the hot path.
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false (ring full, element not enqueued) without
  /// blocking; the caller decides whether to spin, yield, or drop.
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, multi-slot: enqueues as many of values[0..n) as fit
  /// (front first, order preserved) and returns the number enqueued --
  /// possibly 0 (ring full) or less than n (partial push; the caller
  /// retries the tail of the batch, typically after a backoff). One
  /// cached-head check and ONE releasing tail_ store cover the whole span,
  /// amortising the Lamport handshake over the batch; the single release
  /// still publishes every slot write to the consumer.
  size_t TryPushBatch(const T* values, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = slots_.size() - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - cached_head_);
      if (free == 0) return 0;
    }
    const size_t take = n < free ? n : static_cast<size_t>(free);
    for (size_t i = 0; i < take; ++i) {
      slots_[(tail + i) & mask_] = values[i];
    }
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  /// Producer side: free slots available right now. Refreshes the cached
  /// consumer index once, like TryPushBatch; the consumer only ever frees
  /// more slots, so the returned value is a lower bound that a subsequent
  /// TryPushBatch of at most this many elements is guaranteed to accept.
  size_t ProducerFree() {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = slots_.size() - (tail - cached_head_);
    if (free < slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - cached_head_);
    }
    return static_cast<size_t>(free);
  }

  /// Consumer side: dequeues up to `max` elements into `out`, returning the
  /// number dequeued (0 when empty). Draining in batches amortises the
  /// producer-index load and the head_ publication over the whole batch.
  size_t PopBatch(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    size_t n = static_cast<size_t>(cached_tail_ - head);
    if (n > max) n = max;
    for (size_t i = 0; i < n; ++i) out[i] = slots_[(head + i) & mask_];
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Instantaneous queue depth. Callable from any thread; the value is a
  /// snapshot that may be stale by the time it is read (used for gauges
  /// only, never for synchronisation).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Consumer line: the consumer-owned index plus its cache of the producer's.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  // Producer line, symmetric.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
};

}  // namespace streamq::ingest

#endif  // STREAMQ_INGEST_SPSC_RING_H_
