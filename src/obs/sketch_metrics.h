// Per-sketch instrumentation and the metrics on/off macro layer.
//
// Every QuantileSketch owns one SketchMetrics (see quantile_sketch.h). The
// base class counts updates and queries; the concrete summaries additionally
// report their compaction events (COMPRESS, buffer flush, COLLAPSE, buffer
// merge, OLS finalisation) through the macros below, passing a SketchMetrics*
// that may be null (e.g. a GkArrayImpl used standalone by the distributed
// monitor sites).
//
// The `STREAMQ_METRICS` CMake option (default ON) controls
// STREAMQ_METRICS_ENABLED. When OFF:
//  * SketchMetrics collapses to an empty struct of no-op stubs, so member
//    accesses still compile and fold to nothing;
//  * the macros expand to ((void)0), removing the call sites entirely --
//    no counter increments, no timer reads, no branches remain in the
//    compiled hot path.
// The registry layer (obs/metrics.h) stays available either way; it simply
// has no sketch-side data to publish in an OFF build.

#ifndef STREAMQ_OBS_SKETCH_METRICS_H_
#define STREAMQ_OBS_SKETCH_METRICS_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef STREAMQ_METRICS_ENABLED
#define STREAMQ_METRICS_ENABLED 1
#endif

namespace streamq::obs {

#if STREAMQ_METRICS_ENABLED

/// The metrics every quantile sketch carries. Counters cover the update and
/// query paths (single add each); histograms and the memory gauge are only
/// touched on compaction events and publishes -- the overhead budget of
/// DESIGN.md section 9.
struct SketchMetrics {
  Counter inserts;        ///< accepted Insert() calls
  Counter erases;         ///< accepted Erase() calls
  Counter merges;         ///< accepted Merge() calls
  Counter rejected;       ///< updates/merges refused with a non-kOk status
  Counter queries;        ///< Query()/QueryMany() calls (batch counts once)
  Counter compressions;   ///< compaction events (COMPRESS/flush/collapse/...)
  Histogram compress_trigger;  ///< summary size (tuples/nodes/elements) when
                               ///< a compaction fired
  Histogram compress_ticks;    ///< TickClock duration of each compaction
  Gauge memory_bytes;          ///< MemoryBytes() at the last publish

  /// Copies the current values into `registry` under "<prefix>.<metric>".
  void PublishTo(MetricsRegistry& registry, const std::string& prefix) const {
    registry.GetCounter(prefix + ".inserts").Reset();
    registry.GetCounter(prefix + ".inserts").Add(inserts.value());
    registry.GetCounter(prefix + ".erases").Reset();
    registry.GetCounter(prefix + ".erases").Add(erases.value());
    registry.GetCounter(prefix + ".merges").Reset();
    registry.GetCounter(prefix + ".merges").Add(merges.value());
    registry.GetCounter(prefix + ".rejected").Reset();
    registry.GetCounter(prefix + ".rejected").Add(rejected.value());
    registry.GetCounter(prefix + ".queries").Reset();
    registry.GetCounter(prefix + ".queries").Add(queries.value());
    registry.GetCounter(prefix + ".compressions").Reset();
    registry.GetCounter(prefix + ".compressions").Add(compressions.value());
    registry.GetGauge(prefix + ".memory_bytes").Set(memory_bytes.value());
    registry.GetHistogram(prefix + ".compress_trigger") = compress_trigger;
    registry.GetHistogram(prefix + ".compress_ticks") = compress_ticks;
  }
};

/// Executes `stmt` only in a metrics-enabled build.
#define STREAMQ_IF_METRICS(stmt) stmt

/// Records one compaction event: increments the compressions counter, logs
/// the summary size that triggered it, and stamps a trace instant (the
/// flight recorder sees compaction cadence even between spans). `m` is a
/// SketchMetrics* and may be null.
#define STREAMQ_COMPACTION_EVENT(m, trigger_size)                       \
  do {                                                                  \
    ::streamq::obs::SketchMetrics* sq_m_ = (m);                         \
    if (sq_m_ != nullptr) {                                             \
      sq_m_->compressions.Inc();                                        \
      sq_m_->compress_trigger.Record(                                   \
          static_cast<uint64_t>(trigger_size));                         \
    }                                                                   \
    STREAMQ_TRACE_INSTANT(::streamq::obs::TracePoint::kSketchCompaction, \
                          trigger_size);                                \
  } while (0)

/// Times the rest of the enclosing scope into the compaction-latency
/// histogram of `m` (a SketchMetrics*, may be null) and traces it as a
/// sketch_compaction span.
#define STREAMQ_COMPACTION_TIMER(m)                                  \
  ::streamq::obs::ScopedTimer sq_compaction_timer_(                  \
      (m) != nullptr ? &(m)->compress_ticks : nullptr);              \
  STREAMQ_TRACE_SPAN(::streamq::obs::TracePoint::kSketchCompaction, 0)

#else  // !STREAMQ_METRICS_ENABLED

/// Metrics-off stand-ins: same API surface, every operation a no-op the
/// optimiser removes. value() reads report zero.
struct NoopCounter {
  void Inc() {}
  void Add(uint64_t) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};
struct NoopGauge {
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t value() const { return 0; }
  void Reset() {}
};
struct NoopHistogram {
  void Record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t min() const { return 0; }
  uint64_t max() const { return 0; }
  double Mean() const { return 0.0; }
  void Reset() {}
};

struct SketchMetrics {
  NoopCounter inserts, erases, merges, rejected, queries, compressions;
  NoopHistogram compress_trigger, compress_ticks;
  NoopGauge memory_bytes;
  void PublishTo(MetricsRegistry&, const std::string&) const {}
};

// The trace layer stays active in a metrics-off build (independent
// switches): compaction spans/instants still record when tracing is on.
#define STREAMQ_IF_METRICS(stmt)
#define STREAMQ_COMPACTION_EVENT(m, trigger_size) \
  STREAMQ_TRACE_INSTANT(::streamq::obs::TracePoint::kSketchCompaction, \
                        trigger_size)
#define STREAMQ_COMPACTION_TIMER(m) \
  STREAMQ_TRACE_SPAN(::streamq::obs::TracePoint::kSketchCompaction, 0)

#endif  // STREAMQ_METRICS_ENABLED

}  // namespace streamq::obs

#endif  // STREAMQ_OBS_SKETCH_METRICS_H_
