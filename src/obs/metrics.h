// streamq_obs: lightweight metrics primitives for looking inside a running
// sketch without perturbing it.
//
// Design constraints (see DESIGN.md section 9):
//
//  * Zero allocation on the hot path. Counter/Gauge/Histogram are plain
//    structs of integers; recording is an add (plus one branch for the
//    histogram bucket). Allocation happens only at registration time
//    (MetricsRegistry::GetCounter and friends), which callers do once at
//    construction and never per update.
//  * Fixed-bucket histograms. 32 power-of-two buckets cover [0, 2^31) with
//    saturation into the last bucket -- enough dynamic range for tuple
//    counts, buffer sizes, and cycle counts alike, with no configuration
//    and no per-record search.
//  * Deterministic serialisation. A registry snapshots through the same
//    CRC32C-framed serde as sketch snapshots (SnapshotType::kMetricsRegistry),
//    so coordinator-side metrics can cross the faulty channel and corrupt
//    frames are rejected before a byte is interpreted.
//
// This header is always compiled; the `-DSTREAMQ_METRICS=OFF` build switch
// removes the *instrumentation call sites* inside the sketches (see
// obs/sketch_metrics.h for the macro layer), not these types. The registry
// and its serde therefore keep working in a metrics-off build -- they just
// have nothing sketch-side to report.
//
// Thread-safety: none of these types synchronise. The library is
// single-threaded by design (one sketch, one stream); share a registry
// across threads only under external locking.

#ifndef STREAMQ_OBS_METRICS_H_
#define STREAMQ_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/serde.h"

namespace streamq::obs {

/// Monotonically increasing event count (updates applied, frames sent, ...).
class Counter {
 public:
  void Inc() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-written point-in-time value (memory bytes, staleness bound, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t d) { value_ += d; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

/// Fixed-bucket histogram over uint64 samples. Bucket 0 holds the value 0;
/// bucket i (i >= 1) holds [2^(i-1), 2^i); the last bucket saturates.
/// Tracks count/sum/min/max exactly alongside the bucketed distribution.
class Histogram {
 public:
  static constexpr int kBucketCount = 32;

  void Record(uint64_t v) {
    ++buckets_[BucketIndex(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Minimum recorded sample (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t bucket(int i) const { return buckets_[i]; }

  /// Estimated phi-quantile of the recorded samples: finds the bucket
  /// holding the sample of rank ceil(phi * count), interpolates linearly
  /// inside it, and clamps to the exact [min, max] envelope (so all-equal
  /// inputs return the exact value). phi <= 0 returns min(), phi >= 1
  /// returns max(). Returns 0 when empty or phi is not a number in [0, 1].
  /// The absolute error is bounded by the width of one pow2 bucket — the
  /// same guarantee q-digest style summaries give, dogfooded for the
  /// Prometheus summary export.
  uint64_t ValueAtQuantile(double phi) const;

  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(int i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  /// Bucket index a sample lands in.
  static int BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    int bit = 63;
    while ((v >> bit) == 0) --bit;  // floor(log2(v))
    return bit + 1 >= kBucketCount ? kBucketCount - 1 : bit + 1;
  }

  void Reset() {
    for (uint64_t& b : buckets_) b = 0;
    count_ = sum_ = min_ = max_ = 0;
  }

 private:
  friend class MetricsRegistry;  // snapshot/restore of the raw state
  uint64_t buckets_[kBucketCount] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Cheapest available monotonic tick source for latency histograms and
/// trace timestamps: the invariant TSC on x86-64 (~10 cycles to read), the
/// steady clock elsewhere (and on x86 parts without an invariant TSC, where
/// raw cycle counts would drift across frequency changes).
///
/// The tick unit is calibrated against steady_clock once at process start
/// (a ~2 ms two-sample measurement, run from a static initializer in
/// metrics.cc), so ToNanos()/NowNanos() convert raw ticks into real
/// nanoseconds — required by the trace exporters, whose timestamps must be
/// wall-time-meaningful, not machine-relative cycle counts.
struct TickClock {
  /// Raw ticks (TSC cycles or steady_clock nanoseconds).
  static uint64_t Now();

  /// True when Now() reads the invariant TSC (x86-64 with CPUID advertising
  /// it); false on the steady_clock fallback, where 1 tick == 1 ns.
  static bool UsingTsc();

  /// Calibrated nanoseconds per tick (exactly 1.0 on the fallback).
  static double NanosPerTick();

  /// Converts a tick count (or tick difference) to nanoseconds.
  static uint64_t ToNanos(uint64_t ticks);

  /// Now() in calibrated nanoseconds.
  static uint64_t NowNanos() { return ToNanos(Now()); }
};

/// Records the tick-duration of a scope into a histogram on destruction.
/// A null histogram makes the timer a no-op (used by sketches whose metrics
/// hook is unset).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(hist ? TickClock::Now() : 0) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(TickClock::Now() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

/// Owns named metrics. Names are get-or-create: the first Get* call for a
/// name allocates the metric, later calls return the same object, so callers
/// register once (construction) and keep the reference for hot-path use.
/// Counters, gauges, and histograms live in separate namespaces (the same
/// name may exist once per kind).
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Read-only lookups: nullptr when the name was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Visits every metric in name order (for dumps and tests).
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

  size_t CounterCount() const { return counters_.size(); }
  size_t GaugeCount() const { return gauges_.size(); }
  size_t HistogramCount() const { return histograms_.size(); }

  /// Zeroes every metric, keeping registrations (and handed-out references)
  /// valid.
  void ResetAll();

  /// Serialized, CRC32C-framed snapshot of every metric
  /// (SnapshotType::kMetricsRegistry) -- transportable over FaultyChannel
  /// like any sketch snapshot.
  std::string Snapshot() const;

  /// Replaces this registry's contents with a Snapshot(). Returns false --
  /// leaving *this untouched -- on any corrupt input (bad frame, bad CRC,
  /// truncated or oversized payload). References handed out before Restore
  /// are invalidated on success.
  bool Restore(const std::string& frame);

  /// Human-readable multi-line dump ("name value" per line), for logs and
  /// the bench binaries.
  std::string DebugString() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace streamq::obs

#endif  // STREAMQ_OBS_METRICS_H_
