// streamq_obs: exporters for the flight recorder and the metrics registry.
//
// Two standard wire formats, both written as plain text with no external
// dependencies:
//
//  * Chrome trace-event JSON (the "JSON Object Format" with a traceEvents
//    array) — loadable in chrome://tracing and Perfetto. Span begin/end
//    pairs from the rings are matched per thread into complete ("X")
//    events; a ring that wrapped mid-span leaves orphan begins/ends, which
//    are still emitted as valid JSON (see ExportChromeTrace).
//  * Prometheus text exposition format (version 0.0.4) for MetricsRegistry:
//    counters as `_total`, gauges as-is, pow2 histograms as cumulative
//    `_bucket{le=...}` series plus a summary family whose quantile lines
//    come from Histogram::ValueAtQuantile — the library dogfooding its own
//    subject matter.
//
// Export is the cold path: it allocates freely, takes the tracer's pool
// lock briefly per ring visit, and never blocks recording threads (the
// rings are snapshotted with the seqlock discard rule, not locked).

#ifndef STREAMQ_OBS_TRACE_EXPORT_H_
#define STREAMQ_OBS_TRACE_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace streamq::obs {

struct ChromeTraceOptions {
  /// When set, recorded in the JSON's otherData as "crash_reason" (the
  /// automatic dump triggers pass "stall_watchdog", "wal_dead",
  /// "recovery_failure").
  const char* crash_reason = nullptr;
};

/// Serializes every ring of `tracer` into Chrome trace-event JSON.
///
/// Per thread (ring), begin/end events are matched LIFO into "X" complete
/// events with microsecond ts/dur (TickClock ticks converted through the
/// calibrated TickClock::ToNanos). Wrap artifacts stay valid JSON:
///  * an end with no live begin becomes an instant marked
///    {"orphan":"end"};
///  * a begin with no end becomes an "X" event cut off at the thread's
///    last known timestamp, marked {"orphan":"begin"}.
/// Instants carry {"ph":"i","s":"t"}. Every event's raw argument is in
/// args.v. The output always parses with json.loads, whatever state the
/// rings were in.
std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options = {});

/// ExportChromeTrace to a file. Returns false on I/O failure.
bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path,
                          const ChromeTraceOptions& options = {});

/// Serializes `registry` in the Prometheus text exposition format. Metric
/// names are sanitized ([a-zA-Z0-9_:], everything else becomes '_') and
/// prefixed "streamq_". Each pow2 histogram additionally exports a
/// "<name>_quantiles" summary family with quantile="0.5|0.9|0.99" samples
/// computed by Histogram::ValueAtQuantile.
std::string ExportPrometheusText(const MetricsRegistry& registry);

/// ExportPrometheusText to a file. Returns false on I/O failure.
bool WritePrometheusTextFile(const MetricsRegistry& registry,
                             const std::string& path);

}  // namespace streamq::obs

#endif  // STREAMQ_OBS_TRACE_EXPORT_H_
