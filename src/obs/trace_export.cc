#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <set>
#include <vector>

namespace streamq::obs {

namespace {

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<size_t>(n) < sizeof(buf)
                                 ? static_cast<size_t>(n)
                                 : sizeof(buf) - 1);
}

double TicksToUs(uint64_t ticks, uint64_t base_ticks) {
  const uint64_t ns =
      TickClock::ToNanos(ticks >= base_ticks ? ticks - base_ticks : 0);
  return static_cast<double>(ns) / 1000.0;
}

/// One serialized traceEvents entry. `dur_us < 0` means no dur field.
void AppendEvent(std::string& out, bool& first, const char* name,
                 const char* cat, const char* ph, double ts_us, double dur_us,
                 int tid, uint64_t arg, const char* orphan) {
  if (!first) out += ",\n";
  first = false;
  AppendF(out,
          "    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
          "\"ts\": %.3f",
          name, cat, ph, ts_us);
  if (dur_us >= 0.0) AppendF(out, ", \"dur\": %.3f", dur_us);
  if (std::strcmp(ph, "i") == 0) out += ", \"s\": \"t\"";
  AppendF(out, ", \"pid\": 1, \"tid\": %d, \"args\": {\"v\": %" PRIu64,
          tid, arg);
  if (orphan != nullptr) AppendF(out, ", \"orphan\": \"%s\"", orphan);
  out += "}}";
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options) {
  struct RingDump {
    int tid;
    TraceRing::SnapshotResult snap;
  };
  std::vector<RingDump> dumps;
  tracer.VisitRings([&dumps](const TraceRing& ring) {
    RingDump d;
    d.tid = ring.tid();
    d.snap = ring.Snapshot();
    if (!d.snap.events.empty() || d.snap.recorded > 0) {
      dumps.push_back(std::move(d));
    }
  });

  // Timestamps are exported relative to the earliest event so traces open
  // near t=0 instead of at machine-uptime offsets.
  uint64_t base_ticks = 0;
  bool have_base = false;
  for (const RingDump& d : dumps) {
    for (const TraceEvent& e : d.snap.events) {
      if (!have_base || e.ticks < base_ticks) {
        base_ticks = e.ticks;
        have_base = true;
      }
    }
  }

  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {";
  AppendF(out, "\"clock\": \"%s\"", TickClock::UsingTsc()
                                        ? "tsc_calibrated"
                                        : "steady_clock");
  AppendF(out, ", \"nanos_per_tick\": %.6f", TickClock::NanosPerTick());
  if (options.crash_reason != nullptr) {
    AppendF(out, ", \"crash_reason\": \"%s\"", options.crash_reason);
  }
  uint64_t total_overwritten = 0, total_discarded = 0;
  for (const RingDump& d : dumps) {
    total_overwritten += d.snap.overwritten;
    total_discarded += d.snap.discarded;
  }
  AppendF(out,
          ", \"events_overwritten\": %" PRIu64
          ", \"events_discarded\": %" PRIu64 "}",
          total_overwritten, total_discarded);
  out += ",\n  \"traceEvents\": [\n";

  bool first = true;
  for (const RingDump& d : dumps) {
    // LIFO begin/end matching per thread. A wrapped ring can start with
    // ends whose begins were overwritten, and can finish with begins whose
    // ends were never recorded (crash mid-span); both must stay valid JSON.
    struct OpenSpan {
      TracePoint point;
      uint64_t ticks;
      uint64_t arg;
    };
    std::vector<OpenSpan> open;
    uint64_t last_ticks = base_ticks;
    for (const TraceEvent& e : d.snap.events) {
      if (e.ticks > last_ticks) last_ticks = e.ticks;
    }
    for (const TraceEvent& e : d.snap.events) {
      const char* name = TracePointName(e.point);
      const char* cat = TracePointCategory(e.point);
      switch (e.phase) {
        case TracePhase::kBegin:
          open.push_back(OpenSpan{e.point, e.ticks, e.arg});
          break;
        case TracePhase::kEnd: {
          int match = -1;
          for (int i = static_cast<int>(open.size()) - 1; i >= 0; --i) {
            if (open[static_cast<size_t>(i)].point == e.point) {
              match = i;
              break;
            }
          }
          if (match < 0) {
            AppendEvent(out, first, name, cat, "i",
                        TicksToUs(e.ticks, base_ticks), -1.0, d.tid, e.arg,
                        "end");
            break;
          }
          const OpenSpan span = open[static_cast<size_t>(match)];
          open.erase(open.begin() + match);
          const double ts = TicksToUs(span.ticks, base_ticks);
          double dur = TicksToUs(e.ticks, base_ticks) - ts;
          if (dur < 0.0) dur = 0.0;
          AppendEvent(out, first, name, cat, "X", ts, dur, d.tid, span.arg,
                      nullptr);
          break;
        }
        case TracePhase::kInstant:
          AppendEvent(out, first, name, cat, "i",
                      TicksToUs(e.ticks, base_ticks), -1.0, d.tid, e.arg,
                      nullptr);
          break;
      }
    }
    // Spans still open at the end of the ring: cut off at the thread's last
    // timestamp (crash mid-span, or the span's end was not yet recorded).
    for (const OpenSpan& span : open) {
      const double ts = TicksToUs(span.ticks, base_ticks);
      double dur = TicksToUs(last_ticks, base_ticks) - ts;
      if (dur < 0.0) dur = 0.0;
      AppendEvent(out, first, TracePointName(span.point),
                  TracePointCategory(span.point), "X", ts, dur, d.tid,
                  span.arg, "begin");
    }
  }

  out += "\n  ]\n}\n";
  return out;
}

bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path,
                          const ChromeTraceOptions& options) {
  const std::string json = ExportChromeTrace(tracer, options);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted
/// names ("pipeline.shard0.applied") become underscores; the "streamq_"
/// prefix guarantees a legal first character.
std::string SanitizeMetricName(const std::string& name) {
  std::string out = "streamq_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Distinct registry names may collide after sanitization; suffix the later
/// ones so each exported family stays unique.
std::string UniqueFamily(std::set<std::string>& used,
                         const std::string& name) {
  std::string base = SanitizeMetricName(name);
  std::string candidate = base;
  int suffix = 2;
  while (!used.insert(candidate).second) {
    candidate = base + "_" + std::to_string(suffix++);
  }
  return candidate;
}

void AppendHelp(std::string& out, const std::string& family,
                const char* kind, const std::string& source_name) {
  out += "# HELP " + family + " streamq " + kind + " " + source_name + "\n";
}

}  // namespace

std::string ExportPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  std::set<std::string> used;

  registry.ForEachCounter([&](const std::string& name, const Counter& c) {
    const std::string family = UniqueFamily(used, name + "_total");
    AppendHelp(out, family, "counter", name);
    out += "# TYPE " + family + " counter\n";
    AppendF(out, "%s %" PRIu64 "\n", family.c_str(), c.value());
  });

  registry.ForEachGauge([&](const std::string& name, const Gauge& g) {
    const std::string family = UniqueFamily(used, name);
    AppendHelp(out, family, "gauge", name);
    out += "# TYPE " + family + " gauge\n";
    AppendF(out, "%s %" PRId64 "\n", family.c_str(), g.value());
  });

  registry.ForEachHistogram([&](const std::string& name,
                                const Histogram& h) {
    const std::string family = UniqueFamily(used, name);
    AppendHelp(out, family, "histogram", name);
    out += "# TYPE " + family + " histogram\n";
    // Pow2 buckets: bucket 0 holds the value 0 (le="0"); bucket i >= 1
    // holds [2^(i-1), 2^i), inclusive upper bound 2^i - 1. The saturating
    // last bucket folds into +Inf.
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
      cumulative += h.bucket(i);
      const uint64_t le = i == 0 ? 0 : (uint64_t{1} << i) - 1;
      AppendF(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              family.c_str(), le, cumulative);
    }
    AppendF(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", family.c_str(),
            h.count());
    AppendF(out, "%s_sum %" PRIu64 "\n", family.c_str(), h.sum());
    AppendF(out, "%s_count %" PRIu64 "\n", family.c_str(), h.count());

    // Companion summary: the library's own quantile estimate over the
    // bucketed distribution (Histogram::ValueAtQuantile).
    const std::string summary = UniqueFamily(used, name + "_quantiles");
    AppendHelp(out, summary, "summary", name);
    out += "# TYPE " + summary + " summary\n";
    static constexpr double kPhis[] = {0.5, 0.9, 0.99};
    for (double phi : kPhis) {
      AppendF(out, "%s{quantile=\"%g\"} %" PRIu64 "\n", summary.c_str(),
              phi, h.ValueAtQuantile(phi));
    }
    AppendF(out, "%s_sum %" PRIu64 "\n", summary.c_str(), h.sum());
    AppendF(out, "%s_count %" PRIu64 "\n", summary.c_str(), h.count());
  });

  return out;
}

bool WritePrometheusTextFile(const MetricsRegistry& registry,
                             const std::string& path) {
  const std::string text = ExportPrometheusText(registry);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace streamq::obs
