#include "obs/metrics.h"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace streamq::obs {

uint64_t TickClock::Now() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::Snapshot() const {
  SerdeWriter w;
  w.U64(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.Bytes(name);
    w.U64(c->value());
  }
  w.U64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.Bytes(name);
    w.I64(g->value());
  }
  w.U64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.Bytes(name);
    w.U64(h->count_);
    w.U64(h->sum_);
    w.U64(h->min_);
    w.U64(h->max_);
    for (uint64_t b : h->buckets_) w.U64(b);
  }
  return FrameSnapshot(SnapshotType::kMetricsRegistry, w.Take());
}

bool MetricsRegistry::Restore(const std::string& frame) {
  std::string payload;
  if (!UnframeSnapshot(frame, SnapshotType::kMetricsRegistry, &payload)) {
    return false;
  }
  SerdeReader r(payload);

  // Decode into fresh maps; *this is only replaced on a full, exact parse.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  uint64_t n = 0;
  if (!r.U64(&n) || n > r.Remaining()) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t v = 0;
    if (!r.Bytes(&name) || !r.U64(&v)) return false;
    auto c = std::make_unique<Counter>();
    c->Add(v);
    counters[std::move(name)] = std::move(c);
  }
  if (!r.U64(&n) || n > r.Remaining()) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    int64_t v = 0;
    if (!r.Bytes(&name) || !r.I64(&v)) return false;
    auto g = std::make_unique<Gauge>();
    g->Set(v);
    gauges[std::move(name)] = std::move(g);
  }
  if (!r.U64(&n) || n > r.Remaining()) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    auto h = std::make_unique<Histogram>();
    if (!r.Bytes(&name) || !r.U64(&h->count_) || !r.U64(&h->sum_) ||
        !r.U64(&h->min_) || !r.U64(&h->max_)) {
      return false;
    }
    for (uint64_t& b : h->buckets_) {
      if (!r.U64(&b)) return false;
    }
    histograms[std::move(name)] = std::move(h);
  }
  if (!r.Done()) return false;

  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  return true;
}

std::string MetricsRegistry::DebugString() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + std::to_string(h->count()) +
           " sum=" + std::to_string(h->sum()) +
           " min=" + std::to_string(h->min()) +
           " max=" + std::to_string(h->max()) + "\n";
  }
  return out;
}

}  // namespace streamq::obs
