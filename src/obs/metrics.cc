#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <x86intrin.h>
#endif

namespace streamq::obs {

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TickCalibration {
  bool use_tsc = false;
  double nanos_per_tick = 1.0;
};

#if defined(__x86_64__) || defined(_M_X64)
// CPUID leaf 0x80000007, EDX bit 8: invariant TSC — constant rate across
// P/C-states. Without it raw cycle counts are not a usable time base and
// the steady_clock fallback is used instead.
bool InvariantTscAvailable() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) == 0 ||
      eax < 0x80000007u) {
    return false;
  }
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 8)) != 0;
}
#endif

TickCalibration Calibrate() {
  TickCalibration cal;
#if defined(__x86_64__) || defined(_M_X64)
  if (InvariantTscAvailable()) {
    // Two-sample calibration over a ~2 ms busy-wait: long enough that the
    // ~100 ns clock-read jitter at the endpoints is < 0.01% of the window.
    const uint64_t ns0 = SteadyNanos();
    const uint64_t c0 = __rdtsc();
    while (SteadyNanos() - ns0 < 2'000'000) {
    }
    const uint64_t ns1 = SteadyNanos();
    const uint64_t c1 = __rdtsc();
    if (c1 > c0 && ns1 > ns0) {
      cal.use_tsc = true;
      cal.nanos_per_tick = static_cast<double>(ns1 - ns0) /
                           static_cast<double>(c1 - c0);
    }
  }
#endif
  return cal;
}

// Calibrated once at static-initialization time ("once at startup"); Now()
// then reads a plain const global with no guard on the hot path. Zero
// static init before dynamic init means any (unexpected) pre-main caller
// sees use_tsc=false and harmlessly falls back to steady_clock.
const TickCalibration g_tick_calibration = Calibrate();

}  // namespace

uint64_t TickClock::Now() {
#if defined(__x86_64__) || defined(_M_X64)
  if (g_tick_calibration.use_tsc) return __rdtsc();
#endif
  return SteadyNanos();
}

bool TickClock::UsingTsc() { return g_tick_calibration.use_tsc; }

double TickClock::NanosPerTick() {
  return g_tick_calibration.use_tsc ? g_tick_calibration.nanos_per_tick
                                    : 1.0;
}

uint64_t TickClock::ToNanos(uint64_t ticks) {
  if (!g_tick_calibration.use_tsc) return ticks;
  return static_cast<uint64_t>(static_cast<double>(ticks) *
                               g_tick_calibration.nanos_per_tick);
}

uint64_t Histogram::ValueAtQuantile(double phi) const {
  if (count_ == 0 || std::isnan(phi) || phi < 0.0 || phi > 1.0) return 0;
  if (phi <= 0.0) return min();
  if (phi >= 1.0) return max_;

  // Rank of the phi-quantile sample, 1-based: ceil(phi * count).
  uint64_t target = static_cast<uint64_t>(
      std::ceil(phi * static_cast<double>(count_)));
  target = std::clamp<uint64_t>(target, 1, count_);

  uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] < target) {
      cumulative += buckets_[i];
      continue;
    }
    // The target rank lands in bucket i: interpolate linearly across the
    // bucket's inclusive value range [lo, hi], then clamp to the exact
    // sample envelope so degenerate distributions (all samples equal)
    // come back exact.
    const uint64_t lo = BucketLowerBound(i);
    const uint64_t hi =
        i == 0 ? 0
               : (i == kBucketCount - 1 ? std::max(max_, lo)
                                        : lo * 2 - 1);
    const uint64_t pos = target - cumulative;  // 1..buckets_[i]
    uint64_t est =
        lo + static_cast<uint64_t>(static_cast<double>(hi - lo) *
                                   (static_cast<double>(pos) /
                                    static_cast<double>(buckets_[i])));
    est = std::clamp(est, min(), max_);
    return est;
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::Snapshot() const {
  SerdeWriter w;
  w.U64(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.Bytes(name);
    w.U64(c->value());
  }
  w.U64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.Bytes(name);
    w.I64(g->value());
  }
  w.U64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.Bytes(name);
    w.U64(h->count_);
    w.U64(h->sum_);
    w.U64(h->min_);
    w.U64(h->max_);
    for (uint64_t b : h->buckets_) w.U64(b);
  }
  return FrameSnapshot(SnapshotType::kMetricsRegistry, w.Take());
}

bool MetricsRegistry::Restore(const std::string& frame) {
  std::string payload;
  if (!UnframeSnapshot(frame, SnapshotType::kMetricsRegistry, &payload)) {
    return false;
  }
  SerdeReader r(payload);

  // Decode into fresh maps; *this is only replaced on a full, exact parse.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  uint64_t n = 0;
  if (!r.U64(&n) || n > r.Remaining()) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t v = 0;
    if (!r.Bytes(&name) || !r.U64(&v)) return false;
    auto c = std::make_unique<Counter>();
    c->Add(v);
    counters[std::move(name)] = std::move(c);
  }
  if (!r.U64(&n) || n > r.Remaining()) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    int64_t v = 0;
    if (!r.Bytes(&name) || !r.I64(&v)) return false;
    auto g = std::make_unique<Gauge>();
    g->Set(v);
    gauges[std::move(name)] = std::move(g);
  }
  if (!r.U64(&n) || n > r.Remaining()) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    auto h = std::make_unique<Histogram>();
    if (!r.Bytes(&name) || !r.U64(&h->count_) || !r.U64(&h->sum_) ||
        !r.U64(&h->min_) || !r.U64(&h->max_)) {
      return false;
    }
    for (uint64_t& b : h->buckets_) {
      if (!r.U64(&b)) return false;
    }
    histograms[std::move(name)] = std::move(h);
  }
  if (!r.Done()) return false;

  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  return true;
}

std::string MetricsRegistry::DebugString() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + std::to_string(h->count()) +
           " sum=" + std::to_string(h->sum()) +
           " min=" + std::to_string(h->min()) +
           " max=" + std::to_string(h->max()) + "\n";
  }
  return out;
}

}  // namespace streamq::obs
