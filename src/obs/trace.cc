#include "obs/trace.h"

#include <algorithm>

#include "obs/trace_export.h"

namespace streamq::obs {

namespace trace_internal {
std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

const char* TracePointName(TracePoint p) {
  switch (p) {
    case TracePoint::kPush: return "push";
    case TracePoint::kPushBackoff: return "push_backoff";
    case TracePoint::kRingFull: return "ring_full";
    case TracePoint::kStallWatchdog: return "stall_watchdog";
    case TracePoint::kWorkerBatch: return "worker_batch";
    case TracePoint::kSketchUpdate: return "sketch_update";
    case TracePoint::kSketchCompaction: return "sketch_compaction";
    case TracePoint::kWalAppend: return "wal_append";
    case TracePoint::kWalSync: return "wal_sync";
    case TracePoint::kWalRoll: return "wal_roll";
    case TracePoint::kWalTruncate: return "wal_truncate";
    case TracePoint::kWalDead: return "wal_dead";
    case TracePoint::kCheckpointWrite: return "checkpoint_write";
    case TracePoint::kCheckpointPrune: return "checkpoint_prune";
    case TracePoint::kRecoveryReplay: return "recovery_replay";
    case TracePoint::kViewPublish: return "view_publish";
    case TracePoint::kViewFlip: return "view_flip";
    case TracePoint::kQuery: return "query";
    case TracePoint::kChannelSend: return "channel_send";
    case TracePoint::kChannelRecv: return "channel_recv";
    case TracePoint::kCrashDump: return "crash_dump";
    case TracePoint::kClusterShip: return "cluster_ship";
    case TracePoint::kClusterMerge: return "cluster_merge";
    case TracePoint::kClusterProbe: return "cluster_probe";
    case TracePoint::kClusterRecover: return "cluster_recover";
  }
  return "unknown";
}

const char* TracePointCategory(TracePoint p) {
  switch (p) {
    case TracePoint::kPush:
    case TracePoint::kPushBackoff:
    case TracePoint::kRingFull:
    case TracePoint::kStallWatchdog:
    case TracePoint::kWorkerBatch:
      return "ingest";
    case TracePoint::kSketchUpdate:
    case TracePoint::kSketchCompaction:
      return "sketch";
    case TracePoint::kWalAppend:
    case TracePoint::kWalSync:
    case TracePoint::kWalRoll:
    case TracePoint::kWalTruncate:
    case TracePoint::kWalDead:
      return "wal";
    case TracePoint::kCheckpointWrite:
    case TracePoint::kCheckpointPrune:
    case TracePoint::kRecoveryReplay:
      return "ckpt";
    case TracePoint::kViewPublish:
    case TracePoint::kViewFlip:
    case TracePoint::kQuery:
      return "view";
    case TracePoint::kChannelSend:
    case TracePoint::kChannelRecv:
      return "monitor";
    case TracePoint::kCrashDump:
      return "obs";
    case TracePoint::kClusterShip:
    case TracePoint::kClusterMerge:
    case TracePoint::kClusterProbe:
    case TracePoint::kClusterRecover:
      return "cluster";
  }
  return "obs";
}

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(size_t capacity_events)
    : slots_(RoundUpPow2(capacity_events)),
      mask_(slots_.size() - 1) {}

TraceRing::SnapshotResult TraceRing::Snapshot() const {
  SnapshotResult out;
  const uint64_t h1 = head_.load(std::memory_order_acquire);
  const uint64_t cap = capacity();
  const uint64_t lo = h1 > cap ? h1 - cap : 0;
  out.recorded = h1;
  out.overwritten = lo;

  struct Raw {
    uint64_t index;
    uint64_t ticks;
    uint64_t arg;
    uint32_t meta;
  };
  std::vector<Raw> raw;
  raw.reserve(static_cast<size_t>(h1 - lo));
  for (uint64_t i = lo; i < h1; ++i) {
    const Slot& s = slots_[static_cast<size_t>(i) & mask_];
    Raw r;
    r.index = i;
    r.ticks = s.ticks.load(std::memory_order_relaxed);
    r.arg = s.arg.load(std::memory_order_relaxed);
    r.meta = s.meta.load(std::memory_order_relaxed);
    raw.push_back(r);
  }

  // Seqlock validation: the writer begins rewriting the slot of index i
  // when it starts event i + cap, and every event < h2 has started (plus at
  // most one in flight at exactly h2). Keep only i with i + cap > h2.
  const uint64_t h2 = head_.load(std::memory_order_acquire);
  out.events.reserve(raw.size());
  for (const Raw& r : raw) {
    if (r.index + cap <= h2) {
      ++out.discarded;
      continue;
    }
    TraceEvent e;
    e.ticks = r.ticks;
    e.arg = r.arg;
    const uint32_t point_bits = r.meta & 0xffu;
    const uint32_t phase_bits = (r.meta >> 8) & 0xffu;
    e.point = point_bits <= static_cast<uint32_t>(TracePoint::kMaxValue)
                  ? static_cast<TracePoint>(point_bits)
                  : TracePoint::kPush;
    e.phase = phase_bits <= 2 ? static_cast<TracePhase>(phase_bits)
                              : TracePhase::kInstant;
    out.events.push_back(e);
  }
  return out;
}

Tracer::Tracer() = default;
Tracer::~Tracer() = default;

Tracer& Tracer::Global() {
  // Leaked on purpose: worker threads and static destructors may record
  // arbitrarily late, and the rings must outlive all of them.
  static Tracer* const g = new Tracer();
  return *g;
}

void Tracer::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  if (this == &Global()) {
    trace_internal::g_enabled.store(on, std::memory_order_relaxed);
  }
}

void Tracer::SetRingEvents(size_t events) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_events_ = RoundUpPow2(events);
}

size_t Tracer::ring_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_events_;
}

TraceRing* Tracer::AcquireThreadRing() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_.empty()) {
    TraceRing* ring = free_.back();
    free_.pop_back();
    // A reused ring drops the previous owner's (already-exported or stale)
    // history so the new thread's timeline starts clean.
    ring->Reset();
    return ring;
  }
  rings_.push_back(std::make_unique<TraceRing>(ring_events_));
  rings_.back()->set_tid(next_tid_++);
  return rings_.back().get();
}

void Tracer::ReleaseThreadRing(TraceRing* ring) {
  if (ring == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(ring);
}

void Tracer::VisitRings(
    const std::function<void(const TraceRing&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) fn(*ring);
}

uint64_t Tracer::TotalRecorded() const {
  uint64_t total = 0;
  VisitRings([&total](const TraceRing& r) { total += r.recorded(); });
  return total;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) ring->Reset();
  dumped_.store(false, std::memory_order_release);
}

size_t Tracer::RingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

void Tracer::SetCrashDumpPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_path_ = path;
  dumped_.store(false, std::memory_order_release);
}

std::string Tracer::crash_dump_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_path_;
}

bool Tracer::CrashDump(const char* reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dump_path_.empty()) return false;
    // Once-latch: the earliest trigger has the most history; later triggers
    // from the same dying pipeline must not overwrite it.
    if (dumped_.exchange(true, std::memory_order_acq_rel)) return false;
    path = dump_path_;
  }
  // Mark the dump itself in the timeline, then export outside the lock
  // (VisitRings takes it again). TraceRecord targets the global pool, so
  // only the global tracer stamps the instant.
  if (this == &Global() && enabled()) {
    TraceRecord(TracePoint::kCrashDump, TracePhase::kInstant, 0);
  }
  ChromeTraceOptions opts;
  opts.crash_reason = reason;
  return WriteChromeTraceFile(*this, path, opts);
}

namespace {

// Thread-exit hook: returns this thread's ring to the global pool.
struct ThreadRingHolder {
  TraceRing* ring = nullptr;
  ~ThreadRingHolder() {
    if (ring != nullptr) Tracer::Global().ReleaseThreadRing(ring);
  }
};
thread_local ThreadRingHolder t_ring;

}  // namespace

void TraceRecord(TracePoint point, TracePhase phase, uint64_t arg) {
  if (t_ring.ring == nullptr) {
    t_ring.ring = Tracer::Global().AcquireThreadRing();
  }
  t_ring.ring->Record(point, phase, arg);
}

}  // namespace streamq::obs
