// streamq_obs: flight-recorder tracing for the ingest data path.
//
// Where obs/metrics.h answers "how much" (counters, pow2 histograms), this
// layer answers "where and when": a fixed-capacity ring of timestamped,
// typed events per thread — span begin/end pairs and instants — recording
// the last few thousand things each thread did. When a writer goes dead,
// the stall watchdog fires, or recovery fails, the rings are frozen into a
// Chrome trace-event JSON file (see obs/trace_export.h), turning a counter
// bump into a replayable timeline.
//
// Design constraints (DESIGN.md section 12):
//
//  * Allocation-free, lock-free hot path. Recording is: one relaxed load of
//    the enabled flag, one TickClock read, three relaxed atomic stores into
//    a preallocated slot, one release store of the head counter. No CAS, no
//    fences beyond the release, no branches on ring occupancy — the ring
//    overwrites its oldest events (drop-oldest policy; a flight recorder
//    keeps the *latest* history, which is the part that explains a crash).
//  * Race-free snapshots without stopping writers. Every slot field is a
//    std::atomic written with relaxed stores; the head counter is published
//    with a release store and read by the exporter with acquire loads. The
//    exporter applies a seqlock-style discard rule (see TraceRing::Snapshot)
//    so a slot that may have been overwritten mid-read is dropped rather
//    than emitted torn. TSan runs clean over concurrent record + snapshot.
//  * Compiled out entirely under -DSTREAMQ_TRACE=OFF. The macros at the
//    bottom expand to ((void)0); no flag check, no clock read, nothing
//    remains at the instrumentation sites. The types stay compiled (same
//    contract as obs/metrics.h) so exporters and tests keep building.
//
// Rings are pooled: a thread's first record acquires a ring from
// Tracer::Global() and caches it in a thread_local; thread exit returns the
// ring to the pool for reuse, so hundreds of short-lived worker threads
// (the test suite) share a bounded set of rings instead of growing the
// process monotonically. Rings are never destroyed before process exit and
// the global tracer is intentionally leaked, so recording from late static
// destructors cannot touch freed memory.

#ifndef STREAMQ_OBS_TRACE_H_
#define STREAMQ_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

#ifndef STREAMQ_TRACE_ENABLED
#define STREAMQ_TRACE_ENABLED 1
#endif

namespace streamq::obs {

/// Every instrumented site in the pipeline. Names/categories for export come
/// from TracePointName()/TracePointCategory().
enum class TracePoint : uint8_t {
  kPush = 0,           ///< IngestPipeline::Push (arg: update value)
  kPushBackoff,        ///< ring-full backoff inside PushSlow (arg: shard)
  kRingFull,           ///< instant: TryPush refused, ring full (arg: shard)
  kStallWatchdog,      ///< instant: push stalled >100ms (arg: shard)
  kWorkerBatch,        ///< one worker drain+apply batch (arg: batch size)
  kSketchUpdate,       ///< instant: accepted Insert/Erase (arg: value)
  kSketchCompaction,   ///< compaction span / trigger instant (arg: size)
  kWalAppend,          ///< WalWriter::AppendBatch (arg: shard)
  kWalSync,            ///< WalWriter::Sync (arg: shard)
  kWalRoll,            ///< WalWriter::Roll (arg: shard)
  kWalTruncate,        ///< WAL segment pruning (arg: shard)
  kWalDead,            ///< instant: dead-writer freeze (arg: shard)
  kCheckpointWrite,    ///< checkpoint serialize+rename (arg: checkpoint id)
  kCheckpointPrune,    ///< covered-segment deletion (arg: segments removed)
  kRecoveryReplay,     ///< WAL tail replay at Create() (arg: shard)
  kViewPublish,        ///< merge shard snapshots + publish (arg: shards)
  kViewFlip,           ///< instant: QueryView atomic index flip (arg: epoch)
  kQuery,              ///< Query/QueryMany against the view (arg: phi ppm)
  kChannelSend,        ///< instant: monitor channel send (arg: bytes)
  kChannelRecv,        ///< instant: monitor channel delivery (arg: bytes)
  kCrashDump,          ///< instant: flight-recorder dump written
  kClusterShip,        ///< node snapshot clone + frame + send (arg: epoch)
  kClusterMerge,       ///< coordinator cross-node merge for a query (arg: nodes)
  kClusterProbe,       ///< instant: coordinator staleness probe (arg: node)
  kClusterRecover,     ///< node restart recovery + resync (arg: node)
  kMaxValue = kClusterRecover,
};

enum class TracePhase : uint8_t {
  kBegin = 0,
  kEnd = 1,
  kInstant = 2,
};

/// Short stable name for export ("push", "wal_sync", ...).
const char* TracePointName(TracePoint p);
/// Chrome trace category ("ingest", "wal", "ckpt", "sketch", ...).
const char* TracePointCategory(TracePoint p);

/// One decoded event, as returned by TraceRing::Snapshot.
struct TraceEvent {
  uint64_t ticks = 0;  ///< TickClock::Now() at record time
  uint64_t arg = 0;    ///< site-specific payload (see TracePoint comments)
  TracePoint point = TracePoint::kPush;
  TracePhase phase = TracePhase::kInstant;
};

/// Fixed-capacity single-writer ring of trace events. One thread records
/// (lock-free, overwriting the oldest slot when full); any thread may
/// snapshot concurrently and gets only slots that were provably not being
/// rewritten during the read.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 8 events.
  explicit TraceRing(size_t capacity_events);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one event. Writer-side only; callable from exactly one thread
  /// at a time (the owning thread).
  void Record(TracePoint point, TracePhase phase, uint64_t arg) {
    const uint64_t ticks = TickClock::Now();
    const uint64_t i = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[static_cast<size_t>(i) & mask_];
    s.ticks.store(ticks, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.meta.store(PackMeta(point, phase), std::memory_order_relaxed);
    // Publish: a reader that observes head > i also observes slot i's
    // fields (acquire on the reader side pairs with this release).
    head_.store(i + 1, std::memory_order_release);
  }

  size_t capacity() const { return mask_ + 1; }

  /// Total events ever recorded (monotonic; >= capacity means wrapped).
  uint64_t recorded() const { return head_.load(std::memory_order_acquire); }

  /// Stable per-thread id for export (assigned by the owning Tracer).
  int tid() const { return tid_.load(std::memory_order_relaxed); }
  void set_tid(int tid) { tid_.store(tid, std::memory_order_relaxed); }

  /// Forgets all recorded events. Only safe when the writer thread is
  /// quiescent (pool reuse, tests, bench lane resets).
  void Reset() { head_.store(0, std::memory_order_relaxed); }

  struct SnapshotResult {
    std::vector<TraceEvent> events;  ///< oldest-first, consistent slots only
    uint64_t recorded = 0;           ///< head at snapshot start
    uint64_t overwritten = 0;        ///< events lost to wrap before snapshot
    uint64_t discarded = 0;          ///< slots dropped by the seqlock rule
  };

  /// Copies out the ring without stopping the writer. Reads head (h1,
  /// acquire), copies candidate slots, re-reads head (h2, acquire), then
  /// keeps only indices i with i + capacity > h2: the writer starts
  /// rewriting slot (i % capacity) when it begins event i + capacity, and
  /// events < h2 have begun, so anything older may be torn and is dropped
  /// (counted in `discarded`) instead of emitted.
  SnapshotResult Snapshot() const;

 private:
  struct Slot {
    std::atomic<uint64_t> ticks{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint32_t> meta{0};
  };

  static uint32_t PackMeta(TracePoint point, TracePhase phase) {
    return static_cast<uint32_t>(point) |
           (static_cast<uint32_t>(phase) << 8);
  }

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> head_{0};
  std::atomic<int> tid_{0};
};

/// Owns the ring pool, the enabled flag, and the crash-dump latch. One
/// leaked Global() instance serves the whole process; tests may build their
/// own instances and record into explicitly acquired rings.
class Tracer {
 public:
  static constexpr size_t kDefaultRingEvents = 8192;

  Tracer();
  ~Tracer();

  /// The process-wide tracer used by the STREAMQ_TRACE_* macros.
  /// Intentionally leaked: safe to record during static destruction.
  static Tracer& Global();

  /// Master switch. Off (the default) makes every macro site a single
  /// relaxed load + branch; nothing is recorded.
  void SetEnabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Capacity (events) for rings acquired after this call; existing rings
  /// keep their size. Clamped to a power of two >= 8.
  void SetRingEvents(size_t events);
  size_t ring_events() const;

  /// Gets this thread a ring: reuses a pooled one when available, else
  /// allocates. The caller (trace.cc's thread_local holder) must return it
  /// with ReleaseThreadRing on thread exit.
  TraceRing* AcquireThreadRing();
  void ReleaseThreadRing(TraceRing* ring);

  /// Visits every ring ever handed out (including pooled ones, whose events
  /// from finished threads are still part of the flight history until
  /// reuse). Snapshot() on each visited ring is race-free.
  void VisitRings(const std::function<void(const TraceRing&)>& fn) const;

  /// Sum of recorded() over all rings.
  uint64_t TotalRecorded() const;

  /// Resets every ring and re-arms the crash-dump latch. Only safe when no
  /// thread is recording (bench lane boundaries, test setup).
  void Clear();

  size_t RingCount() const;

  /// Arms automatic flight-recorder dumps: the first CrashDump() after this
  /// call writes Chrome trace JSON to `path`. Empty path disarms.
  void SetCrashDumpPath(const std::string& path);
  std::string crash_dump_path() const;

  /// Dumps all rings to the armed path, once: the first caller after
  /// SetCrashDumpPath wins, later calls are no-ops (a dying pipeline hits
  /// several triggers; the earliest has the most history). Returns true if
  /// this call wrote the file. `reason` lands in the JSON's otherData.
  bool CrashDump(const char* reason);

  /// Re-opens the once-latch without changing the path (tests).
  void RearmCrashDump() { dumped_.store(false, std::memory_order_release); }

  /// True once a CrashDump() fired since the last arm/Clear.
  bool crash_dumped() const {
    return dumped_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_;  // all ever created
  std::vector<TraceRing*> free_;                   // released, reusable
  size_t ring_events_ = kDefaultRingEvents;
  int next_tid_ = 1;
  std::string dump_path_;
  std::atomic<bool> enabled_{false};
  std::atomic<bool> dumped_{false};
};

namespace trace_internal {
/// Mirror of Tracer::Global().enabled() readable without touching the
/// (function-local-static) tracer: the macro fast path is one relaxed load.
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

/// Fast-path gate used by the macros.
inline bool TraceEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Records into this thread's ring of the global tracer (acquiring one on
/// first use). Out of line: the macro only pays for it when enabled.
void TraceRecord(TracePoint point, TracePhase phase, uint64_t arg);

/// RAII span: begin on construction, end on destruction. Latches the
/// enabled flag at construction so a mid-span toggle cannot produce a
/// dangling begin/end.
class TraceSpan {
 public:
  TraceSpan(TracePoint point, uint64_t arg)
      : point_(point), armed_(TraceEnabled()) {
    if (armed_) TraceRecord(point_, TracePhase::kBegin, arg);
  }
  ~TraceSpan() {
    if (armed_) TraceRecord(point_, TracePhase::kEnd, 0);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TracePoint point_;
  bool armed_;
};

}  // namespace streamq::obs

#if STREAMQ_TRACE_ENABLED

#define STREAMQ_TRACE_CAT2(a, b) a##b
#define STREAMQ_TRACE_CAT(a, b) STREAMQ_TRACE_CAT2(a, b)

/// Traces the rest of the enclosing scope as a span of `point`.
#define STREAMQ_TRACE_SPAN(point, arg)                  \
  ::streamq::obs::TraceSpan STREAMQ_TRACE_CAT(          \
      streamq_trace_span_, __COUNTER__)(                \
      (point), static_cast<uint64_t>(arg))

/// Records a zero-duration instant event.
#define STREAMQ_TRACE_INSTANT(point, arg)                                 \
  do {                                                                    \
    if (::streamq::obs::TraceEnabled()) {                                 \
      ::streamq::obs::TraceRecord((point),                                \
                                  ::streamq::obs::TracePhase::kInstant,   \
                                  static_cast<uint64_t>(arg));            \
    }                                                                     \
  } while (0)

/// Executes `stmt` only in a trace-enabled build.
#define STREAMQ_IF_TRACE(stmt) stmt

/// Fires the global crash-dump latch (no-op unless armed; see
/// Tracer::SetCrashDumpPath).
#define STREAMQ_TRACE_CRASH_DUMP(reason) \
  ((void)::streamq::obs::Tracer::Global().CrashDump(reason))

#else  // !STREAMQ_TRACE_ENABLED

#define STREAMQ_TRACE_SPAN(point, arg) ((void)0)
#define STREAMQ_TRACE_INSTANT(point, arg) ((void)0)
#define STREAMQ_IF_TRACE(stmt)
#define STREAMQ_TRACE_CRASH_DUMP(reason) ((void)0)

#endif  // STREAMQ_TRACE_ENABLED

#endif  // STREAMQ_OBS_TRACE_H_
