#include "distributed/monitor.h"

#include <cassert>

namespace streamq {

DistributedQuantileMonitor::DistributedQuantileMonitor(
    int num_sites, double eps, double theta, const MonitorOptions& options)
    : eps_(eps),
      theta_(theta > 0 ? theta : eps / 2.0),
      options_(options),
      coordinator_(num_sites, eps / 2.0),
      data_channel_(options.data_faults, options.seed * 2 + 1),
      ack_channel_(options.ack_faults, options.seed * 2 + 2) {
  assert(num_sites > 0);
  sites_.reserve(num_sites);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<MonitorSite>(i, eps_ / 2.0, theta_,
                                                   options.retry));
  }
}

void DistributedQuantileMonitor::Observe(int site, uint64_t value) {
  assert(site >= 0 && site < num_sites());
  ++now_;
  sites_[site]->Observe(value, now_, data_channel_);
  Pump();
}

void DistributedQuantileMonitor::Pump() {
  for (std::string& msg : data_channel_.Poll(now_)) {
    coordinator_.HandleMessage(msg, now_, ack_channel_);
  }
  for (std::string& ack : ack_channel_.Poll(now_)) {
    int site = 0;
    uint64_t seq = 0;
    // A corrupted ack fails frame validation and is simply dropped; the
    // affected site keeps retrying.
    if (!MonitorCoordinator::ParseAck(ack, &site, &seq)) continue;
    if (site < 0 || site >= num_sites()) continue;
    sites_[site]->HandleAck(seq);
  }
  for (auto& s : sites_) s->Tick(now_, data_channel_);
}

uint64_t DistributedQuantileMonitor::Query(double phi) {
  return coordinator_.Query(phi);
}

int64_t DistributedQuantileMonitor::EstimateRank(uint64_t value) {
  return coordinator_.EstimateRank(value);
}

uint64_t DistributedQuantileMonitor::GlobalCount() const {
  uint64_t total = 0;
  for (const auto& s : sites_) total += s->count();
  return total;
}

uint64_t DistributedQuantileMonitor::StalenessBound() const {
  uint64_t total = 0;
  for (int i = 0; i < num_sites(); ++i) {
    const uint64_t observed = sites_[i]->count();
    const uint64_t known = coordinator_.KnownCount(i);
    if (observed > known) total += observed - known;
  }
  return total;
}

bool DistributedQuantileMonitor::Quiesce(uint64_t max_ticks) {
  const uint64_t deadline = now_ + max_ticks;
  for (auto& s : sites_) s->ForceShip(now_, data_channel_);
  while (now_ < deadline) {
    ++now_;
    Pump();
    bool settled = data_channel_.Idle() && ack_channel_.Idle();
    for (const auto& s : sites_) settled = settled && !s->HasUnacked();
    if (settled && StalenessBound() == 0) return true;
  }
  return false;
}

std::string DistributedQuantileMonitor::CheckpointSite(int site) const {
  assert(site >= 0 && site < num_sites());
  return sites_[site]->Checkpoint();
}

void DistributedQuantileMonitor::CrashSite(int site) {
  assert(site >= 0 && site < num_sites());
  sites_[site] = std::make_unique<MonitorSite>(site, eps_ / 2.0, theta_,
                                               options_.retry);
}

bool DistributedQuantileMonitor::RestartSite(int site,
                                             const std::string& checkpoint) {
  assert(site >= 0 && site < num_sites());
  auto restored = MonitorSite::FromCheckpoint(checkpoint, options_.retry);
  if (restored == nullptr || restored->id() != site) return false;
  sites_[site] = std::move(restored);
  return true;
}

uint64_t DistributedQuantileMonitor::SiteCount(int site) const {
  assert(site >= 0 && site < num_sites());
  return sites_[site]->count();
}

size_t DistributedQuantileMonitor::CommunicationBytes() const {
  return data_channel_.stats().bytes_offered;
}

size_t DistributedQuantileMonitor::AckBytes() const {
  return ack_channel_.stats().bytes_offered;
}

size_t DistributedQuantileMonitor::ShipmentCount() const {
  size_t total = 0;
  for (const auto& s : sites_) total += s->shipments() + s->retransmits();
  return total;
}

size_t DistributedQuantileMonitor::RetransmitCount() const {
  size_t total = 0;
  for (const auto& s : sites_) total += s->retransmits();
  return total;
}

size_t DistributedQuantileMonitor::CoordinatorMemoryBytes() const {
  return coordinator_.MemoryBytes();
}

namespace {

void PublishChannelStats(obs::MetricsRegistry& registry,
                         const std::string& prefix, const ChannelStats& s) {
  const auto set = [&](const char* name, size_t v) {
    auto& c = registry.GetCounter(prefix + name);
    c.Reset();
    c.Add(static_cast<uint64_t>(v));
  };
  set(".sent", s.sent);
  set(".delivered", s.delivered);
  set(".dropped", s.dropped);
  set(".duplicated", s.duplicated);
  set(".reordered", s.reordered);
  set(".corrupted", s.corrupted);
  set(".bytes_offered", s.bytes_offered);
  set(".bytes_delivered", s.bytes_delivered);
}

}  // namespace

void DistributedQuantileMonitor::PublishMetrics(obs::MetricsRegistry& registry,
                                                const std::string& prefix) const {
  const auto set_counter = [&](const char* name, uint64_t v) {
    auto& c = registry.GetCounter(prefix + name);
    c.Reset();
    c.Add(v);
  };
  set_counter(".shipments", ShipmentCount());
  set_counter(".retransmits", RetransmitCount());
  set_counter(".global_count", GlobalCount());
  registry.GetGauge(prefix + ".staleness_bound")
      .Set(static_cast<int64_t>(StalenessBound()));
  registry.GetGauge(prefix + ".coordinator_memory_bytes")
      .Set(static_cast<int64_t>(CoordinatorMemoryBytes()));

  PublishChannelStats(registry, prefix + ".data", data_channel_.stats());
  PublishChannelStats(registry, prefix + ".ack", ack_channel_.stats());

  const MonitorCoordinator::Stats& cs = coordinator_.stats();
  set_counter(".coordinator.accepted", cs.accepted);
  set_counter(".coordinator.rejected_corrupt", cs.rejected_corrupt);
  set_counter(".coordinator.rejected_stale", cs.rejected_stale);
  set_counter(".coordinator.rejected_malformed", cs.rejected_malformed);
  set_counter(".coordinator.acks_sent", cs.acks_sent);
}

}  // namespace streamq
