#include "distributed/monitor.h"

#include <cassert>

#include "util/serde.h"

namespace streamq {

DistributedQuantileMonitor::DistributedQuantileMonitor(int num_sites,
                                                       double eps,
                                                       double theta)
    : eps_(eps), theta_(theta > 0 ? theta : eps / 2.0) {
  assert(num_sites > 0);
  sites_.reserve(num_sites);
  coordinator_view_.resize(num_sites);
  for (int i = 0; i < num_sites; ++i) {
    sites_.emplace_back(eps_ / 2.0);
  }
}

void DistributedQuantileMonitor::Observe(int site, uint64_t value) {
  assert(site >= 0 && site < num_sites());
  Site& s = sites_[site];
  s.summary.Insert(value);
  ++s.count;
  ++global_count_;
  // Ship when the local count grew by a (1 + theta) factor (every site's
  // first element ships immediately).
  const double trigger =
      (1.0 + theta_) * static_cast<double>(s.last_shipped_count);
  if (s.last_shipped_count == 0 || static_cast<double>(s.count) >= trigger) {
    Ship(site);
  }
}

void DistributedQuantileMonitor::Ship(int site) {
  Site& s = sites_[site];
  // Serialise the real wire payload so communication cost is honest.
  SerdeWriter w;
  s.summary.Flush();
  s.summary.Serialize(w);
  communication_bytes_ += w.buffer().size();
  ++shipments_;
  // The coordinator decodes its fresh copy of the site's summary.
  auto received = std::make_unique<GkArrayImpl<uint64_t>>(eps_ / 2.0);
  SerdeReader r(w.buffer());
  const bool ok = received->Deserialize(r) && r.Done();
  assert(ok);
  (void)ok;
  coordinator_view_[site] = std::move(received);
  s.last_shipped_count = s.count;
}

std::vector<WeightedElement<uint64_t>>
DistributedQuantileMonitor::CoordinatorSample() const {
  std::vector<WeightedElement<uint64_t>> sample;
  for (const auto& summary : coordinator_view_) {
    if (summary == nullptr) continue;
    summary->ForEachTuple([&](uint64_t v, int64_t g, int64_t /*delta*/) {
      sample.push_back({v, g});
    });
  }
  return sample;
}

uint64_t DistributedQuantileMonitor::Query(double phi) {
  WeightedSampleView<uint64_t> view(CoordinatorSample());
  if (view.Empty()) return 0;
  // Target relative to what the coordinator knows about; the unreported
  // remainder is below theta * n by construction.
  return view.Quantile(phi * static_cast<double>(view.TotalWeight()));
}

int64_t DistributedQuantileMonitor::EstimateRank(uint64_t value) {
  return WeightedSampleView<uint64_t>(CoordinatorSample()).EstimateRank(value);
}

size_t DistributedQuantileMonitor::CoordinatorMemoryBytes() const {
  size_t total = 0;
  for (const auto& summary : coordinator_view_) {
    if (summary != nullptr) total += summary->MemoryBytes();
  }
  return total;
}

}  // namespace streamq
