#include "distributed/channel.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace streamq {

FaultyChannel::FaultyChannel(const FaultSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {}

// Min-heap on (deliver_at, order): the std::*_heap family builds a max-heap,
// so "arrives later" must sort as lower priority.
bool FaultyChannel::ArrivesLater(const InFlight& a, const InFlight& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
  return a.order > b.order;
}

void FaultyChannel::Send(uint64_t now, std::string bytes) {
  ++stats_.sent;
  stats_.bytes_offered += bytes.size();
  STREAMQ_TRACE_INSTANT(obs::TracePoint::kChannelSend, bytes.size());
  if (spec_.Perfect()) {
    // Fast path: no RNG consumption, instantaneous delivery.
    in_flight_.push_back(InFlight{now, order_counter_++, std::move(bytes)});
    std::push_heap(in_flight_.begin(), in_flight_.end(), ArrivesLater);
    return;
  }
  const int copies = rng_.NextDouble() < spec_.duplicate ? 2 : 1;
  if (copies == 2) ++stats_.duplicated;
  for (int c = 0; c < copies; ++c) {
    if (rng_.NextDouble() < spec_.drop) {
      ++stats_.dropped;
      continue;
    }
    Enqueue(now, bytes);
  }
}

void FaultyChannel::Enqueue(uint64_t now, const std::string& bytes) {
  uint64_t delay = spec_.min_delay;
  if (spec_.max_delay > spec_.min_delay) {
    delay += rng_.Below(spec_.max_delay - spec_.min_delay + 1);
  }
  if (spec_.reorder > 0.0 && rng_.NextDouble() < spec_.reorder) {
    delay += 1 + rng_.Below(std::max<uint64_t>(spec_.reorder_extra, 1));
    ++stats_.reordered;
  }
  std::string copy = bytes;
  if (spec_.corrupt > 0.0 && !copy.empty() &&
      rng_.NextDouble() < spec_.corrupt) {
    const size_t pos = static_cast<size_t>(rng_.Below(copy.size()));
    // XOR with a non-zero mask: the byte always actually changes.
    copy[pos] = static_cast<char>(
        copy[pos] ^ static_cast<char>(1 + rng_.Below(255)));
    ++stats_.corrupted;
  }
  in_flight_.push_back(
      InFlight{now + delay, order_counter_++, std::move(copy)});
  std::push_heap(in_flight_.begin(), in_flight_.end(), ArrivesLater);
}

std::vector<std::string> FaultyChannel::Poll(uint64_t now) {
  std::vector<std::string> out;
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
    std::pop_heap(in_flight_.begin(), in_flight_.end(), ArrivesLater);
    InFlight msg = std::move(in_flight_.back());
    in_flight_.pop_back();
    ++stats_.delivered;
    stats_.bytes_delivered += msg.bytes.size();
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kChannelRecv, msg.bytes.size());
    out.push_back(std::move(msg.bytes));
  }
  return out;
}

}  // namespace streamq
