// Continuous distributed quantile monitoring (extension; the paper's
// related work cites Cormode et al. SIGMOD'05 and Yi & Zhang,
// Algorithmica'13).
//
// k sites each observe a local stream; a coordinator must be able to answer
// eps-approximate quantiles over the union at any time, while keeping the
// site -> coordinator communication far below shipping the raw streams.
//
// Protocol (the classic count-triggered synchronisation): every site keeps
// a local GKArray summary with error eps/2 and re-ships it to the
// coordinator whenever its local count has grown by a factor (1 + theta)
// since the last shipment. Elements a site has not yet reported number at
// most theta * n_i, so the coordinator's merged answer carries at most
// (eps/2 + theta) * n rank error; theta = eps/2 restores the eps guarantee.
// Shipments are real serialised bytes (util/serde.h), so the communication
// accounting is honest: O((k/eps) log(eps n) log n) bytes total versus
// 4n bytes for raw forwarding.

#ifndef STREAMQ_DISTRIBUTED_MONITOR_H_
#define STREAMQ_DISTRIBUTED_MONITOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "quantile/gk_array.h"
#include "quantile/weighted_sample.h"

namespace streamq {

class DistributedQuantileMonitor {
 public:
  /// num_sites remote observers; eps: total rank-error target; theta:
  /// staleness factor (defaults to eps/2, the analysis-backed choice).
  DistributedQuantileMonitor(int num_sites, double eps, double theta = -1.0);

  /// One element observed at `site` (0-based). May trigger a shipment.
  void Observe(int site, uint64_t value);

  /// Coordinator-side phi-quantile over everything observed so far.
  uint64_t Query(double phi);

  /// Coordinator-side rank estimate.
  int64_t EstimateRank(uint64_t value);

  /// Total elements observed across all sites.
  uint64_t GlobalCount() const { return global_count_; }

  /// Total site -> coordinator bytes shipped so far (serialised summaries).
  size_t CommunicationBytes() const { return communication_bytes_; }

  /// Number of summary shipments so far.
  size_t ShipmentCount() const { return shipments_; }

  /// Accounting bytes of coordinator state (latest summary per site).
  size_t CoordinatorMemoryBytes() const;

  int num_sites() const { return static_cast<int>(sites_.size()); }

 private:
  struct Site {
    explicit Site(double eps) : summary(eps) {}
    GkArrayImpl<uint64_t> summary;   // local, full-history
    uint64_t count = 0;
    uint64_t last_shipped_count = 0;
  };

  void Ship(int site);
  std::vector<WeightedElement<uint64_t>> CoordinatorSample() const;

  double eps_;
  double theta_;
  uint64_t global_count_ = 0;
  size_t communication_bytes_ = 0;
  size_t shipments_ = 0;
  std::vector<Site> sites_;
  // Coordinator's view: the latest shipped summary per site.
  std::vector<std::unique_ptr<GkArrayImpl<uint64_t>>> coordinator_view_;
};

}  // namespace streamq

#endif  // STREAMQ_DISTRIBUTED_MONITOR_H_
