// Continuous distributed quantile monitoring (extension; the paper's
// related work cites Cormode et al. SIGMOD'05 and Yi & Zhang,
// Algorithmica'13).
//
// k sites each observe a local stream; a coordinator must be able to answer
// eps-approximate quantiles over the union at any time, while keeping the
// site -> coordinator communication far below shipping the raw streams.
//
// Protocol (count-triggered synchronisation, hardened for a lossy
// transport): every site keeps a local GKArray summary with error eps/2 and
// ships it — as real serialized, CRC32C-framed bytes — whenever its local
// count has grown by a factor (1 + theta) since the last shipment
// (theta = eps/2 restores the eps guarantee over a perfect channel).
// Shipments and acknowledgments travel through FaultyChannel (see
// channel.h), which can drop, duplicate, reorder, delay, and corrupt
// messages under a deterministic seed and a virtual clock (one tick per
// observed element). Sites retry unacked shipments with capped exponential
// backoff; the coordinator validates every frame, dedups by per-site
// sequence number, and acknowledges its high-water mark. Degradation is
// exposed honestly: StalenessBound() reports the number of observed
// elements not yet reflected in any accepted shipment — the worst-case
// extra rank error on top of eps * n.

#ifndef STREAMQ_DISTRIBUTED_MONITOR_H_
#define STREAMQ_DISTRIBUTED_MONITOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distributed/channel.h"
#include "distributed/coordinator.h"
#include "distributed/site.h"
#include "obs/metrics.h"

namespace streamq {

/// Transport and retry configuration of a monitor. Defaults give a
/// perfect, instantaneous channel — the behaviour of the classic protocol.
struct MonitorOptions {
  FaultSpec data_faults;  ///< site -> coordinator direction
  FaultSpec ack_faults;   ///< coordinator -> site direction
  RetryPolicy retry;
  uint64_t seed = 1;  ///< drives all fault-injection randomness
};

class DistributedQuantileMonitor {
 public:
  /// num_sites remote observers; eps: total rank-error target; theta:
  /// staleness factor (defaults to eps/2, the analysis-backed choice).
  DistributedQuantileMonitor(int num_sites, double eps, double theta = -1.0,
                             const MonitorOptions& options = {});

  /// One element observed at `site` (0-based). Advances the virtual clock
  /// one tick: may trigger a shipment, deliver due messages, retransmit.
  void Observe(int site, uint64_t value);

  /// Coordinator-side phi-quantile over everything the coordinator has
  /// accepted so far.
  uint64_t Query(double phi);

  /// Coordinator-side rank estimate.
  int64_t EstimateRank(uint64_t value);

  /// Total elements currently observed across all sites (sum of live site
  /// counts; a crashed site's lost elements leave this sum).
  uint64_t GlobalCount() const;

  /// Worst-case extra rank error of coordinator answers beyond eps * n:
  /// the number of observed elements not yet reflected in any accepted
  /// shipment. 0 once quiesced over any channel that eventually delivers.
  uint64_t StalenessBound() const;

  /// Runs the protocol with no new observations until every site is fully
  /// acked and both channels are drained (or `max_ticks` elapse — only a
  /// channel that drops everything forever gets that far). Returns true if
  /// fully quiesced.
  bool Quiesce(uint64_t max_ticks = 200'000);

  // --- crash / recovery -----------------------------------------------

  /// Serialized, framed checkpoint of one site's full state.
  std::string CheckpointSite(int site) const;

  /// Simulates a site crash: all local state (summary, counts, retry
  /// bookkeeping) is lost. The coordinator keeps the site's last accepted
  /// summary. Elements observed since the last checkpoint are gone unless
  /// the caller replays them after RestartSite().
  void CrashSite(int site);

  /// Restores a site from a CheckpointSite() snapshot; the revived site
  /// re-ships its state and resynchronises its sequence horizon with the
  /// coordinator automatically. Returns false on corrupt input (the
  /// crashed-empty site stays in place).
  bool RestartSite(int site, const std::string& checkpoint);

  /// Elements currently observed at `site`.
  uint64_t SiteCount(int site) const;

  // --- accounting ------------------------------------------------------

  /// Total site -> coordinator bytes offered to the wire (serialized
  /// framed summaries, retransmissions included).
  size_t CommunicationBytes() const;

  /// Coordinator -> site ack bytes offered to the wire.
  size_t AckBytes() const;

  /// Number of summary shipments offered so far (retransmissions included).
  size_t ShipmentCount() const;

  /// Retransmissions alone.
  size_t RetransmitCount() const;

  /// Accounting bytes of coordinator state (latest summary per site).
  size_t CoordinatorMemoryBytes() const;

  int num_sites() const { return static_cast<int>(sites_.size()); }
  uint64_t now() const { return now_; }

  /// Publishes a transport/protocol snapshot into `registry` under
  /// "<prefix>.*": shipments, retransmits, staleness, global count, per-
  /// direction channel stats (data.*/ack.*) and coordinator accept/reject
  /// counters. Cold path; safe to call at any point of the run.
  void PublishMetrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

  const MonitorCoordinator& coordinator() const { return coordinator_; }
  const ChannelStats& data_channel_stats() const {
    return data_channel_.stats();
  }
  const ChannelStats& ack_channel_stats() const {
    return ack_channel_.stats();
  }

 private:
  /// Delivers due shipments to the coordinator, routes due acks back to
  /// sites, and lets every site retransmit if its backoff expired.
  void Pump();

  double eps_;
  double theta_;
  MonitorOptions options_;
  uint64_t now_ = 0;
  std::vector<std::unique_ptr<MonitorSite>> sites_;
  MonitorCoordinator coordinator_;
  FaultyChannel data_channel_;
  FaultyChannel ack_channel_;
};

}  // namespace streamq

#endif  // STREAMQ_DISTRIBUTED_MONITOR_H_
