#include "distributed/coordinator.h"

#include "distributed/ack.h"
#include "util/serde.h"

namespace streamq {

MonitorCoordinator::MonitorCoordinator(int num_sites, double eps_local)
    : eps_(eps_local), views_(num_sites) {}

void MonitorCoordinator::HandleMessage(const std::string& bytes, uint64_t now,
                                       FaultyChannel& ack_tx) {
  // 1. Frame validation: CRC32C + header. A flipped byte anywhere in the
  // shipment fails here, before any payload byte is interpreted.
  std::string payload;
  if (!UnframeSnapshot(bytes, SnapshotType::kMonitorShipment, &payload)) {
    ++stats_.rejected_corrupt;
    return;
  }
  SerdeReader r(payload);
  uint32_t site = 0;
  uint64_t seq = 0, count = 0;
  std::string summary_bytes;
  if (!r.U32(&site) || !r.U64(&seq) || !r.U64(&count) ||
      !r.Bytes(&summary_bytes) || !r.Done() ||
      site >= views_.size() || seq == 0) {
    ++stats_.rejected_malformed;
    return;
  }
  SiteView& view = views_[site];
  // 2. Sequence dedup: duplicates and stale reorders are acknowledged (the
  // sender needs to learn our horizon) but never re-applied, so ReportedCount
  // stays exact no matter how often the network duplicates a shipment.
  if (seq <= view.seq) {
    ++stats_.rejected_stale;
    SendAck(static_cast<int>(site), now, ack_tx);
    return;
  }
  // 3. Structural validation into a fresh summary; the site view is only
  // replaced after a fully successful decode (no partial mutation).
  auto received = std::make_unique<GkArrayImpl<uint64_t>>(eps_);
  SerdeReader sr(summary_bytes);
  if (!received->Deserialize(sr) || !sr.Done() ||
      received->Count() != count) {
    ++stats_.rejected_malformed;
    return;
  }
  view.seq = seq;
  view.count = count;
  view.summary = std::move(received);
  ++stats_.accepted;
  SendAck(static_cast<int>(site), now, ack_tx);
}

void MonitorCoordinator::SendAck(int site, uint64_t now,
                                 FaultyChannel& ack_tx) {
  // Shared ack protocol (distributed/ack.h): the return path gets the same
  // CRC32C framing as the shipments, so a flipped ack byte is detected at
  // the site instead of corrupting its sequence horizon.
  AckFrame ack;
  ack.node = static_cast<uint32_t>(site);
  ack.seq = views_[site].seq;
  ack_tx.Send(now, EncodeAck(SnapshotType::kMonitorAck, ack));
  ++stats_.acks_sent;
}

bool MonitorCoordinator::ParseAck(const std::string& bytes, int* site,
                                  uint64_t* seq) {
  AckFrame ack;
  if (!DecodeAck(SnapshotType::kMonitorAck, bytes, &ack)) return false;
  *site = static_cast<int>(ack.node);
  *seq = ack.seq;
  return true;
}

std::vector<WeightedElement<uint64_t>> MonitorCoordinator::Sample() const {
  std::vector<WeightedElement<uint64_t>> sample;
  for (const SiteView& view : views_) {
    if (view.summary == nullptr) continue;
    view.summary->ForEachTuple([&](uint64_t v, int64_t g, int64_t /*delta*/) {
      sample.push_back({v, g});
    });
  }
  return sample;
}

uint64_t MonitorCoordinator::Query(double phi) const {
  WeightedSampleView<uint64_t> view(Sample());
  if (view.Empty()) return 0;
  // Target relative to what the coordinator knows about; the unreported
  // remainder is bounded by the staleness accounting (monitor level).
  return view.Quantile(phi * static_cast<double>(view.TotalWeight()));
}

int64_t MonitorCoordinator::EstimateRank(uint64_t value) const {
  return WeightedSampleView<uint64_t>(Sample()).EstimateRank(value);
}

uint64_t MonitorCoordinator::ReportedCount() const {
  uint64_t total = 0;
  for (const SiteView& view : views_) total += view.count;
  return total;
}

uint64_t MonitorCoordinator::KnownCount(int site) const {
  return views_[site].count;
}

uint64_t MonitorCoordinator::HighestSeq(int site) const {
  return views_[site].seq;
}

size_t MonitorCoordinator::MemoryBytes() const {
  size_t total = 0;
  for (const SiteView& view : views_) {
    if (view.summary != nullptr) total += view.summary->MemoryBytes();
  }
  return total;
}

}  // namespace streamq
