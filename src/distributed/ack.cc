#include "distributed/ack.h"

namespace streamq {

std::string EncodeAck(SnapshotType type, const AckFrame& ack) {
  SerdeWriter w;
  w.U32(ack.node);
  w.U64(ack.seq);
  w.U32(ack.flags);
  return FrameSnapshot(type, w.Take());
}

bool DecodeAck(SnapshotType type, const std::string& bytes, AckFrame* out) {
  std::string payload;
  if (!UnframeSnapshot(bytes, type, &payload)) return false;
  SerdeReader r(payload);
  AckFrame ack;
  if (!r.U32(&ack.node) || !r.U64(&ack.seq) || !r.U32(&ack.flags) ||
      !r.Done()) {
    return false;
  }
  *out = ack;
  return true;
}

}  // namespace streamq
