// Coordinator half of the distributed quantile monitor.
//
// The coordinator's entire knowledge is the latest validly delivered
// summary per site. Incoming shipments arrive over a lossy channel, so
// every message is treated as untrusted bytes:
//
//   1. Frame validation (util/serde.h): magic, version, type tag, exact
//      length, CRC32C. Any corrupted or truncated shipment is rejected here
//      — no payload byte is interpreted, nothing crashes, no state changes.
//   2. Sequence-number dedup: a shipment whose per-site sequence number is
//      not strictly newer than the last accepted one is discarded
//      (duplicate or reordered-stale delivery), which keeps the reported
//      global count exact under duplication.
//   3. Structural validation of the decoded summary; only then is the
//      site's view atomically replaced.
//
// Every delivery — fresh or duplicate — is acknowledged with the site's
// highest accepted sequence number, so senders can both stop retrying and
// (after a crash-restart from an old checkpoint) fast-forward their
// sequence horizon.

#ifndef STREAMQ_DISTRIBUTED_COORDINATOR_H_
#define STREAMQ_DISTRIBUTED_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distributed/channel.h"
#include "quantile/gk_array.h"
#include "quantile/weighted_sample.h"

namespace streamq {

class MonitorCoordinator {
 public:
  /// Message-validation outcomes (accounting; see stats()).
  struct Stats {
    size_t accepted = 0;          ///< fresh shipments applied
    size_t rejected_corrupt = 0;  ///< frame/CRC validation failures
    size_t rejected_stale = 0;    ///< duplicates and stale reorders
    size_t rejected_malformed = 0;  ///< valid frame, invalid content
    size_t acks_sent = 0;
  };

  /// eps_local must match the sites' local summary error (monitor: eps/2).
  MonitorCoordinator(int num_sites, double eps_local);

  /// Validates and applies one delivered message; acknowledges through
  /// `ack_tx`. Corrupt or malformed input is counted and dropped — never
  /// trusted, never fatal.
  void HandleMessage(const std::string& bytes, uint64_t now,
                     FaultyChannel& ack_tx);

  /// Parses an ack frame (used by the site side of the transport).
  /// Returns false on corrupt input.
  static bool ParseAck(const std::string& bytes, int* site, uint64_t* seq);

  /// phi-quantile over the union of the latest accepted site summaries.
  uint64_t Query(double phi) const;

  /// Rank estimate over the same union.
  int64_t EstimateRank(uint64_t value) const;

  /// Sum of the site counts carried by the latest accepted shipments:
  /// exactly the number of stream elements the coordinator's answers
  /// reflect (dedup keeps this exact under duplicated deliveries).
  uint64_t ReportedCount() const;

  /// Count carried by the latest accepted shipment of `site` (0 if none).
  uint64_t KnownCount(int site) const;

  /// Highest accepted sequence number of `site` (0 if none).
  uint64_t HighestSeq(int site) const;

  /// Accounting bytes of coordinator state (latest summary per site).
  size_t MemoryBytes() const;

  int num_sites() const { return static_cast<int>(views_.size()); }
  const Stats& stats() const { return stats_; }

 private:
  struct SiteView {
    uint64_t seq = 0;
    uint64_t count = 0;
    std::unique_ptr<GkArrayImpl<uint64_t>> summary;
  };

  void SendAck(int site, uint64_t now, FaultyChannel& ack_tx);
  std::vector<WeightedElement<uint64_t>> Sample() const;

  double eps_;
  std::vector<SiteView> views_;
  Stats stats_;
};

}  // namespace streamq

#endif  // STREAMQ_DISTRIBUTED_COORDINATOR_H_
