// Site half of the distributed quantile monitor.
//
// A site observes its local stream into a GKArray summary (error eps_local)
// and ships the serialized summary to the coordinator whenever its local
// count has grown by a factor (1 + theta) since the last shipment — the
// classic count-triggered protocol. Because the transport may drop,
// duplicate, reorder, or corrupt shipments, every shipment carries a
// monotonically increasing per-site sequence number, and the site keeps
// retrying (with capped exponential backoff, in virtual ticks) until the
// coordinator acknowledges a sequence number at least as new as the last
// one sent. Shipments are cumulative (the full summary), so a retry simply
// sends the CURRENT state under a fresh sequence number — any one delivery
// brings the coordinator fully up to date.
//
// Sites can checkpoint their entire state (summary, counts, sequence
// numbers) to a framed byte string and be restarted from it after a crash.
// A restarted site may lag the coordinator's sequence horizon; the
// coordinator's acks carry its highest accepted sequence number, which the
// site uses to fast-forward and re-ship, so recovery needs no extra
// protocol machinery.

#ifndef STREAMQ_DISTRIBUTED_SITE_H_
#define STREAMQ_DISTRIBUTED_SITE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "distributed/channel.h"
#include "quantile/gk_array.h"

namespace streamq {

/// Retransmission policy, in virtual ticks.
struct RetryPolicy {
  uint64_t initial_backoff = 8;
  uint64_t max_backoff = 1024;
};

class MonitorSite {
 public:
  /// eps_local: rank-error budget of the local summary (the monitor passes
  /// eps/2); theta: count-growth shipping trigger.
  MonitorSite(int id, double eps_local, double theta, RetryPolicy retry = {});

  /// One element observed locally at time `now`; ships through `tx` when
  /// the count trigger fires.
  void Observe(uint64_t value, uint64_t now, FaultyChannel& tx);

  /// Coordinator acknowledged sequence number `seq` (its highest accepted).
  /// A seq beyond anything this site sent means the coordinator holds state
  /// from a pre-crash incarnation: the site fast-forwards past it and
  /// re-ships its current state.
  void HandleAck(uint64_t seq);

  /// Advances virtual time: retransmits the current state if an unacked
  /// shipment's backoff deadline has passed.
  void Tick(uint64_t now, FaultyChannel& tx);

  /// Ships the current state if it is newer than the last shipment
  /// (used to flush residual staleness, e.g. before quiescing).
  void ForceShip(uint64_t now, FaultyChannel& tx);

  /// Serialized, framed checkpoint of the full site state.
  std::string Checkpoint() const;

  /// Restores a Checkpoint(); nullptr on corrupt input.
  static std::unique_ptr<MonitorSite> FromCheckpoint(const std::string& frame,
                                                     RetryPolicy retry = {});

  int id() const { return id_; }
  uint64_t count() const { return count_; }
  bool HasUnacked() const { return last_acked_seq_ < last_sent_seq_; }
  size_t shipments() const { return shipments_; }
  size_t retransmits() const { return retransmits_; }

 private:
  void Ship(uint64_t now, FaultyChannel& tx, bool is_retransmit);

  int id_;
  double eps_;
  double theta_;
  RetryPolicy retry_;
  GkArrayImpl<uint64_t> summary_;
  uint64_t count_ = 0;
  uint64_t last_shipped_count_ = 0;
  uint64_t last_sent_seq_ = 0;
  uint64_t last_acked_seq_ = 0;
  uint64_t next_retry_at_ = 0;
  uint64_t backoff_ = 0;
  bool needs_reship_ = false;
  size_t shipments_ = 0;
  size_t retransmits_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_DISTRIBUTED_SITE_H_
