// Acknowledgement frames shared by the monitoring tier (coordinator ->
// site) and the cluster data path (coordinator -> node).
//
// Acks travel over the same lossy transport as the shipments they confirm,
// so they get the same hardening: every ack is a CRC32C-framed snapshot
// (magic | version | type | length | crc, see util/serde.h) and DecodeAck
// validates the frame before a single payload byte is interpreted. A
// corrupted ack is dropped by the receiver -- never misparsed into a bogus
// sequence horizon, which would silently desynchronise the retry protocol.
//
// Payload layout (fixed 16 bytes):
//   node u32 | seq u64 | flags u32
//
// `seq` is the receiver's highest accepted sequence number (monitor) or
// epoch (cluster) for `node`; `flags` carries protocol requests on top of
// the plain confirmation. The monitor tier sends flags == 0; the cluster
// coordinator sets kAckFlagReship to ask a silent node to re-ship its
// current state (the capped-backoff re-request path).

#ifndef STREAMQ_DISTRIBUTED_ACK_H_
#define STREAMQ_DISTRIBUTED_ACK_H_

#include <cstdint>
#include <string>

#include "util/serde.h"

namespace streamq {

/// The receiver wants the sender to re-ship its current state under a
/// fresh sequence number (missing-epoch re-request).
inline constexpr uint32_t kAckFlagReship = 1u;

struct AckFrame {
  uint32_t node = 0;  ///< site / node id the ack is addressed to
  uint64_t seq = 0;   ///< receiver's highest accepted seq (or epoch)
  uint32_t flags = 0;
};

/// Encodes `ack` as a CRC32C-framed snapshot of `type` (kMonitorAck or
/// kClusterAck -- the two tiers must not accept each other's acks).
std::string EncodeAck(SnapshotType type, const AckFrame& ack);

/// Strict inverse of EncodeAck: full frame validation (magic, version,
/// type tag, exact length, CRC32C) then an exact payload parse. Returns
/// false -- leaving *out untouched -- on any mismatch, so any single-byte
/// corruption of an ack is detected and the ack discarded.
bool DecodeAck(SnapshotType type, const std::string& bytes, AckFrame* out);

}  // namespace streamq

#endif  // STREAMQ_DISTRIBUTED_ACK_H_
