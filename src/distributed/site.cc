#include "distributed/site.h"

#include <algorithm>

#include "util/serde.h"

namespace streamq {

MonitorSite::MonitorSite(int id, double eps_local, double theta,
                         RetryPolicy retry)
    : id_(id), eps_(eps_local), theta_(theta), retry_(retry), summary_(eps_local) {}

void MonitorSite::Observe(uint64_t value, uint64_t now, FaultyChannel& tx) {
  summary_.Insert(value);
  ++count_;
  // Ship when the local count grew by a (1 + theta) factor (every site's
  // first element ships immediately).
  const double trigger =
      (1.0 + theta_) * static_cast<double>(last_shipped_count_);
  if (last_shipped_count_ == 0 ||
      static_cast<double>(count_) >= trigger) {
    Ship(now, tx, /*is_retransmit=*/false);
  }
}

void MonitorSite::Ship(uint64_t now, FaultyChannel& tx, bool is_retransmit) {
  // Cumulative shipment: the full current summary under a fresh sequence
  // number, so one delivered copy supersedes everything before it.
  const uint64_t seq = ++last_sent_seq_;
  summary_.Flush();
  SerdeWriter w;
  w.U32(static_cast<uint32_t>(id_));
  w.U64(seq);
  w.U64(count_);
  SerdeWriter summary_writer;
  summary_.Serialize(summary_writer);
  w.Bytes(summary_writer.buffer());
  tx.Send(now, FrameSnapshot(SnapshotType::kMonitorShipment, w.Take()));
  last_shipped_count_ = count_;
  if (is_retransmit) {
    ++retransmits_;
    backoff_ = std::min(backoff_ * 2, retry_.max_backoff);
  } else {
    ++shipments_;
    backoff_ = retry_.initial_backoff;
  }
  next_retry_at_ = now + backoff_;
}

void MonitorSite::HandleAck(uint64_t seq) {
  last_acked_seq_ = std::max(last_acked_seq_, seq);
  if (seq > last_sent_seq_) {
    // The coordinator has accepted shipments this incarnation never sent —
    // we were restarted from a checkpoint older than the crash point. Jump
    // past the foreign horizon and re-ship our current state so the
    // coordinator converges back onto what this incarnation knows.
    last_sent_seq_ = seq;
    needs_reship_ = count_ > 0;
  }
}

void MonitorSite::Tick(uint64_t now, FaultyChannel& tx) {
  if (needs_reship_) {
    needs_reship_ = false;
    Ship(now, tx, /*is_retransmit=*/false);
    return;
  }
  if (HasUnacked() && now >= next_retry_at_) {
    Ship(now, tx, /*is_retransmit=*/true);
  }
}

void MonitorSite::ForceShip(uint64_t now, FaultyChannel& tx) {
  if (count_ > last_shipped_count_) {
    Ship(now, tx, /*is_retransmit=*/false);
  }
}

std::string MonitorSite::Checkpoint() const {
  // Serialize a flushed copy so the snapshot has no buffered residue; the
  // live summary is untouched.
  GkArrayImpl<uint64_t> flushed = summary_;
  flushed.Flush();
  SerdeWriter summary_writer;
  flushed.Serialize(summary_writer);

  SerdeWriter w;
  w.U32(static_cast<uint32_t>(id_));
  w.F64(eps_);
  w.F64(theta_);
  w.U64(count_);
  w.U64(last_shipped_count_);
  w.U64(last_sent_seq_);
  w.U64(last_acked_seq_);
  w.Bytes(summary_writer.buffer());
  return FrameSnapshot(SnapshotType::kSiteCheckpoint, w.Take());
}

std::unique_ptr<MonitorSite> MonitorSite::FromCheckpoint(
    const std::string& frame, RetryPolicy retry) {
  std::string payload;
  if (!UnframeSnapshot(frame, SnapshotType::kSiteCheckpoint, &payload)) {
    return nullptr;
  }
  SerdeReader r(payload);
  uint32_t id = 0;
  double eps = 0, theta = 0;
  uint64_t count = 0, last_shipped = 0, last_sent = 0, last_acked = 0;
  std::string summary_bytes;
  if (!r.U32(&id) || !r.F64(&eps) || !r.F64(&theta) || !r.U64(&count) ||
      !r.U64(&last_shipped) || !r.U64(&last_sent) || !r.U64(&last_acked) ||
      !r.Bytes(&summary_bytes) || !r.Done()) {
    return nullptr;
  }
  if (!(eps > 0.0 && eps < 1.0) || !(theta > 0.0) || id > (1u << 20)) {
    return nullptr;
  }
  auto site = std::make_unique<MonitorSite>(static_cast<int>(id), eps, theta,
                                            retry);
  SerdeReader sr(summary_bytes);
  if (!site->summary_.Deserialize(sr) || !sr.Done()) return nullptr;
  if (site->summary_.Count() != count) return nullptr;  // inconsistent
  site->count_ = count;
  site->last_shipped_count_ = last_shipped;
  site->last_sent_seq_ = last_sent;
  site->last_acked_seq_ = std::min(last_acked, last_sent);
  // The coordinator may or may not have our latest state; re-ship promptly
  // and let its seq-based dedup sort it out.
  site->needs_reship_ = count > 0;
  return site;
}

}  // namespace streamq
