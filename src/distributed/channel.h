// Transport abstraction between monitor sites and the coordinator, with a
// deterministic, seed-driven fault injector.
//
// Everything crossing the channel is an opaque byte string (a framed
// snapshot, see util/serde.h); the channel neither parses nor trusts it.
// Time is virtual: the owner advances a tick counter (one tick per observed
// element in the monitor) and polls for messages whose delivery time has
// arrived, so every experiment is reproducible bit-for-bit with no wall
// clocks.
//
// Injected faults, each with an independent probability per message copy:
//   * drop        — the copy never arrives.
//   * duplicate   — a second, independently delayed/corrupted copy is sent.
//   * reorder     — the copy is held back extra ticks, letting later sends
//                   overtake it.
//   * corrupt     — one byte of the copy is flipped (which the CRC32C frame
//                   check on the receiving side must catch).
// plus a uniform per-copy delivery delay in [min_delay, max_delay] ticks.

#ifndef STREAMQ_DISTRIBUTED_CHANNEL_H_
#define STREAMQ_DISTRIBUTED_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace streamq {

/// Fault probabilities and delay model of one channel direction. The
/// default is a perfect, instantaneous channel.
struct FaultSpec {
  double drop = 0.0;       ///< P(copy is lost)
  double duplicate = 0.0;  ///< P(message is sent twice)
  double reorder = 0.0;    ///< P(copy is held back reorder_extra ticks)
  double corrupt = 0.0;    ///< P(one byte of the copy is flipped)
  uint64_t min_delay = 0;  ///< minimum delivery delay, ticks
  uint64_t max_delay = 0;  ///< maximum delivery delay, ticks
  uint64_t reorder_extra = 64;  ///< extra hold-back when reordered, ticks

  bool Perfect() const {
    return drop == 0.0 && duplicate == 0.0 && reorder == 0.0 &&
           corrupt == 0.0 && min_delay == 0 && max_delay == 0;
  }
};

/// Per-channel accounting (all copies, i.e. retransmits included).
struct ChannelStats {
  size_t sent = 0;        ///< messages offered by the sender
  size_t delivered = 0;   ///< copies handed to the receiver
  size_t dropped = 0;     ///< copies lost
  size_t duplicated = 0;  ///< extra copies injected
  size_t reordered = 0;   ///< copies held back
  size_t corrupted = 0;   ///< copies with a flipped byte
  size_t bytes_offered = 0;    ///< bytes the sender put on the wire
  size_t bytes_delivered = 0;  ///< bytes that reached the receiver
};

/// One direction of a lossy transport under virtual time.
class FaultyChannel {
 public:
  FaultyChannel(const FaultSpec& spec, uint64_t seed);

  /// Offers one message at time `now`; faults are applied immediately and
  /// deterministically (seed-driven).
  void Send(uint64_t now, std::string bytes);

  /// Removes and returns every copy whose delivery time is <= now, in
  /// delivery order (delivery time, then send order).
  std::vector<std::string> Poll(uint64_t now);

  /// True when nothing is in flight.
  bool Idle() const { return in_flight_.empty(); }

  const ChannelStats& stats() const { return stats_; }

 private:
  struct InFlight {
    uint64_t deliver_at;
    uint64_t order;  // tie-break: send order
    std::string bytes;
  };

  static bool ArrivesLater(const InFlight& a, const InFlight& b);
  void Enqueue(uint64_t now, const std::string& bytes);

  FaultSpec spec_;
  Xoshiro256 rng_;
  uint64_t order_counter_ = 0;
  std::vector<InFlight> in_flight_;  // min-heap on (deliver_at, order)
  ChannelStats stats_;
};

}  // namespace streamq

#endif  // STREAMQ_DISTRIBUTED_CHANNEL_H_
