// Exact quantile/rank oracle used as ground truth by tests and benches.

#ifndef STREAMQ_EXACT_EXACT_ORACLE_H_
#define STREAMQ_EXACT_EXACT_ORACLE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace streamq {

/// Ground-truth oracle over a materialised multiset. Construction sorts a
/// copy of the data (O(n log n)); all queries are O(log n).
class ExactOracle {
 public:
  /// Takes the dataset by value and sorts it.
  explicit ExactOracle(std::vector<uint64_t> data);

  /// Number of elements.
  uint64_t n() const { return sorted_.size(); }

  /// Rank of x = number of elements strictly smaller than x.
  uint64_t Rank(uint64_t x) const;

  /// Rank interval of x: [#\{< x\}, #\{<= x\}]. The paper resolves duplicate
  /// ambiguity in favour of the algorithms by treating the rank of a
  /// duplicated item as this whole interval.
  std::pair<uint64_t, uint64_t> RankInterval(uint64_t x) const;

  /// The phi-quantile: element of rank floor(phi * n), 0 < phi < 1.
  uint64_t Quantile(double phi) const;

  /// Normalised rank error of a reported phi-quantile q, per the paper's
  /// protocol: distance from phi*n to the rank interval of q, divided by n
  /// (0 if phi*n falls inside the interval).
  double QuantileError(uint64_t q, double phi) const;

  /// The sorted data (for tests).
  const std::vector<uint64_t>& sorted() const { return sorted_; }

 private:
  std::vector<uint64_t> sorted_;
};

}  // namespace streamq

#endif  // STREAMQ_EXACT_EXACT_ORACLE_H_
