// Observed-error evaluation following the paper's measurement protocol
// (section 4.1.2): extract the phi-quantiles for phi = eps, 2eps, ..., 1-eps,
// compare each against its true rank interval, and report the maximum
// (Kolmogorov-Smirnov divergence) and average (~ total variation distance)
// normalised rank error.

#ifndef STREAMQ_EXACT_ERROR_METRICS_H_
#define STREAMQ_EXACT_ERROR_METRICS_H_

#include <cstddef>

#include "exact/exact_oracle.h"
#include "quantile/quantile_sketch.h"

namespace streamq {

/// Observed errors of a summary against ground truth.
struct ErrorStats {
  double max_error = 0.0;  // Kolmogorov-Smirnov divergence
  double avg_error = 0.0;  // mean rank error over the query grid
  size_t num_queries = 0;
};

/// Evaluates `sketch` on the phi grid implied by eps. If the grid would
/// exceed `max_queries` points it is subsampled evenly (the measured
/// divergences are insensitive to this at the tested scales).
ErrorStats EvaluateQuantiles(QuantileSketch& sketch, const ExactOracle& oracle,
                             double eps, size_t max_queries = 100'000);

}  // namespace streamq

#endif  // STREAMQ_EXACT_ERROR_METRICS_H_
