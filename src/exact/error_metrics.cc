#include "exact/error_metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace streamq {

ErrorStats EvaluateQuantiles(QuantileSketch& sketch, const ExactOracle& oracle,
                             double eps, size_t max_queries) {
  ErrorStats stats;
  if (oracle.n() == 0 || eps <= 0.0 || eps >= 1.0) return stats;

  size_t num = static_cast<size_t>(std::floor(1.0 / eps)) - 1;
  num = std::max<size_t>(num, 1);
  double step = eps;
  if (num > max_queries) {
    num = max_queries;
    step = 1.0 / static_cast<double>(num + 1);
  }
  std::vector<double> phis;
  phis.reserve(num);
  for (size_t i = 1; i <= num; ++i) {
    const double phi = step * static_cast<double>(i);
    if (phi >= 1.0) break;
    phis.push_back(phi);
  }

  const std::vector<uint64_t> answers = sketch.QueryMany(phis);
  double sum = 0.0;
  for (size_t i = 0; i < phis.size(); ++i) {
    const double err = oracle.QuantileError(answers[i], phis[i]);
    stats.max_error = std::max(stats.max_error, err);
    sum += err;
  }
  stats.num_queries = phis.size();
  stats.avg_error = phis.empty() ? 0.0 : sum / static_cast<double>(phis.size());
  return stats;
}

}  // namespace streamq
