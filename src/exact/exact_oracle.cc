#include "exact/exact_oracle.h"

#include <algorithm>
#include <cmath>

namespace streamq {

ExactOracle::ExactOracle(std::vector<uint64_t> data) : sorted_(std::move(data)) {
  std::sort(sorted_.begin(), sorted_.end());
}

uint64_t ExactOracle::Rank(uint64_t x) const {
  return std::lower_bound(sorted_.begin(), sorted_.end(), x) - sorted_.begin();
}

std::pair<uint64_t, uint64_t> ExactOracle::RankInterval(uint64_t x) const {
  const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  const auto hi = std::upper_bound(lo, sorted_.end(), x);
  return {static_cast<uint64_t>(lo - sorted_.begin()),
          static_cast<uint64_t>(hi - sorted_.begin())};
}

uint64_t ExactOracle::Quantile(double phi) const {
  if (sorted_.empty()) return 0;
  uint64_t r = static_cast<uint64_t>(phi * static_cast<double>(n()));
  if (r >= n()) r = n() - 1;
  return sorted_[r];
}

double ExactOracle::QuantileError(uint64_t q, double phi) const {
  if (sorted_.empty()) return 0.0;
  const double target = phi * static_cast<double>(n());
  const auto [lo, hi] = RankInterval(q);
  double err = 0.0;
  if (target < static_cast<double>(lo)) {
    err = static_cast<double>(lo) - target;
  } else if (target > static_cast<double>(hi)) {
    err = target - static_cast<double>(hi);
  }
  return err / static_cast<double>(n());
}

}  // namespace streamq
