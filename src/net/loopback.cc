#include "net/loopback.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>

namespace streamq::net {
namespace {

/// Shared state of one pair: two directed byte pipes. Direction d carries
/// bytes written by endpoint d and read by endpoint 1-d.
struct PairState {
  explicit PairState(size_t capacity)
      : capacity(capacity == 0 ? 1 : capacity) {}

  std::mutex mutex;
  std::condition_variable cv;
  const size_t capacity;
  struct Pipe {
    std::string data;   // pending bytes (head at `off`)
    size_t off = 0;
    size_t size() const { return data.size() - off; }
  } pipe[2];
  bool closed[2] = {false, false};  // endpoint e called Close()
};

class LoopbackConn final : public Conn {
 public:
  LoopbackConn(std::shared_ptr<PairState> state, int endpoint)
      : state_(std::move(state)), endpoint_(endpoint) {}

  ~LoopbackConn() override { Close(); }

  int Read(char* buf, size_t n) override {
    if (n == 0) return 0;
    std::lock_guard<std::mutex> lock(state_->mutex);
    PairState::Pipe& in = state_->pipe[1 - endpoint_];
    if (state_->closed[endpoint_]) return -1;
    const size_t avail = in.size();
    if (avail == 0) {
      // Peer closed and nothing left to drain: EOF.
      return state_->closed[1 - endpoint_] ? -1 : 0;
    }
    const size_t take = avail < n ? avail : n;
    std::memcpy(buf, in.data.data() + in.off, take);
    in.off += take;
    if (in.off == in.data.size()) {
      in.data.clear();
      in.off = 0;
    } else if (in.off > (size_t{64} << 10)) {
      in.data.erase(0, in.off);  // keep the pipe's resident size bounded
      in.off = 0;
    }
    state_->cv.notify_all();  // writer may have been waiting on capacity
    return static_cast<int>(take);
  }

  int Write(const char* buf, size_t n) override {
    if (n == 0) return 0;
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->closed[endpoint_] || state_->closed[1 - endpoint_]) return -1;
    PairState::Pipe& out = state_->pipe[endpoint_];
    const size_t used = out.size();
    if (used >= state_->capacity) return 0;  // would block
    const size_t room = state_->capacity - used;
    const size_t take = room < n ? room : n;
    out.data.append(buf, take);
    state_->cv.notify_all();
    return static_cast<int>(take);
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->closed[endpoint_] = true;
    state_->cv.notify_all();
  }

  bool WaitReadable(int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mutex);
    auto ready = [this] {
      return state_->pipe[1 - endpoint_].size() > 0 ||
             state_->closed[0] || state_->closed[1];
    };
    if (timeout_ms < 0) {
      state_->cv.wait(lock, ready);
      return true;
    }
    return state_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               ready);
  }

  bool WaitWritable(int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mutex);
    auto ready = [this] {
      return state_->pipe[endpoint_].size() < state_->capacity ||
             state_->closed[0] || state_->closed[1];
    };
    if (timeout_ms < 0) {
      state_->cv.wait(lock, ready);
      return true;
    }
    return state_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               ready);
  }

 private:
  std::shared_ptr<PairState> state_;
  const int endpoint_;
};

}  // namespace

std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>> MakeLoopbackPair(
    size_t capacity_bytes) {
  auto state = std::make_shared<PairState>(capacity_bytes);
  return {std::make_unique<LoopbackConn>(state, 0),
          std::make_unique<LoopbackConn>(state, 1)};
}

}  // namespace streamq::net
