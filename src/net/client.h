// Blocking client for the streamq network protocol, over any Conn (TCP in
// production, the loopback pair in tests).
//
// Two usage styles:
//
//  * Synchronous: Create/Insert/InsertBatch/Query/Rank/Flush/Stats send
//    one request and block for its response. Do not mix with outstanding
//    pipelined requests.
//  * Pipelined: Send() queues a request (returning its id) without waiting;
//    Receive()/DrainAll() collect responses, which arrive in send order.
//    Pipelining is what makes BATCH_INSERT throughput real: the wire stays
//    full instead of round-tripping per frame.
//
// Deadlock note, load-bearing: a server applying backpressure stops
// READING a connection whose stream is busy, so a client that keeps
// writing blind would grow both socket buffers and then spin. When a
// Send's write would block, the client first drains any responses already
// available (freeing the server's write queue, which is often what the
// server is waiting on) before waiting for writability.
//
// Not thread-safe; one client per thread.

#ifndef STREAMQ_NET_CLIENT_H_
#define STREAMQ_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/conn.h"
#include "net/protocol.h"

namespace streamq::net {

struct ClientOptions {
  int connect_timeout_ms = 5000;
  /// Per-wait bound while blocked on the peer; an operation gives up --
  /// and the client goes dead -- after this long with no progress at all.
  int io_timeout_ms = 30000;
  size_t max_frame_bytes = kMaxFrameBytes;
};

class StreamqClient {
 public:
  explicit StreamqClient(std::unique_ptr<Conn> conn,
                         ClientOptions options = {});
  /// nullptr when the TCP connect fails.
  static std::unique_ptr<StreamqClient> ConnectTcp(
      const std::string& host, uint16_t port, ClientOptions options = {});
  ~StreamqClient();
  StreamqClient(const StreamqClient&) = delete;
  StreamqClient& operator=(const StreamqClient&) = delete;

  /// False once the transport died or the peer broke protocol; every later
  /// operation fails fast with a kInternal response.
  bool ok() const { return alive_; }
  const std::string& error() const { return error_; }

  // --- synchronous helpers ----------------------------------------------

  NetResponse Create(const std::string& stream, const CreateParams& params);
  NetResponse Drop(const std::string& stream);
  NetResponse Insert(const std::string& stream, uint64_t value,
                     int32_t delta = +1);
  NetResponse InsertBatch(const std::string& stream,
                          std::span<const uint64_t> values);
  NetResponse Query(const std::string& stream, double phi);
  NetResponse Rank(const std::string& stream, uint64_t value);
  /// Blocks until the server acks durability of everything sent so far on
  /// this stream. response.value = the durable seq mark.
  NetResponse Flush(const std::string& stream);
  NetResponse Stats(const std::string& stream);

  // --- pipelining -------------------------------------------------------

  /// Queues `request` (id assigned by the client, returned; 0 = failure)
  /// and pushes bytes without blocking for the response.
  uint64_t Send(NetRequest request);

  /// Blocks for the next in-order response. False when the connection dies
  /// first.
  bool Receive(NetResponse* out);

  /// Receives until no request is outstanding. False on connection death
  /// (responses already collected stay in *out).
  bool DrainAll(std::vector<NetResponse>* out);

  size_t outstanding() const { return outstanding_; }

  void CloseConn();

 private:
  NetResponse Call(NetRequest request);
  /// Pushes pending output; drains opportunistically on would-block.
  bool FlushWrites(bool block_until_empty);
  /// Reads until one frame is complete (blocking) or opportunistically
  /// (non-blocking) into inbox_.
  bool ReadResponses(bool blocking);
  void Die(const std::string& why);
  NetResponse DeadResponse(const NetRequest& request) const;

  std::unique_ptr<Conn> conn_;
  ClientOptions options_;
  bool alive_ = true;
  std::string error_;
  uint64_t next_id_ = 1;
  size_t outstanding_ = 0;
  std::string outbuf_;
  size_t out_off_ = 0;
  FrameBuffer inbuf_;
  std::deque<NetResponse> inbox_;
};

}  // namespace streamq::net

#endif  // STREAMQ_NET_CLIENT_H_
