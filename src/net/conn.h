// Byte-stream connection abstraction of the network tier (src/net/).
//
// Everything above this interface -- frame parsing, the request state
// machine, backpressure, the client -- is transport-agnostic. Two
// implementations exist:
//
//  * SocketConn (socket.h): a non-blocking TCP socket, the production
//    transport the reactor multiplexes with epoll/poll.
//  * the loopback pair (loopback.h): two in-process endpoints joined by
//    bounded byte queues, so the full server logic is unit-testable --
//    including under ASan/UBSan/TSan -- without opening a socket.
//
// The I/O contract is deliberately minimal and non-blocking:
//
//    Read/Write return  > 0  bytes transferred,
//                         0  would block (try again later),
//                        -1  connection closed or failed (terminal).
//
// Writes may be partial; callers keep their own send queue. The Wait*
// hooks exist for *blocking* users (StreamqClient); the server never calls
// them -- readiness comes from its reactor.

#ifndef STREAMQ_NET_CONN_H_
#define STREAMQ_NET_CONN_H_

#include <cstddef>

namespace streamq::net {

class Conn {
 public:
  virtual ~Conn() = default;

  /// Reads up to `n` bytes into `buf`. >0 bytes read, 0 would-block,
  /// -1 closed/error. Never blocks.
  virtual int Read(char* buf, size_t n) = 0;

  /// Writes up to `n` bytes from `buf`. >0 bytes accepted (possibly fewer
  /// than `n`), 0 would-block, -1 closed/error. Never blocks.
  virtual int Write(const char* buf, size_t n) = 0;

  /// Closes both directions; subsequent Read/Write return -1 and the peer
  /// observes EOF/-1 once it drains what was already written.
  virtual void Close() = 0;

  /// Blocks until a Read could make progress (data buffered or the peer
  /// closed), or the timeout elapses. Returns false on timeout.
  /// timeout_ms < 0 waits forever.
  virtual bool WaitReadable(int timeout_ms) = 0;

  /// Blocks until a Write could make progress. Same conventions.
  virtual bool WaitWritable(int timeout_ms) = 0;

  /// Underlying file descriptor for reactor registration; -1 for
  /// transports that are not fd-backed (loopback), which a reactor cannot
  /// multiplex and must pump.
  virtual int fd() const { return -1; }
};

}  // namespace streamq::net

#endif  // STREAMQ_NET_CONN_H_
