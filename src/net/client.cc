#include "net/client.h"

#include <utility>

#include "net/socket.h"

namespace streamq::net {

StreamqClient::StreamqClient(std::unique_ptr<Conn> conn,
                             ClientOptions options)
    : conn_(std::move(conn)),
      options_(options),
      inbuf_(options.max_frame_bytes) {}

std::unique_ptr<StreamqClient> StreamqClient::ConnectTcp(
    const std::string& host, uint16_t port, ClientOptions options) {
  const int fd = TcpConnect(host, port, options.connect_timeout_ms);
  if (fd < 0) return nullptr;
  return std::make_unique<StreamqClient>(std::make_unique<SocketConn>(fd),
                                         options);
}

StreamqClient::~StreamqClient() { CloseConn(); }

void StreamqClient::CloseConn() {
  if (conn_ != nullptr) conn_->Close();
  alive_ = false;
  if (error_.empty()) error_ = "closed";
}

void StreamqClient::Die(const std::string& why) {
  if (!alive_) return;
  alive_ = false;
  error_ = why;
  conn_->Close();
}

NetResponse StreamqClient::DeadResponse(const NetRequest& request) const {
  NetResponse resp;
  resp.id = request.id;
  resp.op = request.op;
  resp.status = NetStatus::kInternal;
  resp.message = "connection dead: " + error_;
  return resp;
}

uint64_t StreamqClient::Send(NetRequest request) {
  if (!alive_) return 0;
  request.id = next_id_++;
  outbuf_.append(EncodeRequest(request));
  ++outstanding_;
  if (!FlushWrites(/*block_until_empty=*/false)) return 0;
  return request.id;
}

bool StreamqClient::FlushWrites(bool block_until_empty) {
  while (out_off_ < outbuf_.size()) {
    const int n =
        conn_->Write(outbuf_.data() + out_off_, outbuf_.size() - out_off_);
    if (n < 0) {
      Die("write failed");
      return false;
    }
    if (n > 0) {
      out_off_ += static_cast<size_t>(n);
      continue;
    }
    // Would block. The server may be waiting for US to drain responses
    // (its write queue bounds how much it processes); pull whatever is
    // already readable before waiting on writability.
    if (!ReadResponses(/*blocking=*/false)) return false;
    if (!block_until_empty) {
      // Pipelined send: leave the remainder buffered; a later Send,
      // Receive, or DrainAll pushes it.
      if (out_off_ > (size_t{256} << 10)) {
        outbuf_.erase(0, out_off_);
        out_off_ = 0;
      }
      return true;
    }
    if (!conn_->WaitWritable(options_.io_timeout_ms)) {
      Die("write timeout");
      return false;
    }
  }
  outbuf_.clear();
  out_off_ = 0;
  return true;
}

bool StreamqClient::ReadResponses(bool blocking) {
  char buf[size_t{16} << 10];
  for (;;) {
    // Surface every frame already buffered first.
    for (;;) {
      std::string frame;
      const FrameScan scan = inbuf_.Next(&frame);
      if (scan == FrameScan::kNeedMore) break;
      if (scan == FrameScan::kBad) {
        Die("protocol error: bad response header");
        return false;
      }
      NetResponse resp;
      if (!DecodeResponse(frame, &resp)) {
        Die("protocol error: bad response payload");
        return false;
      }
      if (outstanding_ > 0) --outstanding_;
      inbox_.push_back(std::move(resp));
    }
    if (blocking && !inbox_.empty()) return true;
    if (blocking && !conn_->WaitReadable(options_.io_timeout_ms)) {
      Die("read timeout");
      return false;
    }
    const int n = conn_->Read(buf, sizeof(buf));
    if (n < 0) {
      Die("connection closed by server");
      return false;
    }
    if (n == 0) {
      if (!blocking) return true;  // opportunistic: took what was there
      continue;                    // spurious wakeup; wait again
    }
    inbuf_.Append(buf, static_cast<size_t>(n));
  }
}

bool StreamqClient::Receive(NetResponse* out) {
  if (!inbox_.empty()) {
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }
  if (!alive_) return false;
  // Make sure the request bytes actually left before blocking on a reply.
  if (!FlushWrites(/*block_until_empty=*/true)) return false;
  if (!ReadResponses(/*blocking=*/true)) return false;
  *out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

bool StreamqClient::DrainAll(std::vector<NetResponse>* out) {
  while (outstanding_ > 0 || !inbox_.empty()) {
    NetResponse resp;
    if (!Receive(&resp)) return false;
    if (out != nullptr) out->push_back(std::move(resp));
  }
  return true;
}

NetResponse StreamqClient::Call(NetRequest request) {
  const uint64_t id = Send(request);
  if (id == 0) {
    request.id = id;
    return DeadResponse(request);
  }
  NetResponse resp;
  for (;;) {
    if (!Receive(&resp)) {
      request.id = id;
      return DeadResponse(request);
    }
    if (resp.id == id) return resp;
    // A response to an earlier pipelined request the caller never
    // collected; synchronous helpers discard it (documented contract).
  }
}

NetResponse StreamqClient::Create(const std::string& stream,
                                  const CreateParams& params) {
  NetRequest req;
  req.op = NetOp::kCreate;
  req.stream = stream;
  req.create = params;
  return Call(std::move(req));
}

NetResponse StreamqClient::Drop(const std::string& stream) {
  NetRequest req;
  req.op = NetOp::kDrop;
  req.stream = stream;
  return Call(std::move(req));
}

NetResponse StreamqClient::Insert(const std::string& stream, uint64_t value,
                                  int32_t delta) {
  NetRequest req;
  req.op = NetOp::kInsert;
  req.stream = stream;
  req.value = value;
  req.delta = delta;
  return Call(std::move(req));
}

NetResponse StreamqClient::InsertBatch(const std::string& stream,
                                       std::span<const uint64_t> values) {
  NetRequest req;
  req.op = NetOp::kBatchInsert;
  req.stream = stream;
  req.values.assign(values.begin(), values.end());
  return Call(std::move(req));
}

NetResponse StreamqClient::Query(const std::string& stream, double phi) {
  NetRequest req;
  req.op = NetOp::kQuery;
  req.stream = stream;
  req.phi = phi;
  return Call(std::move(req));
}

NetResponse StreamqClient::Rank(const std::string& stream, uint64_t value) {
  NetRequest req;
  req.op = NetOp::kRank;
  req.stream = stream;
  req.value = value;
  return Call(std::move(req));
}

NetResponse StreamqClient::Flush(const std::string& stream) {
  NetRequest req;
  req.op = NetOp::kFlush;
  req.stream = stream;
  return Call(std::move(req));
}

NetResponse StreamqClient::Stats(const std::string& stream) {
  NetRequest req;
  req.op = NetOp::kStats;
  req.stream = stream;
  return Call(std::move(req));
}

}  // namespace streamq::net
