// In-process loopback transport: two Conn endpoints joined by bounded
// byte queues, mimicking a TCP socket pair closely enough that the whole
// server/client stack runs unmodified over it.
//
// Why it exists: every protocol/robustness/backpressure test -- including
// the flip-every-byte corruption sweeps and the sanitizer runs -- drives
// the real StreamqServer session state machine through this transport, so
// the logic under test is byte-for-byte the logic the TCP reactor runs,
// with no sockets, ports, or kernel buffering in the loop.
//
// Semantics matched to a socket pair:
//  * bounded capacity per direction (default 1 MiB): a full queue makes
//    Write return 0 (would-block), exercising the partial-write paths;
//  * Close() makes the peer's Read return -1 after draining buffered
//    bytes (like EOF after the kernel buffer empties);
//  * thread-safe: endpoints may live on different threads (client thread
//    vs. server pump thread), with condvar-based Wait* for blocking users.

#ifndef STREAMQ_NET_LOOPBACK_H_
#define STREAMQ_NET_LOOPBACK_H_

#include <memory>
#include <utility>

#include "net/conn.h"

namespace streamq::net {

/// Creates a connected endpoint pair. Each direction buffers at most
/// `capacity_bytes` (minimum 1); both endpoints share state and may be
/// destroyed in any order.
std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>> MakeLoopbackPair(
    size_t capacity_bytes = size_t{1} << 20);

}  // namespace streamq::net

#endif  // STREAMQ_NET_LOOPBACK_H_
