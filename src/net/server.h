// Connection- and stream-serving core of the network tier, transport
// agnostic: sessions speak through the Conn interface, so the same state
// machine runs over TCP (net/reactor.h), the in-process loopback pair
// (net/loopback.h, unit tests under all sanitizers), or anything else.
//
// Threading: the server is a single-threaded state machine, mirroring the
// reactor that drives it. All Pump/AddConn calls must come from one thread
// at a time (the event loop). MetricsText() may be called from any thread
// (it locks; metrics are updated per request, never per update, so the
// lock is off the hot path).
//
// Backpressure (DESIGN.md section 15): a session whose stream cannot
// accept more updates (ingest ring full) or whose peer cannot drain
// responses (write queue at its limit) PARKS: the server stops reading
// that connection -- deferred reads -- and retries the unfinished work on
// later pumps. Parked sessions process no further frames, which is also
// what keeps responses in request order. TCP receive buffers then fill and
// the client's writes stall: ring-full backoff reaches the client as plain
// socket backpressure, with per-connection memory bounded the whole way.
//
// FLUSH (durability barrier): acked only when every update pushed to the
// stream so far is processed AND -- for durable streams -- covered by the
// WAL/checkpoint acknowledgement mark (IngestPipeline::DurableSeq). The
// session parks until the pipeline catches up; the ack carries the durable
// seq. If the stream's WAL has died the response is kWalDead: the client
// knows its writes may not survive a crash. An acked FLUSH is a durability
// guarantee the kill-recovery test holds the server to.

#ifndef STREAMQ_NET_SERVER_H_
#define STREAMQ_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ingest/ingest_pipeline.h"
#include "net/conn.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace streamq::durability {
class Storage;
}

namespace streamq::net {

struct ServerOptions {
  /// Backing storage for durable streams (unowned, must outlive the
  /// server). Null = CREATE with durable=true answers kUnsupported.
  durability::Storage* storage = nullptr;
  /// Root directory for durable stream state; stream `s` lives under
  /// "<data_dir>/<s>".
  std::string data_dir = "streamq-net";
  /// Pending response bytes per connection before the session parks
  /// (stops processing; reads defer). Bounds per-connection memory
  /// against a client that writes but never reads.
  size_t write_queue_limit = size_t{4} << 20;
  /// Bytes read from a connection per pump.
  size_t read_chunk = size_t{64} << 10;
  /// Frame ceiling per connection (header + payload).
  size_t max_frame_bytes = kMaxFrameBytes;
  size_t max_streams = 64;
  /// IngestOptions defaults for CREATE (shards used when the request
  /// leaves CreateParams::shards at 0).
  int default_shards = 2;
  size_t ring_capacity = size_t{1} << 14;
  uint64_t wal_sync_interval = 1024;
};

/// Outcome of pumping one session.
enum class PumpResult {
  kIdle,      ///< nothing to do (no bytes, no parked progress)
  kProgress,  ///< read/processed/wrote something, or parked work advanced
  kClosed,    ///< session finished and was removed
};

class StreamqServer {
 public:
  explicit StreamqServer(ServerOptions options);
  ~StreamqServer();
  StreamqServer(const StreamqServer&) = delete;
  StreamqServer& operator=(const StreamqServer&) = delete;

  /// Registers a connection; returns its session id (never 0).
  uint64_t AddConn(std::unique_ptr<Conn> conn);

  /// Services one session: drains readable bytes (unless parked), executes
  /// complete frames, retries parked work, flushes queued responses.
  PumpResult Pump(uint64_t session_id);

  /// Pumps every session once; returns how many made progress.
  size_t PumpAll();

  /// Event-loop interest: whether this session currently wants readability
  /// (false while parked or its write queue is at the limit) /
  /// writability (queued response bytes pending) callbacks.
  bool WantsRead(uint64_t session_id) const;
  bool WantsWrite(uint64_t session_id) const;

  /// True when any session has parked work that needs timer-driven retries
  /// (no fd event will fire for an ingest ring draining).
  bool HasParkedWork() const;

  size_t SessionCount() const { return sessions_.size(); }
  std::vector<uint64_t> SessionIds() const;
  int SessionFd(uint64_t session_id) const;

  size_t StreamCount() const { return streams_.size(); }
  /// Direct pipeline access for tests and the in-process embedding;
  /// nullptr when no such stream.
  ingest::IngestPipeline* FindStream(const std::string& name);

  /// Prometheus text exposition of the server registry: per-opcode request
  /// counters and latency histograms, connection/byte/defer counters, and
  /// every stream's pipeline metrics under net.stream.<name>. Any thread.
  std::string MetricsText();

  const ServerOptions& options() const { return options_; }

 private:
  struct StreamEntry {
    std::unique_ptr<ingest::IngestPipeline> pipeline;
    CreateParams params;
    std::string dir;  // durable streams: subtree under data_dir
  };

  /// What a parked session is waiting for.
  enum class Parked { kNone, kInsert, kBatch, kFlush };

  struct Session {
    std::unique_ptr<Conn> conn;
    FrameBuffer inbuf;
    std::string http_buf;      // bytes accumulated before/during HTTP mode
    std::deque<std::string> outq;
    size_t out_off = 0;        // send offset into outq.front()
    size_t queued_bytes = 0;
    bool probed = false;       // transport discriminated (HTTP vs binary)?
    bool http = false;
    bool closing = false;      // flush outq, then close
    // Parked work (at most one; the session processes no frames past it).
    Parked parked = Parked::kNone;
    NetRequest parked_req;
    std::vector<Update> parked_updates;  // kBatch: full batch
    size_t parked_off = 0;               // kBatch: accepted prefix length
    ingest::IngestPipeline* parked_pipeline = nullptr;
    uint64_t parked_start_ns = 0;

    explicit Session(std::unique_ptr<Conn> c, size_t max_frame)
        : conn(std::move(c)), inbuf(max_frame) {}
  };

  PumpResult PumpSession(uint64_t id, Session& session);
  /// Reads once into the session buffers; false = connection gone.
  bool ReadSome(Session& session, bool* progressed);
  /// Executes frames until parked, write-limited, or out of frames.
  bool ProcessFrames(Session& session, bool* progressed);
  /// Retries the session's parked operation; true when it completed.
  bool RetryParked(Session& session);
  /// Writes queued bytes; false = connection gone.
  bool WriteSome(Session& session, bool* progressed);

  void Execute(Session& session, const NetRequest& request);
  NetResponse DoCreate(const NetRequest& request);
  NetResponse DoDrop(const NetRequest& request);
  void FinishFlush(Session& session);
  void Enqueue(Session& session, const NetResponse& response);
  void EnqueueError(Session& session, const NetRequest& request,
                    NetStatus status, const std::string& message);
  void FillStats(ingest::IngestPipeline& pipeline, const StreamEntry& entry,
                 StreamStatsPayload* out);

  void ServeHttp(Session& session);
  void RecordLatency(NetOp op, uint64_t start_ns);

  ServerOptions options_;
  uint64_t next_session_id_ = 1;
  std::vector<char> read_buf_;  // per-pump read scratch (single-threaded)
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::map<std::string, StreamEntry> streams_;

  // Registry + counters guarded by metrics_mutex_ (requests are the update
  // granularity; MetricsText may race with the pump thread otherwise).
  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry registry_;
};

}  // namespace streamq::net

#endif  // STREAMQ_NET_SERVER_H_
