#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace streamq::net {
namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool PollOne(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

bool ResolveIpv4(const std::string& host, struct in_addr* out) {
  if (host.empty() || host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), out) == 1;
}

}  // namespace

SocketConn::SocketConn(int fd) : fd_(fd) {
  SetNonBlocking(fd_);
  SetNoDelay(fd_);
}

SocketConn::~SocketConn() { Close(); }

int SocketConn::Read(char* buf, size_t n) {
  if (fd_ < 0 || n == 0) return -1;
  for (;;) {
    const ssize_t rc = ::recv(fd_, buf, n, 0);
    if (rc > 0) return static_cast<int>(rc);
    if (rc == 0) return -1;  // orderly EOF: terminal for this protocol
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

int SocketConn::Write(const char* buf, size_t n) {
  if (fd_ < 0 || n == 0) return -1;
  for (;;) {
    const ssize_t rc = ::send(fd_, buf, n, MSG_NOSIGNAL);
    if (rc > 0) return static_cast<int>(rc);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

void SocketConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketConn::WaitReadable(int timeout_ms) {
  return fd_ >= 0 && PollOne(fd_, POLLIN, timeout_ms);
}

bool SocketConn::WaitWritable(int timeout_ms) {
  return fd_ >= 0 && PollOne(fd_, POLLOUT, timeout_ms);
}

int TcpListen(const std::string& bind_addr, uint16_t port,
              uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ResolveIpv4(bind_addr, &addr.sin_addr)) {
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 128) != 0 || !SetNonBlocking(fd)) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
        0) {
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int TcpConnect(const std::string& host, uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ResolveIpv4(host, &addr.sin_addr) || !SetNonBlocking(fd)) {
    ::close(fd);
    return -1;
  }
  const int rc =
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    if (!PollOne(fd, POLLOUT, timeout_ms)) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

std::unique_ptr<SocketConn> TcpAccept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<SocketConn>(fd);
    if (errno == EINTR) continue;
    return nullptr;
  }
}

}  // namespace streamq::net
