#include "net/reactor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <map>
#include <vector>

#include "net/socket.h"

namespace streamq::net {
namespace {

// epoll user-data keys for the two non-session fds.
constexpr uint64_t kListenKey = 0;
constexpr uint64_t kWakeKey = ~uint64_t{0};

bool MakeNonBlockingPipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFL, 0);
    if (flags < 0 || ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK) != 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      fds[0] = fds[1] = -1;
      return false;
    }
  }
  return true;
}

}  // namespace

Reactor::Reactor(StreamqServer* server, const ReactorOptions& options)
    : server_(server), options_(options) {}

std::unique_ptr<Reactor> Reactor::Create(StreamqServer* server,
                                         const ReactorOptions& options) {
  std::unique_ptr<Reactor> reactor(new Reactor(server, options));
  if (!reactor->Init()) return nullptr;
  return reactor;
}

bool Reactor::Init() {
  listen_fd_ = TcpListen(options_.bind_addr, options_.port, &port_);
  if (listen_fd_ < 0) return false;
  if (!MakeNonBlockingPipe(wake_pipe_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
#ifdef __linux__
  if (!options_.force_poll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ >= 0) {
      struct epoll_event ev;
      ev.events = EPOLLIN;  // level-triggered
      ev.data.u64 = kListenKey;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
      ev.data.u64 = kWakeKey;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);
    }
  }
#endif
  return true;
}

Reactor::~Reactor() {
  Shutdown();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Reactor::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &b, 1);
  }
}

void Reactor::AcceptPending() {
  for (;;) {
    std::unique_ptr<SocketConn> conn = TcpAccept(listen_fd_);
    if (conn == nullptr) break;
    const uint64_t id = server_->AddConn(std::move(conn));
    UpdateInterest(id);
  }
}

void Reactor::UpdateInterest(uint64_t session_id) {
#ifdef __linux__
  if (epoll_fd_ < 0) return;
  const int fd = server_->SessionFd(session_id);
  if (fd < 0) {
    // Session gone; closing the fd removed it from the epoll set.
    interest_.erase(session_id);
    return;
  }
  uint32_t events = 0;
  if (server_->WantsRead(session_id)) events |= EPOLLIN;
  if (server_->WantsWrite(session_id)) events |= EPOLLOUT;
  auto it = interest_.find(session_id);
  if (it != interest_.end() && it->second == events) return;
  struct epoll_event ev;
  ev.events = events;
  ev.data.u64 = session_id;
  const int op = it == interest_.end() ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) == 0) {
    interest_[session_id] = events;
  }
#else
  (void)session_id;
#endif
}

void Reactor::PumpReady(const std::vector<uint64_t>& ready) {
  for (const uint64_t id : ready) server_->Pump(id);
  // Parked sessions have no fd event to fire; retry them every iteration.
  if (server_->HasParkedWork()) server_->PumpAll();
  // Interest may have changed for ANY session (a DROP unparks bystanders,
  // a response enqueue flips WantsWrite), so re-express all of it.
  for (const uint64_t id : server_->SessionIds()) UpdateInterest(id);
#ifdef __linux__
  for (auto it = interest_.begin(); it != interest_.end();) {
    if (server_->SessionFd(it->first) < 0) {
      it = interest_.erase(it);
    } else {
      ++it;
    }
  }
#endif
}

bool Reactor::RunOnce(int timeout_ms) {
  if (shutdown_.load(std::memory_order_acquire)) return false;
  if (server_->HasParkedWork()) {
    timeout_ms = std::min(timeout_ms, options_.parked_timeout_ms);
  }

#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    std::vector<uint64_t> ready;
    bool accept = false;
    for (int i = 0; i < n; ++i) {
      const uint64_t key = events[i].data.u64;
      if (key == kListenKey) {
        accept = true;
      } else if (key == kWakeKey) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      } else {
        ready.push_back(key);
      }
    }
    if (accept) AcceptPending();
    PumpReady(ready);
    return !shutdown_.load(std::memory_order_acquire);
  }
#endif

  // Portable poll() backend: rebuild the set every iteration.
  std::vector<struct pollfd> fds;
  std::vector<uint64_t> ids;
  fds.push_back({wake_pipe_[0], POLLIN, 0});
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const uint64_t id : server_->SessionIds()) {
    const int fd = server_->SessionFd(id);
    if (fd < 0) continue;
    short events = 0;
    if (server_->WantsRead(id)) events |= POLLIN;
    if (server_->WantsWrite(id)) events |= POLLOUT;
    fds.push_back({fd, events, 0});
    ids.push_back(id);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  std::vector<uint64_t> ready;
  if (n > 0) {
    if (fds[0].revents != 0) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[1].revents != 0) AcceptPending();
    for (size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents != 0) ready.push_back(ids[i - 2]);
    }
  }
  PumpReady(ready);
  return !shutdown_.load(std::memory_order_acquire);
}

void Reactor::Run() {
  while (RunOnce(options_.idle_timeout_ms)) {
  }
}

}  // namespace streamq::net
