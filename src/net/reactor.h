// Single-threaded TCP event loop driving a StreamqServer: accepts
// connections on one listening socket and pumps their sessions on
// readiness. Level-triggered epoll on Linux, a poll() fallback everywhere
// else (and on request, for testing the portable path); both express the
// same interest sets -- WantsRead/WantsWrite from the server -- so the
// backpressure semantics (a parked session is simply absent from the read
// set) are identical.
//
// Parked work (a session waiting for an ingest ring to drain or a FLUSH
// mark to advance) has no fd to fire; while any exists the loop polls with
// a short timeout and re-pumps, so rings drain promptly without a busy
// spin when idle.
//
// Shutdown() is thread-safe: it writes to a self-pipe registered in the
// interest set, waking the loop immediately.

#ifndef STREAMQ_NET_REACTOR_H_
#define STREAMQ_NET_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/server.h"

namespace streamq::net {

struct ReactorOptions {
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral (the bound port is reported by port()).
  uint16_t port = 0;
  /// Use the portable poll() backend even where epoll is available.
  bool force_poll = false;
  /// Poll timeout while sessions have parked work (ring-drain retry
  /// cadence) and while fully idle.
  int parked_timeout_ms = 1;
  int idle_timeout_ms = 50;
};

class Reactor {
 public:
  /// Binds and listens; nullptr when the socket cannot be set up. `server`
  /// is unowned and must outlive the reactor; the reactor thread becomes
  /// the server's (single) pump thread.
  static std::unique_ptr<Reactor> Create(StreamqServer* server,
                                         const ReactorOptions& options);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  uint16_t port() const { return port_; }
  bool using_epoll() const { return epoll_fd_ >= 0; }

  /// Runs until Shutdown(). Call from the thread that owns the server.
  void Run();

  /// One accept+poll+pump iteration (tests drive the loop manually).
  /// Returns false once Shutdown() has been requested.
  bool RunOnce(int timeout_ms);

  /// Requests Run() to return; safe from any thread, idempotent.
  void Shutdown();

 private:
  Reactor(StreamqServer* server, const ReactorOptions& options);
  bool Init();
  void AcceptPending();
  /// (Re)expresses one session's interest to epoll; no-op on poll backend.
  void UpdateInterest(uint64_t session_id);
  void PumpReady(const std::vector<uint64_t>& ready);

  StreamqServer* server_;
  ReactorOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;  // -1 = poll backend
  int wake_pipe_[2] = {-1, -1};
  /// Cached epoll interest per session (MOD calls only on change); unused
  /// by the poll backend, which rebuilds its set every iteration.
  std::map<uint64_t, uint32_t> interest_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace streamq::net

#endif  // STREAMQ_NET_REACTOR_H_
