// Wire protocol of the streamq network service (DESIGN.md section 15).
//
// Every message -- request or response -- is one CRC32C-framed snapshot
// (util/serde.h): the 20-byte header  magic | version | type | payload_len
// | crc32c(payload)  doubles as the length prefix, so a byte stream is
// parsed frame by frame with the same corruption guarantees as every
// other framed snapshot in the repo:
//
//  * a flipped byte in the PAYLOAD fails the CRC; the frame boundary is
//    still exact, so the server answers a clean error response and the
//    NEXT pipelined request parses untouched (no desync);
//  * a flipped byte in the HEADER fails the magic/version/type/length
//    validation; the boundary itself is now untrustworthy, so the
//    connection is closed (the only safe resynchronisation of a byte
//    stream with a corrupt length);
//  * a truncated frame simply never completes and dies with the
//    connection.
//
// Requests carry a client-assigned id echoed verbatim in the response.
// Responses come back in request order per connection (the server is a
// sequential state machine per session), so the id is a cross-check and a
// pipelining convenience, not a reordering mechanism.
//
// The payload encoding is the bounds-checked SerdeReader/Writer; decode
// requires an exact parse (reader.Done()), so trailing garbage inside a
// CRC-valid payload is rejected, mirroring the snapshot deserializers.

#ifndef STREAMQ_NET_PROTOCOL_H_
#define STREAMQ_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/serde.h"

namespace streamq::net {

/// Request opcodes. Values are wire format -- append only.
enum class NetOp : uint8_t {
  kCreate = 1,       ///< create a stream (algorithm + params)
  kDrop = 2,         ///< drop a stream (and its durable state)
  kInsert = 3,       ///< one update (value, delta)
  kBatchInsert = 4,  ///< a span of values (delta +1), one frame -> one batch
  kQuery = 5,        ///< phi-quantile of a stream
  kRank = 6,         ///< estimated rank of a value
  kFlush = 7,        ///< durability barrier: ack = everything sent is safe
  kStats = 8,        ///< per-stream introspection
};

/// Response status. kOk aside, statuses are terminal for the REQUEST, not
/// the connection: the session keeps serving subsequent frames.
enum class NetStatus : uint16_t {
  kOk = 0,
  kBadRequest = 1,     ///< malformed payload / invalid argument
  kUnknownStream = 2,  ///< no stream by that name
  kStreamExists = 3,   ///< CREATE of a name already being served
  kUnsupported = 4,    ///< algorithm not pipeline-capable, durability off...
  kWalDead = 5,        ///< FLUSH could not reach durability (WAL failed)
  kTooManyStreams = 6,
  kInternal = 7,
};

const char* NetOpName(NetOp op);
const char* NetStatusName(NetStatus status);

/// CREATE parameters (a SketchConfig subset plus server-side knobs).
struct CreateParams {
  std::string algorithm = "Random";  ///< AlgorithmName() spelling
  double eps = 0.001;
  uint32_t log_universe = 32;
  uint32_t depth = 7;
  uint64_t seed = 1;
  uint32_t shards = 0;   ///< 0 = server default
  bool durable = false;  ///< WAL + checkpoints under the server's data dir
};

/// One decoded request. Fields beyond (id, op, stream) are op-specific;
/// unused ones are ignored by Encode and zero after Decode.
struct NetRequest {
  uint64_t id = 0;
  NetOp op = NetOp::kStats;
  std::string stream;
  CreateParams create;           // kCreate
  uint64_t value = 0;            // kInsert / kRank
  int32_t delta = +1;            // kInsert (negative = turnstile delete)
  double phi = 0.5;              // kQuery
  std::vector<uint64_t> values;  // kBatchInsert
};

/// Per-stream introspection payload (kStats response; a subset rides on
/// other acks where noted).
struct StreamStatsPayload {
  uint64_t count = 0;         ///< summarised elements in the published view
  uint64_t pushed = 0;        ///< updates accepted this incarnation
  uint64_t processed = 0;     ///< updates applied to shard sketches
  uint64_t durable_seq = 0;   ///< ack mark (0 = non-durable stream)
  uint64_t resume_seq = 1;    ///< producer restart mark
  uint64_t memory_bytes = 0;  ///< pipeline peak memory accounting
  uint32_t shards = 0;
  bool durable = false;
  bool recovered = false;  ///< this incarnation recovered prior state
  std::string algorithm;
};

/// One decoded response. `value` is the op's principal result: the
/// quantile (kQuery), the accepted-update count (kInsert/kBatchInsert),
/// the durable ack mark (kFlush). `rank` only for kRank. `stats` only for
/// kStats and kCreate (where it reports the recovery outcome).
struct NetResponse {
  uint64_t id = 0;
  NetOp op = NetOp::kStats;
  NetStatus status = NetStatus::kOk;
  std::string message;  ///< human-readable error detail ("" on kOk)
  uint64_t value = 0;
  int64_t rank = 0;
  StreamStatsPayload stats;

  bool ok() const { return status == NetStatus::kOk; }
};

/// Hard ceiling on one frame (header + payload). A header advertising a
/// larger payload is treated as corruption (connection close), bounding
/// per-connection memory no matter what arrives on the wire. Large enough
/// for a 1M-element BATCH_INSERT.
inline constexpr size_t kMaxFrameBytes = size_t{16} << 20;

/// Serialized frame size of a BATCH_INSERT of n values (for client-side
/// write-window budgeting).
size_t BatchInsertFrameBytes(size_t n_values, size_t stream_name_len);

std::string EncodeRequest(const NetRequest& request);
std::string EncodeResponse(const NetResponse& response);

/// Full frame validation (magic/version/type/length/CRC32C) plus an exact
/// payload parse. False -- leaving *out untouched -- on any corruption.
bool DecodeRequest(const std::string& frame, NetRequest* out);
bool DecodeResponse(const std::string& frame, NetResponse* out);

// ---------------------------------------------------------------------------
// Stream-to-frame assembly
// ---------------------------------------------------------------------------

/// What FrameBuffer::Next found at the head of the byte stream.
enum class FrameScan {
  kNeedMore,  ///< no complete frame buffered yet
  kFrame,     ///< *frame holds one complete frame (header included)
  kBad,       ///< header invalid: stream cannot be resynchronised
};

/// Accumulates connection bytes and carves them into frames. Header
/// validation (magic, version, a net type tag, payload_len <= max) happens
/// here -- before payload bytes are even retained -- so a corrupt length
/// can never grow the buffer past max_frame_bytes + one read chunk.
/// Payload CRC validation is Decode*'s job (a CRC failure still has an
/// exact boundary and is recoverable; see the header comment).
class FrameBuffer {
 public:
  explicit FrameBuffer(size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete frame into *frame (consumed from the
  /// buffer). kBad poisons the buffer: every later call returns kBad.
  FrameScan Next(std::string* frame);

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  size_t max_frame_bytes_;
  bool poisoned_ = false;
};

}  // namespace streamq::net

#endif  // STREAMQ_NET_PROTOCOL_H_
