#include "net/server.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "durability/storage.h"
#include "obs/trace_export.h"
#include "quantile/factory.h"

namespace streamq::net {
namespace {

constexpr size_t kMaxStreamName = 128;
constexpr size_t kMaxHttpRequest = size_t{16} << 10;

bool ValidStreamName(const std::string& name) {
  if (name.empty() || name.size() > kMaxStreamName) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

/// First bytes of an HTTP GET, the only verb the scrape endpoint serves.
/// Cannot collide with a binary frame: the frame magic's wire bytes are
/// "RFQS".
bool LooksLikeHttp(const std::string& head) {
  return head.size() >= 4 && head.compare(0, 4, "GET ") == 0;
}

}  // namespace

StreamqServer::StreamqServer(ServerOptions options)
    : options_(std::move(options)) {
  if (options_.read_chunk == 0) options_.read_chunk = size_t{64} << 10;
  if (options_.max_frame_bytes < kFrameHeaderBytes + 64) {
    options_.max_frame_bytes = kFrameHeaderBytes + 64;
  }
  if (options_.default_shards < 1) options_.default_shards = 1;
}

StreamqServer::~StreamqServer() = default;

uint64_t StreamqServer::AddConn(std::unique_ptr<Conn> conn) {
  const uint64_t id = next_session_id_++;
  sessions_.emplace(
      id, std::make_unique<Session>(std::move(conn), options_.max_frame_bytes));
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  registry_.GetCounter("net.connections.accepted").Inc();
  registry_.GetGauge("net.connections.open").Add(1);
  return id;
}

PumpResult StreamqServer::Pump(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return PumpResult::kClosed;
  const PumpResult result = PumpSession(session_id, *it->second);
  if (result == PumpResult::kClosed) {
    it->second->conn->Close();
    sessions_.erase(it);
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.GetCounter("net.connections.closed").Inc();
    registry_.GetGauge("net.connections.open").Add(-1);
  }
  return result;
}

size_t StreamqServer::PumpAll() {
  std::vector<uint64_t> ids = SessionIds();
  size_t progressed = 0;
  for (const uint64_t id : ids) {
    if (Pump(id) != PumpResult::kIdle) ++progressed;
  }
  return progressed;
}

PumpResult StreamqServer::PumpSession(uint64_t /*id*/, Session& session) {
  bool progressed = false;

  if (session.parked != Parked::kNone && RetryParked(session)) {
    progressed = true;
  }

  const bool read_gated = session.closing ||
                          session.parked != Parked::kNone ||
                          session.queued_bytes >= options_.write_queue_limit;
  if (!read_gated) {
    if (!ReadSome(session, &progressed)) return PumpResult::kClosed;
    if (!ProcessFrames(session, &progressed)) return PumpResult::kClosed;
  } else if (!session.closing) {
    // Backpressure in action: bytes may be waiting but this session is not
    // allowed to grow its buffers. Observable, since a stuck stream shows
    // up here first.
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.GetCounter("net.deferred_reads").Inc();
  }

  if (!WriteSome(session, &progressed)) return PumpResult::kClosed;
  if (session.closing && session.outq.empty()) return PumpResult::kClosed;
  return progressed ? PumpResult::kProgress : PumpResult::kIdle;
}

bool StreamqServer::ReadSome(Session& session, bool* progressed) {
  if (read_buf_.size() < options_.read_chunk) {
    read_buf_.resize(options_.read_chunk);
  }
  const int n = session.conn->Read(read_buf_.data(), options_.read_chunk);
  if (n < 0) return false;  // peer gone
  if (n == 0) return true;  // nothing readable now
  *progressed = true;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.GetCounter("net.bytes_read").Add(static_cast<uint64_t>(n));
  }
  if (!session.probed) {
    session.http_buf.append(read_buf_.data(), static_cast<size_t>(n));
    if (session.http_buf.size() < 4) return true;
    session.probed = true;
    session.http = LooksLikeHttp(session.http_buf);
    if (!session.http) {
      session.inbuf.Append(session.http_buf.data(), session.http_buf.size());
      session.http_buf.clear();
      session.http_buf.shrink_to_fit();
    }
    return true;
  }
  if (session.http) {
    session.http_buf.append(read_buf_.data(), static_cast<size_t>(n));
  } else {
    session.inbuf.Append(read_buf_.data(), static_cast<size_t>(n));
  }
  return true;
}

bool StreamqServer::ProcessFrames(Session& session, bool* progressed) {
  if (!session.probed) return true;
  if (session.http) {
    if (session.http_buf.find("\r\n\r\n") != std::string::npos) {
      ServeHttp(session);
      *progressed = true;
    } else if (session.http_buf.size() > kMaxHttpRequest) {
      return false;  // header flood: drop the connection
    }
    return true;
  }
  std::string frame;
  while (session.parked == Parked::kNone && !session.closing &&
         session.queued_bytes < options_.write_queue_limit) {
    const FrameScan scan = session.inbuf.Next(&frame);
    if (scan == FrameScan::kNeedMore) break;
    if (scan == FrameScan::kBad) {
      // Header corruption: the length prefix is untrustworthy, so the
      // stream cannot be re-synchronised. Close.
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      registry_.GetCounter("net.bad_frames").Inc();
      return false;
    }
    *progressed = true;
    NetRequest request;
    if (!DecodeRequest(frame, &request)) {
      // Payload corruption (CRC) or a malformed but CRC-valid payload: the
      // frame boundary was exact, so answer an error and keep serving the
      // pipelined frames behind it.
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.GetCounter("net.bad_frames").Inc();
      }
      NetResponse resp;
      resp.status = NetStatus::kBadRequest;
      resp.message = "malformed frame";
      Enqueue(session, resp);
      continue;
    }
    Execute(session, request);
  }
  return true;
}

bool StreamqServer::WriteSome(Session& session, bool* progressed) {
  while (!session.outq.empty()) {
    const std::string& head = session.outq.front();
    const int n = session.conn->Write(head.data() + session.out_off,
                                      head.size() - session.out_off);
    if (n < 0) return false;
    if (n == 0) break;  // transport backpressure; retry on writability
    *progressed = true;
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      registry_.GetCounter("net.bytes_written").Add(static_cast<uint64_t>(n));
    }
    session.out_off += static_cast<size_t>(n);
    session.queued_bytes -= static_cast<size_t>(n);
    if (session.out_off == head.size()) {
      session.outq.pop_front();
      session.out_off = 0;
    }
  }
  return true;
}

bool StreamqServer::WantsRead(uint64_t session_id) const {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return false;
  const Session& s = *it->second;
  return !s.closing && s.parked == Parked::kNone &&
         s.queued_bytes < options_.write_queue_limit;
}

bool StreamqServer::WantsWrite(uint64_t session_id) const {
  auto it = sessions_.find(session_id);
  return it != sessions_.end() && !it->second->outq.empty();
}

bool StreamqServer::HasParkedWork() const {
  for (const auto& [id, session] : sessions_) {
    if (session->parked != Parked::kNone) return true;
  }
  return false;
}

std::vector<uint64_t> StreamqServer::SessionIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

int StreamqServer::SessionFd(uint64_t session_id) const {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? -1 : it->second->conn->fd();
}

ingest::IngestPipeline* StreamqServer::FindStream(const std::string& name) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second.pipeline.get();
}

// ---------------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------------

void StreamqServer::Execute(Session& session, const NetRequest& request) {
  const uint64_t start_ns = obs::TickClock::NowNanos();
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_
        .GetCounter(std::string("net.requests.") + NetOpName(request.op))
        .Inc();
  }

  if (request.op == NetOp::kCreate) {
    Enqueue(session, DoCreate(request));
    RecordLatency(request.op, start_ns);
    return;
  }
  if (request.op == NetOp::kDrop) {
    Enqueue(session, DoDrop(request));
    RecordLatency(request.op, start_ns);
    return;
  }

  ingest::IngestPipeline* pipeline = FindStream(request.stream);
  if (pipeline == nullptr) {
    EnqueueError(session, request, NetStatus::kUnknownStream,
                 "no such stream");
    RecordLatency(request.op, start_ns);
    return;
  }

  NetResponse resp;
  resp.id = request.id;
  resp.op = request.op;
  switch (request.op) {
    case NetOp::kInsert: {
      if (request.delta == 0) {
        EnqueueError(session, request, NetStatus::kBadRequest, "delta == 0");
        break;
      }
      const Update update{request.value, request.delta};
      if (!pipeline->TryPush(update)) {
        session.parked = Parked::kInsert;
        session.parked_req = request;
        session.parked_pipeline = pipeline;
        session.parked_start_ns = start_ns;
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.GetCounter("net.parks").Inc();
        return;  // response comes when the ring accepts it
      }
      resp.value = 1;
      Enqueue(session, resp);
      break;
    }
    case NetOp::kBatchInsert: {
      std::vector<Update> updates;
      updates.reserve(request.values.size());
      for (const uint64_t v : request.values) updates.push_back(Update{v, +1});
      const size_t accepted =
          pipeline->TryPushBatch(std::span<const Update>(updates));
      if (accepted < updates.size()) {
        session.parked = Parked::kBatch;
        session.parked_req = request;
        session.parked_req.values.clear();  // batch lives in parked_updates
        session.parked_updates = std::move(updates);
        session.parked_off = accepted;
        session.parked_pipeline = pipeline;
        session.parked_start_ns = start_ns;
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.GetCounter("net.parks").Inc();
        return;
      }
      resp.value = updates.size();
      Enqueue(session, resp);
      break;
    }
    case NetOp::kQuery: {
      if (!(request.phi >= 0.0 && request.phi <= 1.0)) {  // NaN-safe
        EnqueueError(session, request, NetStatus::kBadRequest,
                     "phi outside [0, 1]");
        break;
      }
      resp.value = pipeline->Query(request.phi);
      Enqueue(session, resp);
      break;
    }
    case NetOp::kRank: {
      resp.rank = pipeline->Rank(request.value);
      Enqueue(session, resp);
      break;
    }
    case NetOp::kFlush: {
      session.parked = Parked::kFlush;
      session.parked_req = request;
      session.parked_pipeline = pipeline;
      session.parked_start_ns = start_ns;
      if (!RetryParked(session)) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        registry_.GetCounter("net.parks").Inc();
      }
      return;
    }
    case NetOp::kStats: {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      auto it = streams_.find(request.stream);
      if (it == streams_.end()) {
        resp.status = NetStatus::kUnknownStream;
        resp.message = "no such stream";
      } else {
        FillStats(*pipeline, it->second, &resp.stats);
        resp.value = resp.stats.count;
      }
      Enqueue(session, resp);
      break;
    }
    default:
      EnqueueError(session, request, NetStatus::kBadRequest, "bad opcode");
      break;
  }
  RecordLatency(request.op, start_ns);
}

bool StreamqServer::RetryParked(Session& session) {
  ingest::IngestPipeline* pipeline = session.parked_pipeline;
  NetResponse resp;
  resp.id = session.parked_req.id;
  resp.op = session.parked_req.op;
  switch (session.parked) {
    case Parked::kInsert: {
      const Update update{session.parked_req.value, session.parked_req.delta};
      if (!pipeline->TryPush(update)) return false;
      resp.value = 1;
      break;
    }
    case Parked::kBatch: {
      const std::span<const Update> rest(
          session.parked_updates.data() + session.parked_off,
          session.parked_updates.size() - session.parked_off);
      session.parked_off += pipeline->TryPushBatch(rest);
      if (session.parked_off < session.parked_updates.size()) return false;
      resp.value = session.parked_updates.size();
      session.parked_updates.clear();
      session.parked_updates.shrink_to_fit();
      session.parked_off = 0;
      break;
    }
    case Parked::kFlush: {
      if (pipeline->ProcessedCount() < pipeline->PushedCount()) return false;
      FinishFlush(session);
      return true;
    }
    case Parked::kNone:
      return false;
  }
  session.parked = Parked::kNone;
  session.parked_pipeline = nullptr;
  Enqueue(session, resp);
  RecordLatency(resp.op, session.parked_start_ns);
  return true;
}

void StreamqServer::FinishFlush(Session& session) {
  ingest::IngestPipeline* pipeline = session.parked_pipeline;
  // The rings are drained (RetryParked's precondition), so this blocks only
  // for the WAL acknowledgement mark to advance -- idle workers sync
  // eagerly -- or for the WAL to be declared dead.
  pipeline->Flush();
  NetResponse resp;
  resp.id = session.parked_req.id;
  resp.op = NetOp::kFlush;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    auto it = streams_.find(session.parked_req.stream);
    durable = it != streams_.end() && it->second.params.durable;
  }
  const uint64_t last = pipeline->LastPushedSeq();
  const uint64_t mark = pipeline->DurableSeq();
  if (durable && mark < last) {
    resp.status = NetStatus::kWalDead;
    resp.message = "wal failed: updates past the mark may not survive";
    resp.value = mark;
  } else {
    resp.value = durable ? mark : last;
  }
  session.parked = Parked::kNone;
  session.parked_pipeline = nullptr;
  Enqueue(session, resp);
  RecordLatency(NetOp::kFlush, session.parked_start_ns);
}

NetResponse StreamqServer::DoCreate(const NetRequest& request) {
  NetResponse resp;
  resp.id = request.id;
  resp.op = NetOp::kCreate;
  const CreateParams& p = request.create;
  Algorithm algorithm;
  if (!ValidStreamName(request.stream)) {
    resp.status = NetStatus::kBadRequest;
    resp.message = "invalid stream name";
    return resp;
  }
  if (!ParseAlgorithm(p.algorithm, &algorithm)) {
    resp.status = NetStatus::kBadRequest;
    resp.message = "unknown algorithm: " + p.algorithm;
    return resp;
  }
  if (!(p.eps > 0.0 && p.eps < 1.0) || p.log_universe < 1 ||
      p.log_universe > 64 || p.depth < 1 || p.depth > 64 || p.shards > 64) {
    resp.status = NetStatus::kBadRequest;
    resp.message = "parameter out of range";
    return resp;
  }
  if (p.durable && options_.storage == nullptr) {
    resp.status = NetStatus::kUnsupported;
    resp.message = "server has no storage backend";
    return resp;
  }

  std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (streams_.count(request.stream) != 0) {
    resp.status = NetStatus::kStreamExists;
    resp.message = "stream exists";
    return resp;
  }
  if (streams_.size() >= options_.max_streams) {
    resp.status = NetStatus::kTooManyStreams;
    resp.message = "stream limit reached";
    return resp;
  }

  ingest::IngestOptions opts;
  opts.sketch.algorithm = algorithm;
  opts.sketch.eps = p.eps;
  opts.sketch.log_universe = static_cast<int>(p.log_universe);
  opts.sketch.depth = static_cast<int>(p.depth);
  opts.sketch.seed = p.seed;
  opts.shards =
      p.shards == 0 ? options_.default_shards : static_cast<int>(p.shards);
  opts.ring_capacity = options_.ring_capacity;
  opts.durability.enabled = p.durable;
  opts.durability.storage = options_.storage;
  opts.durability.dir = options_.data_dir + "/" + request.stream;
  opts.durability.sync_interval = options_.wal_sync_interval;

  StreamEntry entry;
  entry.pipeline = ingest::IngestPipeline::Create(opts);
  if (entry.pipeline == nullptr) {
    // The factory-level causes were validated above; what is left is the
    // pipeline contract (algorithm not mergeable/clonable) or a durable
    // init failure.
    resp.status = NetStatus::kUnsupported;
    resp.message = "algorithm cannot back a pipeline (or durable init failed)";
    return resp;
  }
  entry.params = p;
  entry.dir = opts.durability.dir;
  FillStats(*entry.pipeline, entry, &resp.stats);
  streams_.emplace(request.stream, std::move(entry));
  return resp;
}

NetResponse StreamqServer::DoDrop(const NetRequest& request) {
  NetResponse resp;
  resp.id = request.id;
  resp.op = NetOp::kDrop;

  ingest::IngestPipeline* doomed = nullptr;
  std::string dir;
  bool durable = false;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    auto it = streams_.find(request.stream);
    if (it == streams_.end()) {
      resp.status = NetStatus::kUnknownStream;
      resp.message = "no such stream";
      return resp;
    }
    doomed = it->second.pipeline.get();
    dir = it->second.dir;
    durable = it->second.params.durable;
  }

  // Any session parked on this pipeline would be left holding a dangling
  // pointer; fail its operation first.
  for (auto& [id, session] : sessions_) {
    if (session->parked_pipeline != doomed) continue;
    EnqueueError(*session, session->parked_req, NetStatus::kUnknownStream,
                 "stream dropped during operation");
    RecordLatency(session->parked_req.op, session->parked_start_ns);
    session->parked = Parked::kNone;
    session->parked_pipeline = nullptr;
    session->parked_updates.clear();
    session->parked_off = 0;
  }

  std::unique_ptr<ingest::IngestPipeline> pipeline;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    auto it = streams_.find(request.stream);
    pipeline = std::move(it->second.pipeline);
    streams_.erase(it);
  }
  pipeline.reset();  // joins the workers outside the lock

  if (durable && options_.storage != nullptr) {
    for (const char* sub : {"/wal", "/ckpt"}) {
      const std::string d = dir + sub;
      for (const std::string& name : options_.storage->List(d)) {
        options_.storage->Delete(d + "/" + name);
      }
    }
  }
  return resp;
}

void StreamqServer::FillStats(ingest::IngestPipeline& pipeline,
                              const StreamEntry& entry,
                              StreamStatsPayload* out) {
  uint64_t count = 0;
  pipeline.CloneView(&count);  // rare op; the clone itself is discarded
  out->count = count;
  out->pushed = pipeline.PushedCount();
  out->processed = pipeline.ProcessedCount();
  out->durable_seq = pipeline.DurableSeq();
  out->resume_seq = pipeline.ResumeSeq();
  out->memory_bytes = pipeline.PeakMemoryBytes();
  out->shards = static_cast<uint32_t>(pipeline.shard_count());
  out->durable = entry.params.durable;
  out->recovered = pipeline.recovery().recovered;
  out->algorithm = entry.params.algorithm;
}

void StreamqServer::Enqueue(Session& session, const NetResponse& response) {
  if (!response.ok() && response.status != NetStatus::kWalDead) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.GetCounter("net.errors").Inc();
  }
  std::string frame = EncodeResponse(response);
  session.queued_bytes += frame.size();
  session.outq.push_back(std::move(frame));
}

void StreamqServer::EnqueueError(Session& session, const NetRequest& request,
                                 NetStatus status,
                                 const std::string& message) {
  NetResponse resp;
  resp.id = request.id;
  resp.op = request.op;
  resp.status = status;
  resp.message = message;
  Enqueue(session, resp);
}

void StreamqServer::RecordLatency(NetOp op, uint64_t start_ns) {
  const uint64_t now = obs::TickClock::NowNanos();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  registry_.GetHistogram(std::string("net.latency_ns.") + NetOpName(op))
      .Record(now > start_ns ? now - start_ns : 0);
}

// ---------------------------------------------------------------------------
// HTTP scrape endpoint
// ---------------------------------------------------------------------------

void StreamqServer::ServeHttp(Session& session) {
  // Request line: "GET <path> HTTP/1.x". http_buf starts with "GET ".
  std::string path = "/";
  const size_t line_end = session.http_buf.find("\r\n");
  if (line_end != std::string::npos) {
    const size_t path_start = 4;
    const size_t path_end = session.http_buf.find(' ', path_start);
    if (path_end != std::string::npos && path_end < line_end) {
      path = session.http_buf.substr(path_start, path_end - path_start);
    }
  }
  std::string status = "404 Not Found";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "not found\n";
  if (path == "/metrics") {
    status = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = MetricsText();
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    registry_.GetCounter("net.http_requests").Inc();
  }
  std::string head = "HTTP/1.0 " + status +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  session.queued_bytes += head.size() + body.size();
  session.outq.push_back(std::move(head));
  session.outq.push_back(std::move(body));
  session.http_buf.clear();
  session.closing = true;
}

std::string StreamqServer::MetricsText() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  registry_.GetGauge("net.streams.open")
      .Set(static_cast<int64_t>(streams_.size()));
  for (auto& [name, entry] : streams_) {
    entry.pipeline->PublishMetrics(registry_, "net.stream." + name);
  }
  return obs::ExportPrometheusText(registry_);
}

}  // namespace streamq::net
