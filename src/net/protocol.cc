#include "net/protocol.h"

#include <cstring>

namespace streamq::net {
namespace {

// Request payload field layout (after the generic id/op/stream prefix) is
// op-specific; see Encode/DecodeRequest. Keep encode and decode in one
// file so the switch arms stay mirror images.

void EncodeStats(SerdeWriter& w, const StreamStatsPayload& s) {
  w.U64(s.count);
  w.U64(s.pushed);
  w.U64(s.processed);
  w.U64(s.durable_seq);
  w.U64(s.resume_seq);
  w.U64(s.memory_bytes);
  w.U32(s.shards);
  w.U32((s.durable ? 1u : 0u) | (s.recovered ? 2u : 0u));
  w.Bytes(s.algorithm);
}

bool DecodeStats(SerdeReader& r, StreamStatsPayload* s) {
  uint32_t flags = 0;
  if (!r.U64(&s->count) || !r.U64(&s->pushed) || !r.U64(&s->processed) ||
      !r.U64(&s->durable_seq) || !r.U64(&s->resume_seq) ||
      !r.U64(&s->memory_bytes) || !r.U32(&s->shards) || !r.U32(&flags) ||
      !r.Bytes(&s->algorithm)) {
    return false;
  }
  s->durable = (flags & 1u) != 0;
  s->recovered = (flags & 2u) != 0;
  return true;
}

bool ValidOp(uint32_t op) {
  return op >= static_cast<uint32_t>(NetOp::kCreate) &&
         op <= static_cast<uint32_t>(NetOp::kStats);
}

}  // namespace

const char* NetOpName(NetOp op) {
  switch (op) {
    case NetOp::kCreate: return "CREATE";
    case NetOp::kDrop: return "DROP";
    case NetOp::kInsert: return "INSERT";
    case NetOp::kBatchInsert: return "BATCH_INSERT";
    case NetOp::kQuery: return "QUERY";
    case NetOp::kRank: return "RANK";
    case NetOp::kFlush: return "FLUSH";
    case NetOp::kStats: return "STATS";
  }
  return "unknown";
}

const char* NetStatusName(NetStatus status) {
  switch (status) {
    case NetStatus::kOk: return "OK";
    case NetStatus::kBadRequest: return "BAD_REQUEST";
    case NetStatus::kUnknownStream: return "UNKNOWN_STREAM";
    case NetStatus::kStreamExists: return "STREAM_EXISTS";
    case NetStatus::kUnsupported: return "UNSUPPORTED";
    case NetStatus::kWalDead: return "WAL_DEAD";
    case NetStatus::kTooManyStreams: return "TOO_MANY_STREAMS";
    case NetStatus::kInternal: return "INTERNAL";
  }
  return "unknown";
}

size_t BatchInsertFrameBytes(size_t n_values, size_t stream_name_len) {
  // header + id + op + stream bytes + values PodVector.
  return kFrameHeaderBytes + 8 + 4 + (8 + stream_name_len) +
         (8 + n_values * 8);
}

std::string EncodeRequest(const NetRequest& request) {
  SerdeWriter w;
  w.U64(request.id);
  w.U32(static_cast<uint32_t>(request.op));
  w.Bytes(request.stream);
  switch (request.op) {
    case NetOp::kCreate:
      w.Bytes(request.create.algorithm);
      w.F64(request.create.eps);
      w.U32(request.create.log_universe);
      w.U32(request.create.depth);
      w.U64(request.create.seed);
      w.U32(request.create.shards);
      w.U32(request.create.durable ? 1 : 0);
      break;
    case NetOp::kInsert:
      w.U64(request.value);
      w.I64(request.delta);
      break;
    case NetOp::kBatchInsert:
      w.PodVector(request.values);
      break;
    case NetOp::kQuery:
      w.F64(request.phi);
      break;
    case NetOp::kRank:
      w.U64(request.value);
      break;
    case NetOp::kDrop:
    case NetOp::kFlush:
    case NetOp::kStats:
      break;
  }
  return FrameSnapshot(SnapshotType::kNetRequest, w.buffer());
}

bool DecodeRequest(const std::string& frame, NetRequest* out) {
  std::string payload;
  if (!UnframeSnapshot(frame, SnapshotType::kNetRequest, &payload)) {
    return false;
  }
  SerdeReader r(payload);
  NetRequest req;
  uint32_t op = 0;
  if (!r.U64(&req.id) || !r.U32(&op) || !r.Bytes(&req.stream) ||
      !ValidOp(op)) {
    return false;
  }
  req.op = static_cast<NetOp>(op);
  switch (req.op) {
    case NetOp::kCreate: {
      uint32_t durable = 0;
      if (!r.Bytes(&req.create.algorithm) || !r.F64(&req.create.eps) ||
          !r.U32(&req.create.log_universe) || !r.U32(&req.create.depth) ||
          !r.U64(&req.create.seed) || !r.U32(&req.create.shards) ||
          !r.U32(&durable)) {
        return false;
      }
      req.create.durable = durable != 0;
      break;
    }
    case NetOp::kInsert: {
      int64_t delta = 0;
      if (!r.U64(&req.value) || !r.I64(&delta)) return false;
      if (delta < INT32_MIN || delta > INT32_MAX) return false;
      req.delta = static_cast<int32_t>(delta);
      break;
    }
    case NetOp::kBatchInsert:
      if (!r.PodVector(&req.values)) return false;
      break;
    case NetOp::kQuery:
      if (!r.F64(&req.phi)) return false;
      break;
    case NetOp::kRank:
      if (!r.U64(&req.value)) return false;
      break;
    case NetOp::kDrop:
    case NetOp::kFlush:
    case NetOp::kStats:
      break;
  }
  if (!r.Done()) return false;  // trailing bytes = malformed
  *out = std::move(req);
  return true;
}

std::string EncodeResponse(const NetResponse& response) {
  SerdeWriter w;
  w.U64(response.id);
  w.U32(static_cast<uint32_t>(response.op));
  w.U32(static_cast<uint32_t>(response.status));
  w.Bytes(response.message);
  if (response.status == NetStatus::kOk ||
      response.status == NetStatus::kWalDead) {
    w.U64(response.value);
    w.I64(response.rank);
    if (response.op == NetOp::kStats || response.op == NetOp::kCreate) {
      EncodeStats(w, response.stats);
    }
  }
  return FrameSnapshot(SnapshotType::kNetResponse, w.buffer());
}

bool DecodeResponse(const std::string& frame, NetResponse* out) {
  std::string payload;
  if (!UnframeSnapshot(frame, SnapshotType::kNetResponse, &payload)) {
    return false;
  }
  SerdeReader r(payload);
  NetResponse resp;
  uint32_t op = 0, status = 0;
  if (!r.U64(&resp.id) || !r.U32(&op) || !r.U32(&status) ||
      !r.Bytes(&resp.message) || !ValidOp(op)) {
    return false;
  }
  if (status > static_cast<uint32_t>(NetStatus::kInternal)) return false;
  resp.op = static_cast<NetOp>(op);
  resp.status = static_cast<NetStatus>(status);
  if (resp.status == NetStatus::kOk || resp.status == NetStatus::kWalDead) {
    if (!r.U64(&resp.value) || !r.I64(&resp.rank)) return false;
    if (resp.op == NetOp::kStats || resp.op == NetOp::kCreate) {
      if (!DecodeStats(r, &resp.stats)) return false;
    }
  }
  if (!r.Done()) return false;
  *out = std::move(resp);
  return true;
}

FrameScan FrameBuffer::Next(std::string* frame) {
  if (poisoned_) return FrameScan::kBad;
  // Compact lazily so long-lived sessions do not accumulate dead prefix.
  if (consumed_ > 0 &&
      (consumed_ == buffer_.size() || consumed_ > (size_t{256} << 10))) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffered() < kFrameHeaderBytes) return FrameScan::kNeedMore;
  const char* head = buffer_.data() + consumed_;
  uint32_t magic = 0, ver_type = 0;
  uint64_t payload_len = 0;
  std::memcpy(&magic, head, 4);
  std::memcpy(&ver_type, head + 4, 4);
  std::memcpy(&payload_len, head + 8, 8);
  const auto type = static_cast<SnapshotType>(ver_type >> 16);
  if (magic != kFrameMagic || (ver_type & 0xFFFF) != kFrameVersion ||
      (type != SnapshotType::kNetRequest &&
       type != SnapshotType::kNetResponse) ||
      payload_len > max_frame_bytes_ - kFrameHeaderBytes) {
    poisoned_ = true;
    return FrameScan::kBad;
  }
  const size_t total = kFrameHeaderBytes + static_cast<size_t>(payload_len);
  if (buffered() < total) return FrameScan::kNeedMore;
  frame->assign(head, total);
  consumed_ += total;
  return FrameScan::kFrame;
}

}  // namespace streamq::net
