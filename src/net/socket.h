// TCP plumbing of the network tier: non-blocking socket Conn plus the
// listen/connect helpers the reactor and client share. Plain POSIX
// sockets, IPv4, no external dependencies.

#ifndef STREAMQ_NET_SOCKET_H_
#define STREAMQ_NET_SOCKET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/conn.h"

namespace streamq::net {

/// Conn over a non-blocking TCP socket (TCP_NODELAY set: the protocol is
/// request/response with its own batching, Nagle only adds latency).
/// Takes ownership of `fd` and closes it on destruction.
class SocketConn final : public Conn {
 public:
  explicit SocketConn(int fd);
  ~SocketConn() override;

  int Read(char* buf, size_t n) override;
  int Write(const char* buf, size_t n) override;
  void Close() override;
  bool WaitReadable(int timeout_ms) override;
  bool WaitWritable(int timeout_ms) override;
  int fd() const override { return fd_; }

 private:
  int fd_;
};

/// Creates a listening socket bound to `bind_addr:port` (port 0 picks an
/// ephemeral port, reported through *bound_port). Non-blocking, SO_REUSEADDR.
/// Returns the fd, or -1 on failure.
int TcpListen(const std::string& bind_addr, uint16_t port,
              uint16_t* bound_port);

/// Connects to `host:port` (numeric IPv4 or "localhost"), waiting at most
/// `timeout_ms` for the handshake. Returns a connected non-blocking fd, or
/// -1 on failure/timeout.
int TcpConnect(const std::string& host, uint16_t port, int timeout_ms);

/// Accepts one pending connection from a TcpListen fd as a SocketConn;
/// nullptr when none is pending (or on accept failure).
std::unique_ptr<SocketConn> TcpAccept(int listen_fd);

}  // namespace streamq::net

#endif  // STREAMQ_NET_SOCKET_H_
