#include "durability/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/serde.h"

namespace streamq::durability {

namespace {

/// Upper bound on a record payload accepted by the scanner; a corrupt
/// length field beyond this is rejected before any allocation. Generous:
/// real records are batch_size entries (a few KiB).
constexpr uint32_t kMaxWalPayload = 64u << 20;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::string EncodeWalRecord(int shard, const WalEntry* entries, size_t n) {
  SerdeWriter payload;
  payload.U32(static_cast<uint32_t>(shard));
  payload.U32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    payload.U64(entries[i].seq);
    payload.U64(entries[i].value);
    payload.I64(entries[i].delta);
  }
  const std::string& body = payload.buffer();
  SerdeWriter record;
  record.U32(kWalRecordMagic);
  record.U32(static_cast<uint32_t>(body.size()));
  record.U32(Crc32c(body.data(), body.size()));
  std::string out = record.Take();
  out.append(body);
  return out;
}

WalSegmentScan ScanWalSegment(const std::string& contents, int expect_shard) {
  WalSegmentScan scan;
  size_t pos = 0;
  while (contents.size() - pos >= kWalRecordHeaderBytes) {
    const char* header = contents.data() + pos;
    if (LoadU32(header) != kWalRecordMagic) return scan;
    const uint32_t len = LoadU32(header + 4);
    const uint32_t crc = LoadU32(header + 8);
    if (len > kMaxWalPayload ||
        len > contents.size() - pos - kWalRecordHeaderBytes) {
      return scan;  // truncated tail or corrupt length
    }
    const char* body = header + kWalRecordHeaderBytes;
    if (Crc32c(body, len) != crc) return scan;
    const std::string payload(body, len);
    SerdeReader r(payload);
    uint32_t shard = 0;
    uint32_t count = 0;
    if (!r.U32(&shard) || shard != static_cast<uint32_t>(expect_shard) ||
        !r.U32(&count)) {
      return scan;
    }
    std::vector<WalEntry> batch;
    batch.reserve(count);
    bool ok = true;
    for (uint32_t i = 0; i < count && ok; ++i) {
      WalEntry e;
      ok = r.U64(&e.seq) && r.U64(&e.value) && r.I64(&e.delta);
      if (ok) batch.push_back(e);
    }
    if (!ok || !r.Done()) return scan;
    scan.entries.insert(scan.entries.end(), batch.begin(), batch.end());
    ++scan.records;
    pos += kWalRecordHeaderBytes + len;
  }
  scan.clean = pos == contents.size();
  return scan;
}

std::string WalSegmentName(int shard, uint64_t segment) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%04d-%08llu.log", shard,
                static_cast<unsigned long long>(segment));
  return buf;
}

std::vector<uint64_t> ListWalSegments(Storage& storage,
                                      const std::string& wal_dir, int shard) {
  // WalSegmentName zero-pads shard to 4 and segment to 8 digits, but both
  // are MINIMUM widths: larger values widen the name. Parse the id as
  // variable-width digits rather than assuming the 21-char layout, or a
  // segment id >= 10^8 would be silently dropped from replay. The padded
  // prefix plus its trailing '-' is still an unambiguous shard match
  // (a longer shard number puts a digit where this shard has the '-').
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%04d-", shard);
  const std::string prefix = buf;
  constexpr const char kSuffix[] = ".log";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  std::vector<uint64_t> segments;
  for (const std::string& name : storage.List(wal_dir)) {
    if (name.size() <= prefix.size() + kSuffixLen ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;  // another shard's segment or a foreign file
    }
    uint64_t id = 0;
    bool numeric = true;
    for (size_t i = prefix.size(); i < name.size() - kSuffixLen; ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) segments.push_back(id);
  }
  // Same-width names list in numeric order, but an id crossing the 8-digit
  // pad boundary breaks the lexicographic tie -- sort numerically.
  std::sort(segments.begin(), segments.end());
  return segments;
}

WalWriter::WalWriter(Storage* storage, std::string wal_dir, int shard,
                     uint64_t first_segment, uint64_t segment_bytes)
    : storage_(storage),
      wal_dir_(std::move(wal_dir)),
      shard_(shard),
      segment_bytes_(segment_bytes < 1024 ? 1024 : segment_bytes),
      next_segment_(first_segment) {}

std::string WalWriter::SegmentPath(uint64_t segment) const {
  return wal_dir_ + "/" + WalSegmentName(shard_, segment);
}

void WalWriter::MarkDead() {
  dead_.store(true, std::memory_order_release);
  // A dead writer freezes the shard's durability floor forever — exactly
  // the moment the flight recorder's last few thousand events matter.
  STREAMQ_TRACE_INSTANT(obs::TracePoint::kWalDead, shard_);
  STREAMQ_TRACE_CRASH_DUMP("wal_dead");
}

bool WalWriter::RawAppend(const std::string& record, uint64_t max_seq) {
  if (!file_->Append(record)) return false;
  segment_size_ += record.size();
  if (max_seq > segment_max_seq_) segment_max_seq_ = max_seq;
  stats_.bytes.fetch_add(record.size(), std::memory_order_relaxed);
  return true;
}

bool WalWriter::Roll() {
  STREAMQ_TRACE_SPAN(obs::TracePoint::kWalRoll, shard_);
  if (file_ != nullptr) {
    // Best-effort sync so the closed segment is durable; on failure its
    // unsynced records stay buffered and get re-appended below.
    if (file_->Sync()) {
      durable_seq_.store(last_appended_seq_, std::memory_order_release);
      stats_.syncs.fetch_add(1, std::memory_order_relaxed);
      unsynced_.clear();
    } else {
      stats_.failed_syncs.fetch_add(1, std::memory_order_relaxed);
    }
    file_.reset();
    std::lock_guard<std::mutex> lock(closed_mutex_);
    closed_.push_back(ClosedSegment{segment_, segment_max_seq_});
  }
  segment_ = next_segment_++;
  file_ = storage_->Create(SegmentPath(segment_));
  if (file_ == nullptr) {
    MarkDead();
    return false;
  }
  segment_size_ = 0;
  segment_max_seq_ = 0;
  stats_.rolls.fetch_add(1, std::memory_order_relaxed);
  for (const auto& [record, max_seq] : unsynced_) {
    if (!RawAppend(record, max_seq)) {
      MarkDead();
      return false;
    }
  }
  return true;
}

bool WalWriter::AppendBatch(const WalEntry* entries, size_t n) {
  if (n == 0) return !dead();
  if (dead()) return false;
  STREAMQ_TRACE_SPAN(obs::TracePoint::kWalAppend, shard_);
  std::string record = EncodeWalRecord(shard_, entries, n);
  const uint64_t max_seq = entries[n - 1].seq;
  if (file_ == nullptr ||
      (segment_size_ > 0 && segment_size_ + record.size() > segment_bytes_)) {
    if (!Roll()) return false;
  }
  if (!RawAppend(record, max_seq)) {
    // Suspect tail (torn write / IO error): roll once and retry there.
    if (!Roll()) return false;
    if (!RawAppend(record, max_seq)) {
      MarkDead();
      return false;
    }
  }
  last_appended_seq_ = max_seq;
  unsynced_.emplace_back(std::move(record), max_seq);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool WalWriter::Sync() {
  if (dead()) return false;
  if (file_ == nullptr || unsynced_.empty()) return true;
  STREAMQ_TRACE_SPAN(obs::TracePoint::kWalSync, shard_);
  if (file_->Sync()) {
    durable_seq_.store(last_appended_seq_, std::memory_order_release);
    stats_.syncs.fetch_add(1, std::memory_order_relaxed);
    unsynced_.clear();
    return true;
  }
  stats_.failed_syncs.fetch_add(1, std::memory_order_relaxed);
  // Retry once on a fresh segment (Roll re-appends the unsynced buffer).
  if (!Roll()) return false;
  if (file_->Sync()) {
    durable_seq_.store(last_appended_seq_, std::memory_order_release);
    stats_.syncs.fetch_add(1, std::memory_order_relaxed);
    unsynced_.clear();
    return true;
  }
  stats_.failed_syncs.fetch_add(1, std::memory_order_relaxed);
  MarkDead();
  return false;
}

void WalWriter::TruncateThrough(uint64_t seq) {
  STREAMQ_TRACE_SPAN(obs::TracePoint::kWalTruncate, shard_);
  std::vector<ClosedSegment> doomed;
  {
    std::lock_guard<std::mutex> lock(closed_mutex_);
    auto keep = closed_.begin();
    for (auto it = closed_.begin(); it != closed_.end(); ++it) {
      if (it->max_seq <= seq) {
        doomed.push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    closed_.erase(keep, closed_.end());
  }
  for (const ClosedSegment& s : doomed) {
    storage_->Delete(SegmentPath(s.segment));
    stats_.truncated_segments.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace streamq::durability
