#include "durability/faulty_storage.h"

#include <algorithm>
#include <utility>

namespace streamq::durability {

// Not in an anonymous namespace: FaultyStorage's friend declaration names
// streamq::durability::FaultyWritableFile.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultyStorage* owner, std::string path,
                     std::unique_ptr<WritableFile> base)
      : owner_(owner), path_(std::move(path)), base_(std::move(base)) {}

  bool Append(const std::string& data) override;
  bool Sync() override;

 private:
  FaultyStorage* owner_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultyStorage::FaultyStorage(Storage* base, const StorageFaultSpec& spec,
                             uint64_t seed)
    : base_(base), spec_(spec), rng_(seed) {}

double FaultyStorage::NextUnit() {
  return static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53;
}

bool FaultyStorage::MaybeCrash(StorageOp op) {
  ++op_index_;
  ++op_by_kind_[static_cast<int>(op)];
  ++stats_.ops;
  const bool by_index = crash_at_index_ != 0 && op_index_ == crash_at_index_;
  const bool by_kind = crash_kind_nth_ != 0 && op == crash_kind_ &&
                       op_by_kind_[static_cast<int>(op)] == crash_kind_nth_;
  if (by_index || by_kind) CrashLocked();
  return crashed_;
}

void FaultyStorage::CrashLocked() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  for (auto& [path, tail] : tails_) {
    if (tail.synced >= tail.size) continue;
    // Power loss: the unsynced tail survives only up to a seed-chosen
    // prefix, and the surviving part may carry a torn-sector bit flip.
    const uint64_t unsynced = tail.size - tail.synced;
    const uint64_t keep_extra = rng_.Next() % (unsynced + 1);
    const uint64_t keep = tail.synced + keep_extra;
    base_->Truncate(path, keep);
    if (keep_extra > 0 && (rng_.Next() & 1) != 0) {
      std::string contents;
      if (base_->ReadFile(path, &contents) && contents.size() >= keep) {
        const uint64_t byte = tail.synced + rng_.Next() % keep_extra;
        contents[static_cast<size_t>(byte)] ^=
            static_cast<char>(1u << (rng_.Next() % 8));
        base_->WriteFile(path, contents);
      }
    }
    tail.size = keep;
  }
}

std::unique_ptr<WritableFile> FaultyStorage::Create(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || MaybeCrash(StorageOp::kCreate)) return nullptr;
  std::unique_ptr<WritableFile> base_file = base_->Create(path);
  if (base_file == nullptr) return nullptr;
  tails_[path] = Tail{};
  return std::make_unique<FaultyWritableFile>(this, path,
                                              std::move(base_file));
}

bool FaultyWritableFile::Append(const std::string& data) {
  FaultyStorage& s = *owner_;
  std::lock_guard<std::mutex> lock(s.mutex_);
  if (s.crashed_ || s.MaybeCrash(StorageOp::kAppend)) return false;
  FaultyStorage::Tail& tail = s.tails_[path_];
  if (s.NextUnit() < s.spec_.fail_append) {
    ++s.stats_.failed_appends;
    return false;
  }
  if (s.NextUnit() < s.spec_.torn_write) {
    ++s.stats_.torn_writes;
    const uint64_t prefix = data.empty() ? 0 : s.rng_.Next() % data.size();
    if (prefix > 0 &&
        base_->Append(data.substr(0, static_cast<size_t>(prefix)))) {
      tail.size += prefix;
    }
    return false;
  }
  if (!base_->Append(data)) return false;
  tail.size += data.size();
  return true;
}

bool FaultyWritableFile::Sync() {
  FaultyStorage& s = *owner_;
  std::lock_guard<std::mutex> lock(s.mutex_);
  if (s.crashed_ || s.MaybeCrash(StorageOp::kSync)) return false;
  if (s.NextUnit() < s.spec_.fail_sync) {
    ++s.stats_.failed_syncs;
    return false;
  }
  if (!base_->Sync()) return false;
  FaultyStorage::Tail& tail = s.tails_[path_];
  tail.synced = tail.size;
  return true;
}

bool FaultyStorage::ReadFile(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || MaybeCrash(StorageOp::kRead)) return false;
  std::string contents;
  if (!base_->ReadFile(path, &contents)) return false;
  if (!contents.empty() && NextUnit() < spec_.short_read) {
    ++stats_.short_reads;
    contents.resize(static_cast<size_t>(rng_.Next() % contents.size()));
  }
  if (!contents.empty() && NextUnit() < spec_.bit_flip_read) {
    ++stats_.bit_flip_reads;
    contents[static_cast<size_t>(rng_.Next() % contents.size())] ^=
        static_cast<char>(1u << (rng_.Next() % 8));
  }
  *out = std::move(contents);
  return true;
}

bool FaultyStorage::WriteFile(const std::string& path,
                              const std::string& data) {
  // Not on the durability layer's write path (it only appends + renames);
  // provided for test setup, so no fault injection and no op accounting.
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return false;
  if (!base_->WriteFile(path, data)) return false;
  tails_[path] = Tail{data.size(), data.size()};
  return true;
}

bool FaultyStorage::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || MaybeCrash(StorageOp::kRename)) return false;
  if (!base_->Rename(from, to)) return false;
  auto it = tails_.find(from);
  if (it != tails_.end()) {
    tails_[to] = it->second;
    tails_.erase(it);
  }
  return true;
}

bool FaultyStorage::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || MaybeCrash(StorageOp::kDelete)) return false;
  if (!base_->Delete(path)) return false;
  tails_.erase(path);
  return true;
}

bool FaultyStorage::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_ || MaybeCrash(StorageOp::kTruncate)) return false;
  if (!base_->Truncate(path, size)) return false;
  auto it = tails_.find(path);
  if (it != tails_.end()) {
    it->second.size = std::min(it->second.size, size);
    it->second.synced = std::min(it->second.synced, size);
  }
  return true;
}

std::vector<std::string> FaultyStorage::List(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return {};
  return base_->List(dir);
}

bool FaultyStorage::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return false;
  return base_->CreateDir(dir);
}

void FaultyStorage::ArmCrashAtOpIndex(uint64_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_at_index_ = index;
}

void FaultyStorage::ArmCrashAtOp(StorageOp kind, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_kind_ = kind;
  crash_kind_nth_ = nth;
}

void FaultyStorage::CrashNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  CrashLocked();
}

bool FaultyStorage::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

StorageFaultStats FaultyStorage::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

uint64_t FaultyStorage::op_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_index_;
}

}  // namespace streamq::durability
