#include "durability/checkpoint.h"

#include <algorithm>
#include <cstdio>

#include "util/serde.h"

namespace streamq::durability {

std::string EncodeCheckpoint(const CheckpointData& data) {
  SerdeWriter w;
  w.U64(data.id);
  w.U32(static_cast<uint32_t>(data.shards.size()));
  for (const CheckpointShard& shard : data.shards) {
    w.U64(shard.applied_seq);
    w.Bytes(shard.sketch_frame);
  }
  return FrameSnapshot(SnapshotType::kDurableCheckpoint, w.Take());
}

bool DecodeCheckpoint(const std::string& frame, CheckpointData* out) {
  std::string payload;
  if (!UnframeSnapshot(frame, SnapshotType::kDurableCheckpoint, &payload)) {
    return false;
  }
  SerdeReader r(payload);
  CheckpointData data;
  uint32_t shard_count = 0;
  if (!r.U64(&data.id) || !r.U32(&shard_count)) return false;
  data.shards.reserve(std::min<uint32_t>(shard_count, 4096));
  for (uint32_t i = 0; i < shard_count; ++i) {
    CheckpointShard shard;
    if (!r.U64(&shard.applied_seq) || !r.Bytes(&shard.sketch_frame)) {
      return false;
    }
    data.shards.push_back(std::move(shard));
  }
  if (!r.Done()) return false;
  *out = std::move(data);
  return true;
}

CheckpointStore::CheckpointStore(Storage* storage, std::string dir)
    : storage_(storage), dir_(std::move(dir)) {}

std::string CheckpointStore::PathFor(uint64_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%08llu.sq",
                static_cast<unsigned long long>(id));
  return dir_ + "/" + buf;
}

std::vector<uint64_t> CheckpointStore::ListIds() {
  // PathFor zero-pads the id to 8 digits as a MINIMUM width: ids past
  // 10^8 widen the name, so parse variable-width digits rather than
  // assuming the 16-char layout (a fixed-width check would silently hide
  // the newest generations from recovery). The ".sq" suffix check also
  // rejects leftover ".sq.tmp" files.
  constexpr const char kPrefix[] = "ckpt-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  constexpr const char kSuffix[] = ".sq";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  std::vector<uint64_t> ids;
  for (const std::string& name : storage_->List(dir_)) {
    if (name.size() <= kPrefixLen + kSuffixLen ||
        name.compare(0, kPrefixLen, kPrefix) != 0 ||
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;
    }
    uint64_t id = 0;
    bool numeric = true;
    for (size_t i = kPrefixLen; i < name.size() - kSuffixLen; ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool CheckpointStore::Write(const CheckpointData& data, int keep) {
  const std::string path = PathFor(data.id);
  if (!AtomicWriteFile(*storage_, path, EncodeCheckpoint(data))) return false;
  // Prune old generations (best effort: a leftover older checkpoint is
  // only wasted space, never a correctness problem).
  std::vector<uint64_t> ids = ListIds();
  if (keep < 1) keep = 1;
  while (ids.size() > static_cast<size_t>(keep)) {
    storage_->Delete(PathFor(ids.front()));
    storage_->Delete(PathFor(ids.front()) + ".tmp");
    ids.erase(ids.begin());
  }
  return true;
}

bool CheckpointStore::LoadNewest(
    const std::function<bool(const CheckpointData&)>& validate,
    CheckpointData* out) {
  std::vector<uint64_t> ids = ListIds();
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    std::string frame;
    if (!storage_->ReadFile(PathFor(*it), &frame)) continue;
    CheckpointData data;
    if (!DecodeCheckpoint(frame, &data)) continue;
    if (data.id != *it) continue;  // file name / contents cross-wired
    if (validate && !validate(data)) continue;
    *out = std::move(data);
    return true;
  }
  return false;
}

}  // namespace streamq::durability
