// Atomic, generational pipeline checkpoints (DESIGN.md section 11).
//
// A checkpoint is one file "<dir>/ckpt/ckpt-NNNNNNNN.sq" holding a
// CRC32C-framed (SnapshotType::kDurableCheckpoint) payload:
//
//   id u64 | shard_count u32 | shard_count x (applied_seq u64 |
//                                             sketch_frame bytes)
//
// where sketch_frame is the shard sketch's own framed snapshot
// (SerializeSketch) and applied_seq is the highest ingest seq folded into
// it. Publication is write-tmp, sync, rename: the final name either holds
// a complete checkpoint or does not exist, so a crash mid-checkpoint can
// never corrupt the newest *published* generation. Validation is
// all-or-nothing -- outer frame CRC, exact payload parse, and every
// nested sketch frame must deserialize -- and LoadNewest falls back to
// the previous generation when the newest fails (keep >= 2 generations
// for exactly this reason).
//
// Single-threaded: callers serialise on the pipeline's checkpoint lock.

#ifndef STREAMQ_DURABILITY_CHECKPOINT_H_
#define STREAMQ_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "durability/storage.h"

namespace streamq::durability {

struct CheckpointShard {
  /// Highest ingest seq applied to the shard sketch below.
  uint64_t applied_seq = 0;
  /// The shard sketch's framed snapshot (SerializeSketch output).
  std::string sketch_frame;
};

struct CheckpointData {
  /// Monotonically increasing generation id (also the file name).
  uint64_t id = 0;
  std::vector<CheckpointShard> shards;
};

/// Encodes `data` into its framed on-disk representation.
std::string EncodeCheckpoint(const CheckpointData& data);

/// Strict inverse of EncodeCheckpoint: false -- leaving *out untouched --
/// on any frame, CRC, length, or structure mismatch. Does NOT deserialize
/// the nested sketch frames (the caller validates those; see LoadNewest's
/// `validate`).
bool DecodeCheckpoint(const std::string& frame, CheckpointData* out);

class CheckpointStore {
 public:
  /// `storage` unowned; `dir` is the checkpoint directory (created by
  /// Init).
  CheckpointStore(Storage* storage, std::string dir);

  bool Init() { return storage_->CreateDir(dir_); }

  /// Existing published checkpoint ids, ascending (tmp leftovers are not
  /// listed: an unrenamed tmp is by definition unpublished).
  std::vector<uint64_t> ListIds();

  /// Publishes `data` atomically (tmp, sync, rename), then prunes all but
  /// the newest `keep` generations. False when any step up to and
  /// including the rename fails -- the previous generations are untouched
  /// in that case.
  bool Write(const CheckpointData& data, int keep);

  /// Loads the newest checkpoint that decodes AND satisfies `validate`
  /// (deep validation: shard count, nested sketch frames -- supplied by
  /// the pipeline). Older generations are tried in turn; false when none
  /// survives.
  bool LoadNewest(const std::function<bool(const CheckpointData&)>& validate,
                  CheckpointData* out);

 private:
  std::string PathFor(uint64_t id) const;

  Storage* const storage_;
  const std::string dir_;
};

}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_CHECKPOINT_H_
