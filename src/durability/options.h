// Durability knobs for the ingest pipeline. This header is always
// compiled -- even under -DSTREAMQ_DURABILITY=OFF -- so IngestOptions
// keeps a stable layout; only the implementation (wal.cc, checkpoint.cc,
// storage.cc and the pipeline's durable paths) is compiled out.

#ifndef STREAMQ_DURABILITY_OPTIONS_H_
#define STREAMQ_DURABILITY_OPTIONS_H_

#include <cstdint>
#include <string>

namespace streamq::durability {

class Storage;

struct DurabilityOptions {
  /// Master switch. When false the pipeline runs exactly as before (no
  /// WAL, no checkpoints, no recovery). When true, `storage` must be
  /// non-null and the build must have durability compiled in, otherwise
  /// IngestPipeline::Create returns nullptr.
  bool enabled = false;

  /// Unowned; must outlive the pipeline. Typically PosixStorage in
  /// production, MemStorage (possibly wrapped in FaultyStorage) in tests.
  Storage* storage = nullptr;

  /// Root directory for this pipeline's durable state; the pipeline
  /// creates "<dir>/wal" and "<dir>/ckpt" under it. Recovery reads
  /// whatever a previous incarnation left at the same dir.
  std::string dir = "streamq-data";

  /// A shard worker fsyncs its WAL after this many logged updates (and
  /// whenever it goes idle or is asked to flush). Smaller = acks advance
  /// faster, more fsyncs.
  uint64_t sync_interval = 4096;

  /// A checkpoint is attempted after this many newly applied updates
  /// pipeline-wide (plus one final checkpoint at Stop). Each checkpoint
  /// truncates the WAL segments it covers.
  uint64_t checkpoint_interval = uint64_t{1} << 18;

  /// Target size of one WAL segment file before the writer rolls to the
  /// next (segments are the unit of truncation).
  uint64_t segment_bytes = uint64_t{4} << 20;

  /// Checkpoint generations to retain. Keep >= 2: recovery falls back to
  /// the previous generation when the newest is torn or corrupt.
  int keep_checkpoints = 2;
};

}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_OPTIONS_H_
