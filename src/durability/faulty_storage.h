// Fault-injecting Storage decorator, the filesystem twin of the
// distributed monitor's FaultyChannel (src/distributed/channel.h): every
// failure mode is driven by one seed, so a failing run replays exactly
// from its seed.
//
// Two fault families:
//
//  * Probabilistic IO faults (StorageFaultSpec): torn writes (an Append
//    persists only a random prefix, then reports failure), clean append
//    failures, failed fsyncs, short reads and read-side bit flips. These
//    exercise the WAL's roll-and-retry path and the recovery code's
//    corruption rejection.
//
//  * Crash points: the test arms a crash at the Nth storage operation
//    overall (ArmCrashAtOpIndex) or at the Nth operation of one kind
//    (ArmCrashAtOp) -- the crash fires just BEFORE that operation takes
//    effect, modelling power loss as the syscall is issued. Arming at
//    index k+1 therefore also covers "crashed right after operation k",
//    so the two hooks together reach both sides of every append, fsync,
//    checkpoint write, rename and truncate.
//
// Crash semantics follow real disks: for every file with bytes appended
// since its last successful Sync, the unsynced tail is truncated to a
// seed-chosen prefix (possibly empty, possibly all of it), and the
// surviving unsynced prefix may additionally get one bit flipped (a torn
// sector). Bytes covered by a successful Sync are never harmed, and
// Rename/Delete that returned true stay done -- the Storage durability
// contract. After the crash every operation fails until the test opens a
// fresh (non-faulty) view over the same base storage, which is exactly
// what process restart + recovery does.
//
// Thread-safe: shard workers append to their own WALs concurrently while
// a checkpointer renames, so every operation serialises on one mutex (the
// op counter, RNG and tail map are shared state). This is a test double;
// the serialisation cost is irrelevant.

#ifndef STREAMQ_DURABILITY_FAULTY_STORAGE_H_
#define STREAMQ_DURABILITY_FAULTY_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "durability/storage.h"
#include "util/random.h"

namespace streamq::durability {

/// Per-operation fault probabilities, all in [0, 1]. Default: none.
struct StorageFaultSpec {
  /// An Append persists a random strict prefix and reports failure.
  double torn_write = 0.0;
  /// An Append persists nothing and reports failure.
  double fail_append = 0.0;
  /// A Sync reports failure (the appended bytes stay non-durable).
  double fail_sync = 0.0;
  /// A ReadFile returns only a random strict prefix of the file.
  double short_read = 0.0;
  /// A ReadFile returns the contents with one random bit flipped.
  double bit_flip_read = 0.0;

  static StorageFaultSpec Perfect() { return StorageFaultSpec{}; }
};

/// Operation kinds for kind-targeted crash points and the op counters.
enum class StorageOp : int {
  kCreate = 0,
  kAppend = 1,
  kSync = 2,
  kRename = 3,
  kDelete = 4,
  kTruncate = 5,
  kRead = 6,
};
inline constexpr int kStorageOpKinds = 7;

/// Running totals, readable while the storage is live (test assertions).
struct StorageFaultStats {
  uint64_t ops = 0;
  uint64_t torn_writes = 0;
  uint64_t failed_appends = 0;
  uint64_t failed_syncs = 0;
  uint64_t short_reads = 0;
  uint64_t bit_flip_reads = 0;
  uint64_t crashes = 0;
};

class FaultyStorage : public Storage {
 public:
  /// `base` is unowned and must outlive this wrapper (and keeps the data:
  /// recovery re-opens `base` directly, like a process restart).
  FaultyStorage(Storage* base, const StorageFaultSpec& spec, uint64_t seed);

  std::unique_ptr<WritableFile> Create(const std::string& path) override;
  bool ReadFile(const std::string& path, std::string* out) override;
  bool WriteFile(const std::string& path, const std::string& data) override;
  bool Rename(const std::string& from, const std::string& to) override;
  bool Delete(const std::string& path) override;
  bool Truncate(const std::string& path, uint64_t size) override;
  std::vector<std::string> List(const std::string& dir) override;
  bool CreateDir(const std::string& dir) override;

  /// Arms a crash just before the `index`-th operation overall (1-based).
  void ArmCrashAtOpIndex(uint64_t index);
  /// Arms a crash just before the `nth` operation of `kind` (1-based).
  void ArmCrashAtOp(StorageOp kind, uint64_t nth);
  /// Immediate crash (same tail-mangling semantics as an armed one).
  void CrashNow();

  bool crashed() const;
  StorageFaultStats stats() const;
  /// Total operations a fault-free run performs -- run once, read this,
  /// then sweep ArmCrashAtOpIndex over [1, OpCount()].
  uint64_t op_count() const;

 private:
  friend class FaultyWritableFile;

  /// Unsynced-tail bookkeeping for one path. Entries outlive the writable
  /// handle: closing a file does not make its tail crash-safe.
  struct Tail {
    uint64_t size = 0;    // bytes appended through this wrapper
    uint64_t synced = 0;  // bytes covered by the last successful Sync
  };

  // All private helpers require mutex_ held.
  double NextUnit();
  bool MaybeCrash(StorageOp op);
  void CrashLocked();

  Storage* const base_;
  const StorageFaultSpec spec_;

  mutable std::mutex mutex_;
  Xoshiro256 rng_;
  bool crashed_ = false;
  uint64_t op_index_ = 0;
  uint64_t op_by_kind_[kStorageOpKinds] = {};
  uint64_t crash_at_index_ = 0;  // 0 = unarmed
  StorageOp crash_kind_ = StorageOp::kCreate;
  uint64_t crash_kind_nth_ = 0;  // 0 = unarmed
  std::map<std::string, Tail> tails_;
  StorageFaultStats stats_;
};

}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_FAULTY_STORAGE_H_
