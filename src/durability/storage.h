// Byte-level storage abstraction behind the durable-ingest subsystem
// (DESIGN.md section 11). The WAL and checkpoint code talk only to this
// interface, so the same recovery logic runs against a real filesystem
// (PosixStorage), an in-memory filesystem (MemStorage -- fast, hermetic
// tests), or a fault injector wrapping either (faulty_storage.h).
//
// The interface is deliberately small and append-oriented: the durability
// layer only ever appends to open files, reads files whole, renames
// complete files into place, and deletes obsolete ones. "Paths" are flat
// strings; PosixStorage maps them onto the real filesystem (creating
// parent directories on demand), MemStorage treats them as opaque keys.
//
// Durability contract every implementation must honour:
//  * Append data is not durable until Sync() returns true. A crash may
//    lose or tear (truncate mid-byte-range) anything appended after the
//    last successful Sync.
//  * Rename is atomic and, after it returns true, durable: a crash never
//    leaves both names or neither. This is what makes checkpoint
//    publication all-or-nothing (write tmp, sync, rename).
//  * A file whose Create returned a handle durably exists: its directory
//    entry survives a crash (PosixStorage fsyncs the parent directory at
//    create time), though its contents are only durable up to the last
//    successful Sync. Without this, a synced WAL segment could vanish
//    wholesale with its dirent.
//
// Thread-safety: distinct WritableFiles may be used from distinct threads
// concurrently (one thread per file, the per-shard WAL topology);
// Storage's path-level operations may race appends to *other* paths.

#ifndef STREAMQ_DURABILITY_STORAGE_H_
#define STREAMQ_DURABILITY_STORAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace streamq::durability {

/// An open, append-only file handle. Close() without a prior successful
/// Sync() leaves the appended data non-durable (it survives a clean exit,
/// not a crash).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  /// Appends `data`; false on any storage error (the file's tail is then
  /// unspecified -- callers roll to a fresh file rather than repair).
  virtual bool Append(const std::string& data) = 0;
  /// Forces everything appended so far to durable storage.
  virtual bool Sync() = 0;
};

class Storage {
 public:
  virtual ~Storage() = default;

  /// Creates (or truncates) `path` for appending. nullptr on failure.
  virtual std::unique_ptr<WritableFile> Create(const std::string& path) = 0;

  /// Reads the whole file into *out. False (out untouched) when the file
  /// does not exist or cannot be read.
  virtual bool ReadFile(const std::string& path, std::string* out) = 0;

  /// Replaces the full contents of `path` (used by tests and the fault
  /// injector; not a durable write unless followed by nothing -- the
  /// durability layer itself never uses it for live data).
  virtual bool WriteFile(const std::string& path, const std::string& data) = 0;

  /// Atomically and durably renames `from` over `to` (replacing it).
  virtual bool Rename(const std::string& from, const std::string& to) = 0;

  virtual bool Delete(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (no-op beyond current size).
  virtual bool Truncate(const std::string& path, uint64_t size) = 0;

  /// Names (relative to `dir`) of every file under `dir`, sorted.
  virtual std::vector<std::string> List(const std::string& dir) = 0;

  /// Ensures `dir` (and its parents) exists so Create(dir + "/x") works.
  virtual bool CreateDir(const std::string& dir) = 0;
};

/// Publishes `bytes` at `path` all-or-nothing via the classic
/// write-tmp, sync, rename protocol ("<path>.tmp" is the scratch name):
/// after a crash, `path` either holds the complete previous contents or
/// the complete new contents, never a torn mix. Used by the checkpoint
/// store for generation files and by the cluster tier for its per-node
/// epoch meta record. False -- with the tmp file best-effort deleted and
/// `path` untouched -- when any step up to and including the rename fails.
bool AtomicWriteFile(Storage& storage, const std::string& path,
                     const std::string& bytes);

/// In-memory storage: a map from path to contents. Implements the
/// durability contract trivially (everything "synced" immediately); the
/// fault injector layers crash/torn-write semantics on top of it. All
/// operations are mutex-serialised, so concurrent per-shard writers are
/// safe.
class MemStorage : public Storage {
 public:
  std::unique_ptr<WritableFile> Create(const std::string& path) override;
  bool ReadFile(const std::string& path, std::string* out) override;
  bool WriteFile(const std::string& path, const std::string& data) override;
  bool Rename(const std::string& from, const std::string& to) override;
  bool Delete(const std::string& path) override;
  bool Truncate(const std::string& path, uint64_t size) override;
  std::vector<std::string> List(const std::string& dir) override;
  bool CreateDir(const std::string& dir) override;

  /// Current size of `path`, or -1 when absent (tests).
  int64_t FileSize(const std::string& path);

 private:
  friend class MemWritableFile;
  std::mutex mutex_;
  std::map<std::string, std::string> files_;
};

/// Real-filesystem storage: open/write/fsync/rename/unlink, with the
/// parent directory fsynced after Create, Rename and Delete so the
/// metadata operation itself is durable (the classic
/// create-rename-dirsync protocol).
class PosixStorage : public Storage {
 public:
  std::unique_ptr<WritableFile> Create(const std::string& path) override;
  bool ReadFile(const std::string& path, std::string* out) override;
  bool WriteFile(const std::string& path, const std::string& data) override;
  bool Rename(const std::string& from, const std::string& to) override;
  bool Delete(const std::string& path) override;
  bool Truncate(const std::string& path, uint64_t size) override;
  std::vector<std::string> List(const std::string& dir) override;
  bool CreateDir(const std::string& dir) override;

 private:
  static bool SyncDirOf(const std::string& path);
};

}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_STORAGE_H_
