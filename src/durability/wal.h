// Segmented per-shard write-ahead log (DESIGN.md section 11).
//
// Layout: each ingest shard owns one WAL, a sequence of append-only
// segment files "<dir>/wal/wal-SSSS-NNNNNNNN.log" (shard, segment id,
// zero-padded so lexicographic listing is numeric order). A segment is a
// concatenation of records:
//
//   magic u32 ("WALR") | payload_len u32 | crc32c(payload) u32 | payload
//
// where payload is serde-encoded: shard u32 | count u32 | count x
// (seq u64 | value u64 | delta i64). Records hold whole update batches,
// so WAL framing cost is amortised across the batch like the sketch work.
//
// Durability discipline (the crash-consistency argument relies on each
// point):
//  * Records are appended in strictly increasing seq order; Sync() makes
//    every appended record durable and advances durable_seq() -- the
//    shard's acknowledgement high-water mark -- to the last appended seq.
//  * Records appended since the last successful Sync are also buffered in
//    memory. On an append or sync failure the writer ROLLS: closes the
//    suspect segment, opens a fresh one, re-appends the unsynced buffer,
//    and retries once. Replaying both copies is harmless because replay
//    dedups on seq (a shard's seqs are strictly increasing, so a re-read
//    record is simply skipped).
//  * If the retry fails too the writer goes dead(): appends are dropped,
//    durable_seq() freezes, and the pipeline keeps running in-memory --
//    availability over durability, with the frozen ack mark telling the
//    truth about what is guaranteed.
//  * A closed segment is never appended to again (recovery starts a fresh
//    segment after the highest existing id), and is deleted only by
//    TruncateThrough(seq) once a checkpoint covers every record in it.
//
// Threading: AppendBatch/Sync belong to the owning shard worker thread.
// durable_seq()/dead() are readable from any thread. TruncateThrough is
// called by whichever worker holds the checkpoint lock (segment metadata
// is mutex-guarded).

#ifndef STREAMQ_DURABILITY_WAL_H_
#define STREAMQ_DURABILITY_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "durability/storage.h"

namespace streamq::durability {

/// One logged update: the global ingest sequence number plus the update
/// itself (value, signed multiplicity).
struct WalEntry {
  uint64_t seq = 0;
  uint64_t value = 0;
  int64_t delta = 0;
};

inline constexpr uint32_t kWalRecordMagic = 0x57414C52u;  // "WALR"
/// magic u32 | payload_len u32 | crc32c u32
inline constexpr size_t kWalRecordHeaderBytes = 12;

/// Encodes one record (header + payload) for `shard` covering `entries`.
std::string EncodeWalRecord(int shard, const WalEntry* entries, size_t n);

/// Result of scanning one segment: the longest valid record prefix.
struct WalSegmentScan {
  std::vector<WalEntry> entries;
  uint64_t records = 0;
  /// True when the segment parsed exactly to its end; false when the scan
  /// stopped at a torn/corrupt tail (expected after a crash).
  bool clean = false;
};

/// Scans `contents` of one segment belonging to `expect_shard`. Stops at
/// the first record that is truncated, fails its CRC, misparses, or names
/// a different shard; never over-reads and never throws.
WalSegmentScan ScanWalSegment(const std::string& contents, int expect_shard);

/// Segment file name for (shard, segment), relative to the WAL directory.
std::string WalSegmentName(int shard, uint64_t segment);
/// Existing segment ids of `shard` under `wal_dir`, ascending.
std::vector<uint64_t> ListWalSegments(Storage& storage,
                                      const std::string& wal_dir, int shard);

/// Writer-side counters (atomics: the pipeline's metrics publisher reads
/// them while the shard worker appends).
struct WalStats {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> failed_syncs{0};
  std::atomic<uint64_t> rolls{0};
  std::atomic<uint64_t> truncated_segments{0};
};

class WalWriter {
 public:
  /// Starts writing at segment id `first_segment` (recovery passes max
  /// existing id + 1: closed segments are immutable). `storage` unowned.
  WalWriter(Storage* storage, std::string wal_dir, int shard,
            uint64_t first_segment, uint64_t segment_bytes);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record for `entries` (strictly increasing seqs, all >
  /// every previously appended seq). False once dead(). Worker thread.
  bool AppendBatch(const WalEntry* entries, size_t n);

  /// Makes everything appended durable; on success durable_seq() covers
  /// the last appended record. Worker thread.
  bool Sync();

  /// Highest seq s such that every record of this shard with seq' <= s is
  /// durable. Any thread.
  uint64_t durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }
  /// True after an unrecoverable storage failure; the log stops growing
  /// and durable_seq() freezes. Any thread.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Deletes every closed segment whose records are all <= `seq` (i.e.
  /// fully covered by a durable checkpoint). Checkpoint holder's thread.
  void TruncateThrough(uint64_t seq);

  const WalStats& stats() const { return stats_; }

 private:
  struct ClosedSegment {
    uint64_t segment = 0;
    uint64_t max_seq = 0;  // highest seq ever appended to it
  };

  std::string SegmentPath(uint64_t segment) const;
  void MarkDead();
  /// Closes the current segment (best-effort sync), opens the next one,
  /// and re-appends the unsynced buffer into it. False => dead.
  bool Roll();
  /// Appends to the open segment with size/seq bookkeeping, no buffering.
  bool RawAppend(const std::string& record, uint64_t max_seq);

  Storage* const storage_;
  const std::string wal_dir_;
  const int shard_;
  const uint64_t segment_bytes_;

  // Worker-thread state.
  std::unique_ptr<WritableFile> file_;
  uint64_t next_segment_;
  uint64_t segment_ = 0;
  uint64_t segment_size_ = 0;
  uint64_t segment_max_seq_ = 0;
  uint64_t last_appended_seq_ = 0;
  /// Records appended but not yet covered by a successful Sync, kept for
  /// re-append after a roll. (encoded record, its max seq).
  std::vector<std::pair<std::string, uint64_t>> unsynced_;

  std::atomic<uint64_t> durable_seq_{0};
  std::atomic<bool> dead_{false};

  std::mutex closed_mutex_;
  std::vector<ClosedSegment> closed_;  // guarded by closed_mutex_

  WalStats stats_;
};

}  // namespace streamq::durability

#endif  // STREAMQ_DURABILITY_WAL_H_
