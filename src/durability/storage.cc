#include "durability/storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

namespace streamq::durability {

// --- MemStorage ------------------------------------------------------------

namespace {

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::mutex* mutex, std::string* contents)
      : mutex_(mutex), contents_(contents) {}

  bool Append(const std::string& data) override {
    std::lock_guard<std::mutex> lock(*mutex_);
    contents_->append(data);
    return true;
  }

  bool Sync() override { return true; }

 private:
  std::mutex* mutex_;
  std::string* contents_;
};

}  // namespace

std::unique_ptr<WritableFile> MemStorage::Create(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string& contents = files_[path];
  contents.clear();
  // std::map nodes are address-stable, so handing out a pointer to the
  // mapped string is safe as long as the entry is not erased while a
  // writer holds it -- the WAL never deletes a file it is appending to.
  return std::make_unique<MemWritableFile>(&mutex_, &contents);
}

bool MemStorage::ReadFile(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  *out = it->second;
  return true;
}

bool MemStorage::WriteFile(const std::string& path, const std::string& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  files_[path] = data;
  return true;
}

bool MemStorage::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(from);
  if (it == files_.end()) return false;
  files_[to] = std::move(it->second);
  files_.erase(it);
  return true;
}

bool MemStorage::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.erase(path) != 0;
}

bool MemStorage::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  if (size < it->second.size()) it->second.resize(size);
  return true;
}

std::vector<std::string> MemStorage::List(const std::string& dir) {
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [path, contents] : files_) {
    (void)contents;
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(path.substr(prefix.size()));
    }
  }
  return names;  // map iteration order is already sorted
}

bool MemStorage::CreateDir(const std::string& dir) {
  (void)dir;
  return true;
}

int64_t MemStorage::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  return it == files_.end() ? -1 : static_cast<int64_t>(it->second.size());
}

// --- PosixStorage ----------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Append(const std::string& data) override {
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(n);
    }
    return true;
  }

  bool Sync() override { return ::fsync(fd_) == 0; }

 private:
  int fd_;
};

}  // namespace

bool PosixStorage::SyncDirOf(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::unique_ptr<WritableFile> PosixStorage::Create(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return nullptr;
  // The new directory entry is not durable until the parent directory is
  // fsynced (same protocol as Rename/Delete). Without this a WAL segment
  // could vanish wholesale on power loss even after its own Sync()
  // succeeded, losing records already acknowledged via durable_seq.
  if (!SyncDirOf(path)) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<PosixWritableFile>(fd);
}

bool PosixStorage::ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(data);
  return true;
}

bool PosixStorage::WriteFile(const std::string& path, const std::string& data) {
  std::unique_ptr<WritableFile> f = Create(path);
  return f != nullptr && f->Append(data) && f->Sync();
}

bool PosixStorage::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return false;
  return SyncDirOf(to);
}

bool PosixStorage::Delete(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return false;
  return SyncDirOf(path);
}

bool PosixStorage::Truncate(const std::string& path, uint64_t size) {
  // ::truncate zero-extends past EOF; the Storage contract says shrink
  // only (no-op beyond current size), so clamp to the file's actual size.
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  const uint64_t current = static_cast<uint64_t>(st.st_size);
  if (size >= current) return true;
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

std::vector<std::string> PosixStorage::List(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool PosixStorage::CreateDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec && std::filesystem::is_directory(dir, ec);
}

bool AtomicWriteFile(Storage& storage, const std::string& path,
                     const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<WritableFile> file = storage.Create(tmp);
    if (file == nullptr) return false;
    if (!file->Append(bytes) || !file->Sync()) {
      storage.Delete(tmp);
      return false;
    }
  }
  if (!storage.Rename(tmp, path)) {
    storage.Delete(tmp);
    return false;
  }
  return true;
}

}  // namespace streamq::durability
