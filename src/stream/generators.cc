#include "stream/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/bits.h"
#include "util/random.h"

namespace streamq {

namespace {

constexpr uint64_t kMpcatUniverse = 8'640'000;  // right ascension in 0.1s units
constexpr uint64_t kTerrainUniverse = 1ULL << 24;

uint64_t Clamp(double v, uint64_t universe) {
  if (v < 0) return 0;
  if (v >= static_cast<double>(universe)) return universe - 1;
  return static_cast<uint64_t>(v);
}

uint64_t DrawValue(const DatasetSpec& spec, uint64_t universe, Xoshiro256& rng) {
  switch (spec.distribution) {
    case Distribution::kUniform:
      return rng.Below(universe);
    case Distribution::kNormal: {
      const double mean = 0.5 * static_cast<double>(universe);
      const double sd = spec.sigma * static_cast<double>(universe);
      return Clamp(mean + sd * rng.NextGaussian(), universe);
    }
    case Distribution::kLogUniform: {
      const double log_u = std::log(static_cast<double>(universe));
      return Clamp(std::exp(rng.NextDouble() * log_u) - 1.0, universe);
    }
    case Distribution::kMpcatLike: {
      // Fig. 4 of the paper: right ascensions concentrate in two broad humps
      // (the ecliptic crossing the equatorial grid) over a non-zero floor.
      const double u = static_cast<double>(kMpcatUniverse);
      const double r = rng.NextDouble();
      if (r < 0.40) return Clamp(u * (0.28 + 0.09 * rng.NextGaussian()), kMpcatUniverse);
      if (r < 0.78) return Clamp(u * (0.72 + 0.10 * rng.NextGaussian()), kMpcatUniverse);
      return rng.Below(kMpcatUniverse);
    }
    case Distribution::kTerrainLike: {
      // LIDAR elevations: most mass near the (low) river basin floor with a
      // long shoulder toward the higher terrain.
      const double u = static_cast<double>(kTerrainUniverse);
      const double r = rng.NextDouble();
      if (r < 0.55) return Clamp(u * (0.12 + 0.05 * rng.NextGaussian()), kTerrainUniverse);
      if (r < 0.85) return Clamp(u * (0.30 + 0.10 * rng.NextGaussian()), kTerrainUniverse);
      return Clamp(u * (0.60 + 0.18 * rng.NextGaussian()), kTerrainUniverse);
    }
  }
  return 0;
}

}  // namespace

uint64_t DatasetSpec::Universe() const {
  switch (distribution) {
    case Distribution::kMpcatLike:
      return kMpcatUniverse;
    case Distribution::kTerrainLike:
      return kTerrainUniverse;
    default:
      return log_universe >= 64 ? ~0ULL : (1ULL << log_universe);
  }
}

int DatasetSpec::LogUniverse() const { return CeilLog2(Universe()); }

std::string DatasetSpec::Name() const {
  const char* dist = "";
  switch (distribution) {
    case Distribution::kUniform: dist = "uniform"; break;
    case Distribution::kNormal: dist = "normal"; break;
    case Distribution::kLogUniform: dist = "loguniform"; break;
    case Distribution::kMpcatLike: dist = "mpcat"; break;
    case Distribution::kTerrainLike: dist = "terrain"; break;
  }
  const char* ord = order == Order::kRandom   ? "random"
                    : order == Order::kSorted ? "sorted"
                                              : "chunked";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s-n%llu-logu%d-%s", dist,
                static_cast<unsigned long long>(n), LogUniverse(), ord);
  return buf;
}

std::vector<uint64_t> GenerateDataset(const DatasetSpec& spec) {
  Xoshiro256 rng(spec.seed);
  const uint64_t universe = spec.Universe();
  std::vector<uint64_t> data;
  data.reserve(spec.n);
  for (uint64_t i = 0; i < spec.n; ++i) {
    data.push_back(DrawValue(spec, universe, rng));
  }
  switch (spec.order) {
    case Order::kRandom:
      break;  // i.i.d. draws are already in random order
    case Order::kSorted:
      std::sort(data.begin(), data.end());
      break;
    case Order::kChunkedSorted: {
      // Sorted runs with log-normal lengths (median ~300, heavy tail), as in
      // the MPCAT-OBS observing-session pattern.
      uint64_t pos = 0;
      while (pos < data.size()) {
        const double len = std::exp(5.7 + 1.0 * rng.NextGaussian());
        const uint64_t chunk = std::max<uint64_t>(1, static_cast<uint64_t>(len));
        const uint64_t end = std::min<uint64_t>(data.size(), pos + chunk);
        std::sort(data.begin() + pos, data.begin() + end);
        pos = end;
      }
      break;
    }
  }
  return data;
}

std::vector<Update> MakeTurnstileWorkload(const std::vector<uint64_t>& data,
                                          double churn_fraction,
                                          uint64_t universe, uint64_t seed) {
  Xoshiro256 rng(seed);
  const uint64_t extra = static_cast<uint64_t>(churn_fraction * data.size());
  std::vector<Update> updates;
  updates.reserve(data.size() + 2 * extra);
  for (uint64_t v : data) updates.push_back({v, +1});
  // Insert transient values, then interleave matching deletions after their
  // insertion points so no multiplicity ever goes negative.
  std::vector<uint64_t> transient;
  transient.reserve(extra);
  for (uint64_t i = 0; i < extra; ++i) transient.push_back(rng.Below(universe));
  // Place each transient insert at a random position, its delete at a later
  // random position: do this by appending pairs and shuffling with a
  // precedence-preserving scheme (insert goes to a random slot in the first
  // half of a window, delete after it).
  for (uint64_t v : transient) {
    const size_t ins_pos = rng.Below(updates.size() + 1);
    updates.insert(updates.begin() + ins_pos, {v, +1});
    const size_t del_pos = ins_pos + 1 + rng.Below(updates.size() - ins_pos);
    updates.insert(updates.begin() + del_pos, {v, -1});
  }
  return updates;
}

}  // namespace streamq
