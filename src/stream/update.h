// Stream update type shared by the cash-register and turnstile models.

#ifndef STREAMQ_STREAM_UPDATE_H_
#define STREAMQ_STREAM_UPDATE_H_

#include <cstdint>

namespace streamq {

/// One stream update. delta = +1 inserts the value, delta = -1 deletes a
/// previously inserted occurrence (turnstile model: multiplicities never go
/// negative).
struct Update {
  uint64_t value = 0;
  int32_t delta = +1;
};

}  // namespace streamq

#endif  // STREAMQ_STREAM_UPDATE_H_
