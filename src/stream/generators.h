// Synthetic dataset generators reproducing the paper's workloads.
//
// The paper evaluates on two real datasets (MPCAT-OBS minor-planet
// observations and Neuse River Basin LIDAR terrain) plus 12 synthetic
// datasets varying size, universe, distribution, and arrival order. The real
// archives are not redistributable here, so MpcatLike / TerrainLike
// generators synthesise streams with the characteristics the paper says
// matter: value distribution shape, universe size, and local sortedness of
// arrival (MPCAT-OBS "consists of chunks of ordered data of various
// lengths"). See DESIGN.md section 4 for the substitution rationale.

#ifndef STREAMQ_STREAM_GENERATORS_H_
#define STREAMQ_STREAM_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/update.h"

namespace streamq {

/// Value distribution families.
enum class Distribution {
  kUniform,      // uniform over [0, u)
  kNormal,       // N(u/2, (sigma*u)^2) discretised and clamped to [0, u)
  kLogUniform,   // exp(uniform * ln u): heavy-tailed, Zipf-like skew
  kMpcatLike,    // bimodal mixture over u = 8,640,000 (right ascensions)
  kTerrainLike,  // elevation-like mixture of normals over u = 2^24
};

/// Arrival order of the stream.
enum class Order {
  kRandom,         // i.i.d. arrival
  kSorted,         // fully sorted ascending (adversarial for GK)
  kChunkedSorted,  // sorted runs of random (log-normal) lengths, as MPCAT-OBS
};

/// Full specification of a synthetic dataset.
struct DatasetSpec {
  Distribution distribution = Distribution::kUniform;
  uint64_t n = 1'000'000;
  /// Universe is [0, 2^log_universe) for kUniform/kNormal/kLogUniform.
  /// Ignored by kMpcatLike (u = 8,640,000) and kTerrainLike (u = 2^24).
  int log_universe = 32;
  /// Standard deviation as a fraction of the universe (kNormal only).
  double sigma = 0.15;
  Order order = Order::kRandom;
  uint64_t seed = 42;

  /// Universe size implied by the spec.
  uint64_t Universe() const;
  /// ceil(log2(Universe())) -- the height of the dyadic structure.
  int LogUniverse() const;
  /// Short human-readable tag for bench output.
  std::string Name() const;
};

/// Materialises the dataset. Deterministic in spec.seed.
std::vector<uint64_t> GenerateDataset(const DatasetSpec& spec);

/// Wraps an insert-only dataset into a turnstile workload: each value is
/// inserted, and additionally `churn_fraction` * n transient values are
/// inserted and later deleted at random positions. The surviving multiset is
/// exactly `data`, so accuracy can be evaluated against it (the paper notes
/// deletions "completely remove" their impact).
std::vector<Update> MakeTurnstileWorkload(const std::vector<uint64_t>& data,
                                          double churn_fraction,
                                          uint64_t universe, uint64_t seed);

}  // namespace streamq

#endif  // STREAMQ_STREAM_GENERATORS_H_
